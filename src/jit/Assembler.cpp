//===- jit/Assembler.cpp - In-process x86-64 assembler ----------------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "jit/Assembler.h"

#include <cassert>
#include <cstdio>
#include <cstring>

using namespace lslp;
using namespace lslp::jit;

const char *Assembler::regName(Gpr R) {
  static const char *Names[16] = {"rax", "rcx", "rdx", "rbx", "rsp", "rbp",
                                  "rsi", "rdi", "r8",  "r9",  "r10", "r11",
                                  "r12", "r13", "r14", "r15"};
  return Names[R & 15];
}

const char *Assembler::xmmName(Xmm X) {
  static const char *Names[8] = {"xmm0", "xmm1", "xmm2", "xmm3",
                                 "xmm4", "xmm5", "xmm6", "xmm7"};
  return Names[X & 7];
}

std::string Assembler::memName(const MemRef &M) {
  std::string S = "[";
  S += regName(M.Base);
  if (M.HasIndex) {
    S += "+";
    S += regName(M.Index);
    S += "*";
    S += std::to_string(1u << M.ScaleLog2);
  }
  if (M.Disp != 0) {
    char Buf[24];
    std::snprintf(Buf, sizeof(Buf), "%+d", M.Disp);
    S += Buf;
  }
  S += "]";
  return S;
}

void Assembler::note(std::string Text) {
  if (Listing)
    Lines.push_back({Code.size(), std::move(Text), false});
}

void Assembler::comment(const std::string &Text) {
  if (Listing)
    Lines.push_back({Code.size(), "; " + Text, true});
}

void Assembler::emit32(uint32_t V) {
  for (int I = 0; I != 4; ++I)
    emit8(static_cast<uint8_t>(V >> (8 * I)));
}

void Assembler::emit64(uint64_t V) {
  for (int I = 0; I != 8; ++I)
    emit8(static_cast<uint8_t>(V >> (8 * I)));
}

void Assembler::rex(bool W, unsigned Reg, unsigned Index, unsigned Base,
                    bool Force8, bool Force8Base) {
  uint8_t B = 0x40;
  if (W)
    B |= 0x08;
  if (Reg & 8)
    B |= 0x04;
  if (Index & 8)
    B |= 0x02;
  if (Base & 8)
    B |= 0x01;
  // Byte-register accesses to rsp/rbp/rsi/rdi encode spl/bpl/sil/dil only
  // with a (possibly empty) REX prefix.
  if (B != 0x40 || (Force8 && Reg >= 4 && Reg <= 7) ||
      (Force8Base && Base >= 4 && Base <= 7))
    emit8(B);
}

void Assembler::modRMReg(unsigned Reg, unsigned Rm) {
  emit8(static_cast<uint8_t>(0xC0 | ((Reg & 7) << 3) | (Rm & 7)));
}

void Assembler::modRMMem(unsigned Reg, const MemRef &M) {
  assert((!M.HasIndex || (M.Index & 7) != RSP || (M.Index & 8)) &&
         "rsp cannot be an index register");
  unsigned BaseLow = M.Base & 7;
  bool NeedDisp = M.Disp != 0 || BaseLow == 5; // rbp/r13 require a disp.
  unsigned Mod = !NeedDisp ? 0 : (M.Disp >= -128 && M.Disp <= 127 ? 1 : 2);
  if (M.HasIndex || BaseLow == 4) {
    // SIB form (also required for rsp/r12 bases).
    emit8(static_cast<uint8_t>((Mod << 6) | ((Reg & 7) << 3) | 4));
    unsigned IndexBits = M.HasIndex ? (M.Index & 7) : 4; // 100 = no index.
    emit8(static_cast<uint8_t>((M.ScaleLog2 << 6) | (IndexBits << 3) |
                               BaseLow));
  } else {
    emit8(static_cast<uint8_t>((Mod << 6) | ((Reg & 7) << 3) | BaseLow));
  }
  if (Mod == 1)
    emit8(static_cast<uint8_t>(M.Disp));
  else if (Mod == 2)
    emit32(static_cast<uint32_t>(M.Disp));
}

void Assembler::rexRM(bool W, unsigned Reg, const MemRef &M, bool Force8) {
  rex(W, Reg, M.HasIndex ? M.Index : 0, M.Base, Force8);
}

void Assembler::bind(Label L) {
  assert(L >= 0 && static_cast<size_t>(L) < LabelOffsets.size());
  assert(LabelOffsets[L] < 0 && "label bound twice");
  LabelOffsets[L] = static_cast<int64_t>(Code.size());
  if (Listing)
    Lines.push_back({Code.size(), "L" + std::to_string(L) + ":", true});
}

bool Assembler::finalize() {
  assert(!Finalized && "finalize called twice");
  Finalized = true;
  for (const Fixup &F : Fixups) {
    if (LabelOffsets[F.L] < 0)
      return false;
    int64_t Rel = LabelOffsets[F.L] - static_cast<int64_t>(F.Pos) - 4;
    uint32_t V = static_cast<uint32_t>(Rel);
    std::memcpy(&Code[F.Pos], &V, 4);
  }
  return true;
}

std::string Assembler::listing() const {
  std::string Out;
  for (size_t I = 0; I != Lines.size(); ++I) {
    const Line &L = Lines[I];
    if (L.IsMarker) {
      Out += L.Text;
      Out += "\n";
      continue;
    }
    // Bytes of this instruction: up to the next non-marker line (or end).
    size_t End = Code.size();
    for (size_t J = I + 1; J != Lines.size(); ++J)
      if (!Lines[J].IsMarker) {
        End = Lines[J].Off;
        break;
      } else if (Lines[J].Off != L.Off) {
        End = Lines[J].Off;
        break;
      }
    char Buf[16];
    std::snprintf(Buf, sizeof(Buf), "  %04zx: ", L.Off);
    Out += Buf;
    std::string Hex;
    for (size_t B = L.Off; B != End; ++B) {
      std::snprintf(Buf, sizeof(Buf), "%02x ", Code[B]);
      Hex += Buf;
    }
    Hex.resize(Hex.size() < 31 ? 31 : Hex.size(), ' ');
    Out += Hex;
    Out += L.Text;
    Out += "\n";
  }
  return Out;
}

void Assembler::relJump(const uint8_t *Opc, size_t OpcLen, Label L) {
  for (size_t I = 0; I != OpcLen; ++I)
    emit8(Opc[I]);
  Fixups.push_back({Code.size(), L});
  emit32(0);
}

// --- Stack / control -------------------------------------------------------

void Assembler::push(Gpr R) {
  note(std::string("push ") + regName(R));
  rex(false, 0, 0, R);
  emit8(static_cast<uint8_t>(0x50 | (R & 7)));
}

void Assembler::pop(Gpr R) {
  note(std::string("pop ") + regName(R));
  rex(false, 0, 0, R);
  emit8(static_cast<uint8_t>(0x58 | (R & 7)));
}

void Assembler::ret() {
  note("ret");
  emit8(0xC3);
}

void Assembler::jmp(Label L) {
  note("jmp L" + std::to_string(L));
  const uint8_t Opc[] = {0xE9};
  relJump(Opc, 1, L);
}

void Assembler::jcc(Cond CC, Label L) {
  static const char *Names[16] = {"jo", "jno", "jb", "jae", "je", "jne",
                                  "jbe", "ja", "js", "jns", "jp", "jnp",
                                  "jl", "jge", "jle", "jg"};
  note(std::string(Names[static_cast<unsigned>(CC)]) + " L" +
       std::to_string(L));
  const uint8_t Opc[] = {0x0F,
                         static_cast<uint8_t>(0x80 | static_cast<unsigned>(CC))};
  relJump(Opc, 2, L);
}

// --- Moves -----------------------------------------------------------------

void Assembler::movRR(Gpr Dst, Gpr Src) {
  note(std::string("mov ") + regName(Dst) + ", " + regName(Src));
  rex(true, Src, 0, Dst);
  emit8(0x89);
  modRMReg(Src, Dst);
}

void Assembler::movRM(Gpr Dst, const MemRef &M) {
  note(std::string("mov ") + regName(Dst) + ", " + memName(M));
  rexRM(true, Dst, M);
  emit8(0x8B);
  modRMMem(Dst, M);
}

void Assembler::movMR(const MemRef &M, Gpr Src) {
  note("mov " + memName(M) + ", " + regName(Src));
  rexRM(true, Src, M);
  emit8(0x89);
  modRMMem(Src, M);
}

void Assembler::mov32RM(Gpr Dst, const MemRef &M) {
  note(std::string("mov.32 ") + regName(Dst) + ", " + memName(M));
  rexRM(false, Dst, M);
  emit8(0x8B);
  modRMMem(Dst, M);
}

void Assembler::mov32MR(const MemRef &M, Gpr Src) {
  note("mov.32 " + memName(M) + ", " + regName(Src));
  rexRM(false, Src, M);
  emit8(0x89);
  modRMMem(Src, M);
}

void Assembler::mov16MR(const MemRef &M, Gpr Src) {
  note("mov.16 " + memName(M) + ", " + regName(Src));
  emit8(0x66);
  rexRM(false, Src, M);
  emit8(0x89);
  modRMMem(Src, M);
}

void Assembler::mov8MR(const MemRef &M, Gpr Src) {
  note("mov.8 " + memName(M) + ", " + regName(Src));
  rexRM(false, Src, M, /*Force8=*/true);
  emit8(0x88);
  modRMMem(Src, M);
}

void Assembler::movzx8RM(Gpr Dst, const MemRef &M) {
  note(std::string("movzx.8 ") + regName(Dst) + ", " + memName(M));
  rexRM(false, Dst, M);
  emit8(0x0F);
  emit8(0xB6);
  modRMMem(Dst, M);
}

void Assembler::movzx16RM(Gpr Dst, const MemRef &M) {
  note(std::string("movzx.16 ") + regName(Dst) + ", " + memName(M));
  rexRM(false, Dst, M);
  emit8(0x0F);
  emit8(0xB7);
  modRMMem(Dst, M);
}

void Assembler::movRI(Gpr Dst, uint64_t Imm) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "0x%llx",
                static_cast<unsigned long long>(Imm));
  note(std::string("mov ") + regName(Dst) + ", " + Buf);
  if (Imm <= UINT32_MAX) {
    // mov r32, imm32 zero-extends.
    rex(false, 0, 0, Dst);
    emit8(static_cast<uint8_t>(0xB8 | (Dst & 7)));
    emit32(static_cast<uint32_t>(Imm));
  } else if (static_cast<int64_t>(Imm) >= INT32_MIN &&
             static_cast<int64_t>(Imm) < 0) {
    rex(true, 0, 0, Dst);
    emit8(0xC7);
    modRMReg(0, Dst);
    emit32(static_cast<uint32_t>(Imm));
  } else {
    rex(true, 0, 0, Dst);
    emit8(static_cast<uint8_t>(0xB8 | (Dst & 7)));
    emit64(Imm);
  }
}

void Assembler::mov32MI(const MemRef &M, int32_t Imm) {
  note("mov.32 " + memName(M) + ", " + std::to_string(Imm));
  rexRM(false, 0, M);
  emit8(0xC7);
  modRMMem(0, M);
  emit32(static_cast<uint32_t>(Imm));
}

void Assembler::movMI(const MemRef &M, int32_t Imm) {
  note("mov " + memName(M) + ", " + std::to_string(Imm));
  rexRM(true, 0, M);
  emit8(0xC7);
  modRMMem(0, M);
  emit32(static_cast<uint32_t>(Imm));
}

// --- ALU -------------------------------------------------------------------

static const char *aluName(Alu Op) {
  switch (Op) {
  case Alu::Add:
    return "add";
  case Alu::Or:
    return "or";
  case Alu::And:
    return "and";
  case Alu::Sub:
    return "sub";
  case Alu::Xor:
    return "xor";
  case Alu::Cmp:
    return "cmp";
  }
  return "?";
}

void Assembler::aluRR(Alu Op, Gpr Dst, Gpr Src) {
  note(std::string(aluName(Op)) + " " + regName(Dst) + ", " + regName(Src));
  rex(true, Src, 0, Dst);
  emit8(static_cast<uint8_t>((static_cast<unsigned>(Op) << 3) | 0x01));
  modRMReg(Src, Dst);
}

void Assembler::aluRI(Alu Op, Gpr Dst, int32_t Imm) {
  note(std::string(aluName(Op)) + " " + regName(Dst) + ", " +
       std::to_string(Imm));
  rex(true, 0, 0, Dst);
  if (Imm >= -128 && Imm <= 127) {
    emit8(0x83);
    modRMReg(static_cast<unsigned>(Op), Dst);
    emit8(static_cast<uint8_t>(Imm));
  } else {
    emit8(0x81);
    modRMReg(static_cast<unsigned>(Op), Dst);
    emit32(static_cast<uint32_t>(Imm));
  }
}

void Assembler::aluRM(Alu Op, Gpr Dst, const MemRef &M) {
  note(std::string(aluName(Op)) + " " + regName(Dst) + ", " + memName(M));
  rexRM(true, Dst, M);
  emit8(static_cast<uint8_t>((static_cast<unsigned>(Op) << 3) | 0x03));
  modRMMem(Dst, M);
}

void Assembler::aluMI(Alu Op, const MemRef &M, int32_t Imm) {
  note(std::string(aluName(Op)) + " " + memName(M) + ", " +
       std::to_string(Imm));
  rexRM(true, 0, M);
  if (Imm >= -128 && Imm <= 127) {
    emit8(0x83);
    modRMMem(static_cast<unsigned>(Op), M);
    emit8(static_cast<uint8_t>(Imm));
  } else {
    emit8(0x81);
    modRMMem(static_cast<unsigned>(Op), M);
    emit32(static_cast<uint32_t>(Imm));
  }
}

void Assembler::imulRR(Gpr Dst, Gpr Src) {
  note(std::string("imul ") + regName(Dst) + ", " + regName(Src));
  rex(true, Dst, 0, Src);
  emit8(0x0F);
  emit8(0xAF);
  modRMReg(Dst, Src);
}

void Assembler::imulRRI(Gpr Dst, Gpr Src, int32_t Imm) {
  note(std::string("imul ") + regName(Dst) + ", " + regName(Src) + ", " +
       std::to_string(Imm));
  rex(true, Dst, 0, Src);
  if (Imm >= -128 && Imm <= 127) {
    emit8(0x6B);
    modRMReg(Dst, Src);
    emit8(static_cast<uint8_t>(Imm));
  } else {
    emit8(0x69);
    modRMReg(Dst, Src);
    emit32(static_cast<uint32_t>(Imm));
  }
}

void Assembler::negR(Gpr R) {
  note(std::string("neg ") + regName(R));
  rex(true, 0, 0, R);
  emit8(0xF7);
  modRMReg(3, R);
}

void Assembler::shlCl(Gpr R) {
  note(std::string("shl ") + regName(R) + ", cl");
  rex(true, 0, 0, R);
  emit8(0xD3);
  modRMReg(4, R);
}

void Assembler::shrCl(Gpr R) {
  note(std::string("shr ") + regName(R) + ", cl");
  rex(true, 0, 0, R);
  emit8(0xD3);
  modRMReg(5, R);
}

void Assembler::sarCl(Gpr R) {
  note(std::string("sar ") + regName(R) + ", cl");
  rex(true, 0, 0, R);
  emit8(0xD3);
  modRMReg(7, R);
}

void Assembler::shlI(Gpr R, uint8_t Imm) {
  note(std::string("shl ") + regName(R) + ", " + std::to_string(Imm));
  rex(true, 0, 0, R);
  emit8(0xC1);
  modRMReg(4, R);
  emit8(Imm);
}

void Assembler::shrI(Gpr R, uint8_t Imm) {
  note(std::string("shr ") + regName(R) + ", " + std::to_string(Imm));
  rex(true, 0, 0, R);
  emit8(0xC1);
  modRMReg(5, R);
  emit8(Imm);
}

void Assembler::sarI(Gpr R, uint8_t Imm) {
  note(std::string("sar ") + regName(R) + ", " + std::to_string(Imm));
  rex(true, 0, 0, R);
  emit8(0xC1);
  modRMReg(7, R);
  emit8(Imm);
}

void Assembler::testRR(Gpr A, Gpr B) {
  note(std::string("test ") + regName(A) + ", " + regName(B));
  rex(true, B, 0, A);
  emit8(0x85);
  modRMReg(B, A);
}

void Assembler::testRI(Gpr R, int32_t Imm) {
  note(std::string("test ") + regName(R) + ", " + std::to_string(Imm));
  rex(true, 0, 0, R);
  emit8(0xF7);
  modRMReg(0, R);
  emit32(static_cast<uint32_t>(Imm));
}

void Assembler::setcc(Cond CC, Gpr R8) {
  static const char *Names[16] = {"seto", "setno", "setb", "setae",
                                  "sete", "setne", "setbe", "seta",
                                  "sets", "setns", "setp", "setnp",
                                  "setl", "setge", "setle", "setg"};
  note(std::string(Names[static_cast<unsigned>(CC)]) + " " + regName(R8) +
       ".8");
  rex(false, 0, 0, R8, /*Force8=*/false, /*Force8Base=*/true);
  emit8(0x0F);
  emit8(static_cast<uint8_t>(0x90 | static_cast<unsigned>(CC)));
  modRMReg(0, R8);
}

void Assembler::movzx8RR(Gpr Dst, Gpr Src8) {
  note(std::string("movzx ") + regName(Dst) + ", " + regName(Src8) + ".8");
  // REX.W movzx r64, r8; Src in rm.
  uint8_t B = 0x48;
  if (Dst & 8)
    B |= 0x04;
  if (Src8 & 8)
    B |= 0x01;
  emit8(B);
  emit8(0x0F);
  emit8(0xB6);
  modRMReg(Dst, Src8);
}

void Assembler::cmovRR(Cond CC, Gpr Dst, Gpr Src) {
  static const char *Names[16] = {"cmovo", "cmovno", "cmovb", "cmovae",
                                  "cmove", "cmovne", "cmovbe", "cmova",
                                  "cmovs", "cmovns", "cmovp", "cmovnp",
                                  "cmovl", "cmovge", "cmovle", "cmovg"};
  note(std::string(Names[static_cast<unsigned>(CC)]) + " " + regName(Dst) +
       ", " + regName(Src));
  rex(true, Dst, 0, Src);
  emit8(0x0F);
  emit8(static_cast<uint8_t>(0x40 | static_cast<unsigned>(CC)));
  modRMReg(Dst, Src);
}

void Assembler::cmovRM(Cond CC, Gpr Dst, const MemRef &M) {
  static const char *Names[16] = {"cmovo", "cmovno", "cmovb", "cmovae",
                                  "cmove", "cmovne", "cmovbe", "cmova",
                                  "cmovs", "cmovns", "cmovp", "cmovnp",
                                  "cmovl", "cmovge", "cmovle", "cmovg"};
  note(std::string(Names[static_cast<unsigned>(CC)]) + " " + regName(Dst) +
       ", " + memName(M));
  rexRM(true, Dst, M);
  emit8(0x0F);
  emit8(static_cast<uint8_t>(0x40 | static_cast<unsigned>(CC)));
  modRMMem(Dst, M);
}

void Assembler::leaRM(Gpr Dst, const MemRef &M) {
  note(std::string("lea ") + regName(Dst) + ", " + memName(M));
  rexRM(true, Dst, M);
  emit8(0x8D);
  modRMMem(Dst, M);
}

void Assembler::cqo() {
  note("cqo");
  emit8(0x48);
  emit8(0x99);
}

void Assembler::divR(Gpr R) {
  note(std::string("div ") + regName(R));
  rex(true, 0, 0, R);
  emit8(0xF7);
  modRMReg(6, R);
}

void Assembler::idivR(Gpr R) {
  note(std::string("idiv ") + regName(R));
  rex(true, 0, 0, R);
  emit8(0xF7);
  modRMReg(7, R);
}

// --- SSE2 ------------------------------------------------------------------

void Assembler::sseRR(uint8_t Prefix, uint8_t Opc, unsigned Dst, unsigned Src,
                      bool RexW) {
  if (Prefix)
    emit8(Prefix);
  rex(RexW, Dst, 0, Src);
  emit8(0x0F);
  emit8(Opc);
  modRMReg(Dst, Src);
}

void Assembler::movqXR(Xmm Dst, Gpr Src) {
  note(std::string("movq ") + xmmName(Dst) + ", " + regName(Src));
  sseRR(0x66, 0x6E, Dst, Src, /*RexW=*/true);
}

void Assembler::movqRX(Gpr Dst, Xmm Src) {
  note(std::string("movq ") + regName(Dst) + ", " + xmmName(Src));
  // 66 REX.W 0F 7E /r: reg field is the XMM, rm the GPR.
  sseRR(0x66, 0x7E, Src, Dst, /*RexW=*/true);
}

void Assembler::movdXR(Xmm Dst, Gpr Src) {
  note(std::string("movd ") + xmmName(Dst) + ", " + regName(Src) + ".32");
  sseRR(0x66, 0x6E, Dst, Src);
}

void Assembler::movdRX(Gpr Dst, Xmm Src) {
  note(std::string("movd ") + regName(Dst) + ".32, " + xmmName(Src));
  sseRR(0x66, 0x7E, Src, Dst);
}

void Assembler::movupsXM(Xmm Dst, const MemRef &M) {
  note(std::string("movups ") + xmmName(Dst) + ", " + memName(M));
  rexRM(false, Dst, M);
  emit8(0x0F);
  emit8(0x10);
  modRMMem(Dst, M);
}

void Assembler::movupsMX(const MemRef &M, Xmm Src) {
  note("movups " + memName(M) + ", " + xmmName(Src));
  rexRM(false, Src, M);
  emit8(0x0F);
  emit8(0x11);
  modRMMem(Src, M);
}

#define LSLP_SSE_RR(NAME, PREFIX, OPC)                                         \
  void Assembler::NAME(Xmm Dst, Xmm Src) {                                     \
    note(std::string(#NAME " ") + xmmName(Dst) + ", " + xmmName(Src));         \
    sseRR(PREFIX, OPC, Dst, Src);                                              \
  }

LSLP_SSE_RR(addsd, 0xF2, 0x58)
LSLP_SSE_RR(subsd, 0xF2, 0x5C)
LSLP_SSE_RR(mulsd, 0xF2, 0x59)
LSLP_SSE_RR(divsd, 0xF2, 0x5E)
LSLP_SSE_RR(addpd, 0x66, 0x58)
LSLP_SSE_RR(subpd, 0x66, 0x5C)
LSLP_SSE_RR(mulpd, 0x66, 0x59)
LSLP_SSE_RR(divpd, 0x66, 0x5E)
LSLP_SSE_RR(cvtss2sd, 0xF3, 0x5A)
LSLP_SSE_RR(cvtsd2ss, 0xF2, 0x5A)
LSLP_SSE_RR(cvtps2pd, 0x00, 0x5A)
LSLP_SSE_RR(cvtpd2ps, 0x66, 0x5A)
LSLP_SSE_RR(ucomisd, 0x66, 0x2E)
LSLP_SSE_RR(paddq, 0x66, 0xD4)
LSLP_SSE_RR(psubq, 0x66, 0xFB)
LSLP_SSE_RR(pand, 0x66, 0xDB)
LSLP_SSE_RR(pandn, 0x66, 0xDF)
LSLP_SSE_RR(por, 0x66, 0xEB)
LSLP_SSE_RR(pxor, 0x66, 0xEF)
LSLP_SSE_RR(pmuludq, 0x66, 0xF4)
LSLP_SSE_RR(punpcklqdq, 0x66, 0x6C)
LSLP_SSE_RR(unpcklps, 0x00, 0x14)
LSLP_SSE_RR(xorps, 0x00, 0x57)

#undef LSLP_SSE_RR

void Assembler::cvtsi2sd(Xmm Dst, Gpr Src) {
  note(std::string("cvtsi2sd ") + xmmName(Dst) + ", " + regName(Src));
  emit8(0xF2);
  rex(true, Dst, 0, Src);
  emit8(0x0F);
  emit8(0x2A);
  modRMReg(Dst, Src);
}

void Assembler::cvttsd2si(Gpr Dst, Xmm Src) {
  note(std::string("cvttsd2si ") + regName(Dst) + ", " + xmmName(Src));
  emit8(0xF2);
  rex(true, Dst, 0, Src);
  emit8(0x0F);
  emit8(0x2C);
  modRMReg(Dst, Src);
}

void Assembler::shufps(Xmm Dst, Xmm Src, uint8_t Imm) {
  note(std::string("shufps ") + xmmName(Dst) + ", " + xmmName(Src) + ", " +
       std::to_string(Imm));
  rex(false, Dst, 0, Src);
  emit8(0x0F);
  emit8(0xC6);
  modRMReg(Dst, Src);
  emit8(Imm);
}
