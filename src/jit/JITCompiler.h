//===- jit/JITCompiler.h - Bytecode -> x86-64 lowering ----------*- C++ -*-===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers the VM's register bytecode (vm::CompiledFunction) to x86-64
/// machine code with bit-identical semantics: same lane math, same trap
/// conditions and reasons, same DynamicInsts/TotalCost charge order and
/// same per-opcode statistics as the dispatch loop in VMEngine.cpp. The
/// three-way engine parity oracle holds the JIT to that contract on every
/// fuzz seed.
///
/// Machine model (System V AMD64, no calls out of JIT code):
///
///   entry:  void fn(JITContext *ctx)   ; rdi
///   rbp = ctx            r12 = memory base     r14 = DynamicInsts
///   rbx = frame base     r13 = memory size     r15 = TotalCost
///   rax/rcx/rdx + xmm0-xmm5 scratch; rsi/rdi/r8-r11 = RegCache pool
///
/// Scalar slots are register-cached per extended basic block (RegAlloc.h);
/// vector lanes flow through the frame with SSE2 (movups/paddq/pand/
/// addpd/cvtps2pd...). Traps jump to shared stubs that store a TrapCode
/// into the context and exit; the engine maps codes back to the exact
/// TrapSink reason strings.
///
//===----------------------------------------------------------------------===//

#ifndef LSLP_JIT_JITCOMPILER_H
#define LSLP_JIT_JITCOMPILER_H

#include "ir/Value.h"
#include "vm/Bytecode.h"

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace lslp {

class Type;

namespace jit {

/// Runtime exchange record between the engine and generated code. The
/// layout is part of the generated code's ABI (offsets are baked into
/// instructions), hence the fixed field order and standard layout.
struct JITContext {
  uint64_t *Frame;       ///< Register file (InitRegs copy + args).
  uint8_t *MemBase;      ///< Engine memory image base.
  uint64_t MemSize;      ///< Engine memory image size.
  uint64_t StepLimit;    ///< Trap when DynamicInsts exceeds this.
  uint64_t DynamicInsts; ///< Out: executed charged instructions.
  uint64_t TotalCost;    ///< Out: accumulated TTI cost.
  uint64_t *StatCounts;  ///< Stat table (see NativeFunction::StatKeys).
  uint32_t RetLaneCount; ///< Out: 0 for void/trap, else return lanes.
  int32_t TrapCode;      ///< Out: 0 = none, else a TrapCode value.
  uint64_t RetLanes[16]; ///< Out: return value lanes.
};

/// Widest return value the JITContext can carry; wider returns are a
/// compile error (the engine falls back to the VM for that function).
constexpr unsigned kMaxRetLanes = 16;

/// Trap exits of generated code; mapped to the exact engine-agnostic
/// reason strings the interpreter/VM produce (LaneOps.h / VMEngine.cpp).
enum class TrapCode : int32_t {
  None = 0,
  StepLimit,
  UDivZero,
  SDivZero,
  SDivOverflow,
  URemZero,
  SRemZero,
  SRemOverflow,
  OutOfBounds,
  InsertLane,
  ExtractLane,
};

/// The TrapSink reason string for \p Code ("udiv by zero", ...).
const char *trapCodeReason(TrapCode Code);

/// Controls one native compilation.
struct NativeOptions {
  /// Emit the per-opcode statistics counters (a separate code variant;
  /// keyed into the engine's code cache alongside the function).
  bool CollectStats = false;
  /// Build the textual listing (slow; for --dump-jit-asm and tests).
  bool BuildListing = false;
  /// Operand-order flags for the NaN-propagation parity of commutative
  /// FP ops; see detectNaNOrder().
  bool SwapFAdd32 = false, SwapFAdd64 = false;
  bool SwapFMul32 = false, SwapFMul64 = false;
};

/// Result of lowering one function. When Error is non-empty the code is
/// unusable and the engine falls back to the VM dispatch loop for this
/// function (semantics are identical either way).
struct NativeFunction {
  std::string Error;
  std::vector<uint8_t> Code; ///< Raw position-independent machine code.
  std::string Listing;       ///< Non-empty iff BuildListing.
  Type *RetTy = nullptr;     ///< Return type (null for void functions).
  /// Statistics slot table: StatCounts[i] at run exit holds the dynamic
  /// count for StatKeys[i] = (source opcode, vector bucket).
  std::vector<std::pair<ValueID, bool>> StatKeys;
};

/// Lowers \p CF. Never executes anything — usable on any host (e.g. for
/// listings); only ExecMemory::map ties the result to x86-64.
NativeFunction compileNative(const vm::CompiledFunction &CF,
                             const NativeOptions &Opts);

/// Probes how this binary's reference implementation (laneops::
/// evalFPBinLane) propagates NaN payloads through the commutative FAdd/
/// FMul, and fills the Swap* flags so generated addsd/mulsd pick the same
/// source operand. x86 returns the *first* operand's NaN payload; the
/// C++ compiler may have materialized `DA + DB` with either operand
/// first, so this is measured at runtime, once.
void detectNaNOrder(NativeOptions &Opts);

} // namespace jit
} // namespace lslp

#endif // LSLP_JIT_JITCOMPILER_H
