//===- jit/Assembler.h - In-process x86-64 assembler ------------*- C++ -*-===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small one-pass x86-64 machine-code emitter with labels, rel32 fixup
/// patching and an optional deterministic textual listing (the source of
/// `lslpc --dump-jit-asm`). It covers exactly the instruction subset the
/// bytecode JIT needs: 64-bit GPR moves/ALU/shifts/div, setcc/cmov,
/// rel32 branches, and the SSE2 scalar + packed FP/integer operations.
///
/// The emitter produces raw position-independent bytes; it never allocates
/// executable memory itself (see ExecMemory.h), so it is usable on any
/// host — e.g. for listings on non-x86-64 machines.
///
//===----------------------------------------------------------------------===//

#ifndef LSLP_JIT_ASSEMBLER_H
#define LSLP_JIT_ASSEMBLER_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace lslp {
namespace jit {

/// General-purpose registers, hardware encoding order.
enum Gpr : uint8_t {
  RAX = 0,
  RCX = 1,
  RDX = 2,
  RBX = 3,
  RSP = 4,
  RBP = 5,
  RSI = 6,
  RDI = 7,
  R8 = 8,
  R9 = 9,
  R10 = 10,
  R11 = 11,
  R12 = 12,
  R13 = 13,
  R14 = 14,
  R15 = 15,
};

/// SSE registers (only the REX-free low eight are used).
enum Xmm : uint8_t {
  XMM0 = 0,
  XMM1 = 1,
  XMM2 = 2,
  XMM3 = 3,
  XMM4 = 4,
  XMM5 = 5,
  XMM6 = 6,
  XMM7 = 7,
};

/// Condition codes (the low nibble of the 0F 8x/9x/4x opcode families).
enum class Cond : uint8_t {
  O = 0x0,
  NO = 0x1,
  B = 0x2,  ///< unsigned <
  AE = 0x3, ///< unsigned >=
  E = 0x4,
  NE = 0x5,
  BE = 0x6, ///< unsigned <=
  A = 0x7,  ///< unsigned >
  S = 0x8,
  NS = 0x9,
  P = 0xA, ///< parity (NaN after ucomisd)
  NP = 0xB,
  L = 0xC,  ///< signed <
  GE = 0xD, ///< signed >=
  LE = 0xE, ///< signed <=
  G = 0xF,  ///< signed >
};

/// Group-1 ALU operations (the /digit selects the immediate form).
enum class Alu : uint8_t {
  Add = 0,
  Or = 1,
  And = 4,
  Sub = 5,
  Xor = 6,
  Cmp = 7,
};

/// A [Base + Index*2^ScaleLog2 + Disp] memory operand.
struct MemRef {
  Gpr Base;
  int32_t Disp = 0;
  bool HasIndex = false;
  Gpr Index = RAX;
  uint8_t ScaleLog2 = 0;
};

inline MemRef mem(Gpr Base, int32_t Disp = 0) { return MemRef{Base, Disp}; }
inline MemRef mem(Gpr Base, Gpr Index, uint8_t ScaleLog2, int32_t Disp = 0) {
  return MemRef{Base, Disp, true, Index, ScaleLog2};
}

/// One-pass assembler. Labels are integer handles; forward references are
/// recorded as rel32 fixups and patched by finalize().
class Assembler {
public:
  using Label = int;

  explicit Assembler(bool BuildListing = false) : Listing(BuildListing) {}

  Label newLabel() {
    LabelOffsets.push_back(-1);
    return static_cast<Label>(LabelOffsets.size() - 1);
  }
  void bind(Label L);

  /// Patches all fixups; must be called exactly once, after which code()
  /// is final. Returns false if any label was left unbound.
  bool finalize();

  const std::vector<uint8_t> &code() const { return Code; }
  size_t size() const { return Code.size(); }

  /// Adds a standalone comment line to the listing.
  void comment(const std::string &Text);
  /// Renders the listing (offsets, hex bytes, mnemonics). Only meaningful
  /// when constructed with BuildListing and after finalize().
  std::string listing() const;

  // --- Stack / control ---------------------------------------------------
  void push(Gpr R);
  void pop(Gpr R);
  void ret();
  void jmp(Label L);
  void jcc(Cond CC, Label L);

  // --- 64-bit GPR moves --------------------------------------------------
  void movRR(Gpr Dst, Gpr Src);
  void movRM(Gpr Dst, const MemRef &M);  ///< 64-bit load.
  void movMR(const MemRef &M, Gpr Src);  ///< 64-bit store.
  void mov32RM(Gpr Dst, const MemRef &M); ///< 32-bit load, zero-extends.
  void mov32MR(const MemRef &M, Gpr Src); ///< 32-bit store.
  void mov16MR(const MemRef &M, Gpr Src);
  void mov8MR(const MemRef &M, Gpr Src);
  void movzx8RM(Gpr Dst, const MemRef &M);
  void movzx16RM(Gpr Dst, const MemRef &M);
  void movRI(Gpr Dst, uint64_t Imm); ///< Picks the shortest encoding.
  void mov32MI(const MemRef &M, int32_t Imm); ///< 32-bit store of imm32.
  void movMI(const MemRef &M, int32_t Imm); ///< 64-bit store of sext imm32.

  // --- ALU ---------------------------------------------------------------
  void aluRR(Alu Op, Gpr Dst, Gpr Src);
  void aluRI(Alu Op, Gpr Dst, int32_t Imm);
  void aluRM(Alu Op, Gpr Dst, const MemRef &M); ///< e.g. cmp r64, [mem].
  void aluMI(Alu Op, const MemRef &M, int32_t Imm); ///< e.g. add [mem], 1.
  void imulRR(Gpr Dst, Gpr Src);
  void imulRRI(Gpr Dst, Gpr Src, int32_t Imm);
  void negR(Gpr R);
  void shlCl(Gpr R);
  void shrCl(Gpr R);
  void sarCl(Gpr R);
  void shlI(Gpr R, uint8_t Imm);
  void shrI(Gpr R, uint8_t Imm);
  void sarI(Gpr R, uint8_t Imm);
  void testRR(Gpr A, Gpr B);
  void testRI(Gpr R, int32_t Imm);
  void setcc(Cond CC, Gpr R8); ///< Sets the low byte of \p R8.
  void movzx8RR(Gpr Dst, Gpr Src8);
  void cmovRR(Cond CC, Gpr Dst, Gpr Src);
  void cmovRM(Cond CC, Gpr Dst, const MemRef &M);
  void leaRM(Gpr Dst, const MemRef &M);
  void cqo();
  void divR(Gpr R);  ///< Unsigned rdx:rax / r.
  void idivR(Gpr R); ///< Signed rdx:rax / r.

  // --- SSE2 --------------------------------------------------------------
  void movqXR(Xmm Dst, Gpr Src); ///< 64-bit GPR -> XMM.
  void movqRX(Gpr Dst, Xmm Src); ///< XMM low 64 -> GPR.
  void movdXR(Xmm Dst, Gpr Src); ///< 32-bit GPR -> XMM.
  void movdRX(Gpr Dst, Xmm Src); ///< XMM low 32 -> GPR, zero-extends.
  void movupsXM(Xmm Dst, const MemRef &M);
  void movupsMX(const MemRef &M, Xmm Src);
  void addsd(Xmm Dst, Xmm Src);
  void subsd(Xmm Dst, Xmm Src);
  void mulsd(Xmm Dst, Xmm Src);
  void divsd(Xmm Dst, Xmm Src);
  void addpd(Xmm Dst, Xmm Src);
  void subpd(Xmm Dst, Xmm Src);
  void mulpd(Xmm Dst, Xmm Src);
  void divpd(Xmm Dst, Xmm Src);
  void cvtss2sd(Xmm Dst, Xmm Src);
  void cvtsd2ss(Xmm Dst, Xmm Src);
  void cvtps2pd(Xmm Dst, Xmm Src);
  void cvtpd2ps(Xmm Dst, Xmm Src);
  void cvtsi2sd(Xmm Dst, Gpr Src); ///< From 64-bit GPR.
  void cvttsd2si(Gpr Dst, Xmm Src); ///< To 64-bit GPR, truncating.
  void ucomisd(Xmm A, Xmm B);
  void paddq(Xmm Dst, Xmm Src);
  void psubq(Xmm Dst, Xmm Src);
  void pand(Xmm Dst, Xmm Src);
  void pandn(Xmm Dst, Xmm Src); ///< Dst = ~Dst & Src.
  void por(Xmm Dst, Xmm Src);
  void pxor(Xmm Dst, Xmm Src);
  void pmuludq(Xmm Dst, Xmm Src);
  void punpcklqdq(Xmm Dst, Xmm Src);
  void unpcklps(Xmm Dst, Xmm Src);
  void shufps(Xmm Dst, Xmm Src, uint8_t Imm);
  void xorps(Xmm Dst, Xmm Src);

private:
  void emit8(uint8_t B) { Code.push_back(B); }
  void emit32(uint32_t V);
  void emit64(uint64_t V);
  /// Emits a REX prefix if required (W, extended regs, or the byte-reg
  /// forms of rsp/rbp/rsi/rdi which need an empty REX). \p Force8 marks
  /// the Reg operand as byte-sized; \p Force8Base marks a register-direct
  /// rm operand as byte-sized (irrelevant for memory bases, which are
  /// always full-width addresses).
  void rex(bool W, unsigned Reg, unsigned Index, unsigned Base,
           bool Force8 = false, bool Force8Base = false);
  void modRMReg(unsigned Reg, unsigned Rm);
  void modRMMem(unsigned Reg, const MemRef &M);
  /// REX for a reg, mem pair.
  void rexRM(bool W, unsigned Reg, const MemRef &M, bool Force8 = false);
  void sseRR(uint8_t Prefix, uint8_t Opc, unsigned Dst, unsigned Src,
             bool RexW = false);
  void relJump(const uint8_t *Opc, size_t OpcLen, Label L);

  /// Listing bookkeeping: each instruction registers its mnemonic before
  /// emitting bytes; finalize() renders offset + hex + text per line.
  void note(std::string Text);

  std::vector<uint8_t> Code;
  std::vector<int64_t> LabelOffsets;
  struct Fixup {
    size_t Pos; ///< Offset of the rel32 field.
    Label L;
  };
  std::vector<Fixup> Fixups;
  bool Listing;
  bool Finalized = false;
  struct Line {
    size_t Off;
    std::string Text;
    bool IsMarker; ///< Comment/label line: no bytes.
  };
  std::vector<Line> Lines;

public:
  // Listing helpers, public for RegAlloc/JITCompiler formatting.
  static const char *regName(Gpr R);
  static const char *xmmName(Xmm X);
  static std::string memName(const MemRef &M);
};

} // namespace jit
} // namespace lslp

#endif // LSLP_JIT_ASSEMBLER_H
