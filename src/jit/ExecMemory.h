//===- jit/ExecMemory.h - W^X executable code memory ------------*- C++ -*-===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// RAII owner of one executable code region. The mapping is W^X and
/// sanitizer-friendly by construction: pages are mmap'd read+write, the
/// code bytes are copied in, and the region is then mprotect'd to
/// read+execute — at no point does a writable+executable page exist.
///
/// jitHostSupported() is the runtime gate behind `--engine=jit`: it is
/// false on non-x86-64 builds, and on x86-64 hosts it actually maps,
/// protects and calls a 6-byte probe function once, so hosts with W^X
/// policies that forbid PROT_EXEC remaps degrade gracefully (the engine
/// factory falls back to the VM with a remark).
///
//===----------------------------------------------------------------------===//

#ifndef LSLP_JIT_EXECMEMORY_H
#define LSLP_JIT_EXECMEMORY_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace lslp {
namespace jit {

/// One mmap'd RX code region. Move-only.
class ExecMemory {
public:
  ExecMemory() = default;
  ExecMemory(ExecMemory &&O) noexcept : Ptr(O.Ptr), Size(O.Size) {
    O.Ptr = nullptr;
    O.Size = 0;
  }
  ExecMemory &operator=(ExecMemory &&O) noexcept;
  ExecMemory(const ExecMemory &) = delete;
  ExecMemory &operator=(const ExecMemory &) = delete;
  ~ExecMemory() { release(); }

  /// Maps \p Bytes as read+execute (write happens before the protection
  /// flip, so no W+X page ever exists). Returns false on any failure;
  /// the object stays empty.
  bool map(const std::vector<uint8_t> &Bytes);

  /// Entry point of the mapped code; null when empty.
  const void *entry() const { return Ptr; }
  explicit operator bool() const { return Ptr != nullptr; }

private:
  void release();

  void *Ptr = nullptr;
  size_t Size = 0;
};

/// True when this process can execute freshly generated x86-64 code
/// (compile-time architecture check plus a one-time runtime map/exec
/// probe). Cached after the first call; thread-safe.
bool jitHostSupported();

} // namespace jit
} // namespace lslp

#endif // LSLP_JIT_EXECMEMORY_H
