//===- jit/ExecMemory.cpp - W^X executable code memory ----------------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "jit/ExecMemory.h"

#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/mman.h>
#include <unistd.h>
#define LSLP_JIT_HAVE_MMAP 1
#else
#define LSLP_JIT_HAVE_MMAP 0
#endif

using namespace lslp;
using namespace lslp::jit;

ExecMemory &ExecMemory::operator=(ExecMemory &&O) noexcept {
  if (this != &O) {
    release();
    Ptr = O.Ptr;
    Size = O.Size;
    O.Ptr = nullptr;
    O.Size = 0;
  }
  return *this;
}

void ExecMemory::release() {
#if LSLP_JIT_HAVE_MMAP
  if (Ptr)
    ::munmap(Ptr, Size);
#endif
  Ptr = nullptr;
  Size = 0;
}

bool ExecMemory::map(const std::vector<uint8_t> &Bytes) {
#if LSLP_JIT_HAVE_MMAP
  if (Bytes.empty() || Ptr)
    return false;
  long Page = ::sysconf(_SC_PAGESIZE);
  if (Page <= 0)
    Page = 4096;
  size_t Rounded =
      (Bytes.size() + static_cast<size_t>(Page) - 1) &
      ~(static_cast<size_t>(Page) - 1);
  void *P = ::mmap(nullptr, Rounded, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (P == MAP_FAILED)
    return false;
  std::memcpy(P, Bytes.data(), Bytes.size());
  if (::mprotect(P, Rounded, PROT_READ | PROT_EXEC) != 0) {
    ::munmap(P, Rounded);
    return false;
  }
  Ptr = P;
  Size = Rounded;
  return true;
#else
  (void)Bytes;
  return false;
#endif
}

namespace {

#if defined(__x86_64__) || defined(_M_X64)
bool probeExecutable() {
  // mov eax, 42; ret
  const std::vector<uint8_t> Probe = {0xB8, 0x2A, 0x00, 0x00, 0x00, 0xC3};
  ExecMemory EM;
  if (!EM.map(Probe))
    return false;
  auto *Fn = reinterpret_cast<int (*)()>(const_cast<void *>(EM.entry()));
  return Fn() == 42;
}
#endif

} // namespace

bool lslp::jit::jitHostSupported() {
#if defined(__x86_64__) || defined(_M_X64)
  static const bool Supported = probeExecutable();
  return Supported;
#else
  return false;
#endif
}
