//===- jit/RegAlloc.h - Linear-scan register cache --------------*- C++ -*-===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Register allocation over the VM's virtual registers. The bytecode's
/// flat register file *is* the spill area: every slot lives at
/// [FrameBase + slot*8], and a small pool of caller-managed GPRs caches
/// hot scalar slots within one extended basic block. Cached slots are
/// loaded lazily, written back on eviction (LRU among unpinned entries)
/// and flushed at control-flow joins, so any number of live values
/// (far beyond the 6-register pool) is handled by demand spilling.
///
/// Only slots the compiler marked cacheable participate — slots that are
/// ever touched as vector lanes or through dynamic indexing are always
/// accessed through memory, which keeps the SSE paths and the cache
/// trivially coherent.
///
//===----------------------------------------------------------------------===//

#ifndef LSLP_JIT_REGALLOC_H
#define LSLP_JIT_REGALLOC_H

#include "jit/Assembler.h"

#include <cstdint>
#include <vector>

namespace lslp {
namespace jit {

/// Per-block register cache mapping virtual-register slots to GPRs.
class RegCache {
public:
  /// Pool of allocatable registers; disjoint from the pinned machine
  /// state (rbx/rbp/r12-r15) and the scratch set (rax/rcx/rdx).
  static constexpr Gpr Pool[] = {RSI, RDI, R8, R9, R10, R11};
  static constexpr unsigned PoolSize = 6;

  /// \p Cacheable flags each slot; uncacheable slots pass through to
  /// memory via the caller-provided scratch register.
  RegCache(Assembler &Asm, Gpr FrameBase, std::vector<bool> Cacheable)
      : Asm(Asm), FrameBase(FrameBase), Cacheable(std::move(Cacheable)) {}

  /// Starts a new instruction: releases the previous instruction's pins.
  void beginInst() {
    for (Entry &E : Regs)
      E.Pinned = false;
  }

  /// Returns a register holding slot \p Slot, loading it if needed.
  /// Cacheable slots come back in a pinned pool register; others are
  /// loaded into \p Scratch. The result stays valid until commit()/
  /// flush()/beginInst() of the next instruction.
  Gpr read(uint32_t Slot, Gpr Scratch);

  /// Returns a register to compute slot \p Slot's new value into
  /// (a pinned pool register for cacheable slots, else \p Scratch).
  /// Must be paired with commit() once the value is in place.
  Gpr writeReg(uint32_t Slot, Gpr Scratch);

  /// Finalizes a write: marks the cached entry dirty, or stores
  /// \p ValueReg to the frame for uncacheable slots.
  void commit(uint32_t Slot, Gpr ValueReg);

  /// Convenience: routes \p ValueReg (any register) into slot \p Slot.
  void commitFrom(uint32_t Slot, Gpr ValueReg);

  /// Writes back dirty entries and clears all mappings (block boundary).
  /// Emits only mov stores — never changes flags.
  void flush();

  /// Frame address of a slot, for direct memory access by vector code.
  MemRef slotMem(uint32_t Slot) const {
    return mem(FrameBase, static_cast<int32_t>(Slot * 8));
  }

  bool isCacheable(uint32_t Slot) const {
    return Slot < Cacheable.size() && Cacheable[Slot];
  }

private:
  struct Entry {
    int64_t Slot = -1;
    bool Dirty = false;
    bool Pinned = false;
    uint64_t LastUse = 0;
  };

  int find(uint32_t Slot) const;
  int allocate(); ///< Picks (and evicts if needed) a pool entry.

  Assembler &Asm;
  Gpr FrameBase;
  std::vector<bool> Cacheable;
  Entry Regs[PoolSize];
  uint64_t Clock = 0;
};

} // namespace jit
} // namespace lslp

#endif // LSLP_JIT_REGALLOC_H
