//===- jit/JITEngine.h - Native x86-64 execution engine ---------*- C++ -*-===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The third execution backend ("jit"): functions are first compiled to
/// the VM's register bytecode (the engine derives from VMEngine and
/// shares its bytecode cache), then lowered to x86-64 machine code and
/// run from mmap'd RX memory. Results — return lanes, memory image,
/// traps, DynamicInsts/TotalCost and per-opcode statistics — are
/// bit-identical to the interpreter and the VM; the three-way
/// DifferentialOracle parity check enforces it on every fuzz seed.
///
/// Functions the lowering cannot express (and hosts that cannot execute
/// generated code) silently run on the inherited VM dispatch loop, so
/// `--engine=jit` never changes observable behavior, only speed.
///
//===----------------------------------------------------------------------===//

#ifndef LSLP_JIT_JITENGINE_H
#define LSLP_JIT_JITENGINE_H

#include "jit/ExecMemory.h"
#include "jit/JITCompiler.h"
#include "vm/VMEngine.h"

#include <map>
#include <shared_mutex>
#include <string>
#include <utility>

namespace lslp {

/// Native-code execution engine ("jit").
class JITEngine : public VMEngine {
public:
  explicit JITEngine(const Module &M,
                     const TargetTransformInfo *TTI = nullptr);

  ExecStats run(const Function *F,
                const std::vector<RuntimeValue> &Args = {}) override;

  const char *engineName() const override { return "jit"; }

private:
  struct NativeEntry {
    jit::NativeFunction NF;
    jit::ExecMemory Mem;
    /// False when compilation or mapping failed; run() then falls back
    /// to VMEngine::run for this function.
    bool Usable = false;
  };

  /// Native code cache, keyed by (function, stats collection) — the
  /// stats variant carries extra counter increments, so it is a separate
  /// compilation. Same locking discipline as the bytecode cache.
  const NativeEntry &getOrJit(const Function *F,
                              const vm::CompiledFunction &CF, bool Stats);

  mutable std::shared_mutex JitMutex;
  std::map<std::pair<const Function *, bool>, NativeEntry> JitCache;
  jit::NativeOptions BaseOpts; ///< NaN operand-order probe, done once.
};

namespace jit {

/// True when `--engine=jit` can actually execute on this host.
bool available();

/// Deterministic textual x86-64 listing of every function of \p M
/// (`lslpc --dump-jit-asm`). Pure lowering — runs on any host, and uses
/// fixed operand order (no NaN probe) so listings are host-independent.
std::string dumpModuleAsm(const Module &M, const TargetTransformInfo *TTI);

} // namespace jit
} // namespace lslp

#endif // LSLP_JIT_JITENGINE_H
