//===- jit/JITEngine.cpp - Native x86-64 execution engine -------------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "jit/JITEngine.h"

#include "ir/Function.h"
#include "vm/BytecodeCompiler.h"
#include "vm/BytecodeDump.h"

#include <cassert>
#include <mutex>

using namespace lslp;
using namespace lslp::jit;

JITEngine::JITEngine(const Module &M, const TargetTransformInfo *TTI)
    : VMEngine(M, TTI) {
  detectNaNOrder(BaseOpts);
}

const JITEngine::NativeEntry &
JITEngine::getOrJit(const Function *F, const vm::CompiledFunction &CF,
                    bool Stats) {
  auto Key = std::make_pair(F, Stats);
  {
    std::shared_lock<std::shared_mutex> Lock(JitMutex);
    auto It = JitCache.find(Key);
    if (It != JitCache.end())
      return It->second;
  }
  std::unique_lock<std::shared_mutex> Lock(JitMutex);
  auto It = JitCache.find(Key);
  if (It == JitCache.end()) {
    NativeEntry E;
    NativeOptions Opts = BaseOpts;
    Opts.CollectStats = Stats;
    E.NF = compileNative(CF, Opts);
    E.Usable = E.NF.Error.empty() && jitHostSupported() && E.Mem.map(E.NF.Code);
    It = JitCache.emplace(Key, std::move(E)).first;
  }
  return It->second;
}

namespace {
ExecStats trapStats(ExecStats S, std::string Reason) {
  S.Trapped = true;
  S.TrapReason = std::move(Reason);
  S.ReturnValue = RuntimeValue();
  return S;
}
} // namespace

ExecStats JITEngine::run(const Function *F,
                         const std::vector<RuntimeValue> &Args) {
  assert(F->getParent() == &getModule() && "function from a different module");
  if (Args.size() != F->getNumArgs())
    return trapStats({}, "argument count mismatch calling @" + F->getName());
  for (unsigned I = 0, E = F->getNumArgs(); I != E; ++I)
    if (Args[I].Ty != F->getArg(I)->getType())
      return trapStats({}, "argument type mismatch calling @" + F->getName());

  const vm::CompiledFunction &CF = getOrCompile(F);
  if (!CF.CompileError.empty())
    return trapStats({}, CF.CompileError);

  const NativeEntry &NE = getOrJit(F, CF, CollectStats);
  if (!NE.Usable)
    // Function the lowering cannot express (or a host that cannot run
    // generated code): the inherited dispatch loop is bit-identical.
    return VMEngine::run(F, Args);

  std::vector<uint64_t> Frame = CF.InitRegs;
  for (unsigned I = 0, E = F->getNumArgs(); I != E; ++I)
    for (unsigned K = 0, L = Args[I].getNumLanes(); K != L; ++K)
      Frame[CF.ArgBase[I] + K] = Args[I].Lanes[K];

  std::vector<uint64_t> StatCounts(NE.NF.StatKeys.size(), 0);
  JITContext Ctx{};
  Ctx.Frame = Frame.data();
  Ctx.MemBase = Memory.data();
  Ctx.MemSize = Memory.size();
  Ctx.StepLimit = StepLimit;
  Ctx.StatCounts = StatCounts.empty() ? nullptr : StatCounts.data();

  auto Entry =
      reinterpret_cast<void (*)(JITContext *)>(const_cast<void *>(NE.Mem.entry()));
  Entry(&Ctx);

  ExecStats S;
  S.DynamicInsts = Ctx.DynamicInsts;
  S.TotalCost = Ctx.TotalCost;
  if (CollectStats)
    for (size_t I = 0; I != StatCounts.size(); ++I)
      if (StatCounts[I] != 0) {
        const auto &Key = NE.NF.StatKeys[I];
        (Key.second ? S.VectorOpCounts : S.ScalarOpCounts)[Key.first] +=
            StatCounts[I];
      }
  if (Ctx.TrapCode != 0)
    return trapStats(std::move(S),
                     trapCodeReason(static_cast<TrapCode>(Ctx.TrapCode)));
  if (Ctx.RetLaneCount != 0) {
    std::vector<uint64_t> Lanes(Ctx.RetLanes,
                                Ctx.RetLanes + Ctx.RetLaneCount);
    S.ReturnValue = RuntimeValue(NE.NF.RetTy, std::move(Lanes));
  }
  return S;
}

bool jit::available() { return jitHostSupported(); }

std::string jit::dumpModuleAsm(const Module &M,
                               const TargetTransformInfo *TTI) {
  auto Layout = ExecutionEngine::computeGlobalLayout(M);
  std::string Out;
  for (const auto &F : M.functions()) {
    if (F->empty())
      continue;
    if (!Out.empty())
      Out += "\n";
    vm::CompiledFunction CF = vm::compileFunction(*F, Layout, TTI);
    Out += "; jit function @" + F->getName() +
           ": slots=" + std::to_string(CF.NumSlots) + "\n";
    NativeOptions Opts;
    Opts.BuildListing = true;
    NativeFunction NF = compileNative(CF, Opts);
    if (!NF.Error.empty()) {
      Out += ";   jit compile error: " + NF.Error + "\n";
      continue;
    }
    Out += NF.Listing;
  }
  return Out;
}
