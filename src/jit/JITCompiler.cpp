//===- jit/JITCompiler.cpp - Bytecode -> x86-64 lowering --------------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "jit/JITCompiler.h"

#include "interp/LaneOps.h"
#include "ir/Instruction.h"
#include "jit/Assembler.h"
#include "jit/RegAlloc.h"
#include "vm/BytecodeDump.h"

#include <algorithm>
#include <cstddef>
#include <cstdio>
#include <map>

using namespace lslp;
using namespace lslp::jit;
using namespace lslp::vm;

// The generated code addresses JITContext by these offsets; pin them to the
// struct so a field reorder cannot silently miscompile.
static_assert(offsetof(JITContext, Frame) == 0, "JIT ABI offset");
static_assert(offsetof(JITContext, MemBase) == 8, "JIT ABI offset");
static_assert(offsetof(JITContext, MemSize) == 16, "JIT ABI offset");
static_assert(offsetof(JITContext, StepLimit) == 24, "JIT ABI offset");
static_assert(offsetof(JITContext, DynamicInsts) == 32, "JIT ABI offset");
static_assert(offsetof(JITContext, TotalCost) == 40, "JIT ABI offset");
static_assert(offsetof(JITContext, StatCounts) == 48, "JIT ABI offset");
static_assert(offsetof(JITContext, RetLaneCount) == 56, "JIT ABI offset");
static_assert(offsetof(JITContext, TrapCode) == 60, "JIT ABI offset");
static_assert(offsetof(JITContext, RetLanes) == 64, "JIT ABI offset");

const char *jit::trapCodeReason(TrapCode Code) {
  switch (Code) {
  case TrapCode::None:
    return "";
  case TrapCode::StepLimit:
    return "step limit exceeded (infinite loop?)";
  case TrapCode::UDivZero:
    return "udiv by zero";
  case TrapCode::SDivZero:
    return "sdiv by zero";
  case TrapCode::SDivOverflow:
    return "sdiv overflow";
  case TrapCode::URemZero:
    return "urem by zero";
  case TrapCode::SRemZero:
    return "srem by zero";
  case TrapCode::SRemOverflow:
    return "srem overflow";
  case TrapCode::OutOfBounds:
    return "out-of-bounds memory access";
  case TrapCode::InsertLane:
    return "insertelement lane out of range";
  case TrapCode::ExtractLane:
    return "extractelement lane out of range";
  }
  return "";
}

void jit::detectNaNOrder(NativeOptions &Opts) {
  // Two distinct quiet-NaN payloads; x86 FP ops propagate the *first*
  // operand's payload, so the result tells us which operand the compiler
  // put first when it materialized `DA + DB`. volatile blocks constant
  // folding (a compile-time fold could use a different rule than the
  // hardware ops the VM actually executes).
  auto Swapped = [](ValueID Opc, bool F32) {
    volatile uint64_t VA = F32 ? 0x7FC00001ull : 0x7FF8000000000001ull;
    volatile uint64_t VB = F32 ? 0x7FC00002ull : 0x7FF8000000000002ull;
    uint64_t A = VA, B = VB;
    return laneops::evalFPBinLane(Opc, F32, A, B) == B;
  };
  Opts.SwapFAdd32 = Swapped(ValueID::FAdd, true);
  Opts.SwapFAdd64 = Swapped(ValueID::FAdd, false);
  Opts.SwapFMul32 = Swapped(ValueID::FMul, true);
  Opts.SwapFMul64 = Swapped(ValueID::FMul, false);
}

namespace {

// Machine-state register roles (see JITCompiler.h).
constexpr Gpr CtxReg = RBP;
constexpr Gpr FrameReg = RBX;
constexpr Gpr MemBaseReg = R12;
constexpr Gpr MemSizeReg = R13;
constexpr Gpr InstsReg = R14;
constexpr Gpr CostReg = R15;

constexpr int32_t OffFrame = 0;
constexpr int32_t OffMemBase = 8;
constexpr int32_t OffMemSize = 16;
constexpr int32_t OffStepLimit = 24;
constexpr int32_t OffDynamicInsts = 32;
constexpr int32_t OffTotalCost = 40;
constexpr int32_t OffStatCounts = 48;
constexpr int32_t OffRetLaneCount = 56;
constexpr int32_t OffTrapCode = 60;
constexpr int32_t OffRetLanes = 64;

uint64_t maskVal(unsigned Bits) {
  return Bits >= 64 ? ~uint64_t(0) : (uint64_t(1) << Bits) - 1;
}

/// True when the VM's sequential lane loop would feed an earlier result
/// lane into a later source lane — the paired-SSE path must not be used
/// then (reads of a pair happen before its writes).
bool forwardOverlap(uint32_t Dst, uint32_t Src, unsigned Lanes) {
  return Dst > Src && Dst < Src + Lanes;
}

/// Slots ever addressed as multi-lane ranges or through a dynamic lane
/// index always live in the frame; everything else may be register-cached.
std::vector<bool> computeCacheable(const CompiledFunction &CF) {
  std::vector<bool> C(CF.NumSlots, true);
  auto Mark = [&](uint32_t Base, unsigned N) {
    for (unsigned I = 0; I != N; ++I)
      if (Base + I < C.size())
        C[Base + I] = false;
  };
  for (const VMInst &I : CF.Code) {
    unsigned L = I.Lanes;
    switch (I.Op) {
    case VMOp::IntBin:
    case VMOp::FPBin:
      if (L > 1) {
        Mark(I.Dst, L);
        Mark(I.A, L);
        Mark(I.B, L);
      }
      break;
    case VMOp::Cast:
    case VMOp::Copy:
    case VMOp::PhiCommit:
      if (L > 1) {
        Mark(I.Dst, L);
        Mark(I.A, L);
      }
      break;
    case VMOp::Select:
      if (L > 1) {
        Mark(I.Dst, L);
        Mark(I.B, L);
        Mark(I.C, L);
      }
      break;
    case VMOp::SelectLanes:
      if (L > 1) {
        Mark(I.Dst, L);
        Mark(I.A, L);
        Mark(I.B, L);
        Mark(I.C, L);
      }
      break;
    case VMOp::Load:
      if (L > 1)
        Mark(I.Dst, L);
      break;
    case VMOp::Store:
      if (L > 1)
        Mark(I.A, L);
      break;
    case VMOp::InsertElt: // Dynamic lane index: always via memory.
      Mark(I.Dst, L);
      Mark(I.A, L);
      break;
    case VMOp::ExtractElt:
      Mark(I.A, L);
      break;
    case VMOp::Shuffle: {
      Mark(I.Dst, L);
      Mark(I.A, I.C);
      unsigned MaxB = 0;
      for (unsigned K = 0; K != L; ++K) {
        int M = CF.MaskPool[static_cast<size_t>(I.Imm) + K];
        if (M >= 0 && static_cast<uint32_t>(M) >= I.C)
          MaxB = std::max(MaxB, static_cast<unsigned>(M) - I.C + 1);
      }
      Mark(I.B, MaxB);
      break;
    }
    default:
      break;
    }
  }
  return C;
}

class Lowerer {
public:
  Lowerer(const CompiledFunction &CF, const NativeOptions &Opts)
      : CF(CF), Opts(Opts), Asm(Opts.BuildListing),
        Cache(Asm, FrameReg, computeCacheable(CF)) {}

  NativeFunction compile();

private:
  void fail(const std::string &Why) {
    if (Result.Error.empty())
      Result.Error = Why;
  }
  bool failed() const { return !Result.Error.empty(); }

  Assembler::Label trapTo(TrapCode Code) {
    int Idx = static_cast<int>(Code);
    if (TrapLab[Idx] < 0)
      TrapLab[Idx] = Asm.newLabel();
    return TrapLab[Idx];
  }

  MemRef slot(uint32_t S) { return Cache.slotMem(S); }

  /// Loads lane K of the value at \p Slot into \p Dst (clobbers only Dst;
  /// single-lane values go through the register cache).
  void loadLane(uint32_t Slot, unsigned K, unsigned L, Gpr Dst) {
    if (L == 1) {
      Gpr R = Cache.read(Slot, Dst);
      if (R != Dst)
        Asm.movRR(Dst, R);
    } else {
      Asm.movRM(Dst, slot(Slot + K));
    }
  }
  void storeLane(uint32_t Slot, unsigned K, unsigned L, Gpr Src) {
    if (L == 1)
      Cache.commitFrom(Slot, Src);
    else
      Asm.movMR(slot(Slot + K), Src);
  }

  /// Masks \p R to the low \p Bits (truncToBits); \p Tmp is clobbered for
  /// masks that do not fit an imm32.
  void maskTo(Gpr R, unsigned Bits, Gpr Tmp) {
    if (Bits >= 64)
      return;
    if (Bits <= 31) {
      Asm.aluRI(Alu::And, R, static_cast<int32_t>(maskVal(Bits)));
    } else {
      Asm.movRI(Tmp, maskVal(Bits));
      Asm.aluRR(Alu::And, R, Tmp);
    }
  }
  /// Sign-extends the low \p Bits of \p R to 64 (sextBits).
  void sext64(Gpr R, unsigned Bits) {
    if (Bits >= 64)
      return;
    Asm.shlI(R, static_cast<uint8_t>(64 - Bits));
    Asm.sarI(R, static_cast<uint8_t>(64 - Bits));
  }

  bool swapOperands(ValueID Opc, bool F32) const {
    if (Opc == ValueID::FAdd)
      return F32 ? Opts.SwapFAdd32 : Opts.SwapFAdd64;
    if (Opc == ValueID::FMul)
      return F32 ? Opts.SwapFMul32 : Opts.SwapFMul64;
    return false;
  }

  void charge(const VMInst &I);
  void lowerIntBin(const VMInst &I);
  void emitIntALULane(const VMInst &I, unsigned K);
  void emitIntDivLane(const VMInst &I, unsigned K);
  void emitIntShiftLane(const VMInst &I, unsigned K);
  void lowerFPBin(const VMInst &I);
  void emitFPLane(const VMInst &I, unsigned K);
  void lowerCast(const VMInst &I);
  void lowerICmp(const VMInst &I);
  void lowerSelect(const VMInst &I);
  void lowerSelectLanes(const VMInst &I);
  void lowerLoad(const VMInst &I);
  void lowerStore(const VMInst &I);
  void emitBoundsCheck(Gpr Ptr, unsigned K, unsigned Size);

  const CompiledFunction &CF;
  const NativeOptions &Opts;
  NativeFunction Result;
  Assembler Asm;
  RegCache Cache;
  std::vector<Assembler::Label> PCLabel;
  Assembler::Label EpilogueL = -1;
  Assembler::Label TrapLab[11] = {-1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1};
  std::map<std::pair<ValueID, bool>, unsigned> StatIdx;
};

void Lowerer::charge(const VMInst &I) {
  // Exact VM order: count the instruction, trap on step-limit excess
  // *before* charging its cost, then cost, then the statistics bucket.
  Asm.aluRI(Alu::Add, InstsReg, 1);
  Asm.aluRM(Alu::Cmp, InstsReg, mem(CtxReg, OffStepLimit));
  Asm.jcc(Cond::A, trapTo(TrapCode::StepLimit));
  if (I.Cost != 0) {
    if (I.Cost <= 0x7FFFFFFFu) {
      Asm.aluRI(Alu::Add, CostReg, static_cast<int32_t>(I.Cost));
    } else {
      Asm.movRI(RAX, I.Cost);
      Asm.aluRR(Alu::Add, CostReg, RAX);
    }
  }
  if (Opts.CollectStats) {
    unsigned Idx = StatIdx.at({I.SrcOpc, I.StatVec});
    Asm.movRM(RAX, mem(CtxReg, OffStatCounts));
    Asm.aluMI(Alu::Add, mem(RAX, static_cast<int32_t>(Idx * 8)), 1);
  }
}

void Lowerer::emitIntALULane(const VMInst &I, unsigned K) {
  loadLane(I.A, K, I.Lanes, RAX);
  loadLane(I.B, K, I.Lanes, RCX);
  bool NeedMask = false;
  switch (I.SrcOpc) {
  case ValueID::Add:
    Asm.aluRR(Alu::Add, RAX, RCX);
    NeedMask = true;
    break;
  case ValueID::Sub:
    Asm.aluRR(Alu::Sub, RAX, RCX);
    NeedMask = true;
    break;
  case ValueID::Mul:
    Asm.imulRR(RAX, RCX);
    NeedMask = true;
    break;
  case ValueID::And:
    Asm.aluRR(Alu::And, RAX, RCX);
    break;
  case ValueID::Or:
    Asm.aluRR(Alu::Or, RAX, RCX);
    break;
  case ValueID::Xor:
    Asm.aluRR(Alu::Xor, RAX, RCX);
    break;
  default:
    fail("unsupported integer opcode in JIT");
    return;
  }
  if (NeedMask)
    maskTo(RAX, I.SrcK.Bits, RDX);
  storeLane(I.Dst, K, I.Lanes, RAX);
}

void Lowerer::emitIntDivLane(const VMInst &I, unsigned K) {
  unsigned Bits = I.SrcK.Bits;
  bool IsSigned = I.SrcOpc == ValueID::SDiv || I.SrcOpc == ValueID::SRem;
  bool IsRem = I.SrcOpc == ValueID::URem || I.SrcOpc == ValueID::SRem;
  loadLane(I.A, K, I.Lanes, RAX);
  loadLane(I.B, K, I.Lanes, RCX);
  if (!IsSigned) {
    Asm.testRR(RCX, RCX);
    Asm.jcc(Cond::E,
            trapTo(IsRem ? TrapCode::URemZero : TrapCode::UDivZero));
    Asm.aluRR(Alu::Xor, RDX, RDX);
    Asm.divR(RCX);
    // Operands are stored truncated, so quotient/remainder stay in range.
    storeLane(I.Dst, K, I.Lanes, IsRem ? RDX : RAX);
    return;
  }
  sext64(RAX, Bits);
  sext64(RCX, Bits);
  Asm.testRR(RCX, RCX);
  Asm.jcc(Cond::E, trapTo(IsRem ? TrapCode::SRemZero : TrapCode::SDivZero));
  if (Bits >= 64) {
    // INT64_MIN / -1 overflows (hardware #DE); narrower widths cannot
    // reach INT64_MIN after sign extension.
    Assembler::Label NoOvf = Asm.newLabel();
    Asm.aluRI(Alu::Cmp, RCX, -1);
    Asm.jcc(Cond::NE, NoOvf);
    Asm.movRI(RDX, 0x8000000000000000ull);
    Asm.aluRR(Alu::Cmp, RAX, RDX);
    Asm.jcc(Cond::E,
            trapTo(IsRem ? TrapCode::SRemOverflow : TrapCode::SDivOverflow));
    Asm.bind(NoOvf);
  }
  Asm.cqo();
  Asm.idivR(RCX);
  Gpr Res = IsRem ? RDX : RAX;
  maskTo(Res, Bits, IsRem ? RAX : RCX);
  storeLane(I.Dst, K, I.Lanes, Res);
}

void Lowerer::emitIntShiftLane(const VMInst &I, unsigned K) {
  unsigned Bits = I.SrcK.Bits;
  loadLane(I.A, K, I.Lanes, RAX);
  loadLane(I.B, K, I.Lanes, RCX);
  switch (I.SrcOpc) {
  case ValueID::Shl:
    Asm.aluRR(Alu::Xor, RDX, RDX);
    Asm.shlCl(RAX); // Uses cl & 63; the cmov below repairs B >= Bits.
    Asm.aluRI(Alu::Cmp, RCX, static_cast<int32_t>(Bits));
    Asm.cmovRR(Cond::AE, RAX, RDX);
    maskTo(RAX, Bits, RDX);
    break;
  case ValueID::LShr:
    Asm.aluRR(Alu::Xor, RDX, RDX);
    Asm.shrCl(RAX);
    Asm.aluRI(Alu::Cmp, RCX, static_cast<int32_t>(Bits));
    Asm.cmovRR(Cond::AE, RAX, RDX);
    break;
  case ValueID::AShr:
    // Amount = min(B, Bits - 1), then an arithmetic shift of the
    // sign-extended value.
    sext64(RAX, Bits);
    Asm.movRI(RDX, Bits - 1);
    Asm.aluRI(Alu::Cmp, RCX, static_cast<int32_t>(Bits));
    Asm.cmovRR(Cond::AE, RCX, RDX);
    Asm.sarCl(RAX);
    maskTo(RAX, Bits, RDX);
    break;
  default:
    fail("unsupported shift opcode in JIT");
    return;
  }
  storeLane(I.Dst, K, I.Lanes, RAX);
}

void Lowerer::lowerIntBin(const VMInst &I) {
  unsigned L = I.Lanes;
  switch (I.SrcOpc) {
  case ValueID::UDiv:
  case ValueID::SDiv:
  case ValueID::URem:
  case ValueID::SRem:
    for (unsigned K = 0; K != L; ++K)
      emitIntDivLane(I, K);
    return;
  case ValueID::Shl:
  case ValueID::LShr:
  case ValueID::AShr:
    for (unsigned K = 0; K != L; ++K)
      emitIntShiftLane(I, K);
    return;
  default:
    break;
  }
  unsigned Bits = I.SrcK.Bits;
  bool VecCapable = false;
  switch (I.SrcOpc) {
  case ValueID::Add:
  case ValueID::Sub:
  case ValueID::And:
  case ValueID::Or:
  case ValueID::Xor:
    VecCapable = true;
    break;
  case ValueID::Mul:
    // pmuludq is exact when both operands fit 32 bits (they are stored
    // truncated to Bits <= 32).
    VecCapable = Bits <= 32;
    break;
  default:
    break;
  }
  bool UseVec = VecCapable && L >= 2 && !forwardOverlap(I.Dst, I.A, L) &&
                !forwardOverlap(I.Dst, I.B, L);
  unsigned K = 0;
  if (UseVec) {
    bool NeedMask = I.SrcOpc == ValueID::Mul ||
                    ((I.SrcOpc == ValueID::Add || I.SrcOpc == ValueID::Sub) &&
                     Bits < 64);
    if (NeedMask) {
      Asm.movRI(RAX, maskVal(Bits));
      Asm.movqXR(XMM7, RAX);
      Asm.punpcklqdq(XMM7, XMM7);
    }
    for (; K + 2 <= L; K += 2) {
      Asm.movupsXM(XMM0, slot(I.A + K));
      Asm.movupsXM(XMM1, slot(I.B + K));
      switch (I.SrcOpc) {
      case ValueID::Add:
        Asm.paddq(XMM0, XMM1);
        break;
      case ValueID::Sub:
        Asm.psubq(XMM0, XMM1);
        break;
      case ValueID::Mul:
        Asm.pmuludq(XMM0, XMM1);
        break;
      case ValueID::And:
        Asm.pand(XMM0, XMM1);
        break;
      case ValueID::Or:
        Asm.por(XMM0, XMM1);
        break;
      default:
        Asm.pxor(XMM0, XMM1);
        break;
      }
      if (NeedMask)
        Asm.pand(XMM0, XMM7);
      Asm.movupsMX(slot(I.Dst + K), XMM0);
    }
  }
  for (; K != L; ++K)
    emitIntALULane(I, K);
}

void Lowerer::emitFPLane(const VMInst &I, unsigned K) {
  bool F32 = I.SrcK.IsFloat32;
  bool Swap = swapOperands(I.SrcOpc, F32);
  loadLane(I.A, K, I.Lanes, RAX);
  loadLane(I.B, K, I.Lanes, RCX);
  if (F32) {
    Asm.movdXR(XMM0, RAX);
    Asm.cvtss2sd(XMM0, XMM0);
    Asm.movdXR(XMM1, RCX);
    Asm.cvtss2sd(XMM1, XMM1);
  } else {
    Asm.movqXR(XMM0, RAX);
    Asm.movqXR(XMM1, RCX);
  }
  Xmm D = Swap ? XMM1 : XMM0;
  Xmm S = Swap ? XMM0 : XMM1;
  switch (I.SrcOpc) {
  case ValueID::FAdd:
    Asm.addsd(D, S);
    break;
  case ValueID::FMul:
    Asm.mulsd(D, S);
    break;
  case ValueID::FSub:
    Asm.subsd(XMM0, XMM1);
    D = XMM0;
    break;
  case ValueID::FDiv:
    Asm.divsd(XMM0, XMM1);
    D = XMM0;
    break;
  default:
    fail("unsupported FP opcode in JIT");
    return;
  }
  if (F32) {
    Asm.cvtsd2ss(D, D);
    Asm.movdRX(RDX, D);
  } else {
    Asm.movqRX(RDX, D);
  }
  storeLane(I.Dst, K, I.Lanes, RDX);
}

void Lowerer::lowerFPBin(const VMInst &I) {
  unsigned L = I.Lanes;
  bool F32 = I.SrcK.IsFloat32;
  bool Swap = swapOperands(I.SrcOpc, F32);
  bool UseVec = L >= 2 && !forwardOverlap(I.Dst, I.A, L) &&
                !forwardOverlap(I.Dst, I.B, L);
  unsigned K = 0;
  if (UseVec) {
    for (; K + 2 <= L; K += 2) {
      if (F32) {
        // Lanes are f32 bit patterns zero-extended in u64 slots: gather
        // the two payload dwords, widen to double, operate, narrow, and
        // re-spread with zeroed high dwords (the encodeFP layout).
        Asm.movupsXM(XMM0, slot(I.A + K));
        Asm.shufps(XMM0, XMM0, 0x08);
        Asm.cvtps2pd(XMM0, XMM0);
        Asm.movupsXM(XMM1, slot(I.B + K));
        Asm.shufps(XMM1, XMM1, 0x08);
        Asm.cvtps2pd(XMM1, XMM1);
      } else {
        Asm.movupsXM(XMM0, slot(I.A + K));
        Asm.movupsXM(XMM1, slot(I.B + K));
      }
      Xmm D = Swap ? XMM1 : XMM0;
      Xmm S = Swap ? XMM0 : XMM1;
      switch (I.SrcOpc) {
      case ValueID::FAdd:
        Asm.addpd(D, S);
        break;
      case ValueID::FMul:
        Asm.mulpd(D, S);
        break;
      case ValueID::FSub:
        Asm.subpd(XMM0, XMM1);
        D = XMM0;
        break;
      case ValueID::FDiv:
        Asm.divpd(XMM0, XMM1);
        D = XMM0;
        break;
      default:
        fail("unsupported FP opcode in JIT");
        return;
      }
      if (F32) {
        Asm.cvtpd2ps(D, D);
        Asm.xorps(XMM2, XMM2);
        Asm.unpcklps(D, XMM2);
      }
      Asm.movupsMX(slot(I.Dst + K), D);
    }
  }
  for (; K != L; ++K)
    emitFPLane(I, K);
}

void Lowerer::lowerCast(const VMInst &I) {
  for (unsigned K = 0; K != I.Lanes; ++K) {
    loadLane(I.A, K, I.Lanes, RAX);
    switch (I.SrcOpc) {
    case ValueID::SExt:
      sext64(RAX, I.SrcK.Bits);
      maskTo(RAX, I.DstK.Bits, RCX);
      break;
    case ValueID::ZExt:
      break; // Lanes are stored zero-extended already.
    case ValueID::Trunc:
      maskTo(RAX, I.DstK.Bits, RCX);
      break;
    case ValueID::SIToFP:
      sext64(RAX, I.SrcK.Bits);
      Asm.cvtsi2sd(XMM0, RAX);
      if (I.DstK.IsFloat32) {
        // int64 -> double -> float, exactly the reference's two steps
        // (direct cvtsi2ss would double-round differently past 2^53).
        Asm.cvtsd2ss(XMM0, XMM0);
        Asm.movdRX(RAX, XMM0);
      } else {
        Asm.movqRX(RAX, XMM0);
      }
      break;
    case ValueID::FPToSI: {
      if (I.SrcK.IsFloat32) {
        Asm.movdXR(XMM0, RAX);
        Asm.cvtss2sd(XMM0, XMM0);
      } else {
        Asm.movqXR(XMM0, RAX);
      }
      // Saturating conversion: NaN -> 0, |D| >= 2^63 clamps (the
      // reference defines out-of-range conversions this way).
      Assembler::Label Done = Asm.newLabel();
      Assembler::Label NotNan = Asm.newLabel();
      Assembler::Label NotMax = Asm.newLabel();
      Assembler::Label NotMin = Asm.newLabel();
      Asm.ucomisd(XMM0, XMM0);
      Asm.jcc(Cond::NP, NotNan);
      Asm.movRI(RAX, 0);
      Asm.jmp(Done);
      Asm.bind(NotNan);
      Asm.movRI(RAX, 0x43E0000000000000ull); // 2^63 as a double.
      Asm.movqXR(XMM1, RAX);
      Asm.ucomisd(XMM0, XMM1);
      Asm.jcc(Cond::B, NotMax);
      Asm.movRI(RAX, 0x7FFFFFFFFFFFFFFFull);
      Asm.jmp(Done);
      Asm.bind(NotMax);
      Asm.movRI(RAX, 0xC3E0000000000000ull); // -2^63.
      Asm.movqXR(XMM1, RAX);
      Asm.ucomisd(XMM1, XMM0);
      Asm.jcc(Cond::B, NotMin);
      Asm.movRI(RAX, 0x8000000000000000ull);
      Asm.jmp(Done);
      Asm.bind(NotMin);
      Asm.cvttsd2si(RAX, XMM0);
      Asm.bind(Done);
      maskTo(RAX, I.DstK.Bits, RCX);
      break;
    }
    default:
      fail("unsupported cast opcode in JIT");
      return;
    }
    storeLane(I.Dst, K, I.Lanes, RAX);
  }
}

void Lowerer::lowerICmp(const VMInst &I) {
  auto Pred = static_cast<ICmpInst::Predicate>(I.Imm);
  Cond CC = Cond::E;
  bool Signed = false;
  switch (Pred) {
  case ICmpInst::EQ:
    CC = Cond::E;
    break;
  case ICmpInst::NE:
    CC = Cond::NE;
    break;
  case ICmpInst::SLT:
    CC = Cond::L;
    Signed = true;
    break;
  case ICmpInst::SLE:
    CC = Cond::LE;
    Signed = true;
    break;
  case ICmpInst::SGT:
    CC = Cond::G;
    Signed = true;
    break;
  case ICmpInst::SGE:
    CC = Cond::GE;
    Signed = true;
    break;
  case ICmpInst::ULT:
    CC = Cond::B;
    break;
  case ICmpInst::ULE:
    CC = Cond::BE;
    break;
  case ICmpInst::UGT:
    CC = Cond::A;
    break;
  case ICmpInst::UGE:
    CC = Cond::AE;
    break;
  }
  Gpr A = Cache.read(I.A, RAX);
  Gpr B = Cache.read(I.B, RCX);
  if (Signed && !I.SrcK.IsPointer && I.SrcK.Bits < 64) {
    // Compare the sign-extended values in scratch copies (cached
    // registers must keep their zero-extended storage form).
    if (A != RAX)
      Asm.movRR(RAX, A);
    sext64(RAX, I.SrcK.Bits);
    if (B != RCX)
      Asm.movRR(RCX, B);
    sext64(RCX, I.SrcK.Bits);
    Asm.aluRR(Alu::Cmp, RAX, RCX);
  } else {
    Asm.aluRR(Alu::Cmp, A, B);
  }
  Asm.setcc(CC, RDX);
  Asm.movzx8RR(RDX, RDX);
  Cache.commitFrom(I.Dst, RDX);
}

void Lowerer::lowerSelect(const VMInst &I) {
  Gpr CondR = Cache.read(I.A, RAX);
  Asm.testRI(CondR, 1);
  // Only flag-preserving movs may follow until the cmovs are done.
  if (I.Lanes == 1) {
    Gpr T = Cache.read(I.B, RCX);
    Gpr F = Cache.read(I.C, RDX);
    if (F != RDX)
      Asm.movRR(RDX, F);
    Asm.cmovRR(Cond::NE, RDX, T);
    Cache.commitFrom(I.Dst, RDX);
    return;
  }
  for (unsigned K = 0; K != I.Lanes; ++K) {
    Asm.movRM(RCX, slot(I.C + K));
    Asm.cmovRM(Cond::NE, RCX, slot(I.B + K));
    Asm.movMR(slot(I.Dst + K), RCX);
  }
}

void Lowerer::lowerSelectLanes(const VMInst &I) {
  unsigned L = I.Lanes;
  // SSE2 blend: mask = 0 - (cond & 1) per 64-bit lane (all-ones or zero),
  // result = (T & mask) | (F & ~mask). Bit-exact with LaneOps'
  // evalSelectLane — only bit 0 of each condition lane is significant.
  bool UseVec = L >= 2 && !forwardOverlap(I.Dst, I.A, L) &&
                !forwardOverlap(I.Dst, I.B, L) &&
                !forwardOverlap(I.Dst, I.C, L);
  unsigned K = 0;
  if (UseVec) {
    // XMM7 = {1, 1}: the per-lane condition bit mask.
    Asm.movRI(RAX, 1);
    Asm.movqXR(XMM7, RAX);
    Asm.punpcklqdq(XMM7, XMM7);
    for (; K + 2 <= L; K += 2) {
      Asm.movupsXM(XMM0, slot(I.A + K));
      Asm.pand(XMM0, XMM7);  // cond & 1
      Asm.pxor(XMM1, XMM1);
      Asm.psubq(XMM1, XMM0); // mask = 0 - cond
      Asm.movupsXM(XMM2, slot(I.B + K));
      Asm.pand(XMM2, XMM1);  // T & mask
      Asm.movupsXM(XMM3, slot(I.C + K));
      Asm.pandn(XMM1, XMM3); // ~mask & F
      Asm.por(XMM2, XMM1);
      Asm.movupsMX(slot(I.Dst + K), XMM2);
    }
  }
  for (; K != L; ++K) {
    // Scalar tail / overlap fallback: test the lane's condition bit and
    // cmov, matching the VM's sequential lane order.
    Asm.movRM(RAX, slot(I.A + K));
    Asm.testRI(RAX, 1);
    Asm.movRM(RCX, slot(I.C + K));
    Asm.cmovRM(Cond::NE, RCX, slot(I.B + K));
    Asm.movMR(slot(I.Dst + K), RCX);
  }
}

void Lowerer::emitBoundsCheck(Gpr Ptr, unsigned K, unsigned Size) {
  // LaneAddr = Ptr + K*Size and LaneAddr + Size both wrap mod 2^64,
  // exactly like the VM's uint64 arithmetic.
  if (K == 0)
    Asm.movRR(RCX, Ptr);
  else
    Asm.leaRM(RCX, mem(Ptr, static_cast<int32_t>(K * Size)));
  Asm.aluRI(Alu::Cmp, RCX, 4096);
  Asm.jcc(Cond::B, trapTo(TrapCode::OutOfBounds));
  Asm.leaRM(RDX, mem(RCX, static_cast<int32_t>(Size)));
  Asm.aluRR(Alu::Cmp, RDX, MemSizeReg);
  Asm.jcc(Cond::A, trapTo(TrapCode::OutOfBounds));
}

void Lowerer::lowerLoad(const VMInst &I) {
  unsigned Size = static_cast<unsigned>(I.Imm);
  Gpr Ptr = Cache.read(I.A, RAX);
  for (unsigned K = 0; K != I.Lanes; ++K) {
    emitBoundsCheck(Ptr, K, Size);
    MemRef Src = mem(MemBaseReg, RCX, 0, 0);
    switch (Size) {
    case 8:
      Asm.movRM(RDX, Src);
      break;
    case 4:
      Asm.mov32RM(RDX, Src);
      break;
    case 2:
      Asm.movzx16RM(RDX, Src);
      break;
    default:
      Asm.movzx8RM(RDX, Src);
      break;
    }
    storeLane(I.Dst, K, I.Lanes, RDX);
  }
}

void Lowerer::lowerStore(const VMInst &I) {
  unsigned Size = static_cast<unsigned>(I.Imm);
  Gpr Ptr = Cache.read(I.B, RAX);
  for (unsigned K = 0; K != I.Lanes; ++K) {
    emitBoundsCheck(Ptr, K, Size);
    Gpr Val;
    if (I.Lanes == 1) {
      Val = Cache.read(I.A, RDX);
    } else {
      Asm.movRM(RDX, slot(I.A + K));
      Val = RDX;
    }
    MemRef Dst = mem(MemBaseReg, RCX, 0, 0);
    switch (Size) {
    case 8:
      Asm.movMR(Dst, Val);
      break;
    case 4:
      Asm.mov32MR(Dst, Val);
      break;
    case 2:
      Asm.mov16MR(Dst, Val);
      break;
    default:
      Asm.mov8MR(Dst, Val);
      break;
    }
  }
}

NativeFunction Lowerer::compile() {
  // --- Validation: anything the JIT cannot express becomes a clean
  // compile error, and the engine runs that function on the VM instead.
  if (!CF.CompileError.empty()) {
    Result.Error = CF.CompileError;
    return std::move(Result);
  }
  if (static_cast<uint64_t>(CF.NumSlots) * 8 >= (uint64_t(1) << 28)) {
    Result.Error = "frame too large for JIT addressing";
    return std::move(Result);
  }
  for (const VMInst &I : CF.Code) {
    if (I.Op == VMOp::Ret && I.Lanes > kMaxRetLanes)
      fail("return value wider than the JIT ABI");
    if ((I.Op == VMOp::Load || I.Op == VMOp::Store) && I.Imm != 1 &&
        I.Imm != 2 && I.Imm != 4 && I.Imm != 8)
      fail("unsupported memory access size");
    if (I.Op == VMOp::Shuffle &&
        (I.Imm < 0 ||
         static_cast<size_t>(I.Imm) + I.Lanes > CF.MaskPool.size()))
      fail("malformed shuffle mask");
  }
  if (failed())
    return std::move(Result);

  if (Opts.CollectStats) {
    for (const VMInst &I : CF.Code)
      if (I.Charged && !StatIdx.count({I.SrcOpc, I.StatVec})) {
        StatIdx.emplace(std::make_pair(I.SrcOpc, I.StatVec),
                        static_cast<unsigned>(Result.StatKeys.size()));
        Result.StatKeys.emplace_back(I.SrcOpc, I.StatVec);
      }
  }

  // Branch targets need labels (and a cache flush on every edge).
  PCLabel.assign(CF.Code.size(), -1);
  auto NeedLabel = [&](uint32_t PC) {
    if (PC < PCLabel.size() && PCLabel[PC] < 0)
      PCLabel[PC] = Asm.newLabel();
  };
  for (const VMInst &I : CF.Code) {
    if (I.Op == VMOp::Jump || I.Op == VMOp::Br) {
      NeedLabel(I.Dst);
    } else if (I.Op == VMOp::CondBr) {
      NeedLabel(I.Dst);
      NeedLabel(I.B);
    }
  }
  EpilogueL = Asm.newLabel();

  // --- Prologue: save callee-saved state, load the machine registers.
  if (Opts.BuildListing)
    Asm.comment("prologue");
  Asm.push(RBX);
  Asm.push(RBP);
  Asm.push(R12);
  Asm.push(R13);
  Asm.push(R14);
  Asm.push(R15);
  Asm.movRR(CtxReg, RDI);
  Asm.movRM(FrameReg, mem(CtxReg, OffFrame));
  Asm.movRM(MemBaseReg, mem(CtxReg, OffMemBase));
  Asm.movRM(MemSizeReg, mem(CtxReg, OffMemSize));
  Asm.aluRR(Alu::Xor, InstsReg, InstsReg);
  Asm.aluRR(Alu::Xor, CostReg, CostReg);

  // --- Body.
  for (size_t PC = 0; PC != CF.Code.size() && !failed(); ++PC) {
    if (PCLabel[PC] >= 0) {
      Cache.flush();
      Asm.bind(PCLabel[PC]);
    }
    const VMInst &I = CF.Code[PC];
    if (Opts.BuildListing) {
      char Buf[32];
      std::snprintf(Buf, sizeof(Buf), "[%4zu] ", PC);
      Asm.comment(Buf + printVMInst(CF, PC));
    }
    Cache.beginInst();
    if (I.Charged)
      charge(I);
    switch (I.Op) {
    case VMOp::IntBin:
      lowerIntBin(I);
      break;
    case VMOp::FPBin:
      lowerFPBin(I);
      break;
    case VMOp::Cast:
      lowerCast(I);
      break;
    case VMOp::ICmp:
      lowerICmp(I);
      break;
    case VMOp::Select:
      lowerSelect(I);
      break;
    case VMOp::SelectLanes:
      lowerSelectLanes(I);
      break;
    case VMOp::Load:
      lowerLoad(I);
      break;
    case VMOp::Store:
      lowerStore(I);
      break;
    case VMOp::Gep: {
      Gpr Base = Cache.read(I.A, RAX);
      Gpr Idx = Cache.read(I.B, RCX);
      if (Idx != RCX)
        Asm.movRR(RCX, Idx);
      sext64(RCX, I.SrcK.Bits);
      if (I.Imm >= INT32_MIN && I.Imm <= INT32_MAX) {
        Asm.imulRRI(RCX, RCX, static_cast<int32_t>(I.Imm));
      } else {
        Asm.movRI(RDX, static_cast<uint64_t>(I.Imm));
        Asm.imulRR(RCX, RDX);
      }
      Asm.aluRR(Alu::Add, RCX, Base);
      Cache.commitFrom(I.Dst, RCX);
      break;
    }
    case VMOp::InsertElt: {
      Gpr Lane = Cache.read(I.C, RAX);
      Asm.aluRI(Alu::Cmp, Lane, static_cast<int32_t>(I.Lanes));
      Asm.jcc(Cond::AE, trapTo(TrapCode::InsertLane));
      if (I.Dst != I.A)
        for (unsigned K = 0; K != I.Lanes; ++K) {
          Asm.movRM(RDX, slot(I.A + K));
          Asm.movMR(slot(I.Dst + K), RDX);
        }
      // The element is read *after* the copy, like the VM.
      Gpr Elt = Cache.read(I.B, RCX);
      Asm.movMR(mem(FrameReg, Lane, 3, static_cast<int32_t>(I.Dst * 8)), Elt);
      break;
    }
    case VMOp::ExtractElt: {
      Gpr Lane = Cache.read(I.B, RAX);
      Asm.aluRI(Alu::Cmp, Lane, static_cast<int32_t>(I.Lanes));
      Asm.jcc(Cond::AE, trapTo(TrapCode::ExtractLane));
      Asm.movRM(RDX, mem(FrameReg, Lane, 3, static_cast<int32_t>(I.A * 8)));
      Cache.commitFrom(I.Dst, RDX);
      break;
    }
    case VMOp::Shuffle:
      for (unsigned K = 0; K != I.Lanes; ++K) {
        int M = CF.MaskPool[static_cast<size_t>(I.Imm) + K];
        if (M < 0) {
          Asm.movMI(slot(I.Dst + K), 0);
        } else {
          uint32_t Src = static_cast<uint32_t>(M) < I.C
                             ? I.A + static_cast<uint32_t>(M)
                             : I.B + (static_cast<uint32_t>(M) - I.C);
          Asm.movRM(RAX, slot(Src));
          Asm.movMR(slot(I.Dst + K), RAX);
        }
      }
      break;
    case VMOp::Copy:
    case VMOp::PhiCommit:
      if (I.Lanes == 1) {
        Gpr A = Cache.read(I.A, RAX);
        Cache.commitFrom(I.Dst, A);
      } else {
        for (unsigned K = 0; K != I.Lanes; ++K) {
          Asm.movRM(RAX, slot(I.A + K));
          Asm.movMR(slot(I.Dst + K), RAX);
        }
      }
      break;
    case VMOp::Jump:
    case VMOp::Br:
      Cache.flush();
      Asm.jmp(PCLabel[I.Dst]);
      break;
    case VMOp::CondBr: {
      Gpr CondR = Cache.read(I.A, RAX);
      Asm.testRI(CondR, 1);
      Cache.flush(); // Emits only movs; the flags survive to the jcc.
      Asm.jcc(Cond::NE, PCLabel[I.Dst]);
      Asm.jmp(PCLabel[I.B]);
      break;
    }
    case VMOp::Ret:
      Result.RetTy = I.Ty;
      Cache.flush();
      for (unsigned K = 0; K != I.Lanes; ++K) {
        Asm.movRM(RAX, slot(I.A + K));
        Asm.movMR(mem(CtxReg, OffRetLanes + static_cast<int32_t>(K) * 8),
                  RAX);
      }
      Asm.mov32MI(mem(CtxReg, OffRetLaneCount),
                  static_cast<int32_t>(I.Lanes));
      Asm.jmp(EpilogueL);
      break;
    case VMOp::RetVoid:
      // RetLaneCount/TrapCode are host-preinitialized to zero.
      Asm.jmp(EpilogueL);
      break;
    }
  }
  if (failed())
    return std::move(Result);

  // --- Epilogue: publish the counters, restore, return.
  if (Opts.BuildListing)
    Asm.comment("epilogue");
  Asm.bind(EpilogueL);
  Asm.movMR(mem(CtxReg, OffDynamicInsts), InstsReg);
  Asm.movMR(mem(CtxReg, OffTotalCost), CostReg);
  Asm.pop(R15);
  Asm.pop(R14);
  Asm.pop(R13);
  Asm.pop(R12);
  Asm.pop(RBP);
  Asm.pop(RBX);
  Asm.ret();

  // --- Trap stubs (register state is discarded on traps; only memory,
  // counters and the code matter).
  for (int C = 1; C != 11; ++C) {
    if (TrapLab[C] < 0)
      continue;
    if (Opts.BuildListing)
      Asm.comment(std::string("trap: ") +
                  trapCodeReason(static_cast<TrapCode>(C)));
    Asm.bind(TrapLab[C]);
    Asm.mov32MI(mem(CtxReg, OffTrapCode), C);
    Asm.jmp(EpilogueL);
  }

  if (!Asm.finalize()) {
    Result.Error = "internal JIT error: unbound label";
    return std::move(Result);
  }
  Result.Code = Asm.code();
  if (Opts.BuildListing)
    Result.Listing = Asm.listing();
  return std::move(Result);
}

} // namespace

NativeFunction jit::compileNative(const CompiledFunction &CF,
                                  const NativeOptions &Opts) {
  return Lowerer(CF, Opts).compile();
}
