//===- jit/RegAlloc.cpp - Linear-scan register cache ------------------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "jit/RegAlloc.h"

#include <cassert>

using namespace lslp;
using namespace lslp::jit;

constexpr Gpr RegCache::Pool[];
constexpr unsigned RegCache::PoolSize;

int RegCache::find(uint32_t Slot) const {
  for (unsigned I = 0; I != PoolSize; ++I)
    if (Regs[I].Slot == static_cast<int64_t>(Slot))
      return static_cast<int>(I);
  return -1;
}

int RegCache::allocate() {
  // Prefer an empty entry.
  for (unsigned I = 0; I != PoolSize; ++I)
    if (Regs[I].Slot < 0)
      return static_cast<int>(I);
  // Evict the least recently used unpinned entry.
  int Victim = -1;
  for (unsigned I = 0; I != PoolSize; ++I) {
    if (Regs[I].Pinned)
      continue;
    if (Victim < 0 || Regs[I].LastUse < Regs[Victim].LastUse)
      Victim = static_cast<int>(I);
  }
  assert(Victim >= 0 && "all cache registers pinned by one instruction");
  if (Regs[Victim].Dirty)
    Asm.movMR(slotMem(static_cast<uint32_t>(Regs[Victim].Slot)),
              Pool[Victim]);
  Regs[Victim] = Entry();
  return Victim;
}

Gpr RegCache::read(uint32_t Slot, Gpr Scratch) {
  if (!isCacheable(Slot)) {
    Asm.movRM(Scratch, slotMem(Slot));
    return Scratch;
  }
  int I = find(Slot);
  if (I < 0) {
    I = allocate();
    Regs[I].Slot = Slot;
    Asm.movRM(Pool[I], slotMem(Slot));
  }
  Regs[I].Pinned = true;
  Regs[I].LastUse = ++Clock;
  return Pool[I];
}

Gpr RegCache::writeReg(uint32_t Slot, Gpr Scratch) {
  if (!isCacheable(Slot))
    return Scratch;
  int I = find(Slot);
  if (I < 0) {
    I = allocate();
    Regs[I].Slot = Slot;
  }
  Regs[I].Pinned = true;
  Regs[I].LastUse = ++Clock;
  return Pool[I];
}

void RegCache::commit(uint32_t Slot, Gpr ValueReg) {
  if (!isCacheable(Slot)) {
    Asm.movMR(slotMem(Slot), ValueReg);
    return;
  }
  int I = find(Slot);
  assert(I >= 0 && Pool[I] == ValueReg && "commit without writeReg");
  (void)ValueReg;
  Regs[I].Dirty = true;
}

void RegCache::commitFrom(uint32_t Slot, Gpr ValueReg) {
  if (!isCacheable(Slot)) {
    Asm.movMR(slotMem(Slot), ValueReg);
    return;
  }
  Gpr Dst = writeReg(Slot, ValueReg);
  if (Dst != ValueReg)
    Asm.movRR(Dst, ValueReg);
  commit(Slot, Dst);
}

void RegCache::flush() {
  for (unsigned I = 0; I != PoolSize; ++I) {
    if (Regs[I].Slot >= 0 && Regs[I].Dirty)
      Asm.movMR(slotMem(static_cast<uint32_t>(Regs[I].Slot)), Pool[I]);
    Regs[I] = Entry();
  }
}
