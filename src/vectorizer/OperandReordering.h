//===- vectorizer/OperandReordering.h - Operand reordering ------*- C++ -*-===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The top-level operand reordering of (L)SLP (paper §4.3, Listings 5-6,
/// Table 1). Given the operand matrix of a commutative group node or a
/// multi-node (operand slots x lanes), permutes each lane's operands so
/// that each slot holds mutually-vectorizable values across lanes. A
/// single left-to-right pass, no backtracking; with look-ahead enabled
/// (LSLP) ties between opcode-matching candidates are broken by
/// getLookAheadScore; without it (vanilla SLP) the first match wins.
///
//===----------------------------------------------------------------------===//

#ifndef LSLP_VECTORIZER_OPERANDREORDERING_H
#define LSLP_VECTORIZER_OPERANDREORDERING_H

#include "vectorizer/Config.h"

#include <vector>

namespace lslp {

class Value;
class VectorizerBudget;

/// The per-slot search mode (paper Table 1).
enum class OperandMode : uint8_t {
  Constant, ///< Look for a constant.
  Load,     ///< Look for the load consecutive to the previous lane's.
  Opcode,   ///< Look for an instruction of the same opcode.
  Splat,    ///< Look for the exact same value.
  Failed,   ///< Slot can no longer vectorize; yields to other slots.
};

/// Result of one reordering: the permuted matrix plus per-slot outcome.
struct ReorderResult {
  /// Final[Slot][Lane] — same dimensions as the input.
  std::vector<std::vector<Value *>> Final;
  /// Mode each slot ended in (Failed slots will gather).
  std::vector<OperandMode> Modes;
  /// True if any lane's operands ended up permuted w.r.t. the input.
  bool Changed = false;
};

/// Reorders \p Operands[Slot][Lane] (all rows of equal length, >= 1 slot,
/// >= 2 lanes). Lane 0 is taken as-is (its order is final, Listing 5
/// line 5). Uses look-ahead tie-breaking and splat detection per \p Config.
/// Candidate selections, permutation evaluations and look-ahead scores
/// charge \p Budget (when non-null); on exhaustion the input order is
/// returned unchanged and the caller abandons the function.
ReorderResult
reorderOperands(const std::vector<std::vector<Value *>> &Operands,
                const VectorizerConfig &Config,
                VectorizerBudget *Budget = nullptr);

/// Applies a fixed per-lane slot assignment instead of searching: slot S
/// of lane L receives \p Operands[LanePerms[L][S]][L]. LanePerms[0] must
/// be the identity (lane 0's order is final, as in reorderOperands); each
/// LanePerms[L] must be a permutation of [0, #slots). Recomputes the
/// per-slot modes the same way the search paths do and emits a
/// reorder-choice remark with strategy "global". This is the replay half
/// of the global packing solver: it scores operand assignments by total
/// graph cost rather than by local heuristics.
ReorderResult applyOperandAssignment(
    const std::vector<std::vector<Value *>> &Operands,
    const std::vector<std::vector<unsigned>> &LanePerms,
    const VectorizerConfig &Config);

} // namespace lslp

#endif // LSLP_VECTORIZER_OPERANDREORDERING_H
