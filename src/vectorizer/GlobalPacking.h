//===- vectorizer/GlobalPacking.h - Global packing strategy -----*- C++ -*-===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Driver of the `--slp-strategy=global` statement-packing strategy: runs
/// the PackSetSolver over one seed bundle, rebuilds the winning plan's
/// graph with remarks enabled (so the decision trace has the same shape
/// as greedy's, plus the solver's own remarks), and hands graph +
/// scheduler back to SLPVectorizerPass, which costs, reports, and
/// generates code through the unchanged pipeline. Reductions are not
/// routed through the solver: their packing has no commutative-operand
/// permutation freedom at the bundle level, so both strategies treat them
/// identically.
///
//===----------------------------------------------------------------------===//

#ifndef LSLP_VECTORIZER_GLOBALPACKING_H
#define LSLP_VECTORIZER_GLOBALPACKING_H

#include "vectorizer/GraphBuilder.h"

#include <memory>
#include <optional>
#include <vector>

namespace lslp {

class BasicBlock;
class Instruction;
class TargetTransformInfo;
class VectorizerBudget;

/// One solved seed bundle: the committed graph (when one formed) plus the
/// builder that owns the scheduler codegen needs, and the solver's
/// accounting for remarks/reports.
struct GlobalPackAttempt {
  /// The winning graph; nullopt when the bundle forms no vectorizable
  /// root (matching the greedy builder's nullopt).
  std::optional<SLPGraph> Graph;
  /// Builder that produced Graph; owns the BundleScheduler.
  std::unique_ptr<SLPGraphBuilder> Builder;
  /// The winning plan (kept alive for the builder's lifetime).
  std::unique_ptr<ReorderPlan> Plan;
  /// Static cost of the greedy plan's graph.
  int GreedyCost = 0;
  /// Static cost of the committed (winning) plan's graph; always
  /// <= GreedyCost, equal when greedy won or tied.
  int SolvedCost = 0;
  /// Candidate plans the solver evaluated.
  unsigned Candidates = 0;
  /// Reordering sites in the bundle's build.
  unsigned Sites = 0;
  /// True when the candidate cap cut the search short.
  bool Capped = false;
};

/// Packs \p Seeds with the global strategy. Never mutates IR (only the
/// pass's later codegen does). On budget exhaustion returns early with no
/// graph — the caller polls Budget->exhausted() exactly as on the greedy
/// path. Emits global-packing-solved / global-packing-budget remarks
/// through \p Config.Remarks.
GlobalPackAttempt packBundleGlobally(const VectorizerConfig &Config,
                                     const TargetTransformInfo &TTI,
                                     BasicBlock &BB,
                                     const std::vector<Instruction *> &Seeds,
                                     VectorizerBudget *Budget);

} // namespace lslp

#endif // LSLP_VECTORIZER_GLOBALPACKING_H
