//===- vectorizer/SLPVectorizerPass.h - Pass driver -------------*- C++ -*-===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The (L)SLP vectorization pass: the full pipeline of Figure 1 — seed
/// collection, graph construction (per VectorizerConfig), cost evaluation
/// against the TTI, and vector code generation for profitable graphs. Also
/// produces the per-attempt report the benchmark harness consumes (static
/// costs, node counts, acceptance).
///
//===----------------------------------------------------------------------===//

#ifndef LSLP_VECTORIZER_SLPVECTORIZERPASS_H
#define LSLP_VECTORIZER_SLPVECTORIZERPASS_H

#include "vectorizer/Config.h"

#include <string>
#include <vector>

namespace lslp {

class Function;
class Module;
class TargetTransformInfo;

/// Outcome of one seed-bundle vectorization attempt.
struct GraphAttempt {
  unsigned NumLanes = 0;
  unsigned NumNodes = 0;
  unsigned NumVectorizableNodes = 0;
  int Cost = 0;
  bool Accepted = false;
  bool UsedReordering = false;
  /// True for horizontal-reduction attempts (tree seeds, paper §2.2);
  /// false for adjacent-store seeds.
  bool IsReduction = false;
  /// Rendered graph (populated when SLPVectorizerPass::setVerbose(true)).
  std::string GraphDump;
  /// Graphviz rendering of the same graph (verbose mode only).
  std::string GraphDot;
};

/// Per-function vectorization report.
struct FunctionReport {
  std::string FunctionName;
  std::vector<GraphAttempt> Attempts;

  /// True when a resource budget (or an injected fault) aborted the
  /// vectorization of this function: every transformation was rolled back
  /// and the scalar body kept. Attempts is empty in that case — nothing
  /// the pass tried survived.
  bool BudgetExhausted = false;
  /// Stable reason ("node-budget", "permutation-budget", "time-budget",
  /// "fault-injected", "verify-failed"); empty when not exhausted.
  std::string ExhaustionReason;

  /// Sum of the costs of accepted graphs (the "static cost" of Figures
  /// 10-11; more negative is better).
  int acceptedCost() const {
    int Total = 0;
    for (const GraphAttempt &A : Attempts)
      if (A.Accepted)
        Total += A.Cost;
    return Total;
  }
  unsigned numAccepted() const {
    unsigned N = 0;
    for (const GraphAttempt &A : Attempts)
      N += A.Accepted;
    return N;
  }
};

/// Whole-module report.
struct ModuleReport {
  std::vector<FunctionReport> Functions;

  int acceptedCost() const {
    int Total = 0;
    for (const FunctionReport &F : Functions)
      Total += F.acceptedCost();
    return Total;
  }
  unsigned numAccepted() const {
    unsigned N = 0;
    for (const FunctionReport &F : Functions)
      N += F.numAccepted();
    return N;
  }
};

/// The vectorization pass. Stateless across runs; reusable.
class SLPVectorizerPass {
public:
  SLPVectorizerPass(const VectorizerConfig &Config,
                    const TargetTransformInfo &TTI)
      : Config(Config), TTI(TTI) {}

  /// Vectorizes profitable seed bundles in \p F (mutates the IR).
  FunctionReport runOnFunction(Function &F);

  /// Runs on every function of \p M. With \p Jobs > 1, independent
  /// functions are vectorized concurrently on a fixed-size thread pool;
  /// the result — transformed IR, per-function reports, remarks stream,
  /// statistics totals — is byte-identical to the serial run. Remarks are
  /// captured per worker and replayed into Config.Remarks in function-
  /// declaration order (see DESIGN.md "Concurrency model").
  ModuleReport runOnModule(Module &M, unsigned Jobs = 1);

  /// When set, each attempt's GraphDump carries the rendered SLP graph.
  void setVerbose(bool V) { Verbose = V; }

  const VectorizerConfig &getConfig() const { return Config; }

private:
  VectorizerConfig Config;
  const TargetTransformInfo &TTI;
  bool Verbose = false;
};

} // namespace lslp

#endif // LSLP_VECTORIZER_SLPVECTORIZERPASS_H
