//===- vectorizer/LookAhead.cpp - Look-ahead operand scoring ----------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "vectorizer/LookAhead.h"

#include "analysis/AddressAnalysis.h"
#include "ir/Constants.h"
#include "ir/Instruction.h"
#include "vectorizer/Budget.h"

#include <algorithm>

using namespace lslp;

bool lslp::areConsecutiveOrMatch(const Value *Last, const Value *Candidate) {
  // Two constants always "match": a constant vector can be materialized
  // for free regardless of the values.
  if (isa<Constant>(Last) && isa<Constant>(Candidate))
    return true;
  const auto *LastI = dyn_cast<Instruction>(Last);
  const auto *CandI = dyn_cast<Instruction>(Candidate);
  if (!LastI || !CandI) {
    // Non-instruction, non-constant values (arguments, globals) match only
    // when identical (a splat).
    return Last == Candidate;
  }
  if (isa<LoadInst>(LastI) && isa<LoadInst>(CandI))
    return areConsecutiveAccesses(LastI, CandI);
  return LastI->getOpcode() == CandI->getOpcode();
}

namespace {

/// True when the pair can be descended into: same-opcode instructions with
/// operands worth comparing (loads terminate at the consecutive test).
bool canRecurse(const Value *A, const Value *B) {
  const auto *IA = dyn_cast<Instruction>(A);
  const auto *IB = dyn_cast<Instruction>(B);
  if (!IA || !IB || IA->getOpcode() != IB->getOpcode())
    return false;
  if (isa<LoadInst>(IA))
    return false;
  return IA->getNumOperands() > 0 && IB->getNumOperands() > 0;
}

} // namespace

int lslp::getLookAheadScore(
    const Value *Last, const Value *Candidate, unsigned MaxLevel,
    VectorizerConfig::ScoreAggregationKind Aggregation,
    VectorizerBudget *Budget) {
  if (Budget && !Budget->chargePermutations(1, FaultSite::LookAhead))
    return 0;
  if (MaxLevel == 0 || !canRecurse(Last, Candidate))
    return areConsecutiveOrMatch(Last, Candidate) ? 1 : 0;

  const auto *LastI = cast<Instruction>(Last);
  const auto *CandI = cast<Instruction>(Candidate);
  int Aggregated = 0;
  for (const Value *LastOp : LastI->operands()) {
    for (const Value *CandOp : CandI->operands()) {
      int Score = getLookAheadScore(LastOp, CandOp, MaxLevel - 1, Aggregation,
                                    Budget);
      if (Aggregation == VectorizerConfig::ScoreAggregationKind::Sum)
        Aggregated += Score;
      else
        Aggregated = std::max(Aggregated, Score);
    }
  }
  return Aggregated;
}
