//===- vectorizer/Config.h - Vectorizer configuration -----------*- C++ -*-===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tunables selecting between the paper's four configurations and the
/// Figure 13 sensitivity sweeps:
///
///   O3     — vectorizer not run at all (callers simply skip the pass).
///   SLP-NR — EnableReordering = false.
///   SLP    — vanilla bottom-up SLP: reordering on, no look-ahead, no
///            multi-nodes.
///   LSLP   — look-ahead reordering + multi-node formation.
///
//===----------------------------------------------------------------------===//

#ifndef LSLP_VECTORIZER_CONFIG_H
#define LSLP_VECTORIZER_CONFIG_H

#include <cstdint>
#include <limits>
#include <string>
#include <string_view>

namespace lslp {

class FaultInjector;
class RemarkStreamer;

/// All knobs of the (L)SLP vectorizer.
struct VectorizerConfig {
  /// Reorder operands of commutative groups at all (off = SLP-NR).
  bool EnableReordering = true;

  /// Use look-ahead scores to break reordering ties (LSLP §4.4). When off,
  /// the first opcode-matching candidate wins (vanilla SLP behaviour).
  bool EnableLookAhead = false;

  /// Form multi-nodes over chains of same-opcode commutative instructions
  /// (LSLP §4.2).
  bool EnableMultiNode = false;

  /// Maximum look-ahead recursion depth (paper evaluates up to 8).
  unsigned MaxLookAheadLevel = 8;

  /// Maximum number of chained instructions per lane merged into one
  /// multi-node (paper's Multi-{1,2,3} sweep). 1 disables coarsening.
  unsigned MaxMultiNodeSize = std::numeric_limits<unsigned>::max();

  /// Aggregation of recursive look-ahead scores (paper footnote 4 ablation).
  enum class ScoreAggregationKind { Sum, Max };
  ScoreAggregationKind ScoreAggregation = ScoreAggregationKind::Sum;

  /// Reordering search strategy (paper footnote 3 ablation). The paper's
  /// algorithm fills slots greedily in one pass without backtracking;
  /// ExhaustivePerLane instead scores every permutation of each lane's
  /// candidates and keeps the best (still lane-by-lane, no cross-lane
  /// backtracking; bounded to small slot counts).
  enum class ReorderStrategyKind { GreedySingle, ExhaustivePerLane };
  ReorderStrategyKind ReorderStrategy = ReorderStrategyKind::GreedySingle;

  /// Statement-packing strategy. Greedy is the paper's pipeline: each seed
  /// bundle is built once, with every commutative-operand reordering
  /// decided locally (look-ahead at most peeks, it never backtracks).
  /// Global (goSLP-style) instead enumerates alternative per-site operand
  /// permutations over the same seed bundle, costs every candidate pack
  /// set against the shared cost model, and commits the cheapest through
  /// the unchanged scheduler/codegen path. Ties go to greedy, so Global
  /// output can differ from Greedy only when it is strictly cheaper.
  enum class PackingStrategyKind { Greedy, Global };
  PackingStrategyKind Strategy = PackingStrategyKind::Greedy;

  /// Cap on candidate pack sets the global solver evaluates per seed
  /// bundle (0 = unlimited). Each candidate is one full graph build +
  /// cost evaluation, so this bounds the solver's superlinear blow-up.
  unsigned MaxSolverCandidates = 64;

  /// Detect SPLAT operand slots (Listing 5, line 23).
  bool EnableSplatMode = true;

  /// Extension beyond the paper (standard in LLVM's SLP): vectorize
  /// groups mixing add/sub or fadd/fsub (the vaddsubpd pattern complex
  /// arithmetic produces) as two vector ops plus a blend. Orthogonal to
  /// the LSLP features; enabled in every configuration.
  bool EnableAltOpcodes = true;

  /// Vectorize horizontal reduction trees (the paper's second seed class,
  /// §2.2): single-lane same-opcode commutative trees folded with
  /// log-step shuffles. Orthogonal to the LSLP features.
  bool EnableReductions = true;

  /// \name Pre-vectorization CFG pipeline.
  ///
  /// The two CFG passes (src/transforms) run before the vectorizer, after
  /// early-cse, wherever a driver honours these knobs (lslpc, the lslpd
  /// compile service, the fuzz oracle). They live in the config — rather
  /// than as separate request flags — so the daemon's content-addressed
  /// cache keys on them automatically via the config JSON.
  /// @{
  /// Flatten diamonds/triangles into selects before seed collection.
  bool EnableIfConversion = false;
  /// Unroll trip-count-known innermost loops before seed collection.
  bool EnableLoopUnroll = false;
  /// Requested unroll factor (the pass falls back to the largest divisor
  /// of the trip count not exceeding it). Values < 2 disable unrolling.
  unsigned UnrollFactor = 4;
  /// @}

  /// Vectorize when the graph cost is strictly below this (paper: 0).
  int CostThreshold = 0;

  /// Recursion depth bound for graph building.
  unsigned MaxGraphDepth = 16;

  /// \name Resource budgets (0 = unlimited).
  ///
  /// The LSLP search is exponential in multi-node width; these caps bound
  /// the damage a pathological input can do. When any budget runs out the
  /// pass abandons the function mid-flight, restores the pristine scalar
  /// body (transform-then-commit) and emits exactly one BudgetExhausted
  /// remark. The time budget is inherently nondeterministic, so the fuzz
  /// oracle and determinism gates only ever exercise the two counting
  /// budgets.
  /// @{
  /// Cap on SLP graph nodes built per function (vector + gather nodes,
  /// across all attempted trees).
  uint64_t MaxGraphNodes = 0;
  /// Cap on operand-permutation/look-ahead score evaluations per function.
  uint64_t MaxPermutationsPerMultiNode = 0;
  /// Wall-clock cap per function, in milliseconds.
  uint64_t MaxMsPerFunction = 0;
  /// @}

  /// Deterministic fault injector exercising the budget/fallback paths
  /// (see support/FaultInjection.h). Null disables injection. Non-owning.
  const FaultInjector *Faults = nullptr;

  /// Human-readable configuration name for reports.
  std::string Name = "custom";

  /// Optimization-remark sink (see diag/RemarkEngine.h). Null disables
  /// remark emission entirely; every decision point guards with
  /// `if (RemarkStreamer *RS = Config.Remarks)`, so the disabled pipeline
  /// pays one predictable branch per decision. Non-owning.
  RemarkStreamer *Remarks = nullptr;

  /// Serializes every decision-relevant knob as one JSON object (crash
  /// reproducers ship this next to the IR so a failure replays under the
  /// exact configuration that hit it; the lslpd protocol ships it per
  /// request). Implemented in ConfigJSON.cpp next to fromJSON so the two
  /// directions stay in lockstep.
  std::string toJSON() const;

  /// Rebuilds a configuration from toJSON() output. Fields absent from
  /// \p JSON keep their default value; unknown keys and type-mismatched
  /// values are rejected (returns false with a diagnostic in \p Err) so a
  /// typo in a hand-edited crash-reproducer config can never silently
  /// select the defaults. The "fault-injection" flag round-trips as
  /// documentation only — a FaultInjector cannot be reconstructed from
  /// JSON, so Out.Faults is always null; wire protocols carry the fault
  /// seed/probability separately (see server/Protocol.h).
  static bool fromJSON(std::string_view JSON, VectorizerConfig &Out,
                       std::string &Err);

  /// \name Paper configurations.
  /// @{
  static VectorizerConfig slpNoReordering() {
    VectorizerConfig C;
    C.EnableReordering = false;
    C.Name = "SLP-NR";
    return C;
  }
  static VectorizerConfig slp() {
    VectorizerConfig C;
    C.Name = "SLP";
    return C;
  }
  static VectorizerConfig lslp(unsigned LookAheadLevel = 8) {
    VectorizerConfig C;
    C.EnableLookAhead = true;
    C.EnableMultiNode = true;
    C.MaxLookAheadLevel = LookAheadLevel;
    C.Name = "LSLP";
    return C;
  }
  /// @}
};

/// Stable external name of a packing strategy ("greedy"/"global") — the
/// value space of `lslpc --slp-strategy=` and bench `-strategy=`.
inline const char *
packingStrategyName(VectorizerConfig::PackingStrategyKind K) {
  return K == VectorizerConfig::PackingStrategyKind::Greedy ? "greedy"
                                                            : "global";
}

/// Parses a strategy name; returns false on anything but the two exact
/// names (flag parsers reject unknown values rather than defaulting).
inline bool parsePackingStrategy(std::string_view Name,
                                 VectorizerConfig::PackingStrategyKind &Out) {
  if (Name == "greedy") {
    Out = VectorizerConfig::PackingStrategyKind::Greedy;
    return true;
  }
  if (Name == "global") {
    Out = VectorizerConfig::PackingStrategyKind::Global;
    return true;
  }
  return false;
}

} // namespace lslp

#endif // LSLP_VECTORIZER_CONFIG_H
