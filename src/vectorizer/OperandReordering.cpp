//===- vectorizer/OperandReordering.cpp - Operand reordering ----------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "vectorizer/OperandReordering.h"

#include "diag/IRRemarks.h"
#include "diag/RemarkEngine.h"
#include "diag/Statistics.h"
#include "ir/Constants.h"
#include "ir/Instruction.h"
#include "vectorizer/Budget.h"
#include "vectorizer/LookAhead.h"

#include <algorithm>
#include <cassert>

using namespace lslp;

LSLP_STATISTIC(NumReorderedMatrices, "operand-reordering",
               "Operand matrices whose lanes were permuted");
LSLP_STATISTIC(NumLookAheadTieBreaks, "operand-reordering",
               "Slot ties broken by the look-ahead score");

namespace {

/// Deterministic short description of a candidate value for remark args.
std::string valueDesc(const Value *V) {
  if (!V->getName().empty())
    return V->getName();
  if (auto *I = dyn_cast<Instruction>(V))
    return I->getOpcodeName();
  if (isa<Constant>(V))
    return "const";
  return "value";
}

/// Anchor for reordering remarks: the first instruction in the matrix
/// (nullptr — and no remarks — for all-constant matrices).
const Instruction *
findAnchor(const std::vector<std::vector<Value *>> &Operands) {
  for (const auto &Slot : Operands)
    for (const Value *V : Slot)
      if (const auto *I = dyn_cast<Instruction>(V))
        return I;
  return nullptr;
}

/// Remark context threaded into the per-slot candidate selection.
struct ReorderRemarkCtx {
  RemarkStreamer *RS = nullptr;
  const Instruction *Anchor = nullptr;
  unsigned Slot = 0;
  unsigned Lane = 0;
};

/// Per-slot outcome modes as a compact string (one letter per slot), for
/// the reorder-choice remark: C/L/O/S/F per Table 1.
std::string modeString(const std::vector<OperandMode> &Modes) {
  std::string S;
  S.reserve(Modes.size());
  for (OperandMode M : Modes) {
    switch (M) {
    case OperandMode::Constant:
      S += 'C';
      break;
    case OperandMode::Load:
      S += 'L';
      break;
    case OperandMode::Opcode:
      S += 'O';
      break;
    case OperandMode::Splat:
      S += 'S';
      break;
    case OperandMode::Failed:
      S += 'F';
      break;
    }
  }
  return S;
}

/// Emits the final reorder-choice remark and bumps the permutation
/// statistic for one completed reordering.
void noteReorderOutcome(const ReorderResult &Result,
                        const std::vector<std::vector<Value *>> &Operands,
                        const VectorizerConfig &Config,
                        const Instruction *Anchor, const char *Strategy) {
  if (Result.Changed)
    ++NumReorderedMatrices;
  if (!Config.Remarks || !Anchor)
    return;
  Config.Remarks->emit(
      remarkAt(RemarkKind::ReorderChoice, "operand-reordering", Anchor)
          .arg("slots", static_cast<uint64_t>(Operands.size()))
          .arg("lanes", static_cast<uint64_t>(Operands[0].size()))
          .arg("modes", modeString(Result.Modes))
          .arg("changed", Result.Changed)
          .arg("strategy", Strategy));
}

/// The do-nothing result returned when the budget runs out mid-reorder:
/// the input order, unchanged. The caller observes exhaustion through the
/// budget and abandons the function, so these slots never reach codegen.
ReorderResult
identityResult(const std::vector<std::vector<Value *>> &Operands) {
  ReorderResult Result;
  Result.Final = Operands;
  Result.Modes.assign(Operands.size(), OperandMode::Failed);
  Result.Changed = false;
  return Result;
}

/// Initial mode of a slot, from its lane-0 value (Listing 5, line 8).
OperandMode initialMode(const Value *V) {
  if (isa<Constant>(V))
    return OperandMode::Constant;
  if (isa<LoadInst>(V))
    return OperandMode::Load;
  if (isa<Instruction>(V))
    return OperandMode::Opcode;
  // Arguments/globals can only vectorize as splats.
  return OperandMode::Splat;
}

/// Outcome of get_best (Listing 6): the chosen candidate (null = let other
/// slots choose first) and the slot's new mode.
struct BestResult {
  Value *Best = nullptr;
  OperandMode NewMode = OperandMode::Failed;
};

/// Listing 6: picks the best candidate for a slot. Does not remove the
/// candidate from \p Candidates (the caller does).
BestResult getBest(OperandMode Mode, Value *Last,
                   const std::vector<Value *> &Candidates,
                   const VectorizerConfig &Config,
                   const ReorderRemarkCtx &Ctx, VectorizerBudget *Budget) {
  switch (Mode) {
  case OperandMode::Constant:
  case OperandMode::Load:
  case OperandMode::Opcode: {
    assert(!Candidates.empty() && "no candidates left for an active slot");
    std::vector<Value *> BestCandidates;
    for (Value *C : Candidates)
      if (areConsecutiveOrMatch(Last, C))
        BestCandidates.push_back(C);

    // 1. Trivial cases: no match (slot fails, taking the default first
    //    candidate), or a single match.
    if (BestCandidates.empty())
      return {Candidates[0], OperandMode::Failed};
    if (BestCandidates.size() == 1)
      return {BestCandidates[0], Mode};

    // 2. Multiple matches: break ties with look-ahead (LSLP only; vanilla
    //    SLP takes the first match).
    if (Mode == OperandMode::Opcode && Config.EnableLookAhead) {
      ++NumLookAheadTieBreaks;
      Value *Best = BestCandidates[0];
      std::vector<int> Scores(BestCandidates.size(), 0);
      unsigned DecidedAt = Config.MaxLookAheadLevel;
      for (unsigned Level = 1; Level <= Config.MaxLookAheadLevel; ++Level) {
        int BestScore = -1;
        bool AllEqual = true;
        int FirstScore = 0;
        for (size_t CI = 0; CI < BestCandidates.size(); ++CI) {
          int Score = getLookAheadScore(Last, BestCandidates[CI], Level,
                                        Config.ScoreAggregation, Budget);
          Scores[CI] = Score;
          if (CI == 0)
            FirstScore = Score;
          else
            AllEqual &= (Score == FirstScore);
          if (Score > BestScore) {
            BestScore = Score;
            Best = BestCandidates[CI];
          }
        }
        // Ties broken at this level: no need to peek deeper.
        if (!AllEqual) {
          DecidedAt = Level;
          break;
        }
      }
      if (Ctx.RS && Ctx.Anchor)
        for (size_t CI = 0; CI < BestCandidates.size(); ++CI)
          Ctx.RS->emit(remarkAt(RemarkKind::LookAheadScore,
                                "operand-reordering", Ctx.Anchor)
                           .arg("slot", static_cast<uint64_t>(Ctx.Slot))
                           .arg("lane", static_cast<uint64_t>(Ctx.Lane))
                           .arg("candidate", valueDesc(BestCandidates[CI]))
                           .arg("score", static_cast<int64_t>(Scores[CI]))
                           .arg("level", static_cast<uint64_t>(DecidedAt))
                           .arg("chosen", BestCandidates[CI] == Best));
      return {Best, Mode};
    }
    return {BestCandidates[0], Mode};
  }
  case OperandMode::Splat:
    for (Value *C : Candidates)
      if (C == Last)
        return {C, OperandMode::Splat};
    return {nullptr, OperandMode::Failed};
  case OperandMode::Failed:
    // Listing 6, line 43: don't select; let active slots choose first.
    return {nullptr, OperandMode::Failed};
  }
  return {};
}

/// Score of placing \p Candidate after \p Last in a slot: zero unless
/// they trivially match, plus the look-ahead score as a tie-breaking
/// bonus when enabled.
int pairScore(Value *Last, Value *Candidate, const VectorizerConfig &Config,
              VectorizerBudget *Budget) {
  if (!areConsecutiveOrMatch(Last, Candidate))
    return 0;
  int Score = 1000; // A trivial match always beats any non-match sum.
  if (Config.EnableLookAhead)
    Score += getLookAheadScore(Last, Candidate, Config.MaxLookAheadLevel,
                               Config.ScoreAggregation, Budget);
  return Score;
}

/// Footnote-3 ablation: per lane, evaluate every permutation of the
/// lane's operands against the previous lane and keep the best-scoring
/// assignment.
ReorderResult
reorderExhaustivePerLane(const std::vector<std::vector<Value *>> &Operands,
                         const VectorizerConfig &Config,
                         VectorizerBudget *Budget) {
  const unsigned NumSlots = static_cast<unsigned>(Operands.size());
  const unsigned NumLanes = static_cast<unsigned>(Operands[0].size());

  ReorderResult Result;
  Result.Final.assign(NumSlots, std::vector<Value *>(NumLanes, nullptr));
  Result.Modes.assign(NumSlots, OperandMode::Failed);
  for (unsigned I = 0; I != NumSlots; ++I) {
    Result.Final[I][0] = Operands[I][0];
    Result.Modes[I] = initialMode(Operands[I][0]);
  }

  std::vector<unsigned> Perm(NumSlots);
  for (unsigned Lane = 1; Lane != NumLanes; ++Lane) {
    for (unsigned I = 0; I != NumSlots; ++I)
      Perm[I] = I;
    std::vector<unsigned> BestPerm = Perm;
    int BestScore = -1;
    do {
      if (Budget && !Budget->chargePermutations(1))
        return identityResult(Operands);
      int Score = 0;
      for (unsigned I = 0; I != NumSlots; ++I)
        Score += pairScore(Result.Final[I][Lane - 1],
                           Operands[Perm[I]][Lane], Config, Budget);
      if (Score > BestScore) {
        BestScore = Score;
        BestPerm = Perm;
      }
    } while (std::next_permutation(Perm.begin(), Perm.end()));

    for (unsigned I = 0; I != NumSlots; ++I) {
      Value *Chosen = Operands[BestPerm[I]][Lane];
      Value *Last = Result.Final[I][Lane - 1];
      Result.Final[I][Lane] = Chosen;
      if (Result.Modes[I] == OperandMode::Failed)
        continue;
      if (!areConsecutiveOrMatch(Last, Chosen))
        Result.Modes[I] = OperandMode::Failed;
      else if (Config.EnableSplatMode && Chosen == Last)
        Result.Modes[I] = OperandMode::Splat;
    }
  }

  for (unsigned I = 0; I != NumSlots && !Result.Changed; ++I)
    Result.Changed = (Result.Final[I] != Operands[I]);
  noteReorderOutcome(Result, Operands, Config, findAnchor(Operands),
                     "exhaustive-per-lane");
  return Result;
}

} // namespace

ReorderResult
lslp::reorderOperands(const std::vector<std::vector<Value *>> &Operands,
                      const VectorizerConfig &Config,
                      VectorizerBudget *Budget) {
  const unsigned NumSlots = static_cast<unsigned>(Operands.size());
  assert(NumSlots >= 1 && "reordering needs at least one operand slot");
  const unsigned NumLanes = static_cast<unsigned>(Operands[0].size());
  assert(NumLanes >= 2 && "reordering needs at least two lanes");

  if (Budget && Budget->exhausted())
    return identityResult(Operands);

  // Footnote-3 ablation path, bounded to slot counts whose factorial is
  // negligible.
  if (Config.ReorderStrategy ==
          VectorizerConfig::ReorderStrategyKind::ExhaustivePerLane &&
      NumSlots <= 6)
    return reorderExhaustivePerLane(Operands, Config, Budget);

  const Instruction *Anchor = findAnchor(Operands);

  ReorderResult Result;
  Result.Final.assign(NumSlots, std::vector<Value *>(NumLanes, nullptr));
  Result.Modes.assign(NumSlots, OperandMode::Failed);

  // 1. Strip the first lane: accept its operands in their existing order
  //    and initialize the slot modes (Listing 5, lines 5-8).
  for (unsigned I = 0; I != NumSlots; ++I) {
    Result.Final[I][0] = Operands[I][0];
    Result.Modes[I] = initialMode(Operands[I][0]);
  }

  // 2. For every other lane, pick the best candidate per slot in a single
  //    pass without backtracking (Listing 5, lines 11-24).
  for (unsigned Lane = 1; Lane != NumLanes; ++Lane) {
    std::vector<Value *> Candidates;
    Candidates.reserve(NumSlots);
    for (unsigned I = 0; I != NumSlots; ++I)
      Candidates.push_back(Operands[I][Lane]);

    for (unsigned I = 0; I != NumSlots; ++I) {
      if (Result.Modes[I] == OperandMode::Failed)
        continue; // Filled from the leftovers below.
      Value *Last = Result.Final[I][Lane - 1];
      if (Budget && !Budget->chargePermutations(1))
        return identityResult(Operands);
      ReorderRemarkCtx Ctx{Config.Remarks, Anchor, I, Lane};
      BestResult BR =
          getBest(Result.Modes[I], Last, Candidates, Config, Ctx, Budget);
      Result.Modes[I] = BR.NewMode;
      if (!BR.Best)
        continue;
      Result.Final[I][Lane] = BR.Best;
      Candidates.erase(
          std::find(Candidates.begin(), Candidates.end(), BR.Best));
      // SPLAT detection (Listing 5, line 23): the same value repeating
      // across lanes vectorizes as a broadcast.
      if (Config.EnableSplatMode && BR.Best == Last &&
          Result.Modes[I] != OperandMode::Failed)
        Result.Modes[I] = OperandMode::Splat;
    }

    // Hand the unclaimed candidates to the empty (failed) slots in order.
    size_t NextLeftover = 0;
    for (unsigned I = 0; I != NumSlots; ++I) {
      if (Result.Final[I][Lane])
        continue;
      assert(NextLeftover < Candidates.size() && "leftover underflow");
      Result.Final[I][Lane] = Candidates[NextLeftover++];
    }
    assert(NextLeftover == Candidates.size() && "unassigned candidates");
  }

  for (unsigned I = 0; I != NumSlots && !Result.Changed; ++I)
    Result.Changed = (Result.Final[I] != Operands[I]);
  noteReorderOutcome(Result, Operands, Config, Anchor, "greedy");
  return Result;
}

ReorderResult lslp::applyOperandAssignment(
    const std::vector<std::vector<Value *>> &Operands,
    const std::vector<std::vector<unsigned>> &LanePerms,
    const VectorizerConfig &Config) {
  const unsigned NumSlots = static_cast<unsigned>(Operands.size());
  const unsigned NumLanes = static_cast<unsigned>(Operands[0].size());
  assert(LanePerms.size() == NumLanes && "one permutation per lane");

  ReorderResult Result;
  Result.Final.assign(NumSlots, std::vector<Value *>(NumLanes, nullptr));
  Result.Modes.assign(NumSlots, OperandMode::Failed);
  for (unsigned I = 0; I != NumSlots; ++I) {
    assert(LanePerms[0][I] == I && "lane 0 order is final");
    Result.Final[I][0] = Operands[I][0];
    Result.Modes[I] = initialMode(Operands[I][0]);
  }

  // Replay the fixed assignment, tracking slot modes exactly like the
  // search paths: a slot stays live only while consecutive lanes keep
  // matching (consecutive loads / same opcode / splat).
  for (unsigned Lane = 1; Lane != NumLanes; ++Lane) {
    for (unsigned I = 0; I != NumSlots; ++I) {
      Value *Chosen = Operands[LanePerms[Lane][I]][Lane];
      Value *Last = Result.Final[I][Lane - 1];
      Result.Final[I][Lane] = Chosen;
      if (Result.Modes[I] == OperandMode::Failed)
        continue;
      if (!areConsecutiveOrMatch(Last, Chosen))
        Result.Modes[I] = OperandMode::Failed;
      else if (Config.EnableSplatMode && Chosen == Last)
        Result.Modes[I] = OperandMode::Splat;
    }
  }

  for (unsigned I = 0; I != NumSlots && !Result.Changed; ++I)
    Result.Changed = (Result.Final[I] != Operands[I]);
  noteReorderOutcome(Result, Operands, Config, findAnchor(Operands),
                     "global");
  return Result;
}
