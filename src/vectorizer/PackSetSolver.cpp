//===- vectorizer/PackSetSolver.cpp - Global pack-set search -----------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "vectorizer/PackSetSolver.h"

#include "costmodel/TargetTransformInfo.h"
#include "diag/Statistics.h"
#include "vectorizer/Budget.h"
#include "vectorizer/CostEvaluator.h"

#include <climits>
#include <deque>

using namespace lslp;

LSLP_STATISTIC(NumSolverCandidates, "pack-set-solver",
               "Candidate pack sets evaluated by the global solver");
LSLP_STATISTIC(NumSolverCapped, "pack-set-solver",
               "Solves stopped early by the candidate cap");

PackSetSolver::PackSetSolver(const VectorizerConfig &Config,
                             const TargetTransformInfo &TTI, BasicBlock &BB,
                             VectorizerBudget *Budget)
    : ProbeConfig(Config), TTI(TTI), BB(BB), Budget(Budget) {
  ProbeConfig.Remarks = nullptr;
}

std::optional<int>
PackSetSolver::evaluate(const std::vector<Instruction *> &Seeds,
                        ReorderPlan &Plan) {
  SLPGraphBuilder Builder(ProbeConfig, BB, Budget, &Plan);
  std::optional<SLPGraph> Graph = Builder.build(Seeds);
  if (!Graph || (Budget && Budget->exhausted()))
    return std::nullopt;
  return evaluateGraphCost(*Graph, TTI, /*Remarks=*/nullptr);
}

PackSetSolver::Result
PackSetSolver::solve(const std::vector<Instruction *> &Seeds) {
  Result R;
  const unsigned Cap = ProbeConfig.MaxSolverCandidates;

  // Breadth-first over plans, the empty (pure greedy) plan first. Each
  // evaluated plan P spawns children that extend it at any site s in
  // [|P|, SitesSeen) with a non-greedy option, padding the skipped sites
  // with 0: every trimmed choice vector has exactly one such parent, so
  // no plan is generated (or charged) twice.
  std::deque<std::vector<unsigned>> Queue;
  Queue.push_back({});
  int Best = INT_MAX;

  while (!Queue.empty()) {
    if (Budget && Budget->exhausted())
      return R;
    if (Cap != 0 && R.Candidates >= Cap) {
      R.Capped = true;
      break;
    }
    std::vector<unsigned> Choices = std::move(Queue.front());
    Queue.pop_front();

    // Every candidate evaluation is a unit of search work; charge it to
    // the shared permutation budget so --max-permutations and the fault
    // injector cover the solver exactly like the greedy search.
    if (Budget && !Budget->chargePermutations(1))
      return R;

    ReorderPlan Plan;
    Plan.Choices = Choices;
    std::optional<int> Cost = evaluate(Seeds, Plan);
    ++R.Candidates;
    ++NumSolverCandidates;
    if (Budget && Budget->exhausted())
      return R;
    if (!Cost) {
      if (Choices.empty())
        return R; // Not even greedy forms a graph: nothing to optimize.
      continue; // An alternative broke the build; skip it.
    }

    if (Choices.empty()) {
      R.Solved = true;
      R.GreedyCost = *Cost;
      R.Sites = Plan.SitesSeen;
    }
    // Strictly-less keeps the earliest (BFS order) winner: ties resolve
    // to the greedy plan, and among alternatives to the lowest site /
    // lowest option — fully deterministic.
    if (*Cost < Best) {
      Best = *Cost;
      R.BestChoices = Choices;
    }

    // Expand. Queued plans can never all be evaluated past the cap, so
    // stop enqueuing once the queue alone would exhaust it (bounds
    // memory on site-rich functions).
    for (unsigned S = static_cast<unsigned>(Choices.size());
         S < Plan.SitesSeen; ++S) {
      const unsigned Options =
          S < Plan.SiteOptions.size() ? Plan.SiteOptions[S] : 1;
      for (unsigned K = 1; K < Options; ++K) {
        if (Cap != 0 && Queue.size() + R.Candidates >= Cap) {
          R.Capped = true;
          break;
        }
        std::vector<unsigned> Child = Choices;
        Child.resize(S, 0);
        Child.push_back(K);
        Queue.push_back(std::move(Child));
      }
    }
  }

  if (R.Capped)
    ++NumSolverCapped;
  R.BestCost = Best == INT_MAX ? R.GreedyCost : Best;
  return R;
}
