//===- vectorizer/ReductionVectorizer.cpp - Horizontal reductions ------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "vectorizer/ReductionVectorizer.h"

#include "analysis/AddressAnalysis.h"
#include "costmodel/TargetTransformInfo.h"
#include "diag/IRRemarks.h"
#include "diag/RemarkEngine.h"
#include "diag/Statistics.h"
#include "ir/BasicBlock.h"
#include "ir/Constants.h"
#include "ir/Context.h"
#include "ir/Local.h"
#include "support/OStream.h"
#include "vectorizer/CodeGen.h"
#include "vectorizer/CostEvaluator.h"
#include "vectorizer/GraphBuilder.h"
#include "vectorizer/SLPVectorizerPass.h"

#include <algorithm>
#include <set>

using namespace lslp;

LSLP_STATISTIC(NumReductionsMatched, "reduction-vectorizer",
               "Reduction trees matched");
LSLP_STATISTIC(NumReductionsVectorized, "reduction-vectorizer",
               "Reduction trees vectorized");

namespace {

/// Flattens the same-opcode tree under \p I (left-to-right); interior
/// nodes must be single-use instructions of the same block.
void flattenTree(Instruction *Root, Instruction *I, ValueID Opcode,
                 std::vector<Value *> &Leaves,
                 std::vector<Instruction *> &TreeOps) {
  TreeOps.push_back(I);
  for (Value *Op : I->operands()) {
    auto *OpInst = dyn_cast<Instruction>(Op);
    if (OpInst && OpInst->getOpcode() == Opcode &&
        OpInst->getParent() == Root->getParent() && OpInst->hasOneUse()) {
      flattenTree(Root, OpInst, Opcode, Leaves, TreeOps);
      continue;
    }
    Leaves.push_back(Op);
  }
}

bool isPowerOfTwo(size_t N) { return N >= 2 && (N & (N - 1)) == 0; }

/// Sorts load leaves by their constant byte offsets when every leaf is a
/// load with a constant distance from leaf 0 and the offsets are unique.
/// This is where a reduction benefits from commutativity: any leaf order
/// is legal, so pick the one that makes the bundle a consecutive load.
void sortLoadLeavesByAddress(std::vector<Value *> &Leaves) {
  std::vector<std::pair<int64_t, Value *>> Keyed;
  const auto *First = dyn_cast<LoadInst>(Leaves[0]);
  if (!First)
    return;
  for (Value *L : Leaves) {
    const auto *Load = dyn_cast<LoadInst>(L);
    if (!Load)
      return;
    std::optional<int64_t> Dist = byteDistance(First, Load);
    if (!Dist)
      return;
    Keyed.push_back({*Dist, L});
  }
  std::stable_sort(Keyed.begin(), Keyed.end(),
                   [](const auto &A, const auto &B) {
                     return A.first < B.first;
                   });
  for (size_t I = 1; I < Keyed.size(); ++I)
    if (Keyed[I].first == Keyed[I - 1].first)
      return; // Duplicate addresses: leave the original order.
  for (size_t I = 0; I < Leaves.size(); ++I)
    Leaves[I] = Keyed[I].second;
}

} // namespace

std::optional<ReductionCandidate>
lslp::matchReductionTree(Instruction *Root, unsigned MinLeaves,
                         unsigned MaxLeaves) {
  if (!Root->isBinaryOp() || Root->getType()->isVectorTy() ||
      !BinaryOperator::isCommutativeOpcode(Root->getOpcode()))
    return std::nullopt;
  ReductionCandidate Cand;
  Cand.Root = Root;
  Cand.Opcode = Root->getOpcode();
  flattenTree(Root, Root, Cand.Opcode, Cand.Leaves, Cand.TreeOps);
  if (Cand.Leaves.size() < MinLeaves || Cand.Leaves.size() > MaxLeaves ||
      !isPowerOfTwo(Cand.Leaves.size()))
    return std::nullopt;
  // A trivial "tree" of one binop is a plain group candidate, not a
  // reduction.
  if (Cand.TreeOps.size() < 2)
    return std::nullopt;
  sortLoadLeavesByAddress(Cand.Leaves);
  return Cand;
}

namespace {

/// Cost of the log-step fold + final extract.
int reductionFoldCost(const TargetTransformInfo &TTI, ValueID Opcode,
                      Type *VecTy, unsigned Lanes) {
  int Cost = 0;
  for (unsigned Width = Lanes; Width > 1; Width /= 2)
    Cost += TTI.getShuffleCost(VecTy) +
            TTI.getArithmeticInstrCost(Opcode, VecTy);
  return Cost + TTI.getVectorLaneOpCost(ValueID::ExtractElement, VecTy);
}

bool tryVectorizeOneReduction(const ReductionCandidate &Cand, BasicBlock &BB,
                              const VectorizerConfig &Config,
                              const TargetTransformInfo &TTI,
                              GraphAttempt &Attempt, bool Verbose,
                              VectorizerBudget *Budget) {
  Context &Ctx = BB.getContext();
  const unsigned Lanes = static_cast<unsigned>(Cand.Leaves.size());
  Type *ScalarTy = Cand.Root->getType();
  Type *VecTy = Ctx.getVectorTy(ScalarTy, Lanes);

  SLPGraphBuilder Builder(Config, BB, Budget);
  // The leaf bundle is the graph root; build it directly.
  std::optional<SLPGraph> Graph = Builder.buildValueGraph(Cand.Leaves);
  if (!Graph)
    return false;
  // A graph built on a dying budget is untrustworthy; the caller rolls
  // the whole function back.
  if (Budget && Budget->exhausted())
    return false;

  int LeafCost = evaluateGraphCost(*Graph, TTI, Config.Remarks);
  // The cost evaluator charges an extract for every leaf lane used
  // outside the graph — but uses inside the reduction tree disappear
  // with it, so refund lanes whose only external users are tree ops.
  std::set<const Value *> TreeSet(Cand.TreeOps.begin(), Cand.TreeOps.end());
  for (Value *Leaf : Graph->getRoot()->getScalars()) {
    // Only instruction leaves can have been charged an extract (the cost
    // evaluator charges extracts on Vectorize/Alternate/MultiNode nodes,
    // whose scalars are always instructions), so only they earn a refund.
    // Constant/global leaves also have module-wide use-lists, which must
    // not be walked here: functions vectorize in parallel and this is the
    // per-function region (see DESIGN.md "Concurrency model").
    if (!isa<Instruction>(Leaf))
      continue;
    bool HasExternal = false, AllExternalInTree = true;
    for (const Use &U : Leaf->uses()) {
      const auto *UserV = static_cast<const Value *>(U.TheUser);
      if (Graph->isCoveredScalar(UserV))
        continue;
      HasExternal = true;
      AllExternalInTree &= TreeSet.count(UserV) != 0;
    }
    if (HasExternal && AllExternalInTree)
      LeafCost -= TTI.getVectorLaneOpCost(ValueID::ExtractElement, VecTy);
  }
  int FoldCost = reductionFoldCost(TTI, Cand.Opcode, VecTy, Lanes);
  // The scalar tree being deleted paid one op per interior node.
  int ScalarTreeCost =
      static_cast<int>(Cand.TreeOps.size()) *
      TTI.getArithmeticInstrCost(Cand.Opcode, ScalarTy);
  int TotalCost = LeafCost + FoldCost - ScalarTreeCost;

  Attempt.NumLanes = Lanes;
  Attempt.NumNodes = static_cast<unsigned>(Graph->nodes().size());
  Attempt.NumVectorizableNodes = Graph->getNumVectorizableNodes();
  Attempt.Cost = TotalCost;
  Attempt.IsReduction = true;
  for (const auto &N : Graph->nodes())
    Attempt.UsedReordering |= N->wasReordered();
  if (Verbose) {
    Attempt.GraphDump = Graph->toString();
    StringOStream DotOS(Attempt.GraphDot);
    Graph->printDOT(DotOS, "reduction");
  }
  if (TotalCost >= Config.CostThreshold)
    return false;

  Value *Vec =
      generateVectorValue(*Graph, BB, Builder.getScheduler(), Cand.Root);
  if (!Vec)
    return false;

  // Log-step fold: op(V, shuffle(V, [W/2..W-1])) halves the live width.
  Value *Acc = Vec;
  for (unsigned Width = Lanes; Width > 1; Width /= 2) {
    std::vector<int> Mask(Lanes, -1);
    for (unsigned K = 0; K < Width / 2; ++K)
      Mask[K] = static_cast<int>(Width / 2 + K);
    Instruction *Shuf = ShuffleVectorInst::create(
        Acc, Ctx.getUndef(VecTy), std::move(Mask));
    BB.insertBefore(Shuf, Cand.Root);
    Instruction *Fold = BinaryOperator::create(Cand.Opcode, Acc, Shuf);
    BB.insertBefore(Fold, Cand.Root);
    Acc = Fold;
  }
  Instruction *Result =
      ExtractElementInst::create(Acc, Ctx.getInt32(0));
  BB.insertBefore(Result, Cand.Root);

  Cand.Root->replaceAllUsesWith(Result);
  // The tree (now dead), the replaced leaf scalars and their addressing
  // all fall to DCE.
  removeTriviallyDeadInstructions(BB);
  Attempt.Accepted = true;
  return true;
}

} // namespace

unsigned lslp::vectorizeReductions(BasicBlock &BB,
                                   const VectorizerConfig &Config,
                                   const TargetTransformInfo &TTI,
                                   std::vector<GraphAttempt> &Attempts,
                                   bool Verbose, VectorizerBudget *Budget) {
  // Candidate roots: binop trees feeding a store. Snapshot first;
  // vectorization mutates the block.
  std::vector<Instruction *> Roots;
  for (const auto &I : BB)
    if (auto *St = dyn_cast<StoreInst>(I.get()))
      if (auto *Root = dyn_cast<Instruction>(St->getValueOperand()))
        if (Root->hasOneUse())
          Roots.push_back(Root);

  auto StillInBlock = [&BB](const Instruction *I) {
    for (const auto &P : BB)
      if (P.get() == I)
        return true;
    return false;
  };

  unsigned NumVectorized = 0;
  for (Instruction *Root : Roots) {
    if (Budget && Budget->exhausted())
      break;
    // A previous reduction (or its DCE) may have erased this root.
    if (!StillInBlock(Root))
      continue;
    Type *ScalarTy = Root->getType();
    if (ScalarTy->isVectorTy() || !ScalarTy->isFirstClassTy())
      continue;
    const unsigned MaxLanes =
        std::max(2u, TTI.getMaxVectorWidthBits() /
                         (8 * ScalarTy->getSizeInBytes()));
    std::optional<ReductionCandidate> Cand =
        matchReductionTree(Root, /*MinLeaves=*/4, MaxLanes);
    if (!Cand)
      continue;
    ++NumReductionsMatched;
    // Anchor before vectorizing: success erases the tree (and Root).
    Remark Found(RemarkKind::ReductionFound, "reduction-vectorizer");
    if (Config.Remarks)
      Found = remarkAt(RemarkKind::ReductionFound, "reduction-vectorizer",
                       Root)
                  .arg("opcode", Root->getOpcodeName())
                  .arg("leaves",
                       static_cast<uint64_t>(Cand->Leaves.size()))
                  .arg("tree-ops",
                       static_cast<uint64_t>(Cand->TreeOps.size()));
    GraphAttempt Attempt;
    bool Vectorized = tryVectorizeOneReduction(*Cand, BB, Config, TTI,
                                               Attempt, Verbose, Budget);
    if (Budget && Budget->exhausted())
      break;
    if (Vectorized) {
      ++NumVectorized;
      ++NumReductionsVectorized;
    }
    if (RemarkStreamer *RS = Config.Remarks)
      RS->emit(std::move(Found)
                   .arg("cost", static_cast<int64_t>(Attempt.Cost))
                   .arg("vectorized", Vectorized));
    Attempts.push_back(std::move(Attempt));
  }
  return NumVectorized;
}
