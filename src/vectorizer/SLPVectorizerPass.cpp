//===- vectorizer/SLPVectorizerPass.cpp - Pass driver ------------------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "vectorizer/SLPVectorizerPass.h"

#include "costmodel/TargetTransformInfo.h"
#include "diag/IRRemarks.h"
#include "diag/RemarkEngine.h"
#include "diag/Statistics.h"
#include "ir/BasicBlock.h"
#include "ir/Cloning.h"
#include "ir/Verifier.h"
#include "support/CrashHandler.h"
#include "support/OStream.h"
#include "support/ThreadPool.h"
#include "ir/Function.h"
#include "ir/Module.h"
#include "vectorizer/Budget.h"
#include "vectorizer/CodeGen.h"
#include "vectorizer/CostEvaluator.h"
#include "vectorizer/GlobalPacking.h"
#include "vectorizer/GraphBuilder.h"
#include "vectorizer/ReductionVectorizer.h"
#include "vectorizer/SeedCollector.h"

using namespace lslp;

LSLP_STATISTIC(NumGraphsAccepted, "slp-vectorizer",
               "Graphs whose cost beat the threshold");
LSLP_STATISTIC(NumGraphsRejected, "slp-vectorizer",
               "Graphs kept scalar by the cost model");
LSLP_STATISTIC(NumBudgetExhausted, "slp-vectorizer",
               "Functions abandoned (budget/fault) and kept scalar");

FunctionReport SLPVectorizerPass::runOnFunction(Function &F) {
  FunctionReport Report;
  Report.FunctionName = F.getName();
  CrashScope Crumb("function", F.getName());

  // Transform-then-commit: when any budget or fault injection is active,
  // snapshot the scalar body up front, mutate F in place, and on
  // exhaustion (or failed post-transform verification) swap the snapshot
  // back — the caller sees either the fully vectorized function or the
  // untouched scalar one, never a half-transformed hybrid. The default
  // configuration (no budgets, no faults) takes none of these branches
  // and pays nothing.
  const bool Budgeted =
      Config.MaxGraphNodes != 0 || Config.MaxPermutationsPerMultiNode != 0 ||
      Config.MaxMsPerFunction != 0 || Config.Faults != nullptr;
  VectorizerBudget Budget(Config, F.getName());
  VectorizerBudget *BP = Budgeted ? &Budget : nullptr;
  std::unique_ptr<Function> Backup;
  if (Budgeted)
    Backup = cloneFunctionDetached(F);

  for (const auto &BBPtr : F) {
    if (BP && BP->exhausted())
      break;
    BasicBlock &BB = *BBPtr;
    // Seed bundles are disjoint, so vectorizing one cannot delete another
    // bundle's stores; collecting once per block is safe (step 1).
    std::vector<SeedBundle> Seeds = collectStoreSeeds(BB, TTI, Config.Remarks);
    for (const SeedBundle &Bundle : Seeds) {
      if (BP && BP->exhausted())
        break;
      // Steps 3-4: build the graph and evaluate its cost. The greedy
      // strategy builds once; the global strategy first searches over
      // reorder plans and commits the cheapest (tie -> the greedy plan,
      // so output diverges only when strictly cheaper).
      std::optional<SLPGraphBuilder> GreedyBuilder;
      GlobalPackAttempt GlobalAttempt;
      std::optional<SLPGraph> Graph;
      BundleScheduler *Sched = nullptr;
      if (Config.Strategy ==
          VectorizerConfig::PackingStrategyKind::Global) {
        GlobalAttempt = packBundleGlobally(Config, TTI, BB, Bundle, BP);
        Graph = std::move(GlobalAttempt.Graph);
        if (GlobalAttempt.Builder)
          Sched = &GlobalAttempt.Builder->getScheduler();
      } else {
        GreedyBuilder.emplace(Config, BB, BP);
        Graph = GreedyBuilder->build(Bundle);
        Sched = &GreedyBuilder->getScheduler();
      }
      // A graph built on a dying budget is untrustworthy (silent gathers,
      // unreordered operands); discard it before cost/codegen.
      if (BP && BP->exhausted())
        break;
      if (!Graph)
        continue;
      int Cost = evaluateGraphCost(*Graph, TTI, Config.Remarks);

      GraphAttempt Attempt;
      Attempt.NumLanes = static_cast<unsigned>(Bundle.size());
      Attempt.NumNodes = static_cast<unsigned>(Graph->nodes().size());
      Attempt.NumVectorizableNodes = Graph->getNumVectorizableNodes();
      Attempt.Cost = Cost;
      for (const auto &N : Graph->nodes())
        Attempt.UsedReordering |= N->wasReordered();
      if (Verbose) {
        Attempt.GraphDump = Graph->toString();
        StringOStream DotOS(Attempt.GraphDot);
        Graph->printDOT(DotOS, F.getName() + "_bundle" +
                                   std::to_string(Report.Attempts.size()));
      }

      // Capture the verdict remark's anchor before codegen: vectorization
      // erases the seed stores, so Bundle[0] dangles afterwards.
      Remark Verdict(RemarkKind::CostRejected, "slp-vectorizer");
      if (Config.Remarks)
        Verdict = remarkAt(RemarkKind::CostRejected, "slp-vectorizer",
                           Bundle[0]);

      // Steps 5-7: vectorize when profitable.
      if (Cost < Config.CostThreshold)
        Attempt.Accepted = generateVectorCode(*Graph, BB, *Sched);
      if (Attempt.Accepted)
        ++NumGraphsAccepted;
      else
        ++NumGraphsRejected;
      if (RemarkStreamer *RS = Config.Remarks) {
        Verdict.Kind = Attempt.Accepted ? RemarkKind::CostAccepted
                                        : RemarkKind::CostRejected;
        RS->emit(std::move(Verdict)
                     .arg("cost", static_cast<int64_t>(Cost))
                     .arg("threshold",
                          static_cast<int64_t>(Config.CostThreshold))
                     .arg("lanes", static_cast<uint64_t>(Bundle.size()))
                     .arg("nodes", static_cast<uint64_t>(Attempt.NumNodes)));
      }
      Report.Attempts.push_back(std::move(Attempt));
    }

    // Second seed class (paper §2.2): horizontal reduction trees over the
    // stores the adjacent-store pass left scalar.
    if (Config.EnableReductions && !(BP && BP->exhausted()))
      vectorizeReductions(BB, Config, TTI, Report.Attempts, Verbose, BP);
  }

  if (BP && !BP->exhausted()) {
    // Post-transform verification: the budget machinery gives us a backup
    // to fall back on, so a codegen bug here degrades to "function kept
    // scalar + diagnostic" instead of corrupt IR escaping the pass. Also
    // the Verify fault-injection site.
    if (BP->chargeVerify()) {
      std::vector<std::string> Errors;
      if (!verifyFunction(F, &Errors))
        BP->markVerifyFailed();
    }
  }

  if (BP && BP->exhausted()) {
    F.takeBody(*Backup);
    ++NumBudgetExhausted;
    Report.Attempts.clear(); // Nothing the pass tried survived.
    Report.BudgetExhausted = true;
    Report.ExhaustionReason = BP->exhaustionReason();
    if (RemarkStreamer *RS = Config.Remarks)
      RS->emit(Remark(RemarkKind::BudgetExhausted, "slp-vectorizer")
                   .inFunction(F.getName())
                   .arg("reason", BP->exhaustionReason())
                   .arg("nodes", BP->nodesUsed())
                   .arg("permutations", BP->permutationsUsed()));
  }
  return Report;
}

ModuleReport SLPVectorizerPass::runOnModule(Module &M, unsigned Jobs) {
  ModuleReport Report;
  std::vector<Function *> Fns;
  for (const auto &F : M.functions())
    Fns.push_back(F.get());

  if (Jobs <= 1 || Fns.size() < 2) {
    for (Function *F : Fns)
      Report.Functions.push_back(runOnFunction(*F));
    return Report;
  }

  // Parallel path. Functions are independent units of work: the pass
  // never creates or follows cross-function references, Context interning
  // and shared-constant use-lists are internally locked, and statistic
  // bumps are atomic (addition commutes, so totals match serial). The one
  // order-sensitive output is the remark stream — each worker captures
  // its function's remarks in a private engine, and the collect loop
  // below replays them into the real streamer in declaration order, which
  // is exactly the serial emission order.
  RemarkStreamer *RS = Config.Remarks;
  struct FnResult {
    FunctionReport Report;
    std::vector<Remark> Remarks;
  };
  ThreadPool Pool(std::min(static_cast<size_t>(Jobs), Fns.size()));
  std::vector<FnResult> Results =
      parallelMapOrdered(Pool, Fns.size(), [&](size_t I) {
        FnResult R;
        if (!RS) {
          R.Report = runOnFunction(*Fns[I]);
          return R;
        }
        RemarkEngine Capture;
        Capture.setKeepRemarks(true);
        VectorizerConfig WorkerConfig = Config;
        WorkerConfig.Remarks = &Capture;
        SLPVectorizerPass Worker(WorkerConfig, TTI);
        Worker.setVerbose(Verbose);
        R.Report = Worker.runOnFunction(*Fns[I]);
        R.Remarks = Capture.remarks();
        return R;
      });
  for (FnResult &R : Results) {
    if (RS)
      for (Remark &Rm : R.Remarks)
        RS->emit(std::move(Rm));
    Report.Functions.push_back(std::move(R.Report));
  }
  return Report;
}
