//===- vectorizer/GraphBuilder.h - (L)SLP graph construction ----*- C++ -*-===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds the vectorization graph from a seed bundle by walking use-def
/// chains bottom-up (paper Listing 3), with LSLP's multi-node coarsening
/// over chains of same-opcode commutative instructions (Listing 4) and
/// operand reordering at group/multi-node frontiers (Listings 5-7),
/// selected by the VectorizerConfig.
///
//===----------------------------------------------------------------------===//

#ifndef LSLP_VECTORIZER_GRAPHBUILDER_H
#define LSLP_VECTORIZER_GRAPHBUILDER_H

#include "vectorizer/Budget.h"
#include "vectorizer/Config.h"
#include "vectorizer/OperandReordering.h"
#include "vectorizer/SLPGraph.h"
#include "vectorizer/Scheduler.h"

#include <map>
#include <optional>
#include <vector>

namespace lslp {

class BasicBlock;

/// Record/replay script for the commutative-operand reordering sites a
/// graph build visits (the global packing strategy's search space). Sites
/// are numbered in deterministic DFS build order. Choices[Site] selects
/// the reordering applied there: 0 (or past-the-end) replays the greedy
/// reorderOperands pass; K >= 1 applies the (K-1)-th fixed per-lane
/// permutation of the site's operand matrix instead. After a build,
/// SitesSeen and SiteOptions describe the sites encountered, letting the
/// solver enumerate neighbors of the plan it just evaluated.
struct ReorderPlan {
  /// In: the option to take at each site (missing entries mean greedy).
  std::vector<unsigned> Choices;
  /// Out: number of reordering sites the build visited.
  unsigned SitesSeen = 0;
  /// Out: per visited site, the number of valid options (>= 1; option 0
  /// is always the greedy pass).
  std::vector<unsigned> SiteOptions;
};

/// One graph-construction attempt over one seed bundle. The builder owns
/// the bundle scheduler whose committed bundles the code generator later
/// materializes.
class SLPGraphBuilder {
public:
  /// \p Budget (may be null) is the enclosing function's resource budget;
  /// every node built charges it, and once it is exhausted the builder
  /// degrades every bundle to a silent gather so the attempt finishes
  /// quickly. Callers must poll Budget->exhausted() after build() and
  /// discard the graph (the caller's transform-then-commit machinery then
  /// restores the scalar body).
  ///
  /// \p Plan (may be null) scripts the operand-reordering sites for the
  /// global packing strategy; null reorders greedily everywhere (the
  /// default pipeline, byte-for-byte).
  SLPGraphBuilder(const VectorizerConfig &Config, BasicBlock &BB,
                  VectorizerBudget *Budget = nullptr,
                  ReorderPlan *Plan = nullptr);

  /// Builds the graph rooted at \p Seeds (consecutive store instructions in
  /// address order). Returns std::nullopt when even the seed bundle cannot
  /// form a group (e.g. not schedulable).
  std::optional<SLPGraph> build(const std::vector<Instruction *> &Seeds);

  /// Builds a graph whose root bundle is an arbitrary value bundle (the
  /// horizontal-reduction path: the bundle of a reduction tree's leaves).
  /// Returns std::nullopt when the root does not form a vectorizable
  /// group.
  std::optional<SLPGraph> buildValueGraph(const std::vector<Value *> &Lanes);

  /// The scheduler holding the bundles committed during the build.
  BundleScheduler &getScheduler() { return Scheduler; }

private:
  /// Cache wrapper around buildRecImpl: an operand bundle identical to an
  /// already-built vectorizable node reuses that node (diamond sharing, as
  /// in LLVM's tree entries), so e.g. x*x costs its loads only once.
  SLPNode *buildRec(const std::vector<Value *> &Lanes, unsigned Depth);
  SLPNode *buildRecImpl(const std::vector<Value *> &Lanes, unsigned Depth);
  SLPNode *buildBinaryNode(const std::vector<Instruction *> &Insts,
                           unsigned Depth);
  /// Extension: groups mixing exactly two compatible opcodes (add/sub,
  /// fadd/fsub). Returns null if the mix does not fit the pattern.
  SLPNode *tryBuildAlternateNode(const std::vector<Instruction *> &Insts,
                                 unsigned Depth);
  /// Attempts LSLP multi-node formation; returns null to fall back to the
  /// plain single-group path.
  SLPNode *tryBuildMultiNode(const std::vector<Instruction *> &Roots,
                             unsigned Depth);
  /// Flattens the same-opcode commutative chain rooted at \p Root,
  /// appending chain members to \p Chain and frontier operands to
  /// \p Frontier (left-to-right DFS order).
  void flattenChain(Instruction *Root, ValueID Opcode,
                    std::vector<Instruction *> &Chain,
                    std::vector<Value *> &Frontier);

  /// Builds operand nodes for a reordered operand matrix and attaches them
  /// to \p Node.
  void buildOperands(SLPNode *Node,
                     const std::vector<std::vector<Value *>> &Matrix,
                     unsigned Depth);

  /// The one reordering entry point of the builder: registers the site
  /// with the active ReorderPlan (when any) and either replays the greedy
  /// reorderOperands pass or applies the plan's scripted permutation.
  ReorderResult reorderAtSite(const std::vector<std::vector<Value *>> &Matrix);

  /// Emits a node-built remark for a freshly created vectorizable group
  /// (no-op when remarks are disabled).
  void noteNodeBuilt(const char *NodeKind, const std::vector<Value *> &Lanes,
                     unsigned Depth);

  const VectorizerConfig &Config;
  BasicBlock &BB;
  VectorizerBudget *Budget;
  ReorderPlan *Plan;
  BundleScheduler Scheduler;
  SLPGraph Graph;
  std::map<std::vector<Value *>, SLPNode *> BundleCache;
};

} // namespace lslp

#endif // LSLP_VECTORIZER_GRAPHBUILDER_H
