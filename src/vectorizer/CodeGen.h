//===- vectorizer/CodeGen.h - Vector code generation ------------*- C++ -*-===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Replaces an accepted SLP graph's scalar groups with vector instructions
/// (paper steps 6-7, Figure 1): materializes the bundle schedule, emits one
/// vector instruction per group (a chain for multi-nodes), assembles
/// gathered operands with constant vectors or insertelement sequences,
/// extracts lanes that still have scalar users, and erases the dead
/// scalars.
///
//===----------------------------------------------------------------------===//

#ifndef LSLP_VECTORIZER_CODEGEN_H
#define LSLP_VECTORIZER_CODEGEN_H

namespace lslp {

class BasicBlock;
class BundleScheduler;
class Instruction;
class SLPGraph;
class Value;

/// Lowers \p Graph into vector code inside \p BB. \p Scheduler must be the
/// builder's scheduler (it holds the committed bundles). Returns false —
/// leaving the function unchanged except for instruction reordering — if
/// the schedule cannot be materialized (cannot happen for graphs built
/// with per-bundle schedulability checks).
bool generateVectorCode(SLPGraph &Graph, BasicBlock &BB,
                        BundleScheduler &Scheduler);

/// Variant for graphs whose root is a value bundle rather than a store
/// group (used by the horizontal-reduction vectorizer): emits the vector
/// code and returns the root bundle's vector value, with gathers anchored
/// before \p Before. Returns null if the root is not vectorizable or the
/// schedule cannot be materialized.
Value *generateVectorValue(SLPGraph &Graph, BasicBlock &BB,
                           BundleScheduler &Scheduler, Instruction *Before);

} // namespace lslp

#endif // LSLP_VECTORIZER_CODEGEN_H
