//===- vectorizer/SLPGraph.h - The (L)SLP vectorization graph ---*- C++ -*-===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The vectorization graph: group nodes of isomorphic scalar instructions
/// (one lane each), gather nodes for operand vectors that must be
/// assembled from scalars/constants, and LSLP's multi-nodes covering
/// chains of same-opcode commutative instructions (§4.2, Figure 6).
///
//===----------------------------------------------------------------------===//

#ifndef LSLP_VECTORIZER_SLPGRAPH_H
#define LSLP_VECTORIZER_SLPGRAPH_H

#include "ir/Instruction.h"
#include "ir/Value.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace lslp {

class OStream;

/// One node of the vectorization graph.
class SLPNode {
public:
  enum class NodeKind : uint8_t {
    /// A group of isomorphic instructions to be replaced by one vector
    /// instruction (store/load/binary operator group).
    Vectorize,
    /// Lane values that stay scalar; a vector is assembled with
    /// insertelement instructions (or a constant vector).
    Gather,
    /// A chain of same-opcode commutative instructions per lane, replaced
    /// by a left-deep chain of vector instructions over the reordered
    /// frontier operands.
    MultiNode,
    /// An extension beyond the paper (present in LLVM's SLP): lanes mix
    /// exactly two compatible opcodes (add/sub or fadd/fsub, the
    /// vaddsubpd pattern of complex arithmetic). Lowered as two vector
    /// ops blended by a shufflevector.
    Alternate,
  };

  NodeKind getKind() const { return Kind; }
  bool isVectorizable() const { return Kind != NodeKind::Gather; }

  /// The per-lane values. For Vectorize: the grouped instructions. For
  /// MultiNode: the per-lane chain roots. For Gather: arbitrary values.
  const std::vector<Value *> &getScalars() const { return Scalars; }
  unsigned getNumLanes() const {
    return static_cast<unsigned>(Scalars.size());
  }
  Value *getScalar(unsigned Lane) const { return Scalars[Lane]; }

  /// Opcode shared by the lanes (for Alternate nodes, the main opcode =
  /// lane 0's).
  ValueID getOpcode() const {
    assert(isVectorizable() && "gather nodes have no opcode");
    return cast<Instruction>(Scalars[0])->getOpcode();
  }

  /// \name Alternate-node accessors.
  /// @{
  /// The second opcode of an Alternate node.
  ValueID getAltOpcode() const {
    assert(Kind == NodeKind::Alternate);
    return AltOpc;
  }
  /// True if \p Lane uses the alternate opcode.
  bool isAltLane(unsigned Lane) const {
    assert(Kind == NodeKind::Alternate);
    return cast<Instruction>(Scalars[Lane])->getOpcode() == AltOpc;
  }
  /// @}

  /// The scalar element type of the grouped value.
  Type *getScalarEltType() const;

  /// Operand nodes, in (reordered) operand order. Empty for leaves
  /// (loads, gathers).
  const std::vector<SLPNode *> &getOperands() const { return Operands; }
  SLPNode *getOperand(unsigned I) const { return Operands[I]; }
  void addOperand(SLPNode *N) { Operands.push_back(N); }

  /// \name MultiNode-specific accessors.
  /// @{
  /// Per-lane internal instructions (chain members excluding nothing: the
  /// lane root is InternalOps[Lane].front()). All are deleted after the
  /// vector chain is emitted.
  const std::vector<std::vector<Instruction *>> &getLaneChains() const {
    assert(Kind == NodeKind::MultiNode);
    return LaneChains;
  }
  /// Number of vector instructions the multi-node lowers to
  /// (= frontier width - 1).
  unsigned getChainLength() const {
    assert(Kind == NodeKind::MultiNode);
    return static_cast<unsigned>(Operands.size()) - 1;
  }
  /// @}

  /// Cost of this node (VectorCost - ScalarCost); set by the cost
  /// evaluator.
  int getCost() const { return Cost; }
  void setCost(int C) { Cost = C; }

  /// True if the lanes were permuted/reassociated relative to the original
  /// operand order (informational, for reports).
  bool wasReordered() const { return Reordered; }
  void setReordered(bool R) { Reordered = R; }

private:
  friend class SLPGraph;
  SLPNode(NodeKind Kind, std::vector<Value *> Scalars)
      : Kind(Kind), Scalars(std::move(Scalars)) {}

  NodeKind Kind;
  std::vector<Value *> Scalars;
  std::vector<SLPNode *> Operands;
  std::vector<std::vector<Instruction *>> LaneChains;
  ValueID AltOpc = ValueID::Add;
  int Cost = 0;
  bool Reordered = false;
};

/// Owns the nodes of one vectorization attempt (one seed bundle).
class SLPGraph {
public:
  SLPGraph() = default;
  SLPGraph(SLPGraph &&) = default;
  SLPGraph &operator=(SLPGraph &&) = default;

  SLPNode *getRoot() const { return Root; }
  void setRoot(SLPNode *N) { Root = N; }

  const std::vector<std::unique_ptr<SLPNode>> &nodes() const { return Nodes; }
  bool empty() const { return Nodes.empty(); }

  /// Creates a Vectorize node over \p Scalars and registers its lanes as
  /// covered (so later bundles referencing them gather instead).
  SLPNode *createVectorizeNode(std::vector<Value *> Scalars);

  /// Creates a Gather node.
  SLPNode *createGatherNode(std::vector<Value *> Scalars);

  /// Creates an Alternate node: lanes mix the main opcode (lane 0's) with
  /// \p AltOpc. Lanes are registered as covered.
  SLPNode *createAlternateNode(std::vector<Value *> Scalars, ValueID AltOpc);

  /// Creates a MultiNode whose per-lane chains are \p LaneChains (roots
  /// first). All chain members are registered as covered.
  SLPNode *createMultiNode(std::vector<Value *> Roots,
                           std::vector<std::vector<Instruction *>> LaneChains);

  /// Returns the Vectorize/MultiNode covering \p V, or null.
  SLPNode *getNodeForValue(const Value *V) const;

  /// True if \p V is a scalar replaced by this graph's vector code.
  bool isCoveredScalar(const Value *V) const {
    return getNodeForValue(V) != nullptr;
  }

  /// Number of vectorizable (non-gather) nodes.
  unsigned getNumVectorizableNodes() const;

  /// Total graph cost (sum of node costs); set by the cost evaluator.
  int getTotalCost() const { return TotalCost; }
  void setTotalCost(int C) { TotalCost = C; }

  /// Renders the graph (lanes, kinds, costs) for debugging and the
  /// motivation examples.
  void print(OStream &OS) const;
  std::string toString() const;

  /// Renders the graph in Graphviz DOT syntax (one record node per group,
  /// colored like the paper's figures: green = vectorizable, red =
  /// gather, pink = multi-node).
  void printDOT(OStream &OS, const std::string &Title = "slpgraph") const;

private:
  std::vector<std::unique_ptr<SLPNode>> Nodes;
  std::map<const Value *, SLPNode *> ValueToNode;
  SLPNode *Root = nullptr;
  int TotalCost = 0;
};

} // namespace lslp

#endif // LSLP_VECTORIZER_SLPGRAPH_H
