//===- vectorizer/PackSetSolver.h - Global pack-set search ------*- C++ -*-===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The search half of the global packing strategy (goSLP direction; see
/// ROADMAP.md). Where the greedy pipeline decides each commutative-operand
/// reordering locally, the solver treats the whole seed bundle as one
/// optimization problem: every reordering site visited during a graph
/// build is a decision variable (ReorderPlan), and the objective is the
/// total graph cost under the shared TTI cost model. The solver evaluates
/// candidate plans by building silent probe graphs (remarks off, IR
/// untouched — only codegen mutates IR) and keeps the strictly cheapest
/// plan, so ties always resolve to the greedy plan and the committed
/// output can differ from greedy only when it is provably cheaper.
///
//===----------------------------------------------------------------------===//

#ifndef LSLP_VECTORIZER_PACKSETSOLVER_H
#define LSLP_VECTORIZER_PACKSETSOLVER_H

#include "vectorizer/Config.h"
#include "vectorizer/GraphBuilder.h"

#include <optional>
#include <vector>

namespace lslp {

class BasicBlock;
class Instruction;
class TargetTransformInfo;
class VectorizerBudget;

/// Exact search over reorder plans for one seed bundle.
class PackSetSolver {
public:
  /// Outcome of one solve.
  struct Result {
    /// The winning plan (empty = the greedy plan won or tied).
    std::vector<unsigned> BestChoices;
    /// Cost of the winning plan's graph.
    int BestCost = 0;
    /// Cost of the greedy plan's graph (the baseline every alternative
    /// must strictly beat).
    int GreedyCost = 0;
    /// Candidate plans evaluated, including the greedy one.
    unsigned Candidates = 0;
    /// Reordering sites the greedy build visited.
    unsigned Sites = 0;
    /// True when MaxSolverCandidates stopped the search with candidates
    /// still enqueued.
    bool Capped = false;
    /// False when not even the greedy plan produced a graph (the bundle
    /// does not form a vectorizable root): nothing to optimize.
    bool Solved = false;
  };

  PackSetSolver(const VectorizerConfig &Config,
                const TargetTransformInfo &TTI, BasicBlock &BB,
                VectorizerBudget *Budget);

  /// Runs the search over \p Seeds. Charges \p Budget one permutation
  /// unit per candidate evaluated; callers must poll Budget->exhausted()
  /// afterwards and abandon the function when it latched.
  Result solve(const std::vector<Instruction *> &Seeds);

private:
  /// Builds one silent probe graph under \p Plan and returns its cost
  /// (nullopt when no graph forms).
  std::optional<int> evaluate(const std::vector<Instruction *> &Seeds,
                              ReorderPlan &Plan);

  /// Probe configuration: the caller's config with remarks disabled, so
  /// candidate builds leave no trace (the winner is rebuilt with remarks
  /// on by the strategy driver). Kept as a member because GraphBuilder
  /// holds its config by reference.
  VectorizerConfig ProbeConfig;
  const TargetTransformInfo &TTI;
  BasicBlock &BB;
  VectorizerBudget *Budget;
};

} // namespace lslp

#endif // LSLP_VECTORIZER_PACKSETSOLVER_H
