//===- vectorizer/SLPGraph.cpp - The (L)SLP vectorization graph -------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "vectorizer/SLPGraph.h"

#include "ir/Constants.h"
#include "ir/Printer.h"
#include "support/OStream.h"

#include <set>

using namespace lslp;

Type *SLPNode::getScalarEltType() const {
  const Value *V = Scalars[0];
  if (const auto *St = dyn_cast<StoreInst>(V))
    return St->getAccessType();
  return V->getType();
}

SLPNode *SLPGraph::createVectorizeNode(std::vector<Value *> Scalars) {
  auto *N = new SLPNode(SLPNode::NodeKind::Vectorize, std::move(Scalars));
  Nodes.emplace_back(N);
  for (Value *V : N->getScalars()) {
    assert(!ValueToNode.count(V) && "lane already covered by another node");
    ValueToNode[V] = N;
  }
  return N;
}

SLPNode *SLPGraph::createGatherNode(std::vector<Value *> Scalars) {
  auto *N = new SLPNode(SLPNode::NodeKind::Gather, std::move(Scalars));
  Nodes.emplace_back(N);
  return N;
}

SLPNode *SLPGraph::createAlternateNode(std::vector<Value *> Scalars,
                                       ValueID AltOpc) {
  auto *N = new SLPNode(SLPNode::NodeKind::Alternate, std::move(Scalars));
  N->AltOpc = AltOpc;
  Nodes.emplace_back(N);
  for (Value *V : N->getScalars()) {
    assert(!ValueToNode.count(V) && "lane already covered by another node");
    ValueToNode[V] = N;
  }
  return N;
}

SLPNode *SLPGraph::createMultiNode(
    std::vector<Value *> Roots,
    std::vector<std::vector<Instruction *>> LaneChains) {
  auto *N = new SLPNode(SLPNode::NodeKind::MultiNode, std::move(Roots));
  N->LaneChains = std::move(LaneChains);
  Nodes.emplace_back(N);
  for (const auto &Chain : N->LaneChains)
    for (Instruction *I : Chain) {
      assert(!ValueToNode.count(I) && "lane already covered by another node");
      ValueToNode[I] = N;
    }
  return N;
}

SLPNode *SLPGraph::getNodeForValue(const Value *V) const {
  auto It = ValueToNode.find(V);
  return It == ValueToNode.end() ? nullptr : It->second;
}

unsigned SLPGraph::getNumVectorizableNodes() const {
  unsigned Count = 0;
  for (const auto &N : Nodes)
    Count += N->isVectorizable();
  return Count;
}

void SLPGraph::print(OStream &OS) const {
  if (!Root) {
    OS << "<empty SLP graph>\n";
    return;
  }
  // Depth-first from the root, numbering nodes on first visit.
  std::map<const SLPNode *, unsigned> Ids;
  std::vector<const SLPNode *> Stack = {Root};
  std::vector<const SLPNode *> Ordered;
  while (!Stack.empty()) {
    const SLPNode *N = Stack.back();
    Stack.pop_back();
    if (Ids.count(N))
      continue;
    Ids[N] = static_cast<unsigned>(Ordered.size());
    Ordered.push_back(N);
    for (const SLPNode *Op : N->getOperands())
      Stack.push_back(Op);
  }
  for (const SLPNode *N : Ordered) {
    OS << "node " << Ids[N] << ": ";
    switch (N->getKind()) {
    case SLPNode::NodeKind::Vectorize:
      OS << "vectorize<"
         << Instruction::getOpcodeName(N->getOpcode()) << ">";
      break;
    case SLPNode::NodeKind::Gather:
      OS << "gather";
      break;
    case SLPNode::NodeKind::MultiNode:
      OS << "multinode<" << Instruction::getOpcodeName(N->getOpcode())
         << " x" << N->getChainLength() << ">";
      break;
    case SLPNode::NodeKind::Alternate:
      OS << "alternate<" << Instruction::getOpcodeName(N->getOpcode()) << "/"
         << Instruction::getOpcodeName(N->getAltOpcode()) << ">";
      break;
    }
    OS << " cost=" << N->getCost();
    if (N->wasReordered())
      OS << " (reordered)";
    OS << "\n";
    for (unsigned Lane = 0; Lane != N->getNumLanes(); ++Lane) {
      const Value *V = N->getScalar(Lane);
      OS << "    lane " << Lane << ": ";
      if (const auto *I = dyn_cast<Instruction>(V))
        OS << instructionToString(*I);
      else
        OS << valueRefToString(*V);
      OS << "\n";
    }
    if (!N->getOperands().empty()) {
      OS << "    operands:";
      for (const SLPNode *Op : N->getOperands())
        OS << " node" << Ids[Op];
      OS << "\n";
    }
  }
  OS << "total cost = " << TotalCost << "\n";
}

std::string SLPGraph::toString() const {
  std::string Buf;
  StringOStream OS(Buf);
  print(OS);
  return Buf;
}

void SLPGraph::printDOT(OStream &OS, const std::string &Title) const {
  auto Escape = [](const std::string &S) {
    std::string Out;
    for (char C : S) {
      if (C == '"' || C == '\\' || C == '{' || C == '}' || C == '<' ||
          C == '>' || C == '|')
        Out += '\\';
      Out += C;
    }
    return Out;
  };

  OS << "digraph \"" << Title << "\" {\n"
     << "  node [shape=record, fontname=\"monospace\"];\n"
     << "  label=\"" << Title << " (total cost " << TotalCost << ")\";\n";

  std::map<const SLPNode *, unsigned> Ids;
  for (const auto &N : Nodes)
    Ids[N.get()] = static_cast<unsigned>(Ids.size());

  for (const auto &NPtr : Nodes) {
    const SLPNode *N = NPtr.get();
    const char *Color = "lightgreen";
    std::string Kind;
    switch (N->getKind()) {
    case SLPNode::NodeKind::Vectorize:
      Kind = Instruction::getOpcodeName(N->getOpcode());
      break;
    case SLPNode::NodeKind::Gather:
      Kind = "gather";
      Color = "lightcoral";
      break;
    case SLPNode::NodeKind::MultiNode:
      Kind = std::string("multinode ") +
             Instruction::getOpcodeName(N->getOpcode()) + " x" +
             std::to_string(N->getChainLength());
      Color = "lightpink";
      break;
    case SLPNode::NodeKind::Alternate:
      Kind = std::string(Instruction::getOpcodeName(N->getOpcode())) + "/" +
             Instruction::getOpcodeName(N->getAltOpcode());
      Color = "lightyellow";
      break;
    }
    OS << "  n" << Ids[N] << " [style=filled, fillcolor=" << Color
       << ", label=\"{" << Escape(Kind) << " (cost "
       << N->getCost() << ")|{";
    for (unsigned Lane = 0; Lane != N->getNumLanes(); ++Lane) {
      if (Lane)
        OS << "|";
      const Value *V = N->getScalar(Lane);
      if (const auto *I = dyn_cast<Instruction>(V))
        OS << Escape(instructionToString(*I));
      else
        OS << Escape(valueRefToString(*V));
    }
    OS << "}}\"];\n";
  }

  for (const auto &NPtr : Nodes) {
    const SLPNode *N = NPtr.get();
    for (size_t OpIdx = 0; OpIdx < N->getOperands().size(); ++OpIdx)
      OS << "  n" << Ids[N] << " -> n" << Ids[N->getOperand(OpIdx)]
         << " [label=\"" << OpIdx << "\"];\n";
  }
  OS << "}\n";
}
