//===- vectorizer/CostEvaluator.h - Graph cost evaluation -------*- C++ -*-===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Computes the SLP-graph cost (paper step 4, Figure 1): for every node,
/// VectorCost - ScalarCost, plus gather overheads for non-vectorizable
/// operand groups and an extract per vectorized lane that is still used by
/// code outside the graph. Negative totals mean vector code is faster.
///
//===----------------------------------------------------------------------===//

#ifndef LSLP_VECTORIZER_COSTEVALUATOR_H
#define LSLP_VECTORIZER_COSTEVALUATOR_H

namespace lslp {

class RemarkStreamer;
class SLPGraph;
class TargetTransformInfo;

/// Evaluates and caches the cost of every node in \p Graph; returns the
/// total (also stored via SLPGraph::setTotalCost). When \p Remarks is
/// non-null, emits one cost-node remark per node with its kind, lane
/// count, and signed cost contribution.
int evaluateGraphCost(SLPGraph &Graph, const TargetTransformInfo &TTI,
                      RemarkStreamer *Remarks = nullptr);

} // namespace lslp

#endif // LSLP_VECTORIZER_COSTEVALUATOR_H
