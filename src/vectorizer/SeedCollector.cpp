//===- vectorizer/SeedCollector.cpp - Vectorization seeds --------------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "vectorizer/SeedCollector.h"

#include "analysis/AddressAnalysis.h"
#include "costmodel/TargetTransformInfo.h"
#include "diag/IRRemarks.h"
#include "diag/RemarkEngine.h"
#include "diag/Statistics.h"
#include "ir/BasicBlock.h"
#include "ir/Instruction.h"
#include "ir/Type.h"

#include <algorithm>
#include <set>

using namespace lslp;

LSLP_STATISTIC(NumSeedBundles, "seed-collector",
               "Store seed bundles collected");
LSLP_STATISTIC(NumSeedStoresRejected, "seed-collector",
               "Scalar stores that joined no seed bundle");

namespace {

/// A store plus its decomposed address.
struct StoreRecord {
  StoreInst *Store;
  AddressDescriptor Addr;
};

/// Chunks one run of consecutive stores into power-of-two bundles.
void chunkRun(const std::vector<StoreInst *> &Run, unsigned MaxLanes,
              std::vector<SeedBundle> &Out) {
  size_t Pos = 0;
  while (Run.size() - Pos >= 2) {
    size_t Remaining = Run.size() - Pos;
    unsigned Lanes = 2;
    while (Lanes * 2 <= std::min<size_t>(Remaining, MaxLanes))
      Lanes *= 2;
    SeedBundle Bundle(Run.begin() + Pos, Run.begin() + Pos + Lanes);
    Out.push_back(std::move(Bundle));
    Pos += Lanes;
  }
}

} // namespace

std::vector<SeedBundle>
lslp::collectStoreSeeds(BasicBlock &BB, const TargetTransformInfo &TTI,
                        RemarkStreamer *Remarks) {
  // Partition the block's scalar stores into groups with pairwise
  // compile-time-constant address distances.
  std::vector<std::vector<StoreRecord>> AddressGroups;
  for (const auto &IPtr : BB) {
    auto *St = dyn_cast<StoreInst>(IPtr.get());
    if (!St || St->getAccessType()->isVectorTy())
      continue;
    AddressDescriptor Addr = decomposePointer(St->getPointerOperand());
    if (!Addr.isValid()) {
      ++NumSeedStoresRejected;
      if (Remarks)
        Remarks->emit(
            remarkAt(RemarkKind::SeedRejected, "seed-collector", St)
                .arg("reason", "address-not-analyzable"));
      continue;
    }
    bool Placed = false;
    for (auto &Group : AddressGroups) {
      if (Group[0].Store->getAccessType() == St->getAccessType() &&
          Group[0].Addr.hasConstantDistanceFrom(Addr)) {
        Group.push_back({St, Addr});
        Placed = true;
        break;
      }
    }
    if (!Placed)
      AddressGroups.push_back({{St, Addr}});
  }

  std::vector<SeedBundle> Seeds;
  std::set<const Instruction *> Bundled;
  for (auto &Group : AddressGroups) {
    if (Group.size() < 2) {
      ++NumSeedStoresRejected;
      if (Remarks)
        Remarks->emit(remarkAt(RemarkKind::SeedRejected, "seed-collector",
                               Group[0].Store)
                          .arg("reason", "no-partner-store"));
      continue;
    }
    size_t FirstSeedOfGroup = Seeds.size();
    unsigned ElemBytes = Group[0].Store->getAccessType()->getSizeInBytes();
    unsigned MaxLanes =
        std::max(2u, TTI.getMaxVectorWidthBits() / (8 * ElemBytes));
    // Sort by constant byte offset; split runs at gaps and duplicates.
    std::stable_sort(Group.begin(), Group.end(),
                     [](const StoreRecord &A, const StoreRecord &B) {
                       return A.Addr.ConstBytes < B.Addr.ConstBytes;
                     });
    std::vector<StoreInst *> Run = {Group[0].Store};
    int64_t LastOff = Group[0].Addr.ConstBytes;
    for (size_t I = 1; I < Group.size(); ++I) {
      int64_t Off = Group[I].Addr.ConstBytes;
      if (Off == LastOff + static_cast<int64_t>(ElemBytes)) {
        Run.push_back(Group[I].Store);
      } else {
        chunkRun(Run, MaxLanes, Seeds);
        Run = {Group[I].Store};
      }
      LastOff = Off;
    }
    chunkRun(Run, MaxLanes, Seeds);

    for (size_t SI = FirstSeedOfGroup; SI != Seeds.size(); ++SI) {
      ++NumSeedBundles;
      const SeedBundle &Bundle = Seeds[SI];
      Bundled.insert(Bundle.begin(), Bundle.end());
      if (Remarks)
        Remarks->emit(
            remarkAt(RemarkKind::SeedFound, "seed-collector", Bundle[0])
                .arg("lanes", static_cast<uint64_t>(Bundle.size()))
                .arg("type",
                     cast<StoreInst>(Bundle[0])->getAccessType()->getName()));
    }
    // Stores whose group had partners but whose run was too short (split
    // at a gap or a duplicate offset).
    for (const StoreRecord &R : Group) {
      if (Bundled.count(R.Store))
        continue;
      ++NumSeedStoresRejected;
      if (Remarks)
        Remarks->emit(
            remarkAt(RemarkKind::SeedRejected, "seed-collector", R.Store)
                .arg("reason", "non-consecutive-run"));
    }
  }
  return Seeds;
}
