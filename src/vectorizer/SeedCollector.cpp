//===- vectorizer/SeedCollector.cpp - Vectorization seeds --------------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "vectorizer/SeedCollector.h"

#include "analysis/AddressAnalysis.h"
#include "costmodel/TargetTransformInfo.h"
#include "ir/BasicBlock.h"
#include "ir/Instruction.h"

#include <algorithm>

using namespace lslp;

namespace {

/// A store plus its decomposed address.
struct StoreRecord {
  StoreInst *Store;
  AddressDescriptor Addr;
};

/// Chunks one run of consecutive stores into power-of-two bundles.
void chunkRun(const std::vector<StoreInst *> &Run, unsigned MaxLanes,
              std::vector<SeedBundle> &Out) {
  size_t Pos = 0;
  while (Run.size() - Pos >= 2) {
    size_t Remaining = Run.size() - Pos;
    unsigned Lanes = 2;
    while (Lanes * 2 <= std::min<size_t>(Remaining, MaxLanes))
      Lanes *= 2;
    SeedBundle Bundle(Run.begin() + Pos, Run.begin() + Pos + Lanes);
    Out.push_back(std::move(Bundle));
    Pos += Lanes;
  }
}

} // namespace

std::vector<SeedBundle>
lslp::collectStoreSeeds(BasicBlock &BB, const TargetTransformInfo &TTI) {
  // Partition the block's scalar stores into groups with pairwise
  // compile-time-constant address distances.
  std::vector<std::vector<StoreRecord>> AddressGroups;
  for (const auto &IPtr : BB) {
    auto *St = dyn_cast<StoreInst>(IPtr.get());
    if (!St || St->getAccessType()->isVectorTy())
      continue;
    AddressDescriptor Addr = decomposePointer(St->getPointerOperand());
    if (!Addr.isValid())
      continue;
    bool Placed = false;
    for (auto &Group : AddressGroups) {
      if (Group[0].Store->getAccessType() == St->getAccessType() &&
          Group[0].Addr.hasConstantDistanceFrom(Addr)) {
        Group.push_back({St, Addr});
        Placed = true;
        break;
      }
    }
    if (!Placed)
      AddressGroups.push_back({{St, Addr}});
  }

  std::vector<SeedBundle> Seeds;
  for (auto &Group : AddressGroups) {
    if (Group.size() < 2)
      continue;
    unsigned ElemBytes = Group[0].Store->getAccessType()->getSizeInBytes();
    unsigned MaxLanes =
        std::max(2u, TTI.getMaxVectorWidthBits() / (8 * ElemBytes));
    // Sort by constant byte offset; split runs at gaps and duplicates.
    std::stable_sort(Group.begin(), Group.end(),
                     [](const StoreRecord &A, const StoreRecord &B) {
                       return A.Addr.ConstBytes < B.Addr.ConstBytes;
                     });
    std::vector<StoreInst *> Run = {Group[0].Store};
    int64_t LastOff = Group[0].Addr.ConstBytes;
    for (size_t I = 1; I < Group.size(); ++I) {
      int64_t Off = Group[I].Addr.ConstBytes;
      if (Off == LastOff + static_cast<int64_t>(ElemBytes)) {
        Run.push_back(Group[I].Store);
      } else {
        chunkRun(Run, MaxLanes, Seeds);
        Run = {Group[I].Store};
      }
      LastOff = Off;
    }
    chunkRun(Run, MaxLanes, Seeds);
  }
  return Seeds;
}
