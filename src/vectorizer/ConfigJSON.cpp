//===- vectorizer/ConfigJSON.cpp - Config <-> JSON in one place ---------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// The single serialization point for VectorizerConfig. Everything that
// ships a configuration as text — crash reproducer `.json` sidecars, the
// lslpd compile-server protocol, `lslpc --config-json=` replay — goes
// through this pair, so a knob added to toJSON() without a matching
// fromJSON() case fails the round-trip test instead of silently dropping
// on one of three hand-rolled paths.
//
//===----------------------------------------------------------------------===//

#include "vectorizer/Config.h"

#include <cstdlib>
#include <limits>

using namespace lslp;

std::string VectorizerConfig::toJSON() const {
  auto B = [](bool V) { return V ? "true" : "false"; };
  std::string S = "{";
  S += "\"name\":\"" + Name + "\"";
  S += ",\"reordering\":" + std::string(B(EnableReordering));
  S += ",\"lookahead\":" + std::string(B(EnableLookAhead));
  S += ",\"multinode\":" + std::string(B(EnableMultiNode));
  S += ",\"max-lookahead-level\":" + std::to_string(MaxLookAheadLevel);
  S += ",\"max-multinode-size\":" + std::to_string(MaxMultiNodeSize);
  S += ",\"score-aggregation\":\"";
  S += ScoreAggregation == ScoreAggregationKind::Sum ? "sum" : "max";
  S += "\",\"reorder-strategy\":\"";
  S += ReorderStrategy == ReorderStrategyKind::GreedySingle
           ? "greedy"
           : "exhaustive-per-lane";
  S += "\",\"strategy\":\"";
  S += packingStrategyName(Strategy);
  S += "\",\"max-solver-candidates\":" + std::to_string(MaxSolverCandidates);
  S += ",\"splat-mode\":" + std::string(B(EnableSplatMode));
  S += ",\"alt-opcodes\":" + std::string(B(EnableAltOpcodes));
  S += ",\"reductions\":" + std::string(B(EnableReductions));
  S += ",\"if-conversion\":" + std::string(B(EnableIfConversion));
  S += ",\"loop-unroll\":" + std::string(B(EnableLoopUnroll));
  S += ",\"unroll-factor\":" + std::to_string(UnrollFactor);
  S += ",\"cost-threshold\":" + std::to_string(CostThreshold);
  S += ",\"max-graph-depth\":" + std::to_string(MaxGraphDepth);
  S += ",\"max-graph-nodes\":" + std::to_string(MaxGraphNodes);
  S += ",\"max-permutations\":" + std::to_string(MaxPermutationsPerMultiNode);
  S += ",\"max-ms-per-function\":" + std::to_string(MaxMsPerFunction);
  S += ",\"fault-injection\":" + std::string(B(Faults != nullptr));
  S += "}";
  return S;
}

namespace {

/// Minimal cursor over the flat {"key":value,...} object toJSON emits.
/// Values are strings, integers, or the literals true/false; there are no
/// nested objects, arrays, or escapes in the config grammar.
class ConfigCursor {
public:
  explicit ConfigCursor(std::string_view Text) : Text(Text) {}

  bool consume(char C) {
    skipWS();
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return fail(std::string("expected '") + C + "'");
  }

  bool peekIs(char C) {
    skipWS();
    return Pos < Text.size() && Text[Pos] == C;
  }

  bool atEnd() {
    skipWS();
    return Pos == Text.size();
  }

  bool parseString(std::string &Out) {
    skipWS();
    if (Pos >= Text.size() || Text[Pos] != '"')
      return fail("expected string");
    ++Pos;
    Out.clear();
    while (Pos < Text.size() && Text[Pos] != '"') {
      if (Text[Pos] == '\\')
        return fail("escapes are not used in config JSON");
      Out += Text[Pos++];
    }
    if (Pos == Text.size())
      return fail("unterminated string");
    ++Pos;
    return true;
  }

  bool parseBool(bool &Out) {
    skipWS();
    if (Text.compare(Pos, 4, "true") == 0) {
      Pos += 4;
      Out = true;
      return true;
    }
    if (Text.compare(Pos, 5, "false") == 0) {
      Pos += 5;
      Out = false;
      return true;
    }
    return fail("expected true/false");
  }

  /// Unsigned decimal (the config's counters and caps).
  bool parseUInt(uint64_t &Out) {
    skipWS();
    size_t Start = Pos;
    while (Pos < Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9')
      ++Pos;
    if (Pos == Start)
      return fail("expected integer");
    std::string Num(Text.substr(Start, Pos - Start));
    char *End = nullptr;
    Out = std::strtoull(Num.c_str(), &End, 10);
    return End && *End == '\0' ? true : fail("bad integer");
  }

  /// Signed decimal (cost-threshold).
  bool parseInt(int64_t &Out) {
    skipWS();
    bool Neg = Pos < Text.size() && Text[Pos] == '-';
    if (Neg)
      ++Pos;
    uint64_t U = 0;
    if (!parseUInt(U))
      return false;
    Out = Neg ? -static_cast<int64_t>(U) : static_cast<int64_t>(U);
    return true;
  }

  const std::string &error() const { return Err; }

private:
  void skipWS() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool fail(std::string Msg) {
    if (Err.empty())
      Err = std::move(Msg);
    return false;
  }

  std::string_view Text;
  size_t Pos = 0;
  std::string Err;
};

} // namespace

bool VectorizerConfig::fromJSON(std::string_view JSON, VectorizerConfig &Out,
                                std::string &Err) {
  ConfigCursor C(JSON);
  auto Fail = [&](const std::string &Msg) {
    Err = Msg.empty() ? std::string("malformed config JSON") : Msg;
    return false;
  };
  auto FailKey = [&](const std::string &Key, const std::string &Msg) {
    Err = "config key '" + Key + "': " + Msg;
    return false;
  };

  Out = VectorizerConfig();
  if (!C.consume('{'))
    return Fail(C.error());
  bool First = true;
  while (!C.peekIs('}')) {
    if (!First && !C.consume(','))
      return Fail(C.error());
    First = false;
    std::string Key;
    if (!C.parseString(Key) || !C.consume(':'))
      return Fail(C.error());

    auto Flag = [&](bool &Field) {
      return C.parseBool(Field) ? true : Fail(C.error());
    };
    auto Unsigned = [&](unsigned &Field) {
      uint64_t V = 0;
      if (!C.parseUInt(V))
        return Fail(C.error());
      if (V > std::numeric_limits<unsigned>::max())
        return FailKey(Key, "value out of range");
      Field = static_cast<unsigned>(V);
      return true;
    };
    auto U64 = [&](uint64_t &Field) {
      return C.parseUInt(Field) ? true : Fail(C.error());
    };

    if (Key == "name") {
      if (!C.parseString(Out.Name))
        return Fail(C.error());
    } else if (Key == "reordering") {
      if (!Flag(Out.EnableReordering))
        return false;
    } else if (Key == "lookahead") {
      if (!Flag(Out.EnableLookAhead))
        return false;
    } else if (Key == "multinode") {
      if (!Flag(Out.EnableMultiNode))
        return false;
    } else if (Key == "max-lookahead-level") {
      if (!Unsigned(Out.MaxLookAheadLevel))
        return false;
    } else if (Key == "max-multinode-size") {
      if (!Unsigned(Out.MaxMultiNodeSize))
        return false;
    } else if (Key == "score-aggregation") {
      std::string V;
      if (!C.parseString(V))
        return Fail(C.error());
      if (V == "sum")
        Out.ScoreAggregation = ScoreAggregationKind::Sum;
      else if (V == "max")
        Out.ScoreAggregation = ScoreAggregationKind::Max;
      else
        return FailKey(Key, "unknown value '" + V + "'");
    } else if (Key == "reorder-strategy") {
      std::string V;
      if (!C.parseString(V))
        return Fail(C.error());
      if (V == "greedy")
        Out.ReorderStrategy = ReorderStrategyKind::GreedySingle;
      else if (V == "exhaustive-per-lane")
        Out.ReorderStrategy = ReorderStrategyKind::ExhaustivePerLane;
      else
        return FailKey(Key, "unknown value '" + V + "'");
    } else if (Key == "strategy") {
      std::string V;
      if (!C.parseString(V))
        return Fail(C.error());
      if (!parsePackingStrategy(V, Out.Strategy))
        return FailKey(Key, "unknown value '" + V + "'");
    } else if (Key == "max-solver-candidates") {
      if (!Unsigned(Out.MaxSolverCandidates))
        return false;
    } else if (Key == "splat-mode") {
      if (!Flag(Out.EnableSplatMode))
        return false;
    } else if (Key == "alt-opcodes") {
      if (!Flag(Out.EnableAltOpcodes))
        return false;
    } else if (Key == "reductions") {
      if (!Flag(Out.EnableReductions))
        return false;
    } else if (Key == "if-conversion") {
      if (!Flag(Out.EnableIfConversion))
        return false;
    } else if (Key == "loop-unroll") {
      if (!Flag(Out.EnableLoopUnroll))
        return false;
    } else if (Key == "unroll-factor") {
      if (!Unsigned(Out.UnrollFactor))
        return false;
    } else if (Key == "cost-threshold") {
      int64_t V = 0;
      if (!C.parseInt(V))
        return Fail(C.error());
      if (V < std::numeric_limits<int>::min() ||
          V > std::numeric_limits<int>::max())
        return FailKey(Key, "value out of range");
      Out.CostThreshold = static_cast<int>(V);
    } else if (Key == "max-graph-depth") {
      if (!Unsigned(Out.MaxGraphDepth))
        return false;
    } else if (Key == "max-graph-nodes") {
      if (!U64(Out.MaxGraphNodes))
        return false;
    } else if (Key == "max-permutations") {
      if (!U64(Out.MaxPermutationsPerMultiNode))
        return false;
    } else if (Key == "max-ms-per-function") {
      if (!U64(Out.MaxMsPerFunction))
        return false;
    } else if (Key == "fault-injection") {
      // Round-trips for the record only; an injector cannot be rebuilt
      // from JSON (Out.Faults stays null either way).
      bool Ignored = false;
      if (!Flag(Ignored))
        return false;
    } else {
      return FailKey(Key, "unknown key");
    }
  }
  if (!C.consume('}'))
    return Fail(C.error());
  if (!C.atEnd())
    return Fail("trailing content after config object");
  return true;
}
