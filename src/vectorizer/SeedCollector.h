//===- vectorizer/SeedCollector.h - Vectorization seeds ---------*- C++ -*-===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Finds seed bundles (paper step 1, Figure 1): groups of non-dependent
/// scalar stores to adjacent memory locations within one basic block,
/// discovered through the SCEV-lite address analysis. Runs of consecutive
/// stores are chunked into power-of-two bundles bounded by the target's
/// vector width.
///
//===----------------------------------------------------------------------===//

#ifndef LSLP_VECTORIZER_SEEDCOLLECTOR_H
#define LSLP_VECTORIZER_SEEDCOLLECTOR_H

#include <vector>

namespace lslp {

class BasicBlock;
class Instruction;
class RemarkStreamer;
class TargetTransformInfo;

/// One seed bundle: stores to consecutive addresses, in address order.
using SeedBundle = std::vector<Instruction *>;

/// Collects all store seed bundles in \p BB. Bundles are disjoint; lane
/// counts are powers of two in [2, MaxVectorWidthBits/ElementBits].
/// When \p Remarks is non-null, emits seed-found for every bundle and
/// seed-rejected (with a reason) for every scalar store left out.
std::vector<SeedBundle> collectStoreSeeds(BasicBlock &BB,
                                          const TargetTransformInfo &TTI,
                                          RemarkStreamer *Remarks = nullptr);

} // namespace lslp

#endif // LSLP_VECTORIZER_SEEDCOLLECTOR_H
