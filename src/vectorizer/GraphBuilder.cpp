//===- vectorizer/GraphBuilder.cpp - (L)SLP graph construction --------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "vectorizer/GraphBuilder.h"

#include "analysis/AddressAnalysis.h"
#include "diag/IRRemarks.h"
#include "diag/RemarkEngine.h"
#include "diag/Statistics.h"
#include "ir/BasicBlock.h"
#include "ir/Constants.h"
#include "vectorizer/OperandReordering.h"

#include <algorithm>
#include <set>

using namespace lslp;

LSLP_STATISTIC(NumGroupNodes, "graph-builder", "Vectorize group nodes built");
LSLP_STATISTIC(NumGatherNodes, "graph-builder", "Bundles degraded to gathers");
LSLP_STATISTIC(NumMultiNodes, "graph-builder", "Multi-nodes formed (LSLP)");
LSLP_STATISTIC(NumAlternateNodes, "graph-builder",
               "Alternate-opcode (add/sub blend) nodes built");

namespace {

/// Anchors a remark at the first instruction lane (falling back to a
/// block-level remark for all-constant/argument bundles).
Remark remarkForLanes(RemarkKind Kind, const std::vector<Value *> &Lanes,
                      const BasicBlock &BB) {
  for (Value *V : Lanes)
    if (auto *I = dyn_cast<Instruction>(V))
      return remarkAt(Kind, "graph-builder", I);
  return remarkIn(Kind, "graph-builder", BB);
}

/// Bounds on the global solver's per-site search space. Sites wider than
/// MaxPlannedSlots only offer the greedy option (their factorial blows
/// up); per-site alternatives are additionally capped so one multi-lane
/// site cannot swamp the whole candidate budget.
constexpr unsigned MaxPlannedSlots = 4;
constexpr unsigned MaxSiteAlternatives = 24;

uint64_t factorial(unsigned N) {
  uint64_t F = 1;
  for (unsigned I = 2; I <= N; ++I)
    F *= I;
  return F;
}

/// Number of non-greedy alternatives the plan offers at a site with the
/// given matrix shape: every combination of per-lane slot permutations
/// for lanes >= 1 (lane 0's order is final), minus the all-identity one
/// (that is option 0, the greedy pass), capped.
unsigned siteAlternatives(unsigned Slots, unsigned Lanes) {
  if (Slots < 2 || Slots > MaxPlannedSlots)
    return 0;
  const uint64_t PerLane = factorial(Slots);
  uint64_t Total = 1;
  for (unsigned L = 1; L < Lanes; ++L) {
    Total *= PerLane;
    if (Total - 1 >= MaxSiteAlternatives)
      return MaxSiteAlternatives;
  }
  return static_cast<unsigned>(Total - 1);
}

/// The \p Index-th lexicographic permutation of [0, Slots) (factorial
/// number system).
std::vector<unsigned> nthPermutation(uint64_t Index, unsigned Slots) {
  std::vector<unsigned> Pool(Slots);
  for (unsigned I = 0; I != Slots; ++I)
    Pool[I] = I;
  std::vector<unsigned> Perm;
  Perm.reserve(Slots);
  for (unsigned I = Slots; I != 0; --I) {
    uint64_t F = factorial(I - 1);
    size_t Pick = static_cast<size_t>(Index / F);
    Index %= F;
    Perm.push_back(Pool[Pick]);
    Pool.erase(Pool.begin() + Pick);
  }
  return Perm;
}

/// Decodes non-greedy alternative \p Alt (0-based) into per-lane slot
/// permutations (mixed radix, base Slots! per lane, lane 1 fastest).
/// Alternative 0 is the first combination after all-identity, hence the
/// +1 before decoding.
std::vector<std::vector<unsigned>>
decodeAlternative(uint64_t Alt, unsigned Slots, unsigned Lanes) {
  const uint64_t PerLane = factorial(Slots);
  uint64_t Code = Alt + 1;
  std::vector<std::vector<unsigned>> LanePerms;
  LanePerms.reserve(Lanes);
  LanePerms.push_back(nthPermutation(0, Slots)); // Lane 0: identity.
  for (unsigned L = 1; L != Lanes; ++L) {
    LanePerms.push_back(nthPermutation(Code % PerLane, Slots));
    Code /= PerLane;
  }
  return LanePerms;
}

} // namespace

SLPGraphBuilder::SLPGraphBuilder(const VectorizerConfig &Config,
                                 BasicBlock &BB, VectorizerBudget *Budget,
                                 ReorderPlan *Plan)
    : Config(Config), BB(BB), Budget(Budget), Plan(Plan),
      Scheduler(BB, Config.Remarks) {}

ReorderResult SLPGraphBuilder::reorderAtSite(
    const std::vector<std::vector<Value *>> &Matrix) {
  if (!Plan)
    return reorderOperands(Matrix, Config, Budget);
  const unsigned Site = Plan->SitesSeen++;
  const unsigned Slots = static_cast<unsigned>(Matrix.size());
  const unsigned Lanes = static_cast<unsigned>(Matrix[0].size());
  Plan->SiteOptions.push_back(1 + siteAlternatives(Slots, Lanes));
  const unsigned Choice =
      Site < Plan->Choices.size() ? Plan->Choices[Site] : 0;
  if (Choice == 0 || Choice >= Plan->SiteOptions.back())
    return reorderOperands(Matrix, Config, Budget);
  // A scripted permutation replaces the greedy search's per-slot charges
  // with one permutation charge; on exhaustion fall through to the greedy
  // path, which returns the identity and lets the caller abandon.
  if (Budget && !Budget->chargePermutations(1))
    return reorderOperands(Matrix, Config, Budget);
  return applyOperandAssignment(
      Matrix, decodeAlternative(Choice - 1, Slots, Lanes), Config);
}

void SLPGraphBuilder::noteNodeBuilt(const char *NodeKind,
                                    const std::vector<Value *> &Lanes,
                                    unsigned Depth) {
  if (RemarkStreamer *RS = Config.Remarks)
    RS->emit(remarkForLanes(RemarkKind::NodeBuilt, Lanes, BB)
                 .arg("node", NodeKind)
                 .arg("opcode",
                      cast<Instruction>(Lanes[0])->getOpcodeName())
                 .arg("lanes", static_cast<uint64_t>(Lanes.size()))
                 .arg("depth", static_cast<uint64_t>(Depth)));
}

std::optional<SLPGraph> SLPGraphBuilder::build(
    const std::vector<Instruction *> &Seeds) {
  assert(Seeds.size() >= 2 && "need at least two seed lanes");
  std::vector<Value *> Lanes(Seeds.begin(), Seeds.end());
  SLPNode *Root = buildRec(Lanes, /*Depth=*/0);
  if (!Root || !Root->isVectorizable())
    return std::nullopt;
  Graph.setRoot(Root);
  return std::move(Graph);
}

std::optional<SLPGraph> SLPGraphBuilder::buildValueGraph(
    const std::vector<Value *> &Lanes) {
  assert(Lanes.size() >= 2 && "need at least two lanes");
  SLPNode *Root = buildRec(Lanes, /*Depth=*/0);
  if (!Root || !Root->isVectorizable())
    return std::nullopt;
  Graph.setRoot(Root);
  return std::move(Graph);
}

SLPNode *SLPGraphBuilder::buildRec(const std::vector<Value *> &Lanes,
                                   unsigned Depth) {
  auto It = BundleCache.find(Lanes);
  if (It != BundleCache.end())
    return It->second;
  // Every buildRecImpl call materializes exactly one node; charge it
  // up front. Once the budget is gone, degrade to a *silent* gather (no
  // remark, no statistic): the whole attempt is about to be abandoned and
  // rolled back, and the single BudgetExhausted remark the pass emits is
  // the contracted diagnostic for it.
  if (Budget && !Budget->chargeNode())
    return Graph.createGatherNode(Lanes);
  SLPNode *N = buildRecImpl(Lanes, Depth);
  if (N->isVectorizable())
    BundleCache[Lanes] = N;
  return N;
}

SLPNode *SLPGraphBuilder::buildRecImpl(const std::vector<Value *> &Lanes,
                                       unsigned Depth) {
  // Every degradation to a gather is a reportable decision; \p Reason uses
  // a closed vocabulary (see DESIGN.md "Diagnostics").
  auto Gather = [&](const char *Reason) {
    ++NumGatherNodes;
    if (RemarkStreamer *RS = Config.Remarks)
      RS->emit(remarkForLanes(RemarkKind::GatherFallback, Lanes, BB)
                   .arg("reason", Reason)
                   .arg("lanes", static_cast<uint64_t>(Lanes.size()))
                   .arg("depth", static_cast<uint64_t>(Depth)));
    return Graph.createGatherNode(Lanes);
  };

  if (Depth > Config.MaxGraphDepth)
    return Gather("depth-limit");

  // Termination conditions (paper footnote 1): all lanes must hold unique,
  // isomorphic scalar instructions from this block that are not yet part
  // of the graph.
  std::vector<Instruction *> Insts;
  Insts.reserve(Lanes.size());
  for (Value *V : Lanes) {
    auto *I = dyn_cast<Instruction>(V);
    if (!I)
      return Gather("non-instruction-lane");
    Insts.push_back(I);
  }
  ValueID Opcode = Insts[0]->getOpcode();
  Type *Ty = Insts[0]->getType();
  bool MixedOpcodes = false;
  for (Instruction *I : Insts) {
    MixedOpcodes |= I->getOpcode() != Opcode;
    if (I->getType() != Ty)
      return Gather("type-mismatch");
    if (I->getParent() != &BB)
      return Gather("cross-block");
    if (I->getType()->isVectorTy())
      return Gather("already-vector"); // Already vector code.
    if (Graph.isCoveredScalar(I))
      return Gather("covered-scalar"); // Another group owns it; extract.
  }
  std::set<Value *> Unique(Lanes.begin(), Lanes.end());
  if (Unique.size() != Lanes.size())
    return Gather("duplicate-lanes"); // Duplicates vectorize as a splat.

  if (MixedOpcodes) {
    // Extension: an add/sub or fadd/fsub mix lowers as two vector ops
    // plus a blend (LLVM's "alternate opcode" bundles).
    if (Config.EnableAltOpcodes)
      if (SLPNode *Alt = tryBuildAlternateNode(Insts, Depth))
        return Alt;
    return Gather("opcode-mismatch");
  }

  switch (Opcode) {
  case ValueID::Store: {
    // Seeds: consecutive stores in address order.
    for (size_t I = 0; I + 1 < Insts.size(); ++I)
      if (!areConsecutiveAccesses(Insts[I], Insts[I + 1]))
        return Gather("non-consecutive-stores");
    if (!Scheduler.canScheduleBundle(Insts))
      return Gather("unschedulable");
    Scheduler.commitBundle(Insts);
    ++NumGroupNodes;
    noteNodeBuilt("store", Lanes, Depth);
    SLPNode *Node = Graph.createVectorizeNode(Lanes);
    std::vector<Value *> ValueLanes;
    ValueLanes.reserve(Insts.size());
    for (Instruction *I : Insts)
      ValueLanes.push_back(cast<StoreInst>(I)->getValueOperand());
    Node->addOperand(buildRec(ValueLanes, Depth + 1));
    return Node;
  }
  case ValueID::Load: {
    // A load group vectorizes only if the lanes are consecutive in lane
    // order (the order the parent's operand reordering produced).
    for (size_t I = 0; I + 1 < Insts.size(); ++I)
      if (!areConsecutiveAccesses(Insts[I], Insts[I + 1]))
        return Gather("non-consecutive-loads");
    if (!Scheduler.canScheduleBundle(Insts))
      return Gather("unschedulable");
    Scheduler.commitBundle(Insts);
    ++NumGroupNodes;
    noteNodeBuilt("load", Lanes, Depth);
    return Graph.createVectorizeNode(Lanes);
  }
  case ValueID::Select: {
    // A select group lowers to one per-lane vector blend; the i1
    // conditions gather into an <N x i1> operand (CodeGen's insertelement
    // chain), and the arms recurse like any other operand bundle.
    if (!Scheduler.canScheduleBundle(Insts))
      return Gather("unschedulable");
    Scheduler.commitBundle(Insts);
    ++NumGroupNodes;
    noteNodeBuilt("select", Lanes, Depth);
    SLPNode *Node = Graph.createVectorizeNode(Lanes);
    std::vector<Value *> CondLanes, TrueLanes, FalseLanes;
    CondLanes.reserve(Insts.size());
    TrueLanes.reserve(Insts.size());
    FalseLanes.reserve(Insts.size());
    for (Instruction *I : Insts) {
      auto *Sel = cast<SelectInst>(I);
      CondLanes.push_back(Sel->getCondition());
      TrueLanes.push_back(Sel->getTrueValue());
      FalseLanes.push_back(Sel->getFalseValue());
    }
    Node->addOperand(buildRec(CondLanes, Depth + 1));
    Node->addOperand(buildRec(TrueLanes, Depth + 1));
    Node->addOperand(buildRec(FalseLanes, Depth + 1));
    return Node;
  }
  default:
    if (Insts[0]->isBinaryOp())
      return buildBinaryNode(Insts, Depth);
    if (CastInst::isCastOpcode(Opcode)) {
      // Cast groups vectorize when the source types agree too (the
      // destination types already do).
      Type *SrcTy = cast<CastInst>(Insts[0])->getSrcType();
      for (Instruction *I : Insts)
        if (cast<CastInst>(I)->getSrcType() != SrcTy)
          return Gather("cast-source-mismatch");
      if (!Scheduler.canScheduleBundle(Insts))
        return Gather("unschedulable");
      Scheduler.commitBundle(Insts);
      ++NumGroupNodes;
      noteNodeBuilt("cast", Lanes, Depth);
      SLPNode *Node = Graph.createVectorizeNode(Lanes);
      std::vector<Value *> SrcLanes;
      SrcLanes.reserve(Insts.size());
      for (Instruction *I : Insts)
        SrcLanes.push_back(cast<CastInst>(I)->getSourceOperand());
      Node->addOperand(buildRec(SrcLanes, Depth + 1));
      return Node;
    }
    // Everything else (gep/icmp/phi/vector ops) is out of scope for
    // group formation and is gathered.
    return Gather("unsupported-opcode");
  }
}

SLPNode *SLPGraphBuilder::buildBinaryNode(
    const std::vector<Instruction *> &Insts, unsigned Depth) {
  std::vector<Value *> Lanes(Insts.begin(), Insts.end());
  const bool Commutative =
      BinaryOperator::isCommutativeOpcode(Insts[0]->getOpcode());

  if (!Scheduler.canScheduleBundle(Insts)) {
    ++NumGatherNodes;
    if (RemarkStreamer *RS = Config.Remarks)
      RS->emit(remarkForLanes(RemarkKind::GatherFallback, Lanes, BB)
                   .arg("reason", "unschedulable")
                   .arg("lanes", static_cast<uint64_t>(Lanes.size()))
                   .arg("depth", static_cast<uint64_t>(Depth)));
    return Graph.createGatherNode(Lanes);
  }

  // LSLP: try to coarsen a chain of same-opcode commutative operations
  // into a multi-node (Listing 4, coarsening mode).
  if (Commutative && Config.EnableMultiNode)
    if (SLPNode *Multi = tryBuildMultiNode(Insts, Depth))
      return Multi;

  // Plain group node (vanilla SLP path / non-commutative ops).
  Scheduler.commitBundle(Insts);
  ++NumGroupNodes;
  noteNodeBuilt("binary", Lanes, Depth);
  SLPNode *Node = Graph.createVectorizeNode(Lanes);

  std::vector<std::vector<Value *>> Matrix(2);
  for (Instruction *I : Insts) {
    Matrix[0].push_back(I->getOperand(0));
    Matrix[1].push_back(I->getOperand(1));
  }
  if (Commutative && Config.EnableReordering) {
    ReorderResult RR = reorderAtSite(Matrix);
    Node->setReordered(RR.Changed);
    Matrix = std::move(RR.Final);
  }
  buildOperands(Node, Matrix, Depth);
  return Node;
}

SLPNode *SLPGraphBuilder::tryBuildAlternateNode(
    const std::vector<Instruction *> &Insts, unsigned Depth) {
  const ValueID Main = Insts[0]->getOpcode();
  // Only the even/odd pairs hardware blends support.
  ValueID Alt;
  if (Main == ValueID::Add || Main == ValueID::Sub)
    Alt = (Main == ValueID::Add) ? ValueID::Sub : ValueID::Add;
  else if (Main == ValueID::FAdd || Main == ValueID::FSub)
    Alt = (Main == ValueID::FAdd) ? ValueID::FSub : ValueID::FAdd;
  else
    return nullptr;
  for (Instruction *I : Insts)
    if (I->getOpcode() != Main && I->getOpcode() != Alt)
      return nullptr;

  if (!Scheduler.canScheduleBundle(Insts))
    return nullptr;
  Scheduler.commitBundle(Insts);
  ++NumAlternateNodes;

  std::vector<Value *> Lanes(Insts.begin(), Insts.end());
  noteNodeBuilt("alternate", Lanes, Depth);
  SLPNode *Node = Graph.createAlternateNode(Lanes, Alt);
  // Sub/fsub lanes pin the operand order: no reordering for alt bundles.
  std::vector<std::vector<Value *>> Matrix(2);
  for (Instruction *I : Insts) {
    Matrix[0].push_back(I->getOperand(0));
    Matrix[1].push_back(I->getOperand(1));
  }
  buildOperands(Node, Matrix, Depth);
  return Node;
}

void SLPGraphBuilder::flattenChain(Instruction *Root, ValueID Opcode,
                                   std::vector<Instruction *> &Chain,
                                   std::vector<Value *> &Frontier) {
  Chain.push_back(Root);
  for (Value *Op : Root->operands()) {
    auto *OpInst = dyn_cast<Instruction>(Op);
    // An operand joins the chain only when it is the same commutative
    // opcode, lives in this block, does not escape the multi-node (its
    // sole use is the chain), is not already grouped, and the per-lane
    // size limit has room (Listing 4, lines 13-14).
    if (OpInst && OpInst->getOpcode() == Opcode &&
        OpInst->getParent() == &BB && OpInst->hasOneUse() &&
        !Graph.isCoveredScalar(OpInst) &&
        Chain.size() < Config.MaxMultiNodeSize) {
      flattenChain(OpInst, Opcode, Chain, Frontier);
      continue;
    }
    Frontier.push_back(Op);
  }
}

SLPNode *SLPGraphBuilder::tryBuildMultiNode(
    const std::vector<Instruction *> &Roots, unsigned Depth) {
  const ValueID Opcode = Roots[0]->getOpcode();
  const unsigned NumLanes = static_cast<unsigned>(Roots.size());

  std::vector<std::vector<Instruction *>> Chains(NumLanes);
  std::vector<std::vector<Value *>> Frontiers(NumLanes);
  for (unsigned L = 0; L != NumLanes; ++L)
    flattenChain(Roots[L], Opcode, Chains[L], Frontiers[L]);

  // All lanes must expose the same frontier width for slot-wise
  // reordering, and at least one lane must actually chain (otherwise the
  // plain path handles it identically and more cheaply).
  const size_t Width = Frontiers[0].size();
  bool AnyChained = Chains[0].size() > 1;
  for (unsigned L = 1; L != NumLanes; ++L) {
    if (Frontiers[L].size() != Width)
      return nullptr;
    AnyChained |= Chains[L].size() > 1;
  }
  if (!AnyChained)
    return nullptr;
  // Equal frontier widths with some lane chained implies equal chain
  // lengths per lane (chain length = width - 1 for binary ops). Lanes with
  // shorter chains would have smaller frontiers, already rejected above.

  // The internal chain values must be mutually independent across lanes so
  // the whole multi-node can be replaced at the root bundle's position.
  // Chain members of one lane depend on each other by construction, which
  // is fine: only the root bundle is scheduled as a unit.
  std::vector<Instruction *> RootVec(Roots.begin(), Roots.end());
  if (!Scheduler.canScheduleBundle(RootVec))
    return nullptr;
  Scheduler.commitBundle(RootVec);
  ++NumMultiNodes;

  std::vector<Value *> RootLanes(Roots.begin(), Roots.end());
  size_t MaxChain = 0;
  for (const auto &C : Chains)
    MaxChain = std::max(MaxChain, C.size());
  if (RemarkStreamer *RS = Config.Remarks)
    RS->emit(remarkForLanes(RemarkKind::MultiNodeFormed, RootLanes, BB)
                 .arg("opcode", Roots[0]->getOpcodeName())
                 .arg("lanes", static_cast<uint64_t>(NumLanes))
                 .arg("chain", static_cast<uint64_t>(MaxChain))
                 .arg("frontier", static_cast<uint64_t>(Width))
                 .arg("depth", static_cast<uint64_t>(Depth)));
  SLPNode *Node = Graph.createMultiNode(RootLanes, Chains);

  // Reorder across the multi-node frontier (Listing 4, line 20).
  std::vector<std::vector<Value *>> Matrix(Width,
                                           std::vector<Value *>(NumLanes));
  for (unsigned L = 0; L != NumLanes; ++L)
    for (size_t S = 0; S != Width; ++S)
      Matrix[S][L] = Frontiers[L][S];
  if (Config.EnableReordering) {
    ReorderResult RR = reorderAtSite(Matrix);
    Node->setReordered(RR.Changed);
    Matrix = std::move(RR.Final);
  }
  buildOperands(Node, Matrix, Depth);
  return Node;
}

void SLPGraphBuilder::buildOperands(
    SLPNode *Node, const std::vector<std::vector<Value *>> &Matrix,
    unsigned Depth) {
  for (const auto &SlotLanes : Matrix)
    Node->addOperand(buildRec(SlotLanes, Depth + 1));
}
