//===- vectorizer/Scheduler.h - Bundle scheduling ---------------*- C++ -*-===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bundle schedulability and materialization. A bundle (the scalars of one
/// vectorizable group) is schedulable when the basic block admits a
/// topological order of its dependence DAG in which every committed
/// bundle's members are contiguous — this is the "schedulable" termination
/// condition of the SLP graph build (paper §2.3, footnote 1). After a graph
/// is accepted, materialize() physically reorders the block to such an
/// order, after which the code generator can insert each vector instruction
/// directly before its bundle's first member.
///
//===----------------------------------------------------------------------===//

#ifndef LSLP_VECTORIZER_SCHEDULER_H
#define LSLP_VECTORIZER_SCHEDULER_H

#include "analysis/DependenceGraph.h"

#include <vector>

namespace lslp {

class BasicBlock;
class Instruction;
class RemarkStreamer;

/// Incremental bundle scheduler for one basic block. The block must not be
/// mutated between construction and materialize().
class BundleScheduler {
public:
  explicit BundleScheduler(BasicBlock &BB, RemarkStreamer *Remarks = nullptr);

  /// True if \p Bundle's members are mutually independent and adding it to
  /// the committed bundles still admits a contiguous schedule. On failure
  /// emits a scheduler-bailout remark naming the reason (intra-bundle
  /// dependence vs. a dependence cycle through committed bundles).
  bool canScheduleBundle(const std::vector<Instruction *> &Bundle) const;

  /// Commits \p Bundle (callers must have checked canScheduleBundle).
  void commitBundle(const std::vector<Instruction *> &Bundle);

  /// Reorders the block so all committed bundles are contiguous. Returns
  /// false if no valid schedule exists (callers treat the graph as
  /// non-vectorizable; cannot happen if every commit was checked).
  bool materialize();

  const DependenceGraph &getDependences() const { return Deps; }

private:
  /// Attempts a priority topological sort with \p Bundles as atomic
  /// super-nodes. Fills \p OutOrder (if non-null) with the instruction
  /// order on success.
  bool
  trySchedule(const std::vector<std::vector<Instruction *>> &Bundles,
              std::vector<Instruction *> *OutOrder) const;

  /// Emits one scheduler-bailout remark for \p Bundle.
  void emitBailout(const std::vector<Instruction *> &Bundle,
                   const char *Reason) const;

  BasicBlock &BB;
  DependenceGraph Deps;
  RemarkStreamer *Remarks;
  std::vector<std::vector<Instruction *>> Committed;
};

} // namespace lslp

#endif // LSLP_VECTORIZER_SCHEDULER_H
