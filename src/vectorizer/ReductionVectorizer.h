//===- vectorizer/ReductionVectorizer.h - Horizontal reductions -*- C++ -*-===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The second seed class the paper names (§2.2): reduction trees. A
/// single-lane tree of one commutative opcode over 2^k leaves (e.g. the
/// adds of a dot product) is vectorized by building an SLP graph whose
/// root bundle is the *leaves*, then folding the resulting vector with
/// log2(VL) shuffle+op steps and extracting lane 0 — LLVM's horizontal
/// reduction, simplified.
///
/// Runs after store-seed vectorization inside SLPVectorizerPass; trees
/// already consumed by a store-rooted graph are gone by then.
///
//===----------------------------------------------------------------------===//

#ifndef LSLP_VECTORIZER_REDUCTIONVECTORIZER_H
#define LSLP_VECTORIZER_REDUCTIONVECTORIZER_H

#include "ir/Value.h"
#include "vectorizer/Config.h"

#include <optional>
#include <vector>

namespace lslp {

class BasicBlock;
class Instruction;
struct GraphAttempt;
class TargetTransformInfo;
class Value;
class VectorizerBudget;

/// A matched reduction tree: Root computes Opcode over exactly Leaves
/// (power-of-two many), through the single-use interior ops TreeOps
/// (Root included).
struct ReductionCandidate {
  Instruction *Root = nullptr;
  ValueID Opcode = ValueID::Add;
  std::vector<Value *> Leaves;
  std::vector<Instruction *> TreeOps;
};

/// Matches a reduction tree rooted at \p Root: a same-opcode commutative
/// binop tree whose interior values have one use each, with between
/// \p MinLeaves and \p MaxLeaves leaves (power of two). When the leaves
/// are loads at constant mutual distances they are sorted by address so
/// the leaf bundle can become a vector load.
std::optional<ReductionCandidate>
matchReductionTree(Instruction *Root, unsigned MinLeaves, unsigned MaxLeaves);

/// Attempts to vectorize all profitable reduction trees in \p BB.
/// Appends one GraphAttempt per tried candidate to \p Attempts and
/// returns the number vectorized. Graph building charges \p Budget (may
/// be null); once exhausted the remaining candidates are skipped and the
/// caller rolls the function back.
unsigned vectorizeReductions(BasicBlock &BB, const VectorizerConfig &Config,
                             const TargetTransformInfo &TTI,
                             std::vector<GraphAttempt> &Attempts,
                             bool Verbose,
                             VectorizerBudget *Budget = nullptr);

} // namespace lslp

#endif // LSLP_VECTORIZER_REDUCTIONVECTORIZER_H
