//===- vectorizer/GlobalPacking.cpp - Global packing strategy ----------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "vectorizer/GlobalPacking.h"

#include "diag/IRRemarks.h"
#include "diag/RemarkEngine.h"
#include "diag/Statistics.h"
#include "vectorizer/Budget.h"
#include "vectorizer/PackSetSolver.h"

using namespace lslp;

LSLP_STATISTIC(NumGlobalSolves, "global-packing",
               "Seed bundles solved by the global strategy");
LSLP_STATISTIC(NumGlobalImprovements, "global-packing",
               "Solves where a non-greedy pack set was strictly cheaper");

GlobalPackAttempt
lslp::packBundleGlobally(const VectorizerConfig &Config,
                         const TargetTransformInfo &TTI, BasicBlock &BB,
                         const std::vector<Instruction *> &Seeds,
                         VectorizerBudget *Budget) {
  GlobalPackAttempt Out;

  PackSetSolver Solver(Config, TTI, BB, Budget);
  PackSetSolver::Result R = Solver.solve(Seeds);
  if (Budget && Budget->exhausted())
    return Out; // Caller abandons the function; no graph to hand over.

  Out.GreedyCost = R.GreedyCost;
  Out.SolvedCost = R.Solved ? R.BestCost : 0;
  Out.Candidates = R.Candidates;
  Out.Sites = R.Sites;
  Out.Capped = R.Capped;

  // Rebuild the winner with remarks on. Replaying the plan is exact —
  // builds are deterministic — so the committed graph is the one the
  // solver costed, and the visible decision trace has greedy's shape
  // (node-built/gather/reorder-choice remarks) plus the solver summary.
  // When no graph formed at all, the rebuild still runs so the gather
  // diagnostics explaining *why* match the greedy strategy's byte for
  // byte.
  Out.Plan = std::make_unique<ReorderPlan>();
  Out.Plan->Choices = R.BestChoices;
  Out.Builder =
      std::make_unique<SLPGraphBuilder>(Config, BB, Budget, Out.Plan.get());
  Out.Graph = Out.Builder->build(Seeds);
  if (Budget && Budget->exhausted()) {
    Out.Graph.reset();
    return Out;
  }

  if (!R.Solved)
    return Out;
  ++NumGlobalSolves;
  const bool Improved = R.BestCost < R.GreedyCost;
  if (Improved)
    ++NumGlobalImprovements;
  if (RemarkStreamer *RS = Config.Remarks) {
    RS->emit(remarkAt(RemarkKind::GlobalPackingSolved, "global-packing",
                      Seeds[0])
                 .arg("candidates", static_cast<uint64_t>(R.Candidates))
                 .arg("sites", static_cast<uint64_t>(R.Sites))
                 .arg("greedy-cost", static_cast<int64_t>(R.GreedyCost))
                 .arg("cost", static_cast<int64_t>(R.BestCost))
                 .arg("delta",
                      static_cast<int64_t>(R.BestCost - R.GreedyCost))
                 .arg("improved", Improved));
    if (R.Capped)
      RS->emit(remarkAt(RemarkKind::GlobalPackingBudget, "global-packing",
                        Seeds[0])
                   .arg("candidates", static_cast<uint64_t>(R.Candidates))
                   .arg("cap", static_cast<uint64_t>(
                                   Config.MaxSolverCandidates))
                   .arg("reason", "max-solver-candidates"));
  }
  return Out;
}
