//===- vectorizer/Budget.h - Per-function resource budgets ------*- C++ -*-===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// VectorizerBudget: the per-function charge counter behind the
/// VectorizerConfig resource caps. One instance is created per function by
/// SLPVectorizerPass and threaded (by pointer, may be null in unit tests)
/// through GraphBuilder, OperandReordering, LookAhead and the reduction
/// vectorizer. Charging is monotone: after the first failed charge the
/// budget stays exhausted and every later charge fails fast, so callers
/// can poll exhausted() at coarse granularity and bail.
///
/// Fault injection rides the same rails: when a FaultStream is attached,
/// each charge site first draws from the stream and an injected fault
/// marks the budget exhausted with reason "fault-injected". Downstream
/// (abandon + restore scalar body + BudgetExhausted remark) there is no
/// difference between a real exhaustion and an injected one — which is
/// exactly what makes injection a faithful test of the fallback path.
///
//===----------------------------------------------------------------------===//

#ifndef LSLP_VECTORIZER_BUDGET_H
#define LSLP_VECTORIZER_BUDGET_H

#include "support/FaultInjection.h"
#include "vectorizer/Config.h"

#include <chrono>
#include <cstdint>
#include <optional>
#include <string_view>

namespace lslp {

class VectorizerBudget {
public:
  VectorizerBudget() = default;

  /// Builds the budget for one function from \p Config, deriving the
  /// function's deterministic fault stream from \p FnName when injection
  /// is configured.
  VectorizerBudget(const VectorizerConfig &Config, std::string_view FnName)
      : MaxNodes(Config.MaxGraphNodes),
        MaxPermutations(Config.MaxPermutationsPerMultiNode) {
    if (Config.MaxMsPerFunction != 0)
      Deadline = std::chrono::steady_clock::now() +
                 std::chrono::milliseconds(Config.MaxMsPerFunction);
    if (Config.Faults)
      Faults = Config.Faults->streamFor(FnName);
  }

  /// True once any budget has run out (or a fault was injected); the
  /// function is abandoned and restored to scalar.
  bool exhausted() const { return Reason != nullptr; }

  /// The stable exhaustion reason ("node-budget", "permutation-budget",
  /// "time-budget", "fault-injected", "verify-failed"), or null.
  const char *exhaustionReason() const { return Reason; }

  /// Charges one graph node. Returns false (and latches exhaustion) when
  /// over budget or when a fault fires at this site.
  bool chargeNode() {
    if (Reason)
      return false;
    if (drawFault(FaultSite::GraphNode))
      return false;
    ++NodesUsed;
    if (MaxNodes != 0 && NodesUsed > MaxNodes)
      return fail("node-budget");
    return checkDeadline();
  }

  /// Charges \p N permutation/look-ahead score evaluations.
  bool chargePermutations(uint64_t N, FaultSite Site = FaultSite::Permutation) {
    if (Reason)
      return false;
    if (drawFault(Site))
      return false;
    PermutationsUsed += N;
    if (MaxPermutations != 0 && PermutationsUsed > MaxPermutations)
      return fail("permutation-budget");
    return checkDeadline();
  }

  /// Draws the post-transform verification fault site; the real verifier
  /// outcome is reported via markVerifyFailed().
  bool chargeVerify() {
    if (Reason)
      return false;
    return !drawFault(FaultSite::Verify);
  }

  /// Latches exhaustion because post-transform verification rejected the
  /// vectorized body.
  void markVerifyFailed() { Reason = "verify-failed"; }

  uint64_t nodesUsed() const { return NodesUsed; }
  uint64_t permutationsUsed() const { return PermutationsUsed; }
  uint64_t faultsInjected() const {
    return Faults ? Faults->injectedCount() : 0;
  }

private:
  bool fail(const char *Why) {
    Reason = Why;
    return false;
  }

  bool drawFault(FaultSite Site) {
    if (Faults && Faults->shouldFail(Site)) {
      Reason = "fault-injected";
      return true;
    }
    return false;
  }

  bool checkDeadline() {
    if (!Deadline)
      return true;
    // Polling the clock on every charge would dominate the pass; sample
    // every 64th charge.
    if ((++DeadlinePoll & 63) != 0)
      return true;
    if (std::chrono::steady_clock::now() > *Deadline)
      return fail("time-budget");
    return true;
  }

  uint64_t MaxNodes = 0;
  uint64_t MaxPermutations = 0;
  uint64_t NodesUsed = 0;
  uint64_t PermutationsUsed = 0;
  uint64_t DeadlinePoll = 0;
  std::optional<std::chrono::steady_clock::time_point> Deadline;
  std::optional<FaultStream> Faults;
  const char *Reason = nullptr;
};

} // namespace lslp

#endif // LSLP_VECTORIZER_BUDGET_H
