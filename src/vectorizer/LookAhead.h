//===- vectorizer/LookAhead.h - Look-ahead operand scoring ------*- C++ -*-===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// LSLP's look-ahead score (paper §4.4, Listing 7, Figure 7): candidate
/// operands are compared by recursively matching the sub-DAGs hanging off
/// them up to a bounded depth. Each base-case pair contributes 1 when it
/// "matches" (consecutive loads, two constants, or same-opcode
/// instructions) and 0 otherwise; recursive scores of all operand
/// combinations are aggregated by sum (default) or max (footnote-4
/// ablation).
///
//===----------------------------------------------------------------------===//

#ifndef LSLP_VECTORIZER_LOOKAHEAD_H
#define LSLP_VECTORIZER_LOOKAHEAD_H

#include "vectorizer/Config.h"

namespace lslp {

class Value;
class VectorizerBudget;

/// The trivial pairwise match test used both for candidate filtering
/// (Listing 6, line 13) and as the look-ahead base case:
///  - two loads: true iff their addresses are consecutive (last -> cand);
///  - two constants: true;
///  - two instructions of the same opcode: true;
///  - otherwise false.
bool areConsecutiveOrMatch(const Value *Last, const Value *Candidate);

/// Look-ahead score of pairing \p Candidate (current lane) with \p Last
/// (previous lane), exploring \p MaxLevel levels of the use-def DAG
/// (Listing 7). Each recursive evaluation charges \p Budget (when
/// non-null); once the budget is exhausted the remaining sub-scores
/// short-circuit to 0 — callers detect exhaustion through the budget and
/// abandon the function, so the degenerate scores are never committed.
int getLookAheadScore(const Value *Last, const Value *Candidate,
                      unsigned MaxLevel,
                      VectorizerConfig::ScoreAggregationKind Aggregation =
                          VectorizerConfig::ScoreAggregationKind::Sum,
                      VectorizerBudget *Budget = nullptr);

} // namespace lslp

#endif // LSLP_VECTORIZER_LOOKAHEAD_H
