//===- vectorizer/Scheduler.cpp - Bundle scheduling --------------------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "vectorizer/Scheduler.h"

#include "diag/IRRemarks.h"
#include "diag/RemarkEngine.h"
#include "diag/Statistics.h"
#include "ir/BasicBlock.h"
#include "ir/Instruction.h"

#include <algorithm>
#include <map>
#include <queue>
#include <set>

using namespace lslp;

LSLP_STATISTIC(NumSchedulerBailouts, "scheduler",
               "Bundles rejected as unschedulable");

BundleScheduler::BundleScheduler(BasicBlock &BB, RemarkStreamer *Remarks)
    : BB(BB), Deps(BB), Remarks(Remarks) {}

void BundleScheduler::emitBailout(const std::vector<Instruction *> &Bundle,
                                  const char *Reason) const {
  ++NumSchedulerBailouts;
  if (!Remarks)
    return;
  Remarks->emit(
      remarkAt(RemarkKind::SchedulerBailout, "scheduler", Bundle[0])
          .arg("opcode", Bundle[0]->getOpcodeName())
          .arg("lanes", static_cast<uint64_t>(Bundle.size()))
          .arg("reason", Reason));
}

bool BundleScheduler::canScheduleBundle(
    const std::vector<Instruction *> &Bundle) const {
  if (!Deps.areMutuallyIndependent(Bundle)) {
    emitBailout(Bundle, "intra-bundle-dependence");
    return false;
  }
  std::vector<std::vector<Instruction *>> Trial = Committed;
  Trial.push_back(Bundle);
  if (!trySchedule(Trial, nullptr)) {
    emitBailout(Bundle, "cycle-through-bundles");
    return false;
  }
  return true;
}

void BundleScheduler::commitBundle(const std::vector<Instruction *> &Bundle) {
  Committed.push_back(Bundle);
}

bool BundleScheduler::materialize() {
  std::vector<Instruction *> Order;
  if (!trySchedule(Committed, &Order))
    return false;
  assert(Order.size() == BB.size() && "schedule dropped instructions");
  // Physically reorder: detach everything, re-append in schedule order.
  std::vector<std::unique_ptr<Instruction>> Owned;
  Owned.reserve(Order.size());
  for (Instruction *I : Order)
    Owned.push_back(BB.detach(I));
  for (auto &I : Owned)
    BB.append(I.release());
  return true;
}

bool BundleScheduler::trySchedule(
    const std::vector<std::vector<Instruction *>> &Bundles,
    std::vector<Instruction *> *OutOrder) const {
  const auto &Insts = Deps.instructions();
  const unsigned N = Deps.size();

  // Group assignment: bundle id, or a unique singleton group.
  std::map<const Instruction *, unsigned> InstIndex;
  for (unsigned I = 0; I != N; ++I)
    InstIndex[Insts[I]] = I;

  std::vector<unsigned> GroupOf(N);
  std::vector<std::vector<unsigned>> GroupMembers;
  std::vector<bool> Assigned(N, false);
  for (const auto &Bundle : Bundles) {
    std::vector<unsigned> Members;
    for (Instruction *I : Bundle) {
      auto It = InstIndex.find(I);
      if (It == InstIndex.end())
        return false; // Instruction from another block.
      if (Assigned[It->second])
        return false; // Overlapping bundles.
      Assigned[It->second] = true;
      Members.push_back(It->second);
    }
    // Keep bundle members in their original block order so the schedule is
    // as close to the input as possible.
    std::sort(Members.begin(), Members.end());
    unsigned Gid = static_cast<unsigned>(GroupMembers.size());
    for (unsigned M : Members)
      GroupOf[M] = Gid;
    GroupMembers.push_back(std::move(Members));
  }
  for (unsigned I = 0; I != N; ++I) {
    if (Assigned[I])
      continue;
    GroupOf[I] = static_cast<unsigned>(GroupMembers.size());
    GroupMembers.push_back({I});
  }
  const unsigned NumGroups = static_cast<unsigned>(GroupMembers.size());

  // Group-level edges (deduplicated); a dependence between members of the
  // same group makes the bundle unschedulable.
  std::vector<std::set<unsigned>> Succs(NumGroups);
  std::vector<unsigned> InDegree(NumGroups, 0);
  for (unsigned I = 0; I != N; ++I) {
    for (const Instruction *Pred : Deps.directDeps(Insts[I])) {
      unsigned P = InstIndex.at(Pred);
      unsigned GP = GroupOf[P], GI = GroupOf[I];
      if (GP == GI) {
        if (GroupMembers[GI].size() > 1)
          return false; // Intra-bundle dependence.
        continue;       // Self edge on a singleton cannot happen (DAG).
      }
      if (Succs[GP].insert(GI).second)
        ++InDegree[GI];
    }
  }

  // Kahn's algorithm; priority = smallest original index of the group's
  // first member, which keeps phis first and the terminator last.
  auto Priority = [&](unsigned G) { return GroupMembers[G].front(); };
  auto Cmp = [&](unsigned A, unsigned B) { return Priority(A) > Priority(B); };
  std::priority_queue<unsigned, std::vector<unsigned>, decltype(Cmp)> Ready(
      Cmp);
  for (unsigned G = 0; G != NumGroups; ++G)
    if (InDegree[G] == 0)
      Ready.push(G);

  unsigned Emitted = 0;
  std::vector<Instruction *> Order;
  Order.reserve(N);
  while (!Ready.empty()) {
    unsigned G = Ready.top();
    Ready.pop();
    for (unsigned M : GroupMembers[G]) {
      Order.push_back(const_cast<Instruction *>(Insts[M]));
      ++Emitted;
    }
    for (unsigned S : Succs[G])
      if (--InDegree[S] == 0)
        Ready.push(S);
  }
  if (Emitted != N)
    return false; // Cycle through bundles.
  if (OutOrder)
    *OutOrder = std::move(Order);
  return true;
}
