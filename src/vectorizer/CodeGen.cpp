//===- vectorizer/CodeGen.cpp - Vector code generation -----------------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// Insertion-point strategy: after BundleScheduler::materialize() every
// bundle's members are contiguous in the block, so (a) each node's vector
// instruction can be inserted directly before the bundle's first member,
// and (b) any value a node consumes — operand bundles, gathered scalars,
// lane-0 pointers — is guaranteed to be defined before that point (a
// non-member cannot sit inside a contiguous bundle run).
//
// Gathered lanes that are themselves covered scalars of another group are
// referenced directly; the dead-code sweep keeps any scalar with remaining
// uses alive, so such lanes simply stay in scalar form alongside the
// vector code (a conservative but sound simplification of LLVM's
// ExternalUses bookkeeping).
//
//===----------------------------------------------------------------------===//

#include "vectorizer/CodeGen.h"

#include "ir/BasicBlock.h"
#include "ir/Constants.h"
#include "ir/Context.h"
#include "ir/Local.h"
#include "vectorizer/SLPGraph.h"
#include "vectorizer/Scheduler.h"

#include <map>
#include <set>

using namespace lslp;

namespace {

class Emitter {
public:
  Emitter(SLPGraph &Graph, BasicBlock &BB)
      : Graph(Graph), BB(BB), Ctx(BB.getContext()) {}

  void run() {
    emitNode(Graph.getRoot(), /*GatherAnchor=*/nullptr);
    replaceExternalUses();
    eraseDeadScalars();
  }

  /// Emits the graph and returns the root's vector value (reduction
  /// path). \p Anchor is used for a gather root and for extracts.
  Value *runForValue(Instruction *Anchor) {
    Value *Root = emitNode(Graph.getRoot(), Anchor);
    replaceExternalUses();
    eraseDeadScalars();
    return Root;
  }

private:
  /// The earliest bundle member in block order (the vector insertion
  /// anchor for the node).
  Instruction *firstMember(const SLPNode *N) {
    Instruction *First = cast<Instruction>(N->getScalar(0));
    for (unsigned L = 1, E = N->getNumLanes(); L != E; ++L) {
      auto *I = cast<Instruction>(N->getScalar(L));
      if (I->comesBefore(First))
        First = I;
    }
    return First;
  }

  Type *vectorTypeOf(const SLPNode *N) {
    return Ctx.getVectorTy(N->getScalarEltType(), N->getNumLanes());
  }

  /// Inserts a newly created instruction before \p Anchor and records it
  /// so external-use replacement does not rewrite the gathers' own scalar
  /// references.
  Instruction *insertBefore(Instruction *I, Instruction *Anchor) {
    BB.insertBefore(I, Anchor);
    EmittedInsts.insert(I);
    return I;
  }

  /// Emits \p N and returns its vector value. \p GatherAnchor is the
  /// requesting parent's insertion anchor, used only for gather nodes
  /// (vectorizable nodes anchor at their own first member).
  Value *emitNode(SLPNode *N, Instruction *GatherAnchor) {
    auto It = Emitted.find(N);
    if (It != Emitted.end())
      return It->second;
    Value *V = nullptr;
    switch (N->getKind()) {
    case SLPNode::NodeKind::Gather:
      V = emitGather(N, GatherAnchor);
      break;
    case SLPNode::NodeKind::Vectorize:
      V = emitVectorize(N);
      break;
    case SLPNode::NodeKind::MultiNode:
      V = emitMultiNode(N);
      break;
    case SLPNode::NodeKind::Alternate:
      V = emitAlternate(N);
      break;
    }
    Emitted[N] = V;
    return V;
  }

  Value *emitGather(SLPNode *N, Instruction *Anchor) {
    assert(Anchor && "gather node needs the parent's anchor");
    auto *VecTy = cast<VectorType>(vectorTypeOf(N));
    const auto &Scalars = N->getScalars();

    // All-constant lanes: a free constant vector.
    bool AllConst = true;
    for (const Value *S : Scalars)
      AllConst &= isa<Constant>(S);
    if (AllConst) {
      std::vector<Constant *> Elems;
      Elems.reserve(Scalars.size());
      for (Value *S : Scalars)
        Elems.push_back(cast<Constant>(S));
      return Ctx.getConstantVector(Elems);
    }

    // Splat: one insert plus a zero-mask broadcast shuffle.
    bool AllSame = true;
    for (const Value *S : Scalars)
      AllSame &= (S == Scalars[0]);
    if (AllSame) {
      Value *Undef = Ctx.getUndef(VecTy);
      Instruction *Ins = insertBefore(
          InsertElementInst::create(Undef, Scalars[0], Ctx.getInt32(0)),
          Anchor);
      std::vector<int> Mask(VecTy->getNumElements(), 0);
      return insertBefore(
          ShuffleVectorInst::create(Ins, Undef, std::move(Mask)), Anchor);
    }

    // General case: an insertelement chain from undef.
    Value *Acc = Ctx.getUndef(VecTy);
    for (unsigned L = 0, E = N->getNumLanes(); L != E; ++L)
      Acc = insertBefore(
          InsertElementInst::create(Acc, Scalars[L], Ctx.getInt32(L)),
          Anchor);
    return Acc;
  }

  Value *emitVectorize(SLPNode *N) {
    Instruction *Anchor = firstMember(N);
    Type *VecTy = vectorTypeOf(N);
    switch (N->getOpcode()) {
    case ValueID::Load: {
      auto *Lane0 = cast<LoadInst>(N->getScalar(0));
      return insertBefore(
          LoadInst::create(VecTy, Lane0->getPointerOperand()), Anchor);
    }
    case ValueID::Store: {
      Value *Val = emitNode(N->getOperand(0), Anchor);
      auto *Lane0 = cast<StoreInst>(N->getScalar(0));
      return insertBefore(StoreInst::create(Val, Lane0->getPointerOperand()),
                          Anchor);
    }
    case ValueID::Select: {
      // Per-lane blend: the condition operand gathers (or splats) into an
      // <N x i1>, the arms recurse as ordinary operand bundles.
      Value *Cond = emitNode(N->getOperand(0), Anchor);
      Value *TrueV = emitNode(N->getOperand(1), Anchor);
      Value *FalseV = emitNode(N->getOperand(2), Anchor);
      return insertBefore(SelectInst::create(Cond, TrueV, FalseV), Anchor);
    }
    default: {
      if (CastInst::isCastOpcode(N->getOpcode())) {
        Value *Src = emitNode(N->getOperand(0), Anchor);
        return insertBefore(CastInst::create(N->getOpcode(), Src, VecTy),
                            Anchor);
      }
      assert(cast<Instruction>(N->getScalar(0))->isBinaryOp() &&
             "unexpected vectorize-node opcode");
      Value *L = emitNode(N->getOperand(0), Anchor);
      Value *R = emitNode(N->getOperand(1), Anchor);
      return insertBefore(BinaryOperator::create(N->getOpcode(), L, R),
                          Anchor);
    }
    }
  }

  Value *emitMultiNode(SLPNode *N) {
    Instruction *Anchor = firstMember(N);
    std::vector<Value *> Frontier;
    Frontier.reserve(N->getOperands().size());
    for (SLPNode *Op : N->getOperands())
      Frontier.push_back(emitNode(Op, Anchor));
    assert(Frontier.size() >= 2 && "degenerate multi-node");
    // Commutative + associative (fast-math for FP): re-associate as a
    // left-deep chain over the reordered frontier.
    Value *Acc = Frontier[0];
    for (size_t I = 1; I < Frontier.size(); ++I)
      Acc = insertBefore(
          BinaryOperator::create(N->getOpcode(), Acc, Frontier[I]), Anchor);
    return Acc;
  }

  Value *emitAlternate(SLPNode *N) {
    Instruction *Anchor = firstMember(N);
    Value *L = emitNode(N->getOperand(0), Anchor);
    Value *R = emitNode(N->getOperand(1), Anchor);
    Value *MainVec = insertBefore(
        BinaryOperator::create(N->getOpcode(), L, R), Anchor);
    Value *AltVec = insertBefore(
        BinaryOperator::create(N->getAltOpcode(), L, R), Anchor);
    // Blend: lane k reads MainVec[k] or AltVec[k] (index k + lanes).
    unsigned Lanes = N->getNumLanes();
    std::vector<int> Mask(Lanes);
    for (unsigned K = 0; K != Lanes; ++K)
      Mask[K] = N->isAltLane(K) ? static_cast<int>(K + Lanes)
                                : static_cast<int>(K);
    return insertBefore(
        ShuffleVectorInst::create(MainVec, AltVec, std::move(Mask)), Anchor);
  }

  void replaceExternalUses() {
    for (const auto &NPtr : Graph.nodes()) {
      SLPNode *N = NPtr.get();
      if (!N->isVectorizable() || N->getOpcode() == ValueID::Store)
        continue;
      Value *Vec = Emitted.at(N);
      Instruction *Anchor = firstMember(N);
      for (unsigned L = 0, E = N->getNumLanes(); L != E; ++L) {
        Value *Scalar = N->getScalar(L);
        // Snapshot: setOperand below mutates the use list.
        std::vector<Use> Uses = Scalar->uses();
        Instruction *Extract = nullptr;
        for (const Use &U : Uses) {
          auto *UserI = cast<Instruction>(static_cast<Value *>(U.TheUser));
          if (Graph.isCoveredScalar(UserI))
            continue; // Dies with the graph.
          if (EmittedInsts.count(UserI))
            continue; // New vector code referencing the scalar (gathers).
          if (!Extract)
            Extract = insertBefore(
                ExtractElementInst::create(Vec, Ctx.getInt32(L)), Anchor);
          UserI->setOperand(U.OperandNo, Extract);
        }
      }
    }
  }

  void eraseDeadScalars() {
    std::vector<Instruction *> Covered;
    for (const auto &NPtr : Graph.nodes()) {
      const SLPNode *N = NPtr.get();
      if (N->getKind() == SLPNode::NodeKind::Vectorize ||
          N->getKind() == SLPNode::NodeKind::Alternate) {
        for (Value *S : N->getScalars())
          Covered.push_back(cast<Instruction>(S));
      } else if (N->getKind() == SLPNode::NodeKind::MultiNode) {
        for (const auto &Chain : N->getLaneChains())
          for (Instruction *I : Chain)
            Covered.push_back(I);
      }
    }
    // Fixpoint: erase covered scalars as their uses disappear. Scalars
    // still referenced (e.g. by gathers) stay alive — that is sound.
    bool Changed = true;
    std::map<Instruction *, bool> Erased;
    while (Changed) {
      Changed = false;
      for (Instruction *I : Covered) {
        if (Erased[I] || I->hasUses())
          continue;
        I->eraseFromParent();
        Erased[I] = true;
        Changed = true;
      }
    }
  }

  SLPGraph &Graph;
  BasicBlock &BB;
  Context &Ctx;
  std::map<const SLPNode *, Value *> Emitted;
  std::set<const Instruction *> EmittedInsts;
};

} // namespace

bool lslp::generateVectorCode(SLPGraph &Graph, BasicBlock &BB,
                              BundleScheduler &Scheduler) {
  if (!Scheduler.materialize())
    return false;
  Emitter(Graph, BB).run();
  // Clean up the address computations (and anything else) orphaned by the
  // deleted scalars.
  removeTriviallyDeadInstructions(BB);
  return true;
}

Value *lslp::generateVectorValue(SLPGraph &Graph, BasicBlock &BB,
                                 BundleScheduler &Scheduler,
                                 Instruction *Before) {
  if (!Graph.getRoot() || !Graph.getRoot()->isVectorizable())
    return nullptr;
  if (!Scheduler.materialize())
    return nullptr;
  // Dead-scalar cleanup is deferred to the caller: the reduction tree
  // consuming the root scalars is still in place at this point.
  return Emitter(Graph, BB).runForValue(Before);
}
