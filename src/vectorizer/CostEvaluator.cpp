//===- vectorizer/CostEvaluator.cpp - Graph cost evaluation ------------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "vectorizer/CostEvaluator.h"

#include "costmodel/TargetTransformInfo.h"
#include "diag/IRRemarks.h"
#include "diag/RemarkEngine.h"
#include "ir/Constants.h"
#include "ir/Context.h"
#include "vectorizer/SLPGraph.h"

using namespace lslp;

namespace {

const char *nodeKindName(SLPNode::NodeKind K) {
  switch (K) {
  case SLPNode::NodeKind::Gather:
    return "gather";
  case SLPNode::NodeKind::Vectorize:
    return "vectorize";
  case SLPNode::NodeKind::Alternate:
    return "alternate";
  case SLPNode::NodeKind::MultiNode:
    return "multinode";
  }
  return "unknown";
}

/// One extract per vectorized lane whose scalar still has users outside
/// the graph (those users keep reading the scalar value).
int externalUseCost(const SLPGraph &Graph, const SLPNode &Node,
                    const TargetTransformInfo &TTI, Type *VecTy) {
  int Cost = 0;
  for (const Value *Scalar : Node.getScalars()) {
    bool HasExternalUse = false;
    for (const Use &U : Scalar->uses()) {
      const auto *UserV = static_cast<const Value *>(U.TheUser);
      if (!Graph.isCoveredScalar(UserV)) {
        HasExternalUse = true;
        break;
      }
    }
    if (HasExternalUse)
      Cost += TTI.getVectorLaneOpCost(ValueID::ExtractElement, VecTy);
  }
  return Cost;
}

int nodeCost(const SLPGraph &Graph, const SLPNode &Node,
             const TargetTransformInfo &TTI) {
  Type *ScalarTy = Node.getScalarEltType();
  Context &Ctx = ScalarTy->getContext();
  const unsigned Lanes = Node.getNumLanes();
  Type *VecTy = Ctx.getVectorTy(ScalarTy, Lanes);

  switch (Node.getKind()) {
  case SLPNode::NodeKind::Gather: {
    // A splat (all lanes the same value) lowers to a broadcast.
    bool AllSame = true;
    bool AnyConstantLane = false;
    std::vector<bool> IsConst;
    IsConst.reserve(Lanes);
    for (const Value *V : Node.getScalars()) {
      AllSame &= (V == Node.getScalar(0));
      bool C = isa<Constant>(V);
      IsConst.push_back(C);
      AnyConstantLane |= C;
    }
    if (AllSame) {
      if (AnyConstantLane)
        return 0; // Splat of a constant: constant vector.
      // insert + broadcast shuffle.
      return TTI.getVectorLaneOpCost(ValueID::InsertElement, VecTy) +
             TTI.getShuffleCost(VecTy);
    }
    return TTI.getGatherCost(VecTy, IsConst);
  }
  case SLPNode::NodeKind::Vectorize: {
    ValueID Opc = Node.getOpcode();
    int Cost = 0;
    if (Opc == ValueID::Load || Opc == ValueID::Store) {
      Cost = TTI.getMemoryOpCost(Opc, VecTy);
      for (unsigned L = 0; L != Lanes; ++L)
        Cost -= TTI.getMemoryOpCost(Opc, ScalarTy);
    } else if (CastInst::isCastOpcode(Opc)) {
      Cost = TTI.getCastInstrCost(Opc, VecTy);
      for (unsigned L = 0; L != Lanes; ++L)
        Cost -= TTI.getCastInstrCost(Opc, ScalarTy);
    } else if (Opc == ValueID::Select) {
      // One vector blend replaces one scalar select per lane; the
      // condition operand's gather cost is accounted on its own node.
      Cost = TTI.getCmpSelCost(Opc, VecTy);
      for (unsigned L = 0; L != Lanes; ++L)
        Cost -= TTI.getCmpSelCost(Opc, ScalarTy);
    } else {
      Cost = TTI.getArithmeticInstrCost(Opc, VecTy);
      for (unsigned L = 0; L != Lanes; ++L)
        Cost -= TTI.getArithmeticInstrCost(Opc, ScalarTy);
    }
    if (Opc != ValueID::Store)
      Cost += externalUseCost(Graph, Node, TTI, VecTy);
    return Cost;
  }
  case SLPNode::NodeKind::Alternate: {
    // Two full-width vector ops blended by one shuffle replace one scalar
    // op per lane.
    int Cost = TTI.getArithmeticInstrCost(Node.getOpcode(), VecTy) +
               TTI.getArithmeticInstrCost(Node.getAltOpcode(), VecTy) +
               TTI.getShuffleCost(VecTy);
    for (const Value *Scalar : Node.getScalars())
      Cost -= TTI.getArithmeticInstrCost(
          cast<Instruction>(Scalar)->getOpcode(), ScalarTy);
    Cost += externalUseCost(Graph, Node, TTI, VecTy);
    return Cost;
  }
  case SLPNode::NodeKind::MultiNode: {
    // ChainLength vector ops replace ChainLength scalar ops per lane.
    ValueID Opc = Node.getOpcode();
    unsigned ChainLen = Node.getChainLength();
    int Cost = static_cast<int>(ChainLen) *
               TTI.getArithmeticInstrCost(Opc, VecTy);
    for (const auto &Chain : Node.getLaneChains())
      Cost -= static_cast<int>(Chain.size()) *
              TTI.getArithmeticInstrCost(Opc, ScalarTy);
    // Only the roots can have external uses (internals are single-use by
    // construction).
    Cost += externalUseCost(Graph, Node, TTI, VecTy);
    return Cost;
  }
  }
  return 0;
}

} // namespace

int lslp::evaluateGraphCost(SLPGraph &Graph, const TargetTransformInfo &TTI,
                            RemarkStreamer *Remarks) {
  int Total = 0;
  for (const auto &Node : Graph.nodes()) {
    int Cost = nodeCost(Graph, *Node, TTI);
    Node->setCost(Cost);
    Total += Cost;
    if (Remarks) {
      // Anchor at the node's first instruction lane; all-constant gathers
      // get no anchor and are reported without one.
      Remark R(RemarkKind::CostNode, "cost-model");
      for (const Value *Scalar : Node->getScalars())
        if (const auto *I = dyn_cast<Instruction>(Scalar)) {
          R = remarkAt(RemarkKind::CostNode, "cost-model", I);
          break;
        }
      Remarks->emit(std::move(R)
                        .arg("node", nodeKindName(Node->getKind()))
                        .arg("lanes",
                             static_cast<uint64_t>(Node->getNumLanes()))
                        .arg("cost", static_cast<int64_t>(Cost)));
    }
  }
  Graph.setTotalCost(Total);
  return Total;
}
