//===- support/StringUtil.h - Small string helpers --------------*- C++ -*-===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// String formatting helpers shared by the printer, the benchmark harness
/// and the examples.
///
//===----------------------------------------------------------------------===//

#ifndef LSLP_SUPPORT_STRINGUTIL_H
#define LSLP_SUPPORT_STRINGUTIL_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace lslp {

/// Formats \p Value with \p Decimals digits after the decimal point
/// (e.g. formatDouble(1.2345, 2) == "1.23").
std::string formatDouble(double Value, unsigned Decimals);

/// Joins \p Parts with \p Sep between consecutive elements.
std::string join(const std::vector<std::string> &Parts, std::string_view Sep);

/// Splits \p Str at every \p Sep, dropping empty pieces (so "a,,b" and
/// ",a,b," both yield {"a","b"}).
std::vector<std::string> splitNonEmpty(std::string_view Str, char Sep);

/// Returns true if \p Str starts with \p Prefix.
bool startsWith(std::string_view Str, std::string_view Prefix);

/// Strips one or two leading dashes from a command-line option, so -flag=
/// and --flag= parse identically. Shared by the lslpc/lslpd flag parsers.
std::string_view stripOptionDashes(std::string_view Arg);

/// Parses a signed decimal integer; returns false on malformed input or
/// overflow. Accepts an optional leading '-'.
bool parseInt(std::string_view Str, int64_t &Out);

/// Parses a floating-point number (strtod syntax, whole string must be
/// consumed); returns false on malformed input.
bool parseDouble(std::string_view Str, double &Out);

} // namespace lslp

#endif // LSLP_SUPPORT_STRINGUTIL_H
