//===- support/StringUtil.cpp - Small string helpers ---------------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/StringUtil.h"

#include <cstdio>
#include <cstdlib>
#include <string>

using namespace lslp;

std::string lslp::formatDouble(double Value, unsigned Decimals) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f", static_cast<int>(Decimals), Value);
  return std::string(Buf);
}

std::string lslp::join(const std::vector<std::string> &Parts,
                       std::string_view Sep) {
  std::string Result;
  for (size_t I = 0, E = Parts.size(); I != E; ++I) {
    if (I != 0)
      Result.append(Sep);
    Result.append(Parts[I]);
  }
  return Result;
}

std::vector<std::string> lslp::splitNonEmpty(std::string_view Str, char Sep) {
  std::vector<std::string> Parts;
  size_t Pos = 0;
  while (Pos <= Str.size()) {
    size_t End = Str.find(Sep, Pos);
    if (End == std::string_view::npos)
      End = Str.size();
    if (End > Pos)
      Parts.emplace_back(Str.substr(Pos, End - Pos));
    Pos = End + 1;
  }
  return Parts;
}

bool lslp::startsWith(std::string_view Str, std::string_view Prefix) {
  return Str.size() >= Prefix.size() &&
         Str.compare(0, Prefix.size(), Prefix) == 0;
}

std::string_view lslp::stripOptionDashes(std::string_view Arg) {
  if (startsWith(Arg, "--"))
    return Arg.substr(2);
  if (startsWith(Arg, "-"))
    return Arg.substr(1);
  return Arg;
}

bool lslp::parseInt(std::string_view Str, int64_t &Out) {
  if (Str.empty())
    return false;
  bool Negative = false;
  size_t I = 0;
  if (Str[0] == '-') {
    Negative = true;
    I = 1;
    if (Str.size() == 1)
      return false;
  }
  uint64_t Value = 0;
  for (; I < Str.size(); ++I) {
    char C = Str[I];
    if (C < '0' || C > '9')
      return false;
    uint64_t Digit = static_cast<uint64_t>(C - '0');
    if (Value > (UINT64_MAX - Digit) / 10)
      return false;
    Value = Value * 10 + Digit;
  }
  // Clamp to the representable signed range.
  if (Negative) {
    if (Value > static_cast<uint64_t>(INT64_MAX) + 1)
      return false;
    Out = static_cast<int64_t>(0 - Value);
    return true;
  }
  if (Value > static_cast<uint64_t>(INT64_MAX))
    return false;
  Out = static_cast<int64_t>(Value);
  return true;
}

bool lslp::parseDouble(std::string_view Str, double &Out) {
  if (Str.empty())
    return false;
  // strtod needs a terminated buffer; command-line values are short.
  std::string Buf(Str);
  char *End = nullptr;
  double Value = std::strtod(Buf.c_str(), &End);
  if (End != Buf.c_str() + Buf.size())
    return false;
  Out = Value;
  return true;
}
