//===- support/OStream.h - Lightweight output streams -----------*- C++ -*-===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small raw_ostream-like streaming facility. Per the LLVM coding
/// standards, library code avoids <iostream>; this header provides the
/// replacement used throughout the project: an abstract OStream with
/// string-buffer and stdio-file backends, plus outs()/errs() accessors.
///
//===----------------------------------------------------------------------===//

#ifndef LSLP_SUPPORT_OSTREAM_H
#define LSLP_SUPPORT_OSTREAM_H

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

namespace lslp {

/// Abstract byte-oriented output stream with printf-free formatting of the
/// common primitive types.
class OStream {
public:
  virtual ~OStream();

  OStream &operator<<(char C) {
    write(&C, 1);
    return *this;
  }
  OStream &operator<<(std::string_view Str) {
    write(Str.data(), Str.size());
    return *this;
  }
  OStream &operator<<(const char *Str) { return *this << std::string_view(Str); }
  OStream &operator<<(const std::string &Str) {
    return *this << std::string_view(Str);
  }
  OStream &operator<<(uint64_t N);
  OStream &operator<<(int64_t N);
  OStream &operator<<(uint32_t N) { return *this << uint64_t(N); }
  OStream &operator<<(int32_t N) { return *this << int64_t(N); }
  OStream &operator<<(unsigned long long N) { return *this << uint64_t(N); }
  OStream &operator<<(long long N) { return *this << int64_t(N); }
  OStream &operator<<(double D);
  OStream &operator<<(bool B) { return *this << (B ? "true" : "false"); }
  OStream &operator<<(const void *Ptr);

  /// Writes \p Size raw bytes.
  virtual void write(const char *Data, size_t Size) = 0;

  /// Pads with spaces until at least \p Col bytes have been written on the
  /// current line (best effort; used for table alignment).
  OStream &padToColumn(unsigned Col);

  /// Writes \p Str left-justified in a field of width \p Width.
  OStream &leftJustify(std::string_view Str, unsigned Width);

  /// Writes \p Str right-justified in a field of width \p Width.
  OStream &rightJustify(std::string_view Str, unsigned Width);

protected:
  /// Number of bytes written since the last '\n' (maintained by write()
  /// implementations through bumpColumn()).
  unsigned Column = 0;

  void bumpColumn(const char *Data, size_t Size);
};

/// An OStream that appends to a caller-owned std::string.
class StringOStream : public OStream {
public:
  explicit StringOStream(std::string &Buffer) : Buffer(Buffer) {}

  void write(const char *Data, size_t Size) override;

  /// Returns the accumulated contents.
  const std::string &str() const { return Buffer; }

private:
  std::string &Buffer;
};

/// An OStream writing to a stdio FILE (not owned).
class FileOStream : public OStream {
public:
  explicit FileOStream(std::FILE *File) : File(File) {}

  void write(const char *Data, size_t Size) override;

private:
  std::FILE *File;
};

/// Returns the standard output stream.
OStream &outs();

/// Returns the standard error stream.
OStream &errs();

} // namespace lslp

#endif // LSLP_SUPPORT_OSTREAM_H
