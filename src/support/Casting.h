//===- support/Casting.h - LLVM-style isa/cast/dyn_cast ---------*- C++ -*-===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Defines the isa<>, cast<> and dyn_cast<> templates, a lightweight
/// re-implementation of LLVM's hand-rolled RTTI (llvm/Support/Casting.h).
///
/// A class hierarchy opts in by providing a discriminator (typically a Kind
/// enum returned by getKind()) and a static classof(const Base *) predicate
/// on every derived class:
///
/// \code
///   struct Shape { enum Kind { SquareKind, CircleKind }; Kind K; };
///   struct Square : Shape {
///     static bool classof(const Shape *S) { return S->K == SquareKind; }
///   };
///   if (auto *Sq = dyn_cast<Square>(S)) { ... }
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef LSLP_SUPPORT_CASTING_H
#define LSLP_SUPPORT_CASTING_H

#include <cassert>
#include <type_traits>

namespace lslp {

/// Returns true if \p Val is an instance of the class \p To (or one of the
/// classes whose classof() accepts it). \p Val must be non-null.
template <typename To, typename From> bool isa(const From *Val) {
  assert(Val && "isa<> used on a null pointer");
  return To::classof(Val);
}

/// Variant of isa<> accepting references.
template <typename To, typename From>
  requires(!std::is_pointer_v<From>)
bool isa(const From &Val) {
  return To::classof(&Val);
}

/// Checked downcast: asserts that \p Val really is a \p To.
template <typename To, typename From> To *cast(From *Val) {
  assert(Val && "cast<> used on a null pointer");
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<To *>(Val);
}

/// Checked downcast for const pointers.
template <typename To, typename From> const To *cast(const From *Val) {
  assert(Val && "cast<> used on a null pointer");
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<const To *>(Val);
}

/// Checked downcast for references.
template <typename To, typename From> To &cast(From &Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<To &>(Val);
}

/// Checked downcast for const references.
template <typename To, typename From> const To &cast(const From &Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<const To &>(Val);
}

/// Checking downcast: returns null if \p Val is not a \p To.
template <typename To, typename From> To *dyn_cast(From *Val) {
  assert(Val && "dyn_cast<> used on a null pointer");
  return isa<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

/// Checking downcast for const pointers.
template <typename To, typename From> const To *dyn_cast(const From *Val) {
  assert(Val && "dyn_cast<> used on a null pointer");
  return isa<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

/// Like isa<>, but tolerates a null pointer (returns false).
template <typename To, typename From> bool isa_and_present(const From *Val) {
  return Val && isa<To>(Val);
}

/// Like dyn_cast<>, but tolerates a null pointer (propagates it).
template <typename To, typename From> To *dyn_cast_if_present(From *Val) {
  return Val && isa<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

/// Like dyn_cast_if_present<>, for const pointers.
template <typename To, typename From>
const To *dyn_cast_if_present(const From *Val) {
  return Val && isa<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

} // namespace lslp

#endif // LSLP_SUPPORT_CASTING_H
