//===- support/CrashHandler.cpp - Crash containment + reproducers ------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/CrashHandler.h"

#include <atomic>
#include <cerrno>
#include <csetjmp>
#include <csignal>
#include <cstring>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace lslp;

namespace {

//===----------------------------------------------------------------------===//
// Handler-visible state
//
// Everything the signal handler touches is either write-once process state
// (the crash directory, set before handlers are installed) or thread-local
// POD written by the thread that the synchronous signal is delivered to.
//===----------------------------------------------------------------------===//

constexpr int MaxCrumbs = 8;
constexpr int MaxCrumbText = 160;

struct Breadcrumb {
  char Kind[24];
  char Detail[MaxCrumbText];
};

thread_local Breadcrumb Crumbs[MaxCrumbs];
thread_local int NumCrumbs = 0;

thread_local const std::string *PayloadIR = nullptr;
thread_local const std::string *PayloadConfig = nullptr;

thread_local sigjmp_buf RecoveryPoint;
thread_local volatile sig_atomic_t RecoveryArmed = 0;
thread_local volatile sig_atomic_t CaughtSignal = 0;
thread_local char ReproPathBuf[1024];

// Write-once before sigaction(); read-only afterwards.
char CrashDirBuf[768];
bool HandlersInstalled = false;
std::string CrashDirStr;

// Monotonic reproducer id; atomic so concurrent worker crashes (however
// unlikely) do not collide on a filename.
std::atomic<unsigned> CrashSeq{0};

//===----------------------------------------------------------------------===//
// Async-signal-safe formatting helpers (write()-based, no stdio/malloc)
//===----------------------------------------------------------------------===//

void safeWrite(int FD, const char *Data, size_t Len) {
  while (Len > 0) {
    ssize_t N = ::write(FD, Data, Len);
    if (N <= 0) {
      if (N < 0 && errno == EINTR)
        continue;
      return;
    }
    Data += N;
    Len -= static_cast<size_t>(N);
  }
}

void safeWriteStr(int FD, const char *S) { safeWrite(FD, S, ::strlen(S)); }

/// Formats \p V in decimal into \p Buf (must hold >= 21 chars); returns the
/// number of characters written (no terminator handling needed by callers,
/// the buffer is terminated).
size_t formatUnsigned(unsigned long long V, char *Buf) {
  char Tmp[24];
  size_t N = 0;
  do {
    Tmp[N++] = static_cast<char>('0' + V % 10);
    V /= 10;
  } while (V != 0);
  for (size_t I = 0; I != N; ++I)
    Buf[I] = Tmp[N - 1 - I];
  Buf[N] = '\0';
  return N;
}

/// Appends \p Src to \p Dst (capacity \p Cap) starting at \p *Pos.
void appendStr(char *Dst, size_t Cap, size_t *Pos, const char *Src) {
  size_t Len = ::strlen(Src);
  if (*Pos + Len + 1 > Cap)
    Len = Cap - *Pos - 1;
  ::memcpy(Dst + *Pos, Src, Len);
  *Pos += Len;
  Dst[*Pos] = '\0';
}

//===----------------------------------------------------------------------===//
// Reproducer writing (called from the handler — must stay signal-safe)
//===----------------------------------------------------------------------===//

void writeCrumbHeader(int FD, int Sig) {
  safeWriteStr(FD, "; crash reproducer (auto-generated)\n; signal: ");
  safeWriteStr(FD, crashSignalName(Sig));
  safeWriteStr(FD, "\n");
  for (int I = 0; I < NumCrumbs; ++I) {
    safeWriteStr(FD, "; context: ");
    safeWriteStr(FD, Crumbs[I].Kind);
    safeWriteStr(FD, "=");
    safeWriteStr(FD, Crumbs[I].Detail);
    safeWriteStr(FD, "\n");
  }
}

/// Writes crash-<seq>-<signame>.{ll,json} into the crash dir. Fills
/// ReproPathBuf with the .ll path ("" when nothing was written).
void writeReproducer(int Sig) {
  ReproPathBuf[0] = '\0';
  if (CrashDirBuf[0] == '\0' || !PayloadIR)
    return;

  unsigned Seq = CrashSeq.fetch_add(1, std::memory_order_relaxed);
  char Stem[1024];
  size_t Pos = 0;
  appendStr(Stem, sizeof(Stem), &Pos, CrashDirBuf);
  appendStr(Stem, sizeof(Stem), &Pos, "/crash-");
  char Num[24];
  formatUnsigned(Seq, Num);
  appendStr(Stem, sizeof(Stem), &Pos, Num);
  appendStr(Stem, sizeof(Stem), &Pos, "-");
  appendStr(Stem, sizeof(Stem), &Pos, crashSignalName(Sig));

  char Path[1024];
  Pos = 0;
  appendStr(Path, sizeof(Path), &Pos, Stem);
  appendStr(Path, sizeof(Path), &Pos, ".ll");
  int FD = ::open(Path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (FD < 0)
    return;
  writeCrumbHeader(FD, Sig);
  safeWrite(FD, PayloadIR->data(), PayloadIR->size());
  safeWriteStr(FD, "\n");
  ::close(FD);
  ::memcpy(ReproPathBuf, Path, Pos + 1);

  if (PayloadConfig) {
    char JSONPath[1024];
    Pos = 0;
    appendStr(JSONPath, sizeof(JSONPath), &Pos, Stem);
    appendStr(JSONPath, sizeof(JSONPath), &Pos, ".json");
    FD = ::open(JSONPath, O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (FD >= 0) {
      safeWrite(FD, PayloadConfig->data(), PayloadConfig->size());
      safeWriteStr(FD, "\n");
      ::close(FD);
    }
  }
}

void crashHandler(int Sig) {
  writeReproducer(Sig);
  if (RecoveryArmed) {
    CaughtSignal = Sig;
    RecoveryArmed = 0;
    siglongjmp(RecoveryPoint, 1);
  }
  // No recovery point on this thread: fall back to the default disposition
  // so the process still dies with the correct wait status (and the repro
  // file already on disk).
  ::signal(Sig, SIG_DFL);
  ::raise(Sig);
}

const int HandledSignals[] = {SIGSEGV, SIGABRT, SIGFPE, SIGBUS, SIGILL};

} // namespace

const char *lslp::crashSignalName(int Sig) {
  switch (Sig) {
  case SIGSEGV:
    return "SIGSEGV";
  case SIGABRT:
    return "SIGABRT";
  case SIGFPE:
    return "SIGFPE";
  case SIGBUS:
    return "SIGBUS";
  case SIGILL:
    return "SIGILL";
  }
  return "SIG?";
}

void lslp::installCrashHandlers(const std::string &CrashDir) {
  if (HandlersInstalled)
    return;
  if (!CrashDir.empty()) {
    // Best-effort create; an existing directory is fine.
    ::mkdir(CrashDir.c_str(), 0755);
    CrashDirStr = CrashDir;
    size_t Len = CrashDir.size();
    if (Len >= sizeof(CrashDirBuf))
      Len = sizeof(CrashDirBuf) - 1;
    ::memcpy(CrashDirBuf, CrashDir.data(), Len);
    CrashDirBuf[Len] = '\0';
  }
  struct sigaction SA;
  ::memset(&SA, 0, sizeof(SA));
  SA.sa_handler = crashHandler;
  ::sigemptyset(&SA.sa_mask);
  SA.sa_flags = SA_NODEFER;
  for (int Sig : HandledSignals)
    ::sigaction(Sig, &SA, nullptr);
  HandlersInstalled = true;
}

bool lslp::crashHandlersInstalled() { return HandlersInstalled; }

const std::string &lslp::crashReproDir() { return CrashDirStr; }

CrashPayload::CrashPayload(const std::string *IRText,
                           const std::string *ConfigJSON)
    : PrevIR(PayloadIR), PrevConfig(PayloadConfig) {
  PayloadIR = IRText;
  PayloadConfig = ConfigJSON;
}

CrashPayload::~CrashPayload() {
  PayloadIR = PrevIR;
  PayloadConfig = PrevConfig;
}

CrashScope::CrashScope(const char *Kind, std::string_view Detail)
    : Pushed(NumCrumbs < MaxCrumbs) {
  if (!Pushed)
    return;
  Breadcrumb &C = Crumbs[NumCrumbs++];
  size_t KindLen = ::strlen(Kind);
  if (KindLen >= sizeof(C.Kind))
    KindLen = sizeof(C.Kind) - 1;
  ::memcpy(C.Kind, Kind, KindLen);
  C.Kind[KindLen] = '\0';
  size_t DetailLen = Detail.size();
  if (DetailLen >= sizeof(C.Detail))
    DetailLen = sizeof(C.Detail) - 1;
  ::memcpy(C.Detail, Detail.data(), DetailLen);
  C.Detail[DetailLen] = '\0';
}

CrashScope::~CrashScope() {
  if (Pushed && NumCrumbs > 0)
    --NumCrumbs;
}

bool lslp::runWithCrashRecovery(const std::function<void()> &Fn,
                                CrashInfo &Info) {
  if (!HandlersInstalled) {
    Fn();
    return true;
  }
  int CrumbDepthAtEntry = NumCrumbs;
  if (sigsetjmp(RecoveryPoint, /*savemask=*/1) != 0) {
    // Crashed inside Fn: the handler wrote the reproducer and unwound to
    // here. Scopes between the recovery point and the fault were skipped
    // over by siglongjmp, so rewind the breadcrumb stack by hand.
    Info.Signal = CaughtSignal;
    Info.SignalName = crashSignalName(CaughtSignal);
    Info.ReproPath = ReproPathBuf;
    std::string Crumbs2;
    for (int I = CrumbDepthAtEntry; I < NumCrumbs; ++I) {
      if (!Crumbs2.empty())
        Crumbs2 += ' ';
      Crumbs2 += Crumbs[I].Kind;
      Crumbs2 += '=';
      Crumbs2 += Crumbs[I].Detail;
    }
    Info.Breadcrumbs = std::move(Crumbs2);
    NumCrumbs = CrumbDepthAtEntry;
    return false;
  }
  RecoveryArmed = 1;
  Fn();
  RecoveryArmed = 0;
  return true;
}
