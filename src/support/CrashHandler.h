//===- support/CrashHandler.h - Crash containment + reproducers -*- C++ -*-===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Signal-based crash containment for the compiler pipeline and the fuzz
/// driver. Three cooperating pieces:
///
///  - installCrashHandlers(Dir): hooks SIGSEGV / SIGABRT / SIGFPE / SIGBUS /
///    SIGILL. On delivery the handler dumps a runnable `.ll` crash
///    reproducer (current IR payload + breadcrumb header comments) and the
///    active VectorizerConfig as JSON into \p Dir, then either unwinds to
///    the nearest recovery point or re-raises with the default disposition.
///
///  - CrashScope / setCrashPayload: thread-local breadcrumbs ("what was I
///    doing") and the IR/config text to dump. All state the handler reads
///    is plain thread-local POD or pre-registered string pointers, keeping
///    the handler async-signal-safe (open/write/close only).
///
///  - runWithCrashRecovery(Fn, Info): runs \p Fn with a sigsetjmp recovery
///    point armed. If \p Fn crashes, the handler writes the reproducer and
///    siglongjmps back; the call returns false with \p Info filled in and
///    the caller's thread keeps running. This is the classic in-process
///    fuzzer pattern: after a recovered crash the heap may be inconsistent
///    (the fault can hit mid-allocation), so it is only used where the
///    alternative is losing a whole sharded sweep to one bad seed.
///
//===----------------------------------------------------------------------===//

#ifndef LSLP_SUPPORT_CRASHHANDLER_H
#define LSLP_SUPPORT_CRASHHANDLER_H

#include <functional>
#include <string>
#include <string_view>

namespace lslp {

/// What a recovered crash looked like.
struct CrashInfo {
  int Signal = 0;          ///< The delivered signal number.
  std::string SignalName;  ///< "SIGSEGV", "SIGABRT", ...
  std::string ReproPath;   ///< Path of the written `.ll` reproducer ("" if
                           ///< no crash dir was configured or the write
                           ///< failed).
  std::string Breadcrumbs; ///< "pass=slp-vectorizer function=foo ..."
};

/// Installs the crash handlers (idempotent; first call wins). Reproducers
/// are written into \p CrashDir, which is created if missing; pass "" to
/// enable containment without writing files.
void installCrashHandlers(const std::string &CrashDir);

/// True once installCrashHandlers() has run.
bool crashHandlersInstalled();

/// The directory reproducers are written to ("" if none).
const std::string &crashReproDir();

/// Registers (thread-locally) the IR text and config JSON to dump if this
/// thread crashes. The pointed-to strings must stay alive and unmodified
/// while registered. Destructor restores the previous registration, so
/// payloads nest.
class CrashPayload {
public:
  CrashPayload(const std::string *IRText, const std::string *ConfigJSON);
  ~CrashPayload();
  CrashPayload(const CrashPayload &) = delete;
  CrashPayload &operator=(const CrashPayload &) = delete;

private:
  const std::string *PrevIR;
  const std::string *PrevConfig;
};

/// RAII breadcrumb: pushes "Kind=Detail" onto this thread's crash context
/// stack. The handler prints the stack into the reproducer header so a
/// crash names the module/function/node being processed.
class CrashScope {
public:
  CrashScope(const char *Kind, std::string_view Detail);
  ~CrashScope();
  CrashScope(const CrashScope &) = delete;
  CrashScope &operator=(const CrashScope &) = delete;

private:
  bool Pushed;
};

/// Runs \p Fn with an armed recovery point. Returns true if \p Fn
/// completed; on a crash, fills \p Info and returns false. Requires
/// installCrashHandlers() to have been called (otherwise \p Fn runs
/// unprotected and a crash kills the process as before). Recovery points
/// do not nest; the innermost active call on this thread catches.
bool runWithCrashRecovery(const std::function<void()> &Fn, CrashInfo &Info);

/// Stable name for a crash signal number ("SIGSEGV", ...).
const char *crashSignalName(int Sig);

} // namespace lslp

#endif // LSLP_SUPPORT_CRASHHANDLER_H
