//===- support/FaultInjection.cpp - Deterministic fault injection ------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/FaultInjection.h"

using namespace lslp;

const char *lslp::faultSiteName(FaultSite Site) {
  switch (Site) {
  case FaultSite::GraphNode:
    return "graph-node";
  case FaultSite::Permutation:
    return "permutation";
  case FaultSite::LookAhead:
    return "look-ahead";
  case FaultSite::Verify:
    return "verify";
  case FaultSite::IoTornRead:
    return "io-torn-read";
  case FaultSite::IoShortWrite:
    return "io-short-write";
  case FaultSite::IoDelay:
    return "io-delay";
  case FaultSite::IoReset:
    return "io-reset";
  case FaultSite::IoEintr:
    return "io-eintr";
  }
  return "unknown";
}

namespace {

/// splitmix64 finalizer: a cheap, well-distributed 64-bit mixer. Used both
/// to fold the function name into the stream state and to turn
/// (state, site, counter) into a uniform draw.
uint64_t mix64(uint64_t X) {
  X += 0x9e3779b97f4a7c15ull;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ull;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebull;
  return X ^ (X >> 31);
}

uint64_t hashName(std::string_view Name) {
  // FNV-1a; stable across platforms.
  uint64_t H = 0xcbf29ce484222325ull;
  for (char C : Name) {
    H ^= static_cast<unsigned char>(C);
    H *= 0x100000001b3ull;
  }
  return H;
}

} // namespace

FaultStream FaultInjector::streamFor(std::string_view FnName) const {
  return FaultStream(this, mix64(Seed ^ hashName(FnName)));
}

bool FaultStream::shouldFail(FaultSite Site) {
  const double P = Parent->probability();
  if (P <= 0.0)
    return false;
  unsigned SiteIdx = static_cast<unsigned>(Site);
  uint64_t Draw = mix64(State ^ (static_cast<uint64_t>(SiteIdx) << 56) ^
                        Counters[SiteIdx]++);
  // Top 53 bits -> uniform double in [0, 1).
  double U = static_cast<double>(Draw >> 11) * 0x1.0p-53;
  if (U >= P)
    return false;
  ++Injected;
  Parent->noteInjected();
  return true;
}
