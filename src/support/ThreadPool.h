//===- support/ThreadPool.h - Fixed-size worker pool ------------*- C++ -*-===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-size worker pool with a FIFO work queue and future-based
/// results, plus the deterministic ordered-collect helper the parallel
/// drivers are built on (parallel vectorization, the fuzz sweep, the bench
/// harness — see DESIGN.md "Concurrency model").
///
/// Determinism contract: parallelMapOrdered() returns (and, through
/// parallelForOrdered(), consumes) results in *index* order regardless of
/// completion order, so a parallel driver that buffers its output per item
/// and emits it from the collect loop is byte-identical to the serial run.
/// A pool of size 1 executes tasks in submission order, i.e. it *is* the
/// serial run, which the tests pin.
///
//===----------------------------------------------------------------------===//

#ifndef LSLP_SUPPORT_THREADPOOL_H
#define LSLP_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

namespace lslp {

/// Fixed-size thread pool. Tasks are queued FIFO and picked up by the
/// first free worker; results travel through std::future, which also
/// propagates exceptions thrown inside a task to whoever calls get().
class ThreadPool {
public:
  /// Spawns \p NumThreads workers (at least one).
  explicit ThreadPool(unsigned NumThreads);

  /// Drains the queue and joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  unsigned getNumThreads() const { return static_cast<unsigned>(Workers.size()); }

  /// Enqueues \p Fn and returns the future of its result.
  template <typename Fn>
  auto async(Fn &&F) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto Task =
        std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(F));
    std::future<R> Result = Task->get_future();
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      Queue.push([Task] { (*Task)(); });
    }
    WakeWorker.notify_one();
    return Result;
  }

  /// Blocks until every queued task has finished executing.
  void wait();

  /// Resolves a user-facing jobs request: 0 means "one per hardware
  /// thread" (at least 1); anything else is taken literally.
  static unsigned resolveJobs(unsigned Requested);

private:
  void workerLoop();

  std::vector<std::thread> Workers;
  std::queue<std::function<void()>> Queue;
  std::mutex Mutex;
  std::condition_variable WakeWorker;
  std::condition_variable Idle;
  unsigned NumActive = 0;
  bool Stop = false;
};

/// Runs Fn(0..N-1) on \p Pool and returns the results in index order —
/// the deterministic collect that keeps parallel output byte-identical to
/// serial. \p Fn must be callable concurrently from multiple threads.
template <typename Fn>
auto parallelMapOrdered(ThreadPool &Pool, size_t N, Fn F)
    -> std::vector<std::invoke_result_t<Fn, size_t>> {
  using R = std::invoke_result_t<Fn, size_t>;
  std::vector<std::future<R>> Futures;
  Futures.reserve(N);
  for (size_t I = 0; I != N; ++I)
    Futures.push_back(Pool.async([&F, I] { return F(I); }));
  std::vector<R> Results;
  Results.reserve(N);
  for (std::future<R> &Fut : Futures)
    Results.push_back(Fut.get());
  return Results;
}

/// Like parallelMapOrdered, but hands each result to \p Consume on the
/// calling thread, in index order, as soon as its prefix is complete —
/// the streaming variant the fuzz driver uses for its progress output.
template <typename Fn, typename ConsumeFn>
void parallelForOrdered(ThreadPool &Pool, size_t N, Fn F, ConsumeFn Consume) {
  using R = std::invoke_result_t<Fn, size_t>;
  std::vector<std::future<R>> Futures;
  Futures.reserve(N);
  for (size_t I = 0; I != N; ++I)
    Futures.push_back(Pool.async([&F, I] { return F(I); }));
  for (size_t I = 0; I != N; ++I)
    Consume(I, Futures[I].get());
}

} // namespace lslp

#endif // LSLP_SUPPORT_THREADPOOL_H
