//===- support/Debug.cpp - Unreachable + fatal-error helpers -------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/Debug.h"

#include <cstdio>
#include <cstdlib>

using namespace lslp;

void lslp::unreachableInternal(const char *Msg, const char *File,
                               unsigned Line) {
  std::fprintf(stderr, "UNREACHABLE executed at %s:%u: %s\n", File, Line, Msg);
  std::abort();
}

void lslp::reportFatalError(std::string_view Msg) {
  std::fprintf(stderr, "fatal error: %.*s\n", static_cast<int>(Msg.size()),
               Msg.data());
  std::exit(1);
}
