//===- support/ThreadPool.cpp - Fixed-size worker pool ------------------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

using namespace lslp;

ThreadPool::ThreadPool(unsigned NumThreads) {
  if (NumThreads == 0)
    NumThreads = 1;
  Workers.reserve(NumThreads);
  for (unsigned I = 0; I != NumThreads; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Stop = true;
  }
  WakeWorker.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::workerLoop() {
  while (true) {
    std::function<void()> Task;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      WakeWorker.wait(Lock, [this] { return Stop || !Queue.empty(); });
      if (Queue.empty())
        return; // Stop requested and nothing left to run.
      Task = std::move(Queue.front());
      Queue.pop();
      ++NumActive;
    }
    Task();
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      --NumActive;
    }
    Idle.notify_all();
  }
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> Lock(Mutex);
  Idle.wait(Lock, [this] { return Queue.empty() && NumActive == 0; });
}

unsigned ThreadPool::resolveJobs(unsigned Requested) {
  if (Requested != 0)
    return Requested;
  unsigned HW = std::thread::hardware_concurrency();
  return HW ? HW : 1;
}
