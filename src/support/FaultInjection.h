//===- support/FaultInjection.h - Deterministic fault injection -*- C++ -*-===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Seed-driven fault injection for exercising the vectorizer's failure
/// paths. A FaultInjector is configured once (seed + probability) and hands
/// out per-function FaultStreams; every would-fail decision is a pure
/// function of (seed, function name, site, per-site counter), so the same
/// faults fire on every run regardless of --jobs, thread scheduling, or
/// which other functions are being compiled — a hard requirement for the
/// oracle's determinism check, which runs the pass twice and diffs the
/// output byte for byte.
///
/// Injected faults are *not* crashes: each site that draws "fail" behaves
/// exactly as if the corresponding resource budget had been exhausted, so
/// the pass abandons the function and falls back to the untouched scalar
/// body. The differential oracle then asserts that this surfaced as a
/// clean BudgetExhausted remark with bit-exact scalar output.
///
//===----------------------------------------------------------------------===//

#ifndef LSLP_SUPPORT_FAULTINJECTION_H
#define LSLP_SUPPORT_FAULTINJECTION_H

#include <atomic>
#include <cstdint>
#include <string_view>

namespace lslp {

/// The places a fault can be injected. The first group maps to real
/// resource-budget or verification sites in the vectorizer; the IO group
/// maps to network-layer misbehavior injected by the server::ChaosSocket
/// transport shim (see DESIGN.md "Serving failure model"). Values are
/// append-only: per-site draw sequences depend only on the site index, so
/// adding sites never perturbs the faults an existing (seed, probability)
/// pair injects at the old sites.
enum class FaultSite : unsigned {
  GraphNode,   ///< SLP graph node creation (GraphBuilder).
  Permutation, ///< Operand-permutation evaluation (OperandReordering).
  LookAhead,   ///< Recursive look-ahead score evaluation (LookAhead).
  Verify,      ///< Post-vectorization function verification.
  IoTornRead,  ///< recv() returns a single byte (frames arrive shredded).
  IoShortWrite,///< send() accepts a single byte (peers see torn frames).
  IoDelay,     ///< A read/write is delayed by a few milliseconds.
  IoReset,     ///< The call fails with ECONNRESET (mid-request reset).
  IoEintr,     ///< The call fails with EINTR (signal-interrupt storm).
};
constexpr unsigned NumFaultSites = 9;

/// Stable lower-case name ("graph-node", ...) for diagnostics and remarks.
const char *faultSiteName(FaultSite Site);

class FaultStream;

/// Process-wide fault-injection policy: a seed and a per-draw failure
/// probability. Shared read-only across vectorizer workers; the only
/// mutable state is an atomic tally of injected faults (reporting only —
/// never consulted for decisions).
class FaultInjector {
public:
  FaultInjector(uint64_t Seed, double Probability)
      : Seed(Seed), Probability(Probability) {}

  double probability() const { return Probability; }
  uint64_t seed() const { return Seed; }

  /// Creates the deterministic fault stream for the function named
  /// \p FnName. Streams derived from the same (seed, name) pair draw the
  /// identical fail/pass sequence.
  FaultStream streamFor(std::string_view FnName) const;

  /// Total faults injected through all streams so far (telemetry).
  uint64_t totalInjected() const {
    return TotalInjected.load(std::memory_order_relaxed);
  }

private:
  friend class FaultStream;
  void noteInjected() const {
    TotalInjected.fetch_add(1, std::memory_order_relaxed);
  }

  uint64_t Seed;
  double Probability;
  mutable std::atomic<uint64_t> TotalInjected{0};
};

/// Per-function sequence of fault draws. Not thread-safe; each stream is
/// confined to the single worker vectorizing its function.
class FaultStream {
public:
  /// Draws one fail/pass decision at \p Site. Returns true if a fault
  /// should be injected here.
  bool shouldFail(FaultSite Site);

  /// Faults injected by this stream so far.
  uint64_t injectedCount() const { return Injected; }

private:
  friend class FaultInjector;
  FaultStream(const FaultInjector *Parent, uint64_t State)
      : Parent(Parent), State(State) {}

  const FaultInjector *Parent;
  uint64_t State;
  uint64_t Counters[NumFaultSites] = {};
  uint64_t Injected = 0;
};

} // namespace lslp

#endif // LSLP_SUPPORT_FAULTINJECTION_H
