//===- support/RNG.h - Deterministic random number generator ----*- C++ -*-===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A SplitMix64-based deterministic RNG. Used by the property-based tests
/// and the synthetic workload generators; std::mt19937 is avoided so that
/// sequences are identical across standard library implementations.
///
//===----------------------------------------------------------------------===//

#ifndef LSLP_SUPPORT_RNG_H
#define LSLP_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>

namespace lslp {

/// SplitMix64 generator (Steele, Lea, Flood; public domain reference
/// implementation). Deterministic across platforms for a given seed.
class RNG {
public:
  explicit RNG(uint64_t Seed) : State(Seed) {}

  /// Returns the next 64-bit value.
  uint64_t next() {
    State += 0x9e3779b97f4a7c15ULL;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

  /// Returns a uniformly distributed value in [0, Bound). \p Bound must be
  /// positive.
  uint64_t nextBelow(uint64_t Bound) {
    assert(Bound > 0 && "nextBelow bound must be positive");
    // Modulo bias is irrelevant for test-generation purposes.
    return next() % Bound;
  }

  /// Returns a value in the closed range [Lo, Hi].
  int64_t nextInRange(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "inverted range");
    return Lo + static_cast<int64_t>(
                    nextBelow(static_cast<uint64_t>(Hi - Lo) + 1));
  }

  /// Returns true with probability Num/Den.
  bool nextChance(uint64_t Num, uint64_t Den) { return nextBelow(Den) < Num; }

  /// Returns a double in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

private:
  uint64_t State;
};

} // namespace lslp

#endif // LSLP_SUPPORT_RNG_H
