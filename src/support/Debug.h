//===- support/Debug.h - Unreachable + fatal-error helpers ------*- C++ -*-===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// lslp_unreachable() and reportFatalError(), the project's analogues of
/// llvm_unreachable and report_fatal_error. The project compiles without
/// exceptions; invariant violations abort with a diagnostic.
///
//===----------------------------------------------------------------------===//

#ifndef LSLP_SUPPORT_DEBUG_H
#define LSLP_SUPPORT_DEBUG_H

#include <string_view>

namespace lslp {

/// Prints a diagnostic to stderr and aborts. Marked [[noreturn]] so
/// fully-covered switches need no default return.
[[noreturn]] void unreachableInternal(const char *Msg, const char *File,
                                      unsigned Line);

/// Reports an unrecoverable usage/environment error (bad input file, etc.)
/// and exits with a non-zero status.
[[noreturn]] void reportFatalError(std::string_view Msg);

} // namespace lslp

/// Marks a point in code that must never be executed if program invariants
/// hold.
#define lslp_unreachable(Msg)                                                  \
  ::lslp::unreachableInternal(Msg, __FILE__, __LINE__)

#endif // LSLP_SUPPORT_DEBUG_H
