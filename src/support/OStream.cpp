//===- support/OStream.cpp - Lightweight output streams ------------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/OStream.h"

#include <cinttypes>
#include <cstring>

using namespace lslp;

OStream::~OStream() = default;

void OStream::bumpColumn(const char *Data, size_t Size) {
  for (size_t I = Size; I > 0; --I) {
    if (Data[I - 1] == '\n') {
      Column = static_cast<unsigned>(Size - I);
      return;
    }
  }
  Column += static_cast<unsigned>(Size);
}

OStream &OStream::operator<<(uint64_t N) {
  char Buf[24];
  int Len = std::snprintf(Buf, sizeof(Buf), "%" PRIu64, N);
  write(Buf, static_cast<size_t>(Len));
  return *this;
}

OStream &OStream::operator<<(int64_t N) {
  char Buf[24];
  int Len = std::snprintf(Buf, sizeof(Buf), "%" PRId64, N);
  write(Buf, static_cast<size_t>(Len));
  return *this;
}

OStream &OStream::operator<<(double D) {
  char Buf[48];
  int Len = std::snprintf(Buf, sizeof(Buf), "%g", D);
  write(Buf, static_cast<size_t>(Len));
  return *this;
}

OStream &OStream::operator<<(const void *Ptr) {
  char Buf[24];
  int Len = std::snprintf(Buf, sizeof(Buf), "%p", Ptr);
  write(Buf, static_cast<size_t>(Len));
  return *this;
}

OStream &OStream::padToColumn(unsigned Col) {
  while (Column < Col)
    *this << ' ';
  return *this;
}

OStream &OStream::leftJustify(std::string_view Str, unsigned Width) {
  *this << Str;
  for (size_t I = Str.size(); I < Width; ++I)
    *this << ' ';
  return *this;
}

OStream &OStream::rightJustify(std::string_view Str, unsigned Width) {
  for (size_t I = Str.size(); I < Width; ++I)
    *this << ' ';
  return *this << Str;
}

void StringOStream::write(const char *Data, size_t Size) {
  Buffer.append(Data, Size);
  bumpColumn(Data, Size);
}

void FileOStream::write(const char *Data, size_t Size) {
  std::fwrite(Data, 1, Size, File);
  bumpColumn(Data, Size);
}

OStream &lslp::outs() {
  static FileOStream Stream(stdout);
  return Stream;
}

OStream &lslp::errs() {
  static FileOStream Stream(stderr);
  return Stream;
}
