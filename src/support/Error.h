//===- support/Error.h - Recoverable error handling -------------*- C++ -*-===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Error and Expected<T>: lightweight, exception-free recoverable error
/// types in the spirit of llvm::Error/llvm::Expected.
///
/// The project distinguishes two failure classes:
///
///  - *Logic bugs* (broken invariants) keep using lslp_unreachable(): the
///    process state is unknown and aborting is the only honest response.
///  - *Input-dependent failures* (malformed IR text, verifier rejections,
///    runtime traps, exhausted resource budgets) travel through Error /
///    Expected<T> so callers can diagnose, fall back, or skip cleanly
///    instead of taking the process down.
///
/// Unlike llvm::Error there is no "must-check" poisoning; these are plain
/// value types. An Error is either success() or carries a category plus a
/// human-readable message. Expected<T> is a tagged union of a T and an
/// Error.
///
//===----------------------------------------------------------------------===//

#ifndef LSLP_SUPPORT_ERROR_H
#define LSLP_SUPPORT_ERROR_H

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace lslp {

/// Broad classification of a recoverable failure. Used by drivers to pick
/// exit codes and by tests to assert the failure class without string
/// matching.
enum class ErrorCategory : uint8_t {
  None,   ///< Success; never carried by a real error.
  Parse,  ///< Malformed IR text (lexer/parser diagnostics).
  Verify, ///< Structurally invalid IR (verifier diagnostics).
  Trap,   ///< Runtime trap during execution (div-by-zero, OOB, ...).
  Budget, ///< A resource budget was exhausted; work was abandoned.
  IO,     ///< Host environment failure (unreadable file, ...).
  Internal, ///< The serving side failed (recovered worker crash, malformed
            ///< wire frame, ...) — the request is poisoned, the process
            ///< keeps running.
  Overloaded, ///< The serving side is at capacity and shed this request
              ///< before doing any work; retrying after a backoff is safe
              ///< and expected (see DESIGN.md "Serving failure model").
};

/// Returns a stable lower-case name for \p Cat ("parse", "verify", ...).
inline const char *errorCategoryName(ErrorCategory Cat) {
  switch (Cat) {
  case ErrorCategory::None:
    return "none";
  case ErrorCategory::Parse:
    return "parse";
  case ErrorCategory::Verify:
    return "verify";
  case ErrorCategory::Trap:
    return "trap";
  case ErrorCategory::Budget:
    return "budget";
  case ErrorCategory::IO:
    return "io";
  case ErrorCategory::Internal:
    return "internal";
  case ErrorCategory::Overloaded:
    return "overloaded";
  }
  return "unknown";
}

/// A recoverable failure: a category plus a message. Contextually converts
/// to bool, true meaning *an error is present* (LLVM convention):
///
///   if (Error E = doThing())
///     return E; // propagate
class Error {
public:
  /// The success value.
  Error() = default;

  /// Builds a failure of class \p Cat with diagnostic text \p Msg.
  static Error make(ErrorCategory Cat, std::string Msg) {
    assert(Cat != ErrorCategory::None && "real errors need a category");
    Error E;
    E.Cat = Cat;
    E.Msg = std::move(Msg);
    return E;
  }

  static Error success() { return Error(); }

  /// True if this holds a failure.
  explicit operator bool() const { return Cat != ErrorCategory::None; }
  bool isSuccess() const { return Cat == ErrorCategory::None; }

  ErrorCategory category() const { return Cat; }
  const std::string &message() const { return Msg; }

  /// "parse error: unexpected token" — category-prefixed diagnostic for
  /// user-facing output.
  std::string str() const {
    if (isSuccess())
      return "success";
    return std::string(errorCategoryName(Cat)) + " error: " + Msg;
  }

private:
  ErrorCategory Cat = ErrorCategory::None;
  std::string Msg;
};

/// Either a T or an Error. Construction from a T yields the success state;
/// construction from an Error yields the failure state. Contextually
/// converts to bool, true meaning *a value is present* (note: the opposite
/// polarity of Error, matching llvm::Expected):
///
///   Expected<int> R = parseCount(S);
///   if (!R)
///     return R.takeError();
///   use(*R);
template <typename T> class Expected {
public:
  /*implicit*/ Expected(T Value) : Storage(std::move(Value)) {}
  /*implicit*/ Expected(Error E) : Err(std::move(E)) {
    assert(Err && "constructing Expected from a success Error");
  }

  explicit operator bool() const { return Storage.has_value(); }
  bool hasValue() const { return Storage.has_value(); }

  T &get() {
    assert(Storage && "get() on errored Expected");
    return *Storage;
  }
  const T &get() const {
    assert(Storage && "get() on errored Expected");
    return *Storage;
  }
  T &operator*() { return get(); }
  const T &operator*() const { return get(); }
  T *operator->() { return &get(); }
  const T *operator->() const { return &get(); }

  const Error &getError() const {
    assert(!Storage && "getError() on successful Expected");
    return Err;
  }
  Error takeError() {
    assert(!Storage && "takeError() on successful Expected");
    return std::move(Err);
  }

private:
  std::optional<T> Storage;
  Error Err;
};

} // namespace lslp

#endif // LSLP_SUPPORT_ERROR_H
