//===- server/CompileService.h - The shared compile surface -----*- C++ -*-===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One compile path for local lslpc and the lslpd daemon. The service
/// consumes a CompileRequest (module text + config JSON + requested
/// outputs) and produces a CompileResponse whose fields are, byte for
/// byte, what single-process lslpc writes to its streams:
///
///   ReportText + IRText  -> stdout
///   RemarksText          -> the remark sink (stderr/file)
///   StatsText, ErrorText -> stderr
///   ExitCode             -> process exit code
///
/// Because both the local driver and the daemon call this one function,
/// `lslpc --connect=SOCK` output matches `lslpc` output by construction —
/// there is no second implementation to drift. Local-only features (-run,
/// -graphs, -dot, --time-passes) stay on the driver's legacy path and are
/// rejected under --connect.
///
/// Thread-safety: runCompileRequest is safe to call concurrently.
/// Requests with WantStats serialize behind a process-wide exclusive lock
/// so a ScopedStatsCapture sees only its own request's counter bumps;
/// stat-less requests share the lock and run fully parallel.
///
//===----------------------------------------------------------------------===//

#ifndef LSLP_SERVER_COMPILESERVICE_H
#define LSLP_SERVER_COMPILESERVICE_H

#include "server/Protocol.h"

namespace lslp {
namespace server {

/// Parses, optionally optimizes, and prints the module carried by \p Req.
/// Never throws and never crashes on malformed *input* (malformed IR and
/// config produce structured failures in the response); a crash in the
/// pass pipeline itself is the caller's job to contain (the daemon wraps
/// this call in runWithCrashRecovery).
CompileResponse runCompileRequest(const CompileRequest &Req);

} // namespace server
} // namespace lslp

#endif // LSLP_SERVER_COMPILESERVICE_H
