//===- server/Client.h - lslpd client transport -----------------*- C++ -*-===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The client half of the daemon protocol: a lock-step connection wrapper
/// (one request frame out, one response frame in) used by
/// `lslpc --connect=SOCK`, the fuzz sharder, and the bench harness's
/// daemon mode, plus runFuzzSweepViaDaemons(), which splits a seed sweep
/// across N daemons and re-delivers outcomes in ascending seed order so
/// the caller cannot tell it apart from a local runFuzzSweep().
///
/// Resilience (DESIGN.md "Serving failure model"): every call takes a
/// deadline, and compile()/fuzz() retry transport failures and Overloaded
/// sheds with bounded exponential backoff plus deterministic jitter —
/// requests are idempotent (pure compiles behind a content cache), so a
/// retry can at worst recompute a cache hit. Control calls (stats, health,
/// shutdown) never retry and default to a short deadline: poking a
/// wedged daemon must fail fast, not hang the operator's terminal.
///
//===----------------------------------------------------------------------===//

#ifndef LSLP_SERVER_CLIENT_H
#define LSLP_SERVER_CLIENT_H

#include "server/Protocol.h"

#include <functional>
#include <string>
#include <vector>

namespace lslp {
namespace server {

/// Deadlines and retry policy for one DaemonClient. All timeouts are in
/// milliseconds; negative means block forever (the pre-deadline behavior).
struct ClientOptions {
  /// Deadline for connect() to complete.
  int ConnectTimeoutMs = 5000;
  /// Round-trip deadline for compile()/fuzz() — the whole request frame
  /// out plus the whole reply frame in. Negative blocks: compiles and
  /// fuzz shards can legitimately take minutes.
  int RequestTimeoutMs = -1;
  /// Round-trip deadline for stats()/health()/shutdownDaemon(). These are
  /// answered inline by a healthy daemon in microseconds, so a short
  /// deadline only ever fires against a wedged one.
  int ControlTimeoutMs = 5000;
  /// Retries after the first attempt of compile()/fuzz() on a transport
  /// error or an Overloaded shed (0 = single attempt, no retry).
  unsigned MaxRetries = 2;
  /// First backoff sleep; doubles per retry, plus jitter in [0, base).
  int BackoffBaseMs = 50;
  /// Seed for the deterministic jitter sequence.
  uint64_t RetrySeed = 0;
};

/// One connection to a daemon. Methods are synchronous and lock-step; a
/// transport or protocol failure closes the connection and surfaces as an
/// IO/Internal Error. compile() and fuzz() transparently reconnect and
/// retry per ClientOptions.
class DaemonClient {
public:
  DaemonClient() = default;
  explicit DaemonClient(ClientOptions Opts) : Opts(Opts) {}
  ~DaemonClient();

  DaemonClient(const DaemonClient &) = delete;
  DaemonClient &operator=(const DaemonClient &) = delete;

  /// Connects to the unix-domain socket at \p SocketPath (remembered for
  /// retry reconnects), honoring ConnectTimeoutMs.
  Error connect(const std::string &SocketPath);

  bool isConnected() const { return Fd >= 0; }
  void close();

  const ClientOptions &options() const { return Opts; }

  /// Round-trips one compile. An ErrorResponse from the daemon (worker
  /// crash, malformed frame) comes back as an Error with the daemon's
  /// category and message, not as a CompileResponse. Transport failures
  /// and Overloaded sheds are retried with backoff before giving up.
  Error compile(const CompileRequest &Req, CompileResponse &Out);

  /// Round-trips one fuzz shard (same retry policy as compile()).
  Error fuzz(const FuzzRequest &Req, FuzzResponse &Out);

  /// Fetches the daemon's stats JSON. No retry; ControlTimeoutMs.
  Error stats(std::string &JSONOut);

  /// Cheap readiness probe. No retry; ControlTimeoutMs.
  Error health(HealthResponse &Out);

  /// Asks the daemon to drain and exit (acknowledged before it does).
  /// No retry; ControlTimeoutMs — a stalled daemon times out cleanly
  /// instead of hanging the caller.
  Error shutdownDaemon();

private:
  /// Sends \p Payload as one frame and reads one reply frame, all within
  /// \p TimeoutMs (negative = block).
  Error roundTrip(const std::string &Payload, std::string &Reply,
                  int TimeoutMs);

  /// One request/response with reconnect-retry-backoff per Opts. \p Decode
  /// consumes the successful (non-ErrorResponse) reply.
  Error retryingCall(const std::string &Payload,
                     const std::function<Error(const std::string &)> &Decode);

  /// Folds a daemon ErrorResponse payload into an Error; null when
  /// \p Payload is not an ErrorResponse.
  Error errorFromReply(const std::string &Reply);

  ClientOptions Opts;
  std::string Path;
  uint64_t RetryDraws = 0;
  int Fd = -1;
};

/// Shards \p Opts.Count seeds into contiguous ranges, one per socket in
/// \p Sockets, runs the ranges concurrently on their daemons, and invokes
/// \p Consume on the calling thread in ascending seed order — the exact
/// delivery contract of local runFuzzSweep(), so lslpc's sweep output is
/// byte-identical either way.
///
/// Failover: a shard whose daemon stays unreachable through the client's
/// retry budget is re-sharded across the daemons that did answer, so one
/// dead daemon costs latency, not the sweep. Per-seed outcomes are
/// deterministic and delivery is re-sorted by seed, so the output is
/// byte-identical to an all-healthy run. Only when a range fails on every
/// live daemon does the sweep fail, with an Error naming each failing
/// daemon socket and its seed range (partial results are discarded: a
/// sweep either completes everywhere or fails).
Expected<int64_t> runFuzzSweepViaDaemons(
    const FuzzSweepOptions &Opts, const std::vector<std::string> &Sockets,
    const std::function<void(const SeedOutcome &)> &Consume,
    const ClientOptions &Client = ClientOptions());

} // namespace server
} // namespace lslp

#endif // LSLP_SERVER_CLIENT_H
