//===- server/Client.h - lslpd client transport -----------------*- C++ -*-===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The client half of the daemon protocol: a lock-step connection wrapper
/// (one request frame out, one response frame in) used by
/// `lslpc --connect=SOCK`, the fuzz sharder, and the bench harness's
/// daemon mode, plus runFuzzSweepViaDaemons(), which splits a seed sweep
/// across N daemons and re-delivers outcomes in ascending seed order so
/// the caller cannot tell it apart from a local runFuzzSweep().
///
//===----------------------------------------------------------------------===//

#ifndef LSLP_SERVER_CLIENT_H
#define LSLP_SERVER_CLIENT_H

#include "server/Protocol.h"

#include <functional>
#include <string>
#include <vector>

namespace lslp {
namespace server {

/// One connection to a daemon. Methods are synchronous and lock-step;
/// a transport or protocol failure closes the connection and surfaces as
/// an IO/Internal Error.
class DaemonClient {
public:
  DaemonClient() = default;
  ~DaemonClient();

  DaemonClient(const DaemonClient &) = delete;
  DaemonClient &operator=(const DaemonClient &) = delete;

  /// Connects to the unix-domain socket at \p SocketPath.
  Error connect(const std::string &SocketPath);

  bool isConnected() const { return Fd >= 0; }
  void close();

  /// Round-trips one compile. An ErrorResponse from the daemon (worker
  /// crash, malformed frame) comes back as an Error with the daemon's
  /// category and message, not as a CompileResponse.
  Error compile(const CompileRequest &Req, CompileResponse &Out);

  /// Round-trips one fuzz shard.
  Error fuzz(const FuzzRequest &Req, FuzzResponse &Out);

  /// Fetches the daemon's stats JSON.
  Error stats(std::string &JSONOut);

  /// Asks the daemon to drain and exit (acknowledged before it does).
  Error shutdownDaemon();

private:
  /// Sends \p Payload as one frame and reads one reply frame.
  Error roundTrip(const std::string &Payload, std::string &Reply);

  /// Folds a daemon ErrorResponse payload into an Error; null when
  /// \p Payload is not an ErrorResponse.
  Error errorFromReply(const std::string &Reply);

  int Fd = -1;
};

/// Shards \p Opts.Count seeds into contiguous ranges, one per socket in
/// \p Sockets, runs the ranges concurrently on their daemons, and invokes
/// \p Consume on the calling thread in ascending seed order — the exact
/// delivery contract of local runFuzzSweep(), so lslpc's sweep output is
/// byte-identical either way. Returns the number of failing seeds, or an
/// Error if any daemon was unreachable or replied malformed (partial
/// results are discarded: a sweep either completes everywhere or fails).
Expected<int64_t> runFuzzSweepViaDaemons(
    const FuzzSweepOptions &Opts, const std::vector<std::string> &Sockets,
    const std::function<void(const SeedOutcome &)> &Consume);

} // namespace server
} // namespace lslp

#endif // LSLP_SERVER_CLIENT_H
