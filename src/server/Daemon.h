//===- server/Daemon.h - lslpd compile-server daemon ------------*- C++ -*-===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The long-lived compile server behind `lslpd`. One Daemon owns a
/// unix-domain listening socket, a content-hash response cache, and a
/// worker pool; its run loop:
///
///   1. poll()s the listener plus every connected client (POLLIN always,
///      POLLOUT while a connection has reply bytes pending),
///   2. moves whatever bytes are ready through per-connection incremental
///      read/write buffers — no client can stall the loop by trickling or
///      by reading its replies slowly,
///   3. answers control frames (stats/health/shutdown/fuzz) inline, and
///   4. fans the round's CompileRequests onto the pool with
///      parallelMapOrdered, then queues responses back in batch order —
///      so concurrent clients get exactly the bytes a serial daemon (or
///      local lslpc) would have produced.
///
/// Deadlines (DESIGN.md "Serving failure model"): a connection that has
/// started a request frame must finish it — and drain its replies — with
/// steady progress inside RequestTimeoutMs, and an idle connection is
/// reaped after IdleTimeoutMs. Either way the daemon logs a structured
/// reap line and bumps a counter; every other client is unaffected. Time
/// the daemon itself spends computing a batch is credited back to every
/// connection so a busy daemon never miscounts a waiting client as idle.
///
/// Admission control: at most MaxPending compile requests are accepted
/// per batching round; requests beyond that are shed immediately with an
/// ErrorResponse of category Overloaded, which clients treat as an
/// invitation to back off and retry.
///
/// Failure model: a request that crashes its worker (contained via
/// runWithCrashRecovery) poisons only that request — the client receives a
/// structured ErrorResponse (category `internal`) and the daemon keeps
/// serving. A client that disconnects mid-request just loses its reply.
/// SIGTERM/SIGINT request a graceful drain: in-flight batches finish,
/// replies are flushed, then the socket is unlinked.
///
//===----------------------------------------------------------------------===//

#ifndef LSLP_SERVER_DAEMON_H
#define LSLP_SERVER_DAEMON_H

#include "server/ContentCache.h"
#include "server/Protocol.h"
#include "support/Error.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace lslp {

class ThreadPool;

namespace server {

struct DaemonOptions {
  /// Filesystem path of the unix-domain socket (unlinked on shutdown).
  std::string SocketPath;
  /// Worker threads for request batches (0 = one per hardware thread).
  unsigned Jobs = 0;
  /// Maximum resident entries in the content cache.
  size_t CacheCapacity = 1024;
  /// Honor CompileRequest::InjectCrash (test-only; exercises the
  /// crash-containment path).
  bool AllowCrashRequests = false;
  /// Reap a connection with no traffic in either direction for this long
  /// (0 disables idle reaping).
  int IdleTimeoutMs = 300000;
  /// Reap a connection whose in-flight request frame is not completed —
  /// or whose pending reply is not drained — within this budget; the
  /// slow-loris deadline. The budget covers the whole frame, so trickling
  /// one byte per interval cannot stretch it, and it bounds *transport*
  /// time only: the clock pauses while the daemon itself is computing.
  /// 0 disables.
  int RequestTimeoutMs = 20000;
  /// Shed compile requests beyond this many in one batching round with an
  /// Overloaded error (0 = unlimited).
  size_t MaxPending = 256;
};

class Daemon {
public:
  explicit Daemon(DaemonOptions Opts);
  ~Daemon();

  Daemon(const Daemon &) = delete;
  Daemon &operator=(const Daemon &) = delete;

  /// Creates, binds, and listens on the socket. Split from run() so tests
  /// (and the tool) can report bind failures before entering the loop.
  Error bind();

  /// Serves until requestShutdown() (or a shutdown frame) is observed.
  /// Returns the number of requests served.
  uint64_t run();

  /// Asks the run loop to drain and exit. Async-signal-safe: the SIGTERM
  /// handler calls this through a plain store.
  void requestShutdown() {
    ShutdownFlag.store(1, std::memory_order_relaxed);
  }

  /// One JSON object with daemon/cache/queue counters — the payload of the
  /// `stats` control request. Schema:
  ///   {"requests":N,"compiles":N,"fuzz-requests":N,"batches":N,
  ///    "max-batch":N,"queue-depth":N,"overloaded":N,"deadline-misses":N,
  ///    "reaped-idle":N,"worker-crashes":N,"connections":N,"jobs":N,
  ///    "cache":{...ContentCache::statsJSON...}}
  std::string statsJSON() const;

  const std::string &socketPath() const { return Opts.SocketPath; }

private:
  struct Connection {
    int Fd = -1;
    /// Incremental decoder for inbound bytes (frames may arrive shredded).
    FrameAssembler In;
    /// Encoded reply frames not yet accepted by the kernel.
    std::string Out;
    size_t OutPos = 0;
    /// Last time a byte moved in either direction, in run-loop ms.
    int64_t LastActivityMs = 0;
    /// When the current partial request frame started (-1 = no partial
    /// frame pending); the slow-loris read deadline anchors here.
    int64_t FrameStartMs = -1;
    /// When the pending reply bytes were first queued (-1 = nothing
    /// pending); the slow-reader write deadline anchors here.
    int64_t OutStartMs = -1;
    bool WantClose = false;

    bool hasPendingOut() const { return OutPos < Out.size(); }
  };

  /// Handles one decoded frame from \p Conn; compile requests are
  /// deferred into \p Batch (subject to admission control), everything
  /// else is answered inline.
  void handleFrame(Connection &Conn, std::string Payload,
                   std::vector<std::pair<size_t, CompileRequest>> &Batch,
                   size_t ConnIndex);

  /// Runs the round's compile batch on the pool and queues replies in
  /// batch order.
  void flushBatch(std::vector<std::pair<size_t, CompileRequest>> &Batch);

  /// Compiles one request under crash containment, consulting the cache.
  CompileResponse serveCompile(const CompileRequest &Req);

  /// Appends one encoded frame to \p Conn's write buffer and pushes as
  /// much of it into the kernel as fits right now.
  void queueReply(Connection &Conn, std::string_view Payload,
                  size_t ConnIndex);

  /// Drains buffered reply bytes until the kernel pushes back. Closes the
  /// connection on a hard transport error.
  void flushOut(size_t Index);

  /// Reads every byte currently available on \p Conn and dispatches any
  /// completed frames. Returns false when the connection died.
  bool serviceInput(size_t Index,
                    std::vector<std::pair<size_t, CompileRequest>> &Batch);

  /// Reaps connections past their idle or request deadline.
  void reapDeadlines(int64_t NowMs);

  void closeConnection(size_t Index);
  void closeConnection(size_t Index, const char *Reason, int64_t WaitedMs);

  DaemonOptions Opts;
  int ListenFd = -1;
  ContentCache Cache;
  std::unique_ptr<ThreadPool> Pool;
  std::vector<Connection> Connections;
  std::atomic<int> ShutdownFlag{0};

  // Served-request accounting (instance-local, see statsJSON()).
  std::atomic<uint64_t> NumRequests{0};
  std::atomic<uint64_t> NumCompiles{0};
  std::atomic<uint64_t> NumFuzzRequests{0};
  std::atomic<uint64_t> NumBatches{0};
  std::atomic<uint64_t> MaxBatch{0};
  std::atomic<uint64_t> NumWorkerCrashes{0};
  std::atomic<uint64_t> NumOverloaded{0};
  std::atomic<uint64_t> NumDeadlineMisses{0};
  std::atomic<uint64_t> NumReapedIdle{0};
  std::atomic<uint64_t> QueueDepth{0};
};

} // namespace server
} // namespace lslp

#endif // LSLP_SERVER_DAEMON_H
