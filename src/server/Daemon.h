//===- server/Daemon.h - lslpd compile-server daemon ------------*- C++ -*-===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The long-lived compile server behind `lslpd`. One Daemon owns a
/// unix-domain listening socket, a content-hash response cache, and a
/// worker pool; its run loop:
///
///   1. poll()s the listener plus every connected client,
///   2. reads at most one frame per ready connection (lock-step protocol),
///   3. answers control frames (stats/shutdown/fuzz) inline, and
///   4. fans the round's CompileRequests onto the pool with
///      parallelMapOrdered, then writes responses back in batch order —
///      so concurrent clients get exactly the bytes a serial daemon (or
///      local lslpc) would have produced.
///
/// Failure model: a request that crashes its worker (contained via
/// runWithCrashRecovery) poisons only that request — the client receives a
/// structured ErrorResponse (category `internal`) and the daemon keeps
/// serving. A client that disconnects mid-request just loses its reply.
/// SIGTERM/SIGINT request a graceful drain: in-flight batches finish,
/// replies are flushed, then the socket is unlinked.
///
//===----------------------------------------------------------------------===//

#ifndef LSLP_SERVER_DAEMON_H
#define LSLP_SERVER_DAEMON_H

#include "server/ContentCache.h"
#include "server/Protocol.h"
#include "support/Error.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace lslp {

class ThreadPool;

namespace server {

struct DaemonOptions {
  /// Filesystem path of the unix-domain socket (unlinked on shutdown).
  std::string SocketPath;
  /// Worker threads for request batches (0 = one per hardware thread).
  unsigned Jobs = 0;
  /// Maximum resident entries in the content cache.
  size_t CacheCapacity = 1024;
  /// Honor CompileRequest::InjectCrash (test-only; exercises the
  /// crash-containment path).
  bool AllowCrashRequests = false;
};

class Daemon {
public:
  explicit Daemon(DaemonOptions Opts);
  ~Daemon();

  Daemon(const Daemon &) = delete;
  Daemon &operator=(const Daemon &) = delete;

  /// Creates, binds, and listens on the socket. Split from run() so tests
  /// (and the tool) can report bind failures before entering the loop.
  Error bind();

  /// Serves until requestShutdown() (or a shutdown frame) is observed.
  /// Returns the number of requests served.
  uint64_t run();

  /// Asks the run loop to drain and exit. Async-signal-safe: the SIGTERM
  /// handler calls this through a plain store.
  void requestShutdown() {
    ShutdownFlag.store(1, std::memory_order_relaxed);
  }

  /// One JSON object with daemon/cache/queue counters — the payload of the
  /// `stats` control request. Schema:
  ///   {"requests":N,"compiles":N,"fuzz-requests":N,"batches":N,
  ///    "max-batch":N,"worker-crashes":N,"connections":N,"jobs":N,
  ///    "cache":{...ContentCache::statsJSON...}}
  std::string statsJSON() const;

  const std::string &socketPath() const { return Opts.SocketPath; }

private:
  struct Connection {
    int Fd = -1;
    bool WantClose = false;
  };

  /// Handles one decoded frame from \p Conn; compile requests are
  /// deferred into \p Batch, everything else is answered inline.
  void handleFrame(Connection &Conn, std::string Payload,
                   std::vector<std::pair<size_t, CompileRequest>> &Batch,
                   size_t ConnIndex);

  /// Runs the round's compile batch on the pool and writes replies in
  /// batch order.
  void flushBatch(std::vector<std::pair<size_t, CompileRequest>> &Batch);

  /// Compiles one request under crash containment, consulting the cache.
  CompileResponse serveCompile(const CompileRequest &Req);

  void closeConnection(size_t Index);

  DaemonOptions Opts;
  int ListenFd = -1;
  ContentCache Cache;
  std::unique_ptr<ThreadPool> Pool;
  std::vector<Connection> Connections;
  std::atomic<int> ShutdownFlag{0};

  // Served-request accounting (instance-local, see statsJSON()).
  std::atomic<uint64_t> NumRequests{0};
  std::atomic<uint64_t> NumCompiles{0};
  std::atomic<uint64_t> NumFuzzRequests{0};
  std::atomic<uint64_t> NumBatches{0};
  std::atomic<uint64_t> MaxBatch{0};
  std::atomic<uint64_t> NumWorkerCrashes{0};
};

} // namespace server
} // namespace lslp

#endif // LSLP_SERVER_DAEMON_H
