//===- server/Daemon.cpp - lslpd compile-server daemon --------------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "server/Daemon.h"

#include "diag/Statistics.h"
#include "fuzz/FuzzDriver.h"
#include "server/CompileService.h"
#include "support/CrashHandler.h"
#include "support/ThreadPool.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

using namespace lslp;
using namespace lslp::server;

LSLP_STATISTIC(NumDaemonRequests, "lslpd", "Requests served");
LSLP_STATISTIC(NumDaemonBatches, "lslpd", "Compile batches dispatched");
LSLP_STATISTIC(NumDaemonWorkerCrashes, "lslpd",
               "Worker crashes contained (request poisoned, daemon alive)");

Daemon::Daemon(DaemonOptions OptsIn)
    : Opts(std::move(OptsIn)), Cache(Opts.CacheCapacity),
      Pool(std::make_unique<ThreadPool>(ThreadPool::resolveJobs(Opts.Jobs))) {
}

Daemon::~Daemon() {
  for (Connection &C : Connections)
    if (C.Fd >= 0)
      ::close(C.Fd);
  if (ListenFd >= 0) {
    ::close(ListenFd);
    ::unlink(Opts.SocketPath.c_str());
  }
}

Error Daemon::bind() {
  // Worker crash containment needs the handlers armed; idempotent, and a
  // tool-provided --crash-dir installation wins if it came first.
  installCrashHandlers("");

  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (Opts.SocketPath.empty() ||
      Opts.SocketPath.size() >= sizeof(Addr.sun_path))
    return Error::make(ErrorCategory::IO,
                       "socket path '" + Opts.SocketPath +
                           "' is empty or longer than the unix-socket "
                           "limit (" +
                           std::to_string(sizeof(Addr.sun_path) - 1) +
                           " bytes)");
  std::memcpy(Addr.sun_path, Opts.SocketPath.c_str(),
              Opts.SocketPath.size() + 1);

  ListenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (ListenFd < 0)
    return Error::make(ErrorCategory::IO,
                       std::string("socket: ") + std::strerror(errno));
  // A stale socket file from a dead daemon would fail the bind. Probe it
  // with a connect(): a live daemon accepts (refuse to steal its path —
  // two daemons on one socket is how CI sweeps silently halve), a dead
  // one leaves the name refusing connections, which is safe to unlink.
  // A path that is not a socket at all is never removed.
  struct stat St;
  if (::lstat(Opts.SocketPath.c_str(), &St) == 0) {
    if (!S_ISSOCK(St.st_mode)) {
      Error E = Error::make(ErrorCategory::IO,
                            "path '" + Opts.SocketPath +
                                "' exists and is not a socket; refusing to "
                                "remove it");
      ::close(ListenFd);
      ListenFd = -1;
      return E;
    }
    int ProbeFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (ProbeFd >= 0) {
      bool Live = ::connect(ProbeFd, reinterpret_cast<sockaddr *>(&Addr),
                            sizeof(Addr)) == 0;
      ::close(ProbeFd);
      if (Live) {
        Error E = Error::make(ErrorCategory::IO,
                              "socket '" + Opts.SocketPath +
                                  "' already has a live daemon; refusing "
                                  "to replace it");
        ::close(ListenFd);
        ListenFd = -1;
        return E;
      }
    }
    ::unlink(Opts.SocketPath.c_str());
  }
  if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) <
      0) {
    Error E = Error::make(ErrorCategory::IO, "bind '" + Opts.SocketPath +
                                                 "': " +
                                                 std::strerror(errno));
    ::close(ListenFd);
    ListenFd = -1;
    return E;
  }
  if (::listen(ListenFd, 64) < 0) {
    Error E = Error::make(ErrorCategory::IO,
                          std::string("listen: ") + std::strerror(errno));
    ::close(ListenFd);
    ListenFd = -1;
    ::unlink(Opts.SocketPath.c_str());
    return E;
  }
  return Error::success();
}

void Daemon::closeConnection(size_t Index) {
  Connection &C = Connections[Index];
  if (C.Fd >= 0)
    ::close(C.Fd);
  C.Fd = -1;
  C.WantClose = true;
}

CompileResponse Daemon::serveCompile(const CompileRequest &Req) {
  NumCompiles.fetch_add(1, std::memory_order_relaxed);

  // Crash-injection requests bypass the cache entirely: the whole point is
  // to run (and kill) a worker, and a poisoned result must never be
  // replayable.
  CacheKey Key;
  if (!Req.InjectCrash) {
    Key = cacheKeyFor(Req);
    if (std::optional<CompileResponse> Hit = Cache.lookup(Key))
      return *Hit;
  }

  CompileResponse Resp;
  CrashInfo Info;
  bool OK = runWithCrashRecovery(
      [&] {
        if (Req.InjectCrash)
          std::abort(); // Sanitizer builds own SIGSEGV; SIGABRT is ours.
        Resp = runCompileRequest(Req);
      },
      Info);
  if (!OK) {
    NumWorkerCrashes.fetch_add(1, std::memory_order_relaxed);
    ++NumDaemonWorkerCrashes;
    Resp = CompileResponse();
    Resp.ExitCode = 2;
    Resp.ErrCategory = static_cast<uint8_t>(ErrorCategory::Internal);
    Resp.ErrorText = "lslpc: daemon worker crashed handling this request (" +
                     Info.SignalName + "); the daemon keeps serving";
    if (!Info.ReproPath.empty())
      Resp.ErrorText += "; reproducer: " + Info.ReproPath;
    Resp.ErrorText += "\n";
    return Resp; // Never cached.
  }

  // Failed compiles are not cached either: they are cheap to reproduce and
  // an error entry would pin cache capacity better spent on IR.
  if (!Req.InjectCrash && Resp.ExitCode == 0)
    Cache.insert(Key, Resp);
  return Resp;
}

void Daemon::handleFrame(Connection &Conn, std::string Payload,
                         std::vector<std::pair<size_t, CompileRequest>> &Batch,
                         size_t ConnIndex) {
  NumRequests.fetch_add(1, std::memory_order_relaxed);
  ++NumDaemonRequests;

  auto Reply = [&](std::string Encoded) {
    if (Error E = writeFrame(Conn.Fd, Encoded)) {
      (void)E; // The peer is gone; its reply is undeliverable.
      closeConnection(ConnIndex);
    }
  };
  auto ReplyError = [&](ErrorCategory Cat, std::string Msg) {
    ErrorResponse E;
    E.Category = static_cast<uint8_t>(Cat);
    E.Message = std::move(Msg);
    Reply(encodeErrorResponse(E));
  };

  std::string DecodeErr;
  switch (peekKind(Payload)) {
  case MessageKind::CompileRequest: {
    CompileRequest Req;
    if (!decodeCompileRequest(Payload, Req, DecodeErr))
      return ReplyError(ErrorCategory::Internal,
                        "malformed compile request: " + DecodeErr);
    if (Req.InjectCrash && !Opts.AllowCrashRequests)
      return ReplyError(ErrorCategory::Internal,
                        "crash injection rejected (daemon started without "
                        "--allow-crash-requests)");
    Batch.emplace_back(ConnIndex, std::move(Req));
    return;
  }
  case MessageKind::FuzzRequest: {
    // Handled inline on the dispatcher thread: runFuzzSweep owns its own
    // pool, and nesting it inside this daemon's pool could deadlock.
    FuzzRequest Req;
    if (!decodeFuzzRequest(Payload, Req, DecodeErr))
      return ReplyError(ErrorCategory::Internal,
                        "malformed fuzz request: " + DecodeErr);
    NumFuzzRequests.fetch_add(1, std::memory_order_relaxed);
    FuzzSweepOptions Sweep;
    Sweep.Count = Req.Count;
    Sweep.FirstSeed = Req.FirstSeed;
    Sweep.Jobs = ThreadPool::resolveJobs(Req.Jobs);
    Sweep.Engine = static_cast<EngineKind>(Req.Engine);
    Sweep.ParityAll = Req.ParityAll;
    Sweep.FaultProbability = Req.FaultProbability;
    Sweep.FaultSeed = Req.FaultSeed;
    Sweep.Strategy =
        static_cast<VectorizerConfig::PackingStrategyKind>(Req.Strategy);
    Sweep.IfConvert = Req.IfConvert;
    Sweep.Unroll = Req.Unroll;
    Sweep.UnrollFactor = Req.UnrollFactor;
    FuzzResponse FuzzResp;
    runFuzzSweep(Sweep, [&](const SeedOutcome &Out) {
      FuzzResp.Outcomes.push_back(Out);
    });
    return Reply(encodeFuzzResponse(FuzzResp));
  }
  case MessageKind::StatsRequest: {
    StatsResponse Resp;
    Resp.JSON = statsJSON();
    return Reply(encodeStatsResponse(Resp));
  }
  case MessageKind::ShutdownRequest:
    Reply(encodeShutdownResponse());
    requestShutdown();
    return;
  default:
    return ReplyError(ErrorCategory::Internal,
                      "unexpected message kind " +
                          std::to_string(static_cast<unsigned>(
                              peekKind(Payload))));
  }
}

void Daemon::flushBatch(
    std::vector<std::pair<size_t, CompileRequest>> &Batch) {
  if (Batch.empty())
    return;
  NumBatches.fetch_add(1, std::memory_order_relaxed);
  ++NumDaemonBatches;
  uint64_t Cur = MaxBatch.load(std::memory_order_relaxed);
  while (Batch.size() > Cur &&
         !MaxBatch.compare_exchange_weak(Cur, Batch.size(),
                                         std::memory_order_relaxed)) {
  }

  // Fan out, then reply in batch order: combined with the ordered collect
  // this keeps the daemon's observable behavior identical for any job
  // count (the per-connection lock-step protocol does the rest).
  std::vector<CompileResponse> Responses = parallelMapOrdered(
      *Pool, Batch.size(),
      [&](size_t I) { return serveCompile(Batch[I].second); });
  for (size_t I = 0; I != Batch.size(); ++I) {
    Connection &Conn = Connections[Batch[I].first];
    if (Conn.Fd < 0)
      continue; // Client vanished while its request was in flight.
    if (Error E = writeFrame(Conn.Fd, encodeCompileResponse(Responses[I]))) {
      (void)E;
      closeConnection(Batch[I].first);
    }
  }
  Batch.clear();
}

uint64_t Daemon::run() {
  while (ShutdownFlag.load(std::memory_order_relaxed) == 0) {
    std::vector<pollfd> Fds;
    Fds.push_back({ListenFd, POLLIN, 0});
    for (const Connection &C : Connections)
      Fds.push_back({C.Fd, POLLIN, 0});

    // Finite timeout so requestShutdown() from a signal handler is
    // observed even on an idle socket.
    int Ready = ::poll(Fds.data(), Fds.size(), /*timeout-ms=*/200);
    if (Ready < 0) {
      if (errno == EINTR)
        continue; // Very likely the SIGTERM that set ShutdownFlag.
      break;
    }

    if (Fds[0].revents & POLLIN) {
      int Fd = ::accept(ListenFd, nullptr, nullptr);
      if (Fd >= 0)
        Connections.push_back({Fd, false});
    }

    // One frame per ready connection per round; compile requests from the
    // whole round form one batch.
    std::vector<std::pair<size_t, CompileRequest>> Batch;
    for (size_t I = 0; I + 1 < Fds.size(); ++I) {
      if (!(Fds[I + 1].revents & (POLLIN | POLLHUP | POLLERR)))
        continue;
      Connection &Conn = Connections[I];
      if (Conn.Fd < 0)
        continue;
      std::string Payload;
      bool CleanEOF = false;
      if (Error E = readFrame(Conn.Fd, Payload, &CleanEOF)) {
        // Clean EOF = client done; anything else = mid-request disconnect
        // or a corrupt frame. Either way only this connection dies.
        (void)E;
        closeConnection(I);
        continue;
      }
      handleFrame(Conn, std::move(Payload), Batch, I);
      if (ShutdownFlag.load(std::memory_order_relaxed) != 0)
        break; // Shutdown frame: drain the batch below, then exit.
    }
    flushBatch(Batch);

    // Compact closed slots (stable indices were only needed intra-round).
    for (size_t I = Connections.size(); I-- > 0;)
      if (Connections[I].Fd < 0)
        Connections.erase(Connections.begin() + I);
  }

  // Graceful drain: every accepted request has been answered (batches
  // flush within their round); close the door and remove the name.
  for (size_t I = 0; I != Connections.size(); ++I)
    closeConnection(I);
  Connections.clear();
  if (ListenFd >= 0) {
    ::close(ListenFd);
    ListenFd = -1;
    ::unlink(Opts.SocketPath.c_str());
  }
  return NumRequests.load(std::memory_order_relaxed);
}

std::string Daemon::statsJSON() const {
  std::string S = "{";
  S += "\"requests\":" +
       std::to_string(NumRequests.load(std::memory_order_relaxed));
  S += ",\"compiles\":" +
       std::to_string(NumCompiles.load(std::memory_order_relaxed));
  S += ",\"fuzz-requests\":" +
       std::to_string(NumFuzzRequests.load(std::memory_order_relaxed));
  S += ",\"batches\":" +
       std::to_string(NumBatches.load(std::memory_order_relaxed));
  S += ",\"max-batch\":" +
       std::to_string(MaxBatch.load(std::memory_order_relaxed));
  S += ",\"worker-crashes\":" +
       std::to_string(NumWorkerCrashes.load(std::memory_order_relaxed));
  S += ",\"connections\":" + std::to_string(Connections.size());
  S += ",\"jobs\":" + std::to_string(Pool->getNumThreads());
  S += ",\"cache\":" + Cache.statsJSON();
  S += "}";
  return S;
}
