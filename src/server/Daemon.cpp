//===- server/Daemon.cpp - lslpd compile-server daemon --------------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "server/Daemon.h"

#include "diag/Statistics.h"
#include "fuzz/FuzzDriver.h"
#include "server/CompileService.h"
#include "support/CrashHandler.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

using namespace lslp;
using namespace lslp::server;

LSLP_STATISTIC(NumDaemonRequests, "lslpd", "Requests served");
LSLP_STATISTIC(NumDaemonBatches, "lslpd", "Compile batches dispatched");
LSLP_STATISTIC(NumDaemonWorkerCrashes, "lslpd",
               "Worker crashes contained (request poisoned, daemon alive)");
LSLP_STATISTIC(NumDaemonShedRequests, "lslpd",
               "Compile requests shed by admission control");
LSLP_STATISTIC(NumDaemonReaps, "lslpd",
               "Connections reaped at an idle or request deadline");

namespace {

/// Milliseconds on a monotonic clock, origin at first use. Every
/// per-connection clock in the run loop is expressed on this axis.
int64_t nowMs() {
  using namespace std::chrono;
  static const steady_clock::time_point Start = steady_clock::now();
  return duration_cast<milliseconds>(steady_clock::now() - Start).count();
}

bool setNonBlocking(int Fd) {
  int Flags = ::fcntl(Fd, F_GETFL, 0);
  return Flags >= 0 && ::fcntl(Fd, F_SETFL, Flags | O_NONBLOCK) == 0;
}

} // namespace

Daemon::Daemon(DaemonOptions OptsIn)
    : Opts(std::move(OptsIn)), Cache(Opts.CacheCapacity),
      Pool(std::make_unique<ThreadPool>(ThreadPool::resolveJobs(Opts.Jobs))) {
}

Daemon::~Daemon() {
  for (Connection &C : Connections)
    if (C.Fd >= 0)
      ::close(C.Fd);
  if (ListenFd >= 0) {
    ::close(ListenFd);
    ::unlink(Opts.SocketPath.c_str());
  }
}

Error Daemon::bind() {
  // Worker crash containment needs the handlers armed; idempotent, and a
  // tool-provided --crash-dir installation wins if it came first.
  installCrashHandlers("");

  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (Opts.SocketPath.empty() ||
      Opts.SocketPath.size() >= sizeof(Addr.sun_path))
    return Error::make(ErrorCategory::IO,
                       "socket path '" + Opts.SocketPath +
                           "' is empty or longer than the unix-socket "
                           "limit (" +
                           std::to_string(sizeof(Addr.sun_path) - 1) +
                           " bytes)");
  std::memcpy(Addr.sun_path, Opts.SocketPath.c_str(),
              Opts.SocketPath.size() + 1);

  ListenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (ListenFd < 0)
    return Error::make(ErrorCategory::IO,
                       std::string("socket: ") + std::strerror(errno));
  // A stale socket file from a dead daemon would fail the bind. Probe it
  // with a connect(): a live daemon accepts (refuse to steal its path —
  // two daemons on one socket is how CI sweeps silently halve), a dead
  // one leaves the name refusing connections, which is safe to unlink.
  // A path that is not a socket at all is never removed.
  struct stat St;
  if (::lstat(Opts.SocketPath.c_str(), &St) == 0) {
    if (!S_ISSOCK(St.st_mode)) {
      Error E = Error::make(ErrorCategory::IO,
                            "path '" + Opts.SocketPath +
                                "' exists and is not a socket; refusing to "
                                "remove it");
      ::close(ListenFd);
      ListenFd = -1;
      return E;
    }
    int ProbeFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (ProbeFd >= 0) {
      bool Live = ::connect(ProbeFd, reinterpret_cast<sockaddr *>(&Addr),
                            sizeof(Addr)) == 0;
      ::close(ProbeFd);
      if (Live) {
        Error E = Error::make(ErrorCategory::IO,
                              "socket '" + Opts.SocketPath +
                                  "' already has a live daemon; refusing "
                                  "to replace it");
        ::close(ListenFd);
        ListenFd = -1;
        return E;
      }
    }
    ::unlink(Opts.SocketPath.c_str());
  }
  if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) <
      0) {
    Error E = Error::make(ErrorCategory::IO, "bind '" + Opts.SocketPath +
                                                 "': " +
                                                 std::strerror(errno));
    ::close(ListenFd);
    ListenFd = -1;
    return E;
  }
  if (::listen(ListenFd, 64) < 0) {
    Error E = Error::make(ErrorCategory::IO,
                          std::string("listen: ") + std::strerror(errno));
    ::close(ListenFd);
    ListenFd = -1;
    ::unlink(Opts.SocketPath.c_str());
    return E;
  }
  if (!setNonBlocking(ListenFd)) {
    Error E = Error::make(ErrorCategory::IO,
                          std::string("fcntl(O_NONBLOCK): ") +
                              std::strerror(errno));
    ::close(ListenFd);
    ListenFd = -1;
    ::unlink(Opts.SocketPath.c_str());
    return E;
  }
  return Error::success();
}

void Daemon::closeConnection(size_t Index) {
  Connection &C = Connections[Index];
  if (C.Fd >= 0)
    ::close(C.Fd);
  C.Fd = -1;
  C.WantClose = true;
}

void Daemon::closeConnection(size_t Index, const char *Reason,
                             int64_t WaitedMs) {
  // The structured reap remark CI and the triage guide grep for; one line,
  // key=value, stderr (the daemon's log stream).
  std::fprintf(stderr, "lslpd: reaped connection reason=%s waited-ms=%lld\n",
               Reason, static_cast<long long>(WaitedMs));
  ++NumDaemonReaps;
  closeConnection(Index);
}

CompileResponse Daemon::serveCompile(const CompileRequest &Req) {
  NumCompiles.fetch_add(1, std::memory_order_relaxed);

  // Crash-injection requests bypass the cache entirely: the whole point is
  // to run (and kill) a worker, and a poisoned result must never be
  // replayable.
  CacheKey Key;
  if (!Req.InjectCrash) {
    Key = cacheKeyFor(Req);
    if (std::optional<CompileResponse> Hit = Cache.lookup(Key))
      return *Hit;
  }

  CompileResponse Resp;
  CrashInfo Info;
  bool OK = runWithCrashRecovery(
      [&] {
        if (Req.InjectCrash)
          std::abort(); // Sanitizer builds own SIGSEGV; SIGABRT is ours.
        Resp = runCompileRequest(Req);
      },
      Info);
  if (!OK) {
    NumWorkerCrashes.fetch_add(1, std::memory_order_relaxed);
    ++NumDaemonWorkerCrashes;
    Resp = CompileResponse();
    Resp.ExitCode = 2;
    Resp.ErrCategory = static_cast<uint8_t>(ErrorCategory::Internal);
    Resp.ErrorText = "lslpc: daemon worker crashed handling this request (" +
                     Info.SignalName + "); the daemon keeps serving";
    if (!Info.ReproPath.empty())
      Resp.ErrorText += "; reproducer: " + Info.ReproPath;
    Resp.ErrorText += "\n";
    return Resp; // Never cached.
  }

  // Failed compiles are not cached either: they are cheap to reproduce and
  // an error entry would pin cache capacity better spent on IR.
  if (!Req.InjectCrash && Resp.ExitCode == 0)
    Cache.insert(Key, Resp);
  return Resp;
}

void Daemon::queueReply(Connection &Conn, std::string_view Payload,
                        size_t ConnIndex) {
  if (Conn.Fd < 0)
    return;
  char Hdr[4];
  uint32_t Len = static_cast<uint32_t>(Payload.size());
  Hdr[0] = static_cast<char>(Len & 0xff);
  Hdr[1] = static_cast<char>((Len >> 8) & 0xff);
  Hdr[2] = static_cast<char>((Len >> 16) & 0xff);
  Hdr[3] = static_cast<char>((Len >> 24) & 0xff);
  Conn.Out.append(Hdr, sizeof(Hdr));
  Conn.Out.append(Payload.data(), Payload.size());
  if (Conn.OutStartMs < 0)
    Conn.OutStartMs = nowMs();
  // Opportunistic flush: most replies fit the socket buffer whole, so the
  // common case never waits for the next POLLOUT round.
  flushOut(ConnIndex);
}

void Daemon::flushOut(size_t Index) {
  Connection &Conn = Connections[Index];
  if (Conn.Fd < 0)
    return;
  while (Conn.hasPendingOut()) {
    ssize_t N = frameTransport().sendSome(
        Conn.Fd, Conn.Out.data() + Conn.OutPos, Conn.Out.size() - Conn.OutPos,
        MSG_DONTWAIT | MSG_NOSIGNAL);
    if (N > 0) {
      Conn.OutPos += static_cast<size_t>(N);
      Conn.LastActivityMs = nowMs();
      continue;
    }
    if (N < 0 && errno == EINTR)
      continue;
    if (N < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
      return; // Kernel pushback; poll() will raise POLLOUT when it drains.
    closeConnection(Index); // Peer gone; its reply is undeliverable.
    return;
  }
  Conn.Out.clear();
  Conn.OutPos = 0;
  Conn.OutStartMs = -1;
  if (Conn.WantClose)
    closeConnection(Index);
}

void Daemon::handleFrame(Connection &Conn, std::string Payload,
                         std::vector<std::pair<size_t, CompileRequest>> &Batch,
                         size_t ConnIndex) {
  NumRequests.fetch_add(1, std::memory_order_relaxed);
  ++NumDaemonRequests;

  auto Reply = [&](std::string Encoded) {
    queueReply(Conn, Encoded, ConnIndex);
  };
  auto ReplyError = [&](ErrorCategory Cat, std::string Msg) {
    ErrorResponse E;
    E.Category = static_cast<uint8_t>(Cat);
    E.Message = std::move(Msg);
    Reply(encodeErrorResponse(E));
  };

  std::string DecodeErr;
  switch (peekKind(Payload)) {
  case MessageKind::CompileRequest: {
    CompileRequest Req;
    if (!decodeCompileRequest(Payload, Req, DecodeErr))
      return ReplyError(ErrorCategory::Internal,
                        "malformed compile request: " + DecodeErr);
    if (Req.InjectCrash && !Opts.AllowCrashRequests)
      return ReplyError(ErrorCategory::Internal,
                        "crash injection rejected (daemon started without "
                        "--allow-crash-requests)");
    // Admission control: shed everything past the round's budget *before*
    // it costs a worker, with a category the client knows to retry.
    if (Opts.MaxPending > 0 && Batch.size() >= Opts.MaxPending) {
      NumOverloaded.fetch_add(1, std::memory_order_relaxed);
      ++NumDaemonShedRequests;
      return ReplyError(ErrorCategory::Overloaded,
                        "daemon overloaded: " +
                            std::to_string(Batch.size()) +
                            " request(s) already pending (max " +
                            std::to_string(Opts.MaxPending) +
                            "); back off and retry");
    }
    Batch.emplace_back(ConnIndex, std::move(Req));
    QueueDepth.store(Batch.size(), std::memory_order_relaxed);
    return;
  }
  case MessageKind::FuzzRequest: {
    // Handled inline on the dispatcher thread: runFuzzSweep owns its own
    // pool, and nesting it inside this daemon's pool could deadlock. The
    // stall this causes for other connections is credited back to their
    // deadline clocks by the run loop.
    FuzzRequest Req;
    if (!decodeFuzzRequest(Payload, Req, DecodeErr))
      return ReplyError(ErrorCategory::Internal,
                        "malformed fuzz request: " + DecodeErr);
    NumFuzzRequests.fetch_add(1, std::memory_order_relaxed);
    FuzzSweepOptions Sweep;
    Sweep.Count = Req.Count;
    Sweep.FirstSeed = Req.FirstSeed;
    Sweep.Jobs = ThreadPool::resolveJobs(Req.Jobs);
    Sweep.Engine = static_cast<EngineKind>(Req.Engine);
    Sweep.ParityAll = Req.ParityAll;
    Sweep.FaultProbability = Req.FaultProbability;
    Sweep.FaultSeed = Req.FaultSeed;
    Sweep.Strategy =
        static_cast<VectorizerConfig::PackingStrategyKind>(Req.Strategy);
    Sweep.IfConvert = Req.IfConvert;
    Sweep.Unroll = Req.Unroll;
    Sweep.UnrollFactor = Req.UnrollFactor;
    FuzzResponse FuzzResp;
    runFuzzSweep(Sweep, [&](const SeedOutcome &Out) {
      FuzzResp.Outcomes.push_back(Out);
    });
    return Reply(encodeFuzzResponse(FuzzResp));
  }
  case MessageKind::StatsRequest: {
    StatsResponse Resp;
    Resp.JSON = statsJSON();
    return Reply(encodeStatsResponse(Resp));
  }
  case MessageKind::HealthRequest: {
    // Answered inline, independent of the worker pool: load balancers can
    // poll readiness even while every worker is busy.
    HealthResponse H;
    H.Ready = true;
    H.QueueDepth = static_cast<uint32_t>(Batch.size());
    H.DeadlineMisses = NumDeadlineMisses.load(std::memory_order_relaxed);
    return Reply(encodeHealthResponse(H));
  }
  case MessageKind::ShutdownRequest:
    Reply(encodeShutdownResponse());
    requestShutdown();
    return;
  default:
    return ReplyError(ErrorCategory::Internal,
                      "unexpected message kind " +
                          std::to_string(static_cast<unsigned>(
                              peekKind(Payload))));
  }
}

bool Daemon::serviceInput(
    size_t Index, std::vector<std::pair<size_t, CompileRequest>> &Batch) {
  Connection &Conn = Connections[Index];
  if (Conn.Fd < 0)
    return false;
  // Per-round read budget: a firehose client cannot starve its neighbors —
  // level-triggered poll() re-reports the fd next round.
  constexpr size_t MaxReadPerRound = 1u << 20;
  char Buf[64 * 1024];
  size_t ReadThisRound = 0;
  while (ReadThisRound < MaxReadPerRound) {
    ssize_t N =
        frameTransport().recvSome(Conn.Fd, Buf, sizeof(Buf), MSG_DONTWAIT);
    if (N == 0) {
      // EOF. Mid-frame it is a truncated request worth a remark; at a
      // frame boundary the client is simply done.
      if (Conn.In.midFrame())
        closeConnection(Index, "eof-mid-frame",
                        Conn.FrameStartMs >= 0 ? nowMs() - Conn.FrameStartMs
                                               : 0);
      else
        closeConnection(Index);
      return false;
    }
    if (N < 0) {
      if (errno == EINTR)
        continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK)
        break; // Drained everything currently available.
      closeConnection(Index);
      return false;
    }
    int64_t Now = nowMs();
    Conn.LastActivityMs = Now;
    Conn.In.feed(Buf, static_cast<size_t>(N));
    ReadThisRound += static_cast<size_t>(N);

    std::string Payload;
    while (Conn.In.next(Payload)) {
      handleFrame(Conn, std::move(Payload), Batch, Index);
      if (Conn.Fd < 0)
        return false;
      if (ShutdownFlag.load(std::memory_order_relaxed) != 0)
        return true; // Shutdown frame: the caller drains the batch.
    }
    if (Conn.In.corrupt()) {
      closeConnection(Index, "corrupt-frame", 0);
      return false;
    }
    // The slow-loris clock anchors at the first byte of a partial frame
    // and clears once the buffer holds no unfinished frame.
    if (Conn.In.midFrame()) {
      if (Conn.FrameStartMs < 0)
        Conn.FrameStartMs = Now;
    } else {
      Conn.FrameStartMs = -1;
    }
  }
  return true;
}

void Daemon::reapDeadlines(int64_t NowMs) {
  for (size_t I = 0; I != Connections.size(); ++I) {
    Connection &C = Connections[I];
    if (C.Fd < 0)
      continue;
    if (Opts.RequestTimeoutMs > 0) {
      if (C.FrameStartMs >= 0 && NowMs - C.FrameStartMs > Opts.RequestTimeoutMs) {
        NumDeadlineMisses.fetch_add(1, std::memory_order_relaxed);
        closeConnection(I, "request-frame-deadline", NowMs - C.FrameStartMs);
        continue;
      }
      if (C.OutStartMs >= 0 && NowMs - C.OutStartMs > Opts.RequestTimeoutMs) {
        NumDeadlineMisses.fetch_add(1, std::memory_order_relaxed);
        closeConnection(I, "reply-drain-deadline", NowMs - C.OutStartMs);
        continue;
      }
    }
    if (Opts.IdleTimeoutMs > 0 &&
        NowMs - C.LastActivityMs > Opts.IdleTimeoutMs) {
      NumReapedIdle.fetch_add(1, std::memory_order_relaxed);
      closeConnection(I, "idle", NowMs - C.LastActivityMs);
    }
  }
}

void Daemon::flushBatch(
    std::vector<std::pair<size_t, CompileRequest>> &Batch) {
  if (Batch.empty())
    return;
  NumBatches.fetch_add(1, std::memory_order_relaxed);
  ++NumDaemonBatches;
  uint64_t Cur = MaxBatch.load(std::memory_order_relaxed);
  while (Batch.size() > Cur &&
         !MaxBatch.compare_exchange_weak(Cur, Batch.size(),
                                         std::memory_order_relaxed)) {
  }

  // Fan out, then reply in batch order: combined with the ordered collect
  // this keeps the daemon's observable behavior identical for any job
  // count (the per-connection lock-step protocol does the rest).
  std::vector<CompileResponse> Responses = parallelMapOrdered(
      *Pool, Batch.size(),
      [&](size_t I) { return serveCompile(Batch[I].second); });
  for (size_t I = 0; I != Batch.size(); ++I) {
    Connection &Conn = Connections[Batch[I].first];
    if (Conn.Fd < 0)
      continue; // Client vanished while its request was in flight.
    queueReply(Conn, encodeCompileResponse(Responses[I]), Batch[I].first);
  }
  Batch.clear();
  QueueDepth.store(0, std::memory_order_relaxed);
}

uint64_t Daemon::run() {
  while (ShutdownFlag.load(std::memory_order_relaxed) == 0) {
    std::vector<pollfd> Fds;
    Fds.push_back({ListenFd, POLLIN, 0});
    for (const Connection &C : Connections)
      Fds.push_back({C.Fd,
                     static_cast<short>(POLLIN |
                                        (C.hasPendingOut() ? POLLOUT : 0)),
                     0});

    // Finite timeout so requestShutdown() from a signal handler is
    // observed even on an idle socket; tightened when deadlines are short
    // so reaping stays prompt in tests.
    int PollTimeout = 200;
    if (Opts.RequestTimeoutMs > 0)
      PollTimeout = std::min(PollTimeout,
                             std::max(10, Opts.RequestTimeoutMs / 4));
    if (Opts.IdleTimeoutMs > 0)
      PollTimeout =
          std::min(PollTimeout, std::max(10, Opts.IdleTimeoutMs / 4));
    int Ready = ::poll(Fds.data(), Fds.size(), PollTimeout);
    if (Ready < 0) {
      if (errno == EINTR)
        continue; // Very likely the SIGTERM that set ShutdownFlag.
      break;
    }

    // Everything below counts as daemon work, not peer delay: measure it
    // and credit it back to every connection's clocks afterwards.
    int64_t WorkStart = nowMs();

    if (Fds[0].revents & POLLIN) {
      // Drain the whole accept backlog; the listener is non-blocking.
      for (;;) {
        int Fd = ::accept(ListenFd, nullptr, nullptr);
        if (Fd < 0)
          break;
        if (!setNonBlocking(Fd)) {
          ::close(Fd);
          continue;
        }
        Connection C;
        C.Fd = Fd;
        C.LastActivityMs = WorkStart;
        Connections.push_back(std::move(C));
      }
    }

    // Move whatever bytes are ready; compile requests from the whole round
    // form one batch. New connections accepted above have no pollfd yet —
    // they are serviced next round.
    std::vector<std::pair<size_t, CompileRequest>> Batch;
    for (size_t I = 0; I + 1 < Fds.size(); ++I) {
      if (Connections[I].Fd < 0)
        continue;
      if (Fds[I + 1].revents & POLLOUT)
        flushOut(I);
      if (Connections[I].Fd < 0)
        continue;
      if (Fds[I + 1].revents & (POLLIN | POLLHUP | POLLERR))
        serviceInput(I, Batch);
      if (ShutdownFlag.load(std::memory_order_relaxed) != 0)
        break; // Shutdown frame: drain the batch below, then exit.
    }
    flushBatch(Batch);

    // Stall compensation: batch/fuzz compute blocked this loop, but the
    // waiting clients were not misbehaving. Shift their clocks by the
    // stall so deadlines only ever measure time the peer kept us waiting.
    int64_t WorkEnd = nowMs();
    int64_t Stall = WorkEnd - WorkStart;
    if (Stall > 0) {
      for (Connection &C : Connections) {
        if (C.Fd < 0)
          continue;
        C.LastActivityMs += Stall;
        if (C.FrameStartMs >= 0)
          C.FrameStartMs += Stall;
        if (C.OutStartMs >= 0)
          C.OutStartMs += Stall;
      }
    }
    reapDeadlines(WorkEnd);

    // Compact closed slots (stable indices were only needed intra-round).
    for (size_t I = Connections.size(); I-- > 0;)
      if (Connections[I].Fd < 0)
        Connections.erase(Connections.begin() + I);
  }

  // Graceful drain: every accepted request has been answered (batches
  // flush within their round); give buffered replies a bounded window to
  // reach their clients, then close the door and remove the name.
  constexpr int64_t DrainBudgetMs = 2000;
  int64_t DrainStart = nowMs();
  for (;;) {
    std::vector<pollfd> Fds;
    std::vector<size_t> Owner;
    for (size_t I = 0; I != Connections.size(); ++I)
      if (Connections[I].Fd >= 0 && Connections[I].hasPendingOut()) {
        Fds.push_back({Connections[I].Fd, POLLOUT, 0});
        Owner.push_back(I);
      }
    if (Fds.empty())
      break;
    int64_t Left = DrainBudgetMs - (nowMs() - DrainStart);
    if (Left <= 0)
      break;
    int Ready = ::poll(Fds.data(), Fds.size(),
                       static_cast<int>(std::min<int64_t>(Left, 100)));
    if (Ready < 0 && errno != EINTR)
      break;
    for (size_t J = 0; J != Fds.size(); ++J)
      if (Fds[J].revents & (POLLOUT | POLLHUP | POLLERR))
        flushOut(Owner[J]);
  }
  for (size_t I = 0; I != Connections.size(); ++I)
    closeConnection(I);
  Connections.clear();
  if (ListenFd >= 0) {
    ::close(ListenFd);
    ListenFd = -1;
    ::unlink(Opts.SocketPath.c_str());
  }
  return NumRequests.load(std::memory_order_relaxed);
}

std::string Daemon::statsJSON() const {
  std::string S = "{";
  S += "\"requests\":" +
       std::to_string(NumRequests.load(std::memory_order_relaxed));
  S += ",\"compiles\":" +
       std::to_string(NumCompiles.load(std::memory_order_relaxed));
  S += ",\"fuzz-requests\":" +
       std::to_string(NumFuzzRequests.load(std::memory_order_relaxed));
  S += ",\"batches\":" +
       std::to_string(NumBatches.load(std::memory_order_relaxed));
  S += ",\"max-batch\":" +
       std::to_string(MaxBatch.load(std::memory_order_relaxed));
  S += ",\"queue-depth\":" +
       std::to_string(QueueDepth.load(std::memory_order_relaxed));
  S += ",\"overloaded\":" +
       std::to_string(NumOverloaded.load(std::memory_order_relaxed));
  S += ",\"deadline-misses\":" +
       std::to_string(NumDeadlineMisses.load(std::memory_order_relaxed));
  S += ",\"reaped-idle\":" +
       std::to_string(NumReapedIdle.load(std::memory_order_relaxed));
  S += ",\"worker-crashes\":" +
       std::to_string(NumWorkerCrashes.load(std::memory_order_relaxed));
  S += ",\"connections\":" + std::to_string(Connections.size());
  S += ",\"jobs\":" + std::to_string(Pool->getNumThreads());
  S += ",\"cache\":" + Cache.statsJSON();
  S += "}";
  return S;
}
