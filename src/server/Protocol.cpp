//===- server/Protocol.cpp - lslpd wire protocol ------------------------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "server/Protocol.h"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace lslp;
using namespace lslp::server;

//===----------------------------------------------------------------------===//
// Field-level encoding
//===----------------------------------------------------------------------===//

namespace {

class WireWriter {
public:
  explicit WireWriter(MessageKind Kind) { putU8(static_cast<uint8_t>(Kind)); }

  void putU8(uint8_t V) { Buf.push_back(static_cast<char>(V)); }
  void putBool(bool V) { putU8(V ? 1 : 0); }
  void putU32(uint32_t V) {
    for (int I = 0; I < 4; ++I)
      Buf.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
  }
  void putU64(uint64_t V) {
    for (int I = 0; I < 8; ++I)
      Buf.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
  }
  void putI64(int64_t V) { putU64(static_cast<uint64_t>(V)); }
  void putI32(int32_t V) { putU32(static_cast<uint32_t>(V)); }
  void putDouble(double V) {
    uint64_t Bits;
    static_assert(sizeof(Bits) == sizeof(V));
    std::memcpy(&Bits, &V, sizeof(Bits));
    putU64(Bits);
  }
  void putStr(std::string_view S) {
    putU32(static_cast<uint32_t>(S.size()));
    Buf.append(S.data(), S.size());
  }

  std::string take() { return std::move(Buf); }

private:
  std::string Buf;
};

class WireReader {
public:
  WireReader(std::string_view Payload, std::string &Err)
      : Text(Payload), Err(Err) {}

  bool expectKind(MessageKind Kind) {
    uint8_t Tag = 0;
    if (!getU8(Tag))
      return false;
    if (Tag != static_cast<uint8_t>(Kind))
      return fail("unexpected message kind");
    return true;
  }

  bool getU8(uint8_t &V) {
    if (Pos + 1 > Text.size())
      return fail("truncated payload");
    V = static_cast<uint8_t>(Text[Pos++]);
    return true;
  }
  bool getBool(bool &V) {
    uint8_t B = 0;
    if (!getU8(B))
      return false;
    if (B > 1)
      return fail("bad boolean");
    V = B != 0;
    return true;
  }
  bool getU32(uint32_t &V) {
    if (Pos + 4 > Text.size())
      return fail("truncated payload");
    V = 0;
    for (int I = 0; I < 4; ++I)
      V |= static_cast<uint32_t>(static_cast<uint8_t>(Text[Pos++])) << (8 * I);
    return true;
  }
  bool getU64(uint64_t &V) {
    if (Pos + 8 > Text.size())
      return fail("truncated payload");
    V = 0;
    for (int I = 0; I < 8; ++I)
      V |= static_cast<uint64_t>(static_cast<uint8_t>(Text[Pos++])) << (8 * I);
    return true;
  }
  bool getI64(int64_t &V) {
    uint64_t U = 0;
    if (!getU64(U))
      return false;
    V = static_cast<int64_t>(U);
    return true;
  }
  bool getI32(int32_t &V) {
    uint32_t U = 0;
    if (!getU32(U))
      return false;
    V = static_cast<int32_t>(U);
    return true;
  }
  bool getDouble(double &V) {
    uint64_t Bits = 0;
    if (!getU64(Bits))
      return false;
    std::memcpy(&V, &Bits, sizeof(V));
    return true;
  }
  bool getStr(std::string &S) {
    uint32_t Len = 0;
    if (!getU32(Len))
      return false;
    if (Pos + Len > Text.size())
      return fail("truncated string");
    S.assign(Text.data() + Pos, Len);
    Pos += Len;
    return true;
  }

  bool finish() {
    if (Pos != Text.size())
      return fail("trailing bytes after message");
    return true;
  }

private:
  bool fail(const char *Msg) {
    if (Err.empty())
      Err = Msg;
    return false;
  }

  std::string_view Text;
  size_t Pos = 0;
  std::string &Err;
};

} // namespace

//===----------------------------------------------------------------------===//
// Messages
//===----------------------------------------------------------------------===//

MessageKind server::peekKind(std::string_view Payload) {
  if (Payload.empty())
    return MessageKind::Invalid;
  uint8_t Tag = static_cast<uint8_t>(Payload[0]);
  if (Tag < 1 || Tag > static_cast<uint8_t>(MessageKind::HealthResponse))
    return MessageKind::Invalid;
  return static_cast<MessageKind>(Tag);
}

std::string server::encodeCompileRequest(const CompileRequest &Msg) {
  WireWriter W(MessageKind::CompileRequest);
  W.putStr(Msg.InputName);
  W.putStr(Msg.ModuleText);
  W.putStr(Msg.ConfigJSON);
  W.putBool(Msg.Vectorize);
  W.putBool(Msg.EarlyCSE);
  W.putBool(Msg.Report);
  W.putBool(Msg.PrintIR);
  W.putBool(Msg.VerifyEach);
  W.putBool(Msg.WantStats);
  W.putBool(Msg.StatsJSON);
  W.putU8(static_cast<uint8_t>(Msg.Remarks));
  W.putU32(Msg.Jobs);
  W.putDouble(Msg.FaultProbability);
  W.putU64(Msg.FaultSeed);
  W.putBool(Msg.InjectCrash);
  return W.take();
}

bool server::decodeCompileRequest(std::string_view Payload,
                                  CompileRequest &Out, std::string &Err) {
  WireReader R(Payload, Err);
  Out = CompileRequest();
  uint8_t Remarks = 0;
  if (!R.expectKind(MessageKind::CompileRequest) || !R.getStr(Out.InputName) ||
      !R.getStr(Out.ModuleText) || !R.getStr(Out.ConfigJSON) ||
      !R.getBool(Out.Vectorize) || !R.getBool(Out.EarlyCSE) ||
      !R.getBool(Out.Report) || !R.getBool(Out.PrintIR) ||
      !R.getBool(Out.VerifyEach) || !R.getBool(Out.WantStats) ||
      !R.getBool(Out.StatsJSON) || !R.getU8(Remarks) || !R.getU32(Out.Jobs) ||
      !R.getDouble(Out.FaultProbability) || !R.getU64(Out.FaultSeed) ||
      !R.getBool(Out.InjectCrash) || !R.finish())
    return false;
  if (Remarks > static_cast<uint8_t>(RemarkWireFormat::JSON)) {
    Err = "bad remark format";
    return false;
  }
  Out.Remarks = static_cast<RemarkWireFormat>(Remarks);
  return true;
}

std::string server::encodeCompileResponse(const CompileResponse &Msg) {
  WireWriter W(MessageKind::CompileResponse);
  W.putI32(Msg.ExitCode);
  W.putU8(Msg.ErrCategory);
  W.putBool(Msg.CacheHit);
  W.putStr(Msg.ReportText);
  W.putStr(Msg.IRText);
  W.putStr(Msg.RemarksText);
  W.putStr(Msg.StatsText);
  W.putStr(Msg.ErrorText);
  return W.take();
}

bool server::decodeCompileResponse(std::string_view Payload,
                                   CompileResponse &Out, std::string &Err) {
  WireReader R(Payload, Err);
  Out = CompileResponse();
  return R.expectKind(MessageKind::CompileResponse) &&
         R.getI32(Out.ExitCode) && R.getU8(Out.ErrCategory) &&
         R.getBool(Out.CacheHit) && R.getStr(Out.ReportText) &&
         R.getStr(Out.IRText) && R.getStr(Out.RemarksText) &&
         R.getStr(Out.StatsText) && R.getStr(Out.ErrorText) && R.finish();
}

std::string server::encodeFuzzRequest(const FuzzRequest &Msg) {
  WireWriter W(MessageKind::FuzzRequest);
  W.putI64(Msg.Count);
  W.putI64(Msg.FirstSeed);
  W.putU32(Msg.Jobs);
  W.putU8(Msg.Engine);
  W.putBool(Msg.ParityAll);
  W.putDouble(Msg.FaultProbability);
  W.putU64(Msg.FaultSeed);
  W.putU8(Msg.Strategy);
  W.putBool(Msg.IfConvert);
  W.putBool(Msg.Unroll);
  W.putU32(Msg.UnrollFactor);
  return W.take();
}

bool server::decodeFuzzRequest(std::string_view Payload, FuzzRequest &Out,
                               std::string &Err) {
  WireReader R(Payload, Err);
  Out = FuzzRequest();
  if (!R.expectKind(MessageKind::FuzzRequest) || !R.getI64(Out.Count) ||
      !R.getI64(Out.FirstSeed) || !R.getU32(Out.Jobs) ||
      !R.getU8(Out.Engine) || !R.getBool(Out.ParityAll) ||
      !R.getDouble(Out.FaultProbability) || !R.getU64(Out.FaultSeed) ||
      !R.getU8(Out.Strategy) || !R.getBool(Out.IfConvert) ||
      !R.getBool(Out.Unroll) || !R.getU32(Out.UnrollFactor) || !R.finish())
    return false;
  if (Out.Count < 0) {
    Err = "negative seed count";
    return false;
  }
  EngineKind ParsedEngine;
  if (!engineKindFromTag(Out.Engine, ParsedEngine) ||
      Out.Strategy >
          static_cast<uint8_t>(VectorizerConfig::PackingStrategyKind::Global)) {
    Err = "bad engine/strategy tag";
    return false;
  }
  return true;
}

std::string server::encodeFuzzResponse(const FuzzResponse &Msg) {
  WireWriter W(MessageKind::FuzzResponse);
  W.putU32(static_cast<uint32_t>(Msg.Outcomes.size()));
  for (const SeedOutcome &O : Msg.Outcomes) {
    W.putU64(O.Seed);
    uint8_t Flags = (O.Passed ? 1 : 0) | (O.VerifyFailed ? 2 : 0) |
                    (O.Crashed ? 4 : 0);
    W.putU8(Flags);
    W.putStr(O.VerifyErrors);
    W.putStr(O.ConfigName);
    W.putStr(O.Reason);
    W.putStr(O.ReducedIR);
    W.putU32(O.ReductionSteps);
    W.putStr(O.CrashSignal);
    W.putStr(O.ReproPath);
  }
  return W.take();
}

bool server::decodeFuzzResponse(std::string_view Payload, FuzzResponse &Out,
                                std::string &Err) {
  WireReader R(Payload, Err);
  Out = FuzzResponse();
  uint32_t N = 0;
  if (!R.expectKind(MessageKind::FuzzResponse) || !R.getU32(N))
    return false;
  Out.Outcomes.reserve(N);
  for (uint32_t I = 0; I != N; ++I) {
    SeedOutcome O;
    uint8_t Flags = 0;
    if (!R.getU64(O.Seed) || !R.getU8(Flags) || !R.getStr(O.VerifyErrors) ||
        !R.getStr(O.ConfigName) || !R.getStr(O.Reason) ||
        !R.getStr(O.ReducedIR) || !R.getU32(O.ReductionSteps) ||
        !R.getStr(O.CrashSignal) || !R.getStr(O.ReproPath))
      return false;
    O.Passed = (Flags & 1) != 0;
    O.VerifyFailed = (Flags & 2) != 0;
    O.Crashed = (Flags & 4) != 0;
    Out.Outcomes.push_back(std::move(O));
  }
  return R.finish();
}

std::string server::encodeStatsRequest() {
  return WireWriter(MessageKind::StatsRequest).take();
}

std::string server::encodeStatsResponse(const StatsResponse &Msg) {
  WireWriter W(MessageKind::StatsResponse);
  W.putStr(Msg.JSON);
  return W.take();
}

bool server::decodeStatsResponse(std::string_view Payload, StatsResponse &Out,
                                 std::string &Err) {
  WireReader R(Payload, Err);
  Out = StatsResponse();
  return R.expectKind(MessageKind::StatsResponse) && R.getStr(Out.JSON) &&
         R.finish();
}

std::string server::encodeShutdownRequest() {
  return WireWriter(MessageKind::ShutdownRequest).take();
}

std::string server::encodeShutdownResponse() {
  return WireWriter(MessageKind::ShutdownResponse).take();
}

std::string server::encodeErrorResponse(const ErrorResponse &Msg) {
  WireWriter W(MessageKind::ErrorResponse);
  W.putU8(Msg.Category);
  W.putStr(Msg.Message);
  return W.take();
}

bool server::decodeErrorResponse(std::string_view Payload, ErrorResponse &Out,
                                 std::string &Err) {
  WireReader R(Payload, Err);
  Out = ErrorResponse();
  return R.expectKind(MessageKind::ErrorResponse) && R.getU8(Out.Category) &&
         R.getStr(Out.Message) && R.finish();
}

std::string server::encodeHealthRequest() {
  return WireWriter(MessageKind::HealthRequest).take();
}

std::string server::encodeHealthResponse(const HealthResponse &Msg) {
  WireWriter W(MessageKind::HealthResponse);
  W.putBool(Msg.Ready);
  W.putU32(Msg.QueueDepth);
  W.putU64(Msg.DeadlineMisses);
  return W.take();
}

bool server::decodeHealthResponse(std::string_view Payload,
                                  HealthResponse &Out, std::string &Err) {
  WireReader R(Payload, Err);
  Out = HealthResponse();
  return R.expectKind(MessageKind::HealthResponse) && R.getBool(Out.Ready) &&
         R.getU32(Out.QueueDepth) && R.getU64(Out.DeadlineMisses) &&
         R.finish();
}

//===----------------------------------------------------------------------===//
// Transport shim
//===----------------------------------------------------------------------===//

ssize_t FrameTransport::recvSome(int Fd, char *Data, size_t Size,
                                 int Flags) {
  return ::recv(Fd, Data, Size, Flags);
}

ssize_t FrameTransport::sendSome(int Fd, const char *Data, size_t Size,
                                 int Flags) {
  return ::send(Fd, Data, Size, Flags);
}

namespace {
FrameTransport RealTransport;
std::atomic<FrameTransport *> ActiveTransport{&RealTransport};
} // namespace

FrameTransport &server::frameTransport() {
  return *ActiveTransport.load(std::memory_order_acquire);
}

void server::setFrameTransportForTesting(FrameTransport *T) {
  ActiveTransport.store(T ? T : &RealTransport, std::memory_order_release);
}

//===----------------------------------------------------------------------===//
// Framed socket IO
//===----------------------------------------------------------------------===//

namespace {

using Clock = std::chrono::steady_clock;

/// Remaining milliseconds until \p Deadline, clamped at 0. -1 = no limit.
int remainingMs(bool HasDeadline, Clock::time_point Deadline) {
  if (!HasDeadline)
    return -1;
  auto Left = std::chrono::duration_cast<std::chrono::milliseconds>(
                  Deadline - Clock::now())
                  .count();
  return Left < 0 ? 0 : static_cast<int>(Left);
}

/// Waits until \p Fd is ready for \p Events (POLLIN/POLLOUT) or the
/// deadline passes. Returns an error on timeout; EINTR just re-polls.
Error waitReady(int Fd, short Events, bool HasDeadline,
                Clock::time_point Deadline, const char *Verb) {
  for (;;) {
    int Left = remainingMs(HasDeadline, Deadline);
    if (HasDeadline && Left == 0)
      return Error::make(ErrorCategory::IO,
                         std::string("socket ") + Verb + " timed out");
    pollfd P{Fd, Events, 0};
    int Ready = ::poll(&P, 1, Left);
    if (Ready < 0) {
      if (errno == EINTR)
        continue;
      return Error::make(ErrorCategory::IO,
                         std::string("poll failed: ") + std::strerror(errno));
    }
    if (Ready > 0)
      return Error::success();
    // Ready == 0: poll timed out; the loop head turns it into the error.
  }
}

} // namespace

Error server::writeFrame(int Fd, std::string_view Payload, int TimeoutMs) {
  if (Payload.size() > MaxFramePayload)
    return Error::make(ErrorCategory::Internal, "frame payload too large");
  bool HasDeadline = TimeoutMs >= 0;
  Clock::time_point Deadline =
      Clock::now() + std::chrono::milliseconds(HasDeadline ? TimeoutMs : 0);
  char Header[4];
  uint32_t Len = static_cast<uint32_t>(Payload.size());
  for (int I = 0; I < 4; ++I)
    Header[I] = static_cast<char>((Len >> (8 * I)) & 0xff);

  auto SendAll = [&](const char *Data, size_t Size) -> Error {
    size_t Done = 0;
    while (Done < Size) {
      if (HasDeadline) {
        if (Error E = waitReady(Fd, POLLOUT, HasDeadline, Deadline, "write"))
          return E;
      }
      // MSG_NOSIGNAL: a peer that disconnected mid-request must cost us an
      // EPIPE on this send, not a process-wide SIGPIPE. Under a deadline
      // the send must not block past it, so it goes out MSG_DONTWAIT and
      // EAGAIN loops back into the poll.
      ssize_t N = frameTransport().sendSome(
          Fd, Data + Done, Size - Done,
          MSG_NOSIGNAL | (HasDeadline ? MSG_DONTWAIT : 0));
      if (N < 0) {
        if (errno == EINTR)
          continue;
        if (HasDeadline && (errno == EAGAIN || errno == EWOULDBLOCK))
          continue;
        return Error::make(ErrorCategory::IO,
                           std::string("socket write failed: ") +
                               std::strerror(errno));
      }
      Done += static_cast<size_t>(N);
    }
    return Error::success();
  };
  if (Error E = SendAll(Header, sizeof(Header)))
    return E;
  return SendAll(Payload.data(), Payload.size());
}

Error server::readFrame(int Fd, std::string &Payload, bool *CleanEOF,
                        int TimeoutMs) {
  if (CleanEOF)
    *CleanEOF = false;
  bool HasDeadline = TimeoutMs >= 0;
  Clock::time_point Deadline =
      Clock::now() + std::chrono::milliseconds(HasDeadline ? TimeoutMs : 0);
  auto RecvAll = [&](char *Data, size_t Size, bool EOFOkAtStart) -> Error {
    size_t Done = 0;
    while (Done < Size) {
      if (HasDeadline) {
        if (Error E = waitReady(Fd, POLLIN, HasDeadline, Deadline, "read"))
          return E;
      }
      ssize_t N = frameTransport().recvSome(
          Fd, Data + Done, Size - Done, HasDeadline ? MSG_DONTWAIT : 0);
      if (N < 0) {
        if (errno == EINTR)
          continue;
        if (HasDeadline && (errno == EAGAIN || errno == EWOULDBLOCK))
          continue;
        return Error::make(ErrorCategory::IO,
                           std::string("socket read failed: ") +
                               std::strerror(errno));
      }
      if (N == 0) {
        if (EOFOkAtStart && Done == 0) {
          if (CleanEOF)
            *CleanEOF = true;
          return Error::make(ErrorCategory::IO, "connection closed");
        }
        return Error::make(ErrorCategory::IO, "truncated frame");
      }
      Done += static_cast<size_t>(N);
    }
    return Error::success();
  };

  char Header[4];
  if (Error E = RecvAll(Header, sizeof(Header), /*EOFOkAtStart=*/true))
    return E;
  uint32_t Len = 0;
  for (int I = 0; I < 4; ++I)
    Len |= static_cast<uint32_t>(static_cast<uint8_t>(Header[I])) << (8 * I);
  if (Len > MaxFramePayload)
    return Error::make(ErrorCategory::Internal, "frame length corrupt");
  Payload.resize(Len);
  if (Len == 0)
    return Error::success();
  return RecvAll(Payload.data(), Len, /*EOFOkAtStart=*/false);
}

//===----------------------------------------------------------------------===//
// FrameAssembler
//===----------------------------------------------------------------------===//

bool FrameAssembler::next(std::string &Out) {
  if (Corrupt || Buf.size() < 4)
    return false;
  uint32_t Len = 0;
  for (int I = 0; I < 4; ++I)
    Len |= static_cast<uint32_t>(static_cast<uint8_t>(Buf[I])) << (8 * I);
  if (Len > MaxFramePayload) {
    // Past this point there is no frame boundary to trust; the caller
    // must drop the connection.
    Corrupt = true;
    return false;
  }
  if (Buf.size() < 4 + static_cast<size_t>(Len))
    return false;
  Out.assign(Buf, 4, Len);
  Buf.erase(0, 4 + static_cast<size_t>(Len));
  return true;
}
