//===- server/ChaosSocket.h - Network-layer fault injection -----*- C++ -*-===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A FrameTransport that injects deterministic, seed-driven misbehavior
/// into every socket call the serving tier makes (see DESIGN.md "Serving
/// failure model"). Five fault sites, mirroring the classic network
/// failure menagerie:
///
///   io-torn-read   recv() delivers one byte — frames arrive shredded
///   io-short-write send() accepts one byte — peers see torn frames
///   io-delay       the call is delayed a few milliseconds first
///   io-reset       the call fails with ECONNRESET (mid-request reset)
///   io-eintr       the call fails with EINTR (signal-interrupt storm)
///
/// Torn reads, short writes, delays, and EINTR are *lossless*: every byte
/// still moves, just slowly and in the worst possible sizes, so a correct
/// peer must converge to the identical result. Resets are *lossy*: the
/// caller loses the connection and must retry, which is exactly what the
/// client's bounded-retry/failover path is for. Tests that assert
/// byte-identical outcomes therefore either disable resets or rely on the
/// retry layer to absorb them.
///
/// Draw sequences come from support/FaultInjection (one shared stream,
/// site-indexed counters), so a (seed, probability) pair names a
/// reproducible chaos schedule under single-threaded traffic; under
/// concurrency the schedule interleaves with thread timing, and the seed
/// is still worth recording for triage. Chaos is process-wide once
/// installed — in-process daemon tests exercise both endpoints at once.
///
//===----------------------------------------------------------------------===//

#ifndef LSLP_SERVER_CHAOSSOCKET_H
#define LSLP_SERVER_CHAOSSOCKET_H

#include "server/Protocol.h"
#include "support/FaultInjection.h"

#include <array>
#include <atomic>
#include <mutex>

namespace lslp {
namespace server {

class ChaosSocket : public FrameTransport {
public:
  struct Options {
    uint64_t Seed = 0;
    /// Per-site injection probability per socket call (0 disables).
    double Probability = 0.0;
    /// Individual site switches: lossless sites shred and stall the
    /// byte stream; Reset is the only site that loses a connection.
    bool TornReads = true;
    bool ShortWrites = true;
    bool Delays = true;
    bool Resets = true;
    bool Eintr = true;
    /// Injected delay per io-delay fault, in microseconds.
    unsigned DelayMicros = 500;
  };

  explicit ChaosSocket(Options Opts);

  ssize_t recvSome(int Fd, char *Data, size_t Size, int Flags) override;
  ssize_t sendSome(int Fd, const char *Data, size_t Size, int Flags) override;

  /// Faults injected at \p Site so far.
  uint64_t injectedAt(FaultSite Site) const {
    return Counters[static_cast<unsigned>(Site)].load(
        std::memory_order_relaxed);
  }
  /// Total faults injected across all sites.
  uint64_t totalInjected() const;

private:
  /// One synchronized draw at \p Site (the underlying FaultStream is not
  /// thread-safe; daemon and client threads share this transport).
  bool draw(FaultSite Site, bool Enabled);

  Options Opts;
  FaultInjector Injector;
  std::mutex StreamMutex;
  FaultStream Stream;
  std::array<std::atomic<uint64_t>, NumFaultSites> Counters{};
};

/// RAII installation: routes all frame IO through a ChaosSocket for the
/// scope's lifetime, then restores the real syscalls. Install before any
/// traffic starts and destroy after it drains.
class ScopedChaosSocket {
public:
  explicit ScopedChaosSocket(ChaosSocket::Options Opts) : Sock(Opts) {
    setFrameTransportForTesting(&Sock);
  }
  ~ScopedChaosSocket() { setFrameTransportForTesting(nullptr); }

  ScopedChaosSocket(const ScopedChaosSocket &) = delete;
  ScopedChaosSocket &operator=(const ScopedChaosSocket &) = delete;

  ChaosSocket &socket() { return Sock; }

private:
  ChaosSocket Sock;
};

} // namespace server
} // namespace lslp

#endif // LSLP_SERVER_CHAOSSOCKET_H
