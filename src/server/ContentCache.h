//===- server/ContentCache.h - Content-hash compile memoization -*- C++ -*-===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The daemon's compile memoization: a thread-safe LRU map from
///
///   (canonical module-text hash, config hash, request-shape hash)
///
/// to a complete CompileResponse. The module hash is taken over a
/// comment-stripped, whitespace-normalized view of the IR text, so two
/// submissions that differ only in comments or trailing blanks share an
/// entry; the config hash covers VectorizerConfig::toJSON() (which embeds
/// the packing strategy and the budgets); the shape hash covers every
/// request field that changes the response bytes (requested outputs,
/// remark format, fault seed/probability...). Replay is byte-identical by
/// construction — the cache stores the full response, not its inputs.
///
/// Counters are tracked twice: registry statistics (lslpd.* in
/// `--stats`) for the global telemetry view, and per-instance atomics
/// that feed the daemon's `stats` control request (the registry can be
/// transiently zeroed by per-request stats capture, the instance counters
/// cannot).
///
//===----------------------------------------------------------------------===//

#ifndef LSLP_SERVER_CONTENTCACHE_H
#define LSLP_SERVER_CONTENTCACHE_H

#include "server/Protocol.h"

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

namespace lslp {
namespace server {

/// Cache key: three independent 64-bit FNV-1a hashes. Collisions across
/// the 192-bit triple are treated as impossible for this tool's traffic.
struct CacheKey {
  uint64_t ModuleHash = 0;
  uint64_t ConfigHash = 0;
  uint64_t ShapeHash = 0;

  bool operator==(const CacheKey &O) const {
    return ModuleHash == O.ModuleHash && ConfigHash == O.ConfigHash &&
           ShapeHash == O.ShapeHash;
  }
};

/// FNV-1a over \p Text.
uint64_t hashBytes(std::string_view Text, uint64_t Seed = 0xcbf29ce484222325);

/// FNV-1a over the canonical view of IR text: `;` comments stripped,
/// trailing whitespace removed, blank lines skipped. Cheap (one linear
/// scan, no parse) yet stable under the formatting noise build systems
/// introduce.
uint64_t hashCanonicalModuleText(std::string_view IRText);

/// Builds the full key for \p Req (module + config + response-shaping
/// fields).
CacheKey cacheKeyFor(const CompileRequest &Req);

/// Thread-safe LRU cache of compile responses.
class ContentCache {
public:
  /// \p Capacity = maximum resident entries (>= 1).
  explicit ContentCache(size_t Capacity);

  /// Returns the cached response and promotes the entry to
  /// most-recently-used; counts a hit or a miss.
  std::optional<CompileResponse> lookup(const CacheKey &Key);

  /// Inserts (or refreshes) \p Key, evicting the least-recently-used
  /// entry when full.
  void insert(const CacheKey &Key, const CompileResponse &Response);

  size_t capacity() const { return Capacity; }
  size_t entries() const;
  uint64_t hits() const { return Hits.load(std::memory_order_relaxed); }
  uint64_t misses() const { return Misses.load(std::memory_order_relaxed); }
  uint64_t evictions() const {
    return Evictions.load(std::memory_order_relaxed);
  }

  /// One JSON object with the counters above (embedded in the daemon's
  /// `stats` reply).
  std::string statsJSON() const;

private:
  struct KeyHasher {
    size_t operator()(const CacheKey &K) const {
      // The parts are already uniform hashes; mixing them keeps the
      // table's bucket distribution flat.
      uint64_t H = K.ModuleHash;
      H = (H ^ K.ConfigHash) * 0x100000001b3;
      H = (H ^ K.ShapeHash) * 0x100000001b3;
      return static_cast<size_t>(H);
    }
  };

  using LRUList = std::list<std::pair<CacheKey, CompileResponse>>;

  const size_t Capacity;
  mutable std::mutex Mutex;
  LRUList Order; ///< Front = most recently used.
  std::unordered_map<CacheKey, LRUList::iterator, KeyHasher> Map;

  std::atomic<uint64_t> Hits{0};
  std::atomic<uint64_t> Misses{0};
  std::atomic<uint64_t> Evictions{0};
};

} // namespace server
} // namespace lslp

#endif // LSLP_SERVER_CONTENTCACHE_H
