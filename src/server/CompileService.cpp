//===- server/CompileService.cpp - The shared compile surface -------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// This mirrors the historical tools/lslpc.cpp compile path line for line;
// every diagnostic string below is pinned by the tool smoke tests, so a
// wording change here is a byte-identity break, not a cleanup.
//
//===----------------------------------------------------------------------===//

#include "server/CompileService.h"

#include "costmodel/TargetTransformInfo.h"
#include "diag/RemarkEngine.h"
#include "diag/Statistics.h"
#include "ir/Context.h"
#include "ir/Module.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "parser/Parser.h"
#include "support/CrashHandler.h"
#include "support/FaultInjection.h"
#include "support/OStream.h"
#include "support/ThreadPool.h"
#include "transforms/EarlyCSE.h"
#include "transforms/IfConversion.h"
#include "transforms/LoopUnroll.h"
#include "vectorizer/SLPVectorizerPass.h"

#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>

using namespace lslp;
using namespace lslp::server;

namespace {

/// Stats-capturing compiles hold this exclusively (a ScopedStatsCapture
/// zeroes the process-global registry, so nothing else may bump or read it
/// meanwhile); everything else holds it shared and runs concurrently.
std::shared_mutex &statsLock() {
  static std::shared_mutex Lock;
  return Lock;
}

/// Verifies \p M after \p PassName (the --verify-each hook), folding any
/// diagnostics into a Verify-category Error.
Error verifyAfterPass(const Module &M, const char *PassName) {
  std::vector<std::string> Errors;
  if (verifyModule(M, &Errors))
    return Error::success();
  std::string Msg =
      "module fails verification after " + std::string(PassName);
  for (const std::string &E : Errors)
    Msg += "\n  " + E;
  return Error::make(ErrorCategory::Verify, std::move(Msg));
}

CompileResponse compileLocked(const CompileRequest &Req) {
  CompileResponse Resp;
  StringOStream ReportOS(Resp.ReportText);
  StringOStream ErrorOS(Resp.ErrorText);

  auto Fail = [&](int Code, ErrorCategory Cat) {
    Resp.ExitCode = Code;
    Resp.ErrCategory = static_cast<uint8_t>(Cat);
    return Resp;
  };

  VectorizerConfig Config;
  {
    std::string Err;
    if (!VectorizerConfig::fromJSON(Req.ConfigJSON, Config, Err)) {
      ErrorOS << "lslpc: bad vectorizer config: " << Err << "\n";
      return Fail(1, ErrorCategory::Internal);
    }
  }

  // Remarks stream into the response; the client (or the local driver)
  // decides which sink replays them.
  RemarkEngine Remarks;
  StringOStream RemarkOS(Resp.RemarksText);
  if (Req.Remarks == RemarkWireFormat::Text)
    Remarks.setTextStream(&RemarkOS);
  else if (Req.Remarks == RemarkWireFormat::JSON)
    Remarks.setJSONStream(&RemarkOS);
  if (Req.Remarks != RemarkWireFormat::None)
    Config.Remarks = &Remarks;

  // If anything below crashes, the handler (when armed) dumps the input IR
  // plus the active configuration as a runnable reproducer.
  CrashPayload Payload(&Req.ModuleText, &Req.ConfigJSON);
  CrashScope Scope("tool", "compile");

  Context Ctx;
  std::unique_ptr<Module> M;
  {
    ParseDiagnostic Diag;
    Expected<std::unique_ptr<Module>> ParsedOrErr =
        parseModuleOrError(Req.ModuleText, Ctx, &Diag);
    if (!ParsedOrErr) {
      ErrorOS << Diag.render(Req.InputName) << "\n";
      return Fail(1, ErrorCategory::Parse);
    }
    M = std::move(*ParsedOrErr);
  }
  std::vector<std::string> Errors;
  if (!verifyModule(*M, &Errors)) {
    ErrorOS << "lslpc: input fails verification:\n";
    for (const std::string &E : Errors)
      ErrorOS << "  " << E << "\n";
    return Fail(1, ErrorCategory::Verify);
  }

  // Deterministic fault injection, forwarded unchanged from the request.
  std::optional<FaultInjector> Faults;
  if (Req.FaultProbability > 0.0) {
    Faults.emplace(Req.FaultSeed, Req.FaultProbability);
    Config.Faults = &*Faults;
  }

  SkylakeTTI TTI;
  if (Req.EarlyCSE) {
    unsigned Removed = runEarlyCSE(*M, Config.Remarks);
    if (Req.Report)
      ReportOS << "; early-cse removed " << Removed << " instruction(s)\n";
    if (Req.VerifyEach) {
      if (Error E = verifyAfterPass(*M, "early-cse")) {
        ErrorOS << "lslpc: " << E.message() << "\n";
        return Fail(1, ErrorCategory::Verify);
      }
    }
  }
  if (Config.EnableIfConversion) {
    unsigned Converted = runIfConversion(*M, Config.Remarks);
    if (Req.Report)
      ReportOS << "; if-conversion flattened " << Converted << " branch(es)\n";
    if (Req.VerifyEach) {
      if (Error E = verifyAfterPass(*M, "if-conversion")) {
        ErrorOS << "lslpc: " << E.message() << "\n";
        return Fail(1, ErrorCategory::Verify);
      }
    }
  }
  if (Config.EnableLoopUnroll) {
    unsigned Unrolled =
        runLoopUnroll(*M, Config.UnrollFactor, Config.Remarks);
    if (Req.Report)
      ReportOS << "; loop-unroll unrolled " << Unrolled << " loop(s)\n";
    if (Req.VerifyEach) {
      if (Error E = verifyAfterPass(*M, "loop-unroll")) {
        ErrorOS << "lslpc: " << E.message() << "\n";
        return Fail(1, ErrorCategory::Verify);
      }
    }
  }
  if (Req.Vectorize) {
    SLPVectorizerPass Pass(Config, TTI);
    ModuleReport Report =
        Pass.runOnModule(*M, ThreadPool::resolveJobs(Req.Jobs));
    if (!verifyModule(*M, &Errors)) {
      ErrorOS << "lslpc: internal error: output fails verification\n";
      for (const std::string &E : Errors)
        ErrorOS << "  " << E << "\n";
      return Fail(2, ErrorCategory::Verify);
    }
    if (Req.Report) {
      ReportOS << "; config " << Config.Name << ": " << Report.numAccepted()
               << " bundle(s) vectorized, total cost "
               << Report.acceptedCost() << "\n";
      for (const FunctionReport &F : Report.Functions)
        for (const GraphAttempt &A : F.Attempts)
          ReportOS << ";  @" << F.FunctionName << ": "
                   << (A.IsReduction ? "reduction" : "store-seed") << " x"
                   << A.NumLanes << ", cost " << A.Cost << ", "
                   << (A.Accepted ? "vectorized" : "skipped") << "\n";
    }
  }

  if (Req.PrintIR) {
    StringOStream IROS(Resp.IRText);
    printModule(IROS, *M);
  }
  return Resp;
}

} // namespace

CompileResponse server::runCompileRequest(const CompileRequest &Req) {
  if (!Req.WantStats) {
    std::shared_lock<std::shared_mutex> Shared(statsLock());
    return compileLocked(Req);
  }

  // Per-request statistics: isolate this request's counter bumps, render
  // them exactly as lslpc's at-exit dump would, then restore the process
  // totals. Exclusive: a capture window must not see other requests.
  std::unique_lock<std::shared_mutex> Exclusive(statsLock());
  ScopedStatsCapture Capture;
  CompileResponse Resp = compileLocked(Req);
  StringOStream StatsOS(Resp.StatsText);
  if (Req.StatsJSON)
    StatisticsRegistry::instance().printJSON(StatsOS);
  else
    StatisticsRegistry::instance().printText(StatsOS);
  return Resp;
}
