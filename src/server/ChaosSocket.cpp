//===- server/ChaosSocket.cpp - Network-layer fault injection -------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "server/ChaosSocket.h"

#include <cerrno>
#include <chrono>
#include <thread>

#include <sys/socket.h>

using namespace lslp;
using namespace lslp::server;

ChaosSocket::ChaosSocket(Options OptsIn)
    : Opts(OptsIn), Injector(OptsIn.Seed, OptsIn.Probability),
      Stream(Injector.streamFor("chaos-socket")) {}

uint64_t ChaosSocket::totalInjected() const {
  uint64_t Total = 0;
  for (const auto &C : Counters)
    Total += C.load(std::memory_order_relaxed);
  return Total;
}

bool ChaosSocket::draw(FaultSite Site, bool Enabled) {
  if (!Enabled || Opts.Probability <= 0.0)
    return false;
  bool Fail;
  {
    std::lock_guard<std::mutex> Lock(StreamMutex);
    Fail = Stream.shouldFail(Site);
  }
  if (Fail)
    Counters[static_cast<unsigned>(Site)].fetch_add(
        1, std::memory_order_relaxed);
  return Fail;
}

ssize_t ChaosSocket::recvSome(int Fd, char *Data, size_t Size, int Flags) {
  if (draw(FaultSite::IoDelay, Opts.Delays))
    std::this_thread::sleep_for(std::chrono::microseconds(Opts.DelayMicros));
  if (draw(FaultSite::IoEintr, Opts.Eintr)) {
    errno = EINTR;
    return -1;
  }
  if (draw(FaultSite::IoReset, Opts.Resets)) {
    errno = ECONNRESET;
    return -1;
  }
  if (Size > 1 && draw(FaultSite::IoTornRead, Opts.TornReads))
    Size = 1; // The peer's frame arrives one byte at a time.
  return ::recv(Fd, Data, Size, Flags);
}

ssize_t ChaosSocket::sendSome(int Fd, const char *Data, size_t Size,
                              int Flags) {
  if (draw(FaultSite::IoDelay, Opts.Delays))
    std::this_thread::sleep_for(std::chrono::microseconds(Opts.DelayMicros));
  if (draw(FaultSite::IoEintr, Opts.Eintr)) {
    errno = EINTR;
    return -1;
  }
  if (draw(FaultSite::IoReset, Opts.Resets)) {
    errno = ECONNRESET;
    return -1;
  }
  if (Size > 1 && draw(FaultSite::IoShortWrite, Opts.ShortWrites))
    Size = 1; // The kernel "accepts" one byte; the caller must loop.
  return ::send(Fd, Data, Size, Flags);
}
