//===- server/Protocol.h - lslpd wire protocol ------------------*- C++ -*-===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The framed protocol spoken over the lslpd unix-domain socket (see
/// DESIGN.md "Serving architecture").
///
/// Framing: every message travels as one frame —
///
///   u32 payload-length (little-endian) | payload bytes
///
/// The payload is a tag-prefixed binary record: one MessageKind byte
/// followed by the message's fields in declaration order. Strings are
/// u32-length-prefixed byte runs (no escaping, so IR text and JSON ship
/// verbatim); integers are fixed-width little-endian; doubles travel as
/// their IEEE-754 bit pattern. The format is deliberately dumb: both ends
/// are this repository, and byte-identical replay of cached responses is
/// a protocol-level guarantee, so a human-readable envelope would only
/// add escaping bugs.
///
/// A client sends one request per frame and reads one response frame
/// before sending the next (simple lock-step; the daemon batches across
/// *connections*, not within one). Every request kind has exactly one
/// response kind; any malformed or crashed request produces an
/// ErrorResponse instead, never a dropped connection.
///
//===----------------------------------------------------------------------===//

#ifndef LSLP_SERVER_PROTOCOL_H
#define LSLP_SERVER_PROTOCOL_H

#include "fuzz/FuzzDriver.h"
#include "support/Error.h"
#include "vm/ExecutionEngine.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace lslp {
namespace server {

/// Tag byte of every payload. Values are wire ABI — append only.
enum class MessageKind : uint8_t {
  Invalid = 0,
  CompileRequest = 1,
  CompileResponse = 2,
  FuzzRequest = 3,
  FuzzResponse = 4,
  StatsRequest = 5,
  StatsResponse = 6,
  ShutdownRequest = 7,
  ShutdownResponse = 8,
  ErrorResponse = 9,
  HealthRequest = 10,
  HealthResponse = 11,
};

/// Remark stream format requested for a compile (mirrors lslpc's
/// --remarks flag).
enum class RemarkWireFormat : uint8_t { None = 0, Text = 1, JSON = 2 };

/// One compilation: module text in, transformed IR / report / remarks /
/// stats out. The configuration travels as VectorizerConfig JSON — the
/// same serialization crash reproducers use — so daemon and local compiles
/// are driven by identical knobs.
struct CompileRequest {
  /// Display name used in parse diagnostics ("<stdin>", the file path...).
  std::string InputName = "<memory>";
  /// The module, in textual IR.
  std::string ModuleText;
  /// VectorizerConfig::toJSON() of the configuration to compile under.
  std::string ConfigJSON;
  bool Vectorize = true;   ///< false = parse/verify/print only.
  bool EarlyCSE = false;   ///< run common-subexpression elimination first.
  bool Report = false;     ///< produce the per-seed-bundle report text.
  bool PrintIR = true;     ///< produce the transformed IR text.
  bool VerifyEach = false; ///< verify the module after every pass.
  bool WantStats = false;  ///< capture per-request statistics counters.
  bool StatsJSON = false;  ///< stats as JSON instead of the text table.
  RemarkWireFormat Remarks = RemarkWireFormat::None;
  /// Worker threads for the vectorizer pass itself (module-level
  /// parallelism; output is byte-identical for any value).
  uint32_t Jobs = 1;
  /// Deterministic fault injection, forwarded unchanged into the pass
  /// (probability 0 disables; see support/FaultInjection.h).
  double FaultProbability = 0.0;
  uint64_t FaultSeed = 0;
  /// Test-only: crash the worker thread mid-request (SIGABRT). Honored
  /// only by daemons started with --allow-crash-requests; exercises the
  /// crash-containment path end to end.
  bool InjectCrash = false;
};

/// The result of a CompileRequest. Field-for-field, this is what local
/// lslpc would have written: ReportText+IRText to stdout, RemarksText to
/// the remark sink, StatsText and ErrorText to stderr, then exit with
/// ExitCode — the client replays these byte-for-byte.
struct CompileResponse {
  int32_t ExitCode = 0;
  /// ErrorCategory of a failed compile (None on success).
  uint8_t ErrCategory = 0;
  /// True when this response was replayed from the daemon's content cache
  /// (diagnostic only; not part of the byte-identity contract).
  bool CacheHit = false;
  std::string ReportText;  ///< "; config ..." + per-attempt lines.
  std::string IRText;      ///< Transformed module (PrintIR only).
  std::string RemarksText; ///< Text or JSONL remark stream.
  std::string StatsText;   ///< Statistics table/JSON (WantStats only).
  std::string ErrorText;   ///< Diagnostics local lslpc prints to stderr.
};

/// One sharded fuzz sweep: the daemon runs [FirstSeed, FirstSeed+Count)
/// through the differential oracle on its own pool and streams back the
/// outcomes. Mirrors FuzzSweepOptions minus the transport fields.
struct FuzzRequest {
  int64_t Count = 0;
  int64_t FirstSeed = 0;
  uint32_t Jobs = 1;
  uint8_t Engine = 0; ///< EngineKind.
  bool ParityAll = false;
  double FaultProbability = 0.0;
  uint64_t FaultSeed = 0;
  uint8_t Strategy = 0; ///< VectorizerConfig::PackingStrategyKind.
  /// Pre-vectorization CFG pipeline pinning (appended fields — wire ABI).
  bool IfConvert = false;
  bool Unroll = false;
  uint32_t UnrollFactor = 4;
};

/// Outcomes in ascending seed order (runFuzzSweep's delivery order).
struct FuzzResponse {
  std::vector<SeedOutcome> Outcomes;
};

/// `stats` control reply: one JSON object with request/batch/queue/cache
/// counters (see Daemon::statsJSON for the schema).
struct StatsResponse {
  std::string JSON;
};

/// Structured failure reply: the daemon survived, this request did not.
/// Category Overloaded means the daemon shed the request before doing any
/// work — the client is expected to back off and retry.
struct ErrorResponse {
  uint8_t Category = 0; ///< ErrorCategory.
  std::string Message;
};

/// `health` control reply: a cheap readiness probe answered inline on the
/// dispatcher thread, deliberately independent of the worker pool so load
/// balancers and supervision scripts can poll it even while every worker
/// is busy.
struct HealthResponse {
  bool Ready = false;       ///< Daemon is accepting work.
  uint32_t QueueDepth = 0;  ///< Compile requests pending in this round.
  uint64_t DeadlineMisses = 0; ///< Connections reaped at a deadline so far.
};

/// \name Payload encoding/decoding.
/// Encoders produce the tag-prefixed payload (not yet framed). Decoders
/// expect exactly one payload and reject trailing bytes; they return
/// false with a diagnostic in \p Err on malformed input.
/// @{
std::string encodeCompileRequest(const CompileRequest &Msg);
std::string encodeCompileResponse(const CompileResponse &Msg);
std::string encodeFuzzRequest(const FuzzRequest &Msg);
std::string encodeFuzzResponse(const FuzzResponse &Msg);
std::string encodeStatsRequest();
std::string encodeStatsResponse(const StatsResponse &Msg);
std::string encodeShutdownRequest();
std::string encodeShutdownResponse();
std::string encodeErrorResponse(const ErrorResponse &Msg);
std::string encodeHealthRequest();
std::string encodeHealthResponse(const HealthResponse &Msg);

bool decodeCompileRequest(std::string_view Payload, CompileRequest &Out,
                          std::string &Err);
bool decodeCompileResponse(std::string_view Payload, CompileResponse &Out,
                           std::string &Err);
bool decodeFuzzRequest(std::string_view Payload, FuzzRequest &Out,
                       std::string &Err);
bool decodeFuzzResponse(std::string_view Payload, FuzzResponse &Out,
                        std::string &Err);
bool decodeStatsResponse(std::string_view Payload, StatsResponse &Out,
                         std::string &Err);
bool decodeErrorResponse(std::string_view Payload, ErrorResponse &Out,
                         std::string &Err);
bool decodeHealthResponse(std::string_view Payload, HealthResponse &Out,
                          std::string &Err);

/// Tag byte of \p Payload (Invalid when empty or out of range).
MessageKind peekKind(std::string_view Payload);
/// @}

/// \name Transport shim.
/// Every socket byte the protocol moves goes through one FrameTransport.
/// The default forwards to recv()/send(); tests install a ChaosSocket
/// (server/ChaosSocket.h) to inject torn frames, short writes, delays,
/// resets, and EINTR storms without touching kernel state.
/// @{
class FrameTransport {
public:
  virtual ~FrameTransport() = default;
  virtual ssize_t recvSome(int Fd, char *Data, size_t Size, int Flags);
  virtual ssize_t sendSome(int Fd, const char *Data, size_t Size, int Flags);
};

/// The active transport (never null).
FrameTransport &frameTransport();

/// Installs \p T process-wide; null restores the real syscalls. Install
/// before any traffic and uninstall after it drains — the pointer itself
/// is not synchronized against in-flight IO.
void setFrameTransportForTesting(FrameTransport *T);
/// @}

/// \name Framed socket IO.
/// Full-frame reads/writes over a connected fd with EINTR retry and
/// MSG_NOSIGNAL sends (a peer vanishing mid-write must surface as an IO
/// Error on this request, never as SIGPIPE killing the process).
/// @{

/// Upper bound on a frame payload; a length prefix beyond this is treated
/// as protocol corruption, not an allocation request.
inline constexpr uint32_t MaxFramePayload = 256u * 1024 * 1024;

/// Deadline-aware variants: \p TimeoutMs < 0 blocks forever (the legacy
/// behavior); otherwise the whole frame must move within the budget or the
/// call fails with an IO "timed out" Error. The deadline covers the entire
/// frame, not each syscall, so a peer trickling one byte per poll interval
/// cannot stretch it.
Error writeFrame(int Fd, std::string_view Payload, int TimeoutMs = -1);

/// Reads one frame into \p Payload. A clean EOF at a frame boundary sets
/// \p *CleanEOF (when non-null) and returns an IO error; EOF mid-frame is
/// reported as truncation.
Error readFrame(int Fd, std::string &Payload, bool *CleanEOF = nullptr,
                int TimeoutMs = -1);
/// @}

/// Incremental frame decoder for non-blocking reads: feed() whatever bytes
/// poll() surfaced, then drain complete payloads with next(). Used by the
/// daemon's per-connection read path, where one recv() may deliver half a
/// length prefix or three frames back to back; unit-tested byte-at-a-time
/// in ProtocolTest.
class FrameAssembler {
public:
  /// Appends \p Size raw socket bytes.
  void feed(const char *Data, size_t Size) { Buf.append(Data, Size); }

  /// Moves the next complete payload into \p Out. Returns false when no
  /// full frame is buffered (or the stream is corrupt).
  bool next(std::string &Out);

  /// True once a length prefix exceeded MaxFramePayload; the stream can
  /// never resynchronize and the connection must be dropped.
  bool corrupt() const { return Corrupt; }

  /// True when buffered bytes end mid-frame (inside a length prefix or a
  /// payload) — EOF here is truncation, and the per-request deadline
  /// clock is running.
  bool midFrame() const { return !Buf.empty(); }

  /// Bytes buffered but not yet consumed as frames.
  size_t bufferedBytes() const { return Buf.size(); }

private:
  std::string Buf;
  bool Corrupt = false;
};

} // namespace server
} // namespace lslp

#endif // LSLP_SERVER_PROTOCOL_H
