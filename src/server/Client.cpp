//===- server/Client.cpp - lslpd client transport -------------------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "server/Client.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <thread>
#include <unistd.h>

using namespace lslp;
using namespace lslp::server;

namespace {

/// splitmix64 finalizer (same mixer FaultInjection uses): drives the
/// deterministic retry jitter so two clients seeded apart never sync up
/// their backoff storms.
uint64_t mix64(uint64_t X) {
  X += 0x9e3779b97f4a7c15ULL;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ULL;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebULL;
  return X ^ (X >> 31);
}

/// A shard error annotated with where it ran — the triage handle the
/// sweep operator actually needs (satellite: socket + seed range).
std::string describeShard(const std::string &Socket, int64_t FirstSeed,
                          int64_t Count, const std::string &Msg) {
  return "daemon '" + Socket + "' (seeds [" + std::to_string(FirstSeed) +
         ", " + std::to_string(FirstSeed + Count) + ")): " + Msg;
}

} // namespace

DaemonClient::~DaemonClient() { close(); }

void DaemonClient::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

Error DaemonClient::connect(const std::string &SocketPath) {
  close();
  Path = SocketPath;
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (SocketPath.empty() || SocketPath.size() >= sizeof(Addr.sun_path))
    return Error::make(ErrorCategory::IO,
                       "socket path '" + SocketPath +
                           "' is empty or longer than the unix-socket limit");
  std::memcpy(Addr.sun_path, SocketPath.c_str(), SocketPath.size() + 1);

  Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return Error::make(ErrorCategory::IO,
                       std::string("socket: ") + std::strerror(errno));

  // Bounded connect: go non-blocking for the handshake, then restore the
  // original flags so deadline-free calls keep their blocking semantics.
  int Flags = ::fcntl(Fd, F_GETFL, 0);
  if (Opts.ConnectTimeoutMs >= 0 && Flags >= 0)
    ::fcntl(Fd, F_SETFL, Flags | O_NONBLOCK);

  int RC = ::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr));
  if (RC < 0 && errno == EINPROGRESS && Opts.ConnectTimeoutMs >= 0) {
    pollfd P{Fd, POLLOUT, 0};
    int Ready;
    do {
      Ready = ::poll(&P, 1, Opts.ConnectTimeoutMs);
    } while (Ready < 0 && errno == EINTR);
    if (Ready == 0) {
      Error E = Error::make(ErrorCategory::IO,
                            "connect to daemon at '" + SocketPath +
                                "' timed out after " +
                                std::to_string(Opts.ConnectTimeoutMs) + "ms");
      close();
      return E;
    }
    int SockErr = 0;
    socklen_t Len = sizeof(SockErr);
    if (Ready < 0 ||
        ::getsockopt(Fd, SOL_SOCKET, SO_ERROR, &SockErr, &Len) < 0 ||
        SockErr != 0) {
      RC = -1;
      errno = SockErr != 0 ? SockErr : errno;
    } else {
      RC = 0;
    }
  }
  if (RC < 0) {
    Error E = Error::make(ErrorCategory::IO,
                          "cannot connect to daemon at '" + SocketPath +
                              "': " + std::strerror(errno));
    close();
    return E;
  }
  if (Opts.ConnectTimeoutMs >= 0 && Flags >= 0)
    ::fcntl(Fd, F_SETFL, Flags);
  return Error::success();
}

Error DaemonClient::roundTrip(const std::string &Payload, std::string &Reply,
                              int TimeoutMs) {
  if (Fd < 0)
    return Error::make(ErrorCategory::IO, "not connected to a daemon");
  if (Error E = writeFrame(Fd, Payload, TimeoutMs)) {
    close();
    return E;
  }
  bool CleanEOF = false;
  if (Error E = readFrame(Fd, Reply, &CleanEOF, TimeoutMs)) {
    close();
    if (CleanEOF)
      return Error::make(ErrorCategory::IO,
                         "daemon closed the connection before replying");
    return E;
  }
  return Error::success();
}

Error DaemonClient::errorFromReply(const std::string &Reply) {
  if (peekKind(Reply) != MessageKind::ErrorResponse)
    return Error::success();
  ErrorResponse E;
  std::string DecodeErr;
  if (!decodeErrorResponse(Reply, E, DecodeErr))
    return Error::make(ErrorCategory::Internal,
                       "malformed error reply: " + DecodeErr);
  ErrorCategory Cat = E.Category <=
                              static_cast<uint8_t>(ErrorCategory::Overloaded)
                          ? static_cast<ErrorCategory>(E.Category)
                          : ErrorCategory::Internal;
  return Error::make(Cat == ErrorCategory::None ? ErrorCategory::Internal
                                                : Cat,
                     E.Message);
}

Error DaemonClient::retryingCall(
    const std::string &Payload,
    const std::function<Error(const std::string &)> &Decode) {
  Error Last = Error::success();
  for (unsigned Attempt = 0; Attempt <= Opts.MaxRetries; ++Attempt) {
    if (Attempt > 0) {
      // Exponential backoff with deterministic jitter: base << (n-1) plus
      // a seed-driven slice of [0, base) so retry storms decorrelate.
      int64_t SleepMs =
          static_cast<int64_t>(Opts.BackoffBaseMs) << (Attempt - 1);
      if (Opts.BackoffBaseMs > 0)
        SleepMs += static_cast<int64_t>(
            mix64(Opts.RetrySeed ^ RetryDraws++) %
            static_cast<uint64_t>(Opts.BackoffBaseMs));
      std::this_thread::sleep_for(std::chrono::milliseconds(SleepMs));
    }
    if (!isConnected()) {
      if (Path.empty())
        return Error::make(ErrorCategory::IO, "not connected to a daemon");
      if (Error E = connect(Path)) {
        Last = std::move(E); // The daemon may be restarting: keep trying.
        continue;
      }
    }
    std::string Reply;
    if (Error E = roundTrip(Payload, Reply, Opts.RequestTimeoutMs)) {
      // Transport failure: the connection is closed; only IO errors are
      // worth a reconnect (anything else is a local bug).
      if (E.category() != ErrorCategory::IO)
        return E;
      Last = std::move(E);
      continue;
    }
    if (Error E = errorFromReply(Reply)) {
      // Overloaded is an explicit invitation to back off and resend — on
      // the same healthy connection. Every other daemon-reported error is
      // deterministic and would just fail again.
      if (E.category() != ErrorCategory::Overloaded)
        return E;
      Last = std::move(E);
      continue;
    }
    return Decode(Reply);
  }
  return Last;
}

Error DaemonClient::compile(const CompileRequest &Req, CompileResponse &Out) {
  return retryingCall(encodeCompileRequest(Req),
                      [&Out](const std::string &Reply) {
                        std::string DecodeErr;
                        if (!decodeCompileResponse(Reply, Out, DecodeErr))
                          return Error::make(ErrorCategory::Internal,
                                             "malformed compile reply: " +
                                                 DecodeErr);
                        return Error::success();
                      });
}

Error DaemonClient::fuzz(const FuzzRequest &Req, FuzzResponse &Out) {
  return retryingCall(encodeFuzzRequest(Req),
                      [&Out](const std::string &Reply) {
                        std::string DecodeErr;
                        if (!decodeFuzzResponse(Reply, Out, DecodeErr))
                          return Error::make(ErrorCategory::Internal,
                                             "malformed fuzz reply: " +
                                                 DecodeErr);
                        return Error::success();
                      });
}

Error DaemonClient::stats(std::string &JSONOut) {
  std::string Reply;
  if (Error E = roundTrip(encodeStatsRequest(), Reply, Opts.ControlTimeoutMs))
    return E;
  if (Error E = errorFromReply(Reply))
    return E;
  StatsResponse Resp;
  std::string DecodeErr;
  if (!decodeStatsResponse(Reply, Resp, DecodeErr))
    return Error::make(ErrorCategory::Internal,
                       "malformed stats reply: " + DecodeErr);
  JSONOut = std::move(Resp.JSON);
  return Error::success();
}

Error DaemonClient::health(HealthResponse &Out) {
  std::string Reply;
  if (Error E = roundTrip(encodeHealthRequest(), Reply, Opts.ControlTimeoutMs))
    return E;
  if (Error E = errorFromReply(Reply))
    return E;
  std::string DecodeErr;
  if (!decodeHealthResponse(Reply, Out, DecodeErr))
    return Error::make(ErrorCategory::Internal,
                       "malformed health reply: " + DecodeErr);
  return Error::success();
}

Error DaemonClient::shutdownDaemon() {
  std::string Reply;
  if (Error E =
          roundTrip(encodeShutdownRequest(), Reply, Opts.ControlTimeoutMs))
    return E;
  if (Error E = errorFromReply(Reply))
    return E;
  if (peekKind(Reply) != MessageKind::ShutdownResponse)
    return Error::make(ErrorCategory::Internal,
                       "unexpected reply to shutdown request");
  return Error::success();
}

namespace {

/// One shard of a sweep: a contiguous seed range bound to a socket.
struct Shard {
  FuzzRequest Req;
  FuzzResponse Resp;
  Error Err = Error::success();
  size_t SocketIdx = 0;
};

/// Splits [FirstSeed, FirstSeed+Count) into NumShards contiguous ranges
/// carrying \p Opts's sweep parameters.
std::vector<Shard> makeShards(const FuzzSweepOptions &Opts, int64_t FirstSeed,
                              int64_t Count, size_t NumShards) {
  std::vector<Shard> Shards(NumShards);
  int64_t Base = FirstSeed;
  for (size_t I = 0; I != NumShards; ++I) {
    int64_t Quota =
        Count / static_cast<int64_t>(NumShards) +
        (static_cast<int64_t>(I) < Count % static_cast<int64_t>(NumShards)
             ? 1
             : 0);
    FuzzRequest &Req = Shards[I].Req;
    Req.Count = Quota;
    Req.FirstSeed = Base;
    Base += Quota;
    Req.Jobs = Opts.Jobs;
    Req.Engine = static_cast<uint8_t>(Opts.Engine);
    Req.ParityAll = Opts.ParityAll;
    Req.FaultProbability = Opts.FaultProbability;
    Req.FaultSeed = Opts.FaultSeed;
    Req.Strategy = static_cast<uint8_t>(Opts.Strategy);
    Req.IfConvert = Opts.IfConvert;
    Req.Unroll = Opts.Unroll;
    Req.UnrollFactor = Opts.UnrollFactor;
  }
  return Shards;
}

/// Runs every shard on its socket concurrently (one thread per shard).
void runShards(std::vector<Shard> &Shards,
               const std::vector<std::string> &Sockets,
               const ClientOptions &ClientOpts) {
  std::vector<std::thread> Threads;
  Threads.reserve(Shards.size());
  for (size_t I = 0; I != Shards.size(); ++I)
    Threads.emplace_back([&Shards, &Sockets, &ClientOpts, I] {
      Shard &S = Shards[I];
      ClientOptions PerShard = ClientOpts;
      PerShard.RetrySeed = ClientOpts.RetrySeed ^ (0x5bd1e995u * (I + 1));
      DaemonClient Client(PerShard);
      if (Error E = Client.connect(Sockets[S.SocketIdx])) {
        S.Err = std::move(E);
        return;
      }
      S.Err = Client.fuzz(S.Req, S.Resp);
    });
  for (std::thread &T : Threads)
    T.join();
}

} // namespace

Expected<int64_t> server::runFuzzSweepViaDaemons(
    const FuzzSweepOptions &Opts, const std::vector<std::string> &Sockets,
    const std::function<void(const SeedOutcome &)> &Consume,
    const ClientOptions &ClientOpts) {
  if (Sockets.empty())
    return Error::make(ErrorCategory::IO, "no daemon sockets given");

  // Contiguous ranges keep delivery order trivial: shard i holds seeds
  // strictly before shard i+1. Failover can interleave ranges, so the
  // final delivery is re-sorted by seed either way.
  size_t NumShards = Sockets.size();
  if (Opts.Count >= 0 && static_cast<uint64_t>(Opts.Count) < NumShards)
    NumShards = Opts.Count == 0 ? 1 : static_cast<size_t>(Opts.Count);

  std::vector<Shard> Shards =
      makeShards(Opts, Opts.FirstSeed, Opts.Count, NumShards);
  for (size_t I = 0; I != Shards.size(); ++I)
    Shards[I].SocketIdx = I;
  runShards(Shards, Sockets, ClientOpts);

  // Failover round: a daemon that stayed unreachable through the client's
  // whole retry budget is treated as dead, and its range is re-sharded
  // across the daemons that did answer. Per-seed outcomes are
  // deterministic, so a re-run elsewhere produces the same bytes.
  std::vector<SeedOutcome> All;
  std::vector<size_t> DeadSockets;
  std::vector<Shard *> Failed;
  for (Shard &S : Shards) {
    if (S.Err) {
      DeadSockets.push_back(S.SocketIdx);
      Failed.push_back(&S);
    } else {
      All.insert(All.end(), S.Resp.Outcomes.begin(), S.Resp.Outcomes.end());
    }
  }
  if (!Failed.empty()) {
    std::vector<std::string> Survivors;
    std::vector<size_t> SurvivorIdx;
    for (size_t I = 0; I != Sockets.size(); ++I)
      if (std::find(DeadSockets.begin(), DeadSockets.end(), I) ==
          DeadSockets.end()) {
        Survivors.push_back(Sockets[I]);
        SurvivorIdx.push_back(I);
      }
    if (Survivors.empty()) {
      std::string Msg;
      for (const Shard *S : Failed) {
        if (!Msg.empty())
          Msg += "; ";
        Msg += describeShard(Sockets[S->SocketIdx], S->Req.FirstSeed,
                             S->Req.Count, S->Err.message());
      }
      return Error::make(Failed.front()->Err.category(), Msg);
    }
    for (Shard *S : Failed) {
      size_t NumRetryShards =
          std::min<size_t>(Survivors.size(),
                           S->Req.Count > 0
                               ? static_cast<size_t>(S->Req.Count)
                               : 1);
      std::vector<Shard> Retry =
          makeShards(Opts, S->Req.FirstSeed, S->Req.Count, NumRetryShards);
      for (size_t I = 0; I != Retry.size(); ++I)
        Retry[I].SocketIdx = I;
      runShards(Retry, Survivors, ClientOpts);
      for (Shard &R : Retry) {
        if (R.Err)
          // A survivor failed the failover leg too: give up — this is two
          // independent failures, and the operator needs the exact range.
          return Error::make(
              R.Err.category(),
              describeShard(Survivors[R.SocketIdx], R.Req.FirstSeed,
                            R.Req.Count, R.Err.message()) +
                  " (failover for dead daemon '" + Sockets[S->SocketIdx] +
                  "')");
        All.insert(All.end(), R.Resp.Outcomes.begin(),
                   R.Resp.Outcomes.end());
      }
    }
  }

  // Re-deliver in ascending seed order — the local runFuzzSweep contract,
  // and what makes failover invisible in the output bytes.
  std::sort(All.begin(), All.end(),
            [](const SeedOutcome &A, const SeedOutcome &B) {
              return A.Seed < B.Seed;
            });
  int64_t Failures = 0;
  for (const SeedOutcome &Out : All) {
    if (!Out.Passed)
      ++Failures;
    Consume(Out);
  }
  return Failures;
}
