//===- server/Client.cpp - lslpd client transport -------------------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "server/Client.h"

#include <cerrno>
#include <cstring>
#include <sys/socket.h>
#include <sys/un.h>
#include <thread>
#include <unistd.h>

using namespace lslp;
using namespace lslp::server;

DaemonClient::~DaemonClient() { close(); }

void DaemonClient::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

Error DaemonClient::connect(const std::string &SocketPath) {
  close();
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (SocketPath.empty() || SocketPath.size() >= sizeof(Addr.sun_path))
    return Error::make(ErrorCategory::IO,
                       "socket path '" + SocketPath +
                           "' is empty or longer than the unix-socket limit");
  std::memcpy(Addr.sun_path, SocketPath.c_str(), SocketPath.size() + 1);

  Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return Error::make(ErrorCategory::IO,
                       std::string("socket: ") + std::strerror(errno));
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    Error E = Error::make(ErrorCategory::IO,
                          "cannot connect to daemon at '" + SocketPath +
                              "': " + std::strerror(errno));
    close();
    return E;
  }
  return Error::success();
}

Error DaemonClient::roundTrip(const std::string &Payload, std::string &Reply) {
  if (Fd < 0)
    return Error::make(ErrorCategory::IO, "not connected to a daemon");
  if (Error E = writeFrame(Fd, Payload)) {
    close();
    return E;
  }
  bool CleanEOF = false;
  if (Error E = readFrame(Fd, Reply, &CleanEOF)) {
    close();
    if (CleanEOF)
      return Error::make(ErrorCategory::IO,
                         "daemon closed the connection before replying");
    return E;
  }
  return Error::success();
}

Error DaemonClient::errorFromReply(const std::string &Reply) {
  if (peekKind(Reply) != MessageKind::ErrorResponse)
    return Error::success();
  ErrorResponse E;
  std::string DecodeErr;
  if (!decodeErrorResponse(Reply, E, DecodeErr))
    return Error::make(ErrorCategory::Internal,
                       "malformed error reply: " + DecodeErr);
  ErrorCategory Cat = E.Category <=
                              static_cast<uint8_t>(ErrorCategory::Internal)
                          ? static_cast<ErrorCategory>(E.Category)
                          : ErrorCategory::Internal;
  return Error::make(Cat == ErrorCategory::None ? ErrorCategory::Internal
                                                : Cat,
                     E.Message);
}

Error DaemonClient::compile(const CompileRequest &Req, CompileResponse &Out) {
  std::string Reply;
  if (Error E = roundTrip(encodeCompileRequest(Req), Reply))
    return E;
  if (Error E = errorFromReply(Reply))
    return E;
  std::string DecodeErr;
  if (!decodeCompileResponse(Reply, Out, DecodeErr))
    return Error::make(ErrorCategory::Internal,
                       "malformed compile reply: " + DecodeErr);
  return Error::success();
}

Error DaemonClient::fuzz(const FuzzRequest &Req, FuzzResponse &Out) {
  std::string Reply;
  if (Error E = roundTrip(encodeFuzzRequest(Req), Reply))
    return E;
  if (Error E = errorFromReply(Reply))
    return E;
  std::string DecodeErr;
  if (!decodeFuzzResponse(Reply, Out, DecodeErr))
    return Error::make(ErrorCategory::Internal,
                       "malformed fuzz reply: " + DecodeErr);
  return Error::success();
}

Error DaemonClient::stats(std::string &JSONOut) {
  std::string Reply;
  if (Error E = roundTrip(encodeStatsRequest(), Reply))
    return E;
  if (Error E = errorFromReply(Reply))
    return E;
  StatsResponse Resp;
  std::string DecodeErr;
  if (!decodeStatsResponse(Reply, Resp, DecodeErr))
    return Error::make(ErrorCategory::Internal,
                       "malformed stats reply: " + DecodeErr);
  JSONOut = std::move(Resp.JSON);
  return Error::success();
}

Error DaemonClient::shutdownDaemon() {
  std::string Reply;
  if (Error E = roundTrip(encodeShutdownRequest(), Reply))
    return E;
  if (Error E = errorFromReply(Reply))
    return E;
  if (peekKind(Reply) != MessageKind::ShutdownResponse)
    return Error::make(ErrorCategory::Internal,
                       "unexpected reply to shutdown request");
  return Error::success();
}

Expected<int64_t> server::runFuzzSweepViaDaemons(
    const FuzzSweepOptions &Opts, const std::vector<std::string> &Sockets,
    const std::function<void(const SeedOutcome &)> &Consume) {
  if (Sockets.empty())
    return Error::make(ErrorCategory::IO, "no daemon sockets given");

  // Contiguous ranges keep delivery order trivial: shard i holds seeds
  // strictly before shard i+1, so concatenation IS ascending seed order.
  size_t NumShards = Sockets.size();
  if (Opts.Count >= 0 && static_cast<uint64_t>(Opts.Count) < NumShards)
    NumShards = Opts.Count == 0 ? 1 : static_cast<size_t>(Opts.Count);

  struct Shard {
    FuzzRequest Req;
    FuzzResponse Resp;
    Error Err = Error::success();
  };
  std::vector<Shard> Shards(NumShards);
  int64_t Base = Opts.FirstSeed;
  for (size_t I = 0; I != NumShards; ++I) {
    int64_t Quota = Opts.Count / static_cast<int64_t>(NumShards) +
                    (static_cast<int64_t>(I) <
                             Opts.Count % static_cast<int64_t>(NumShards)
                         ? 1
                         : 0);
    FuzzRequest &Req = Shards[I].Req;
    Req.Count = Quota;
    Req.FirstSeed = Base;
    Base += Quota;
    Req.Jobs = Opts.Jobs;
    Req.Engine = static_cast<uint8_t>(Opts.Engine);
    Req.ParityAll = Opts.ParityAll;
    Req.FaultProbability = Opts.FaultProbability;
    Req.FaultSeed = Opts.FaultSeed;
    Req.Strategy = static_cast<uint8_t>(Opts.Strategy);
    Req.IfConvert = Opts.IfConvert;
    Req.Unroll = Opts.Unroll;
    Req.UnrollFactor = Opts.UnrollFactor;
  }

  std::vector<std::thread> Threads;
  Threads.reserve(NumShards);
  for (size_t I = 0; I != NumShards; ++I)
    Threads.emplace_back([&Shards, &Sockets, I] {
      DaemonClient Client;
      if (Error E = Client.connect(Sockets[I])) {
        Shards[I].Err = E;
        return;
      }
      Shards[I].Err = Client.fuzz(Shards[I].Req, Shards[I].Resp);
    });
  for (std::thread &T : Threads)
    T.join();

  for (size_t I = 0; I != NumShards; ++I)
    if (Shards[I].Err)
      return Error::make(Shards[I].Err.category(),
                         "daemon '" + Sockets[I] +
                             "': " + Shards[I].Err.message());

  int64_t Failures = 0;
  for (const Shard &S : Shards)
    for (const SeedOutcome &Out : S.Resp.Outcomes) {
      if (!Out.Passed)
        ++Failures;
      Consume(Out);
    }
  return Failures;
}
