//===- server/ContentCache.cpp - Content-hash compile memoization ---------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "server/ContentCache.h"

#include "diag/Statistics.h"

using namespace lslp;
using namespace lslp::server;

LSLP_STATISTIC(NumCacheHits, "lslpd", "Compile requests served from cache");
LSLP_STATISTIC(NumCacheMisses, "lslpd", "Compile requests that missed cache");
LSLP_STATISTIC(NumCacheEvictions, "lslpd", "Cache entries evicted (LRU)");

uint64_t server::hashBytes(std::string_view Text, uint64_t Seed) {
  uint64_t H = Seed;
  for (unsigned char C : Text) {
    H ^= C;
    H *= 0x100000001b3;
  }
  return H;
}

uint64_t server::hashCanonicalModuleText(std::string_view IRText) {
  uint64_t H = 0xcbf29ce484222325;
  auto Feed = [&H](unsigned char C) {
    H ^= C;
    H *= 0x100000001b3;
  };
  size_t Pos = 0;
  while (Pos < IRText.size()) {
    size_t End = IRText.find('\n', Pos);
    if (End == std::string_view::npos)
      End = IRText.size();
    std::string_view Line = IRText.substr(Pos, End - Pos);
    Pos = End + (End < IRText.size() ? 1 : 0);

    // Drop everything after a ';' comment marker. The textual IR grammar
    // has no string literals, so ';' always starts a comment.
    size_t Semi = Line.find(';');
    if (Semi != std::string_view::npos)
      Line = Line.substr(0, Semi);
    // Trim trailing whitespace (including any '\r').
    while (!Line.empty() &&
           (Line.back() == ' ' || Line.back() == '\t' || Line.back() == '\r'))
      Line.remove_suffix(1);
    if (Line.empty())
      continue; // Blank (or comment-only) lines never affect the module.
    for (unsigned char C : Line)
      Feed(C);
    Feed('\n'); // Keep line structure: "a\nb" != "ab".
  }
  return H;
}

CacheKey server::cacheKeyFor(const CompileRequest &Req) {
  CacheKey Key;
  Key.ModuleHash = hashCanonicalModuleText(Req.ModuleText);
  Key.ConfigHash = hashBytes(Req.ConfigJSON);

  // Every field that shapes the response bytes participates in the shape
  // hash; InputName matters because parse diagnostics embed it.
  uint64_t H = 0xcbf29ce484222325;
  H = hashBytes(Req.InputName, H);
  auto FeedByte = [&H](uint8_t B) {
    H ^= B;
    H *= 0x100000001b3;
  };
  FeedByte(Req.Vectorize);
  FeedByte(Req.EarlyCSE);
  FeedByte(Req.Report);
  FeedByte(Req.PrintIR);
  FeedByte(Req.VerifyEach);
  FeedByte(Req.WantStats);
  FeedByte(Req.StatsJSON);
  FeedByte(static_cast<uint8_t>(Req.Remarks));
  // Jobs is deliberately excluded: the determinism contract makes output
  // byte-identical for any worker count, so it must not split the cache.
  uint64_t FaultBits;
  static_assert(sizeof(FaultBits) == sizeof(Req.FaultProbability));
  __builtin_memcpy(&FaultBits, &Req.FaultProbability, sizeof(FaultBits));
  for (int I = 0; I < 8; ++I)
    FeedByte(static_cast<uint8_t>(FaultBits >> (8 * I)));
  for (int I = 0; I < 8; ++I)
    FeedByte(static_cast<uint8_t>(Req.FaultSeed >> (8 * I)));
  Key.ShapeHash = H;
  return Key;
}

ContentCache::ContentCache(size_t Capacity)
    : Capacity(Capacity == 0 ? 1 : Capacity) {}

std::optional<CompileResponse> ContentCache::lookup(const CacheKey &Key) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Map.find(Key);
  if (It == Map.end()) {
    Misses.fetch_add(1, std::memory_order_relaxed);
    ++NumCacheMisses;
    return std::nullopt;
  }
  Hits.fetch_add(1, std::memory_order_relaxed);
  ++NumCacheHits;
  Order.splice(Order.begin(), Order, It->second);
  CompileResponse Response = It->second->second;
  Response.CacheHit = true;
  return Response;
}

void ContentCache::insert(const CacheKey &Key, const CompileResponse &Response) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Map.find(Key);
  if (It != Map.end()) {
    // Concurrent misses on the same key both insert; keep one entry.
    It->second->second = Response;
    Order.splice(Order.begin(), Order, It->second);
    return;
  }
  if (Order.size() >= Capacity) {
    Map.erase(Order.back().first);
    Order.pop_back();
    Evictions.fetch_add(1, std::memory_order_relaxed);
    ++NumCacheEvictions;
  }
  Order.emplace_front(Key, Response);
  Map.emplace(Key, Order.begin());
}

size_t ContentCache::entries() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Order.size();
}

std::string ContentCache::statsJSON() const {
  std::string S = "{";
  S += "\"capacity\":" + std::to_string(Capacity);
  S += ",\"entries\":" + std::to_string(entries());
  S += ",\"hits\":" + std::to_string(hits());
  S += ",\"misses\":" + std::to_string(misses());
  S += ",\"evictions\":" + std::to_string(evictions());
  S += "}";
  return S;
}
