//===- diag/Remark.cpp - Structured optimization remarks ----------------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "diag/Remark.h"

#include "support/OStream.h"

#include <cstdlib>

using namespace lslp;

const char *lslp::remarkKindName(RemarkKind Kind) {
  switch (Kind) {
  case RemarkKind::SeedFound:
    return "seed-found";
  case RemarkKind::SeedRejected:
    return "seed-rejected";
  case RemarkKind::NodeBuilt:
    return "node-built";
  case RemarkKind::GatherFallback:
    return "gather-fallback";
  case RemarkKind::MultiNodeFormed:
    return "multinode-formed";
  case RemarkKind::LookAheadScore:
    return "lookahead-score";
  case RemarkKind::ReorderChoice:
    return "reorder-choice";
  case RemarkKind::CostNode:
    return "cost-node";
  case RemarkKind::CostAccepted:
    return "cost-accepted";
  case RemarkKind::CostRejected:
    return "cost-rejected";
  case RemarkKind::SchedulerBailout:
    return "scheduler-bailout";
  case RemarkKind::ReductionFound:
    return "reduction-found";
  case RemarkKind::CSEHit:
    return "cse-hit";
  case RemarkKind::BudgetExhausted:
    return "budget-exhausted";
  case RemarkKind::GlobalPackingSolved:
    return "global-packing-solved";
  case RemarkKind::GlobalPackingBudget:
    return "global-packing-budget";
  case RemarkKind::IfConverted:
    return "if-converted";
  case RemarkKind::IfConversionSkipped:
    return "if-conversion-skipped";
  case RemarkKind::LoopUnrolled:
    return "loop-unrolled";
  case RemarkKind::LoopUnrollSkipped:
    return "loop-unroll-skipped";
  }
  return "unknown";
}

bool lslp::remarkKindFromName(std::string_view Name, RemarkKind &Out) {
  static constexpr RemarkKind AllKinds[] = {
      RemarkKind::SeedFound,       RemarkKind::SeedRejected,
      RemarkKind::NodeBuilt,       RemarkKind::GatherFallback,
      RemarkKind::MultiNodeFormed, RemarkKind::LookAheadScore,
      RemarkKind::ReorderChoice,   RemarkKind::CostNode,
      RemarkKind::CostAccepted,    RemarkKind::CostRejected,
      RemarkKind::SchedulerBailout, RemarkKind::ReductionFound,
      RemarkKind::CSEHit,           RemarkKind::BudgetExhausted,
      RemarkKind::GlobalPackingSolved, RemarkKind::GlobalPackingBudget,
      RemarkKind::IfConverted,          RemarkKind::IfConversionSkipped,
      RemarkKind::LoopUnrolled,         RemarkKind::LoopUnrollSkipped};
  for (RemarkKind K : AllKinds) {
    if (Name == remarkKindName(K)) {
      Out = K;
      return true;
    }
  }
  return false;
}

bool RemarkArg::operator==(const RemarkArg &O) const {
  if (Key != O.Key)
    return false;
  // Non-negative Int and UInt are the same value; fromJSON cannot tell
  // them apart (and does not need to).
  auto AsNonNegative = [](const RemarkArg &A, uint64_t &V) {
    if (A.Ty == Type::UInt) {
      V = A.UInt;
      return true;
    }
    if (A.Ty == Type::Int && A.Int >= 0) {
      V = static_cast<uint64_t>(A.Int);
      return true;
    }
    return false;
  };
  uint64_t A = 0, B = 0;
  if (AsNonNegative(*this, A) && AsNonNegative(O, B))
    return A == B;
  if (Ty != O.Ty)
    return false;
  switch (Ty) {
  case Type::String:
    return Str == O.Str;
  case Type::Int:
    return Int == O.Int;
  case Type::UInt:
    return UInt == O.UInt;
  case Type::Double:
    return FP == O.FP;
  case Type::Bool:
    return Flag == O.Flag;
  }
  return false;
}

void RemarkArg::printValue(OStream &OS) const {
  switch (Ty) {
  case Type::String:
    OS << Str;
    break;
  case Type::Int:
    OS << Int;
    break;
  case Type::UInt:
    OS << UInt;
    break;
  case Type::Double:
    OS << FP;
    break;
  case Type::Bool:
    OS << Flag;
    break;
  }
}

const RemarkArg *Remark::getArg(std::string_view Key) const {
  for (const RemarkArg &A : Args)
    if (A.Key == Key)
      return &A;
  return nullptr;
}

bool Remark::operator==(const Remark &O) const {
  return Kind == O.Kind && Pass == O.Pass && Function == O.Function &&
         Block == O.Block && InstIndex == O.InstIndex && Args == O.Args;
}

void Remark::printText(OStream &OS) const {
  OS << "remark: ";
  if (!Function.empty()) {
    OS << "@" << Function;
    if (!Block.empty())
      OS << "/" << Block;
    if (InstIndex >= 0)
      OS << "+" << InstIndex;
    OS << ": ";
  }
  OS << remarkKindName(Kind) << " [" << Pass << "]";
  for (const RemarkArg &A : Args) {
    OS << " " << A.Key << "=";
    A.printValue(OS);
  }
  OS << "\n";
}

void lslp::printJSONEscaped(OStream &OS, std::string_view Text) {
  for (char C : Text) {
    switch (C) {
    case '"':
      OS << "\\\"";
      break;
    case '\\':
      OS << "\\\\";
      break;
    case '\n':
      OS << "\\n";
      break;
    case '\t':
      OS << "\\t";
      break;
    case '\r':
      OS << "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        static const char Hex[] = "0123456789abcdef";
        OS << "\\u00" << Hex[(C >> 4) & 0xf] << Hex[C & 0xf];
      } else {
        OS << C;
      }
    }
  }
}

void Remark::printJSON(OStream &OS) const {
  OS << "{\"kind\":\"" << remarkKindName(Kind) << "\",\"pass\":\"";
  printJSONEscaped(OS, Pass);
  OS << "\",\"function\":\"";
  printJSONEscaped(OS, Function);
  OS << "\",\"block\":\"";
  printJSONEscaped(OS, Block);
  OS << "\",\"inst\":" << InstIndex << ",\"args\":{";
  for (size_t I = 0; I != Args.size(); ++I) {
    const RemarkArg &A = Args[I];
    if (I)
      OS << ",";
    OS << "\"";
    printJSONEscaped(OS, A.Key);
    OS << "\":";
    if (A.Ty == RemarkArg::Type::String) {
      OS << "\"";
      printJSONEscaped(OS, A.Str);
      OS << "\"";
    } else {
      A.printValue(OS);
    }
  }
  OS << "}}\n";
}

std::string Remark::toJSON() const {
  std::string Out;
  StringOStream OS(Out);
  printJSON(OS);
  return Out;
}

//===----------------------------------------------------------------------===//
// JSONL parse-back
//===----------------------------------------------------------------------===//

namespace {

/// Minimal recursive-descent parser for the exact subset printJSON emits.
class JSONCursor {
public:
  explicit JSONCursor(std::string_view Text) : Text(Text) {}

  bool atEnd() {
    skipWS();
    return Pos >= Text.size();
  }

  bool consume(char C) {
    skipWS();
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool peekIs(char C) {
    skipWS();
    return Pos < Text.size() && Text[Pos] == C;
  }

  bool parseString(std::string &Out) {
    skipWS();
    if (!consume('"'))
      return fail("expected '\"'");
    Out.clear();
    while (Pos < Text.size()) {
      char C = Text[Pos++];
      if (C == '"')
        return true;
      if (C != '\\') {
        Out.push_back(C);
        continue;
      }
      if (Pos >= Text.size())
        return fail("truncated escape");
      char E = Text[Pos++];
      switch (E) {
      case '"':
      case '\\':
      case '/':
        Out.push_back(E);
        break;
      case 'n':
        Out.push_back('\n');
        break;
      case 't':
        Out.push_back('\t');
        break;
      case 'r':
        Out.push_back('\r');
        break;
      case 'u': {
        if (Pos + 4 > Text.size())
          return fail("truncated \\u escape");
        unsigned V = 0;
        for (int K = 0; K != 4; ++K) {
          char H = Text[Pos++];
          V <<= 4;
          if (H >= '0' && H <= '9')
            V |= static_cast<unsigned>(H - '0');
          else if (H >= 'a' && H <= 'f')
            V |= static_cast<unsigned>(H - 'a' + 10);
          else if (H >= 'A' && H <= 'F')
            V |= static_cast<unsigned>(H - 'A' + 10);
          else
            return fail("bad \\u escape");
        }
        if (V > 0x7f)
          return fail("non-ASCII \\u escape unsupported");
        Out.push_back(static_cast<char>(V));
        break;
      }
      default:
        return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  /// Parses a scalar JSON value into a RemarkArg (key already set).
  bool parseValue(RemarkArg &Arg) {
    skipWS();
    if (Pos >= Text.size())
      return fail("expected value");
    char C = Text[Pos];
    if (C == '"') {
      Arg.Ty = RemarkArg::Type::String;
      return parseString(Arg.Str);
    }
    if (C == 't' || C == 'f') {
      std::string_view Rest = Text.substr(Pos);
      Arg.Ty = RemarkArg::Type::Bool;
      if (Rest.substr(0, 4) == "true") {
        Arg.Flag = true;
        Pos += 4;
        return true;
      }
      if (Rest.substr(0, 5) == "false") {
        Arg.Flag = false;
        Pos += 5;
        return true;
      }
      return fail("bad literal");
    }
    // Number: scan its extent, classify, then convert.
    size_t Start = Pos;
    bool SawDotOrExp = false;
    while (Pos < Text.size()) {
      char N = Text[Pos];
      if ((N >= '0' && N <= '9') || N == '-' || N == '+') {
        ++Pos;
      } else if (N == '.' || N == 'e' || N == 'E') {
        SawDotOrExp = true;
        ++Pos;
      } else {
        break;
      }
    }
    if (Pos == Start)
      return fail("expected number");
    std::string Num(Text.substr(Start, Pos - Start));
    if (SawDotOrExp) {
      Arg.Ty = RemarkArg::Type::Double;
      char *End = nullptr;
      Arg.FP = std::strtod(Num.c_str(), &End);
      return End && *End == '\0' ? true : fail("bad double");
    }
    char *End = nullptr;
    if (Num[0] == '-') {
      Arg.Ty = RemarkArg::Type::Int;
      Arg.Int = std::strtoll(Num.c_str(), &End, 10);
    } else {
      Arg.Ty = RemarkArg::Type::UInt;
      Arg.UInt = std::strtoull(Num.c_str(), &End, 10);
    }
    return End && *End == '\0' ? true : fail("bad integer");
  }

  const std::string &error() const { return Err; }

private:
  void skipWS() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool fail(const char *Msg) {
    if (Err.empty())
      Err = Msg;
    return false;
  }

  std::string_view Text;
  size_t Pos = 0;
  std::string Err;
};

} // namespace

bool Remark::fromJSON(std::string_view Line, Remark &Out, std::string &Err) {
  JSONCursor C(Line);
  auto Fail = [&](const std::string &Msg) {
    Err = Msg.empty() ? std::string("malformed remark JSON") : Msg;
    return false;
  };

  Out = Remark();
  if (!C.consume('{'))
    return Fail("expected '{'");
  bool First = true, SawKind = false;
  while (!C.peekIs('}')) {
    if (!First && !C.consume(','))
      return Fail(C.error());
    First = false;
    std::string Key;
    if (!C.parseString(Key) || !C.consume(':'))
      return Fail(C.error());
    if (Key == "args") {
      if (!C.consume('{'))
        return Fail("expected args object");
      bool FirstArg = true;
      while (!C.peekIs('}')) {
        if (!FirstArg && !C.consume(','))
          return Fail(C.error());
        FirstArg = false;
        RemarkArg Arg;
        if (!C.parseString(Arg.Key) || !C.consume(':') || !C.parseValue(Arg))
          return Fail(C.error());
        Out.Args.push_back(std::move(Arg));
      }
      C.consume('}');
      continue;
    }
    RemarkArg V;
    if (!C.parseValue(V))
      return Fail(C.error());
    if (Key == "kind") {
      if (V.Ty != RemarkArg::Type::String ||
          !remarkKindFromName(V.Str, Out.Kind))
        return Fail("unknown remark kind");
      SawKind = true;
    } else if (Key == "pass") {
      Out.Pass = std::move(V.Str);
    } else if (Key == "function") {
      Out.Function = std::move(V.Str);
    } else if (Key == "block") {
      Out.Block = std::move(V.Str);
    } else if (Key == "inst") {
      Out.InstIndex =
          V.Ty == RemarkArg::Type::Int ? V.Int : static_cast<int64_t>(V.UInt);
    } else {
      return Fail("unknown field '" + Key + "'");
    }
  }
  if (!C.consume('}'))
    return Fail("expected '}'");
  if (!C.atEnd())
    return Fail("trailing content after remark object");
  if (!SawKind)
    return Fail("missing 'kind' field");
  return true;
}
