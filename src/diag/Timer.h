//===- diag/Timer.h - Pass wall-time measurement ----------------*- C++ -*-===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Wall-clock timers for per-pass timing (`lslpc --time-passes`). A
/// TimerGroup owns named Timers; TimeRegion scopes a measurement:
///
///   TimerGroup TG("lslpc");
///   Timer &T = TG.getTimer("vectorize");
///   { TimeRegion R(&T); runPass(); }
///   TG.printText(outs());
///
/// Timing output is inherently nondeterministic, so it is kept strictly
/// separate from the remark stream (which must be byte-identical across
/// runs) and is never mixed into `--remarks` output.
///
//===----------------------------------------------------------------------===//

#ifndef LSLP_DIAG_TIMER_H
#define LSLP_DIAG_TIMER_H

#include <chrono>
#include <memory>
#include <string>
#include <vector>

namespace lslp {

class OStream;

/// Accumulating wall-clock timer. start()/stop() pairs may repeat; the
/// total and the activation count accumulate.
class Timer {
public:
  explicit Timer(std::string Name) : Name(std::move(Name)) {}

  const std::string &getName() const { return Name; }

  void start();
  void stop();
  bool isRunning() const { return Running; }

  /// Accumulated wall time in seconds (excludes a running activation).
  double seconds() const {
    return std::chrono::duration<double>(Total).count();
  }
  /// Number of completed start()/stop() activations.
  uint64_t activations() const { return Activations; }

  void reset();

private:
  std::string Name;
  std::chrono::steady_clock::duration Total{};
  std::chrono::steady_clock::time_point StartedAt{};
  uint64_t Activations = 0;
  bool Running = false;
};

/// A named set of timers, dumpable as a text table or one JSON object.
class TimerGroup {
public:
  explicit TimerGroup(std::string Name) : Name(std::move(Name)) {}

  const std::string &getName() const { return Name; }

  /// Returns the timer named \p Name, creating it on first use. Creation
  /// order is preserved in dumps (pipeline order, not alphabetical).
  Timer &getTimer(const std::string &Name);

  const std::vector<std::unique_ptr<Timer>> &timers() const { return Timers; }

  /// Text table: seconds, percent of group total, activations, name.
  void printText(OStream &OS) const;

  /// {"group":"...","timers":{"name":{"seconds":...,"activations":...}}}
  void printJSON(OStream &OS) const;

private:
  std::string Name;
  std::vector<std::unique_ptr<Timer>> Timers;
};

/// RAII measurement scope. A null timer makes the region a no-op, so call
/// sites can be unconditional:  TimeRegion R(Opts.Time ? &T : nullptr);
class TimeRegion {
public:
  explicit TimeRegion(Timer *T) : T(T) {
    if (T)
      T->start();
  }
  ~TimeRegion() {
    if (T)
      T->stop();
  }
  TimeRegion(const TimeRegion &) = delete;
  TimeRegion &operator=(const TimeRegion &) = delete;

private:
  Timer *T;
};

} // namespace lslp

#endif // LSLP_DIAG_TIMER_H
