//===- diag/Timer.cpp - Pass wall-time measurement ----------------------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "diag/Timer.h"

#include "diag/Remark.h"
#include "support/OStream.h"
#include "support/StringUtil.h"

#include <cassert>

using namespace lslp;

void Timer::start() {
  assert(!Running && "timer already running");
  Running = true;
  StartedAt = std::chrono::steady_clock::now();
}

void Timer::stop() {
  assert(Running && "timer not running");
  Running = false;
  Total += std::chrono::steady_clock::now() - StartedAt;
  ++Activations;
}

void Timer::reset() {
  Total = {};
  Activations = 0;
  Running = false;
}

Timer &TimerGroup::getTimer(const std::string &Name) {
  for (const auto &T : Timers)
    if (T->getName() == Name)
      return *T;
  Timers.push_back(std::make_unique<Timer>(Name));
  return *Timers.back();
}

void TimerGroup::printText(OStream &OS) const {
  double GroupTotal = 0.0;
  for (const auto &T : Timers)
    GroupTotal += T->seconds();
  OS << "=== " << Name << " timers (wall) ===\n";
  for (const auto &T : Timers) {
    double Pct = GroupTotal > 0.0 ? 100.0 * T->seconds() / GroupTotal : 0.0;
    OS.rightJustify(formatDouble(T->seconds(), 6), 10);
    OS << "s ";
    OS.rightJustify(formatDouble(Pct, 1), 5);
    OS << "% ";
    OS.rightJustify(std::to_string(T->activations()), 6);
    OS << "x  " << T->getName() << "\n";
  }
  OS.rightJustify(formatDouble(GroupTotal, 6), 10);
  OS << "s total\n";
}

void TimerGroup::printJSON(OStream &OS) const {
  OS << "{\"group\":\"";
  printJSONEscaped(OS, Name);
  OS << "\",\"timers\":{";
  for (size_t I = 0; I != Timers.size(); ++I) {
    const Timer &T = *Timers[I];
    if (I)
      OS << ",";
    OS << "\"";
    printJSONEscaped(OS, T.getName());
    OS << "\":{\"seconds\":" << T.seconds()
       << ",\"activations\":" << T.activations() << "}";
  }
  OS << "}}\n";
}
