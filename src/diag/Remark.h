//===- diag/Remark.h - Structured optimization remarks ----------*- C++ -*-===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Typed optimization-remark records: one record per decision the (L)SLP
/// pipeline takes (seed found, multi-node formed, look-ahead tie-break,
/// cost accept/reject, ...), carrying the pass, the enclosing function and
/// block, an anchor instruction index, and structured key/value arguments.
/// Remarks serialize to a human-readable text line and to one line of
/// deterministic JSON (JSONL); the JSON form parses back losslessly, which
/// the fuzz oracle and CI use as a determinism oracle.
///
/// Determinism contract: a remark must never embed pointers, timestamps or
/// any other run-varying data — two runs of the same pass on the same
/// module must produce byte-identical streams.
///
//===----------------------------------------------------------------------===//

#ifndef LSLP_DIAG_REMARK_H
#define LSLP_DIAG_REMARK_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace lslp {

class OStream;

/// Every decision point the pipeline reports. The names returned by
/// remarkKindName() are the stable external identifiers (JSON `kind`).
enum class RemarkKind : uint8_t {
  SeedFound,         ///< A store seed bundle was collected.
  SeedRejected,      ///< A store could not join any seed bundle.
  NodeBuilt,         ///< A vectorizable group node was formed.
  GatherFallback,    ///< A bundle degraded to a gather (with reason).
  MultiNodeFormed,   ///< LSLP coarsened a commutative chain (§4.2).
  LookAheadScore,    ///< Look-ahead tie-break among candidates (§4.4).
  ReorderChoice,     ///< Outcome of one operand-reordering run (§4.3).
  CostNode,          ///< Per-node cost breakdown.
  CostAccepted,      ///< Graph cost beat the threshold; vectorized.
  CostRejected,      ///< Graph cost missed the threshold; kept scalar.
  SchedulerBailout,  ///< Bundle unschedulable (dependence/cycle).
  ReductionFound,    ///< A horizontal reduction tree matched (§2.2).
  CSEHit,            ///< EarlyCSE replaced a redundant instruction.
  BudgetExhausted,   ///< A resource budget ran out; function kept scalar.
  GlobalPackingSolved, ///< Global solver picked a pack set (with cost delta).
  GlobalPackingBudget, ///< Global solver hit its candidate cap mid-search.
  IfConverted,         ///< A diamond/triangle collapsed into selects.
  IfConversionSkipped, ///< A branch shape matched but speculation was illegal.
  LoopUnrolled,        ///< A counted loop's body was replicated.
  LoopUnrollSkipped,   ///< A loop candidate was not unrolled (with reason).
};

/// Stable external name of \p Kind (e.g. "seed-found").
const char *remarkKindName(RemarkKind Kind);

/// Parses an external kind name; returns false if unknown.
bool remarkKindFromName(std::string_view Name, RemarkKind &Out);

/// One key/value argument of a remark. A closed tagged union: remarks are
/// data records, not format strings.
struct RemarkArg {
  enum class Type : uint8_t { String, Int, UInt, Double, Bool };

  std::string Key;
  Type Ty = Type::String;
  std::string Str;
  int64_t Int = 0;
  uint64_t UInt = 0;
  double FP = 0.0;
  bool Flag = false;

  RemarkArg() = default;
  RemarkArg(std::string Key, std::string Value)
      : Key(std::move(Key)), Ty(Type::String), Str(std::move(Value)) {}
  RemarkArg(std::string Key, const char *Value)
      : RemarkArg(std::move(Key), std::string(Value)) {}
  RemarkArg(std::string Key, int64_t Value)
      : Key(std::move(Key)), Ty(Type::Int), Int(Value) {}
  RemarkArg(std::string Key, int Value)
      : RemarkArg(std::move(Key), static_cast<int64_t>(Value)) {}
  RemarkArg(std::string Key, uint64_t Value)
      : Key(std::move(Key)), Ty(Type::UInt), UInt(Value) {}
  RemarkArg(std::string Key, unsigned Value)
      : RemarkArg(std::move(Key), static_cast<uint64_t>(Value)) {}
  RemarkArg(std::string Key, double Value)
      : Key(std::move(Key)), Ty(Type::Double), FP(Value) {}
  RemarkArg(std::string Key, bool Value)
      : Key(std::move(Key)), Ty(Type::Bool), Flag(Value) {}

  bool operator==(const RemarkArg &O) const;

  /// Renders just the value (no key), as it appears in both sinks.
  void printValue(OStream &OS) const;
};

/// One structured remark.
struct Remark {
  RemarkKind Kind = RemarkKind::SeedFound;
  /// Emitting component ("seed-collector", "graph-builder", ...).
  std::string Pass;
  /// Enclosing function name (empty when not applicable).
  std::string Function;
  /// Enclosing basic-block name (empty when not applicable).
  std::string Block;
  /// Index of the anchor instruction within its block at emission time;
  /// -1 when the remark has no single anchor.
  int64_t InstIndex = -1;
  /// Structured payload, in emission order.
  std::vector<RemarkArg> Args;

  Remark() = default;
  Remark(RemarkKind Kind, std::string Pass)
      : Kind(Kind), Pass(std::move(Pass)) {}

  /// \name Fluent builder helpers.
  /// @{
  Remark &&inFunction(std::string Name) && {
    Function = std::move(Name);
    return std::move(*this);
  }
  Remark &&inBlock(std::string Name) && {
    Block = std::move(Name);
    return std::move(*this);
  }
  Remark &&atIndex(int64_t Index) && {
    InstIndex = Index;
    return std::move(*this);
  }
  template <typename T> Remark &&arg(std::string Key, T Value) && {
    Args.emplace_back(std::move(Key), Value);
    return std::move(*this);
  }
  /// @}

  /// Returns the argument with \p Key, or null.
  const RemarkArg *getArg(std::string_view Key) const;

  bool operator==(const Remark &O) const;

  /// Human-readable single line:
  ///   remark: @fn/entry+3: multinode-formed [graph-builder] lanes=2 ...
  void printText(OStream &OS) const;

  /// One line of JSON (sorted, fixed field order), newline-terminated:
  ///   {"kind":"multinode-formed","pass":"graph-builder",...}
  void printJSON(OStream &OS) const;

  /// Convenience: the JSON line as a string (with trailing newline).
  std::string toJSON() const;

  /// Parses one JSONL line produced by printJSON back into \p Out.
  /// Returns false and sets \p Err on malformed input. Accepts only the
  /// subset of JSON printJSON emits (flat object, string/number/bool
  /// values, one nested "args" object).
  static bool fromJSON(std::string_view Line, Remark &Out, std::string &Err);
};

/// Writes \p Text JSON-escaped (quotes, backslashes, control characters).
void printJSONEscaped(OStream &OS, std::string_view Text);

} // namespace lslp

#endif // LSLP_DIAG_REMARK_H
