//===- diag/RemarkEngine.cpp - Remark sinks and streaming ---------------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "diag/RemarkEngine.h"

#include "support/OStream.h"

using namespace lslp;

RemarkStreamer::~RemarkStreamer() = default;

void RemarkEngine::emit(Remark R) {
  ++NumEmitted;
  ++Counts[static_cast<size_t>(R.Kind)];
  if (TextOS)
    R.printText(*TextOS);
  if (JSONOS)
    R.printJSON(*JSONOS);
  if (KeepRemarks)
    Kept.push_back(std::move(R));
}

std::string RemarkEngine::summary() const {
  std::string Out;
  StringOStream OS(Out);
  auto Item = [&](RemarkKind Kind, const char *Label) {
    uint64_t N = count(Kind);
    if (!N)
      return;
    if (!Out.empty())
      OS << ", ";
    OS << N << " " << Label;
  };
  Item(RemarkKind::SeedFound, "seed(s)");
  Item(RemarkKind::MultiNodeFormed, "multi-node(s)");
  Item(RemarkKind::ReductionFound, "reduction(s)");
  Item(RemarkKind::NodeBuilt, "group(s)");
  Item(RemarkKind::GatherFallback, "gather(s)");
  Item(RemarkKind::SchedulerBailout, "sched bailout(s)");
  Item(RemarkKind::LookAheadScore, "look-ahead tie-break(s)");
  Item(RemarkKind::GlobalPackingSolved, "global solve(s)");
  uint64_t Acc = count(RemarkKind::CostAccepted);
  uint64_t Rej = count(RemarkKind::CostRejected);
  if (Acc || Rej) {
    if (!Out.empty())
      OS << ", ";
    OS << "cost " << Acc << " accepted / " << Rej << " rejected";
  }
  if (Out.empty())
    OS << "no remarks";
  return Out;
}

void RemarkEngine::clear() {
  Kept.clear();
  NumEmitted = 0;
  for (uint64_t &C : Counts)
    C = 0;
}
