//===- diag/RemarkEngine.h - Remark sinks and streaming ---------*- C++ -*-===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The emission side of the remark subsystem. Passes hold a
/// `RemarkStreamer *` (via VectorizerConfig) and test it before building a
/// remark, so a disabled pipeline pays one null check per decision point:
///
///   if (RemarkStreamer *RS = Config.Remarks)
///     RS->emit(Remark(RemarkKind::SeedFound, "seed-collector")
///                  .inFunction(F.getName()) ... );
///
/// RemarkEngine is the concrete streamer: it forwards every remark to an
/// optional text sink and an optional JSONL sink, and can retain remarks
/// in memory for tests, the bench harness, and summaries.
///
//===----------------------------------------------------------------------===//

#ifndef LSLP_DIAG_REMARKENGINE_H
#define LSLP_DIAG_REMARKENGINE_H

#include "diag/Remark.h"

#include <vector>

namespace lslp {

class OStream;

/// Abstract remark consumer. Kept minimal so alternative sinks (a test
/// capture, a socket, a ring buffer) need only one method.
class RemarkStreamer {
public:
  virtual ~RemarkStreamer();

  /// Consumes one remark. Implementations must not reorder or drop
  /// remarks: stream order is part of the determinism contract.
  virtual void emit(Remark R) = 0;
};

/// The standard streamer: fan-out to a text sink, a JSONL sink, and an
/// in-memory buffer (each individually optional). Streams are borrowed,
/// not owned.
class RemarkEngine : public RemarkStreamer {
public:
  RemarkEngine() = default;

  /// Attaches the human-readable text sink (null detaches).
  void setTextStream(OStream *OS) { TextOS = OS; }

  /// Attaches the JSONL sink (null detaches).
  void setJSONStream(OStream *OS) { JSONOS = OS; }

  /// When set, every remark is also retained in memory (remarks()).
  void setKeepRemarks(bool Keep) { KeepRemarks = Keep; }

  void emit(Remark R) override;

  /// Remarks retained so far (setKeepRemarks(true) only).
  const std::vector<Remark> &remarks() const { return Kept; }

  /// Total remarks emitted (retained or not).
  uint64_t numEmitted() const { return NumEmitted; }

  /// Number of emitted remarks of \p Kind.
  uint64_t count(RemarkKind Kind) const {
    return Counts[static_cast<size_t>(Kind)];
  }

  /// One-line human summary of the stream so far, e.g.
  /// "3 seed(s), 2 multi-node(s), 1 reduction(s), 4 gather(s),
  ///  cost 2 accepted / 1 rejected" — the bench harness's row annotation.
  std::string summary() const;

  /// Forgets retained remarks and counts (sinks stay attached).
  void clear();

private:
  OStream *TextOS = nullptr;
  OStream *JSONOS = nullptr;
  bool KeepRemarks = false;
  std::vector<Remark> Kept;
  uint64_t NumEmitted = 0;
  uint64_t Counts[24] = {};
};

} // namespace lslp

#endif // LSLP_DIAG_REMARKENGINE_H
