//===- diag/Statistics.cpp - Pass statistics counters -------------------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "diag/Statistics.h"

#include "diag/Remark.h"
#include "support/OStream.h"

#include <algorithm>
#include <cstring>
#include <string>

using namespace lslp;

void Statistic::bump(uint64_t N) {
  // exchange() claims registration exactly once even when the first bumps
  // race on two worker threads.
  if (!Registered.load(std::memory_order_relaxed) &&
      !Registered.exchange(true))
    StatisticsRegistry::instance().add(this);
  Value.fetch_add(N, std::memory_order_relaxed);
}

StatisticsRegistry &StatisticsRegistry::instance() {
  static StatisticsRegistry R;
  return R;
}

void StatisticsRegistry::add(Statistic *S) {
  std::lock_guard<std::mutex> Lock(Mutex);
  Stats.push_back(S);
}

std::vector<const Statistic *> StatisticsRegistry::all() const {
  std::vector<const Statistic *> Sorted;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Sorted.assign(Stats.begin(), Stats.end());
  }
  std::sort(Sorted.begin(), Sorted.end(),
            [](const Statistic *A, const Statistic *B) {
              int C = std::strcmp(A->getComponent(), B->getComponent());
              if (C != 0)
                return C < 0;
              return std::strcmp(A->getName(), B->getName()) < 0;
            });
  return Sorted;
}

void StatisticsRegistry::resetAll() {
  std::lock_guard<std::mutex> Lock(Mutex);
  for (Statistic *S : Stats)
    S->Value.store(0, std::memory_order_relaxed);
}

bool StatisticsRegistry::anyNonZero() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  for (const Statistic *S : Stats)
    if (S->value() != 0)
      return true;
  return false;
}

void StatisticsRegistry::printText(OStream &OS) const {
  OS << "=== statistics ===\n";
  size_t ValueWidth = 1, ComponentWidth = 1;
  std::vector<const Statistic *> Sorted = all();
  for (const Statistic *S : Sorted) {
    if (S->value() == 0)
      continue;
    ValueWidth = std::max(ValueWidth, std::to_string(S->value()).size());
    ComponentWidth = std::max(ComponentWidth, std::strlen(S->getComponent()));
  }
  for (const Statistic *S : Sorted) {
    if (S->value() == 0)
      continue;
    OS.rightJustify(std::to_string(S->value()),
                    static_cast<unsigned>(ValueWidth));
    OS << " ";
    OS.leftJustify(S->getComponent(), static_cast<unsigned>(ComponentWidth));
    OS << " - " << S->getDesc() << "\n";
  }
}

void StatisticsRegistry::printJSON(OStream &OS) const {
  OS << "{";
  bool First = true;
  for (const Statistic *S : all()) {
    if (!First)
      OS << ",";
    First = false;
    OS << "\"";
    printJSONEscaped(OS, std::string(S->getComponent()) + "." + S->getName());
    OS << "\":" << S->value();
  }
  OS << "}\n";
}

ScopedStatsCapture::ScopedStatsCapture() {
  StatisticsRegistry &R = StatisticsRegistry::instance();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  Saved.reserve(R.Stats.size());
  for (Statistic *S : R.Stats) {
    Saved.emplace_back(S, S->Value.load(std::memory_order_relaxed));
    S->Value.store(0, std::memory_order_relaxed);
  }
}

ScopedStatsCapture::~ScopedStatsCapture() {
  // Counters registered during the capture are left at their in-scope
  // value — their pre-capture total was zero by definition.
  for (auto &[S, V] : Saved)
    S->Value.fetch_add(V, std::memory_order_relaxed);
}
