//===- diag/IRRemarks.h - Remark helpers anchored to IR ---------*- C++ -*-===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Header-only glue between the IR and the remark subsystem: builds a
/// Remark pre-filled with the enclosing function, block, and instruction
/// index of an anchor instruction. Indices (not value names or pointers)
/// keep the stream deterministic and stable under re-printing.
///
/// Only call these under an `if (RemarkStreamer *RS = ...)` guard: index
/// computation walks the block and must stay off the disabled-path.
///
//===----------------------------------------------------------------------===//

#ifndef LSLP_DIAG_IRREMARKS_H
#define LSLP_DIAG_IRREMARKS_H

#include "diag/Remark.h"
#include "ir/BasicBlock.h"
#include "ir/Function.h"
#include "ir/Instruction.h"

namespace lslp {

/// Position of \p I within its block (at call time), or -1.
inline int64_t remarkInstIndex(const Instruction *I) {
  const BasicBlock *BB = I ? I->getParent() : nullptr;
  if (!BB)
    return -1;
  int64_t Index = 0;
  for (const auto &P : *BB) {
    if (P.get() == I)
      return Index;
    ++Index;
  }
  return -1;
}

/// A Remark anchored at \p I (function/block/index filled in).
inline Remark remarkAt(RemarkKind Kind, std::string Pass,
                       const Instruction *I) {
  Remark R(Kind, std::move(Pass));
  if (const BasicBlock *BB = I ? I->getParent() : nullptr) {
    R.Block = BB->getName();
    if (const Function *F = BB->getParent())
      R.Function = F->getName();
    R.InstIndex = remarkInstIndex(I);
  }
  return R;
}

/// A Remark anchored at a block (function/block filled in, no index).
inline Remark remarkIn(RemarkKind Kind, std::string Pass,
                       const BasicBlock &BB) {
  Remark R(Kind, std::move(Pass));
  R.Block = BB.getName();
  if (const Function *F = BB.getParent())
    R.Function = F->getName();
  return R;
}

} // namespace lslp

#endif // LSLP_DIAG_IRREMARKS_H
