//===- diag/Statistics.h - Pass statistics counters -------------*- C++ -*-===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// LLVM-STATISTIC-style counters. A compilation unit declares a counter at
/// namespace scope and bumps it at the decision point:
///
///   LSLP_STATISTIC(NumSeedsFound, "seed-collector",
///                  "Number of store seed bundles collected");
///   ...
///   ++NumSeedsFound;
///
/// Counters self-register in a process-wide registry on first use and can
/// be dumped as an aligned text table or JSON (`lslpc --stats[=json]`),
/// and reset between runs (`StatisticsRegistry::resetAll()`), which the
/// driver uses so multi-module sessions report per-module numbers.
///
/// Thread-safety: counter bumps are relaxed atomic adds and registration
/// is mutex-guarded, so the parallel vectorization/fuzzing drivers can
/// bump freely from worker threads. Addition commutes, so the totals a
/// parallel run reports are identical to the serial run's; the dump order
/// is sorted by (component, name), independent of registration order.
///
//===----------------------------------------------------------------------===//

#ifndef LSLP_DIAG_STATISTICS_H
#define LSLP_DIAG_STATISTICS_H

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

namespace lslp {

class OStream;

/// One named counter. Cheap to bump (one integer add; registration happens
/// once, on the first bump or read).
class Statistic {
public:
  Statistic(const char *Component, const char *Name, const char *Desc)
      : Component(Component), Name(Name), Desc(Desc) {}

  const char *getComponent() const { return Component; }
  const char *getName() const { return Name; }
  const char *getDesc() const { return Desc; }
  uint64_t value() const { return Value.load(std::memory_order_relaxed); }

  Statistic &operator++() {
    bump(1);
    return *this;
  }
  Statistic &operator+=(uint64_t N) {
    bump(N);
    return *this;
  }

  /// Sets the counter to the maximum of its current value and \p N.
  void updateMax(uint64_t N) {
    bump(0);
    uint64_t Cur = Value.load(std::memory_order_relaxed);
    while (N > Cur &&
           !Value.compare_exchange_weak(Cur, N, std::memory_order_relaxed)) {
    }
  }

private:
  friend class StatisticsRegistry;
  friend class ScopedStatsCapture;
  void bump(uint64_t N);

  const char *Component;
  const char *Name;
  const char *Desc;
  std::atomic<uint64_t> Value{0};
  std::atomic<bool> Registered{false};
};

/// Process-wide registry of every Statistic that has been touched.
class StatisticsRegistry {
public:
  static StatisticsRegistry &instance();

  /// Registered counters sorted by (component, name) — the deterministic
  /// dump order.
  std::vector<const Statistic *> all() const;

  /// Zeroes every registered counter (registration survives).
  void resetAll();

  /// True when any registered counter is non-zero.
  bool anyNonZero() const;

  /// Aligned, human-readable table of all non-zero counters.
  void printText(OStream &OS) const;

  /// Single deterministic JSON object:
  ///   {"component.name":value,...} sorted by key, including zeros.
  void printJSON(OStream &OS) const;

private:
  friend class Statistic;
  friend class ScopedStatsCapture;
  void add(Statistic *S);

  mutable std::mutex Mutex;
  std::vector<Statistic *> Stats;
};

/// Isolates the counters bumped inside a scope: on construction every
/// registered counter's value is saved and zeroed; on destruction the
/// saved values are added back, so the registry's cumulative totals are
/// unchanged by the capture. While the scope is alive, printText()/
/// printJSON() report exactly the bumps made since construction — this is
/// how the compile server produces per-request statistics that are
/// byte-identical to a fresh single-compile process.
///
/// Captures do not nest and are not concurrency-safe against other
/// captures or readers: the compile server serializes stats-requesting
/// compiles behind an exclusive lock (see server/CompileService.h).
class ScopedStatsCapture {
public:
  ScopedStatsCapture();
  ~ScopedStatsCapture();
  ScopedStatsCapture(const ScopedStatsCapture &) = delete;
  ScopedStatsCapture &operator=(const ScopedStatsCapture &) = delete;

private:
  std::vector<std::pair<Statistic *, uint64_t>> Saved;
};

} // namespace lslp

/// Declares a translation-unit-local statistic named \p Var.
#define LSLP_STATISTIC(Var, Component, Desc)                                   \
  static ::lslp::Statistic Var(Component, #Var, Desc)

#endif // LSLP_DIAG_STATISTICS_H
