//===- parser/Lexer.h - Textual IR lexer ------------------------*- C++ -*-===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokenizer for the textual IR dialect. Produces the full token stream up
/// front so the parser can look ahead (used to pre-create basic blocks for
/// forward branch references).
///
//===----------------------------------------------------------------------===//

#ifndef LSLP_PARSER_LEXER_H
#define LSLP_PARSER_LEXER_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace lslp {

/// One lexical token.
struct Token {
  enum Kind : uint8_t {
    Ident,     ///< bare word: define, add, i64, entry, ...
    LocalId,   ///< %name
    GlobalId,  ///< @name
    IntLit,    ///< 123, -4
    FloatLit,  ///< 1.5, -2e3
    StrLit,    ///< "text" (content without quotes)
    Comma,
    Equal,
    Colon,
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Less,
    Greater,
    EndOfFile,
  };

  Kind TokKind = EndOfFile;
  std::string Text;    ///< Identifier/literal text (sigils stripped).
  int64_t IntValue = 0;
  double FloatValue = 0.0;
  unsigned Line = 0; ///< 1-based source line.
  unsigned Col = 0;  ///< 1-based column of the token's first character.

  bool is(Kind K) const { return TokKind == K; }
  /// True for an Ident token with exactly this spelling.
  bool isIdent(std::string_view S) const {
    return TokKind == Ident && Text == S;
  }
};

/// Tokenizes \p Src. On a lexical error, returns false and sets \p Err.
/// Comments run from ';' to end of line.
bool tokenize(std::string_view Src, std::vector<Token> &Out, std::string &Err);

} // namespace lslp

#endif // LSLP_PARSER_LEXER_H
