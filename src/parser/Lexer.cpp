//===- parser/Lexer.cpp - Textual IR lexer -----------------------------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "parser/Lexer.h"

#include <cctype>
#include <cstdlib>

using namespace lslp;

namespace {

bool isIdentChar(char C) {
  return std::isalnum(static_cast<unsigned char>(C)) || C == '_' || C == '.' ||
         C == '-';
}

bool isIdentStart(char C) {
  return std::isalpha(static_cast<unsigned char>(C)) || C == '_' || C == '.';
}

} // namespace

bool lslp::tokenize(std::string_view Src, std::vector<Token> &Out,
                    std::string &Err) {
  unsigned Line = 1;
  size_t I = 0, N = Src.size();
  size_t LineStart = 0; // Byte offset of the current line's first column.

  // 1-based column of offset \p At on the current line.
  auto colOf = [&](size_t At) {
    return static_cast<unsigned>(At - LineStart + 1);
  };

  auto push = [&](Token::Kind K, std::string Text = "") {
    Token T;
    T.TokKind = K;
    T.Text = std::move(Text);
    T.Line = Line;
    T.Col = colOf(I);
    Out.push_back(std::move(T));
  };

  while (I < N) {
    char C = Src[I];
    if (C == '\n') {
      ++Line;
      ++I;
      LineStart = I;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(C))) {
      ++I;
      continue;
    }
    if (C == ';') { // Comment to end of line.
      while (I < N && Src[I] != '\n')
        ++I;
      continue;
    }
    switch (C) {
    case ',':
      push(Token::Comma);
      ++I;
      continue;
    case '=':
      push(Token::Equal);
      ++I;
      continue;
    case ':':
      push(Token::Colon);
      ++I;
      continue;
    case '(':
      push(Token::LParen);
      ++I;
      continue;
    case ')':
      push(Token::RParen);
      ++I;
      continue;
    case '{':
      push(Token::LBrace);
      ++I;
      continue;
    case '}':
      push(Token::RBrace);
      ++I;
      continue;
    case '[':
      push(Token::LBracket);
      ++I;
      continue;
    case ']':
      push(Token::RBracket);
      ++I;
      continue;
    case '<':
      push(Token::Less);
      ++I;
      continue;
    case '>':
      push(Token::Greater);
      ++I;
      continue;
    default:
      break;
    }

    if (C == '%' || C == '@') {
      size_t Start = ++I;
      while (I < N && isIdentChar(Src[I]))
        ++I;
      if (I == Start) {
        Err = "line " + std::to_string(Line) + ": empty identifier after '" +
              C + "'";
        return false;
      }
      Token T;
      T.TokKind = C == '%' ? Token::LocalId : Token::GlobalId;
      T.Text = std::string(Src.substr(Start, I - Start));
      T.Line = Line;
      T.Col = colOf(Start - 1);
      Out.push_back(std::move(T));
      continue;
    }

    if (C == '"') {
      size_t Start = ++I;
      while (I < N && Src[I] != '"')
        ++I;
      if (I == N) {
        Err = "line " + std::to_string(Line) + ": unterminated string";
        return false;
      }
      Token T;
      T.TokKind = Token::StrLit;
      T.Text = std::string(Src.substr(Start, I - Start));
      T.Line = Line;
      T.Col = colOf(Start - 1);
      Out.push_back(std::move(T));
      ++I; // Closing quote.
      continue;
    }

    // Numbers: [-]digits[.digits][e[+-]digits]
    if (std::isdigit(static_cast<unsigned char>(C)) ||
        (C == '-' && I + 1 < N &&
         std::isdigit(static_cast<unsigned char>(Src[I + 1])))) {
      size_t Start = I;
      if (C == '-')
        ++I;
      while (I < N && std::isdigit(static_cast<unsigned char>(Src[I])))
        ++I;
      bool IsFloat = false;
      if (I < N && Src[I] == '.') {
        IsFloat = true;
        ++I;
        while (I < N && std::isdigit(static_cast<unsigned char>(Src[I])))
          ++I;
      }
      if (I < N && (Src[I] == 'e' || Src[I] == 'E')) {
        IsFloat = true;
        ++I;
        if (I < N && (Src[I] == '+' || Src[I] == '-'))
          ++I;
        while (I < N && std::isdigit(static_cast<unsigned char>(Src[I])))
          ++I;
      }
      std::string Text(Src.substr(Start, I - Start));
      Token T;
      T.Line = Line;
      T.Col = colOf(Start);
      T.Text = Text;
      if (IsFloat) {
        T.TokKind = Token::FloatLit;
        T.FloatValue = std::strtod(Text.c_str(), nullptr);
      } else {
        T.TokKind = Token::IntLit;
        T.IntValue = std::strtoll(Text.c_str(), nullptr, 10);
      }
      Out.push_back(std::move(T));
      continue;
    }

    if (isIdentStart(C)) {
      size_t Start = I;
      while (I < N && isIdentChar(Src[I]))
        ++I;
      Token T;
      T.TokKind = Token::Ident;
      T.Text = std::string(Src.substr(Start, I - Start));
      T.Line = Line;
      T.Col = colOf(Start);
      Out.push_back(std::move(T));
      continue;
    }

    Err = "line " + std::to_string(Line) + ": unexpected character '" +
          std::string(1, C) + "'";
    return false;
  }

  push(Token::EndOfFile);
  return true;
}
