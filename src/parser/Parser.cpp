//===- parser/Parser.cpp - Textual IR parser ---------------------------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "parser/Parser.h"

#include "ir/BasicBlock.h"
#include "ir/Constants.h"
#include "ir/Context.h"
#include "ir/Function.h"
#include "ir/IRBuilder.h"
#include "ir/Instruction.h"
#include "ir/Module.h"
#include "parser/Lexer.h"
#include "support/Debug.h"

#include <map>
#include <optional>

using namespace lslp;

namespace {

/// Parser state for one module. Errors are reported by setting ErrMsg and
/// returning false/null up the call chain (no exceptions).
class Parser {
public:
  Parser(std::vector<Token> Tokens, Context &Ctx)
      : Tokens(std::move(Tokens)), Ctx(Ctx) {}

  std::unique_ptr<Module> run(ParseDiagnostic &Diag) {
    std::unique_ptr<Module> M = parseModule();
    if (!M) {
      Diag.Line = ErrLine;
      Diag.Col = ErrCol;
      Diag.Message = ErrMsg;
    }
    return M;
  }

private:
  //===--------------------------------------------------------------------===//
  // Token plumbing
  //===--------------------------------------------------------------------===//

  const Token &peek(unsigned Ahead = 0) const {
    size_t I = Pos + Ahead;
    return I < Tokens.size() ? Tokens[I] : Tokens.back();
  }
  Token next() { return Tokens[std::min(Pos++, Tokens.size() - 1)]; }

  bool error(const std::string &Msg) {
    if (ErrMsg.empty()) {
      ErrMsg = Msg;
      ErrLine = peek().Line;
      ErrCol = peek().Col;
    }
    return false;
  }

  /// Error anchored at an explicit source position (fixup patching runs
  /// after the cursor has moved past the offending token).
  bool errorAt(unsigned Line, unsigned Col, const std::string &Msg) {
    if (ErrMsg.empty()) {
      ErrMsg = Msg;
      ErrLine = Line;
      ErrCol = Col;
    }
    return false;
  }

  bool expect(Token::Kind K, const char *What) {
    if (!peek().is(K))
      return error(std::string("expected ") + What);
    next();
    return true;
  }

  bool expectIdent(std::string_view S) {
    if (!peek().isIdent(S))
      return error("expected '" + std::string(S) + "'");
    next();
    return true;
  }

  //===--------------------------------------------------------------------===//
  // Types
  //===--------------------------------------------------------------------===//

  /// type := void | ptr | float | double | iN | '<' N 'x' type '>'
  Type *parseType() {
    if (peek().is(Token::Less)) {
      next();
      if (!peek().is(Token::IntLit)) {
        error("expected vector lane count");
        return nullptr;
      }
      int64_t Lanes = next().IntValue;
      if (Lanes < 2) {
        error("vector lane count must be >= 2");
        return nullptr;
      }
      if (!expectIdent("x"))
        return nullptr;
      Type *Elem = parseType();
      if (!Elem)
        return nullptr;
      if (!expect(Token::Greater, "'>'"))
        return nullptr;
      return Ctx.getVectorTy(Elem, static_cast<unsigned>(Lanes));
    }
    if (!peek().is(Token::Ident)) {
      error("expected a type");
      return nullptr;
    }
    std::string Name = next().Text;
    if (Name == "void")
      return Ctx.getVoidTy();
    if (Name == "ptr")
      return Ctx.getPtrTy();
    if (Name == "float")
      return Ctx.getFloatTy();
    if (Name == "double")
      return Ctx.getDoubleTy();
    if (Name.size() > 1 && Name[0] == 'i') {
      unsigned Width = 0;
      for (size_t I = 1; I < Name.size(); ++I) {
        if (Name[I] < '0' || Name[I] > '9') {
          error("unknown type '" + Name + "'");
          return nullptr;
        }
        Width = Width * 10 + static_cast<unsigned>(Name[I] - '0');
      }
      if (Width < 1 || Width > 64) {
        error("unsupported integer width in '" + Name + "'");
        return nullptr;
      }
      return Ctx.getIntTy(Width);
    }
    error("unknown type '" + Name + "'");
    return nullptr;
  }

  //===--------------------------------------------------------------------===//
  // Values
  //===--------------------------------------------------------------------===//

  struct Fixup {
    Instruction *Inst;
    unsigned OperandNo;
    std::string Name;
    Type *ExpectedTy;
    unsigned Line;
    unsigned Col;
  };

  /// Parses a value reference of (scalar or vector) type \p Ty. For local
  /// names not yet defined, records a fixup and returns a typed undef
  /// placeholder.
  Value *parseValue(Type *Ty) {
    const Token &T = peek();
    // Constant vector literal: '<' elemty lit, elemty lit, ... '>'.
    if (T.is(Token::Less)) {
      const auto *VT = dyn_cast<VectorType>(Ty);
      if (!VT) {
        error("vector literal where a '" + Ty->getName() +
              "' value was expected");
        return nullptr;
      }
      next();
      std::vector<Constant *> Elements;
      while (true) {
        Type *ElemTy = parseType();
        if (!ElemTy)
          return nullptr;
        if (ElemTy != VT->getElementType()) {
          error("vector literal element type mismatch");
          return nullptr;
        }
        Value *Elem = parseValue(ElemTy);
        if (!Elem)
          return nullptr;
        // A local name here would have produced a forward-reference
        // placeholder (which is itself a Constant); reject it explicitly.
        if (PendingFixup) {
          PendingFixup.reset();
          error("vector literal elements must be constants");
          return nullptr;
        }
        auto *C = dyn_cast<Constant>(Elem);
        if (!C) {
          error("vector literal elements must be constants");
          return nullptr;
        }
        Elements.push_back(C);
        if (peek().is(Token::Comma)) {
          next();
          continue;
        }
        break;
      }
      if (!expect(Token::Greater, "'>'"))
        return nullptr;
      if (Elements.size() != VT->getNumElements()) {
        error("vector literal lane count mismatch");
        return nullptr;
      }
      return Ctx.getConstantVector(Elements);
    }
    switch (T.TokKind) {
    case Token::IntLit: {
      auto *IntTy = dyn_cast<IntegerType>(Ty);
      if (!IntTy) {
        error("integer literal where a '" + Ty->getName() +
              "' value was expected");
        return nullptr;
      }
      return Ctx.getConstantInt(IntTy, static_cast<uint64_t>(next().IntValue));
    }
    case Token::FloatLit: {
      if (!Ty->isFloatingPointTy()) {
        error("floating literal where a '" + Ty->getName() +
              "' value was expected");
        return nullptr;
      }
      return Ctx.getConstantFP(Ty, next().FloatValue);
    }
    case Token::GlobalId: {
      GlobalArray *G = M->getGlobal(T.Text);
      if (!G) {
        error("unknown global '@" + T.Text + "'");
        return nullptr;
      }
      next();
      return G;
    }
    case Token::LocalId: {
      auto It = Locals.find(T.Text);
      if (It != Locals.end()) {
        if (It->second->getType() != Ty) {
          error("'%" + T.Text + "' has type " +
                It->second->getType()->getName() + ", expected " +
                Ty->getName());
          return nullptr;
        }
        next();
        return It->second;
      }
      // Forward reference: placeholder patched after the body is parsed.
      PendingFixup = Fixup{nullptr, 0, T.Text, Ty, T.Line, T.Col};
      next();
      return Ctx.getUndef(Ty);
    }
    case Token::Ident:
      if (T.Text == "undef") {
        next();
        return Ctx.getUndef(Ty);
      }
      [[fallthrough]];
    default:
      error("expected a value");
      return nullptr;
    }
  }

  /// Parses "<type> <value>".
  Value *parseTypedValue() {
    Type *Ty = parseType();
    if (!Ty)
      return nullptr;
    return parseValue(Ty);
  }

  /// Registers the fixup recorded by the most recent parseValue (if any)
  /// against operand \p OperandNo of \p I.
  void commitFixup(Instruction *I, unsigned OperandNo) {
    if (!PendingFixup)
      return;
    PendingFixup->Inst = I;
    PendingFixup->OperandNo = OperandNo;
    Fixups.push_back(*PendingFixup);
    PendingFixup.reset();
  }

  /// Wrapper: parse an operand of type \p Ty destined for operand slot
  /// \p OperandNo of the instruction under construction; fixups are
  /// committed by the caller via attachOperands.
  struct ParsedOp {
    Value *V = nullptr;
    std::optional<Fixup> Fx;
  };

  ParsedOp parseOperand(Type *Ty) {
    ParsedOp Op;
    Op.V = parseValue(Ty);
    if (PendingFixup) {
      Op.Fx = *PendingFixup;
      PendingFixup.reset();
    }
    return Op;
  }

  void noteFixup(Instruction *I, unsigned OperandNo, const ParsedOp &Op) {
    if (!Op.Fx)
      return;
    Fixup F = *Op.Fx;
    F.Inst = I;
    F.OperandNo = OperandNo;
    Fixups.push_back(F);
  }

  //===--------------------------------------------------------------------===//
  // Module structure
  //===--------------------------------------------------------------------===//

  std::unique_ptr<Module> parseModule() {
    std::string ModuleName = "module";
    if (peek().isIdent("module")) {
      next();
      if (!peek().is(Token::StrLit)) {
        error("expected module name string");
        return nullptr;
      }
      ModuleName = next().Text;
    }
    auto Mod = std::make_unique<Module>(Ctx, ModuleName);
    M = Mod.get();
    while (!peek().is(Token::EndOfFile)) {
      if (peek().isIdent("global")) {
        if (!parseGlobal())
          return nullptr;
        continue;
      }
      if (peek().isIdent("define")) {
        if (!parseFunction())
          return nullptr;
        continue;
      }
      error("expected 'global' or 'define'");
      return nullptr;
    }
    return Mod;
  }

  /// global @Name = [ N x type ]
  bool parseGlobal() {
    next(); // 'global'
    if (!peek().is(Token::GlobalId))
      return error("expected global name");
    std::string Name = next().Text;
    if (!expect(Token::Equal, "'='") || !expect(Token::LBracket, "'['"))
      return false;
    if (!peek().is(Token::IntLit))
      return error("expected element count");
    int64_t Count = next().IntValue;
    if (Count <= 0)
      return error("global element count must be positive");
    if (!expectIdent("x"))
      return false;
    Type *ElemTy = parseType();
    if (!ElemTy)
      return false;
    if (!expect(Token::RBracket, "']'"))
      return false;
    if (M->getGlobal(Name))
      return error("duplicate global '@" + Name + "'");
    M->createGlobal(Name, ElemTy, static_cast<uint64_t>(Count));
    return true;
  }

  /// define type @name(params) { blocks }
  bool parseFunction() {
    next(); // 'define'
    Type *RetTy = parseType();
    if (!RetTy)
      return false;
    if (!peek().is(Token::GlobalId))
      return error("expected function name");
    std::string Name = next().Text;
    if (M->getFunction(Name))
      return error("duplicate function '@" + Name + "'");
    if (!expect(Token::LParen, "'('"))
      return false;
    std::vector<Type *> ArgTypes;
    std::vector<std::string> ArgNames;
    if (!peek().is(Token::RParen)) {
      while (true) {
        Type *ArgTy = parseType();
        if (!ArgTy)
          return false;
        if (!peek().is(Token::LocalId))
          return error("expected argument name");
        ArgTypes.push_back(ArgTy);
        ArgNames.push_back(next().Text);
        if (peek().is(Token::Comma)) {
          next();
          continue;
        }
        break;
      }
    }
    if (!expect(Token::RParen, "')'") || !expect(Token::LBrace, "'{'"))
      return false;

    F = Function::create(M, Name, RetTy, ArgTypes, ArgNames);
    Locals.clear();
    Blocks.clear();
    Fixups.clear();
    for (unsigned I = 0, E = F->getNumArgs(); I != E; ++I)
      Locals[F->getArg(I)->getName()] = F->getArg(I);

    // Pre-scan for labels so forward branches resolve: a label is an
    // Ident ':' pair (the only place a colon appears inside a body).
    for (size_t I = Pos; I + 1 < Tokens.size() && !Tokens[I].is(Token::RBrace);
         ++I) {
      if (Tokens[I].is(Token::Ident) && Tokens[I + 1].is(Token::Colon)) {
        if (Blocks.count(Tokens[I].Text))
          return error("duplicate block label '" + Tokens[I].Text + "'");
        Blocks[Tokens[I].Text] = BasicBlock::create(Ctx, Tokens[I].Text, F);
      }
    }
    if (Blocks.empty())
      return error("function body has no basic blocks");

    // Parse block bodies.
    CurBB = nullptr;
    while (!peek().is(Token::RBrace)) {
      if (peek().is(Token::EndOfFile))
        return error("unterminated function body");
      if (peek().is(Token::Ident) && peek(1).is(Token::Colon)) {
        CurBB = Blocks[next().Text];
        next(); // ':'
        continue;
      }
      if (!CurBB)
        return error("instruction before the first block label");
      if (!parseInstruction())
        return false;
    }
    next(); // '}'

    // Patch forward references.
    for (const Fixup &Fx : Fixups) {
      auto It = Locals.find(Fx.Name);
      if (It == Locals.end())
        return errorAt(Fx.Line, Fx.Col,
                       "use of undefined value '%" + Fx.Name + "'");
      if (It->second->getType() != Fx.ExpectedTy)
        return errorAt(Fx.Line, Fx.Col,
                       "'%" + Fx.Name + "' has type " +
                           It->second->getType()->getName() + ", expected " +
                           Fx.ExpectedTy->getName());
      Fx.Inst->setOperand(Fx.OperandNo, It->second);
    }
    return true;
  }

  //===--------------------------------------------------------------------===//
  // Instructions
  //===--------------------------------------------------------------------===//

  bool defineLocal(const std::string &Name, Value *V) {
    if (!Locals.insert({Name, V}).second)
      return error("redefinition of '%" + Name + "'");
    return true;
  }

  bool parseInstruction() {
    std::string ResultName;
    bool HasResult = false;
    if (peek().is(Token::LocalId)) {
      ResultName = next().Text;
      HasResult = true;
      if (!expect(Token::Equal, "'='"))
        return false;
    }
    if (!peek().is(Token::Ident))
      return error("expected an opcode");
    Token OpcTok = next();
    const std::string &Opc = OpcTok.Text;

    Instruction *I = nullptr;
    if (Opc == "load")
      I = parseLoad();
    else if (Opc == "store")
      I = parseStore();
    else if (Opc == "gep")
      I = parseGEP();
    else if (Opc == "icmp")
      I = parseICmp();
    else if (Opc == "select")
      I = parseSelect();
    else if (Opc == "insertelement")
      I = parseInsertElement();
    else if (Opc == "extractelement")
      I = parseExtractElement();
    else if (Opc == "shufflevector")
      I = parseShuffleVector();
    else if (Opc == "phi")
      I = parsePhi();
    else if (Opc == "br")
      I = parseBr();
    else if (Opc == "ret")
      I = parseRet();
    else if (std::optional<ValueID> CastOpc = castOpcodeFromName(Opc))
      I = parseCast(*CastOpc);
    else if (std::optional<ValueID> BinOpc = binaryOpcodeFromName(Opc))
      I = parseBinary(*BinOpc);
    else {
      error("unknown opcode '" + Opc + "'");
      return false;
    }
    if (!I)
      return false;

    if (HasResult) {
      if (I->getType()->isVoidTy())
        return error("void instruction cannot define '%" + ResultName + "'");
      I->setName(ResultName);
      if (!defineLocal(ResultName, I))
        return false;
    }
    return true;
  }

  static std::optional<ValueID> castOpcodeFromName(const std::string &Name) {
    static const std::pair<const char *, ValueID> Table[] = {
        {"sext", ValueID::SExt},     {"zext", ValueID::ZExt},
        {"trunc", ValueID::Trunc},   {"sitofp", ValueID::SIToFP},
        {"fptosi", ValueID::FPToSI},
    };
    for (const auto &[N, ID] : Table)
      if (Name == N)
        return ID;
    return std::nullopt;
  }

  /// <castop> <srcty> <val> to <destty>
  Instruction *parseCast(ValueID Opc) {
    Type *SrcTy = parseType();
    if (!SrcTy)
      return nullptr;
    ParsedOp Src = parseOperand(SrcTy);
    if (!Src.V)
      return nullptr;
    if (!expectIdent("to"))
      return nullptr;
    Type *DestTy = parseType();
    if (!DestTy)
      return nullptr;
    if (!CastInst::castIsValid(Opc, SrcTy, DestTy)) {
      error(std::string("invalid ") + Instruction::getOpcodeName(Opc) +
            " from " + SrcTy->getName() + " to " + DestTy->getName());
      return nullptr;
    }
    auto *I = CastInst::create(Opc, Src.V, DestTy);
    noteFixup(I, 0, Src);
    return append(I);
  }

  static std::optional<ValueID> binaryOpcodeFromName(const std::string &Name) {
    static const std::pair<const char *, ValueID> Table[] = {
        {"add", ValueID::Add},   {"sub", ValueID::Sub},
        {"mul", ValueID::Mul},   {"sdiv", ValueID::SDiv},
        {"udiv", ValueID::UDiv}, {"and", ValueID::And},
        {"srem", ValueID::SRem}, {"urem", ValueID::URem},
        {"or", ValueID::Or},     {"xor", ValueID::Xor},
        {"shl", ValueID::Shl},   {"lshr", ValueID::LShr},
        {"ashr", ValueID::AShr}, {"fadd", ValueID::FAdd},
        {"fsub", ValueID::FSub}, {"fmul", ValueID::FMul},
        {"fdiv", ValueID::FDiv},
    };
    for (const auto &[N, ID] : Table)
      if (Name == N)
        return ID;
    return std::nullopt;
  }

  Instruction *append(Instruction *I) {
    CurBB->append(I);
    return I;
  }

  /// add <ty> <val>, <val>
  Instruction *parseBinary(ValueID Opc) {
    Type *Ty = parseType();
    if (!Ty)
      return nullptr;
    if (!Ty->getScalarType()->isIntegerTy() &&
        !Ty->getScalarType()->isFloatingPointTy()) {
      error("binary operator requires an arithmetic type");
      return nullptr;
    }
    ParsedOp L = parseOperand(Ty);
    if (!L.V)
      return nullptr;
    if (!expect(Token::Comma, "','"))
      return nullptr;
    ParsedOp R = parseOperand(Ty);
    if (!R.V)
      return nullptr;
    auto *I = BinaryOperator::create(Opc, L.V, R.V);
    noteFixup(I, 0, L);
    noteFixup(I, 1, R);
    return append(I);
  }

  /// load <ty>, ptr <val>
  Instruction *parseLoad() {
    Type *Ty = parseType();
    if (!Ty)
      return nullptr;
    if (!expect(Token::Comma, "','") || !expectIdent("ptr"))
      return nullptr;
    ParsedOp P = parseOperand(Ctx.getPtrTy());
    if (!P.V)
      return nullptr;
    auto *I = LoadInst::create(Ty, P.V);
    noteFixup(I, 0, P);
    return append(I);
  }

  /// store <ty> <val>, ptr <val>
  Instruction *parseStore() {
    Type *Ty = parseType();
    if (!Ty)
      return nullptr;
    ParsedOp V = parseOperand(Ty);
    if (!V.V)
      return nullptr;
    if (!expect(Token::Comma, "','") || !expectIdent("ptr"))
      return nullptr;
    ParsedOp P = parseOperand(Ctx.getPtrTy());
    if (!P.V)
      return nullptr;
    auto *I = StoreInst::create(V.V, P.V);
    noteFixup(I, 0, V);
    noteFixup(I, 1, P);
    return append(I);
  }

  /// gep <ty>, ptr <val>, <intty> <val>
  Instruction *parseGEP() {
    Type *ElemTy = parseType();
    if (!ElemTy)
      return nullptr;
    if (!expect(Token::Comma, "','") || !expectIdent("ptr"))
      return nullptr;
    ParsedOp Base = parseOperand(Ctx.getPtrTy());
    if (!Base.V)
      return nullptr;
    if (!expect(Token::Comma, "','"))
      return nullptr;
    Type *IdxTy = parseType();
    if (!IdxTy)
      return nullptr;
    if (!IdxTy->isIntegerTy()) {
      error("gep index must be an integer");
      return nullptr;
    }
    ParsedOp Idx = parseOperand(IdxTy);
    if (!Idx.V)
      return nullptr;
    auto *I = GEPInst::create(ElemTy, Base.V, Idx.V);
    noteFixup(I, 0, Base);
    noteFixup(I, 1, Idx);
    return append(I);
  }

  /// icmp <pred> <ty> <val>, <val>
  Instruction *parseICmp() {
    if (!peek().is(Token::Ident)) {
      error("expected icmp predicate");
      return nullptr;
    }
    std::string PredName = next().Text;
    static const std::pair<const char *, ICmpInst::Predicate> Preds[] = {
        {"eq", ICmpInst::EQ},   {"ne", ICmpInst::NE},
        {"slt", ICmpInst::SLT}, {"sle", ICmpInst::SLE},
        {"sgt", ICmpInst::SGT}, {"sge", ICmpInst::SGE},
        {"ult", ICmpInst::ULT}, {"ule", ICmpInst::ULE},
        {"ugt", ICmpInst::UGT}, {"uge", ICmpInst::UGE},
    };
    std::optional<ICmpInst::Predicate> Pred;
    for (const auto &[N, P] : Preds)
      if (PredName == N)
        Pred = P;
    if (!Pred) {
      error("unknown icmp predicate '" + PredName + "'");
      return nullptr;
    }
    Type *Ty = parseType();
    if (!Ty)
      return nullptr;
    ParsedOp L = parseOperand(Ty);
    if (!L.V)
      return nullptr;
    if (!expect(Token::Comma, "','"))
      return nullptr;
    ParsedOp R = parseOperand(Ty);
    if (!R.V)
      return nullptr;
    auto *I = ICmpInst::create(*Pred, L.V, R.V);
    noteFixup(I, 0, L);
    noteFixup(I, 1, R);
    return append(I);
  }

  /// select <condty> <val>, <ty> <val>, <ty> <val>
  /// where <condty> is i1 (whole-value select) or <N x i1> matching the
  /// arms' lane count (per-lane blend).
  Instruction *parseSelect() {
    Type *CondTy = parseType();
    if (!CondTy)
      return nullptr;
    ParsedOp C = parseOperand(CondTy);
    if (!C.V)
      return nullptr;
    if (!expect(Token::Comma, "','"))
      return nullptr;
    ParsedOp T = [&] {
      Type *Ty = parseType();
      return Ty ? parseOperand(Ty) : ParsedOp{};
    }();
    if (!T.V)
      return nullptr;
    if (!expect(Token::Comma, "','"))
      return nullptr;
    Type *FTy = parseType();
    if (!FTy)
      return nullptr;
    if (FTy != T.V->getType()) {
      error("select arm types differ");
      return nullptr;
    }
    if (!SelectInst::isValidCondition(CondTy, FTy)) {
      error("select condition must be i1 or <N x i1> matching the arm "
            "lane count");
      return nullptr;
    }
    ParsedOp Fv = parseOperand(FTy);
    if (!Fv.V)
      return nullptr;
    auto *I = SelectInst::create(C.V, T.V, Fv.V);
    noteFixup(I, 0, C);
    noteFixup(I, 1, T);
    noteFixup(I, 2, Fv);
    return append(I);
  }

  /// insertelement <vecty> <val>, <elty> <val>, i32 <lit>
  Instruction *parseInsertElement() {
    Type *VecTy = parseType();
    if (!VecTy)
      return nullptr;
    auto *VT = dyn_cast<VectorType>(VecTy);
    if (!VT) {
      error("insertelement requires a vector type");
      return nullptr;
    }
    ParsedOp Vec = parseOperand(VecTy);
    if (!Vec.V)
      return nullptr;
    if (!expect(Token::Comma, "','"))
      return nullptr;
    Type *EltTy = parseType();
    if (!EltTy)
      return nullptr;
    if (EltTy != VT->getElementType()) {
      error("insertelement element type mismatch");
      return nullptr;
    }
    ParsedOp Elt = parseOperand(EltTy);
    if (!Elt.V)
      return nullptr;
    if (!expect(Token::Comma, "','") || !expectIdent("i32"))
      return nullptr;
    ParsedOp Idx = parseOperand(Ctx.getInt32Ty());
    if (!Idx.V)
      return nullptr;
    auto *I = InsertElementInst::create(Vec.V, Elt.V, Idx.V);
    noteFixup(I, 0, Vec);
    noteFixup(I, 1, Elt);
    noteFixup(I, 2, Idx);
    return append(I);
  }

  /// extractelement <vecty> <val>, i32 <lit>
  Instruction *parseExtractElement() {
    Type *VecTy = parseType();
    if (!VecTy || !isa<VectorType>(VecTy)) {
      error("extractelement requires a vector type");
      return nullptr;
    }
    ParsedOp Vec = parseOperand(VecTy);
    if (!Vec.V)
      return nullptr;
    if (!expect(Token::Comma, "','") || !expectIdent("i32"))
      return nullptr;
    ParsedOp Idx = parseOperand(Ctx.getInt32Ty());
    if (!Idx.V)
      return nullptr;
    auto *I = ExtractElementInst::create(Vec.V, Idx.V);
    noteFixup(I, 0, Vec);
    noteFixup(I, 1, Idx);
    return append(I);
  }

  /// shufflevector <vecty> <val>, <vecty> <val>, [ lit, lit, ... ]
  Instruction *parseShuffleVector() {
    Type *VecTy = parseType();
    if (!VecTy || !isa<VectorType>(VecTy)) {
      error("shufflevector requires a vector type");
      return nullptr;
    }
    ParsedOp V1 = parseOperand(VecTy);
    if (!V1.V)
      return nullptr;
    if (!expect(Token::Comma, "','"))
      return nullptr;
    Type *VecTy2 = parseType();
    if (VecTy2 != VecTy) {
      error("shufflevector input types differ");
      return nullptr;
    }
    ParsedOp V2 = parseOperand(VecTy);
    if (!V2.V)
      return nullptr;
    if (!expect(Token::Comma, "','") || !expect(Token::LBracket, "'['"))
      return nullptr;
    std::vector<int> Mask;
    while (!peek().is(Token::RBracket)) {
      if (!peek().is(Token::IntLit)) {
        error("expected shuffle mask element");
        return nullptr;
      }
      Mask.push_back(static_cast<int>(next().IntValue));
      if (peek().is(Token::Comma))
        next();
    }
    next(); // ']'
    if (Mask.empty()) {
      error("empty shuffle mask");
      return nullptr;
    }
    unsigned Combined = 2 * cast<VectorType>(VecTy)->getNumElements();
    for (int Lane : Mask)
      if (Lane < -1 || Lane >= static_cast<int>(Combined)) {
        error("shuffle mask lane out of range");
        return nullptr;
      }
    auto *I = ShuffleVectorInst::create(V1.V, V2.V, std::move(Mask));
    noteFixup(I, 0, V1);
    noteFixup(I, 1, V2);
    return append(I);
  }

  /// phi <ty> [ <val>, %block ], ...
  Instruction *parsePhi() {
    Type *Ty = parseType();
    if (!Ty)
      return nullptr;
    auto *Phi = PHINode::create(Ty);
    append(Phi);
    unsigned Incoming = 0;
    while (true) {
      if (!expect(Token::LBracket, "'['"))
        return nullptr;
      ParsedOp V = parseOperand(Ty);
      if (!V.V)
        return nullptr;
      if (!expect(Token::Comma, "','"))
        return nullptr;
      if (!peek().is(Token::LocalId)) {
        error("expected incoming block label");
        return nullptr;
      }
      std::string BlockName = next().Text;
      auto It = Blocks.find(BlockName);
      if (It == Blocks.end()) {
        error("unknown block '%" + BlockName + "'");
        return nullptr;
      }
      if (!expect(Token::RBracket, "']'"))
        return nullptr;
      Phi->addIncoming(V.V, It->second);
      noteFixup(Phi, 2 * Incoming, V);
      ++Incoming;
      if (peek().is(Token::Comma)) {
        next();
        continue;
      }
      break;
    }
    return Phi;
  }

  /// br label %bb  |  br i1 <val>, label %a, label %b
  Instruction *parseBr() {
    if (peek().isIdent("label")) {
      next();
      BasicBlock *Dest = parseBlockRef();
      if (!Dest)
        return nullptr;
      return append(BranchInst::create(Dest));
    }
    if (!expectIdent("i1"))
      return nullptr;
    ParsedOp C = parseOperand(Ctx.getInt1Ty());
    if (!C.V)
      return nullptr;
    if (!expect(Token::Comma, "','") || !expectIdent("label"))
      return nullptr;
    BasicBlock *T = parseBlockRef();
    if (!T)
      return nullptr;
    if (!expect(Token::Comma, "','") || !expectIdent("label"))
      return nullptr;
    BasicBlock *Fb = parseBlockRef();
    if (!Fb)
      return nullptr;
    auto *I = BranchInst::create(C.V, T, Fb);
    noteFixup(I, 0, C);
    return append(I);
  }

  BasicBlock *parseBlockRef() {
    if (!peek().is(Token::LocalId)) {
      error("expected block label");
      return nullptr;
    }
    std::string Name = next().Text;
    auto It = Blocks.find(Name);
    if (It == Blocks.end()) {
      error("unknown block '%" + Name + "'");
      return nullptr;
    }
    return It->second;
  }

  /// ret void | ret <ty> <val>
  Instruction *parseRet() {
    if (peek().isIdent("void")) {
      next();
      return append(ReturnInst::create(Ctx));
    }
    Type *Ty = parseType();
    if (!Ty)
      return nullptr;
    ParsedOp V = parseOperand(Ty);
    if (!V.V)
      return nullptr;
    auto *I = ReturnInst::create(Ctx, V.V);
    noteFixup(I, 0, V);
    return append(I);
  }

  //===--------------------------------------------------------------------===//
  // State
  //===--------------------------------------------------------------------===//

  std::vector<Token> Tokens;
  size_t Pos = 0;
  Context &Ctx;
  Module *M = nullptr;
  Function *F = nullptr;
  BasicBlock *CurBB = nullptr;
  std::map<std::string, Value *> Locals;
  std::map<std::string, BasicBlock *> Blocks;
  std::vector<Fixup> Fixups;
  std::optional<Fixup> PendingFixup;
  std::string ErrMsg;
  unsigned ErrLine = 0;
  unsigned ErrCol = 0;
};

} // namespace

std::string ParseDiagnostic::render(std::string_view Filename) const {
  std::string Out(Filename);
  Out += ":" + std::to_string(Line) + ":" + std::to_string(Col) +
         ": error: " + Message;
  return Out;
}

Expected<std::unique_ptr<Module>>
lslp::parseModuleOrError(std::string_view Src, Context &Ctx,
                         ParseDiagnostic *DiagOut) {
  ParseDiagnostic Diag;
  std::vector<Token> Tokens;
  std::string LexErr;
  if (!tokenize(Src, Tokens, LexErr)) {
    // The lexer reports "line N: detail"; lift the position out so the
    // structured diagnostic matches parser-stage errors.
    Diag.Message = LexErr;
    Diag.Col = 1;
    if (LexErr.rfind("line ", 0) == 0) {
      size_t ColonPos = LexErr.find(':');
      if (ColonPos != std::string::npos) {
        Diag.Line = static_cast<unsigned>(
            std::atoi(LexErr.c_str() + 5));
        Diag.Message = LexErr.substr(ColonPos + 2);
      }
    }
    if (DiagOut)
      *DiagOut = Diag;
    return Error::make(ErrorCategory::Parse,
                       "line " + std::to_string(Diag.Line) + ": " +
                           Diag.Message);
  }
  std::unique_ptr<Module> M = Parser(std::move(Tokens), Ctx).run(Diag);
  if (!M) {
    if (DiagOut)
      *DiagOut = Diag;
    return Error::make(ErrorCategory::Parse,
                       "line " + std::to_string(Diag.Line) + ": " +
                           Diag.Message);
  }
  return M;
}

std::unique_ptr<Module> lslp::parseModule(std::string_view Src, Context &Ctx,
                                          std::string &Err) {
  Expected<std::unique_ptr<Module>> M = parseModuleOrError(Src, Ctx);
  if (!M) {
    Err = M.getError().message();
    return nullptr;
  }
  return std::move(*M);
}

std::unique_ptr<Module> lslp::parseModuleOrDie(std::string_view Src,
                                               Context &Ctx) {
  std::string Err;
  std::unique_ptr<Module> M = parseModule(Src, Ctx, Err);
  if (!M)
    reportFatalError("IR parse failed: " + Err);
  return M;
}
