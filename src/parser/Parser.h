//===- parser/Parser.h - Textual IR parser ----------------------*- C++ -*-===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for the textual IR dialect produced by
/// ir/Printer. Supports forward references to values (needed for loop phis)
/// and to basic blocks. Round-trips with the printer:
/// parse(print(M)) == M structurally.
///
//===----------------------------------------------------------------------===//

#ifndef LSLP_PARSER_PARSER_H
#define LSLP_PARSER_PARSER_H

#include <memory>
#include <string>
#include <string_view>

namespace lslp {

class Context;
class Module;

/// Parses a whole module. Returns null and sets \p Err on failure.
std::unique_ptr<Module> parseModule(std::string_view Src, Context &Ctx,
                                    std::string &Err);

/// Convenience used by tests: parses and aborts with a diagnostic on
/// failure.
std::unique_ptr<Module> parseModuleOrDie(std::string_view Src, Context &Ctx);

} // namespace lslp

#endif // LSLP_PARSER_PARSER_H
