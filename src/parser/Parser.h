//===- parser/Parser.h - Textual IR parser ----------------------*- C++ -*-===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for the textual IR dialect produced by
/// ir/Printer. Supports forward references to values (needed for loop phis)
/// and to basic blocks. Round-trips with the printer:
/// parse(print(M)) == M structurally.
///
//===----------------------------------------------------------------------===//

#ifndef LSLP_PARSER_PARSER_H
#define LSLP_PARSER_PARSER_H

#include "support/Error.h"

#include <memory>
#include <string>
#include <string_view>

namespace lslp {

class Context;
class Module;

/// Structured parse failure: 1-based source position plus the bare
/// message (no "line N:" prefix — callers choose the rendering).
struct ParseDiagnostic {
  unsigned Line = 0;
  unsigned Col = 0;
  std::string Message;

  /// Clang-style rendering: "<file>:<line>:<col>: error: <message>".
  std::string render(std::string_view Filename) const;
};

/// Parses a whole module. Failures come back as an Error of category
/// Parse whose message is "line <N>: <detail>"; when \p DiagOut is
/// non-null it additionally receives the structured line/column
/// diagnostic (for file:line:col rendering in lslpc).
Expected<std::unique_ptr<Module>>
parseModuleOrError(std::string_view Src, Context &Ctx,
                   ParseDiagnostic *DiagOut = nullptr);

/// Legacy interface. Returns null and sets \p Err on failure.
std::unique_ptr<Module> parseModule(std::string_view Src, Context &Ctx,
                                    std::string &Err);

/// Convenience used by tests: parses and aborts with a diagnostic on
/// failure.
std::unique_ptr<Module> parseModuleOrDie(std::string_view Src, Context &Ctx);

} // namespace lslp

#endif // LSLP_PARSER_PARSER_H
