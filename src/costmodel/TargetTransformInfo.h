//===- costmodel/TargetTransformInfo.h - Target cost model ------*- C++ -*-===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The target cost model interface (after LLVM's TTI) used by the SLP/LSLP
/// profitability analysis and by the cycle-model interpreter. Costs are
/// reciprocal-throughput-like abstract units; the SLP cost of a vectorized
/// group is VectorCost - Sum(ScalarCosts), negative meaning profitable.
///
/// SkylakeTTI reproduces the conventions of the paper's worked examples
/// (Figures 2-4): scalar and vector ALU ops cost 1 (so a two-lane group
/// saves 1), gathering N non-constant scalars into a vector costs N, an
/// all-constant operand vector is free, and each externally-used lane pays
/// one extract.
///
//===----------------------------------------------------------------------===//

#ifndef LSLP_COSTMODEL_TARGETTRANSFORMINFO_H
#define LSLP_COSTMODEL_TARGETTRANSFORMINFO_H

#include "ir/Value.h"

#include <vector>

namespace lslp {

class Instruction;
class Type;

/// Abstract cost model. Override to model a different target; SkylakeTTI is
/// the default used throughout the evaluation.
class TargetTransformInfo {
public:
  virtual ~TargetTransformInfo();

  /// Cost of an arithmetic/logical operator of type \p Ty (scalar or
  /// vector).
  virtual int getArithmeticInstrCost(ValueID Opc, Type *Ty) const = 0;

  /// Cost of a load/store of value type \p Ty.
  virtual int getMemoryOpCost(ValueID Opc, Type *Ty) const = 0;

  /// Cost of icmp/select of operand type \p Ty.
  virtual int getCmpSelCost(ValueID Opc, Type *Ty) const = 0;

  /// Cost of a cast producing \p DestTy (scalar or vector).
  virtual int getCastInstrCost(ValueID Opc, Type *DestTy) const = 0;

  /// Cost of inserting or extracting one lane of \p VecTy.
  virtual int getVectorLaneOpCost(ValueID Opc, Type *VecTy) const = 0;

  /// Cost of a single-source lane permutation of \p VecTy.
  virtual int getShuffleCost(Type *VecTy) const = 0;

  /// Cost of materializing a vector from scalars. \p IsConstantLane flags
  /// which lanes are compile-time constants; an all-constant vector is
  /// free (loaded from a constant pool like any literal).
  virtual int getGatherCost(Type *VecTy,
                            const std::vector<bool> &IsConstantLane) const;

  /// Widest supported vector register, in bits (256 for AVX2).
  virtual unsigned getMaxVectorWidthBits() const = 0;

  /// Superscalar issue width used by the cycle-model interpreter.
  virtual unsigned getIssueWidth() const = 0;

  /// Dispatches on \p I's opcode to the methods above. Control flow and
  /// address computation are modeled as stated by getControlFlowCost /
  /// zero-cost geps.
  int getInstructionCost(const Instruction *I) const;

  /// Cost charged for br/ret by the cycle model.
  virtual int getControlFlowCost() const { return 1; }
};

/// Cost tables approximating an Intel Skylake client core with AVX2,
/// calibrated so the paper's example graphs reproduce their stated costs.
class SkylakeTTI : public TargetTransformInfo {
public:
  int getArithmeticInstrCost(ValueID Opc, Type *Ty) const override;
  int getMemoryOpCost(ValueID Opc, Type *Ty) const override;
  int getCmpSelCost(ValueID Opc, Type *Ty) const override;
  int getCastInstrCost(ValueID Opc, Type *DestTy) const override;
  int getVectorLaneOpCost(ValueID Opc, Type *VecTy) const override;
  int getShuffleCost(Type *VecTy) const override;
  unsigned getMaxVectorWidthBits() const override { return 256; }
  unsigned getIssueWidth() const override { return 4; }
};

} // namespace lslp

#endif // LSLP_COSTMODEL_TARGETTRANSFORMINFO_H
