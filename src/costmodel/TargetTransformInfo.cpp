//===- costmodel/TargetTransformInfo.cpp - Target cost model ----------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "costmodel/TargetTransformInfo.h"

#include "ir/Instruction.h"
#include "ir/Type.h"
#include "support/Debug.h"

using namespace lslp;

TargetTransformInfo::~TargetTransformInfo() = default;

int TargetTransformInfo::getGatherCost(
    Type *VecTy, const std::vector<bool> &IsConstantLane) const {
  bool AllConstant = true;
  for (bool IsConst : IsConstantLane)
    AllConstant &= IsConst;
  // Constant vectors are materialized from the constant pool for free, like
  // scalar literals.
  if (AllConstant)
    return 0;
  int Cost = 0;
  for (size_t I = 0; I < IsConstantLane.size(); ++I)
    Cost += getVectorLaneOpCost(ValueID::InsertElement, VecTy);
  return Cost;
}

int TargetTransformInfo::getInstructionCost(const Instruction *I) const {
  ValueID Opc = I->getOpcode();
  if (I->isBinaryOp())
    return getArithmeticInstrCost(Opc, I->getType());
  switch (Opc) {
  case ValueID::Load:
    return getMemoryOpCost(Opc, I->getType());
  case ValueID::Store:
    return getMemoryOpCost(Opc, cast<StoreInst>(I)->getAccessType());
  case ValueID::ICmp:
    return getCmpSelCost(Opc, I->getOperand(0)->getType());
  case ValueID::Select:
    return getCmpSelCost(Opc, I->getType());
  case ValueID::SExt:
  case ValueID::ZExt:
  case ValueID::Trunc:
  case ValueID::SIToFP:
  case ValueID::FPToSI:
    return getCastInstrCost(Opc, I->getType());
  case ValueID::InsertElement:
    return getVectorLaneOpCost(Opc, I->getType());
  case ValueID::ExtractElement:
    return getVectorLaneOpCost(Opc, I->getOperand(0)->getType());
  case ValueID::ShuffleVector:
    return getShuffleCost(I->getType());
  case ValueID::Gep:
    return 0; // Folded into the addressing mode.
  case ValueID::Phi:
    return 0; // Register renaming; no execution cost.
  case ValueID::Br:
  case ValueID::Ret:
    return getControlFlowCost();
  default:
    lslp_unreachable("unhandled opcode in cost dispatch");
  }
}

//===----------------------------------------------------------------------===//
// SkylakeTTI
//===----------------------------------------------------------------------===//

int SkylakeTTI::getArithmeticInstrCost(ValueID Opc, Type *Ty) const {
  const bool IsVector = Ty->isVectorTy();
  const unsigned Lanes =
      IsVector ? cast<VectorType>(Ty)->getNumElements() : 1;
  switch (Opc) {
  case ValueID::Add:
  case ValueID::Sub:
  case ValueID::And:
  case ValueID::Or:
  case ValueID::Xor:
  case ValueID::Shl:
  case ValueID::LShr:
  case ValueID::AShr:
  case ValueID::Mul:
  case ValueID::FAdd:
  case ValueID::FSub:
  case ValueID::FMul:
    // Simple ALU/FP ops: one unit, scalar or vector (AVX2 has full-width
    // units for these).
    return 1;
  case ValueID::FDiv:
    // vdivpd/divsd: long latency, similar scalar and vector throughput.
    return 14;
  case ValueID::SDiv:
  case ValueID::UDiv:
  case ValueID::SRem:
  case ValueID::URem:
    // No SIMD integer division on AVX2: a vector division/remainder is
    // scalarized (extract, divide, insert per lane).
    return IsVector ? static_cast<int>(Lanes) * (20 + 2) : 20;
  default:
    lslp_unreachable("not an arithmetic opcode");
  }
}

int SkylakeTTI::getMemoryOpCost(ValueID Opc, Type *Ty) const {
  (void)Opc;
  (void)Ty;
  // L1-hit load or store, scalar or full-width vector: one unit.
  return 1;
}

int SkylakeTTI::getCmpSelCost(ValueID Opc, Type *Ty) const {
  (void)Opc;
  (void)Ty;
  return 1;
}

int SkylakeTTI::getCastInstrCost(ValueID Opc, Type *DestTy) const {
  (void)Opc;
  (void)DestTy;
  // Width conversions and int<->fp conversions: one unit, scalar or
  // vector (vpmovsx/vcvtdq2pd-like).
  return 1;
}

int SkylakeTTI::getVectorLaneOpCost(ValueID Opc, Type *VecTy) const {
  (void)Opc;
  (void)VecTy;
  // vpinsr/vpextr-like: one unit per lane moved.
  return 1;
}

int SkylakeTTI::getShuffleCost(Type *VecTy) const {
  (void)VecTy;
  return 1;
}
