//===- interp/Interpreter.h - IR interpreter + cycle model ------*- C++ -*-===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes IR functions (scalar or vectorized, with control flow) against
/// a byte-addressed memory holding the module's global arrays. Serves two
/// roles in the reproduction:
///
///  1. Semantic oracle: the tests execute a kernel before and after
///     vectorization and require identical memory/return results.
///  2. Performance substrate ("the machine"): each executed instruction is
///     charged its TargetTransformInfo cost; the accumulated cost divided
///     by the issue width is the simulated cycle count from which the
///     speedup figures are computed (see DESIGN.md on this substitution
///     for the paper's Skylake hardware).
///
/// This is the reference tree-walking engine behind the ExecutionEngine
/// facade; src/vm holds the fast bytecode engine that must match it
/// bit-for-bit (see DESIGN.md "Execution engines").
///
//===----------------------------------------------------------------------===//

#ifndef LSLP_INTERP_INTERPRETER_H
#define LSLP_INTERP_INTERPRETER_H

#include "interp/RuntimeValue.h"
#include "ir/Value.h"
#include "vm/ExecutionEngine.h"

#include <cstdint>
#include <vector>

namespace lslp {

class Function;
class TargetTransformInfo;

/// Interprets functions of one module instance by walking the instruction
/// list. Construction allocates and zero-fills a memory segment for every
/// global array (see ExecutionEngine).
class Interpreter : public ExecutionEngine {
public:
  /// \p TTI may be null if only semantics (not cost accounting) matter.
  explicit Interpreter(const Module &M,
                       const TargetTransformInfo *TTI = nullptr);

  /// Pre-facade name of ExecStats; kept for existing callers.
  using RunResult = ExecStats;

  ExecStats run(const Function *F,
                const std::vector<RuntimeValue> &Args = {}) override;

  const char *engineName() const override { return "interp"; }

private:
  const TargetTransformInfo *TTI;
};

} // namespace lslp

#endif // LSLP_INTERP_INTERPRETER_H
