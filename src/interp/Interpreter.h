//===- interp/Interpreter.h - IR interpreter + cycle model ------*- C++ -*-===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes IR functions (scalar or vectorized, with control flow) against
/// a byte-addressed memory holding the module's global arrays. Serves two
/// roles in the reproduction:
///
///  1. Semantic oracle: the tests execute a kernel before and after
///     vectorization and require identical memory/return results.
///  2. Performance substrate ("the machine"): each executed instruction is
///     charged its TargetTransformInfo cost; the accumulated cost divided
///     by the issue width is the simulated cycle count from which the
///     speedup figures are computed (see DESIGN.md on this substitution
///     for the paper's Skylake hardware).
///
//===----------------------------------------------------------------------===//

#ifndef LSLP_INTERP_INTERPRETER_H
#define LSLP_INTERP_INTERPRETER_H

#include "interp/RuntimeValue.h"
#include "ir/Value.h"

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace lslp {

class Function;
class GlobalArray;
class Module;
class TargetTransformInfo;

/// Interprets functions of one module instance. Construction allocates and
/// zero-fills a memory segment for every global array.
class Interpreter {
public:
  /// \p TTI may be null if only semantics (not cost accounting) matter.
  explicit Interpreter(const Module &M,
                       const TargetTransformInfo *TTI = nullptr);

  /// Statistics and result of one function execution.
  struct RunResult {
    RuntimeValue ReturnValue; ///< Invalid for void functions.
    uint64_t DynamicInsts = 0;
    uint64_t TotalCost = 0; ///< Sum of per-instruction TTI costs.
    /// Dynamic instruction counts, split scalar/vector per opcode.
    /// Populated only when setCollectStats(true).
    std::map<ValueID, uint64_t> ScalarOpCounts;
    std::map<ValueID, uint64_t> VectorOpCounts;
    /// TotalCost scaled by the TTI issue width (1 if no TTI).
    double simulatedCycles(unsigned IssueWidth = 1) const {
      return static_cast<double>(TotalCost) / IssueWidth;
    }
  };

  /// Executes \p F with \p Args (must match the signature). Aborts with a
  /// diagnostic on traps (division by zero, out-of-bounds access,
  /// step-limit exhaustion).
  RunResult run(const Function *F, const std::vector<RuntimeValue> &Args = {});

  /// \name Global array access (by name; aborts if unknown).
  /// @{
  /// Address of element 0 of global \p Name.
  uint64_t getGlobalAddress(std::string_view Name) const;
  /// Writes integer element \p Index of \p Name.
  void writeGlobalInt(std::string_view Name, uint64_t Index, uint64_t Value);
  /// Writes FP element \p Index of \p Name.
  void writeGlobalFP(std::string_view Name, uint64_t Index, double Value);
  /// Reads integer element \p Index of \p Name (zero-extended).
  uint64_t readGlobalInt(std::string_view Name, uint64_t Index) const;
  /// Reads FP element \p Index of \p Name.
  double readGlobalFP(std::string_view Name, uint64_t Index) const;
  /// Returns a copy of the whole memory image (for whole-state equality
  /// checks in tests).
  const std::vector<uint8_t> &getMemoryImage() const { return Memory; }
  /// @}

  /// Upper bound on executed instructions per run() (trap when exceeded).
  void setStepLimit(uint64_t Limit) { StepLimit = Limit; }

  /// Enables per-opcode dynamic instruction counting (small overhead).
  void setCollectStats(bool Collect) { CollectStats = Collect; }

private:
  const GlobalArray *getGlobalOrDie(std::string_view Name) const;
  uint64_t elementAddress(const GlobalArray *G, uint64_t Index) const;

  const Module &M;
  const TargetTransformInfo *TTI;
  std::vector<uint8_t> Memory;
  std::map<const GlobalArray *, uint64_t> GlobalAddr;
  uint64_t StepLimit = 200u * 1000u * 1000u;
  bool CollectStats = false;
};

} // namespace lslp

#endif // LSLP_INTERP_INTERPRETER_H
