//===- interp/Interpreter.cpp - IR interpreter + cycle model ----------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"

#include "costmodel/TargetTransformInfo.h"
#include "ir/BasicBlock.h"
#include "ir/Constants.h"
#include "ir/Function.h"
#include "ir/Instruction.h"
#include "ir/Module.h"
#include "ir/Printer.h"
#include "support/Debug.h"

#include <cstring>

using namespace lslp;

namespace {

/// Per-call execution frame.
struct Frame {
  std::map<const Value *, RuntimeValue> Values;
};

} // namespace

Interpreter::Interpreter(const Module &M, const TargetTransformInfo *TTI)
    : M(M), TTI(TTI) {
  // Lay out globals with a guard page at address 0 and 64-byte alignment
  // between segments.
  uint64_t Cursor = 4096;
  for (const auto &G : M.globals()) {
    GlobalAddr[G.get()] = Cursor;
    Cursor += G->getSizeInBytes();
    Cursor = (Cursor + 63) & ~uint64_t(63);
  }
  Memory.assign(Cursor, 0);
}

const GlobalArray *Interpreter::getGlobalOrDie(std::string_view Name) const {
  const GlobalArray *G = M.getGlobal(Name);
  if (!G)
    reportFatalError("interpreter: unknown global '" + std::string(Name) +
                     "'");
  return G;
}

uint64_t Interpreter::elementAddress(const GlobalArray *G,
                                     uint64_t Index) const {
  if (Index >= G->getNumElements())
    reportFatalError("interpreter: global index out of range for '@" +
                     G->getName() + "'");
  return GlobalAddr.at(G) + Index * G->getElementType()->getSizeInBytes();
}

uint64_t Interpreter::getGlobalAddress(std::string_view Name) const {
  return GlobalAddr.at(getGlobalOrDie(Name));
}

void Interpreter::writeGlobalInt(std::string_view Name, uint64_t Index,
                                 uint64_t Value) {
  const GlobalArray *G = getGlobalOrDie(Name);
  unsigned Size = G->getElementType()->getSizeInBytes();
  uint64_t Addr = elementAddress(G, Index);
  std::memcpy(&Memory[Addr], &Value, Size);
}

void Interpreter::writeGlobalFP(std::string_view Name, uint64_t Index,
                                double Value) {
  const GlobalArray *G = getGlobalOrDie(Name);
  uint64_t Addr = elementAddress(G, Index);
  if (G->getElementType()->isFloatTy()) {
    float F = static_cast<float>(Value);
    std::memcpy(&Memory[Addr], &F, 4);
  } else {
    std::memcpy(&Memory[Addr], &Value, 8);
  }
}

uint64_t Interpreter::readGlobalInt(std::string_view Name,
                                    uint64_t Index) const {
  const GlobalArray *G = getGlobalOrDie(Name);
  unsigned Size = G->getElementType()->getSizeInBytes();
  uint64_t Addr = elementAddress(G, Index);
  uint64_t Value = 0;
  std::memcpy(&Value, &Memory[Addr], Size);
  return Value;
}

double Interpreter::readGlobalFP(std::string_view Name, uint64_t Index) const {
  const GlobalArray *G = getGlobalOrDie(Name);
  uint64_t Addr = elementAddress(G, Index);
  if (G->getElementType()->isFloatTy()) {
    float F;
    std::memcpy(&F, &Memory[Addr], 4);
    return F;
  }
  double D;
  std::memcpy(&D, &Memory[Addr], 8);
  return D;
}

//===----------------------------------------------------------------------===//
// Execution
//===----------------------------------------------------------------------===//

namespace {

/// Evaluation of all instruction kinds; holds the per-run mutable state.
class Executor {
public:
  Executor(const Module &M, std::vector<uint8_t> &Memory,
           const std::map<const GlobalArray *, uint64_t> &GlobalAddr,
           const TargetTransformInfo *TTI, uint64_t StepLimit,
           bool CollectStats)
      : M(M), Memory(Memory), GlobalAddr(GlobalAddr), TTI(TTI),
        StepLimit(StepLimit), CollectStats(CollectStats) {}

  Interpreter::RunResult run(const Function *F,
                             const std::vector<RuntimeValue> &Args) {
    if (Args.size() != F->getNumArgs())
      reportFatalError("interpreter: argument count mismatch calling @" +
                       F->getName());
    Frame Fr;
    for (unsigned I = 0, E = F->getNumArgs(); I != E; ++I) {
      if (Args[I].Ty != F->getArg(I)->getType())
        reportFatalError("interpreter: argument type mismatch calling @" +
                         F->getName());
      Fr.Values[F->getArg(I)] = Args[I];
    }

    Interpreter::RunResult Result;
    const BasicBlock *BB = F->getEntryBlock();
    const BasicBlock *PrevBB = nullptr;
    while (true) {
      // Phase 1: evaluate all phis against the incoming edge atomically.
      std::vector<std::pair<const PHINode *, RuntimeValue>> PhiValues;
      auto It = BB->begin();
      for (; It != BB->end(); ++It) {
        const auto *Phi = dyn_cast<PHINode>(It->get());
        if (!Phi)
          break;
        const Value *In = Phi->getIncomingValueForBlock(PrevBB);
        if (!In)
          reportFatalError("interpreter: phi has no entry for predecessor");
        PhiValues.push_back({Phi, getValue(Fr, In)});
        charge(Phi, Result);
      }
      for (auto &[Phi, V] : PhiValues)
        Fr.Values[Phi] = std::move(V);

      // Phase 2: straight-line execution to the terminator.
      const BasicBlock *NextBB = nullptr;
      for (; It != BB->end(); ++It) {
        const Instruction *I = It->get();
        charge(I, Result);
        if (const auto *Br = dyn_cast<BranchInst>(I)) {
          unsigned Taken =
              Br->isConditional()
                  ? (getValue(Fr, Br->getCondition()).asUInt() & 1 ? 0u : 1u)
                  : 0u;
          NextBB = Br->getSuccessor(Taken);
          break;
        }
        if (const auto *Ret = dyn_cast<ReturnInst>(I)) {
          if (const Value *RV = Ret->getReturnValue())
            Result.ReturnValue = getValue(Fr, RV);
          return Result;
        }
        RuntimeValue V = evaluate(Fr, I);
        if (!I->getType()->isVoidTy())
          Fr.Values[I] = std::move(V);
      }
      if (!NextBB)
        reportFatalError("interpreter: block fell through without terminator");
      PrevBB = BB;
      BB = NextBB;
    }
  }

private:
  void charge(const Instruction *I, Interpreter::RunResult &Result) {
    ++Result.DynamicInsts;
    if (Result.DynamicInsts > StepLimit)
      reportFatalError("interpreter: step limit exceeded (infinite loop?)");
    if (TTI)
      Result.TotalCost += static_cast<uint64_t>(
          std::max(0, TTI->getInstructionCost(I)));
    if (CollectStats) {
      // Stores are classified by the stored type, everything else by the
      // result type.
      Type *Ty = I->getType();
      if (const auto *St = dyn_cast<StoreInst>(I))
        Ty = St->getAccessType();
      auto &Counts = Ty->isVectorTy() ? Result.VectorOpCounts
                                      : Result.ScalarOpCounts;
      ++Counts[I->getOpcode()];
    }
  }

  RuntimeValue getValue(Frame &Fr, const Value *V) {
    if (const auto *CI = dyn_cast<ConstantInt>(V))
      return RuntimeValue(CI->getType(), {CI->getZExtValue()});
    if (const auto *CF = dyn_cast<ConstantFP>(V))
      return RuntimeValue::makeFP(CF->getType(), CF->getValue());
    if (const auto *CV = dyn_cast<ConstantVector>(V)) {
      std::vector<uint64_t> Lanes;
      Lanes.reserve(CV->getNumElements());
      for (unsigned I = 0, E = CV->getNumElements(); I != E; ++I)
        Lanes.push_back(getValue(Fr, CV->getElement(I)).Lanes[0]);
      return RuntimeValue(CV->getType(), std::move(Lanes));
    }
    if (const auto *U = dyn_cast<UndefValue>(V)) {
      unsigned Lanes = 1;
      if (const auto *VT = dyn_cast<VectorType>(U->getType()))
        Lanes = VT->getNumElements();
      return RuntimeValue(U->getType(),
                          std::vector<uint64_t>(Lanes, 0));
    }
    if (const auto *G = dyn_cast<GlobalArray>(V))
      return RuntimeValue::makePointer(G->getType(), GlobalAddr.at(G));
    auto It = Fr.Values.find(V);
    if (It == Fr.Values.end())
      reportFatalError("interpreter: use of value before definition");
    return It->second;
  }

  //===--------------------------------------------------------------------===//
  // Memory
  //===--------------------------------------------------------------------===//

  void checkAccess(uint64_t Addr, unsigned Size) {
    if (Addr < 4096 || Addr + Size > Memory.size())
      reportFatalError("interpreter: out-of-bounds memory access");
  }

  uint64_t loadLane(uint64_t Addr, const Type *ScalarTy) {
    unsigned Size = ScalarTy->getSizeInBytes();
    checkAccess(Addr, Size);
    uint64_t Raw = 0;
    std::memcpy(&Raw, &Memory[Addr], Size);
    return Raw;
  }

  void storeLane(uint64_t Addr, const Type *ScalarTy, uint64_t Raw) {
    unsigned Size = ScalarTy->getSizeInBytes();
    checkAccess(Addr, Size);
    std::memcpy(&Memory[Addr], &Raw, Size);
  }

  //===--------------------------------------------------------------------===//
  // Instruction evaluation
  //===--------------------------------------------------------------------===//

  RuntimeValue evaluate(Frame &Fr, const Instruction *I) {
    switch (I->getOpcode()) {
    case ValueID::Load: {
      const auto *L = cast<LoadInst>(I);
      uint64_t Addr = getValue(Fr, L->getPointerOperand()).asUInt();
      Type *Ty = L->getAccessType();
      if (const auto *VT = dyn_cast<VectorType>(Ty)) {
        Type *ElemTy = VT->getElementType();
        std::vector<uint64_t> Lanes(VT->getNumElements());
        for (unsigned K = 0; K != VT->getNumElements(); ++K)
          Lanes[K] = loadLane(Addr + uint64_t(K) * ElemTy->getSizeInBytes(),
                              ElemTy);
        return RuntimeValue(Ty, std::move(Lanes));
      }
      return RuntimeValue(Ty, {loadLane(Addr, Ty)});
    }
    case ValueID::Store: {
      const auto *S = cast<StoreInst>(I);
      RuntimeValue V = getValue(Fr, S->getValueOperand());
      uint64_t Addr = getValue(Fr, S->getPointerOperand()).asUInt();
      Type *Ty = S->getAccessType();
      if (const auto *VT = dyn_cast<VectorType>(Ty)) {
        Type *ElemTy = VT->getElementType();
        for (unsigned K = 0; K != VT->getNumElements(); ++K)
          storeLane(Addr + uint64_t(K) * ElemTy->getSizeInBytes(), ElemTy,
                    V.Lanes[K]);
      } else {
        storeLane(Addr, Ty, V.Lanes[0]);
      }
      return RuntimeValue();
    }
    case ValueID::Gep: {
      const auto *G = cast<GEPInst>(I);
      uint64_t Base = getValue(Fr, G->getBaseOperand()).asUInt();
      RuntimeValue Idx = getValue(Fr, G->getIndexOperand());
      int64_t Offset = Idx.asSInt() *
                       static_cast<int64_t>(
                           G->getElementType()->getSizeInBytes());
      return RuntimeValue::makePointer(
          G->getType(), Base + static_cast<uint64_t>(Offset));
    }
    case ValueID::SExt:
    case ValueID::ZExt:
    case ValueID::Trunc:
    case ValueID::SIToFP:
    case ValueID::FPToSI: {
      const auto *C = cast<CastInst>(I);
      RuntimeValue Src = getValue(Fr, C->getSourceOperand());
      Type *SrcScalar = C->getSrcType()->getScalarType();
      Type *DestScalar = C->getDestType()->getScalarType();
      std::vector<uint64_t> Lanes(Src.getNumLanes());
      for (unsigned K = 0; K != Src.getNumLanes(); ++K)
        Lanes[K] = evalCastLane(I->getOpcode(), SrcScalar, DestScalar,
                                Src.Lanes[K]);
      return RuntimeValue(C->getDestType(), std::move(Lanes));
    }
    case ValueID::ICmp: {
      const auto *C = cast<ICmpInst>(I);
      RuntimeValue L = getValue(Fr, C->getLHS());
      RuntimeValue R = getValue(Fr, C->getRHS());
      return RuntimeValue::makeInt(I->getType(),
                                   evalICmp(C->getPredicate(), L, R) ? 1 : 0);
    }
    case ValueID::Select: {
      const auto *S = cast<SelectInst>(I);
      bool Cond = getValue(Fr, S->getCondition()).asUInt() & 1;
      return getValue(Fr, Cond ? S->getTrueValue() : S->getFalseValue());
    }
    case ValueID::InsertElement: {
      const auto *IE = cast<InsertElementInst>(I);
      RuntimeValue Vec = getValue(Fr, IE->getVectorOperand());
      RuntimeValue Elt = getValue(Fr, IE->getElementOperand());
      uint64_t Lane = getValue(Fr, IE->getIndexOperand()).asUInt();
      if (Lane >= Vec.Lanes.size())
        reportFatalError("interpreter: insertelement lane out of range");
      Vec.Lanes[Lane] = Elt.Lanes[0];
      return Vec;
    }
    case ValueID::ExtractElement: {
      const auto *EE = cast<ExtractElementInst>(I);
      RuntimeValue Vec = getValue(Fr, EE->getVectorOperand());
      uint64_t Lane = getValue(Fr, EE->getIndexOperand()).asUInt();
      if (Lane >= Vec.Lanes.size())
        reportFatalError("interpreter: extractelement lane out of range");
      return RuntimeValue(I->getType(), {Vec.Lanes[Lane]});
    }
    case ValueID::ShuffleVector: {
      const auto *SV = cast<ShuffleVectorInst>(I);
      RuntimeValue V1 = getValue(Fr, SV->getFirstVector());
      RuntimeValue V2 = getValue(Fr, SV->getSecondVector());
      unsigned SrcLanes = V1.getNumLanes();
      std::vector<uint64_t> Lanes;
      Lanes.reserve(SV->getMask().size());
      for (int MaskElt : SV->getMask()) {
        if (MaskElt < 0)
          Lanes.push_back(0);
        else if (static_cast<unsigned>(MaskElt) < SrcLanes)
          Lanes.push_back(V1.Lanes[MaskElt]);
        else
          Lanes.push_back(V2.Lanes[MaskElt - SrcLanes]);
      }
      return RuntimeValue(I->getType(), std::move(Lanes));
    }
    default:
      assert(I->isBinaryOp() && "unhandled opcode in interpreter");
      return evalBinary(Fr, I);
    }
  }

  uint64_t evalCastLane(ValueID Opc, Type *SrcTy, Type *DestTy,
                        uint64_t Lane) {
    switch (Opc) {
    case ValueID::SExt:
      return RuntimeValue::truncateToWidth(
          DestTy,
          static_cast<uint64_t>(RuntimeValue::signExtendLane(SrcTy, Lane)));
    case ValueID::ZExt:
      return Lane; // Already stored zero-extended.
    case ValueID::Trunc:
      return RuntimeValue::truncateToWidth(DestTy, Lane);
    case ValueID::SIToFP:
      return RuntimeValue::encodeFP(
          DestTy,
          static_cast<double>(RuntimeValue::signExtendLane(SrcTy, Lane)));
    case ValueID::FPToSI: {
      double D = RuntimeValue::decodeFP(SrcTy, Lane);
      // Out-of-range conversions are undefined in LLVM; define them as
      // saturation so the interpreter stays deterministic.
      constexpr double Max = 9223372036854775807.0;
      int64_t V;
      if (D != D) // NaN.
        V = 0;
      else if (D >= Max)
        V = INT64_MAX;
      else if (D <= -Max)
        V = INT64_MIN;
      else
        V = static_cast<int64_t>(D);
      return RuntimeValue::truncateToWidth(DestTy,
                                           static_cast<uint64_t>(V));
    }
    default:
      lslp_unreachable("not a cast opcode");
    }
  }

  bool evalICmp(ICmpInst::Predicate Pred, const RuntimeValue &L,
                const RuntimeValue &R) {
    uint64_t UL = L.asUInt(), UR = R.asUInt();
    int64_t SL = L.Ty->isPointerTy() ? static_cast<int64_t>(UL) : L.asSInt();
    int64_t SR = R.Ty->isPointerTy() ? static_cast<int64_t>(UR) : R.asSInt();
    switch (Pred) {
    case ICmpInst::EQ:
      return UL == UR;
    case ICmpInst::NE:
      return UL != UR;
    case ICmpInst::SLT:
      return SL < SR;
    case ICmpInst::SLE:
      return SL <= SR;
    case ICmpInst::SGT:
      return SL > SR;
    case ICmpInst::SGE:
      return SL >= SR;
    case ICmpInst::ULT:
      return UL < UR;
    case ICmpInst::ULE:
      return UL <= UR;
    case ICmpInst::UGT:
      return UL > UR;
    case ICmpInst::UGE:
      return UL >= UR;
    }
    lslp_unreachable("covered switch");
  }

  RuntimeValue evalBinary(Frame &Fr, const Instruction *I) {
    RuntimeValue L = getValue(Fr, I->getOperand(0));
    RuntimeValue R = getValue(Fr, I->getOperand(1));
    Type *Ty = I->getType();
    Type *ScalarTy = Ty->getScalarType();
    unsigned Lanes = L.getNumLanes();
    std::vector<uint64_t> Out(Lanes);
    for (unsigned K = 0; K != Lanes; ++K)
      Out[K] = ScalarTy->isFloatingPointTy()
                   ? evalFPLane(I->getOpcode(), ScalarTy, L.Lanes[K],
                                R.Lanes[K])
                   : evalIntLane(I->getOpcode(), ScalarTy, L.Lanes[K],
                                 R.Lanes[K]);
    return RuntimeValue(Ty, std::move(Out));
  }

  uint64_t evalIntLane(ValueID Opc, Type *Ty, uint64_t A, uint64_t B) {
    unsigned Bits = cast<IntegerType>(Ty)->getBitWidth();
    auto Trunc = [&](uint64_t V) { return RuntimeValue::truncateToWidth(Ty, V); };
    switch (Opc) {
    case ValueID::Add:
      return Trunc(A + B);
    case ValueID::Sub:
      return Trunc(A - B);
    case ValueID::Mul:
      return Trunc(A * B);
    case ValueID::UDiv:
      if (B == 0)
        reportFatalError("interpreter: udiv by zero");
      return Trunc(A / B);
    case ValueID::SDiv: {
      int64_t SA = RuntimeValue::signExtendLane(Ty, A);
      int64_t SB = RuntimeValue::signExtendLane(Ty, B);
      if (SB == 0)
        reportFatalError("interpreter: sdiv by zero");
      if (SA == INT64_MIN && SB == -1)
        reportFatalError("interpreter: sdiv overflow");
      return Trunc(static_cast<uint64_t>(SA / SB));
    }
    case ValueID::And:
      return A & B;
    case ValueID::Or:
      return A | B;
    case ValueID::Xor:
      return A ^ B;
    case ValueID::Shl:
      return B >= Bits ? 0 : Trunc(A << B);
    case ValueID::LShr:
      return B >= Bits ? 0 : A >> B;
    case ValueID::AShr: {
      int64_t SA = RuntimeValue::signExtendLane(Ty, A);
      uint64_t Amount = B >= Bits ? Bits - 1 : B;
      return Trunc(static_cast<uint64_t>(SA >> Amount));
    }
    default:
      lslp_unreachable("not an integer binary opcode");
    }
  }

  uint64_t evalFPLane(ValueID Opc, Type *Ty, uint64_t A, uint64_t B) {
    double DA = RuntimeValue::decodeFP(Ty, A);
    double DB = RuntimeValue::decodeFP(Ty, B);
    double Res;
    switch (Opc) {
    case ValueID::FAdd:
      Res = DA + DB;
      break;
    case ValueID::FSub:
      Res = DA - DB;
      break;
    case ValueID::FMul:
      Res = DA * DB;
      break;
    case ValueID::FDiv:
      Res = DA / DB;
      break;
    default:
      lslp_unreachable("not an FP binary opcode");
    }
    return RuntimeValue::encodeFP(Ty, Res);
  }

  const Module &M;
  std::vector<uint8_t> &Memory;
  const std::map<const GlobalArray *, uint64_t> &GlobalAddr;
  const TargetTransformInfo *TTI;
  uint64_t StepLimit;
  bool CollectStats;
};

} // namespace

Interpreter::RunResult Interpreter::run(const Function *F,
                                        const std::vector<RuntimeValue> &Args) {
  assert(F->getParent() == &M && "function from a different module");
  Executor Exec(M, Memory, GlobalAddr, TTI, StepLimit, CollectStats);
  return Exec.run(F, Args);
}
