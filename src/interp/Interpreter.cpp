//===- interp/Interpreter.cpp - IR interpreter + cycle model ----------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"

#include "costmodel/TargetTransformInfo.h"
#include "interp/LaneOps.h"
#include "ir/BasicBlock.h"
#include "ir/Constants.h"
#include "ir/Function.h"
#include "ir/Instruction.h"
#include "ir/Module.h"
#include "ir/Printer.h"
#include "support/Debug.h"

#include <cstring>

using namespace lslp;

Interpreter::Interpreter(const Module &M, const TargetTransformInfo *TTI)
    : ExecutionEngine(M), TTI(TTI) {}

//===----------------------------------------------------------------------===//
// Execution
//===----------------------------------------------------------------------===//

namespace {

/// Per-call execution frame.
struct Frame {
  std::map<const Value *, RuntimeValue> Values;
};

/// Evaluation of all instruction kinds; holds the per-run mutable state.
class Executor {
public:
  Executor(const Module &M, std::vector<uint8_t> &Memory,
           const std::map<const GlobalArray *, uint64_t> &GlobalAddr,
           const TargetTransformInfo *TTI, uint64_t StepLimit,
           bool CollectStats)
      : M(M), Memory(Memory), GlobalAddr(GlobalAddr), TTI(TTI),
        StepLimit(StepLimit), CollectStats(CollectStats) {}

  ExecStats run(const Function *F, const std::vector<RuntimeValue> &Args) {
    ExecStats Result;
    if (Args.size() != F->getNumArgs())
      return trapResult(std::move(Result), "argument count mismatch calling @" +
                                               F->getName());
    Frame Fr;
    for (unsigned I = 0, E = F->getNumArgs(); I != E; ++I) {
      if (Args[I].Ty != F->getArg(I)->getType())
        return trapResult(std::move(Result),
                          "argument type mismatch calling @" + F->getName());
      Fr.Values[F->getArg(I)] = Args[I];
    }

    const BasicBlock *BB = F->getEntryBlock();
    const BasicBlock *PrevBB = nullptr;
    while (true) {
      // Phase 1: evaluate all phis against the incoming edge atomically.
      std::vector<std::pair<const PHINode *, RuntimeValue>> PhiValues;
      auto It = BB->begin();
      for (; It != BB->end(); ++It) {
        const auto *Phi = dyn_cast<PHINode>(It->get());
        if (!Phi)
          break;
        const Value *In = Phi->getIncomingValueForBlock(PrevBB);
        if (!In) {
          Trap.trap("phi has no entry for predecessor");
          break;
        }
        PhiValues.push_back({Phi, getValue(Fr, In)});
        charge(Phi, Result);
        if (Trap.trapped())
          break;
      }
      if (Trap.trapped())
        return trapResult(std::move(Result), Trap.reason());
      for (auto &[Phi, V] : PhiValues)
        Fr.Values[Phi] = std::move(V);

      // Phase 2: straight-line execution to the terminator.
      const BasicBlock *NextBB = nullptr;
      for (; It != BB->end(); ++It) {
        const Instruction *I = It->get();
        charge(I, Result);
        if (Trap.trapped())
          return trapResult(std::move(Result), Trap.reason());
        if (const auto *Br = dyn_cast<BranchInst>(I)) {
          unsigned Taken =
              Br->isConditional()
                  ? (getValue(Fr, Br->getCondition()).asUInt() & 1 ? 0u : 1u)
                  : 0u;
          NextBB = Br->getSuccessor(Taken);
          break;
        }
        if (const auto *Ret = dyn_cast<ReturnInst>(I)) {
          if (const Value *RV = Ret->getReturnValue())
            Result.ReturnValue = getValue(Fr, RV);
          if (Trap.trapped())
            return trapResult(std::move(Result), Trap.reason());
          return Result;
        }
        RuntimeValue V = evaluate(Fr, I);
        if (Trap.trapped())
          return trapResult(std::move(Result), Trap.reason());
        if (!I->getType()->isVoidTy())
          Fr.Values[I] = std::move(V);
      }
      if (Trap.trapped())
        return trapResult(std::move(Result), Trap.reason());
      if (!NextBB) {
        return trapResult(std::move(Result),
                          "block fell through without terminator");
      }
      PrevBB = BB;
      BB = NextBB;
    }
  }

private:
  static ExecStats trapResult(ExecStats S, std::string Reason) {
    S.Trapped = true;
    S.TrapReason = std::move(Reason);
    S.ReturnValue = RuntimeValue();
    return S;
  }

  void charge(const Instruction *I, ExecStats &Result) {
    ++Result.DynamicInsts;
    if (Result.DynamicInsts > StepLimit) {
      Trap.trap("step limit exceeded (infinite loop?)");
      return;
    }
    if (TTI)
      Result.TotalCost += static_cast<uint64_t>(
          std::max(0, TTI->getInstructionCost(I)));
    if (CollectStats) {
      // Stores are classified by the stored type, everything else by the
      // result type.
      Type *Ty = I->getType();
      if (const auto *St = dyn_cast<StoreInst>(I))
        Ty = St->getAccessType();
      auto &Counts = Ty->isVectorTy() ? Result.VectorOpCounts
                                      : Result.ScalarOpCounts;
      ++Counts[I->getOpcode()];
    }
  }

  RuntimeValue getValue(Frame &Fr, const Value *V) {
    if (const auto *CI = dyn_cast<ConstantInt>(V))
      return RuntimeValue(CI->getType(), {CI->getZExtValue()});
    if (const auto *CF = dyn_cast<ConstantFP>(V))
      return RuntimeValue::makeFP(CF->getType(), CF->getValue());
    if (const auto *CV = dyn_cast<ConstantVector>(V)) {
      std::vector<uint64_t> Lanes;
      Lanes.reserve(CV->getNumElements());
      for (unsigned I = 0, E = CV->getNumElements(); I != E; ++I)
        Lanes.push_back(getValue(Fr, CV->getElement(I)).Lanes[0]);
      return RuntimeValue(CV->getType(), std::move(Lanes));
    }
    if (const auto *U = dyn_cast<UndefValue>(V)) {
      unsigned Lanes = 1;
      if (const auto *VT = dyn_cast<VectorType>(U->getType()))
        Lanes = VT->getNumElements();
      return RuntimeValue(U->getType(),
                          std::vector<uint64_t>(Lanes, 0));
    }
    if (const auto *G = dyn_cast<GlobalArray>(V))
      return RuntimeValue::makePointer(G->getType(), GlobalAddr.at(G));
    auto It = Fr.Values.find(V);
    if (It == Fr.Values.end()) {
      Trap.trap("use of value before definition");
      return poisonValue(V);
    }
    return It->second;
  }

  /// A zero-filled value of \p V's shape, returned after a trap so the
  /// current instruction can finish shape-correctly before the caller
  /// notices Trap and discards the result.
  static RuntimeValue poisonValue(const Value *V) {
    unsigned Lanes = 1;
    if (const auto *VT = dyn_cast<VectorType>(V->getType()))
      Lanes = VT->getNumElements();
    return RuntimeValue(V->getType(), std::vector<uint64_t>(Lanes, 0));
  }

  //===--------------------------------------------------------------------===//
  // Memory
  //===--------------------------------------------------------------------===//

  /// Records an OOB trap and returns false on bad accesses. Callers stop
  /// at the first failing lane so the set of retired lane writes is
  /// identical across engines.
  bool checkAccess(uint64_t Addr, unsigned Size) {
    if (Addr < 4096 || Addr + Size > Memory.size()) {
      Trap.trap("out-of-bounds memory access");
      return false;
    }
    return true;
  }

  uint64_t loadLane(uint64_t Addr, const Type *ScalarTy) {
    unsigned Size = ScalarTy->getSizeInBytes();
    if (!checkAccess(Addr, Size))
      return 0;
    uint64_t Raw = 0;
    std::memcpy(&Raw, &Memory[Addr], Size);
    return Raw;
  }

  /// Returns false (write skipped) when the access traps.
  bool storeLane(uint64_t Addr, const Type *ScalarTy, uint64_t Raw) {
    unsigned Size = ScalarTy->getSizeInBytes();
    if (!checkAccess(Addr, Size))
      return false;
    std::memcpy(&Memory[Addr], &Raw, Size);
    return true;
  }

  //===--------------------------------------------------------------------===//
  // Instruction evaluation (lane semantics shared with src/vm: LaneOps.h)
  //===--------------------------------------------------------------------===//

  RuntimeValue evaluate(Frame &Fr, const Instruction *I) {
    switch (I->getOpcode()) {
    case ValueID::Load: {
      const auto *L = cast<LoadInst>(I);
      uint64_t Addr = getValue(Fr, L->getPointerOperand()).asUInt();
      Type *Ty = L->getAccessType();
      if (const auto *VT = dyn_cast<VectorType>(Ty)) {
        Type *ElemTy = VT->getElementType();
        std::vector<uint64_t> Lanes(VT->getNumElements());
        for (unsigned K = 0; K != VT->getNumElements(); ++K) {
          Lanes[K] = loadLane(Addr + uint64_t(K) * ElemTy->getSizeInBytes(),
                              ElemTy);
          if (Trap.trapped())
            break;
        }
        return RuntimeValue(Ty, std::move(Lanes));
      }
      return RuntimeValue(Ty, {loadLane(Addr, Ty)});
    }
    case ValueID::Store: {
      const auto *S = cast<StoreInst>(I);
      RuntimeValue V = getValue(Fr, S->getValueOperand());
      uint64_t Addr = getValue(Fr, S->getPointerOperand()).asUInt();
      // Operands already trapped (use-before-def poison): do not touch
      // memory with a garbage address.
      if (Trap.trapped())
        return RuntimeValue();
      Type *Ty = S->getAccessType();
      if (const auto *VT = dyn_cast<VectorType>(Ty)) {
        Type *ElemTy = VT->getElementType();
        for (unsigned K = 0; K != VT->getNumElements(); ++K)
          if (!storeLane(Addr + uint64_t(K) * ElemTy->getSizeInBytes(), ElemTy,
                         V.Lanes[K]))
            break;
      } else {
        storeLane(Addr, Ty, V.Lanes[0]);
      }
      return RuntimeValue();
    }
    case ValueID::Gep: {
      const auto *G = cast<GEPInst>(I);
      uint64_t Base = getValue(Fr, G->getBaseOperand()).asUInt();
      RuntimeValue Idx = getValue(Fr, G->getIndexOperand());
      int64_t Offset = Idx.asSInt() *
                       static_cast<int64_t>(
                           G->getElementType()->getSizeInBytes());
      return RuntimeValue::makePointer(
          G->getType(), Base + static_cast<uint64_t>(Offset));
    }
    case ValueID::SExt:
    case ValueID::ZExt:
    case ValueID::Trunc:
    case ValueID::SIToFP:
    case ValueID::FPToSI: {
      const auto *C = cast<CastInst>(I);
      RuntimeValue Src = getValue(Fr, C->getSourceOperand());
      laneops::ScalarKind SrcK =
          laneops::ScalarKind::of(C->getSrcType()->getScalarType());
      laneops::ScalarKind DstK =
          laneops::ScalarKind::of(C->getDestType()->getScalarType());
      std::vector<uint64_t> Lanes(Src.getNumLanes());
      for (unsigned K = 0; K != Src.getNumLanes(); ++K)
        Lanes[K] = laneops::evalCastLane(I->getOpcode(), SrcK, DstK,
                                         Src.Lanes[K]);
      return RuntimeValue(C->getDestType(), std::move(Lanes));
    }
    case ValueID::ICmp: {
      const auto *C = cast<ICmpInst>(I);
      RuntimeValue L = getValue(Fr, C->getLHS());
      RuntimeValue R = getValue(Fr, C->getRHS());
      bool Res = laneops::evalICmp(C->getPredicate(),
                                   laneops::ScalarKind::of(L.Ty), L.asUInt(),
                                   R.asUInt());
      return RuntimeValue::makeInt(I->getType(), Res ? 1 : 0);
    }
    case ValueID::Select: {
      const auto *S = cast<SelectInst>(I);
      RuntimeValue Cond = getValue(Fr, S->getCondition());
      if (S->getCondition()->getType()->isVectorTy()) {
        // Per-lane blend (LaneOps.h evalSelectLane).
        RuntimeValue T = getValue(Fr, S->getTrueValue());
        RuntimeValue F = getValue(Fr, S->getFalseValue());
        std::vector<uint64_t> Lanes(Cond.getNumLanes());
        for (unsigned K = 0; K != Cond.getNumLanes(); ++K)
          Lanes[K] =
              laneops::evalSelectLane(Cond.Lanes[K], T.Lanes[K], F.Lanes[K]);
        return RuntimeValue(I->getType(), std::move(Lanes));
      }
      bool Taken = Cond.asUInt() & 1;
      return getValue(Fr, Taken ? S->getTrueValue() : S->getFalseValue());
    }
    case ValueID::InsertElement: {
      const auto *IE = cast<InsertElementInst>(I);
      RuntimeValue Vec = getValue(Fr, IE->getVectorOperand());
      RuntimeValue Elt = getValue(Fr, IE->getElementOperand());
      uint64_t Lane = getValue(Fr, IE->getIndexOperand()).asUInt();
      if (Lane >= Vec.Lanes.size()) {
        Trap.trap("insertelement lane out of range");
        return Vec;
      }
      Vec.Lanes[Lane] = Elt.Lanes[0];
      return Vec;
    }
    case ValueID::ExtractElement: {
      const auto *EE = cast<ExtractElementInst>(I);
      RuntimeValue Vec = getValue(Fr, EE->getVectorOperand());
      uint64_t Lane = getValue(Fr, EE->getIndexOperand()).asUInt();
      if (Lane >= Vec.Lanes.size()) {
        Trap.trap("extractelement lane out of range");
        return RuntimeValue(I->getType(), {0});
      }
      return RuntimeValue(I->getType(), {Vec.Lanes[Lane]});
    }
    case ValueID::ShuffleVector: {
      const auto *SV = cast<ShuffleVectorInst>(I);
      RuntimeValue V1 = getValue(Fr, SV->getFirstVector());
      RuntimeValue V2 = getValue(Fr, SV->getSecondVector());
      unsigned SrcLanes = V1.getNumLanes();
      std::vector<uint64_t> Lanes;
      Lanes.reserve(SV->getMask().size());
      for (int MaskElt : SV->getMask()) {
        if (MaskElt < 0)
          Lanes.push_back(0);
        else if (static_cast<unsigned>(MaskElt) < SrcLanes)
          Lanes.push_back(V1.Lanes[MaskElt]);
        else
          Lanes.push_back(V2.Lanes[MaskElt - SrcLanes]);
      }
      return RuntimeValue(I->getType(), std::move(Lanes));
    }
    default:
      assert(I->isBinaryOp() && "unhandled opcode in interpreter");
      return evalBinary(Fr, I);
    }
  }

  RuntimeValue evalBinary(Frame &Fr, const Instruction *I) {
    RuntimeValue L = getValue(Fr, I->getOperand(0));
    RuntimeValue R = getValue(Fr, I->getOperand(1));
    Type *Ty = I->getType();
    Type *ScalarTy = Ty->getScalarType();
    unsigned Lanes = L.getNumLanes();
    std::vector<uint64_t> Out(Lanes);
    if (ScalarTy->isFloatingPointTy()) {
      bool IsFloat32 = ScalarTy->isFloatTy();
      for (unsigned K = 0; K != Lanes; ++K)
        Out[K] = laneops::evalFPBinLane(I->getOpcode(), IsFloat32, L.Lanes[K],
                                        R.Lanes[K]);
    } else {
      unsigned Bits = cast<IntegerType>(ScalarTy)->getBitWidth();
      for (unsigned K = 0; K != Lanes; ++K)
        Out[K] = laneops::evalIntBinLane(I->getOpcode(), Bits, L.Lanes[K],
                                         R.Lanes[K], Trap);
    }
    return RuntimeValue(Ty, std::move(Out));
  }

  const Module &M;
  std::vector<uint8_t> &Memory;
  const std::map<const GlobalArray *, uint64_t> &GlobalAddr;
  const TargetTransformInfo *TTI;
  uint64_t StepLimit;
  bool CollectStats;
  laneops::TrapSink Trap;
};

} // namespace

ExecStats Interpreter::run(const Function *F,
                           const std::vector<RuntimeValue> &Args) {
  assert(F->getParent() == &M && "function from a different module");
  Executor Exec(M, Memory, GlobalAddr, TTI, StepLimit, CollectStats);
  return Exec.run(F, Args);
}
