//===- interp/LaneOps.h - Shared per-lane execution semantics ---*- C++ -*-===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The per-lane semantics of arithmetic, cast and compare opcodes, shared
/// by the tree-walking interpreter (src/interp) and the bytecode VM
/// (src/vm). Both engines must produce bit-identical lanes and identical
/// traps for every input; keeping the lane math in one place makes that a
/// structural property rather than a test-enforced one.
///
/// Lanes use the RuntimeValue encoding: integers zero-extended in 64 bits,
/// floats/doubles as raw bit patterns, pointers as byte addresses.
///
//===----------------------------------------------------------------------===//

#ifndef LSLP_INTERP_LANEOPS_H
#define LSLP_INTERP_LANEOPS_H

#include "ir/Instruction.h"
#include "ir/Type.h"
#include "support/Debug.h"

#include <bit>
#include <cstdint>
#include <string>

namespace lslp {
namespace laneops {

/// Scalar-type shape, precomputable at bytecode-compile time so the VM
/// dispatch loop never touches Type objects.
struct ScalarKind {
  uint8_t Bits = 64;      ///< Integer bit width (64 for pointers/FP lanes).
  bool IsFP = false;      ///< float or double.
  bool IsFloat32 = false; ///< float (as opposed to double).
  bool IsPointer = false;

  static ScalarKind of(const Type *Ty) {
    ScalarKind K;
    if (const auto *IntTy = dyn_cast<IntegerType>(Ty)) {
      K.Bits = static_cast<uint8_t>(IntTy->getBitWidth());
    } else if (Ty->isFloatingPointTy()) {
      K.IsFP = true;
      K.IsFloat32 = Ty->isFloatTy();
    } else if (Ty->isPointerTy()) {
      K.IsPointer = true;
    } else {
      lslp_unreachable("no scalar kind for this type");
    }
    return K;
  }
};

/// Masks \p V to \p Bits.
inline uint64_t truncToBits(unsigned Bits, uint64_t V) {
  if (Bits >= 64)
    return V;
  return V & ((uint64_t(1) << Bits) - 1);
}

/// Sign-extends the low \p Bits of \p V.
inline int64_t sextBits(unsigned Bits, uint64_t V) {
  if (Bits >= 64)
    return static_cast<int64_t>(V);
  uint64_t SignBit = uint64_t(1) << (Bits - 1);
  return static_cast<int64_t>((V ^ SignBit)) - static_cast<int64_t>(SignBit);
}

/// Encodes a double as a raw FP lane (rounding to float for float lanes).
inline uint64_t encodeFP(bool IsFloat32, double V) {
  if (IsFloat32)
    return std::bit_cast<uint32_t>(static_cast<float>(V));
  return std::bit_cast<uint64_t>(V);
}

/// Decodes a raw FP lane.
inline double decodeFP(bool IsFloat32, uint64_t Lane) {
  if (IsFloat32)
    return std::bit_cast<float>(static_cast<uint32_t>(Lane));
  return std::bit_cast<double>(Lane);
}

/// Records the first trap of one execution. Traps no longer abort the
/// process: both engines latch the reason here, stop at the next
/// instruction boundary, and surface it as ExecStats::Trapped — a
/// crashing input degrades to a diagnosable result instead of killing a
/// whole fuzz sweep. Reasons carry no engine prefix ("udiv by zero", not
/// "vm: udiv by zero") so the oracle can compare them across engines.
class TrapSink {
public:
  void trap(std::string Why) {
    if (!Trapped) {
      Trapped = true;
      Reason = std::move(Why);
    }
  }
  bool trapped() const { return Trapped; }
  const std::string &reason() const { return Reason; }

private:
  bool Trapped = false;
  std::string Reason;
};

/// One lane of an integer binary operator of width \p Bits. A trapping
/// lane (division by zero, signed-division overflow) records into
/// \p Trap and yields 0; the caller stops at the instruction boundary,
/// so the placeholder lane is never observable.
inline uint64_t evalIntBinLane(ValueID Opc, unsigned Bits, uint64_t A,
                               uint64_t B, TrapSink &Trap) {
  auto Trunc = [&](uint64_t V) { return truncToBits(Bits, V); };
  switch (Opc) {
  case ValueID::Add:
    return Trunc(A + B);
  case ValueID::Sub:
    return Trunc(A - B);
  case ValueID::Mul:
    return Trunc(A * B);
  case ValueID::UDiv:
    if (B == 0) {
      Trap.trap("udiv by zero");
      return 0;
    }
    return Trunc(A / B);
  case ValueID::SDiv: {
    int64_t SA = sextBits(Bits, A);
    int64_t SB = sextBits(Bits, B);
    if (SB == 0) {
      Trap.trap("sdiv by zero");
      return 0;
    }
    if (SA == INT64_MIN && SB == -1) {
      Trap.trap("sdiv overflow");
      return 0;
    }
    return Trunc(static_cast<uint64_t>(SA / SB));
  }
  case ValueID::URem:
    if (B == 0) {
      Trap.trap("urem by zero");
      return 0;
    }
    return Trunc(A % B);
  case ValueID::SRem: {
    int64_t SA = sextBits(Bits, A);
    int64_t SB = sextBits(Bits, B);
    if (SB == 0) {
      Trap.trap("srem by zero");
      return 0;
    }
    if (SA == INT64_MIN && SB == -1) {
      Trap.trap("srem overflow");
      return 0;
    }
    return Trunc(static_cast<uint64_t>(SA % SB));
  }
  case ValueID::And:
    return A & B;
  case ValueID::Or:
    return A | B;
  case ValueID::Xor:
    return A ^ B;
  case ValueID::Shl:
    return B >= Bits ? 0 : Trunc(A << B);
  case ValueID::LShr:
    return B >= Bits ? 0 : A >> B;
  case ValueID::AShr: {
    int64_t SA = sextBits(Bits, A);
    uint64_t Amount = B >= Bits ? Bits - 1 : B;
    return Trunc(static_cast<uint64_t>(SA >> Amount));
  }
  default:
    lslp_unreachable("not an integer binary opcode");
  }
}

/// One lane of a floating-point binary operator.
inline uint64_t evalFPBinLane(ValueID Opc, bool IsFloat32, uint64_t A,
                              uint64_t B) {
  double DA = decodeFP(IsFloat32, A);
  double DB = decodeFP(IsFloat32, B);
  double Res;
  switch (Opc) {
  case ValueID::FAdd:
    Res = DA + DB;
    break;
  case ValueID::FSub:
    Res = DA - DB;
    break;
  case ValueID::FMul:
    Res = DA * DB;
    break;
  case ValueID::FDiv:
    Res = DA / DB;
    break;
  default:
    lslp_unreachable("not an FP binary opcode");
  }
  return encodeFP(IsFloat32, Res);
}

/// One lane of a cast.
inline uint64_t evalCastLane(ValueID Opc, ScalarKind Src, ScalarKind Dst,
                             uint64_t Lane) {
  switch (Opc) {
  case ValueID::SExt:
    return truncToBits(Dst.Bits,
                       static_cast<uint64_t>(sextBits(Src.Bits, Lane)));
  case ValueID::ZExt:
    return Lane; // Already stored zero-extended.
  case ValueID::Trunc:
    return truncToBits(Dst.Bits, Lane);
  case ValueID::SIToFP:
    return encodeFP(Dst.IsFloat32,
                    static_cast<double>(sextBits(Src.Bits, Lane)));
  case ValueID::FPToSI: {
    double D = decodeFP(Src.IsFloat32, Lane);
    // Out-of-range conversions are undefined in LLVM; define them as
    // saturation so both engines stay deterministic.
    constexpr double Max = 9223372036854775807.0;
    int64_t V;
    if (D != D) // NaN.
      V = 0;
    else if (D >= Max)
      V = INT64_MAX;
    else if (D <= -Max)
      V = INT64_MIN;
    else
      V = static_cast<int64_t>(D);
    return truncToBits(Dst.Bits, static_cast<uint64_t>(V));
  }
  default:
    lslp_unreachable("not a cast opcode");
  }
}

/// Integer/pointer comparison of two raw lanes of kind \p K.
inline bool evalICmp(ICmpInst::Predicate Pred, ScalarKind K, uint64_t UL,
                     uint64_t UR) {
  int64_t SL = K.IsPointer ? static_cast<int64_t>(UL) : sextBits(K.Bits, UL);
  int64_t SR = K.IsPointer ? static_cast<int64_t>(UR) : sextBits(K.Bits, UR);
  switch (Pred) {
  case ICmpInst::EQ:
    return UL == UR;
  case ICmpInst::NE:
    return UL != UR;
  case ICmpInst::SLT:
    return SL < SR;
  case ICmpInst::SLE:
    return SL <= SR;
  case ICmpInst::SGT:
    return SL > SR;
  case ICmpInst::SGE:
    return SL >= SR;
  case ICmpInst::ULT:
    return UL < UR;
  case ICmpInst::ULE:
    return UL <= UR;
  case ICmpInst::UGT:
    return UL > UR;
  case ICmpInst::UGE:
    return UL >= UR;
  }
  lslp_unreachable("covered switch");
}

/// Per-lane select: the low bit of \p Cond picks \p TrueV or \p FalseV.
/// All three engines (interpreter, vm SelectLanes, jit blend) implement
/// exactly this — only bit 0 of the condition lane is significant.
inline uint64_t evalSelectLane(uint64_t Cond, uint64_t TrueV,
                               uint64_t FalseV) {
  return (Cond & 1) ? TrueV : FalseV;
}

} // namespace laneops
} // namespace lslp

#endif // LSLP_INTERP_LANEOPS_H
