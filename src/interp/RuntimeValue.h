//===- interp/RuntimeValue.h - Interpreter value representation -*- C++ -*-===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The interpreter's dynamic value: a type plus one 64-bit raw lane per
/// element (one lane for scalars). Integers are stored zero-extended,
/// floats/doubles as bit patterns, pointers as byte addresses.
///
//===----------------------------------------------------------------------===//

#ifndef LSLP_INTERP_RUNTIMEVALUE_H
#define LSLP_INTERP_RUNTIMEVALUE_H

#include "ir/Type.h"

#include <bit>
#include <cstdint>
#include <vector>

namespace lslp {

/// A dynamic (runtime) value of some first-class IR type.
struct RuntimeValue {
  Type *Ty = nullptr;
  /// One raw 64-bit lane per vector element (a single lane for scalars).
  std::vector<uint64_t> Lanes;

  RuntimeValue() = default;
  RuntimeValue(Type *Ty, std::vector<uint64_t> Lanes)
      : Ty(Ty), Lanes(std::move(Lanes)) {}

  bool isValid() const { return Ty != nullptr; }
  unsigned getNumLanes() const { return static_cast<unsigned>(Lanes.size()); }

  /// \name Scalar constructors.
  /// @{
  static RuntimeValue makeInt(Type *Ty, uint64_t V) {
    return RuntimeValue(Ty, {truncateToWidth(Ty, V)});
  }
  static RuntimeValue makeFP(Type *Ty, double V) {
    return RuntimeValue(Ty, {encodeFP(Ty, V)});
  }
  static RuntimeValue makePointer(Type *PtrTy, uint64_t Addr) {
    return RuntimeValue(PtrTy, {Addr});
  }
  /// @}

  /// \name Scalar accessors (single-lane values).
  /// @{
  uint64_t asUInt() const { return Lanes.at(0); }
  int64_t asSInt() const { return signExtendLane(Ty, Lanes.at(0)); }
  double asFP() const { return decodeFP(Ty, Lanes.at(0)); }
  /// @}

  /// \name Raw lane encoding helpers.
  /// @{
  /// Masks \p V to the bit width of integer type \p Ty.
  static uint64_t truncateToWidth(const Type *Ty, uint64_t V);
  /// Sign-extends raw lane \p V of scalar type \p Ty (integers only).
  static int64_t signExtendLane(const Type *Ty, uint64_t V);
  /// Encodes a double as the raw lane pattern of FP scalar type \p Ty
  /// (rounding to float precision for float).
  static uint64_t encodeFP(const Type *Ty, double V);
  /// Decodes a raw lane of FP scalar type \p Ty.
  static double decodeFP(const Type *Ty, uint64_t Lane);
  /// @}

  bool operator==(const RuntimeValue &O) const {
    return Ty == O.Ty && Lanes == O.Lanes;
  }
};

inline uint64_t RuntimeValue::truncateToWidth(const Type *Ty, uint64_t V) {
  const auto *IntTy = cast<IntegerType>(Ty);
  unsigned Bits = IntTy->getBitWidth();
  if (Bits >= 64)
    return V;
  return V & ((uint64_t(1) << Bits) - 1);
}

inline int64_t RuntimeValue::signExtendLane(const Type *Ty, uint64_t V) {
  const auto *IntTy = cast<IntegerType>(Ty);
  unsigned Bits = IntTy->getBitWidth();
  if (Bits >= 64)
    return static_cast<int64_t>(V);
  uint64_t SignBit = uint64_t(1) << (Bits - 1);
  return static_cast<int64_t>((V ^ SignBit)) - static_cast<int64_t>(SignBit);
}

inline uint64_t RuntimeValue::encodeFP(const Type *Ty, double V) {
  if (Ty->isFloatTy())
    return std::bit_cast<uint32_t>(static_cast<float>(V));
  return std::bit_cast<uint64_t>(V);
}

inline double RuntimeValue::decodeFP(const Type *Ty, uint64_t Lane) {
  if (Ty->isFloatTy())
    return std::bit_cast<float>(static_cast<uint32_t>(Lane));
  return std::bit_cast<double>(Lane);
}

} // namespace lslp

#endif // LSLP_INTERP_RUNTIMEVALUE_H
