//===- fuzz/DifferentialOracle.h - Scalar-vs-vector equivalence -*- C++ -*-===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The correctness oracle of the differential fuzzer. Given a module in
/// textual IR form it:
///
///   1. parses + verifies + interprets a scalar baseline copy,
///   2. for every VectorizerConfig in the sweep: parses a fresh copy, runs
///      SLPVectorizerPass, re-verifies, checks the cost/profitability
///      invariant (accepted graphs cost strictly below the threshold),
///      checks pass determinism (two runs print identically), interprets,
///      and diffs the final memory image and return values bit-for-bit
///      against the baseline.
///
/// Working from text (rather than cloning Module, which has no copy
/// support) doubles as a continuous printer->parser round-trip check: any
/// IR the generator emits must survive serialization.
///
//===----------------------------------------------------------------------===//

#ifndef LSLP_FUZZ_DIFFERENTIALORACLE_H
#define LSLP_FUZZ_DIFFERENTIALORACLE_H

#include "vectorizer/Config.h"
#include "vm/ExecutionEngine.h"

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace lslp {

class Module;

/// Oracle configuration.
struct OracleOptions {
  /// Seed for the deterministic global-memory initialization.
  uint64_t InputSeed = 0x5eed;

  /// Vectorizer configurations to sweep; empty selects defaultConfigs().
  std::vector<VectorizerConfig> Configs;

  /// Re-run each pass on a second fresh copy and require identical output
  /// (catches iteration-order nondeterminism).
  bool CheckDeterminism = true;

  /// Engine used for the baseline and vectorized executions.
  EngineKind Engine = EngineKind::TreeWalk;

  /// Cross-engine invariant: execute the baseline and every vectorized
  /// module on BOTH engines and require bit-identical results — every
  /// output byte, return value, and the full ExecStats (dynamic
  /// instruction count, cycle count, per-opcode mix). This is what keeps
  /// the fast vm backend continuously honest against the tree-walker.
  bool CheckEngineParity = false;

  /// Strategy axis: every Greedy config in the sweep is additionally run
  /// with Strategy = Global (config name suffixed "-global"), under every
  /// other invariant (verification, determinism, bit-exact execution)
  /// plus one more: the global strategy's total accepted static cost must
  /// be <= the greedy strategy's (equal allowed — ties commit the greedy
  /// pack set). Configs already set to Global are swept once, unchanged.
  bool SweepStrategies = true;

  /// Fault-injection probability (see support/FaultInjection.h). With a
  /// probability > 0 every pass run constructs a fresh FaultInjector from
  /// (FaultSeed, FaultProbability) — streams are pure functions of the
  /// seed, so the determinism re-run draws the identical faults — and the
  /// oracle additionally requires that any run which injected faults also
  /// emitted at least one budget-exhausted remark. Every other invariant
  /// (verification, bit-exact scalar-fallback output, determinism) applies
  /// unchanged: an injected fault must never surface as anything but a
  /// clean diagnostic plus the untouched scalar behavior.
  double FaultProbability = 0.0;

  /// Seed for the deterministic fault streams.
  uint64_t FaultSeed = 0;

  /// Test-only hook, run on the module after the vectorizer pass and
  /// before execution. Lets tests inject a deliberate miscompile to prove
  /// the oracle and reducer actually detect and shrink failures.
  std::function<void(Module &)> AfterPassHook;
};

/// Outcome of one oracle run.
struct OracleVerdict {
  bool Passed = true;
  /// Name of the configuration that failed (empty for parse/baseline
  /// failures).
  std::string ConfigName;
  /// Human-readable failure description.
  std::string Reason;
  /// Transformed IR of the failing configuration (empty when irrelevant).
  std::string VectorizedIR;

  explicit operator bool() const { return Passed; }
};

/// Runs the scalar-vs-vector differential check on textual IR modules.
class DifferentialOracle {
public:
  explicit DifferentialOracle(OracleOptions Opts = {});

  /// The standard configuration sweep: SLP-NR, SLP, LSLP, plus look-ahead
  /// depth, multi-node size, aggregation/strategy and extension ablations.
  static std::vector<VectorizerConfig> defaultConfigs();

  /// Checks \p IRText under every configuration. Returns the first
  /// failure, or a passing verdict.
  OracleVerdict check(const std::string &IRText) const;

  const OracleOptions &options() const { return Opts; }

private:
  OracleOptions Opts;
};

} // namespace lslp

#endif // LSLP_FUZZ_DIFFERENTIALORACLE_H
