//===- fuzz/FuzzDriver.h - Parallel differential fuzz sweep -----*- C++ -*-===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The seed-sweep driver behind `lslpc --fuzz=N [--jobs=J]`. Each seed is
/// an independent unit of work — its own Context, generated module,
/// oracle configs, engines, and (on failure) reducer scratch — so seeds
/// shard freely across a thread pool. Outcomes are delivered to the
/// caller on the calling thread in ascending seed order regardless of
/// completion order, which makes the driver's observable behavior (and
/// lslpc's output) independent of the job count.
///
//===----------------------------------------------------------------------===//

#ifndef LSLP_FUZZ_FUZZDRIVER_H
#define LSLP_FUZZ_FUZZDRIVER_H

#include "fuzz/DifferentialOracle.h"

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace lslp {

/// Configuration of one fuzz sweep.
struct FuzzSweepOptions {
  /// Number of consecutive seeds to run.
  int64_t Count = 0;
  /// First generator seed.
  int64_t FirstSeed = 0;
  /// Worker threads; 1 = run everything on the calling thread.
  unsigned Jobs = 1;
  /// Engine for the baseline and vectorized executions.
  EngineKind Engine = EngineKind::TreeWalk;
  /// Cross-validate every seed on both engines (default: every 4th).
  bool ParityAll = false;
  /// Fault-injection probability forwarded to every oracle config (see
  /// OracleOptions::FaultProbability). 0 disables injection.
  double FaultProbability = 0.0;
  /// Seed for the deterministic fault streams.
  uint64_t FaultSeed = 0;
  /// Packing strategy under test. Greedy (the default) sweeps the default
  /// greedy configs plus, via the oracle's strategy axis, each one's
  /// global twin with the global-cost <= greedy-cost invariant. Global
  /// pins every config to global packing and disables the (then
  /// redundant) strategy axis — the CI sanitizer job uses this to soak
  /// the pack-set solver alone under ASan/UBSan.
  VectorizerConfig::PackingStrategyKind Strategy =
      VectorizerConfig::PackingStrategyKind::Greedy;
  /// Pin the pre-vectorization CFG pipeline on across every swept config
  /// (lslpc -if-convert / -unroll[=N] under --fuzz). Off, the sweep still
  /// exercises the passes through the oracle's dedicated LSLP-cfg config.
  bool IfConvert = false;
  bool Unroll = false;
  unsigned UnrollFactor = 4;
  /// When non-empty, the sweep shards across the lslpd daemons at these
  /// socket paths instead of running in-process. runFuzzSweep() itself
  /// ignores this field (the fuzz library cannot depend on the server
  /// library); drivers dispatch to server::runFuzzSweepViaDaemons, which
  /// honors the same outcome-delivery contract.
  std::vector<std::string> DaemonSockets;
};

/// The oracle's verdict on one seed, plus the minimized reproducer when
/// the seed failed.
struct SeedOutcome {
  uint64_t Seed = 0;
  bool Passed = false;
  /// True when the generated module failed IR verification (a generator
  /// bug — counted as a failure, but there is nothing to reduce).
  bool VerifyFailed = false;
  /// Verifier diagnostics, one per line (VerifyFailed only).
  std::string VerifyErrors;
  /// Failing configuration name and reason (oracle failures only).
  std::string ConfigName;
  std::string Reason;
  /// ddmin-minimized reproducer (oracle failures only).
  std::string ReducedIR;
  /// Reduction steps the minimizer adopted.
  unsigned ReductionSteps = 0;
  /// True when checking this seed crashed (SIGSEGV/SIGABRT/...) and the
  /// crash handler recovered the worker. Counted as a failure; the sweep
  /// continues with the next seed. Requires installCrashHandlers() —
  /// without it a crash still kills the process as before. No in-process
  /// reduction is attempted (the heap may be inconsistent after recovery);
  /// the dumped reproducer is minimized offline instead.
  bool Crashed = false;
  /// Signal name ("SIGSEGV", ...) of the recovered crash.
  std::string CrashSignal;
  /// Path of the `.ll` reproducer the crash handler wrote ("" when no
  /// crash dir is configured).
  std::string ReproPath;
};

/// Runs \p Opts.Count seeds through the differential oracle on
/// \p Opts.Jobs workers. \p Consume is invoked once per seed, on the
/// calling thread, in ascending seed order; failures arrive already
/// minimized. Returns the number of failing seeds.
int64_t runFuzzSweep(const FuzzSweepOptions &Opts,
                     const std::function<void(const SeedOutcome &)> &Consume);

} // namespace lslp

#endif // LSLP_FUZZ_FUZZDRIVER_H
