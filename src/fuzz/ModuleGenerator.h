//===- fuzz/ModuleGenerator.h - Random verifier-clean modules ---*- C++ -*-===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates random but verifier-clean, trap-free modules for differential
/// fuzzing of the vectorizer. Compared to the straight-line i64 programs of
/// tests/integration/PropertyTest.cpp, the generator covers much more of
/// what GraphBuilder/Scheduler/CodeGen accept:
///
///   - multi-block CFGs (diamonds with optional join phis, and counted
///     single-block loops for the pre-vectorization unroller),
///   - integer widths i8/i16/i32/i64 and double, with cast chains,
///   - aliasing and overlapping store/load groups on a shared array,
///   - partially-isomorphic lanes (per-lane opcode flips, operand swaps),
///   - horizontal reduction chains,
///
/// while staying biased toward shapes the SLP seed collector latches onto
/// (groups of adjacent same-type stores fed by near-isomorphic trees).
///
/// Trap freedom by construction: all gep indices stay in bounds (constants,
/// or a loop induction variable whose range is a compile-time fact),
/// division is only by non-zero constants, every loop has a small constant
/// trip count (the CFG is otherwise acyclic), and every
/// floating-point intermediate is an exactly-representable small integer so
/// that fast-math reassociation performed by multi-node reordering cannot
/// change results bit-for-bit.
///
//===----------------------------------------------------------------------===//

#ifndef LSLP_FUZZ_MODULEGENERATOR_H
#define LSLP_FUZZ_MODULEGENERATOR_H

#include "support/RNG.h"

#include <cstdint>
#include <memory>
#include <set>

namespace lslp {

class Context;
class Module;

/// Feature counters for one generated module. Tests aggregate these across
/// seeds to assert the generator actually exercises its advertised space.
struct GeneratorStats {
  unsigned NumBlocks = 0;
  unsigned NumCondBranches = 0;
  unsigned NumJoinPhis = 0;
  unsigned NumLoops = 0; ///< Counted single-block loops emitted.
  unsigned NumStores = 0;
  unsigned NumStoreGroups = 0;
  unsigned NumAliasingGroups = 0;
  unsigned NumReductions = 0;
  unsigned NumCasts = 0;
  unsigned NumPartialIsoLanes = 0; ///< Lanes whose opcode was flipped.
  unsigned NumSwizzledLoads = 0;   ///< Non-contiguous (gather) load groups.
  unsigned NumDivisions = 0;
  std::set<unsigned> IntWidths;    ///< Bit widths of emitted store groups.
  bool UsedFloat = false;          ///< Emitted double-typed operations.

  void merge(const GeneratorStats &O) {
    NumBlocks += O.NumBlocks;
    NumCondBranches += O.NumCondBranches;
    NumJoinPhis += O.NumJoinPhis;
    NumLoops += O.NumLoops;
    NumStores += O.NumStores;
    NumStoreGroups += O.NumStoreGroups;
    NumAliasingGroups += O.NumAliasingGroups;
    NumReductions += O.NumReductions;
    NumCasts += O.NumCasts;
    NumPartialIsoLanes += O.NumPartialIsoLanes;
    NumSwizzledLoads += O.NumSwizzledLoads;
    NumDivisions += O.NumDivisions;
    IntWidths.insert(O.IntWidths.begin(), O.IntWidths.end());
    UsedFloat |= O.UsedFloat;
  }
};

/// Deterministic random-module generator: the same seed always produces a
/// structurally identical module.
class ModuleGenerator {
public:
  /// Number of elements in every generated global array.
  static constexpr uint64_t ArrayLen = 64;

  explicit ModuleGenerator(uint64_t Seed) : Rng(Seed) {}

  /// Generates one module (globals plus a single void @f()) into \p Ctx.
  /// The result verifies and interprets without traps.
  std::unique_ptr<Module> generate(Context &Ctx);

  /// Statistics of the most recent generate() call.
  const GeneratorStats &stats() const { return Stats; }

private:
  RNG Rng;
  GeneratorStats Stats;
};

} // namespace lslp

#endif // LSLP_FUZZ_MODULEGENERATOR_H
