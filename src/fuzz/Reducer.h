//===- fuzz/Reducer.h - ddmin-style test-case minimizer ---------*- C++ -*-===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shrinks a failing module (textual IR) to a minimal reproducer while a
/// caller-supplied predicate keeps returning "still fails". Works on fresh
/// parses of the current text so every candidate is independent, and only
/// adopts candidates that still parse and verify — a reproducer that fails
/// for a boring structural reason is useless.
///
/// Reduction passes, iterated to fixpoint:
///   1. ddmin over the store instructions (the vectorizer's seeds),
///      followed by trivial dead-code elimination,
///   2. collapsing conditional branches and deleting unreachable blocks,
///   3. replacing instructions by same-typed operands (shrinks trees and
///      cast chains),
///   4. dropping unreferenced global arrays.
///
//===----------------------------------------------------------------------===//

#ifndef LSLP_FUZZ_REDUCER_H
#define LSLP_FUZZ_REDUCER_H

#include <functional>
#include <string>

namespace lslp {

/// Minimizes failing IR modules against a failure predicate.
class Reducer {
public:
  /// Returns true when the given textual module still exhibits the
  /// failure being chased.
  using Predicate = std::function<bool(const std::string &)>;

  struct Result {
    /// The minimized module (the input text when nothing could be
    /// removed, or when the input did not fail to begin with).
    std::string IRText;
    /// False if the input did not satisfy the predicate (nothing to do).
    bool InitiallyFailing = false;
    /// Number of adopted (successful) reduction steps.
    unsigned StepsAdopted = 0;
    /// Number of candidate modules evaluated.
    unsigned CandidatesTried = 0;
  };

  explicit Reducer(Predicate StillFails, unsigned MaxCandidates = 4000)
      : StillFails(std::move(StillFails)), MaxCandidates(MaxCandidates) {}

  /// Runs the reduction loop on \p IRText until no pass makes progress or
  /// the candidate budget is exhausted.
  Result reduce(const std::string &IRText) const;

private:
  Predicate StillFails;
  unsigned MaxCandidates;
};

} // namespace lslp

#endif // LSLP_FUZZ_REDUCER_H
