//===- fuzz/Reducer.cpp - ddmin-style test-case minimizer ------------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Reducer.h"

#include "ir/Context.h"
#include "ir/Instruction.h"
#include "ir/Local.h"
#include "ir/Module.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "parser/Parser.h"

#include <algorithm>
#include <set>

using namespace lslp;

namespace {

/// Shared state of one reduction run: the current (failing) text plus the
/// candidate budget and counters.
struct Reduction {
  std::string Text;
  const Reducer::Predicate &StillFails;
  unsigned Budget;
  unsigned Tried = 0;
  unsigned Adopted = 0;

  Reduction(std::string Text, const Reducer::Predicate &P, unsigned Budget)
      : Text(std::move(Text)), StillFails(P), Budget(Budget) {}

  bool budgetLeft() const { return Tried < Budget; }

  /// Parses the current text, applies \p Mutate (returning false aborts
  /// the candidate), cleans up dead code, and adopts the result if it
  /// verifies, differs, and still fails. Returns true on adoption.
  bool attempt(const std::function<bool(Module &)> &Mutate) {
    if (!budgetLeft())
      return false;
    ++Tried;
    Context Ctx;
    std::string Err;
    std::unique_ptr<Module> M = parseModule(Text, Ctx, Err);
    if (!M)
      return false;
    if (!Mutate(*M))
      return false;
    for (const auto &F : M->functions())
      removeTriviallyDeadInstructions(*F);
    if (!verifyModule(*M))
      return false;
    std::string Candidate = moduleToString(*M);
    if (Candidate == Text)
      return false;
    if (!StillFails(Candidate))
      return false;
    Text = std::move(Candidate);
    ++Adopted;
    return true;
  }
};

/// Collects every store instruction in deterministic program order.
std::vector<StoreInst *> collectStores(Module &M) {
  std::vector<StoreInst *> Stores;
  for (const auto &F : M.functions())
    for (const auto &BB : *F)
      for (const auto &I : *BB)
        if (auto *St = dyn_cast<StoreInst>(I.get()))
          Stores.push_back(St);
  return Stores;
}

/// Deletes stores whose index (in program order) lies in [Begin, End).
bool removeStoreRange(Module &M, size_t Begin, size_t End) {
  std::vector<StoreInst *> Stores = collectStores(M);
  if (Begin >= Stores.size())
    return false;
  End = std::min(End, Stores.size());
  for (size_t I = Begin; I != End; ++I)
    Stores[I]->eraseFromParent();
  return End > Begin;
}

/// ddmin over the store list: try dropping chunks of decreasing size.
/// Each adoption restarts at the (possibly smaller) current chunk size.
bool ddminStores(Reduction &R) {
  bool AnyProgress = false;
  size_t NumStores;
  {
    Context Ctx;
    std::string Err;
    std::unique_ptr<Module> M = parseModule(R.Text, Ctx, Err);
    if (!M)
      return false;
    NumStores = collectStores(*M).size();
  }
  size_t Chunk = std::max<size_t>(NumStores / 2, 1);
  while (Chunk >= 1 && NumStores > 0 && R.budgetLeft()) {
    bool Progress = false;
    for (size_t Begin = 0; Begin < NumStores; Begin += Chunk) {
      size_t End = Begin + Chunk;
      if (R.attempt([&](Module &M) {
            return removeStoreRange(M, Begin, End);
          })) {
        Progress = AnyProgress = true;
        NumStores -= std::min(Chunk, NumStores - Begin);
        break; // Indices shifted; rescan at this granularity.
      }
    }
    if (!Progress) {
      if (Chunk == 1)
        break;
      Chunk /= 2;
    }
  }
  return AnyProgress;
}

/// Removes blocks unreachable from the entry block, fixing up phis of the
/// surviving blocks (dropping dead incoming edges, inlining single-entry
/// phis).
void removeUnreachableBlocks(Function &F) {
  if (F.empty())
    return;
  std::set<BasicBlock *> Reachable;
  std::vector<BasicBlock *> Work{F.getEntryBlock()};
  while (!Work.empty()) {
    BasicBlock *BB = Work.back();
    Work.pop_back();
    if (!Reachable.insert(BB).second)
      continue;
    for (BasicBlock *Succ : BB->successors())
      Work.push_back(Succ);
  }

  // Drop phi edges coming from dead predecessors, then inline phis left
  // with one incoming edge.
  for (const auto &BB : F) {
    if (!Reachable.count(BB.get()))
      continue;
    std::vector<PHINode *> Phis;
    for (const auto &I : *BB)
      if (auto *Phi = dyn_cast<PHINode>(I.get()))
        Phis.push_back(Phi);
    for (PHINode *Phi : Phis) {
      for (unsigned I = Phi->getNumIncoming(); I-- > 0;)
        if (!Reachable.count(Phi->getIncomingBlock(I)))
          Phi->removeIncoming(I);
      if (Phi->getNumIncoming() == 1 &&
          Phi->getIncomingValue(0) != Phi) {
        Phi->replaceAllUsesWith(Phi->getIncomingValue(0));
        Phi->eraseFromParent();
      }
    }
  }

  // Collect the dead blocks, drop every operand reference they hold, then
  // erase them (values may die in any order once all edges are gone).
  std::vector<BasicBlock *> Dead;
  for (const auto &BB : F)
    if (!Reachable.count(BB.get()))
      Dead.push_back(BB.get());
  for (BasicBlock *BB : Dead)
    for (const auto &I : *BB)
      I->dropAllReferences();
  for (BasicBlock *BB : Dead)
    F.eraseBlock(BB);
}

/// Rewrites the \p Index-th conditional branch into an unconditional one
/// to successor \p Side and prunes what became unreachable.
bool collapseBranch(Module &M, size_t Index, unsigned Side) {
  size_t Seen = 0;
  for (const auto &F : M.functions()) {
    for (const auto &BB : *F) {
      Instruction *Term = BB->getTerminator();
      auto *Br = dyn_cast_if_present<BranchInst>(Term);
      if (!Br || !Br->isConditional())
        continue;
      if (Seen++ != Index)
        continue;
      BasicBlock *Dest = Br->getSuccessor(Side);
      BasicBlock *Parent = Br->getParent();
      Br->eraseFromParent();
      Parent->append(BranchInst::create(Dest));
      removeUnreachableBlocks(*F);
      return true;
    }
  }
  return false;
}

bool collapseBranches(Reduction &R) {
  bool AnyProgress = false;
  for (size_t Index = 0; R.budgetLeft();) {
    bool Progress = false;
    for (unsigned Side = 0; Side != 2 && !Progress; ++Side)
      Progress = R.attempt(
          [&](Module &M) { return collapseBranch(M, Index, Side); });
    if (Progress) {
      AnyProgress = true;
      Index = 0; // Branch indices shifted; start over.
      continue;
    }
    // Probe whether a branch at this index still exists at all.
    bool Exists = false;
    {
      Context Ctx;
      std::string Err;
      std::unique_ptr<Module> M = parseModule(R.Text, Ctx, Err);
      if (M) {
        size_t Count = 0;
        for (const auto &F : M->functions())
          for (const auto &BB : *F)
            if (auto *Br = dyn_cast_if_present<BranchInst>(BB->getTerminator()))
              Count += Br->isConditional();
        Exists = Index + 1 < Count;
      }
    }
    if (!Exists)
      break;
    ++Index;
  }
  return AnyProgress;
}

/// Replaces the \p Nth eligible instruction with its \p OpIdx-th operand
/// (same type required) and erases it.
bool replaceWithOperand(Module &M, size_t N, unsigned OpIdx) {
  size_t Seen = 0;
  for (const auto &F : M.functions())
    for (const auto &BB : *F)
      for (const auto &I : *BB) {
        Instruction *Inst = I.get();
        if (Inst->getType()->isVoidTy() || Inst->isTerminator() ||
            isa<PHINode>(Inst) || !Inst->hasUses())
          continue;
        if (Seen++ != N)
          continue;
        if (OpIdx >= Inst->getNumOperands())
          return false;
        Value *Op = Inst->getOperand(OpIdx);
        if (Op->getType() != Inst->getType())
          return false;
        Inst->replaceAllUsesWith(Op);
        Inst->eraseFromParent();
        return true;
      }
  return false;
}

bool foldOperands(Reduction &R) {
  bool AnyProgress = false;
  for (size_t N = 0; R.budgetLeft();) {
    bool Progress = false;
    for (unsigned OpIdx = 0; OpIdx != 3 && !Progress; ++OpIdx)
      Progress = R.attempt(
          [&](Module &M) { return replaceWithOperand(M, N, OpIdx); });
    if (Progress) {
      AnyProgress = true;
      continue; // Same index now names the next instruction.
    }
    // Stop once N runs past the number of eligible instructions.
    size_t Count = 0;
    {
      Context Ctx;
      std::string Err;
      std::unique_ptr<Module> M = parseModule(R.Text, Ctx, Err);
      if (M)
        for (const auto &F : M->functions())
          for (const auto &BB : *F)
            for (const auto &I : *BB)
              if (!I->getType()->isVoidTy() && !I->isTerminator() &&
                  !isa<PHINode>(I.get()) && I->hasUses())
                ++Count;
    }
    if (++N >= Count)
      break;
  }
  return AnyProgress;
}

bool dropUnusedGlobals(Reduction &R) {
  return R.attempt([](Module &M) {
    std::vector<GlobalArray *> Dead;
    for (const auto &G : M.globals())
      if (!G->hasUses())
        Dead.push_back(G.get());
    for (GlobalArray *G : Dead)
      M.eraseGlobal(G);
    return !Dead.empty();
  });
}

} // namespace

Reducer::Result Reducer::reduce(const std::string &IRText) const {
  Result Res;
  Res.IRText = IRText;
  if (!StillFails(IRText))
    return Res;
  Res.InitiallyFailing = true;

  Reduction R(IRText, StillFails, MaxCandidates);
  bool Progress = true;
  while (Progress && R.budgetLeft()) {
    Progress = false;
    Progress |= ddminStores(R);
    Progress |= collapseBranches(R);
    Progress |= foldOperands(R);
    Progress |= dropUnusedGlobals(R);
  }
  Res.IRText = R.Text;
  Res.StepsAdopted = R.Adopted;
  Res.CandidatesTried = R.Tried;
  return Res;
}
