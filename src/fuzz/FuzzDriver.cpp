//===- fuzz/FuzzDriver.cpp - Parallel differential fuzz sweep -----------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "fuzz/FuzzDriver.h"

#include "fuzz/ModuleGenerator.h"
#include "fuzz/Reducer.h"
#include "ir/Context.h"
#include "ir/Module.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "support/CrashHandler.h"
#include "support/ThreadPool.h"

#include <algorithm>

using namespace lslp;

namespace {

/// Runs one seed end to end: generate, verify, oracle-check, and minimize
/// on failure. Entirely self-contained (own Context/modules/engines), so
/// any number of these can run concurrently.
SeedOutcome runOneSeed(uint64_t Seed, const DifferentialOracle &Oracle,
                       const DifferentialOracle &ParityOracle,
                       bool ParityAll) {
  SeedOutcome Out;
  Out.Seed = Seed;
  // Every 4th seed gets the (2x slower) cross-engine parity sweep, same
  // cadence as the serial driver always used; --engine-parity extends it
  // to every seed.
  const DifferentialOracle &O =
      (ParityAll || Seed % 4 == 0) ? ParityOracle : Oracle;

  Context Ctx;
  ModuleGenerator Gen(Seed);
  std::unique_ptr<Module> M = Gen.generate(Ctx);
  std::vector<std::string> Errors;
  if (!verifyModule(*M, &Errors)) {
    Out.VerifyFailed = true;
    for (const std::string &E : Errors) {
      Out.VerifyErrors += E;
      Out.VerifyErrors += '\n';
    }
    return Out;
  }

  std::string IR = moduleToString(*M);

  // Contain crashes to this seed: if the oracle (parser, pass, engines)
  // crashes, the handler dumps a reproducer, the recovery point unwinds,
  // and the sweep moves on — one bad seed no longer kills the whole
  // sharded run. Without installed handlers this runs unprotected exactly
  // as before.
  CrashScope Scope("fuzz-seed", std::to_string(Seed));
  CrashPayload Payload(&IR, nullptr);
  OracleVerdict Verdict;
  CrashInfo Crash;
  if (!runWithCrashRecovery([&] { Verdict = O.check(IR); }, Crash)) {
    Out.Crashed = true;
    Out.CrashSignal = Crash.SignalName;
    Out.ReproPath = Crash.ReproPath;
    Out.Reason = "crash (" + Crash.SignalName + ") during oracle check";
    return Out;
  }
  if (Verdict) {
    Out.Passed = true;
    return Out;
  }
  Out.ConfigName = Verdict.ConfigName;
  Out.Reason = Verdict.Reason;
  // The reduction predicate re-runs the oracle on shrunk candidates; a
  // candidate that crashes still reproduces a bug, so count it as failing
  // (recovered, when handlers are installed) rather than aborting the
  // sweep mid-minimization.
  Reducer Shrinker([&](const std::string &Text) {
    bool Fails = false;
    CrashInfo CandidateCrash;
    CrashPayload CandidatePayload(&Text, nullptr);
    if (!runWithCrashRecovery([&] { Fails = !O.check(Text).Passed; },
                              CandidateCrash))
      return true;
    return Fails;
  });
  Reducer::Result Reduced = Shrinker.reduce(IR);
  Out.ReducedIR = Reduced.IRText;
  Out.ReductionSteps = Reduced.StepsAdopted;
  return Out;
}

} // namespace

int64_t lslp::runFuzzSweep(
    const FuzzSweepOptions &Opts,
    const std::function<void(const SeedOutcome &)> &Consume) {
  OracleOptions BaseOpts;
  BaseOpts.Engine = Opts.Engine;
  BaseOpts.FaultProbability = Opts.FaultProbability;
  BaseOpts.FaultSeed = Opts.FaultSeed;
  if (Opts.Strategy == VectorizerConfig::PackingStrategyKind::Global) {
    // Global-only soak: pin the whole default sweep to the pack-set
    // solver. The strategy axis would re-run each config unchanged, so
    // turn it off.
    BaseOpts.Configs = DifferentialOracle::defaultConfigs();
    for (VectorizerConfig &C : BaseOpts.Configs) {
      C.Strategy = VectorizerConfig::PackingStrategyKind::Global;
      C.Name += "-global";
    }
    BaseOpts.SweepStrategies = false;
  }
  if (Opts.IfConvert || Opts.Unroll) {
    // CFG-pipeline soak: pin the requested passes on across every swept
    // config (on top of any strategy pinning above). The scalar baseline
    // still executes the untransformed module, so the bit-exact diff
    // checks the CFG passes themselves, not just the vectorizer.
    if (BaseOpts.Configs.empty())
      BaseOpts.Configs = DifferentialOracle::defaultConfigs();
    for (VectorizerConfig &C : BaseOpts.Configs) {
      C.EnableIfConversion = Opts.IfConvert;
      C.EnableLoopUnroll = Opts.Unroll;
      C.UnrollFactor = Opts.UnrollFactor;
      C.Name += "-cfg";
    }
  }
  DifferentialOracle Oracle(BaseOpts);
  OracleOptions ParityOpts = BaseOpts;
  ParityOpts.CheckEngineParity = true;
  DifferentialOracle ParityOracle(ParityOpts);

  int64_t Failures = 0;
  auto Count = static_cast<size_t>(std::max<int64_t>(Opts.Count, 0));
  auto Handle = [&](const SeedOutcome &Out) {
    if (!Out.Passed)
      ++Failures;
    if (Consume)
      Consume(Out);
  };

  if (Opts.Jobs <= 1) {
    for (size_t I = 0; I != Count; ++I)
      Handle(runOneSeed(static_cast<uint64_t>(Opts.FirstSeed + I), Oracle,
                        ParityOracle, Opts.ParityAll));
    return Failures;
  }

  // DifferentialOracle::check() is const and allocates all its state per
  // call, so the two oracle instances are shared read-only across the
  // workers. The ordered collect delivers outcomes in seed order on this
  // thread — output is byte-identical to Jobs=1.
  ThreadPool Pool(std::min(static_cast<size_t>(Opts.Jobs), Count));
  parallelForOrdered(
      Pool, Count,
      [&](size_t I) {
        return runOneSeed(static_cast<uint64_t>(Opts.FirstSeed + I), Oracle,
                          ParityOracle, Opts.ParityAll);
      },
      [&](size_t, const SeedOutcome &Out) { Handle(Out); });
  return Failures;
}
