//===- fuzz/DifferentialOracle.cpp - Scalar-vs-vector equivalence ----------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "fuzz/DifferentialOracle.h"

#include "costmodel/TargetTransformInfo.h"
#include "diag/RemarkEngine.h"
#include "interp/Interpreter.h"
#include "ir/Context.h"
#include "ir/Module.h"
#include "ir/Printer.h"
#include "ir/Type.h"
#include "ir/Verifier.h"
#include "parser/Parser.h"
#include "support/OStream.h"
#include "support/RNG.h"
#include "vectorizer/SLPVectorizerPass.h"

#include <sstream>

using namespace lslp;

namespace {

/// Bit-exact observable state after executing a module: the final memory
/// image plus every no-arg function's return value.
struct Execution {
  std::vector<uint8_t> Memory;
  std::vector<std::string> Returns;

  bool operator==(const Execution &O) const {
    return Memory == O.Memory && Returns == O.Returns;
  }
};

std::string renderReturn(const RuntimeValue &V) {
  if (!V.isValid())
    return "void";
  std::ostringstream OS;
  OS << V.Ty->getName() << ":";
  for (size_t I = 0; I != V.Lanes.size(); ++I)
    OS << (I ? "," : "") << std::hex << V.Lanes[I];
  return OS.str();
}

/// Fills every global with deterministic values. Floating-point arrays get
/// small integers in [0, 16) so all FP arithmetic the generator emits is
/// exact (immune to fast-math reassociation); integer arrays get values
/// below 2^20.
void initMemory(Interpreter &Interp, const Module &M, uint64_t InputSeed) {
  RNG In(InputSeed);
  for (const auto &G : M.globals()) {
    bool IsFP = G->getElementType()->isFloatingPointTy();
    for (uint64_t I = 0; I != G->getNumElements(); ++I) {
      if (IsFP)
        Interp.writeGlobalFP(G->getName(), I,
                             static_cast<double>(In.nextBelow(16)));
      else
        Interp.writeGlobalInt(G->getName(), I, In.nextBelow(1u << 20));
    }
  }
}

/// Interprets every no-argument function of \p M in module order against
/// one shared memory image.
Execution execute(const Module &M, uint64_t InputSeed) {
  Interpreter Interp(M);
  Interp.setStepLimit(50u * 1000u * 1000u);
  initMemory(Interp, M, InputSeed);
  Execution E;
  for (const auto &F : M.functions()) {
    if (F->getNumArgs() != 0 || F->empty())
      continue;
    auto R = Interp.run(F.get());
    E.Returns.push_back(renderReturn(R.ReturnValue));
  }
  E.Memory = Interp.getMemoryImage();
  return E;
}

} // namespace

DifferentialOracle::DifferentialOracle(OracleOptions Opts)
    : Opts(std::move(Opts)) {
  if (this->Opts.Configs.empty())
    this->Opts.Configs = defaultConfigs();
}

std::vector<VectorizerConfig> DifferentialOracle::defaultConfigs() {
  std::vector<VectorizerConfig> Cs;
  Cs.push_back(VectorizerConfig::slpNoReordering());
  Cs.push_back(VectorizerConfig::slp());
  Cs.push_back(VectorizerConfig::lslp());

  VectorizerConfig Shallow = VectorizerConfig::lslp(1);
  Shallow.Name = "LSLP-la1";
  Cs.push_back(Shallow);

  VectorizerConfig SmallMulti = VectorizerConfig::lslp();
  SmallMulti.MaxMultiNodeSize = 2;
  SmallMulti.Name = "LSLP-multi2";
  Cs.push_back(SmallMulti);

  VectorizerConfig MaxAgg = VectorizerConfig::lslp();
  MaxAgg.ScoreAggregation = VectorizerConfig::ScoreAggregationKind::Max;
  MaxAgg.ReorderStrategy =
      VectorizerConfig::ReorderStrategyKind::ExhaustivePerLane;
  MaxAgg.Name = "LSLP-max-exh";
  Cs.push_back(MaxAgg);

  VectorizerConfig NoExt = VectorizerConfig::lslp();
  NoExt.EnableAltOpcodes = false;
  NoExt.EnableReductions = false;
  NoExt.Name = "LSLP-noext";
  Cs.push_back(NoExt);
  return Cs;
}

OracleVerdict DifferentialOracle::check(const std::string &IRText) const {
  OracleVerdict V;

  // Scalar baseline.
  Execution Baseline;
  {
    Context Ctx;
    std::string Err;
    std::unique_ptr<Module> M = parseModule(IRText, Ctx, Err);
    if (!M) {
      V.Passed = false;
      V.Reason = "baseline parse error: " + Err;
      return V;
    }
    std::vector<std::string> Errors;
    if (!verifyModule(*M, &Errors)) {
      V.Passed = false;
      V.Reason = "baseline fails verification: " +
                 (Errors.empty() ? std::string("<no detail>") : Errors[0]);
      return V;
    }
    Baseline = execute(*M, Opts.InputSeed);
  }

  SkylakeTTI TTI;
  for (const VectorizerConfig &Config : Opts.Configs) {
    auto RunPass = [&](Context &Ctx, std::string &OutIR,
                       std::string &OutRemarks,
                       std::string &FailReason) -> std::unique_ptr<Module> {
      std::string Err;
      std::unique_ptr<Module> M = parseModule(IRText, Ctx, Err);
      if (!M) {
        FailReason = "re-parse error: " + Err;
        return nullptr;
      }
      // Stream the pass's decision trace as JSONL: the remark stream is
      // part of the determinism contract (checked below), and every line
      // must parse back losslessly.
      RemarkEngine Engine;
      StringOStream RemarkOS(OutRemarks);
      Engine.setJSONStream(&RemarkOS);
      VectorizerConfig Cfg = Config;
      Cfg.Remarks = &Engine;
      SLPVectorizerPass Pass(Cfg, TTI);
      ModuleReport Report = Pass.runOnModule(*M);
      size_t LineStart = 0;
      while (LineStart < OutRemarks.size()) {
        size_t LineEnd = OutRemarks.find('\n', LineStart);
        if (LineEnd == std::string::npos)
          LineEnd = OutRemarks.size();
        Remark Parsed;
        std::string ParseErr;
        if (!Remark::fromJSON(
                std::string_view(OutRemarks).substr(LineStart,
                                                    LineEnd - LineStart),
                Parsed, ParseErr)) {
          FailReason = "remark JSONL line does not parse back: " + ParseErr;
          OutIR = moduleToString(*M);
          return nullptr;
        }
        LineStart = LineEnd + 1;
      }
      std::vector<std::string> Errors;
      if (!verifyModule(*M, &Errors)) {
        FailReason = "vectorized module fails verification: " +
                     (Errors.empty() ? std::string("<no detail>")
                                     : Errors[0]);
        OutIR = moduleToString(*M);
        return nullptr;
      }
      for (const FunctionReport &FR : Report.Functions)
        for (const GraphAttempt &A : FR.Attempts)
          if (A.Accepted && A.Cost >= Config.CostThreshold) {
            FailReason = "accepted graph in @" + FR.FunctionName +
                         " with non-profitable cost " +
                         std::to_string(A.Cost);
            OutIR = moduleToString(*M);
            return nullptr;
          }
      if (Opts.AfterPassHook)
        Opts.AfterPassHook(*M);
      OutIR = moduleToString(*M);
      return M;
    };

    Context Ctx;
    std::string IR1, Remarks1, FailReason;
    std::unique_ptr<Module> M = RunPass(Ctx, IR1, Remarks1, FailReason);
    if (!M) {
      V.Passed = false;
      V.ConfigName = Config.Name;
      V.Reason = FailReason;
      V.VectorizedIR = IR1;
      return V;
    }

    if (Opts.CheckDeterminism) {
      Context Ctx2;
      std::string IR2, Remarks2, FailReason2;
      std::unique_ptr<Module> M2 = RunPass(Ctx2, IR2, Remarks2, FailReason2);
      if (!M2 || IR1 != IR2 || Remarks1 != Remarks2) {
        V.Passed = false;
        V.ConfigName = Config.Name;
        if (!M2)
          V.Reason = "second run failed: " + FailReason2;
        else if (IR1 != IR2)
          V.Reason = "pass is nondeterministic (two runs differ)";
        else
          V.Reason =
              "remark stream is nondeterministic (two runs differ)";
        V.VectorizedIR = IR1;
        return V;
      }
    }

    Execution Vec = execute(*M, Opts.InputSeed);
    if (!(Vec == Baseline)) {
      V.Passed = false;
      V.ConfigName = Config.Name;
      if (Vec.Returns != Baseline.Returns)
        V.Reason = "return value mismatch";
      else {
        size_t FirstDiff = 0;
        while (FirstDiff < Vec.Memory.size() &&
               FirstDiff < Baseline.Memory.size() &&
               Vec.Memory[FirstDiff] == Baseline.Memory[FirstDiff])
          ++FirstDiff;
        V.Reason =
            "memory mismatch at byte " + std::to_string(FirstDiff);
      }
      V.VectorizedIR = IR1;
      return V;
    }
  }
  return V;
}
