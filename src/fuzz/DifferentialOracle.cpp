//===- fuzz/DifferentialOracle.cpp - Scalar-vs-vector equivalence ----------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "fuzz/DifferentialOracle.h"

#include "costmodel/TargetTransformInfo.h"
#include "diag/RemarkEngine.h"
#include "ir/Context.h"
#include "ir/Module.h"
#include "ir/Printer.h"
#include "ir/Type.h"
#include "ir/Verifier.h"
#include "jit/JITEngine.h"
#include "parser/Parser.h"
#include "support/FaultInjection.h"
#include "support/OStream.h"
#include "transforms/IfConversion.h"
#include "transforms/LoopUnroll.h"
#include "vectorizer/SLPVectorizerPass.h"
#include "vm/ExecutionEngine.h"
#include "vm/MemoryInit.h"

#include <optional>
#include <sstream>

using namespace lslp;

namespace {

/// Bit-exact observable state after executing a module: the final memory
/// image plus every no-arg function's return value.
struct Execution {
  std::vector<uint8_t> Memory;
  std::vector<std::string> Returns;

  bool operator==(const Execution &O) const {
    return Memory == O.Memory && Returns == O.Returns;
  }
};

std::string renderReturn(const RuntimeValue &V) {
  if (!V.isValid())
    return "void";
  std::ostringstream OS;
  OS << V.Ty->getName() << ":";
  for (size_t I = 0; I != V.Lanes.size(); ++I)
    OS << (I ? "," : "") << std::hex << V.Lanes[I];
  return OS.str();
}

/// Executes every no-argument function of \p M in module order against one
/// shared memory image (seeded via the shared initGlobalMemory helper) on
/// an engine of the given kind. \p TTI and per-run ExecStats are only
/// needed for cross-engine parity checks.
Execution executeOn(const Module &M, uint64_t InputSeed, EngineKind Kind,
                    const TargetTransformInfo *TTI,
                    std::vector<ExecStats> *StatsOut) {
  auto Engine = ExecutionEngine::create(Kind, M, TTI);
  Engine->setStepLimit(50u * 1000u * 1000u);
  Engine->setCollectStats(StatsOut != nullptr);
  initGlobalMemory(*Engine, M, InputSeed, MemoryInitStyle::FuzzUniform);
  Execution E;
  for (const auto &F : M.functions()) {
    if (F->getNumArgs() != 0 || F->empty())
      continue;
    auto R = Engine->run(F.get());
    // Traps are part of the observable behavior: a vectorized module must
    // trap exactly where (and why) the scalar baseline does.
    E.Returns.push_back(R.Trapped ? "trap:" + R.TrapReason
                                  : renderReturn(R.ReturnValue));
    if (StatsOut)
      StatsOut->push_back(std::move(R));
  }
  E.Memory = Engine->getMemoryImage();
  return E;
}

/// Cross-engine invariant: runs \p M on the tree-walker, the vm, and (when
/// the host can execute generated code) the native jit, and requires
/// bit-identical memory, returns and full ExecStats across all of them.
/// Returns the first mismatch description ("" when the engines agree) and
/// leaves the tree-walker's execution in \p Out.
std::string engineParityDiff(const Module &M, uint64_t InputSeed,
                             Execution &Out) {
  SkylakeTTI TTI;
  std::vector<ExecStats> StatsA;
  Execution A = executeOn(M, InputSeed, EngineKind::TreeWalk, &TTI, &StatsA);
  Out = A;

  // Diff one engine against the tree-walk baseline.
  auto DiffAgainst = [&](EngineKind Kind, const char *Name) -> std::string {
    std::string Pair = std::string("(interp vs ") + Name + ")";
    std::vector<ExecStats> StatsB;
    Execution B = executeOn(M, InputSeed, Kind, &TTI, &StatsB);
    if (A.Returns != B.Returns)
      return "engine parity: return values differ " + Pair;
    if (A.Memory != B.Memory) {
      size_t FirstDiff = 0;
      while (FirstDiff < A.Memory.size() && FirstDiff < B.Memory.size() &&
             A.Memory[FirstDiff] == B.Memory[FirstDiff])
        ++FirstDiff;
      return "engine parity: memory differs at byte " +
             std::to_string(FirstDiff) + " " + Pair;
    }
    for (size_t I = 0; I != StatsA.size(); ++I) {
      const ExecStats &SA = StatsA[I], &SB = StatsB[I];
      if (SA.DynamicInsts != SB.DynamicInsts)
        return "engine parity: dynamic instruction count differs for "
               "function #" +
               std::to_string(I) + " (interp " +
               std::to_string(SA.DynamicInsts) + " vs " + Name + " " +
               std::to_string(SB.DynamicInsts) + ")";
      if (SA.TotalCost != SB.TotalCost)
        return "engine parity: cycle count differs for function #" +
               std::to_string(I) + " (interp " +
               std::to_string(SA.TotalCost) + " vs " + Name + " " +
               std::to_string(SB.TotalCost) + ")";
      if (SA.ScalarOpCounts != SB.ScalarOpCounts ||
          SA.VectorOpCounts != SB.VectorOpCounts)
        return "engine parity: instruction-mix statistics differ for "
               "function #" +
               std::to_string(I) + " " + Pair;
    }
    return "";
  };

  std::string Err = DiffAgainst(EngineKind::Bytecode, "vm");
  if (!Err.empty())
    return Err;
  // The third way: on hosts that cannot execute generated x86-64 code the
  // jit engine is just the vm again, so skip the redundant run.
  if (jit::available())
    return DiffAgainst(EngineKind::NativeJit, "jit");
  return "";
}

} // namespace

DifferentialOracle::DifferentialOracle(OracleOptions Opts)
    : Opts(std::move(Opts)) {
  if (this->Opts.Configs.empty())
    this->Opts.Configs = defaultConfigs();
}

std::vector<VectorizerConfig> DifferentialOracle::defaultConfigs() {
  std::vector<VectorizerConfig> Cs;
  Cs.push_back(VectorizerConfig::slpNoReordering());
  Cs.push_back(VectorizerConfig::slp());
  Cs.push_back(VectorizerConfig::lslp());

  VectorizerConfig Shallow = VectorizerConfig::lslp(1);
  Shallow.Name = "LSLP-la1";
  Cs.push_back(Shallow);

  VectorizerConfig SmallMulti = VectorizerConfig::lslp();
  SmallMulti.MaxMultiNodeSize = 2;
  SmallMulti.Name = "LSLP-multi2";
  Cs.push_back(SmallMulti);

  VectorizerConfig MaxAgg = VectorizerConfig::lslp();
  MaxAgg.ScoreAggregation = VectorizerConfig::ScoreAggregationKind::Max;
  MaxAgg.ReorderStrategy =
      VectorizerConfig::ReorderStrategyKind::ExhaustivePerLane;
  MaxAgg.Name = "LSLP-max-exh";
  Cs.push_back(MaxAgg);

  VectorizerConfig NoExt = VectorizerConfig::lslp();
  NoExt.EnableAltOpcodes = false;
  NoExt.EnableReductions = false;
  NoExt.Name = "LSLP-noext";
  Cs.push_back(NoExt);

  VectorizerConfig Cfg = VectorizerConfig::lslp();
  Cfg.EnableIfConversion = true;
  Cfg.EnableLoopUnroll = true;
  Cfg.Name = "LSLP-cfg";
  Cs.push_back(Cfg);
  return Cs;
}

OracleVerdict DifferentialOracle::check(const std::string &IRText) const {
  OracleVerdict V;

  // Scalar baseline.
  Execution Baseline;
  {
    Context Ctx;
    std::string Err;
    std::unique_ptr<Module> M = parseModule(IRText, Ctx, Err);
    if (!M) {
      V.Passed = false;
      V.Reason = "baseline parse error: " + Err;
      return V;
    }
    std::vector<std::string> Errors;
    if (!verifyModule(*M, &Errors)) {
      V.Passed = false;
      V.Reason = "baseline fails verification: " +
                 (Errors.empty() ? std::string("<no detail>") : Errors[0]);
      return V;
    }
    if (Opts.CheckEngineParity) {
      std::string ParityErr =
          engineParityDiff(*M, Opts.InputSeed, Baseline);
      if (!ParityErr.empty()) {
        V.Passed = false;
        V.Reason = "baseline " + ParityErr;
        return V;
      }
    } else {
      Baseline =
          executeOn(*M, Opts.InputSeed, Opts.Engine, nullptr, nullptr);
    }
  }

  SkylakeTTI TTI;
  // One full config check: parse, pass (with remark capture and the
  // remark/profitability invariants), verify, determinism re-run,
  // execute, bit-exact diff. Returns false with \p V filled on failure.
  // On success *AcceptedCostOut holds the pass's total accepted static
  // cost and *ExhaustedOut whether any function hit a budget/fault —
  // the inputs of the strategy cost invariant below.
  auto CheckConfig = [&](const VectorizerConfig &Config, int *AcceptedCostOut,
                         bool *ExhaustedOut) -> bool {
    int AcceptedCost = 0;
    bool AnyExhausted = false;
    auto RunPass = [&](Context &Ctx, std::string &OutIR,
                       std::string &OutRemarks,
                       std::string &FailReason) -> std::unique_ptr<Module> {
      std::string Err;
      std::unique_ptr<Module> M = parseModule(IRText, Ctx, Err);
      if (!M) {
        FailReason = "re-parse error: " + Err;
        return nullptr;
      }
      // Stream the pass's decision trace as JSONL: the remark stream is
      // part of the determinism contract (checked below), and every line
      // must parse back losslessly.
      RemarkEngine Engine;
      StringOStream RemarkOS(OutRemarks);
      Engine.setJSONStream(&RemarkOS);
      VectorizerConfig Cfg = Config;
      Cfg.Remarks = &Engine;
      // A fresh injector per run: streams are pure functions of the seed,
      // so the determinism re-run below draws the identical faults.
      std::optional<FaultInjector> Faults;
      if (Opts.FaultProbability > 0.0) {
        Faults.emplace(Opts.FaultSeed, Opts.FaultProbability);
        Cfg.Faults = &*Faults;
      }
      // Pre-vectorization CFG pipeline, same order as the drivers
      // (if-convert, then unroll). The scalar baseline above never runs
      // these, so the bit-exact execution diff checks that flattening
      // and unrolling preserve semantics, not just that the vectorizer
      // handles their output.
      if (Cfg.EnableIfConversion)
        runIfConversion(*M, Cfg.Remarks);
      if (Cfg.EnableLoopUnroll)
        runLoopUnroll(*M, Cfg.UnrollFactor, Cfg.Remarks);
      SLPVectorizerPass Pass(Cfg, TTI);
      ModuleReport Report = Pass.runOnModule(*M);
      AcceptedCost = Report.acceptedCost();
      for (const FunctionReport &FR : Report.Functions)
        AnyExhausted |= FR.BudgetExhausted;
      // Every injected fault must surface as a clean diagnostic: at least
      // one budget-exhausted remark in the decision trace. The scalar
      // fallback itself is checked by the bit-exact execution diff below.
      if (Faults && Faults->totalInjected() > 0 &&
          OutRemarks.find("\"budget-exhausted\"") == std::string::npos) {
        FailReason = "injected " + std::to_string(Faults->totalInjected()) +
                     " fault(s) but no budget-exhausted remark was emitted";
        OutIR = moduleToString(*M);
        return nullptr;
      }
      size_t LineStart = 0;
      while (LineStart < OutRemarks.size()) {
        size_t LineEnd = OutRemarks.find('\n', LineStart);
        if (LineEnd == std::string::npos)
          LineEnd = OutRemarks.size();
        Remark Parsed;
        std::string ParseErr;
        if (!Remark::fromJSON(
                std::string_view(OutRemarks).substr(LineStart,
                                                    LineEnd - LineStart),
                Parsed, ParseErr)) {
          FailReason = "remark JSONL line does not parse back: " + ParseErr;
          OutIR = moduleToString(*M);
          return nullptr;
        }
        LineStart = LineEnd + 1;
      }
      std::vector<std::string> Errors;
      if (!verifyModule(*M, &Errors)) {
        FailReason = "vectorized module fails verification: " +
                     (Errors.empty() ? std::string("<no detail>")
                                     : Errors[0]);
        OutIR = moduleToString(*M);
        return nullptr;
      }
      for (const FunctionReport &FR : Report.Functions)
        for (const GraphAttempt &A : FR.Attempts)
          if (A.Accepted && A.Cost >= Config.CostThreshold) {
            FailReason = "accepted graph in @" + FR.FunctionName +
                         " with non-profitable cost " +
                         std::to_string(A.Cost);
            OutIR = moduleToString(*M);
            return nullptr;
          }
      if (Opts.AfterPassHook)
        Opts.AfterPassHook(*M);
      OutIR = moduleToString(*M);
      return M;
    };

    Context Ctx;
    std::string IR1, Remarks1, FailReason;
    std::unique_ptr<Module> M = RunPass(Ctx, IR1, Remarks1, FailReason);
    if (!M) {
      V.Passed = false;
      V.ConfigName = Config.Name;
      V.Reason = FailReason;
      V.VectorizedIR = IR1;
      return false;
    }
    if (AcceptedCostOut)
      *AcceptedCostOut = AcceptedCost;
    if (ExhaustedOut)
      *ExhaustedOut = AnyExhausted;

    if (Opts.CheckDeterminism) {
      Context Ctx2;
      std::string IR2, Remarks2, FailReason2;
      std::unique_ptr<Module> M2 = RunPass(Ctx2, IR2, Remarks2, FailReason2);
      if (!M2 || IR1 != IR2 || Remarks1 != Remarks2) {
        V.Passed = false;
        V.ConfigName = Config.Name;
        if (!M2)
          V.Reason = "second run failed: " + FailReason2;
        else if (IR1 != IR2)
          V.Reason = "pass is nondeterministic (two runs differ)";
        else
          V.Reason =
              "remark stream is nondeterministic (two runs differ)";
        V.VectorizedIR = IR1;
        return false;
      }
    }

    Execution Vec;
    if (Opts.CheckEngineParity) {
      std::string ParityErr = engineParityDiff(*M, Opts.InputSeed, Vec);
      if (!ParityErr.empty()) {
        V.Passed = false;
        V.ConfigName = Config.Name;
        V.Reason = ParityErr;
        V.VectorizedIR = IR1;
        return false;
      }
    } else {
      Vec = executeOn(*M, Opts.InputSeed, Opts.Engine, nullptr, nullptr);
    }
    if (!(Vec == Baseline)) {
      V.Passed = false;
      V.ConfigName = Config.Name;
      if (Vec.Returns != Baseline.Returns)
        V.Reason = "return value mismatch";
      else {
        size_t FirstDiff = 0;
        while (FirstDiff < Vec.Memory.size() &&
               FirstDiff < Baseline.Memory.size() &&
               Vec.Memory[FirstDiff] == Baseline.Memory[FirstDiff])
          ++FirstDiff;
        V.Reason =
            "memory mismatch at byte " + std::to_string(FirstDiff);
      }
      V.VectorizedIR = IR1;
      return false;
    }
    return true;
  };

  for (const VectorizerConfig &Config : Opts.Configs) {
    int GreedyCost = 0;
    bool GreedyExhausted = false;
    if (!CheckConfig(Config, &GreedyCost, &GreedyExhausted))
      return V;
    if (!Opts.SweepStrategies ||
        Config.Strategy != VectorizerConfig::PackingStrategyKind::Greedy)
      continue;

    // Strategy axis: the same config with global packing, under every
    // invariant above plus the cost invariant — a strategy that searches
    // a superset of greedy's pack sets and breaks ties toward greedy can
    // never commit a more expensive one. The comparison is skipped when
    // either run was cut short by a budget or injected fault (a truncated
    // search legitimately commits nothing).
    VectorizerConfig Global = Config;
    Global.Strategy = VectorizerConfig::PackingStrategyKind::Global;
    Global.Name += "-global";
    int GlobalCost = 0;
    bool GlobalExhausted = false;
    if (!CheckConfig(Global, &GlobalCost, &GlobalExhausted))
      return V;
    if (!GreedyExhausted && !GlobalExhausted && GlobalCost > GreedyCost) {
      V.Passed = false;
      V.ConfigName = Global.Name;
      V.Reason = "strategy cost regression: global accepted cost " +
                 std::to_string(GlobalCost) + " > greedy accepted cost " +
                 std::to_string(GreedyCost);
      return V;
    }
  }
  return V;
}
