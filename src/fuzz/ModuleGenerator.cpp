//===- fuzz/ModuleGenerator.cpp - Random verifier-clean modules ------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "fuzz/ModuleGenerator.h"

#include "ir/Context.h"
#include "ir/IRBuilder.h"
#include "ir/Instruction.h"
#include "ir/Module.h"

#include <algorithm>
#include <string>
#include <vector>

using namespace lslp;

namespace {

/// One scalar element type the generator knows how to produce, with the
/// suffix used to name its global arrays (INi8_0, OUTf64, ...).
struct ScalarKind {
  Type *Ty;
  std::string Sfx;
  unsigned Bits; ///< 0 for floating point.
  bool IsFP;
};

/// An expression template, instantiated once per lane of a store group.
/// Lane-dependent behaviour (load offsets, per-lane constants, opcode
/// flips, operand swaps) is precomputed here so instantiation is pure.
struct Expr {
  enum NodeKind { Load, Const, Bin, CastOf } K = Const;

  // Load: global array + per-lane element indices (identity or swizzled).
  std::string Array;
  Type *LoadTy = nullptr;
  std::vector<uint64_t> LaneIdx;

  // Const: per-lane values (splat when all equal).
  Type *ConstTy = nullptr;
  std::vector<uint64_t> IntVals;
  std::vector<double> FPVals;

  // Bin: per-lane opcodes (partial isomorphism = lanes disagree) and
  // per-lane commutative operand swaps.
  std::vector<ValueID> Opc;
  std::vector<bool> Swap;

  // CastOf: the chain CastOps[i] -> CastDstTys[i] applied to subtree L.
  std::vector<ValueID> CastOps;
  std::vector<Type *> CastDstTys;

  std::unique_ptr<Expr> L, R;
};

class GeneratorImpl {
public:
  GeneratorImpl(Context &Ctx, RNG &Rng, GeneratorStats &S)
      : Ctx(Ctx), Rng(Rng), S(S) {
    Kinds = {{Ctx.getIntTy(8), "i8", 8, false},
             {Ctx.getIntTy(16), "i16", 16, false},
             {Ctx.getIntTy(32), "i32", 32, false},
             {Ctx.getIntTy(64), "i64", 64, false},
             {Ctx.getDoubleTy(), "f64", 0, true}};
  }

  std::unique_ptr<Module> run() {
    auto M = std::make_unique<Module>(Ctx, "fuzz");
    for (const ScalarKind &K : Kinds) {
      M->createGlobal("IN" + K.Sfx + "0", K.Ty, ModuleGenerator::ArrayLen);
      M->createGlobal("IN" + K.Sfx + "1", K.Ty, ModuleGenerator::ArrayLen);
      M->createGlobal("OUT" + K.Sfx, K.Ty, ModuleGenerator::ArrayLen);
    }
    M->createGlobal("MIX", Ctx.getInt64Ty(), ModuleGenerator::ArrayLen);
    TheModule = M.get();

    Function *F = Function::create(M.get(), "f", Ctx.getVoidTy(), {}, {});
    BasicBlock *Cur = BasicBlock::create(Ctx, "entry", F);
    ++S.NumBlocks;
    IRBuilder IRB(Cur);
    emitBody(IRB);

    unsigned NumDiamonds = static_cast<unsigned>(Rng.nextBelow(3));
    for (unsigned D = 0; D != NumDiamonds; ++D)
      Cur = emitDiamond(F, Cur, D + 1);

    unsigned NumLoops = static_cast<unsigned>(Rng.nextBelow(3));
    for (unsigned L = 0; L != NumLoops; ++L)
      Cur = emitLoop(F, Cur, L + 1);

    IRB.setInsertPoint(Cur);
    IRB.createRet();
    return M;
  }

private:
  //===--------------------------------------------------------------------===//
  // CFG structure
  //===--------------------------------------------------------------------===//

  /// Appends a diamond (cond-br in \p Cur, then/else bodies, join block
  /// with an optional phi) and returns the join block.
  BasicBlock *emitDiamond(Function *F, BasicBlock *Cur, unsigned N) {
    std::string Id = std::to_string(N);
    BasicBlock *Then = BasicBlock::create(Ctx, "then" + Id, F);
    BasicBlock *Else = BasicBlock::create(Ctx, "else" + Id, F);
    BasicBlock *Join = BasicBlock::create(Ctx, "join" + Id, F);
    S.NumBlocks += 3;
    ++S.NumCondBranches;

    IRBuilder IRB(Cur);
    const ScalarKind &CondKind = intKind();
    Value *Ptr = IRB.createGEP(
        CondKind.Ty, input(CondKind),
        static_cast<int64_t>(Rng.nextBelow(ModuleGenerator::ArrayLen)));
    Value *Lhs = IRB.createLoad(CondKind.Ty, Ptr);
    Value *Rhs = constantFor(CondKind,
                             Rng.nextBelow(uint64_t(1) << (CondKind.Bits / 2)));
    static const ICmpInst::Predicate Preds[] = {
        ICmpInst::SLT, ICmpInst::SGT, ICmpInst::EQ, ICmpInst::ULE};
    Value *Cond =
        IRB.createICmp(Preds[Rng.nextBelow(std::size(Preds))], Lhs, Rhs);
    IRB.createCondBr(Cond, Then, Else);

    // Then/else bodies; optionally each computes one scalar that a join
    // phi merges and stores.
    bool WithPhi = Rng.nextChance(1, 2);
    const ScalarKind &PhiKind = Kinds[Rng.nextBelow(Kinds.size())];
    Value *ThenVal = nullptr, *ElseVal = nullptr;

    IRB.setInsertPoint(Then);
    emitBody(IRB);
    if (WithPhi)
      ThenVal = instantiate(*genTemplate(PhiKind, 1, 2), 0, IRB);
    IRB.createBr(Join);

    IRB.setInsertPoint(Else);
    emitBody(IRB);
    if (WithPhi)
      ElseVal = instantiate(*genTemplate(PhiKind, 1, 2), 0, IRB);
    IRB.createBr(Join);

    IRB.setInsertPoint(Join);
    if (WithPhi) {
      PHINode *Phi = IRB.createPHI(PhiKind.Ty);
      Phi->addIncoming(ThenVal, Then);
      Phi->addIncoming(ElseVal, Else);
      Value *OutPtr = IRB.createGEP(
          PhiKind.Ty, out(PhiKind),
          static_cast<int64_t>(Rng.nextBelow(ModuleGenerator::ArrayLen)));
      IRB.createStore(Phi, OutPtr);
      ++S.NumStores;
      ++S.NumJoinPhis;
    }
    emitBody(IRB);
    return Join;
  }

  /// Appends a counted single-block loop (preheader br in \p Cur, a body
  /// whose header doubles as the latch, an exit block) and returns the
  /// exit. Trip counts are small constants, the induction variable starts
  /// at zero and steps by one, and every gep index derived from it stays
  /// in bounds — the shape the pre-vectorization unroller targets, with
  /// both divisible and prime trip counts so its no-dividing-factor
  /// fallback gets exercised too.
  BasicBlock *emitLoop(Function *F, BasicBlock *Cur, unsigned N) {
    std::string Id = std::to_string(N);
    BasicBlock *Body = BasicBlock::create(Ctx, "loop" + Id, F);
    BasicBlock *Exit = BasicBlock::create(Ctx, "loopexit" + Id, F);
    S.NumBlocks += 2;
    ++S.NumCondBranches;
    ++S.NumLoops;

    static const uint64_t Trips[] = {4, 8, 12, 16, 5, 7};
    uint64_t Trip = Trips[Rng.nextBelow(std::size(Trips))];
    const ScalarKind &K = Kinds[2 + Rng.nextBelow(2)]; // i32 or i64.
    uint64_t Base = Rng.nextBelow(ModuleGenerator::ArrayLen - Trip + 1);

    IRBuilder IRB(Cur);
    IRB.createBr(Body);

    IRB.setInsertPoint(Body);
    PHINode *IV = IRB.createPHI(Ctx.getInt64Ty(), "iv" + Id);
    bool WithAcc = Rng.nextChance(1, 2);
    PHINode *Acc = WithAcc ? IRB.createPHI(K.Ty, "acc" + Id) : nullptr;

    Value *Idx =
        IRB.createBinOp(ValueID::Add, IV, Ctx.getInt64(Base));
    Value *Ld =
        IRB.createLoad(K.Ty, IRB.createGEP(K.Ty, input(K), Idx));
    Value *V = Ld;
    if (WithAcc) {
      V = IRB.createBinOp(Rng.nextChance(1, 2) ? ValueID::Add : ValueID::Xor,
                          Acc, Ld, "acc.next" + Id);
      Acc->addIncoming(constantFor(K, Rng.nextBelow(16)), Cur);
      Acc->addIncoming(V, Body);
    }
    IRB.createStore(V, IRB.createGEP(K.Ty, out(K), Idx));
    ++S.NumStores;

    Value *Next = IRB.createBinOp(ValueID::Add, IV, Ctx.getInt64(1),
                                  "iv.next" + Id);
    IV->addIncoming(Ctx.getInt64(0), Cur);
    IV->addIncoming(Next, Body);
    if (Rng.nextChance(1, 2)) {
      Value *Cmp = IRB.createICmp(ICmpInst::ULT, Next, Ctx.getInt64(Trip));
      IRB.createCondBr(Cmp, Body, Exit); // Back edge on true.
    } else {
      Value *Cmp = IRB.createICmp(ICmpInst::EQ, Next, Ctx.getInt64(Trip));
      IRB.createCondBr(Cmp, Exit, Body); // Back edge on false.
    }

    IRB.setInsertPoint(Exit);
    emitBody(IRB);
    return Exit;
  }

  /// Emits 1-2 random groups into the current block.
  void emitBody(IRBuilder &IRB) {
    unsigned Groups = 1 + static_cast<unsigned>(Rng.nextBelow(2));
    for (unsigned G = 0; G != Groups; ++G) {
      uint64_t Roll = Rng.nextBelow(100);
      if (Roll < 60)
        emitStoreGroup(IRB);
      else if (Roll < 75)
        emitAliasingGroup(IRB);
      else
        emitReduction(IRB);
    }
  }

  //===--------------------------------------------------------------------===//
  // Group emitters
  //===--------------------------------------------------------------------===//

  /// A group of adjacent stores into OUT<sfx> fed by instances of one
  /// expression template — the vectorizer's bread and butter.
  void emitStoreGroup(IRBuilder &IRB) {
    const ScalarKind &K = Kinds[Rng.nextBelow(Kinds.size())];
    unsigned Lanes = pickLanes();
    uint64_t Base = Rng.nextBelow(ModuleGenerator::ArrayLen - Lanes + 1);
    std::unique_ptr<Expr> T = genTemplate(K, Lanes, pickDepth());

    std::vector<unsigned> Order(Lanes);
    for (unsigned I = 0; I != Lanes; ++I)
      Order[I] = I;
    if (Rng.nextChance(1, 4))
      shuffle(Order);

    for (unsigned Lane : Order) {
      Value *V = instantiate(*T, Lane, IRB);
      Value *Ptr =
          IRB.createGEP(K.Ty, out(K), static_cast<int64_t>(Base + Lane));
      IRB.createStore(V, Ptr);
    }
    S.NumStores += Lanes;
    ++S.NumStoreGroups;
    noteType(K);
  }

  /// Two overlapping store windows on the shared MIX array, the second
  /// reading back what the first wrote: read-after-write and
  /// write-after-write dependences the scheduler must preserve.
  void emitAliasingGroup(IRBuilder &IRB) {
    const ScalarKind &K = Kinds[3]; // i64, MIX's element type.
    unsigned Lanes = Rng.nextChance(1, 2) ? 2 : 4;
    uint64_t Span = Lanes + 4;
    uint64_t Base = Rng.nextBelow(ModuleGenerator::ArrayLen - Span + 1);

    // First window: MIX[Base .. Base+Lanes) = f(MIX[Base+1 ...], inputs).
    auto Tmpl = genTemplate(K, Lanes, 2);
    injectMixLoad(*Tmpl, Base + 1 + Rng.nextBelow(2), Lanes);
    for (unsigned Lane = 0; Lane != Lanes; ++Lane) {
      Value *V = instantiate(*Tmpl, Lane, IRB);
      IRB.createStore(
          V, IRB.createGEP(K.Ty, mix(), static_cast<int64_t>(Base + Lane)));
    }

    // Second window overlaps the first by Lanes - Delta elements.
    uint64_t Delta = 1 + Rng.nextBelow(2);
    auto Tmpl2 = genTemplate(K, Lanes, 2);
    injectMixLoad(*Tmpl2, Base + Rng.nextBelow(2), Lanes);
    for (unsigned Lane = 0; Lane != Lanes; ++Lane) {
      Value *V = instantiate(*Tmpl2, Lane, IRB);
      IRB.createStore(V, IRB.createGEP(K.Ty, mix(),
                                       static_cast<int64_t>(Base + Delta +
                                                            Lane)));
    }
    S.NumStores += 2 * Lanes;
    S.NumStoreGroups += 2;
    ++S.NumAliasingGroups;
    noteType(K);
  }

  /// A horizontal reduction: contiguous loads folded by one commutative
  /// opcode into a scalar stored to OUT — the paper's second seed class.
  void emitReduction(IRBuilder &IRB) {
    bool FP = Rng.nextChance(1, 4);
    const ScalarKind &K = FP ? Kinds[4] : Kinds[2 + Rng.nextBelow(2)];
    unsigned Width = Rng.nextChance(1, 2) ? 4 : 8;
    uint64_t Base = Rng.nextBelow(ModuleGenerator::ArrayLen - Width + 1);
    static const ValueID IntRedOps[] = {ValueID::Add, ValueID::Xor,
                                        ValueID::And, ValueID::Or};
    ValueID Opc =
        FP ? ValueID::FAdd : IntRedOps[Rng.nextBelow(std::size(IntRedOps))];

    GlobalArray *In = input(K);
    std::vector<Value *> Leaves;
    for (unsigned I = 0; I != Width; ++I) {
      Value *Ptr =
          IRB.createGEP(K.Ty, In, static_cast<int64_t>(Base + I));
      Leaves.push_back(IRB.createLoad(K.Ty, Ptr));
    }
    Value *Acc;
    if (Rng.nextChance(1, 2)) {
      // Balanced tree.
      while (Leaves.size() > 1) {
        std::vector<Value *> Next;
        for (size_t I = 0; I + 1 < Leaves.size(); I += 2)
          Next.push_back(IRB.createBinOp(Opc, Leaves[I], Leaves[I + 1]));
        if (Leaves.size() % 2)
          Next.push_back(Leaves.back());
        Leaves = std::move(Next);
      }
      Acc = Leaves[0];
    } else {
      // Linear chain.
      Acc = Leaves[0];
      for (size_t I = 1; I < Leaves.size(); ++I)
        Acc = IRB.createBinOp(Opc, Acc, Leaves[I]);
    }
    Value *OutPtr = IRB.createGEP(
        K.Ty, out(K),
        static_cast<int64_t>(Rng.nextBelow(ModuleGenerator::ArrayLen)));
    IRB.createStore(Acc, OutPtr);
    ++S.NumStores;
    ++S.NumReductions;
    noteType(K);
  }

  //===--------------------------------------------------------------------===//
  // Expression templates
  //===--------------------------------------------------------------------===//

  /// Generates a template of type \p K for \p Lanes lanes. \p MulBudget
  /// bounds FMul nesting so floating-point intermediates stay exactly
  /// representable integers (see file comment in the header).
  std::unique_ptr<Expr> genTemplate(const ScalarKind &K, unsigned Lanes,
                                    unsigned Depth, unsigned MulBudget = 2) {
    if (Depth == 0 || Rng.nextChance(1, 5))
      return genLeaf(K, Lanes);

    // Cast chain: build a subtree of another scalar kind and convert.
    if (Rng.nextChance(1, 6)) {
      // SIToFP sources are restricted to i8 so FP values stay tiny
      // integers; any other pairing uses the source kind as rolled.
      const ScalarKind &Rolled = Kinds[Rng.nextBelow(Kinds.size())];
      const ScalarKind &Src = (K.IsFP && !Rolled.IsFP) ? Kinds[0] : Rolled;
      auto E = std::make_unique<Expr>();
      if (buildCastChain(K, Src, *E)) {
        E->K = Expr::CastOf;
        E->L = genTemplate(Src, Lanes, Depth - 1, 0);
        S.NumCasts += static_cast<unsigned>(E->CastOps.size());
        return E;
      }
    }

    auto E = std::make_unique<Expr>();
    E->K = Expr::Bin;
    ValueID Opc = pickOpcode(K, MulBudget);
    unsigned ChildMul = Opc == ValueID::FMul ? MulBudget - 1 : MulBudget;
    E->Opc.assign(Lanes, Opc);
    E->Swap.assign(Lanes, false);
    for (unsigned Lane = 1; Lane < Lanes; ++Lane) {
      // Partial isomorphism: occasional per-lane opcode flip.
      if (Rng.nextChance(1, 12)) {
        E->Opc[Lane] = flipOpcode(Opc);
        if (E->Opc[Lane] != Opc)
          ++S.NumPartialIsoLanes;
      }
    }
    for (unsigned Lane = 0; Lane < Lanes; ++Lane)
      if (BinaryOperator::isCommutativeOpcode(E->Opc[Lane]) &&
          Rng.nextChance(1, 2))
        E->Swap[Lane] = true;

    if (Opc == ValueID::SDiv || Opc == ValueID::UDiv) {
      // Division only by a non-zero constant splat: trap-free.
      E->L = genTemplate(K, Lanes, Depth - 1, ChildMul);
      auto Div = std::make_unique<Expr>();
      Div->K = Expr::Const;
      Div->ConstTy = K.Ty;
      Div->IntVals.assign(Lanes, 1 + Rng.nextBelow(63));
      E->R = std::move(Div);
      ++S.NumDivisions;
    } else if (Opc == ValueID::Shl || Opc == ValueID::LShr ||
               Opc == ValueID::AShr) {
      // Shift by a constant amount below the bit width.
      E->L = genTemplate(K, Lanes, Depth - 1, ChildMul);
      auto Amt = std::make_unique<Expr>();
      Amt->K = Expr::Const;
      Amt->ConstTy = K.Ty;
      Amt->IntVals.assign(Lanes, Rng.nextBelow(K.Bits));
      E->R = std::move(Amt);
    } else {
      E->L = genTemplate(K, Lanes, Depth - 1, ChildMul);
      E->R = genTemplate(K, Lanes, Depth - 1, ChildMul);
    }
    return E;
  }

  std::unique_ptr<Expr> genLeaf(const ScalarKind &K, unsigned Lanes) {
    auto E = std::make_unique<Expr>();
    if (Rng.nextChance(1, 4)) {
      E->K = Expr::Const;
      E->ConstTy = K.Ty;
      bool Splat = Rng.nextChance(1, 2);
      if (K.IsFP) {
        double First = static_cast<double>(Rng.nextBelow(16));
        for (unsigned L = 0; L != Lanes; ++L)
          E->FPVals.push_back(Splat ? First
                                    : static_cast<double>(Rng.nextBelow(16)));
      } else {
        uint64_t Bound = uint64_t(1) << (K.Bits / 2 + 1);
        uint64_t First = Rng.nextBelow(Bound);
        for (unsigned L = 0; L != Lanes; ++L)
          E->IntVals.push_back(Splat ? First : Rng.nextBelow(Bound));
      }
      return E;
    }
    E->K = Expr::Load;
    E->LoadTy = K.Ty;
    E->Array = "IN" + K.Sfx + (Rng.nextChance(1, 2) ? "0" : "1");
    uint64_t Base = Rng.nextBelow(ModuleGenerator::ArrayLen - Lanes + 1);
    for (unsigned L = 0; L != Lanes; ++L)
      E->LaneIdx.push_back(Base + L);
    if (Lanes > 1 && Rng.nextChance(1, 6)) {
      // Swizzled (gather) loads: permute the lane->element mapping.
      std::vector<unsigned> Perm(Lanes);
      for (unsigned I = 0; I != Lanes; ++I)
        Perm[I] = I;
      shuffle(Perm);
      for (unsigned I = 0; I != Lanes; ++I)
        E->LaneIdx[I] = Base + Perm[I];
      ++S.NumSwizzledLoads;
    }
    return E;
  }

  /// Fills \p E's cast chain converting \p Src to \p Dst. Returns false
  /// for unsupported pairs (identity; double is the only FP type).
  bool buildCastChain(const ScalarKind &Dst, const ScalarKind &Src, Expr &E) {
    if (Dst.Ty == Src.Ty)
      return false;
    if (Dst.IsFP) {
      E.CastOps = {ValueID::SIToFP};
      E.CastDstTys = {Dst.Ty};
      return true;
    }
    if (Src.IsFP) {
      // double -> i64 -> (trunc to narrower if needed).
      E.CastOps = {ValueID::FPToSI};
      E.CastDstTys = {Ctx.getInt64Ty()};
      if (Dst.Bits < 64) {
        E.CastOps.push_back(ValueID::Trunc);
        E.CastDstTys.push_back(Dst.Ty);
      }
      return true;
    }
    if (Src.Bits > Dst.Bits)
      E.CastOps = {ValueID::Trunc};
    else
      E.CastOps = {Rng.nextChance(1, 2) ? ValueID::SExt : ValueID::ZExt};
    E.CastDstTys = {Dst.Ty};
    return true;
  }

  Value *instantiate(const Expr &E, unsigned Lane, IRBuilder &IRB) {
    switch (E.K) {
    case Expr::Const:
      if (E.ConstTy->isFloatingPointTy())
        return Ctx.getConstantFP(E.ConstTy, E.FPVals[Lane]);
      return Ctx.getConstantInt(cast<IntegerType>(E.ConstTy),
                                E.IntVals[Lane]);
    case Expr::Load: {
      GlobalArray *G = TheModule->getGlobal(E.Array);
      assert(G && "unknown input array");
      Value *Ptr = IRB.createGEP(E.LoadTy, G,
                                 static_cast<int64_t>(E.LaneIdx[Lane]));
      return IRB.createLoad(E.LoadTy, Ptr);
    }
    case Expr::CastOf: {
      Value *V = instantiate(*E.L, Lane, IRB);
      for (size_t I = 0; I != E.CastOps.size(); ++I)
        V = IRB.createCast(E.CastOps[I], V, E.CastDstTys[I]);
      return V;
    }
    case Expr::Bin: {
      Value *L = instantiate(*E.L, Lane, IRB);
      Value *R = instantiate(*E.R, Lane, IRB);
      if (E.Swap[Lane])
        std::swap(L, R);
      return IRB.createBinOp(E.Opc[Lane], L, R);
    }
    }
    return nullptr;
  }

  //===--------------------------------------------------------------------===//
  // Helpers
  //===--------------------------------------------------------------------===//

  ValueID pickOpcode(const ScalarKind &K, unsigned MulBudget) {
    if (K.IsFP) {
      // FDiv excluded: quotients are not exactly representable, so
      // fast-math reassociation could change bits.
      if (MulBudget > 0 && Rng.nextChance(1, 3))
        return ValueID::FMul;
      return Rng.nextChance(1, 3) ? ValueID::FSub : ValueID::FAdd;
    }
    static const ValueID Common[] = {ValueID::Add, ValueID::Add,
                                     ValueID::Sub, ValueID::Mul,
                                     ValueID::And, ValueID::Or,
                                     ValueID::Xor};
    static const ValueID Rare[] = {ValueID::Shl, ValueID::LShr,
                                   ValueID::AShr, ValueID::SDiv,
                                   ValueID::UDiv};
    if (Rng.nextChance(1, 4))
      return Rare[Rng.nextBelow(std::size(Rare))];
    return Common[Rng.nextBelow(std::size(Common))];
  }

  static ValueID flipOpcode(ValueID Opc) {
    switch (Opc) {
    case ValueID::Add:
      return ValueID::Xor;
    case ValueID::Xor:
      return ValueID::Add;
    case ValueID::Sub:
      return ValueID::Add;
    case ValueID::And:
      return ValueID::Or;
    case ValueID::Or:
      return ValueID::And;
    case ValueID::Mul:
      return ValueID::Add;
    case ValueID::FAdd:
      return ValueID::FSub;
    case ValueID::FSub:
      return ValueID::FAdd;
    default:
      return Opc; // Shifts/divs keep their (constant-RHS) shape.
    }
  }

  unsigned pickLanes() {
    uint64_t Roll = Rng.nextBelow(100);
    if (Roll < 40)
      return 2;
    if (Roll < 75)
      return 4;
    if (Roll < 90)
      return 8;
    return 3; // Non-power-of-two groups stress the seed collector.
  }

  unsigned pickDepth() { return 1 + static_cast<unsigned>(Rng.nextBelow(3)); }

  template <typename T> void shuffle(std::vector<T> &V) {
    for (size_t I = V.size(); I > 1; --I)
      std::swap(V[I - 1], V[Rng.nextBelow(I)]);
  }

  /// Rewrites the leftmost leaf of \p E into a load of MIX[\p Base + lane]
  /// so aliasing groups actually read the shared array. The walk stops at
  /// CastOf nodes: their subtree has a different scalar kind, but the cast
  /// node itself produces the template kind (i64), so replacing it whole
  /// keeps the tree type-correct.
  void injectMixLoad(Expr &E, uint64_t Base, unsigned Lanes) {
    Expr *Leaf = &E;
    while (Leaf->K == Expr::Bin)
      Leaf = Leaf->L.get();
    Leaf->L.reset();
    Leaf->CastOps.clear();
    Leaf->CastDstTys.clear();
    Leaf->K = Expr::Load;
    Leaf->Array = "MIX";
    Leaf->LoadTy = Ctx.getInt64Ty();
    Leaf->LaneIdx.clear();
    for (unsigned L = 0; L != Lanes; ++L)
      Leaf->LaneIdx.push_back(
          std::min<uint64_t>(Base + L, ModuleGenerator::ArrayLen - 1));
    Leaf->IntVals.clear();
    Leaf->FPVals.clear();
  }

  const ScalarKind &intKind() { return Kinds[Rng.nextBelow(4)]; }

  GlobalArray *input(const ScalarKind &K) {
    return TheModule->getGlobal("IN" + K.Sfx +
                                (Rng.nextChance(1, 2) ? "0" : "1"));
  }
  GlobalArray *out(const ScalarKind &K) {
    return TheModule->getGlobal("OUT" + K.Sfx);
  }
  GlobalArray *mix() { return TheModule->getGlobal("MIX"); }

  Value *constantFor(const ScalarKind &K, uint64_t V) {
    return Ctx.getConstantInt(cast<IntegerType>(K.Ty), V);
  }

  void noteType(const ScalarKind &K) {
    if (K.IsFP)
      S.UsedFloat = true;
    else
      S.IntWidths.insert(K.Bits);
  }

  Context &Ctx;
  RNG &Rng;
  GeneratorStats &S;
  Module *TheModule = nullptr;
  std::vector<ScalarKind> Kinds;
};

} // namespace

std::unique_ptr<Module> ModuleGenerator::generate(Context &Ctx) {
  Stats = GeneratorStats();
  GeneratorImpl Impl(Ctx, Rng, Stats);
  return Impl.run();
}
