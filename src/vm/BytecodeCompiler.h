//===- vm/BytecodeCompiler.h - IR -> register bytecode ----------*- C++ -*-===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compiles one IR function into the register bytecode of Bytecode.h.
/// Compilation is semantics-preserving relative to the tree-walking
/// interpreter, including trap conditions, charge order and statistics
/// classification (see DESIGN.md "Execution engines").
///
//===----------------------------------------------------------------------===//

#ifndef LSLP_VM_BYTECODECOMPILER_H
#define LSLP_VM_BYTECODECOMPILER_H

#include "vm/Bytecode.h"

#include <map>

namespace lslp {

class Function;
class GlobalArray;
class TargetTransformInfo;

namespace vm {

/// Compiles \p F. \p GlobalAddr maps the module's globals to their base
/// addresses (the engine's layout); \p TTI may be null, in which case all
/// costs are 0 (matching the tree-walker without TTI).
CompiledFunction compileFunction(const Function &F,
                                 const std::map<const GlobalArray *, uint64_t>
                                     &GlobalAddr,
                                 const TargetTransformInfo *TTI);

} // namespace vm
} // namespace lslp

#endif // LSLP_VM_BYTECODECOMPILER_H
