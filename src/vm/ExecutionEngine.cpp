//===- vm/ExecutionEngine.cpp - Execution-engine facade ---------------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "vm/ExecutionEngine.h"

#include "interp/Interpreter.h"
#include "vm/VMEngine.h"

using namespace lslp;

std::unique_ptr<ExecutionEngine>
ExecutionEngine::create(EngineKind Kind, const Module &M,
                        const TargetTransformInfo *TTI) {
  if (Kind == EngineKind::Bytecode)
    return std::make_unique<VMEngine>(M, TTI);
  return std::make_unique<Interpreter>(M, TTI);
}
