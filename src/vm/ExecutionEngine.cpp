//===- vm/ExecutionEngine.cpp - Execution-engine facade ---------------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "vm/ExecutionEngine.h"

#include "interp/Interpreter.h"
#include "jit/ExecMemory.h"
#include "jit/JITEngine.h"
#include "vm/VMEngine.h"

#include <cstdio>
#include <mutex>

using namespace lslp;

std::unique_ptr<ExecutionEngine>
ExecutionEngine::create(EngineKind Kind, const Module &M,
                        const TargetTransformInfo *TTI) {
  if (Kind == EngineKind::NativeJit) {
    if (jit::jitHostSupported())
      return std::make_unique<JITEngine>(M, TTI);
    // Degrade to the (bit-identical) VM with exactly one process-wide
    // remark, so sweeps over many modules do not drown in notes.
    static std::once_flag RemarkOnce;
    std::call_once(RemarkOnce, [] {
      std::fprintf(stderr,
                   "note: --engine=jit is unavailable on this host (cannot "
                   "execute generated x86-64 code); falling back to the vm "
                   "engine\n");
    });
    return std::make_unique<VMEngine>(M, TTI);
  }
  if (Kind == EngineKind::Bytecode)
    return std::make_unique<VMEngine>(M, TTI);
  return std::make_unique<Interpreter>(M, TTI);
}
