//===- vm/VMEngine.cpp - Bytecode dispatch-loop engine ----------------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "vm/VMEngine.h"

#include "interp/LaneOps.h"
#include "ir/Function.h"
#include "ir/Instruction.h"
#include "support/Debug.h"
#include "vm/BytecodeCompiler.h"

#include <cstring>
#include <mutex>

using namespace lslp;
using namespace lslp::vm;

VMEngine::VMEngine(const Module &M, const TargetTransformInfo *TTI)
    : ExecutionEngine(M), TTI(TTI) {}

const CompiledFunction &VMEngine::getOrCompile(const Function *F) {
  {
    std::shared_lock<std::shared_mutex> Lock(CacheMutex);
    auto It = Cache.find(F);
    if (It != Cache.end())
      return It->second;
  }
  // Compile outside any lock would allow duplicate work; compiling under
  // the exclusive lock keeps it once-per-function. Re-check first: another
  // thread may have compiled while we waited for the upgrade.
  std::unique_lock<std::shared_mutex> Lock(CacheMutex);
  auto It = Cache.find(F);
  if (It == Cache.end())
    It = Cache.emplace(F, compileFunction(*F, GlobalAddr, TTI)).first;
  return It->second;
}

namespace {
ExecStats trapStats(ExecStats S, std::string Reason) {
  S.Trapped = true;
  S.TrapReason = std::move(Reason);
  S.ReturnValue = RuntimeValue();
  return S;
}
} // namespace

ExecStats VMEngine::run(const Function *F,
                        const std::vector<RuntimeValue> &Args) {
  assert(F->getParent() == &M && "function from a different module");
  if (Args.size() != F->getNumArgs())
    return trapStats({}, "argument count mismatch calling @" + F->getName());
  for (unsigned I = 0, E = F->getNumArgs(); I != E; ++I)
    if (Args[I].Ty != F->getArg(I)->getType())
      return trapStats({}, "argument type mismatch calling @" + F->getName());

  const CompiledFunction &CF = getOrCompile(F);
  // IR the bytecode compiler cannot lower (malformed constants or phi
  // structure — never verifier-clean IR) surfaces as a trap instead of
  // aborting the process.
  if (!CF.CompileError.empty())
    return trapStats({}, CF.CompileError);
  std::vector<uint64_t> R = CF.InitRegs;
  for (unsigned I = 0, E = F->getNumArgs(); I != E; ++I)
    for (unsigned K = 0, L = Args[I].getNumLanes(); K != L; ++K)
      R[CF.ArgBase[I] + K] = Args[I].Lanes[K];

  ExecStats S;
  laneops::TrapSink Trap;
  size_t PC = 0;
  while (true) {
    const VMInst &I = CF.Code[PC];
    if (I.Charged) {
      ++S.DynamicInsts;
      if (S.DynamicInsts > StepLimit)
        return trapStats(std::move(S), "step limit exceeded (infinite loop?)");
      S.TotalCost += I.Cost;
      if (CollectStats)
        ++(I.StatVec ? S.VectorOpCounts : S.ScalarOpCounts)[I.SrcOpc];
    }
    size_t Next = PC + 1;
    switch (I.Op) {
    case VMOp::IntBin:
      for (unsigned K = 0; K != I.Lanes; ++K)
        R[I.Dst + K] = laneops::evalIntBinLane(I.SrcOpc, I.SrcK.Bits,
                                               R[I.A + K], R[I.B + K], Trap);
      break;
    case VMOp::FPBin:
      for (unsigned K = 0; K != I.Lanes; ++K)
        R[I.Dst + K] = laneops::evalFPBinLane(I.SrcOpc, I.SrcK.IsFloat32,
                                              R[I.A + K], R[I.B + K]);
      break;
    case VMOp::Cast:
      for (unsigned K = 0; K != I.Lanes; ++K)
        R[I.Dst + K] = laneops::evalCastLane(I.SrcOpc, I.SrcK, I.DstK,
                                             R[I.A + K]);
      break;
    case VMOp::ICmp:
      R[I.Dst] = laneops::evalICmp(
                     static_cast<ICmpInst::Predicate>(I.Imm), I.SrcK,
                     R[I.A], R[I.B])
                     ? 1
                     : 0;
      break;
    case VMOp::Select: {
      uint32_t Src = (R[I.A] & 1) ? I.B : I.C;
      for (unsigned K = 0; K != I.Lanes; ++K)
        R[I.Dst + K] = R[Src + K];
      break;
    }
    case VMOp::SelectLanes:
      for (unsigned K = 0; K != I.Lanes; ++K)
        R[I.Dst + K] =
            laneops::evalSelectLane(R[I.A + K], R[I.B + K], R[I.C + K]);
      break;
    case VMOp::Load: {
      uint64_t Addr = R[I.A];
      unsigned Size = static_cast<unsigned>(I.Imm);
      // Stop at the first out-of-bounds lane (same retired-lane set as
      // the tree-walker, so post-trap memory images stay bit-identical).
      for (unsigned K = 0; K != I.Lanes; ++K) {
        uint64_t LaneAddr = Addr + uint64_t(K) * Size;
        if (LaneAddr < 4096 || LaneAddr + Size > Memory.size()) {
          Trap.trap("out-of-bounds memory access");
          break;
        }
        uint64_t Raw = 0;
        std::memcpy(&Raw, &Memory[LaneAddr], Size);
        R[I.Dst + K] = Raw;
      }
      break;
    }
    case VMOp::Store: {
      uint64_t Addr = R[I.B];
      unsigned Size = static_cast<unsigned>(I.Imm);
      for (unsigned K = 0; K != I.Lanes; ++K) {
        uint64_t LaneAddr = Addr + uint64_t(K) * Size;
        if (LaneAddr < 4096 || LaneAddr + Size > Memory.size()) {
          Trap.trap("out-of-bounds memory access");
          break;
        }
        std::memcpy(&Memory[LaneAddr], &R[I.A + K], Size);
      }
      break;
    }
    case VMOp::Gep: {
      int64_t Offset =
          laneops::sextBits(I.SrcK.Bits, R[I.B]) * I.Imm;
      R[I.Dst] = R[I.A] + static_cast<uint64_t>(Offset);
      break;
    }
    case VMOp::InsertElt: {
      uint64_t Lane = R[I.C];
      if (Lane >= I.Lanes) {
        Trap.trap("insertelement lane out of range");
        break;
      }
      for (unsigned K = 0; K != I.Lanes; ++K)
        R[I.Dst + K] = R[I.A + K];
      R[I.Dst + Lane] = R[I.B];
      break;
    }
    case VMOp::ExtractElt: {
      uint64_t Lane = R[I.B];
      if (Lane >= I.Lanes) {
        Trap.trap("extractelement lane out of range");
        break;
      }
      R[I.Dst] = R[I.A + Lane];
      break;
    }
    case VMOp::Shuffle:
      for (unsigned K = 0; K != I.Lanes; ++K) {
        int M = CF.MaskPool[static_cast<size_t>(I.Imm) + K];
        if (M < 0)
          R[I.Dst + K] = 0;
        else if (static_cast<uint32_t>(M) < I.C)
          R[I.Dst + K] = R[I.A + M];
        else
          R[I.Dst + K] = R[I.B + (M - I.C)];
      }
      break;
    case VMOp::Copy:
    case VMOp::PhiCommit:
      for (unsigned K = 0; K != I.Lanes; ++K)
        R[I.Dst + K] = R[I.A + K];
      break;
    case VMOp::Jump:
    case VMOp::Br:
      Next = I.Dst;
      break;
    case VMOp::CondBr:
      Next = (R[I.A] & 1) ? I.Dst : I.B;
      break;
    case VMOp::Ret: {
      std::vector<uint64_t> Lanes(I.Lanes);
      for (unsigned K = 0; K != I.Lanes; ++K)
        Lanes[K] = R[I.A + K];
      S.ReturnValue = RuntimeValue(I.Ty, std::move(Lanes));
      return S;
    }
    case VMOp::RetVoid:
      return S;
    }
    if (Trap.trapped())
      return trapStats(std::move(S), Trap.reason());
    PC = Next;
  }
}
