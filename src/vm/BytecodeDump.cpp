//===- vm/BytecodeDump.cpp - Textual bytecode listings ----------------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "vm/BytecodeDump.h"

#include "ir/Function.h"
#include "ir/Instruction.h"
#include "ir/Module.h"
#include "ir/Type.h"
#include "vm/BytecodeCompiler.h"
#include "vm/ExecutionEngine.h"

#include <cstdio>

using namespace lslp;
using namespace lslp::vm;

namespace {

const char *vmOpName(VMOp Op) {
  switch (Op) {
  case VMOp::IntBin:
    return "IntBin";
  case VMOp::FPBin:
    return "FPBin";
  case VMOp::Cast:
    return "Cast";
  case VMOp::ICmp:
    return "ICmp";
  case VMOp::Select:
    return "Select";
  case VMOp::SelectLanes:
    return "SelectLanes";
  case VMOp::Load:
    return "Load";
  case VMOp::Store:
    return "Store";
  case VMOp::Gep:
    return "Gep";
  case VMOp::InsertElt:
    return "InsertElt";
  case VMOp::ExtractElt:
    return "ExtractElt";
  case VMOp::Shuffle:
    return "Shuffle";
  case VMOp::Copy:
    return "Copy";
  case VMOp::PhiCommit:
    return "PhiCommit";
  case VMOp::Jump:
    return "Jump";
  case VMOp::Br:
    return "Br";
  case VMOp::CondBr:
    return "CondBr";
  case VMOp::Ret:
    return "Ret";
  case VMOp::RetVoid:
    return "RetVoid";
  }
  return "?";
}

std::string kindName(const laneops::ScalarKind &K) {
  if (K.IsPointer)
    return "ptr";
  if (K.IsFP)
    return K.IsFloat32 ? "f32" : "f64";
  return "i" + std::to_string(K.Bits);
}

std::string reg(uint32_t Slot) { return "r" + std::to_string(Slot); }

} // namespace

std::string vm::printVMInst(const CompiledFunction &CF, size_t PC) {
  const VMInst &I = CF.Code[PC];
  std::string S = vmOpName(I.Op);
  switch (I.Op) {
  case VMOp::IntBin:
  case VMOp::FPBin:
    S += std::string(" ") + Instruction::getOpcodeName(I.SrcOpc) + " " +
         kindName(I.SrcK);
    break;
  case VMOp::Cast:
    S += std::string(" ") + Instruction::getOpcodeName(I.SrcOpc) + " " +
         kindName(I.SrcK) + "->" + kindName(I.DstK);
    break;
  case VMOp::ICmp:
    S += std::string(" ") +
         ICmpInst::getPredicateName(
             static_cast<ICmpInst::Predicate>(I.Imm)) +
         " " + kindName(I.SrcK);
    break;
  default:
    break;
  }
  if (I.Lanes != 1)
    S += " x" + std::to_string(I.Lanes);
  switch (I.Op) {
  case VMOp::IntBin:
  case VMOp::FPBin:
    S += " dst=" + reg(I.Dst) + " a=" + reg(I.A) + " b=" + reg(I.B);
    break;
  case VMOp::Cast:
    S += " dst=" + reg(I.Dst) + " a=" + reg(I.A);
    break;
  case VMOp::ICmp:
    S += " dst=" + reg(I.Dst) + " a=" + reg(I.A) + " b=" + reg(I.B);
    break;
  case VMOp::Select:
  case VMOp::SelectLanes:
    S += " dst=" + reg(I.Dst) + " cond=" + reg(I.A) + " t=" + reg(I.B) +
         " f=" + reg(I.C);
    break;
  case VMOp::Load:
    S += " dst=" + reg(I.Dst) + " ptr=" + reg(I.A) +
         " size=" + std::to_string(I.Imm);
    break;
  case VMOp::Store:
    S += " val=" + reg(I.A) + " ptr=" + reg(I.B) +
         " size=" + std::to_string(I.Imm);
    break;
  case VMOp::Gep:
    S += " dst=" + reg(I.Dst) + " base=" + reg(I.A) + " idx=" + reg(I.B) +
         " scale=" + std::to_string(I.Imm);
    break;
  case VMOp::InsertElt:
    S += " dst=" + reg(I.Dst) + " vec=" + reg(I.A) + " elt=" + reg(I.B) +
         " lane=" + reg(I.C);
    break;
  case VMOp::ExtractElt:
    S += " dst=" + reg(I.Dst) + " vec=" + reg(I.A) + " lane=" + reg(I.B);
    break;
  case VMOp::Shuffle: {
    S += " dst=" + reg(I.Dst) + " a=" + reg(I.A) + "(x" +
         std::to_string(I.C) + ") b=" + reg(I.B) + " mask=[";
    for (unsigned K = 0; K != I.Lanes; ++K) {
      if (K)
        S += ",";
      S += std::to_string(CF.MaskPool[static_cast<size_t>(I.Imm) + K]);
    }
    S += "]";
    break;
  }
  case VMOp::Copy:
  case VMOp::PhiCommit:
    S += " dst=" + reg(I.Dst) + " a=" + reg(I.A);
    break;
  case VMOp::Jump:
  case VMOp::Br:
    S += " to=" + std::to_string(I.Dst);
    break;
  case VMOp::CondBr:
    S += " cond=" + reg(I.A) + " true=" + std::to_string(I.Dst) +
         " false=" + std::to_string(I.B);
    break;
  case VMOp::Ret:
    S += " a=" + reg(I.A);
    break;
  case VMOp::RetVoid:
    break;
  }
  if (!I.Charged)
    S += " free";
  else if (I.Cost != 0)
    S += " cost=" + std::to_string(I.Cost);
  return S;
}

std::string vm::dumpFunctionBytecode(const CompiledFunction &CF,
                                     const std::string &Name) {
  std::string Out = "; function @" + Name + ": slots=" +
                    std::to_string(CF.NumSlots) + " args=[";
  for (size_t I = 0; I != CF.ArgBase.size(); ++I) {
    if (I)
      Out += ",";
    Out += reg(CF.ArgBase[I]);
  }
  Out += "]\n";
  if (!CF.CompileError.empty())
    return Out + ";   compile error: " + CF.CompileError + "\n";
  char Buf[32];
  for (size_t PC = 0; PC != CF.Code.size(); ++PC) {
    std::snprintf(Buf, sizeof(Buf), "  [%4zu] ", PC);
    Out += Buf;
    Out += printVMInst(CF, PC);
    Out += "\n";
  }
  return Out;
}

std::string vm::dumpModuleBytecode(const Module &M,
                                   const TargetTransformInfo *TTI) {
  auto Layout = ExecutionEngine::computeGlobalLayout(M);
  std::string Out;
  for (const auto &F : M.functions()) {
    if (F->empty())
      continue;
    if (!Out.empty())
      Out += "\n";
    CompiledFunction CF = compileFunction(*F, Layout, TTI);
    Out += dumpFunctionBytecode(CF, F->getName());
  }
  return Out;
}
