//===- vm/BytecodeDump.h - Textual bytecode listings ------------*- C++ -*-===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic textual rendering of compiled bytecode: one line per
/// VMInst, plus a per-function header (slots, argument bases, mask pool).
/// Backs `lslpc --dump-bytecode` and the per-instruction comments of the
/// JIT's `--dump-jit-asm` listing, so both dumps stay in sync with the
/// bytecode by construction.
///
//===----------------------------------------------------------------------===//

#ifndef LSLP_VM_BYTECODEDUMP_H
#define LSLP_VM_BYTECODEDUMP_H

#include "vm/Bytecode.h"

#include <string>

namespace lslp {

class Module;
class TargetTransformInfo;

namespace vm {

/// Renders one instruction ("IntBin add i32 x4 dst=r8 a=r0 b=r4 cost=1").
std::string printVMInst(const CompiledFunction &CF, size_t PC);

/// Renders a whole compiled function with a "; function @Name" header.
std::string dumpFunctionBytecode(const CompiledFunction &CF,
                                 const std::string &Name);

/// Compiles and renders every function of \p M (declaration order),
/// using the engine memory layout for global addresses. \p TTI may be
/// null (costs print as 0).
std::string dumpModuleBytecode(const Module &M,
                               const TargetTransformInfo *TTI);

} // namespace vm
} // namespace lslp

#endif // LSLP_VM_BYTECODEDUMP_H
