//===- vm/Bytecode.h - Register-VM bytecode representation ------*- C++ -*-===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compact register-based bytecode the VM executes. A function is
/// compiled once into a flat instruction array:
///
///   - every SSA value (and every vector lane of it) gets a fixed slot in
///     a flat uint64_t register file, resolved at compile time — the
///     dispatch loop never consults a map;
///   - constants, undefs and global addresses are materialized into an
///     InitRegs template copied into the register file at run entry;
///   - blocks are flattened in function order and branch targets patched
///     to instruction indices;
///   - phi nodes become parallel-copy edge stubs (free Copy ops into
///     staging slots plus a free Jump) followed by charged PhiCommit ops
///     at block entry, reproducing the tree-walker's atomic phi evaluation
///     and its exact charge order (branch, then phis, then body);
///   - each charged instruction carries its precomputed TTI cost and
///     statistics class, so cycle accounting is a single accumulate.
///
/// See DESIGN.md "Execution engines".
///
//===----------------------------------------------------------------------===//

#ifndef LSLP_VM_BYTECODE_H
#define LSLP_VM_BYTECODE_H

#include "interp/LaneOps.h"
#include "ir/Value.h"

#include <cstdint>
#include <string>
#include <vector>

namespace lslp {

class Type;

namespace vm {

/// Pre-decoded operation of one bytecode instruction.
enum class VMOp : uint8_t {
  IntBin,     ///< Integer binary op (semantic opcode in SrcOpc).
  FPBin,      ///< FP binary op.
  Cast,       ///< SExt/ZExt/Trunc/SIToFP/FPToSI (opcode in SrcOpc).
  ICmp,       ///< Predicate in Imm.
  Select,     ///< Dst = (A & 1) ? B : C, lane-wise copy.
  SelectLanes,///< Per-lane blend: Dst+K = (A+K & 1) ? B+K : C+K.
  Load,       ///< Dst[lanes] <- Memory[A], element size in Imm.
  Store,      ///< Memory[B] <- A[lanes], element size in Imm.
  Gep,        ///< Dst = A + sext(B) * Imm.
  InsertElt,  ///< Dst = A with lane R[C] replaced by B.
  ExtractElt, ///< Dst = A[R[B]].
  Shuffle,    ///< Mask at Imm in the mask pool; C = lanes of A.
  Copy,       ///< Free lane copy (phi edge stub).
  PhiCommit,  ///< Charged staging->result copy at block entry.
  Jump,       ///< Free jump to Dst (edge stub exit).
  Br,         ///< Charged unconditional branch to Dst.
  CondBr,     ///< Charged branch: A & 1 ? Dst : B.
  Ret,        ///< Charged return of A (result type in Ty).
  RetVoid,    ///< Charged void return.
};

/// One pre-decoded bytecode instruction. Operand fields A/B/C and Dst are
/// base indices into the flat register file; multi-lane values occupy
/// [base, base + Lanes).
struct VMInst {
  VMOp Op;
  ValueID SrcOpc;   ///< Semantic/statistics opcode of the IR instruction.
  uint8_t Lanes = 1;
  bool Charged = true;  ///< Counts toward DynamicInsts/cost (not stubs).
  bool StatVec = false; ///< Vector bucket for instruction-mix statistics.
  laneops::ScalarKind SrcK; ///< Operand scalar kind (binops/casts/cmp/gep).
  laneops::ScalarKind DstK; ///< Result scalar kind (casts).
  uint32_t Cost = 0;        ///< Precomputed TTI cost (0 without TTI).
  uint32_t Dst = 0;
  uint32_t A = 0;
  uint32_t B = 0;
  uint32_t C = 0;
  int64_t Imm = 0;
  Type *Ty = nullptr; ///< Result type for Ret.
};

/// A compiled function: flat code plus the register-file template.
struct CompiledFunction {
  std::vector<VMInst> Code;
  /// Shuffle masks, concatenated; VMInst::Imm indexes the pool.
  std::vector<int> MaskPool;
  /// Register-file template: zeros except pre-resolved constants, undefs
  /// and global addresses. Copied into the live file at run entry.
  std::vector<uint64_t> InitRegs;
  /// Base slot of each function argument.
  std::vector<uint32_t> ArgBase;
  uint32_t NumSlots = 0;
  /// Non-empty when the compiler could not lower the function (malformed
  /// phi structure, unsupported constant — IR a verifier pass would have
  /// rejected). The engine reports it as a clean trap at run() time
  /// instead of aborting the process.
  std::string CompileError;
};

} // namespace vm
} // namespace lslp

#endif // LSLP_VM_BYTECODE_H
