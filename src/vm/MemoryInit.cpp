//===- vm/MemoryInit.cpp - Deterministic global-memory init -----------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "vm/MemoryInit.h"

#include "ir/Module.h"
#include "ir/Type.h"
#include "support/RNG.h"
#include "vm/ExecutionEngine.h"

#include <functional>

using namespace lslp;

void lslp::initGlobalMemory(ExecutionEngine &E, const Module &M,
                            uint64_t Seed, MemoryInitStyle Style) {
  // The exact value sequences are load-bearing: FuzzUniform pins the
  // inputs of every archived fuzz reproducer, KernelRanges the benchmark
  // checksums. Do not reorder or rescale.
  if (Style == MemoryInitStyle::FuzzUniform) {
    RNG In(Seed);
    for (const auto &G : M.globals()) {
      bool IsFP = G->getElementType()->isFloatingPointTy();
      for (uint64_t I = 0; I != G->getNumElements(); ++I) {
        if (IsFP)
          E.writeGlobalFP(G->getName(), I,
                          static_cast<double>(In.nextBelow(16)));
        else
          E.writeGlobalInt(G->getName(), I, In.nextBelow(1u << 20));
      }
    }
    return;
  }
  for (const auto &G : M.globals()) {
    RNG Rng(Seed ^ std::hash<std::string>{}(G->getName()));
    for (uint64_t I = 0, N = G->getNumElements(); I != N; ++I) {
      if (G->getElementType()->isFloatingPointTy())
        E.writeGlobalFP(G->getName(), I,
                        1.0 + double(Rng.nextBelow(1024)) / 64.0);
      else
        E.writeGlobalInt(G->getName(), I, Rng.nextBelow(64));
    }
  }
}
