//===- vm/VMEngine.h - Bytecode dispatch-loop engine ------------*- C++ -*-===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fast execution backend: compiles each function to register bytecode
/// on first run (cached per engine) and executes it in a tight dispatch
/// loop over a flat register file. Semantics, traps and ExecStats are
/// bit-for-bit identical to the tree-walking Interpreter; the
/// DifferentialOracle cross-validates the two continuously.
///
//===----------------------------------------------------------------------===//

#ifndef LSLP_VM_VMENGINE_H
#define LSLP_VM_VMENGINE_H

#include "vm/Bytecode.h"
#include "vm/ExecutionEngine.h"

#include <map>
#include <shared_mutex>

namespace lslp {

class TargetTransformInfo;

/// Register-bytecode execution engine ("vm").
class VMEngine : public ExecutionEngine {
public:
  /// \p TTI may be null if only semantics (not cost accounting) matter;
  /// it is baked into the bytecode as per-instruction costs.
  explicit VMEngine(const Module &M, const TargetTransformInfo *TTI = nullptr);

  ExecStats run(const Function *F,
                const std::vector<RuntimeValue> &Args = {}) override;

  const char *engineName() const override { return "vm"; }

protected:
  // The JIT engine (src/jit) derives from the VM: it reuses the bytecode
  // cache as its compilation input and VMEngine::run as the per-function
  // fallback when native compilation is unavailable.
  const vm::CompiledFunction &getOrCompile(const Function *F);

  const TargetTransformInfo *TTI;

private:
  /// Per-function bytecode, compiled on first run. Guarded by CacheMutex
  /// (readers shared, compile+insert exclusive) so concurrent run() calls
  /// — e.g. parallel bench cells sharing one engine — are safe. std::map
  /// keeps references stable across inserts, so a returned
  /// CompiledFunction& survives other threads' compilations. Register
  /// files are per-run locals; shared Memory makes concurrent runs safe
  /// only for functions that don't overlap their stores (see DESIGN.md
  /// "Concurrency model").
  mutable std::shared_mutex CacheMutex;
  std::map<const Function *, vm::CompiledFunction> Cache;
};

} // namespace lslp

#endif // LSLP_VM_VMENGINE_H
