//===- vm/MemoryInit.h - Deterministic global-memory init -------*- C++ -*-===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one shared seed/memory-initialization helper behind both the
/// differential-fuzzing oracle and the kernel benchmarks/tests. Both
/// styles fill every global array of a module with deterministic
/// pseudo-random values through the ExecutionEngine facade, so any engine
/// starts from an identical memory image.
///
//===----------------------------------------------------------------------===//

#ifndef LSLP_VM_MEMORYINIT_H
#define LSLP_VM_MEMORYINIT_H

#include <cstdint>

namespace lslp {

class ExecutionEngine;
class Module;

/// Input distribution of initGlobalMemory.
enum class MemoryInitStyle {
  /// Differential-oracle inputs: one RNG stream across all globals in
  /// module order. FP arrays get small integers in [0, 16) so all FP
  /// arithmetic the generator emits is exact (immune to fast-math
  /// reassociation); integer arrays get values below 2^20.
  FuzzUniform,
  /// Benchmark/test kernel inputs: a per-array generator (contents do not
  /// depend on module layout). FP in [1, 17) — positive, well away from
  /// zero: safe divisors, stable sums. Integers below 64 so shifts stay
  /// far from the type width.
  KernelRanges,
};

/// Fills every global array of \p M with deterministic values drawn from
/// \p Seed in the given style.
void initGlobalMemory(ExecutionEngine &E, const Module &M, uint64_t Seed,
                      MemoryInitStyle Style);

} // namespace lslp

#endif // LSLP_VM_MEMORYINIT_H
