//===- vm/ExecutionEngine.h - Execution-engine facade -----------*- C++ -*-===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The common interface of the two execution backends of the cycle-model
/// "machine":
///
///   - interp: the tree-walking reference interpreter (src/interp), and
///   - vm:     the register-based bytecode VM (src/vm),
///
/// Both engines execute IR functions against a byte-addressed memory
/// holding the module's global arrays and produce identical ExecStats:
/// same return values, same memory image, same traps, same dynamic
/// instruction count and same accumulated TTI cost (the simulated cycle
/// count every figure is built from). The DifferentialOracle continuously
/// cross-validates this equivalence (see DESIGN.md "Execution engines").
///
/// The base class owns the memory image and global layout so that both
/// engines — and helpers like initGlobalMemory/checksumGlobal — address
/// memory identically by construction.
///
//===----------------------------------------------------------------------===//

#ifndef LSLP_VM_EXECUTIONENGINE_H
#define LSLP_VM_EXECUTIONENGINE_H

#include "interp/RuntimeValue.h"
#include "ir/Module.h"
#include "ir/Value.h"
#include "support/Debug.h"

#include <cstdint>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace lslp {

class Function;
class TargetTransformInfo;

/// Statistics and result of one function execution. Identical across
/// engines for identical inputs (the oracle's cross-engine invariant).
struct ExecStats {
  RuntimeValue ReturnValue; ///< Invalid for void functions (and after traps).
  /// True when execution stopped at a runtime trap (division by zero,
  /// out-of-bounds access, step-limit exhaustion, argument mismatch).
  /// Traps are clean results, not process aborts: memory writes that
  /// retired before the trapping instruction are visible in the memory
  /// image (identically on both engines), and ReturnValue is invalid.
  bool Trapped = false;
  /// Engine-agnostic trap reason ("udiv by zero"); empty when !Trapped.
  std::string TrapReason;
  uint64_t DynamicInsts = 0;
  uint64_t TotalCost = 0; ///< Sum of per-instruction TTI costs.
  /// Dynamic instruction counts, split scalar/vector per opcode.
  /// Populated only when setCollectStats(true).
  std::map<ValueID, uint64_t> ScalarOpCounts;
  std::map<ValueID, uint64_t> VectorOpCounts;
  /// TotalCost scaled by the TTI issue width (1 if no TTI).
  double simulatedCycles(unsigned IssueWidth = 1) const {
    return static_cast<double>(TotalCost) / IssueWidth;
  }
};

/// Which execution backend to use.
enum class EngineKind {
  TreeWalk,  ///< Reference tree-walking interpreter ("interp").
  Bytecode,  ///< Register-based bytecode VM ("vm").
  NativeJit, ///< x86-64 machine-code JIT ("jit"); falls back to the VM
             ///< on hosts that cannot execute generated code.
};

/// Command-line name of an engine kind ("interp" / "vm" / "jit").
inline const char *engineKindName(EngineKind Kind) {
  switch (Kind) {
  case EngineKind::TreeWalk:
    return "interp";
  case EngineKind::Bytecode:
    return "vm";
  case EngineKind::NativeJit:
    return "jit";
  }
  return "?";
}

/// The accepted --engine= spellings, for tool error messages. Every tool
/// that parses an engine name (lslpc, lslpd requests, bench -engine=)
/// must reject unknown values with this exact choice list so the
/// diagnostics cannot drift apart.
inline const char *engineKindChoices() { return "interp|vm|jit"; }

/// Parses an --engine= value; returns false on unknown names.
inline bool parseEngineKind(std::string_view Name, EngineKind &Out) {
  if (Name == "interp") {
    Out = EngineKind::TreeWalk;
    return true;
  }
  if (Name == "vm") {
    Out = EngineKind::Bytecode;
    return true;
  }
  if (Name == "jit") {
    Out = EngineKind::NativeJit;
    return true;
  }
  return false;
}

/// Validates a wire-format engine tag (serialized EngineKind). Shared by
/// the daemon protocol decoder so new engines stay in sync.
inline bool engineKindFromTag(uint8_t Tag, EngineKind &Out) {
  if (Tag > static_cast<uint8_t>(EngineKind::NativeJit))
    return false;
  Out = static_cast<EngineKind>(Tag);
  return true;
}

/// Executes functions of one module instance. Construction allocates and
/// zero-fills a memory segment for every global array; the layout (guard
/// page at address 0, 64-byte alignment between segments) is shared by
/// all engines.
class ExecutionEngine {
public:
  explicit ExecutionEngine(const Module &M) : M(M) {
    GlobalAddr = computeGlobalLayout(M);
    uint64_t Cursor = 4096;
    for (const auto &G : M.globals()) {
      Cursor = GlobalAddr[G.get()] + G->getSizeInBytes();
      Cursor = (Cursor + 63) & ~uint64_t(63);
    }
    Memory.assign(Cursor, 0);
  }
  virtual ~ExecutionEngine() = default;

  /// The shared memory layout: guard page at address 0, globals from 4096
  /// upward with 64-byte alignment between segments. Exposed statically
  /// so offline consumers (bytecode/JIT listings) can address globals
  /// identically to a live engine.
  static std::map<const GlobalArray *, uint64_t>
  computeGlobalLayout(const Module &M) {
    std::map<const GlobalArray *, uint64_t> Layout;
    uint64_t Cursor = 4096;
    for (const auto &G : M.globals()) {
      Layout[G.get()] = Cursor;
      Cursor += G->getSizeInBytes();
      Cursor = (Cursor + 63) & ~uint64_t(63);
    }
    return Layout;
  }

  /// Creates an engine of the given kind. \p TTI may be null if only
  /// semantics (not cost accounting) matter.
  static std::unique_ptr<ExecutionEngine>
  create(EngineKind Kind, const Module &M,
         const TargetTransformInfo *TTI = nullptr);

  /// Executes \p F with \p Args. Runtime traps (division by zero,
  /// out-of-bounds access, step-limit exhaustion, argument mismatch) are
  /// reported via ExecStats::Trapped/TrapReason — run() never aborts the
  /// process on bad input.
  virtual ExecStats run(const Function *F,
                        const std::vector<RuntimeValue> &Args = {}) = 0;

  /// The engine's command-line name ("interp" / "vm").
  virtual const char *engineName() const = 0;

  /// \name Global array access (by name; aborts if unknown).
  /// @{
  /// Address of element 0 of global \p Name.
  uint64_t getGlobalAddress(std::string_view Name) const {
    return GlobalAddr.at(getGlobalOrDie(Name));
  }
  /// Writes integer element \p Index of \p Name.
  void writeGlobalInt(std::string_view Name, uint64_t Index, uint64_t Value) {
    const GlobalArray *G = getGlobalOrDie(Name);
    unsigned Size = G->getElementType()->getSizeInBytes();
    uint64_t Addr = elementAddress(G, Index);
    std::memcpy(&Memory[Addr], &Value, Size);
  }
  /// Writes FP element \p Index of \p Name.
  void writeGlobalFP(std::string_view Name, uint64_t Index, double Value) {
    const GlobalArray *G = getGlobalOrDie(Name);
    uint64_t Addr = elementAddress(G, Index);
    if (G->getElementType()->isFloatTy()) {
      float F = static_cast<float>(Value);
      std::memcpy(&Memory[Addr], &F, 4);
    } else {
      std::memcpy(&Memory[Addr], &Value, 8);
    }
  }
  /// Reads integer element \p Index of \p Name (zero-extended).
  uint64_t readGlobalInt(std::string_view Name, uint64_t Index) const {
    const GlobalArray *G = getGlobalOrDie(Name);
    unsigned Size = G->getElementType()->getSizeInBytes();
    uint64_t Addr = elementAddress(G, Index);
    uint64_t Value = 0;
    std::memcpy(&Value, &Memory[Addr], Size);
    return Value;
  }
  /// Reads FP element \p Index of \p Name.
  double readGlobalFP(std::string_view Name, uint64_t Index) const {
    const GlobalArray *G = getGlobalOrDie(Name);
    uint64_t Addr = elementAddress(G, Index);
    if (G->getElementType()->isFloatTy()) {
      float F;
      std::memcpy(&F, &Memory[Addr], 4);
      return F;
    }
    double D;
    std::memcpy(&D, &Memory[Addr], 8);
    return D;
  }
  /// Returns the whole memory image (for whole-state equality checks).
  const std::vector<uint8_t> &getMemoryImage() const { return Memory; }
  /// @}

  /// Upper bound on executed instructions per run() (trap when exceeded).
  void setStepLimit(uint64_t Limit) { StepLimit = Limit; }

  /// Enables per-opcode dynamic instruction counting (small overhead).
  void setCollectStats(bool Collect) { CollectStats = Collect; }

  const Module &getModule() const { return M; }

protected:
  const GlobalArray *getGlobalOrDie(std::string_view Name) const {
    const GlobalArray *G = M.getGlobal(Name);
    if (!G)
      reportFatalError("execution engine: unknown global '" +
                       std::string(Name) + "'");
    return G;
  }

  uint64_t elementAddress(const GlobalArray *G, uint64_t Index) const {
    if (Index >= G->getNumElements())
      reportFatalError("execution engine: global index out of range for '@" +
                       G->getName() + "'");
    return GlobalAddr.at(G) + Index * G->getElementType()->getSizeInBytes();
  }

  const Module &M;
  std::vector<uint8_t> Memory;
  std::map<const GlobalArray *, uint64_t> GlobalAddr;
  uint64_t StepLimit = 200u * 1000u * 1000u;
  bool CollectStats = false;
};

} // namespace lslp

#endif // LSLP_VM_EXECUTIONENGINE_H
