//===- vm/BytecodeCompiler.cpp - IR -> register bytecode --------------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "vm/BytecodeCompiler.h"

#include "costmodel/TargetTransformInfo.h"
#include "ir/BasicBlock.h"
#include "ir/Constants.h"
#include "ir/Function.h"
#include "ir/Instruction.h"
#include "ir/Module.h"
#include "support/Debug.h"

#include <algorithm>
#include <utility>

using namespace lslp;
using namespace lslp::vm;

namespace {

unsigned lanesOf(const Type *Ty) {
  if (const auto *VT = dyn_cast<VectorType>(Ty))
    return VT->getNumElements();
  return 1;
}

class Compiler {
public:
  Compiler(const Function &F,
           const std::map<const GlobalArray *, uint64_t> &GlobalAddr,
           const TargetTransformInfo *TTI)
      : F(F), GlobalAddr(GlobalAddr), TTI(TTI) {}

  CompiledFunction compile() {
    // Lowering failures (recorded via fail()) leave Out.CompileError set;
    // the engine then traps at run() time instead of aborting here.
    // Pass 1: fixed slots for arguments, instruction results and phi
    // staging (the parallel-copy landing pads).
    for (unsigned I = 0, E = F.getNumArgs(); I != E; ++I)
      Out.ArgBase.push_back(assignSlot(F.getArg(I)));
    for (const auto &BB : F)
      for (const auto &I : *BB) {
        if (!I->getType()->isVoidTy())
          assignSlot(I.get());
        if (const auto *Phi = dyn_cast<PHINode>(I.get()))
          Staging[Phi] = alloc(lanesOf(Phi->getType()));
      }

    // Pass 2: flatten blocks in function order.
    for (const auto &BB : F)
      emitBlock(*BB);

    // Pass 3: parallel-copy stubs for every control-flow edge into a block
    // with phis, then patch all branch targets.
    emitEdgeStubs();
    for (const auto &Fix : Fixups) {
      uint32_t Target = edgeTarget(Fix.From, Fix.To);
      (Fix.FalseTarget ? Out.Code[Fix.InstIdx].B : Out.Code[Fix.InstIdx].Dst) =
          Target;
    }
    return std::move(Out);
  }

private:
  //===--------------------------------------------------------------------===//
  // Slots
  //===--------------------------------------------------------------------===//

  /// Records the first lowering failure; compilation continues (emitting
  /// placeholder code that is never executed) so no caller needs an
  /// error-path unwind.
  void fail(const char *Why) {
    if (Out.CompileError.empty())
      Out.CompileError = Why;
  }

  uint32_t alloc(unsigned Lanes) {
    uint32_t Base = Out.NumSlots;
    Out.NumSlots += Lanes;
    Out.InitRegs.resize(Out.NumSlots, 0);
    return Base;
  }

  uint32_t assignSlot(const Value *V) {
    auto [It, Inserted] = Slots.try_emplace(V, 0);
    if (Inserted)
      It->second = alloc(lanesOf(V->getType()));
    return It->second;
  }

  /// Raw lane encoding of one scalar constant (RuntimeValue conventions).
  uint64_t constLane(const Value *V) {
    if (const auto *CI = dyn_cast<ConstantInt>(V))
      return CI->getZExtValue();
    if (const auto *CF = dyn_cast<ConstantFP>(V))
      return laneops::encodeFP(CF->getType()->isFloatTy(), CF->getValue());
    if (isa<UndefValue>(V))
      return 0;
    if (const auto *G = dyn_cast<GlobalArray>(V))
      return GlobalAddr.at(G);
    fail("unsupported constant operand");
    return 0;
  }

  /// Operand slot: instruction/argument slots were preassigned; constants,
  /// undefs and globals are materialized into the InitRegs template.
  uint32_t slotOf(const Value *V) {
    auto It = Slots.find(V);
    if (It != Slots.end())
      return It->second;
    uint32_t Base = alloc(lanesOf(V->getType()));
    Slots[V] = Base;
    if (const auto *CV = dyn_cast<ConstantVector>(V)) {
      for (unsigned I = 0, E = CV->getNumElements(); I != E; ++I)
        Out.InitRegs[Base + I] = constLane(CV->getElement(I));
    } else if (const auto *U = dyn_cast<UndefValue>(V)) {
      (void)U; // All lanes stay 0.
    } else {
      Out.InitRegs[Base] = constLane(V);
    }
    return Base;
  }

  //===--------------------------------------------------------------------===//
  // Emission
  //===--------------------------------------------------------------------===//

  uint32_t cost(const Instruction *I) const {
    if (!TTI)
      return 0;
    return static_cast<uint32_t>(std::max(0, TTI->getInstructionCost(I)));
  }

  /// Statistics bucket: stores classify by the stored type, everything
  /// else by the result type (same rule as the tree-walker).
  static bool statVec(const Instruction *I) {
    const Type *Ty = I->getType();
    if (const auto *St = dyn_cast<StoreInst>(I))
      Ty = St->getAccessType();
    return Ty->isVectorTy();
  }

  VMInst &emit(VMOp Op, const Instruction *I) {
    VMInst Inst;
    Inst.Op = Op;
    Inst.SrcOpc = I->getOpcode();
    Inst.Cost = cost(I);
    Inst.StatVec = statVec(I);
    Out.Code.push_back(Inst);
    return Out.Code.back();
  }

  void emitBlock(const BasicBlock &BB) {
    BlockPC[&BB] = static_cast<uint32_t>(Out.Code.size());

    auto It = BB.begin();
    // Phis first: charged commits of the edge stubs' staging slots, in
    // block order — matching the tree-walker's charge sequence exactly.
    for (; It != BB.end(); ++It) {
      const auto *Phi = dyn_cast<PHINode>(It->get());
      if (!Phi)
        break;
      if (&BB == F.getEntryBlock()) {
        fail("phi in entry block");
        continue;
      }
      VMInst &I = emit(VMOp::PhiCommit, Phi);
      I.Lanes = static_cast<uint8_t>(lanesOf(Phi->getType()));
      I.Dst = Slots.at(Phi);
      I.A = Staging.at(Phi);
    }

    for (; It != BB.end(); ++It)
      emitInst(&BB, It->get());
  }

  void emitInst(const BasicBlock *BB, const Instruction *I) {
    switch (I->getOpcode()) {
    case ValueID::Load: {
      const auto *L = cast<LoadInst>(I);
      Type *Ty = L->getAccessType();
      VMInst &V = emit(VMOp::Load, I);
      V.Lanes = static_cast<uint8_t>(lanesOf(Ty));
      V.Dst = Slots.at(I);
      V.A = slotOf(L->getPointerOperand());
      V.Imm = Ty->getScalarType()->getSizeInBytes();
      return;
    }
    case ValueID::Store: {
      const auto *S = cast<StoreInst>(I);
      Type *Ty = S->getAccessType();
      VMInst &V = emit(VMOp::Store, I);
      V.Lanes = static_cast<uint8_t>(lanesOf(Ty));
      V.A = slotOf(S->getValueOperand());
      V.B = slotOf(S->getPointerOperand());
      V.Imm = Ty->getScalarType()->getSizeInBytes();
      return;
    }
    case ValueID::Gep: {
      const auto *G = cast<GEPInst>(I);
      VMInst &V = emit(VMOp::Gep, I);
      V.Dst = Slots.at(I);
      V.A = slotOf(G->getBaseOperand());
      V.B = slotOf(G->getIndexOperand());
      V.SrcK = laneops::ScalarKind::of(
          G->getIndexOperand()->getType()->getScalarType());
      V.Imm = G->getElementType()->getSizeInBytes();
      return;
    }
    case ValueID::SExt:
    case ValueID::ZExt:
    case ValueID::Trunc:
    case ValueID::SIToFP:
    case ValueID::FPToSI: {
      const auto *C = cast<CastInst>(I);
      VMInst &V = emit(VMOp::Cast, I);
      V.Lanes = static_cast<uint8_t>(lanesOf(C->getSrcType()));
      V.Dst = Slots.at(I);
      V.A = slotOf(C->getSourceOperand());
      V.SrcK = laneops::ScalarKind::of(C->getSrcType()->getScalarType());
      V.DstK = laneops::ScalarKind::of(C->getDestType()->getScalarType());
      return;
    }
    case ValueID::ICmp: {
      const auto *C = cast<ICmpInst>(I);
      VMInst &V = emit(VMOp::ICmp, I);
      V.Dst = Slots.at(I);
      V.A = slotOf(C->getLHS());
      V.B = slotOf(C->getRHS());
      V.SrcK = laneops::ScalarKind::of(C->getLHS()->getType());
      V.Imm = static_cast<int64_t>(C->getPredicate());
      return;
    }
    case ValueID::Select: {
      const auto *S = cast<SelectInst>(I);
      // Vector conditions blend per lane (SelectLanes); a scalar condition
      // picks one whole source value, however many lanes it has.
      bool PerLane = S->getCondition()->getType()->isVectorTy();
      VMInst &V = emit(PerLane ? VMOp::SelectLanes : VMOp::Select, I);
      V.Lanes = static_cast<uint8_t>(lanesOf(S->getType()));
      V.Dst = Slots.at(I);
      V.A = slotOf(S->getCondition());
      V.B = slotOf(S->getTrueValue());
      V.C = slotOf(S->getFalseValue());
      return;
    }
    case ValueID::InsertElement: {
      const auto *IE = cast<InsertElementInst>(I);
      VMInst &V = emit(VMOp::InsertElt, I);
      V.Lanes = static_cast<uint8_t>(lanesOf(IE->getType()));
      V.Dst = Slots.at(I);
      V.A = slotOf(IE->getVectorOperand());
      V.B = slotOf(IE->getElementOperand());
      V.C = slotOf(IE->getIndexOperand());
      return;
    }
    case ValueID::ExtractElement: {
      const auto *EE = cast<ExtractElementInst>(I);
      VMInst &V = emit(VMOp::ExtractElt, I);
      V.Lanes =
          static_cast<uint8_t>(lanesOf(EE->getVectorOperand()->getType()));
      V.Dst = Slots.at(I);
      V.A = slotOf(EE->getVectorOperand());
      V.B = slotOf(EE->getIndexOperand());
      return;
    }
    case ValueID::ShuffleVector: {
      const auto *SV = cast<ShuffleVectorInst>(I);
      VMInst &V = emit(VMOp::Shuffle, I);
      V.Lanes = static_cast<uint8_t>(SV->getMask().size());
      V.Dst = Slots.at(I);
      V.A = slotOf(SV->getFirstVector());
      V.B = slotOf(SV->getSecondVector());
      V.C = lanesOf(SV->getFirstVector()->getType());
      V.Imm = static_cast<int64_t>(Out.MaskPool.size());
      for (int M : SV->getMask())
        Out.MaskPool.push_back(M);
      return;
    }
    case ValueID::Br: {
      const auto *Br = cast<BranchInst>(I);
      if (Br->isConditional()) {
        VMInst &V = emit(VMOp::CondBr, I);
        V.A = slotOf(Br->getCondition());
        Fixups.push_back({Out.Code.size() - 1, false, BB, Br->getSuccessor(0)});
        Fixups.push_back({Out.Code.size() - 1, true, BB, Br->getSuccessor(1)});
      } else {
        emit(VMOp::Br, I);
        Fixups.push_back({Out.Code.size() - 1, false, BB, Br->getSuccessor(0)});
      }
      return;
    }
    case ValueID::Ret: {
      const auto *Ret = cast<ReturnInst>(I);
      if (const Value *RV = Ret->getReturnValue()) {
        VMInst &V = emit(VMOp::Ret, I);
        V.Lanes = static_cast<uint8_t>(lanesOf(RV->getType()));
        V.A = slotOf(RV);
        V.Ty = RV->getType();
      } else {
        emit(VMOp::RetVoid, I);
      }
      return;
    }
    case ValueID::Phi:
      lslp_unreachable("phi after the phi prefix of a block");
    default: {
      assert(I->isBinaryOp() && "unhandled opcode in bytecode compiler");
      Type *ScalarTy = I->getType()->getScalarType();
      VMInst &V = emit(
          ScalarTy->isFloatingPointTy() ? VMOp::FPBin : VMOp::IntBin, I);
      V.Lanes = static_cast<uint8_t>(lanesOf(I->getType()));
      V.Dst = Slots.at(I);
      V.A = slotOf(I->getOperand(0));
      V.B = slotOf(I->getOperand(1));
      V.SrcK = laneops::ScalarKind::of(ScalarTy);
      return;
    }
    }
  }

  //===--------------------------------------------------------------------===//
  // Edges
  //===--------------------------------------------------------------------===//

  /// Target PC of edge From->To: the block itself when it has no phis,
  /// else a parallel-copy stub built on first request.
  uint32_t edgeTarget(const BasicBlock *From, const BasicBlock *To) {
    if (To->begin() == To->end() || !isa<PHINode>(To->begin()->get()))
      return BlockPC.at(To);
    return EdgePC.at({From, To});
  }

  void emitEdgeStubs() {
    for (const auto &Fix : Fixups) {
      const BasicBlock *To = Fix.To;
      if (To->begin() == To->end() || !isa<PHINode>(To->begin()->get()))
        continue;
      auto Key = std::make_pair(Fix.From, To);
      if (EdgePC.count(Key))
        continue;
      EdgePC[Key] = static_cast<uint32_t>(Out.Code.size());
      // Free parallel copies into staging, in block order; the charged
      // PhiCommits at the block head apply them atomically.
      for (auto It = To->begin(); It != To->end(); ++It) {
        const auto *Phi = dyn_cast<PHINode>(It->get());
        if (!Phi)
          break;
        const Value *In = Phi->getIncomingValueForBlock(Fix.From);
        if (!In) {
          fail("phi has no entry for predecessor");
          continue;
        }
        VMInst Copy;
        Copy.Op = VMOp::Copy;
        Copy.SrcOpc = ValueID::Phi;
        Copy.Charged = false;
        Copy.Lanes = static_cast<uint8_t>(lanesOf(Phi->getType()));
        Copy.Dst = Staging.at(Phi);
        Copy.A = slotOf(In);
        Out.Code.push_back(Copy);
      }
      VMInst Jump;
      Jump.Op = VMOp::Jump;
      Jump.SrcOpc = ValueID::Br;
      Jump.Charged = false;
      Jump.Dst = BlockPC.at(To);
      Out.Code.push_back(Jump);
    }
  }

  struct BranchFixup {
    size_t InstIdx;
    bool FalseTarget; ///< Patch field B (false successor) instead of Dst.
    const BasicBlock *From;
    const BasicBlock *To;
  };

  const Function &F;
  const std::map<const GlobalArray *, uint64_t> &GlobalAddr;
  const TargetTransformInfo *TTI;

  CompiledFunction Out;
  std::map<const Value *, uint32_t> Slots;
  std::map<const PHINode *, uint32_t> Staging;
  std::map<const BasicBlock *, uint32_t> BlockPC;
  std::map<std::pair<const BasicBlock *, const BasicBlock *>, uint32_t> EdgePC;
  std::vector<BranchFixup> Fixups;
};

} // namespace

CompiledFunction
lslp::vm::compileFunction(const Function &F,
                          const std::map<const GlobalArray *, uint64_t>
                              &GlobalAddr,
                          const TargetTransformInfo *TTI) {
  return Compiler(F, GlobalAddr, TTI).compile();
}
