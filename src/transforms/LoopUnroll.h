//===- transforms/LoopUnroll.h - Counted-loop unrolling ---------*- C++ -*-===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unrolling of innermost single-block counted loops. SLP seeds never
/// cross the loop back-edge, so a loop storing one element per iteration
/// offers the seed collector nothing; replicating the body U times puts U
/// consecutive stores into one block and the existing pipeline takes it
/// from there.
///
/// The trip count is established by bounded compile-time simulation of
/// the loop's control-carrying scalar computation (phis with constant
/// initial values, integer arithmetic, the exit compare) — no symbolic
/// scalar evolution. Loops whose exit condition depends on memory or
/// arguments are skipped with a `loop-unroll-skipped` remark. The chosen
/// factor always divides the trip count exactly (falling back to the
/// largest divisor not exceeding the requested factor), so the
/// intermediate exit tests can be dropped outright and no epilogue loop
/// is needed.
///
//===----------------------------------------------------------------------===//

#ifndef LSLP_TRANSFORMS_LOOPUNROLL_H
#define LSLP_TRANSFORMS_LOOPUNROLL_H

namespace lslp {

class Function;
class Module;
class RemarkStreamer;

/// Unrolls every matching counted loop of \p F by (at most) \p Factor;
/// returns the number of loops unrolled. When \p Remarks is non-null,
/// emits one loop-unrolled remark per rewritten loop and one
/// loop-unroll-skipped remark per candidate rejected (unknown trip
/// count, no dividing factor).
unsigned runLoopUnroll(Function &F, unsigned Factor,
                       RemarkStreamer *Remarks = nullptr);

/// Runs loop unrolling on every function of \p M.
unsigned runLoopUnroll(Module &M, unsigned Factor,
                       RemarkStreamer *Remarks = nullptr);

} // namespace lslp

#endif // LSLP_TRANSFORMS_LOOPUNROLL_H
