//===- transforms/EarlyCSE.h - Block-local common subexpressions -*- C++ -*-===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Block-local common-subexpression elimination (a simplified
/// llvm::EarlyCSE): pure instructions with identical opcode/type/operands
/// are merged, and repeated loads of the same address are merged as long
/// as no store intervenes (tracked with a memory generation counter).
///
/// Frontends often emit the redundant loads this pass removes; running it
/// before the vectorizer models the -O3 pipeline position the paper's SLP
/// pass runs in, and turns repeated operands into the shared values the
/// SPLAT operand mode (paper Table 1) recognizes.
///
//===----------------------------------------------------------------------===//

#ifndef LSLP_TRANSFORMS_EARLYCSE_H
#define LSLP_TRANSFORMS_EARLYCSE_H

namespace lslp {

class BasicBlock;
class Function;
class Module;
class RemarkStreamer;

/// Runs CSE on one block; returns the number of instructions removed.
/// When \p Remarks is non-null, emits one cse-hit remark per replaced
/// instruction.
unsigned runEarlyCSE(BasicBlock &BB, RemarkStreamer *Remarks = nullptr);

/// Runs CSE on every block of \p F.
unsigned runEarlyCSE(Function &F, RemarkStreamer *Remarks = nullptr);

/// Runs CSE on every function of \p M.
unsigned runEarlyCSE(Module &M, RemarkStreamer *Remarks = nullptr);

} // namespace lslp

#endif // LSLP_TRANSFORMS_EARLYCSE_H
