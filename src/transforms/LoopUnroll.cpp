//===- transforms/LoopUnroll.cpp - Counted-loop unrolling ---------------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "transforms/LoopUnroll.h"

#include "diag/IRRemarks.h"
#include "diag/RemarkEngine.h"
#include "diag/Statistics.h"
#include "interp/LaneOps.h"
#include "ir/BasicBlock.h"
#include "ir/Cloning.h"
#include "ir/Constants.h"
#include "ir/Function.h"
#include "ir/Instruction.h"
#include "ir/Local.h"
#include "ir/Module.h"

#include <map>
#include <string>
#include <vector>

using namespace lslp;

LSLP_STATISTIC(NumLoopsUnrolled, "loop-unroll", "Counted loops unrolled");
LSLP_STATISTIC(NumLoopUnrollSkips, "loop-unroll",
               "Loop candidates not unrolled");

namespace {

/// Safety cap on the compile-time trip-count simulation. Far above any
/// trip count worth unrolling, far below the engines' step limits.
constexpr uint64_t MaxSimulatedTrips = 1 << 16;

/// A matched single-block loop: header == latch == body, one preheader.
struct LoopShape {
  BasicBlock *Body = nullptr;
  BasicBlock *Preheader = nullptr;
  BasicBlock *Exit = nullptr;
  BranchInst *Latch = nullptr;
  bool BackEdgeOnTrue = false; ///< Successor index of Body in the latch.
  std::vector<PHINode *> Phis;
};

/// Matches \p BB as a canonical counted-loop body. Returns false when the
/// shape does not fit (silently: most blocks are not loops).
bool matchLoop(BasicBlock *BB, LoopShape &L) {
  Instruction *Term = BB->getTerminator();
  auto *Br = Term ? dyn_cast<BranchInst>(Term) : nullptr;
  if (!Br || !Br->isConditional())
    return false;
  BasicBlock *S0 = Br->getSuccessor(0);
  BasicBlock *S1 = Br->getSuccessor(1);
  if ((S0 == BB) == (S1 == BB))
    return false; // Need exactly one back-edge.
  L.Body = BB;
  L.Latch = Br;
  L.BackEdgeOnTrue = S0 == BB;
  L.Exit = L.BackEdgeOnTrue ? S1 : S0;
  std::vector<BasicBlock *> Preds = BB->predecessors();
  if (Preds.size() != 2)
    return false;
  L.Preheader = Preds[0] == BB ? Preds[1] : Preds[0];
  if (L.Preheader == BB || L.Exit == BB)
    return false;
  for (const auto &IPtr : *BB) {
    auto *P = dyn_cast<PHINode>(IPtr.get());
    if (!P)
      break;
    if (P->getNumIncoming() != 2 ||
        !P->getIncomingValueForBlock(L.Preheader) ||
        !P->getIncomingValueForBlock(BB))
      return false;
    L.Phis.push_back(P);
  }
  return true;
}

/// Compile-time evaluator over the subset of scalar integer computation
/// the loop's exit condition may depend on. Values resolve from integer
/// constants and previously simulated instructions; anything else
/// (memory, arguments, FP) is untracked and poisons whatever reads it.
class TripCountSimulator {
public:
  explicit TripCountSimulator(const LoopShape &L) : L(L) {}

  /// Returns true and sets \p TripCount to the number of body executions
  /// when the simulation reaches the exit within the iteration cap.
  bool run(uint64_t &TripCount) {
    for (PHINode *P : L.Phis)
      if (!seed(P, P->getIncomingValueForBlock(L.Preheader)))
        Cur.erase(P); // Untracked phi: init not a constant.
    for (uint64_t Iter = 1; Iter <= MaxSimulatedTrips; ++Iter) {
      if (!stepBody())
        return false;
      uint64_t CondV = 0;
      if (!resolve(L.Latch->getCondition(), CondV))
        return false;
      bool TakenTrue = (CondV & 1) != 0;
      if (TakenTrue != L.BackEdgeOnTrue) {
        TripCount = Iter;
        return true;
      }
      if (!advancePhis())
        return false;
    }
    return false; // Cap exceeded; not worth unrolling anyway.
  }

private:
  bool seed(const Value *Key, const Value *Init) {
    uint64_t V = 0;
    if (!resolveConstant(Init, V))
      return false;
    Cur[Key] = V;
    return true;
  }

  static bool resolveConstant(const Value *V, uint64_t &Out) {
    if (const auto *CI = dyn_cast<ConstantInt>(V)) {
      Out = CI->getZExtValue();
      return true;
    }
    return false;
  }

  bool resolve(const Value *V, uint64_t &Out) const {
    if (resolveConstant(V, Out))
      return true;
    auto It = Cur.find(V);
    if (It == Cur.end())
      return false;
    Out = It->second;
    return true;
  }

  /// Evaluates the body's trackable instructions for one iteration.
  /// Returns false only on a simulated trap (the loop would trap at run
  /// time before ever reaching the exit compare deterministically).
  bool stepBody() {
    for (const auto &IPtr : *L.Body) {
      const Instruction *I = IPtr.get();
      if (isa<PHINode>(I) || I->isTerminator())
        continue;
      uint64_t Result = 0;
      if (!evalInst(I, Result)) {
        Cur.erase(I); // Untracked this iteration (and so every iteration).
        continue;
      }
      if (Trap.trapped())
        return false;
      Cur[I] = Result;
    }
    return true;
  }

  bool evalInst(const Instruction *I, uint64_t &Out) {
    const Type *Ty = I->getType();
    const auto *IntTy = dyn_cast<IntegerType>(Ty);
    switch (I->getOpcode()) {
    case ValueID::Add:
    case ValueID::Sub:
    case ValueID::Mul:
    case ValueID::UDiv:
    case ValueID::SDiv:
    case ValueID::URem:
    case ValueID::SRem:
    case ValueID::And:
    case ValueID::Or:
    case ValueID::Xor:
    case ValueID::Shl:
    case ValueID::LShr:
    case ValueID::AShr: {
      uint64_t A = 0, B = 0;
      if (!IntTy || !resolve(I->getOperand(0), A) ||
          !resolve(I->getOperand(1), B))
        return false;
      Out = laneops::evalIntBinLane(I->getOpcode(), IntTy->getBitWidth(), A,
                                    B, Trap);
      return true;
    }
    case ValueID::ICmp: {
      const auto *C = cast<ICmpInst>(I);
      const auto *OpTy = dyn_cast<IntegerType>(C->getLHS()->getType());
      uint64_t A = 0, B = 0;
      if (!OpTy || !resolve(C->getLHS(), A) || !resolve(C->getRHS(), B))
        return false;
      Out = laneops::evalICmp(C->getPredicate(),
                              laneops::ScalarKind::of(OpTy), A, B)
                ? 1
                : 0;
      return true;
    }
    case ValueID::Select: {
      const auto *S = cast<SelectInst>(I);
      if (!IntTy || S->getCondition()->getType()->isVectorTy())
        return false;
      uint64_t C = 0, T = 0, F = 0;
      if (!resolve(S->getCondition(), C) || !resolve(S->getTrueValue(), T) ||
          !resolve(S->getFalseValue(), F))
        return false;
      Out = laneops::evalSelectLane(C, T, F);
      return true;
    }
    case ValueID::SExt:
    case ValueID::ZExt:
    case ValueID::Trunc: {
      const auto *SrcTy =
          dyn_cast<IntegerType>(I->getOperand(0)->getType());
      uint64_t V = 0;
      if (!IntTy || !SrcTy || !resolve(I->getOperand(0), V))
        return false;
      Out = laneops::evalCastLane(I->getOpcode(),
                                  laneops::ScalarKind::of(SrcTy),
                                  laneops::ScalarKind::of(IntTy), V);
      return true;
    }
    default:
      return false; // Memory, FP, vector ops: untracked.
    }
  }

  /// Latches the next iteration's phi values from the current state.
  bool advancePhis() {
    std::vector<std::pair<const Value *, uint64_t>> Next;
    std::vector<const Value *> Dropped;
    for (PHINode *P : L.Phis) {
      uint64_t V = 0;
      if (Cur.count(P) &&
          resolve(P->getIncomingValueForBlock(L.Body), V))
        Next.emplace_back(P, V);
      else
        Dropped.push_back(P);
    }
    for (const auto &[P, V] : Next)
      Cur[P] = V;
    for (const Value *P : Dropped)
      Cur.erase(P);
    return true;
  }

  const LoopShape &L;
  std::map<const Value *, uint64_t> Cur;
  laneops::TrapSink Trap;
};

/// Largest factor <= \p Requested that divides \p TripCount (>= 1).
uint64_t pickFactor(uint64_t TripCount, uint64_t Requested) {
  uint64_t U = Requested < TripCount ? Requested : TripCount;
  while (U > 1 && TripCount % U != 0)
    --U;
  return U;
}

/// Replicates the body of \p L \p Factor times. The intermediate exit
/// tests are dropped: the trip count is a proven multiple of the factor,
/// so the exit can only fire on a replica boundary.
void unrollLoop(const LoopShape &L, uint64_t Factor) {
  BasicBlock *BB = L.Body;
  BranchInst *Latch = L.Latch;

  // Original body instructions (replica 0), in order.
  std::vector<Instruction *> Body;
  for (const auto &IPtr : *BB) {
    Instruction *I = IPtr.get();
    if (!isa<PHINode>(I) && !I->isTerminator())
      Body.push_back(I);
  }

  // Map from original value to its incarnation in the newest replica.
  std::map<const Value *, Value *> Map;
  auto Resolve = [&Map](Value *V) {
    auto It = Map.find(V);
    return It == Map.end() ? V : It->second;
  };

  for (uint64_t R = 1; R != Factor; ++R) {
    // The phi values seen by replica R are the recurrences computed by
    // replica R-1. Snapshot them before touching the map: one phi's
    // recurrence may be another phi.
    std::vector<std::pair<const Value *, Value *>> PhiVals;
    PhiVals.reserve(L.Phis.size());
    for (PHINode *P : L.Phis)
      PhiVals.emplace_back(P, Resolve(P->getIncomingValueForBlock(BB)));
    for (const auto &[P, V] : PhiVals)
      Map[P] = V;

    for (Instruction *I : Body) {
      Instruction *NI = cloneInstructionDetached(*I);
      for (unsigned Op = 0, E = NI->getNumOperands(); Op != E; ++Op)
        NI->setOperand(Op, Resolve(NI->getOperand(Op)));
      if (I->hasName())
        NI->setName(I->getName() + ".u" + std::to_string(R));
      BB->insertBefore(NI, Latch);
      Map[I] = NI;
    }
  }

  // Close the loop: the back-edge recurrences and the surviving exit test
  // read the last replica's values.
  for (PHINode *P : L.Phis)
    for (unsigned In = 0, E = P->getNumIncoming(); In != E; ++In)
      if (P->getIncomingBlock(In) == BB)
        P->setOperand(2 * In, Resolve(P->getIncomingValue(In)));
  Latch->setOperand(0, Resolve(Latch->getCondition()));

  // Uses outside the loop observe the final iteration, which is now the
  // last replica. (Phis resolve to the value current during that replica.)
  std::vector<Value *> Originals(Body.begin(), Body.end());
  Originals.insert(Originals.end(), L.Phis.begin(), L.Phis.end());
  for (Value *V : Originals) {
    Value *Last = Resolve(V);
    if (Last == V)
      continue;
    std::vector<Use> Uses = V->uses(); // Snapshot: setOperand mutates.
    for (const Use &U : Uses) {
      auto *UserI = dyn_cast<Instruction>(static_cast<Value *>(U.TheUser));
      if (UserI && UserI->getParent() != BB)
        UserI->setOperand(U.OperandNo, Last);
    }
  }

  // The intermediate replicas' exit compares (and anything else orphaned)
  // are dead now.
  removeTriviallyDeadInstructions(*BB);
}

} // namespace

unsigned lslp::runLoopUnroll(Function &F, unsigned Factor,
                             RemarkStreamer *Remarks) {
  if (Factor < 2)
    return 0;
  unsigned Unrolled = 0;
  // Snapshot the candidates first: unrolling edits only the loop body
  // block, so other candidates stay valid, but the block list itself must
  // not be iterated while remarks/statistics fire mid-edit.
  std::vector<BasicBlock *> Blocks;
  for (const auto &BB : F)
    Blocks.push_back(BB.get());
  for (BasicBlock *BB : Blocks) {
    LoopShape L;
    if (!matchLoop(BB, L))
      continue;
    uint64_t TripCount = 0;
    if (!TripCountSimulator(L).run(TripCount)) {
      ++NumLoopUnrollSkips;
      if (Remarks)
        Remarks->emit(
            remarkAt(RemarkKind::LoopUnrollSkipped, "loop-unroll", L.Latch)
                .arg("reason", "trip-count-unknown"));
      continue;
    }
    uint64_t U = pickFactor(TripCount, Factor);
    if (U < 2) {
      ++NumLoopUnrollSkips;
      if (Remarks)
        Remarks->emit(
            remarkAt(RemarkKind::LoopUnrollSkipped, "loop-unroll", L.Latch)
                .arg("reason", "no-dividing-factor")
                .arg("trip-count", TripCount));
      continue;
    }
    if (Remarks)
      Remarks->emit(remarkAt(RemarkKind::LoopUnrolled, "loop-unroll", L.Latch)
                        .arg("trip-count", TripCount)
                        .arg("factor", U));
    unrollLoop(L, U);
    ++NumLoopsUnrolled;
    ++Unrolled;
  }
  return Unrolled;
}

unsigned lslp::runLoopUnroll(Module &M, unsigned Factor,
                             RemarkStreamer *Remarks) {
  unsigned Unrolled = 0;
  for (const auto &F : M.functions())
    Unrolled += runLoopUnroll(*F, Factor, Remarks);
  return Unrolled;
}
