//===- transforms/IfConversion.h - Branch flattening ------------*- C++ -*-===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// If-conversion: collapses single-diamond and triangle CFG shapes into
/// straight-line code by speculating both arms into the branch block and
/// replacing the join phis with selects. SLP seeds only form inside one
/// basic block, so branchy kernels are invisible to the vectorizer until
/// this pass flattens them.
///
/// Legality is side-effect-safe hoisting only: an arm may contain nothing
/// but pure, non-trapping instructions. Stores, loads (the engines
/// bounds-check memory, so a speculated load can introduce a trap) and
/// divisions/remainders without a provably safe constant divisor make the
/// pass bail with an `if-conversion-skipped` remark naming the reason.
/// The pass iterates to a fixpoint, so nested diamonds collapse from the
/// inside out, and merges the join block into the branch block whenever it
/// becomes the single predecessor — that merge is what puts the new
/// selects and the join's stores into one block for the seed collector.
///
//===----------------------------------------------------------------------===//

#ifndef LSLP_TRANSFORMS_IFCONVERSION_H
#define LSLP_TRANSFORMS_IFCONVERSION_H

namespace lslp {

class Function;
class Module;
class RemarkStreamer;

/// Flattens diamonds/triangles in \p F until a fixpoint; returns the
/// number of conditional branches converted. When \p Remarks is non-null,
/// emits one if-converted remark per collapsed branch and one
/// if-conversion-skipped remark per candidate rejected on legality.
unsigned runIfConversion(Function &F, RemarkStreamer *Remarks = nullptr);

/// Runs if-conversion on every function of \p M.
unsigned runIfConversion(Module &M, RemarkStreamer *Remarks = nullptr);

} // namespace lslp

#endif // LSLP_TRANSFORMS_IFCONVERSION_H
