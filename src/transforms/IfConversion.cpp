//===- transforms/IfConversion.cpp - Branch flattening ------------------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "transforms/IfConversion.h"

#include "diag/IRRemarks.h"
#include "diag/RemarkEngine.h"
#include "diag/Statistics.h"
#include "ir/BasicBlock.h"
#include "ir/Constants.h"
#include "ir/Function.h"
#include "ir/Instruction.h"
#include "ir/Module.h"

#include <set>
#include <vector>

using namespace lslp;

LSLP_STATISTIC(NumIfConverted, "if-conversion",
               "Conditional branches flattened into selects");
LSLP_STATISTIC(NumIfConversionSkips, "if-conversion",
               "Candidates rejected on speculation legality");

namespace {

/// One matched candidate. For a diamond both arms are set; for a triangle
/// FalseArm (or TrueArm) is null and the corresponding path falls through
/// from the branch block to the join directly.
struct Candidate {
  BasicBlock *Head = nullptr;  ///< Block ending in the conditional branch.
  BasicBlock *TrueArm = nullptr;  ///< Successor 0's arm block, if any.
  BasicBlock *FalseArm = nullptr; ///< Successor 1's arm block, if any.
  BasicBlock *Join = nullptr;  ///< Common continuation.
  const char *shape() const { return TrueArm && FalseArm ? "diamond" : "triangle"; }
};

/// True if \p BB is a legal arm: single predecessor \p Head, unconditional
/// branch to exactly one successor.
bool isArmBlock(BasicBlock *BB, BasicBlock *Head) {
  std::vector<BasicBlock *> Preds = BB->predecessors();
  if (Preds.size() != 1 || Preds[0] != Head)
    return false;
  Instruction *Term = BB->getTerminator();
  auto *Br = Term ? dyn_cast<BranchInst>(Term) : nullptr;
  return Br && !Br->isConditional();
}

BasicBlock *armSuccessor(BasicBlock *Arm) {
  return cast<BranchInst>(Arm->getTerminator())->getSuccessor(0);
}

/// Matches \p BB as the head of a diamond or triangle. Returns false when
/// the shape does not fit (no remark: shape mismatch is the common case,
/// not a bailout).
bool matchCandidate(BasicBlock *BB, Candidate &C) {
  Instruction *Term = BB->getTerminator();
  auto *Br = Term ? dyn_cast<BranchInst>(Term) : nullptr;
  if (!Br || !Br->isConditional())
    return false;
  BasicBlock *S0 = Br->getSuccessor(0);
  BasicBlock *S1 = Br->getSuccessor(1);
  if (S0 == S1 || S0 == BB || S1 == BB)
    return false;
  C.Head = BB;
  bool Arm0 = isArmBlock(S0, BB);
  bool Arm1 = isArmBlock(S1, BB);
  // Diamond: both successors are arms converging on the same join.
  if (Arm0 && Arm1 && armSuccessor(S0) == armSuccessor(S1) &&
      armSuccessor(S0) != BB) {
    C.TrueArm = S0;
    C.FalseArm = S1;
    C.Join = armSuccessor(S0);
    return C.Join != S0 && C.Join != S1;
  }
  // Triangle: one successor is an arm that falls through to the other.
  if (Arm0 && armSuccessor(S0) == S1) {
    C.TrueArm = S0;
    C.Join = S1;
    return true;
  }
  if (Arm1 && armSuccessor(S1) == S0) {
    C.FalseArm = S1;
    C.Join = S0;
    return true;
  }
  return false;
}

/// Non-null when every non-terminator instruction of \p Arm may be
/// executed unconditionally; otherwise the rejection reason. The closed
/// reason vocabulary ("store-in-arm", "load-in-arm", "trapping-divide",
/// "phi-in-arm") is part of the remark contract documented in DESIGN.md.
const char *speculationBlocker(BasicBlock *Arm) {
  for (const auto &IPtr : *Arm) {
    const Instruction *I = IPtr.get();
    if (I->isTerminator())
      continue;
    switch (I->getOpcode()) {
    case ValueID::Store:
      return "store-in-arm";
    case ValueID::Load:
      // The engines bounds-check every access; hoisting a load past its
      // guarding branch can introduce a trap that never happened.
      return "load-in-arm";
    case ValueID::Phi:
      return "phi-in-arm";
    case ValueID::UDiv:
    case ValueID::SDiv:
    case ValueID::URem:
    case ValueID::SRem: {
      const auto *Divisor = dyn_cast<ConstantInt>(I->getOperand(1));
      if (!Divisor || Divisor->getZExtValue() == 0)
        return "trapping-divide";
      // Signed INT_MIN / -1 overflow-traps in LaneOps as well.
      bool Signed = I->getOpcode() == ValueID::SDiv ||
                    I->getOpcode() == ValueID::SRem;
      if (Signed && Divisor->getSExtValue() == -1)
        return "trapping-divide";
      break;
    }
    default:
      break; // Pure and non-trapping: arithmetic, icmp, select, gep, casts.
    }
  }
  return nullptr;
}

/// Non-null when a join phi is missing an incoming edge for one of the
/// candidate's predecessors (malformed or unexpected phi shape).
const char *phiBlocker(const Candidate &C) {
  BasicBlock *TruePred = C.TrueArm ? C.TrueArm : C.Head;
  BasicBlock *FalsePred = C.FalseArm ? C.FalseArm : C.Head;
  for (const auto &IPtr : *C.Join) {
    const auto *P = dyn_cast<PHINode>(IPtr.get());
    if (!P)
      break;
    if (!P->getIncomingValueForBlock(TruePred) ||
        !P->getIncomingValueForBlock(FalsePred))
      return "phi-shape";
  }
  return nullptr;
}

/// Moves every non-terminator instruction of \p Arm before \p Before,
/// preserving order. Returns how many moved.
unsigned hoistArm(BasicBlock *Arm, Instruction *Before) {
  unsigned Moved = 0;
  while (Arm->front() != Arm->getTerminator()) {
    Arm->front()->moveBefore(Before);
    ++Moved;
  }
  return Moved;
}

/// Erases \p Arm (reduced to its lone terminator) from \p F.
void eraseArm(Function &F, BasicBlock *Arm) {
  Arm->getTerminator()->eraseFromParent();
  F.eraseBlock(Arm);
}

/// Replaces any phi left with a single incoming edge by its value.
void simplifyTrivialPhis(BasicBlock *BB) {
  std::vector<PHINode *> Trivial;
  for (const auto &IPtr : *BB) {
    auto *P = dyn_cast<PHINode>(IPtr.get());
    if (!P)
      break; // Phis are grouped at the block head.
    if (P->getNumIncoming() == 1)
      Trivial.push_back(P);
  }
  for (PHINode *P : Trivial) {
    P->replaceAllUsesWith(P->getIncomingValue(0));
    P->eraseFromParent();
  }
}

/// Splices every instruction of \p Join onto the end of \p Head and
/// erases \p Join. \p Head's terminator (the branch to \p Join) must
/// already be gone.
void mergeBlocks(Function &F, BasicBlock *Head, BasicBlock *Join) {
  while (!Join->empty()) {
    std::unique_ptr<Instruction> I = Join->detach(Join->front());
    Head->append(I.release());
  }
  // Successor phis naming Join as an incoming block now name Head.
  Join->replaceAllUsesWith(Head);
  F.eraseBlock(Join);
}

/// Converts one matched, legality-checked candidate.
void convert(Function &F, const Candidate &C, RemarkStreamer *Remarks) {
  auto *Br = cast<BranchInst>(C.Head->getTerminator());
  Value *Cond = Br->getCondition();

  unsigned Hoisted = 0;
  if (C.TrueArm)
    Hoisted += hoistArm(C.TrueArm, Br);
  if (C.FalseArm)
    Hoisted += hoistArm(C.FalseArm, Br);

  // Rewrite each join phi: the two edges through/past the arms become one
  // edge from Head carrying a select on the branch condition.
  BasicBlock *TruePred = C.TrueArm ? C.TrueArm : C.Head;
  BasicBlock *FalsePred = C.FalseArm ? C.FalseArm : C.Head;
  std::vector<PHINode *> Phis;
  for (const auto &IPtr : *C.Join) {
    auto *P = dyn_cast<PHINode>(IPtr.get());
    if (!P)
      break;
    Phis.push_back(P);
  }
  unsigned Selects = 0;
  for (PHINode *P : Phis) {
    Value *TrueVal = P->getIncomingValueForBlock(TruePred);
    Value *FalseVal = P->getIncomingValueForBlock(FalsePred);
    Value *Merged = TrueVal;
    if (TrueVal != FalseVal) {
      std::string Name =
          P->hasName() ? P->getName() + ".sel" : std::string();
      Merged = C.Head->insertBefore(
          SelectInst::create(Cond, TrueVal, FalseVal, std::move(Name)), Br);
      ++Selects;
    }
    // Drop the arm edges and re-add one edge from Head.
    for (unsigned I = P->getNumIncoming(); I-- > 0;) {
      BasicBlock *In = P->getIncomingBlock(I);
      if (In == C.TrueArm || In == C.FalseArm || In == C.Head)
        P->removeIncoming(I);
    }
    P->addIncoming(Merged, C.Head);
  }

  if (Remarks)
    Remarks->emit(remarkAt(RemarkKind::IfConverted, "if-conversion", Br)
                      .arg("shape", C.shape())
                      .arg("hoisted", Hoisted)
                      .arg("selects", Selects));

  // Retarget Head straight at the join and drop the arms.
  BasicBlock *Join = C.Join;
  C.Head->insertBefore(BranchInst::create(Join), Br);
  Br->eraseFromParent();
  if (C.TrueArm)
    eraseArm(F, C.TrueArm);
  if (C.FalseArm)
    eraseArm(F, C.FalseArm);

  // With Head as the only predecessor left, fold the join into Head so
  // selects and consumers share one block (and outer diamonds can match
  // on the next fixpoint round).
  std::vector<BasicBlock *> JoinPreds = Join->predecessors();
  if (JoinPreds.size() == 1 && JoinPreds[0] == C.Head) {
    simplifyTrivialPhis(Join);
    C.Head->getTerminator()->eraseFromParent();
    mergeBlocks(F, C.Head, Join);
  }
}

} // namespace

unsigned lslp::runIfConversion(Function &F, RemarkStreamer *Remarks) {
  unsigned Converted = 0;
  // One skip remark per rejected branch, even across fixpoint rounds.
  std::set<const Instruction *> ReportedSkips;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (const auto &BB : F) {
      Candidate C;
      if (!matchCandidate(BB.get(), C))
        continue;
      const char *Blocker = nullptr;
      if (C.TrueArm)
        Blocker = speculationBlocker(C.TrueArm);
      if (!Blocker && C.FalseArm)
        Blocker = speculationBlocker(C.FalseArm);
      if (!Blocker)
        Blocker = phiBlocker(C);
      if (Blocker) {
        ++NumIfConversionSkips;
        Instruction *Br = BB->getTerminator();
        if (Remarks && ReportedSkips.insert(Br).second)
          Remarks->emit(
              remarkAt(RemarkKind::IfConversionSkipped, "if-conversion", Br)
                  .arg("shape", C.shape())
                  .arg("reason", Blocker));
        continue;
      }
      convert(F, C, Remarks);
      ++NumIfConverted;
      ++Converted;
      // The block list was edited mid-iteration: restart the scan.
      Changed = true;
      break;
    }
  }
  return Converted;
}

unsigned lslp::runIfConversion(Module &M, RemarkStreamer *Remarks) {
  unsigned Converted = 0;
  for (const auto &F : M.functions())
    Converted += runIfConversion(*F, Remarks);
  return Converted;
}
