//===- transforms/EarlyCSE.cpp - Block-local common subexpressions ------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "transforms/EarlyCSE.h"

#include "diag/IRRemarks.h"
#include "diag/RemarkEngine.h"
#include "diag/Statistics.h"
#include "ir/BasicBlock.h"
#include "ir/Function.h"
#include "ir/Instruction.h"
#include "ir/Module.h"

#include <cstdint>
#include <map>
#include <vector>

using namespace lslp;

LSLP_STATISTIC(NumCSERemoved, "early-cse", "Redundant instructions removed");

namespace {

/// Structural key of a CSE-able instruction. MemGeneration is only
/// meaningful for loads; Extra disambiguates predicates/element types/
/// masks.
struct CSEKey {
  ValueID Opcode;
  const Type *Ty;
  std::vector<const Value *> Operands;
  std::vector<int64_t> Extra;
  uint64_t MemGeneration = 0;

  bool operator<(const CSEKey &O) const {
    auto AsTuple = [](const CSEKey &K) {
      return std::tie(K.Opcode, K.Ty, K.Operands, K.Extra, K.MemGeneration);
    };
    return AsTuple(*this) < AsTuple(O);
  }
};

/// Builds the key for \p I; returns false for instructions that must not
/// be CSE'd (stores, control flow, phis).
bool makeKey(const Instruction *I, uint64_t MemGeneration, CSEKey &Key) {
  switch (I->getOpcode()) {
  case ValueID::Store:
  case ValueID::Br:
  case ValueID::Ret:
  case ValueID::Phi:
    return false;
  case ValueID::Load:
    Key.MemGeneration = MemGeneration;
    break;
  case ValueID::ICmp:
    Key.Extra.push_back(cast<ICmpInst>(I)->getPredicate());
    break;
  case ValueID::Gep:
    Key.Extra.push_back(reinterpret_cast<int64_t>(
        static_cast<const void *>(cast<GEPInst>(I)->getElementType())));
    break;
  case ValueID::ShuffleVector:
    for (int M : cast<ShuffleVectorInst>(I)->getMask())
      Key.Extra.push_back(M);
    break;
  default:
    break;
  }
  Key.Opcode = I->getOpcode();
  Key.Ty = I->getType();
  for (const Value *Op : I->operands())
    Key.Operands.push_back(Op);
  return true;
}

} // namespace

unsigned lslp::runEarlyCSE(BasicBlock &BB, RemarkStreamer *Remarks) {
  std::map<CSEKey, Instruction *> Available;
  std::vector<Instruction *> Dead;
  uint64_t MemGeneration = 0;

  for (const auto &IPtr : BB) {
    Instruction *I = IPtr.get();
    if (I->mayWriteToMemory()) {
      ++MemGeneration; // Conservatively kills all prior loads.
      continue;
    }
    CSEKey Key;
    if (!makeKey(I, MemGeneration, Key))
      continue;
    auto [It, Inserted] = Available.insert({std::move(Key), I});
    if (Inserted)
      continue;
    ++NumCSERemoved;
    if (Remarks)
      Remarks->emit(remarkAt(RemarkKind::CSEHit, "early-cse", I)
                        .arg("opcode", I->getOpcodeName())
                        .arg("kept-index", remarkInstIndex(It->second)));
    I->replaceAllUsesWith(It->second);
    Dead.push_back(I);
  }

  for (Instruction *I : Dead)
    I->eraseFromParent();
  return static_cast<unsigned>(Dead.size());
}

unsigned lslp::runEarlyCSE(Function &F, RemarkStreamer *Remarks) {
  unsigned Removed = 0;
  for (const auto &BB : F)
    Removed += runEarlyCSE(*BB, Remarks);
  return Removed;
}

unsigned lslp::runEarlyCSE(Module &M, RemarkStreamer *Remarks) {
  unsigned Removed = 0;
  for (const auto &F : M.functions())
    Removed += runEarlyCSE(*F, Remarks);
  return Removed;
}
