//===- kernels/SpecKernels.cpp - Table 2 kernel re-implementations -----------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// Re-implementations of the eight SPEC CPU2006 kernels of Table 2. The
// SPEC sources are proprietary; each kernel reproduces the computation the
// paper's kernel name describes (povray surface/intersection/quaternion
// math, milc SU(2) linear algebra) with the operation mix and the
// commutative-operand permutations that make the originals sensitive to
// LSLP. See DESIGN.md, "Substitutions".
//
//===----------------------------------------------------------------------===//

#include "kernels/KernelBuilder.h"
#include "kernels/KernelRegistry.h"

#include "ir/Context.h"

using namespace lslp;

namespace {

/// 453.boy-surface (povray fnintern.cpp:355): parametric Boy-surface
/// evaluation — per lane (X*Y + Z*W) * 0.5 with the product pairs written
/// in a different order in every lane.
void buildBoySurface(Module &M) {
  LoopKernelBuilder K(M, "boy_surface", /*Step=*/4);
  Type *F64 = K.getContext().getDoubleTy();
  GlobalArray *F = K.global("boy_F", F64);
  GlobalArray *X = K.global("boy_X", F64);
  GlobalArray *Y = K.global("boy_Y", F64);
  GlobalArray *Z = K.global("boy_Z", F64);
  GlobalArray *W = K.global("boy_W", F64);
  IRBuilder &IRB = K.irb();

  auto Mul = [&](GlobalArray *A, GlobalArray *B, int64_t Off) {
    return IRB.createFMul(K.load(A, Off), K.load(B, Off));
  };
  Value *Half = K.cFP(0.5);
  // Lane 0: (X*Y + Z*W) * 0.5
  K.store(F, 0,
          IRB.createFMul(IRB.createFAdd(Mul(X, Y, 0), Mul(Z, W, 0)), Half));
  // Lane 1: (Z*W + Y*X) * 0.5 — addend order and factor order permuted.
  K.store(F, 1,
          IRB.createFMul(IRB.createFAdd(Mul(Z, W, 1), Mul(Y, X, 1)), Half));
  // Lane 2: (X*Y + W*Z) * 0.5
  K.store(F, 2,
          IRB.createFMul(IRB.createFAdd(Mul(X, Y, 2), Mul(W, Z, 2)), Half));
  // Lane 3: (W*Z + X*Y) * 0.5
  K.store(F, 3,
          IRB.createFMul(IRB.createFAdd(Mul(W, Z, 3), Mul(X, Y, 3)), Half));
  K.finish();
}

/// 453.intersect-quadratic (povray poly.cpp:813): the discriminant-style
/// b*b - 4ac computation of the quadratic intersection test; the two
/// coefficient products appear commuted between the lanes.
void buildIntersectQuadratic(Module &M) {
  LoopKernelBuilder K(M, "intersect_quadratic", /*Step=*/2);
  Type *F64 = K.getContext().getDoubleTy();
  GlobalArray *D = K.global("iq_D", F64);
  GlobalArray *A = K.global("iq_A", F64);
  GlobalArray *B = K.global("iq_B", F64);
  GlobalArray *C = K.global("iq_C", F64);
  IRBuilder &IRB = K.irb();

  // Lane 0: B*B - (A*2)*(C*3)
  {
    Value *Bv = K.load(B, 0);
    Value *BB = IRB.createFMul(Bv, Bv);
    Value *AC = IRB.createFMul(IRB.createFMul(K.load(A, 0), K.cFP(2.0)),
                               IRB.createFMul(K.load(C, 0), K.cFP(3.0)));
    K.store(D, 0, IRB.createFSub(BB, AC));
  }
  // Lane 1: B*B - (C*3)*(A*2) — both factors of the outer product are
  // fmul, so only look-ahead can see the A/C loads behind them.
  {
    Value *Bv = K.load(B, 1);
    Value *BB = IRB.createFMul(Bv, Bv);
    Value *CA = IRB.createFMul(IRB.createFMul(K.load(C, 1), K.cFP(3.0)),
                               IRB.createFMul(K.load(A, 1), K.cFP(2.0)));
    K.store(D, 1, IRB.createFSub(BB, CA));
  }
  K.finish();
}

/// 453.calc-z3 (povray quatern.cpp:433): quaternion norm accumulation for
/// the z^3 iteration — each lane sums the four component squares, but the
/// source associates and orders the sums differently per component, so
/// only a multi-node over the fadd chain recovers the isomorphism.
void buildCalcZ3(Module &M) {
  LoopKernelBuilder K(M, "calc_z3", /*Step=*/1);
  Type *F64 = K.getContext().getDoubleTy();
  GlobalArray *R = K.global("z3_R", F64);
  GlobalArray *X = K.global("z3_X", F64);
  GlobalArray *Y = K.global("z3_Y", F64);
  GlobalArray *Z = K.global("z3_Z", F64);
  GlobalArray *W = K.global("z3_W", F64);
  IRBuilder &IRB = K.irb();

  auto Sq = [&](GlobalArray *A, int64_t Lane) {
    Value *V = K.load(A, 4, Lane);
    return IRB.createFMul(V, V);
  };
  // Lane 0: ((x2 + y2) + z2) + w2   (left chain)
  {
    Value *S = IRB.createFAdd(
        IRB.createFAdd(IRB.createFAdd(Sq(X, 0), Sq(Y, 0)), Sq(Z, 0)),
        Sq(W, 0));
    K.store(R, 4, 0, S);
  }
  // Lane 1: (w2 + z2) + (y2 + x2)   (balanced, reversed)
  {
    Value *S = IRB.createFAdd(IRB.createFAdd(Sq(W, 1), Sq(Z, 1)),
                              IRB.createFAdd(Sq(Y, 1), Sq(X, 1)));
    K.store(R, 4, 1, S);
  }
  // Lane 2: ((y2 + x2) + w2) + z2
  {
    Value *S = IRB.createFAdd(
        IRB.createFAdd(IRB.createFAdd(Sq(Y, 2), Sq(X, 2)), Sq(W, 2)),
        Sq(Z, 2));
    K.store(R, 4, 2, S);
  }
  // Lane 3: x2 + (y2 + (z2 + w2))   (right chain)
  {
    Value *S = IRB.createFAdd(
        Sq(X, 3),
        IRB.createFAdd(Sq(Y, 3), IRB.createFAdd(Sq(Z, 3), Sq(W, 3))));
    K.store(R, 4, 3, S);
  }
  K.finish();
}

/// 453.vsumsqr (povray vector.h:362): vector sum of squares; the two
/// squared terms alternate order between lanes.
void buildVSumSqr(Module &M) {
  LoopKernelBuilder K(M, "vsumsqr", /*Step=*/4);
  Type *F64 = K.getContext().getDoubleTy();
  GlobalArray *V = K.global("vs_V", F64);
  GlobalArray *X = K.global("vs_X", F64);
  GlobalArray *Y = K.global("vs_Y", F64);
  IRBuilder &IRB = K.irb();

  auto Sq = [&](GlobalArray *A, int64_t Off) {
    Value *L = K.load(A, Off);
    return IRB.createFMul(L, L);
  };
  K.store(V, 0, IRB.createFAdd(Sq(X, 0), Sq(Y, 0)));
  K.store(V, 1, IRB.createFAdd(Sq(Y, 1), Sq(X, 1)));
  K.store(V, 2, IRB.createFAdd(Sq(X, 2), Sq(Y, 2)));
  K.store(V, 3, IRB.createFAdd(Sq(Y, 3), Sq(X, 3)));
  K.finish();
}

/// 453.hreciprocal (povray hcmplx.cpp:113): hypercomplex reciprocal —
/// per-component division by a squared norm whose sum is associated
/// differently in the two lanes.
void buildHReciprocal(Module &M) {
  LoopKernelBuilder K(M, "hreciprocal", /*Step=*/1);
  Type *F64 = K.getContext().getDoubleTy();
  GlobalArray *R = K.global("hr_R", F64);
  GlobalArray *N = K.global("hr_N", F64);
  GlobalArray *X = K.global("hr_X", F64);
  IRBuilder &IRB = K.irb();

  auto Sq = [&](int64_t Off) {
    Value *L = K.load(X, 2, Off);
    return IRB.createFMul(L, L);
  };
  // Lane 0: N0 / ((x0^2 + x1^2) + 0.5)
  {
    Value *Den =
        IRB.createFAdd(IRB.createFAdd(Sq(0), Sq(1)), K.cFP(0.5));
    K.store(R, 2, 0, IRB.createFDiv(K.load(N, 2, 0), Den));
  }
  // Lane 1: N1 / ((0.5 + x1^2) + x0^2) — same denominator, re-associated.
  {
    Value *Den =
        IRB.createFAdd(IRB.createFAdd(K.cFP(0.5), Sq(1)), Sq(0));
    K.store(R, 2, 1, IRB.createFDiv(K.load(N, 2, 1), Den));
  }
  K.finish();
}

/// 453.mesh1 (povray fnintern.cpp:759): mesh normal update — already
/// isomorphic in every lane, so all configurations (including SLP-NR)
/// vectorize it; it calibrates the "no reordering needed" case.
void buildMesh1(Module &M) {
  LoopKernelBuilder K(M, "mesh1", /*Step=*/4);
  Type *F64 = K.getContext().getDoubleTy();
  GlobalArray *Mo = K.global("m1_M", F64);
  GlobalArray *P = K.global("m1_P", F64);
  GlobalArray *Q = K.global("m1_Q", F64);
  GlobalArray *R = K.global("m1_R", F64);
  IRBuilder &IRB = K.irb();

  for (int64_t Lane = 0; Lane != 4; ++Lane)
    K.store(Mo, Lane,
            IRB.createFMul(IRB.createFAdd(K.load(P, Lane), K.load(Q, Lane)),
                           K.load(R, Lane)));
  K.finish();
}

/// 433.mult-su2 (milc m_su2_mat_vec_a.c:23): SU(2) matrix-vector product
/// (real components) — two dot products whose factor order is swapped in
/// the second lane; one product also feeds a scalar side table (an
/// external use that costs an extract).
void buildMultSU2(Module &M) {
  LoopKernelBuilder K(M, "mult_su2", /*Step=*/1);
  Type *F64 = K.getContext().getDoubleTy();
  GlobalArray *B = K.global("su2_B", F64);
  GlobalArray *T = K.global("su2_T", F64);
  GlobalArray *A0 = K.global("su2_A0", F64);
  GlobalArray *A1 = K.global("su2_A1", F64);
  GlobalArray *X0 = K.global("su2_X0", F64);
  GlobalArray *X1 = K.global("su2_X1", F64);
  IRBuilder &IRB = K.irb();

  // Lane 0: B[2i] = A0*X0 + A1*X1; the first product is also kept in T.
  {
    Value *P0 = IRB.createFMul(K.load(A0, 2, 0), K.load(X0, 2, 0));
    Value *P1 = IRB.createFMul(K.load(A1, 2, 0), K.load(X1, 2, 0));
    K.store(T, 1, 0, P0); // External scalar use of the vectorized product.
    K.store(B, 2, 0, IRB.createFAdd(P0, P1));
  }
  // Lane 1: B[2i+1] = X0*A0 + A1*X1, factors of the first product swapped.
  {
    Value *P0 = IRB.createFMul(K.load(X0, 2, 1), K.load(A0, 2, 1));
    Value *P1 = IRB.createFMul(K.load(A1, 2, 1), K.load(X1, 2, 1));
    K.store(B, 2, 1, IRB.createFAdd(P0, P1));
  }
  K.finish();
}

/// 453.quartic-cylinder (povray fnintern.cpp:924): cubic polynomial
/// evaluation in Horner form — a serial dependence chain per lane,
/// identical across lanes, where vectorization saves little.
void buildQuarticCylinder(Module &M) {
  LoopKernelBuilder K(M, "quartic_cylinder", /*Step=*/4);
  Type *F64 = K.getContext().getDoubleTy();
  GlobalArray *Q = K.global("qc_Q", F64);
  GlobalArray *T = K.global("qc_T", F64);
  GlobalArray *C0 = K.global("qc_C0", F64);
  GlobalArray *C1 = K.global("qc_C1", F64);
  GlobalArray *C2 = K.global("qc_C2", F64);
  GlobalArray *C3 = K.global("qc_C3", F64);
  IRBuilder &IRB = K.irb();

  for (int64_t Lane = 0; Lane != 4; ++Lane) {
    Value *t = K.load(T, Lane);
    Value *Acc = K.load(C3, Lane);
    Acc = IRB.createFAdd(IRB.createFMul(Acc, t), K.load(C2, Lane));
    Acc = IRB.createFAdd(IRB.createFMul(Acc, t), K.load(C1, Lane));
    Acc = IRB.createFAdd(IRB.createFMul(Acc, t), K.load(C0, Lane));
    K.store(Q, Lane, Acc);
  }
  K.finish();
}

} // namespace

void lslp::registerSpecKernels(std::vector<KernelSpec> &Registry) {
  Registry.push_back(KernelSpec{
      "453.boy-surface", "SPEC2006 453.povray", "fnintern.cpp:355",
      "product pairs permuted per lane (look-ahead)", buildBoySurface,
      "boy_surface", 4000, {"boy_F"}, true});
  Registry.push_back(KernelSpec{
      "453.intersect-quadratic", "SPEC2006 453.povray", "poly.cpp:813",
      "coefficient products commuted behind same-opcode factors",
      buildIntersectQuadratic, "intersect_quadratic", 4000, {"iq_D"}, true});
  Registry.push_back(KernelSpec{
      "453.calc-z3", "SPEC2006 453.povray", "quatern.cpp:433",
      "component-square sums with per-lane associativity (multi-node)",
      buildCalcZ3, "calc_z3", 1000, {"z3_R"}, true});
  Registry.push_back(KernelSpec{
      "453.vsumsqr", "SPEC2006 453.povray", "vector.h:362",
      "sum of squares with alternating addend order", buildVSumSqr,
      "vsumsqr", 4000, {"vs_V"}, true});
  Registry.push_back(KernelSpec{
      "453.hreciprocal", "SPEC2006 453.povray", "hcmplx.cpp:113",
      "reciprocal by re-associated squared norm (multi-node + division)",
      buildHReciprocal, "hreciprocal", 2000, {"hr_R"}, true});
  Registry.push_back(KernelSpec{
      "453.mesh1", "SPEC2006 453.povray", "fnintern.cpp:759",
      "already-isomorphic lanes (reordering unnecessary)", buildMesh1,
      "mesh1", 4000, {"m1_M"}, true});
  Registry.push_back(KernelSpec{
      "433.mult-su2", "SPEC2006 433.milc", "m_su2_mat_vec_a.c:23",
      "dot products with swapped factors and an external scalar use",
      buildMultSU2, "mult_su2", 2000, {"su2_B", "su2_T"}, true});
  Registry.push_back(KernelSpec{
      "453.quartic-cylinder", "SPEC2006 453.povray", "fnintern.cpp:924",
      "Horner chains: serial dependences limit vector benefit",
      buildQuarticCylinder, "quartic_cylinder", 4000, {"qc_Q"}, true});
}
