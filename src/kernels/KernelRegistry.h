//===- kernels/KernelRegistry.h - Registry assembly (private) ---*- C++ -*-===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Internal header: the per-file registration hooks the registry
/// translation unit calls to assemble the kernel list.
///
//===----------------------------------------------------------------------===//

#ifndef LSLP_KERNELS_KERNELREGISTRY_H
#define LSLP_KERNELS_KERNELREGISTRY_H

#include "kernels/Kernels.h"

#include <vector>

namespace lslp {

void registerMotivationKernels(std::vector<KernelSpec> &Registry);
void registerSpecKernels(std::vector<KernelSpec> &Registry);
void registerSuiteKernels(std::vector<KernelSpec> &Registry);

} // namespace lslp

#endif // LSLP_KERNELS_KERNELREGISTRY_H
