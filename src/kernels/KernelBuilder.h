//===- kernels/KernelBuilder.h - Loop-kernel construction -------*- C++ -*-===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helper for expressing the evaluation kernels: builds the canonical
/// counted-loop skeleton
///
///   define void @name(i64 %n) {
///   entry:  br label %loop
///   loop:   %i = phi ...; <body>; %i.next = add %i, Step;
///           br (i.next < n) loop, exit
///   exit:   ret void
///   }
///
/// and provides array-element access helpers with affine indices
/// (Scale * i + Offset), CSE-ing repeated index computations so the
/// emitted IR looks like what a -O3 frontend would produce.
///
//===----------------------------------------------------------------------===//

#ifndef LSLP_KERNELS_KERNELBUILDER_H
#define LSLP_KERNELS_KERNELBUILDER_H

#include "ir/IRBuilder.h"
#include "ir/Module.h"

#include <map>
#include <string>

namespace lslp {

/// Builds one loop kernel function inside a module.
class LoopKernelBuilder {
public:
  /// Default number of elements in kernel global arrays.
  static constexpr uint64_t ArraySize = 4096;

  /// Starts `define void @FnName(i64 %n)` with induction step \p Step.
  LoopKernelBuilder(Module &M, const std::string &FnName, int64_t Step);

  Module &getModule() { return M; }
  Context &getContext() { return M.getContext(); }
  IRBuilder &irb() { return Builder; }

  /// The i64 induction variable.
  Value *iv() const { return IndVar; }

  /// Returns (creating on first use) the global array \p Name of
  /// \p ElemTy.
  GlobalArray *global(const std::string &Name, Type *ElemTy,
                      uint64_t NumElems = ArraySize);

  /// The index value Scale * i + Offset (i64), CSE'd per (Scale, Offset).
  Value *index(int64_t Scale, int64_t Offset);

  /// Loads G[Scale*i + Offset].
  Value *load(GlobalArray *G, int64_t Scale, int64_t Offset);
  /// Loads G[i + Offset].
  Value *load(GlobalArray *G, int64_t Offset) { return load(G, 1, Offset); }

  /// Stores V into G[Scale*i + Offset].
  void store(GlobalArray *G, int64_t Scale, int64_t Offset, Value *V);
  /// Stores V into G[i + Offset].
  void store(GlobalArray *G, int64_t Offset, Value *V) {
    store(G, 1, Offset, V);
  }

  /// Shorthand constants.
  Value *cInt(int64_t V) { return getContext().getInt64(uint64_t(V)); }
  Value *cFP(double V) {
    return getContext().getConstantFP(getContext().getDoubleTy(), V);
  }

  /// Closes the loop (emits the increment, compare and branches) and
  /// returns the finished function.
  Function *finish();

private:
  Module &M;
  IRBuilder Builder;
  Function *F = nullptr;
  BasicBlock *Entry = nullptr;
  BasicBlock *Loop = nullptr;
  BasicBlock *Exit = nullptr;
  PHINode *IndVar = nullptr;
  int64_t Step;
  std::map<std::pair<int64_t, int64_t>, Value *> IndexCache;
  bool Finished = false;
};

} // namespace lslp

#endif // LSLP_KERNELS_KERNELBUILDER_H
