//===- kernels/KernelBuilder.cpp - Loop-kernel construction ------------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "kernels/KernelBuilder.h"

#include "ir/Context.h"

using namespace lslp;

LoopKernelBuilder::LoopKernelBuilder(Module &M, const std::string &FnName,
                                     int64_t Step)
    : M(M), Builder(M.getContext()), Step(Step) {
  Context &Ctx = M.getContext();
  F = Function::create(&M, FnName, Ctx.getVoidTy(), {Ctx.getInt64Ty()},
                       {"n"});
  Entry = BasicBlock::create(Ctx, "entry", F);
  Loop = BasicBlock::create(Ctx, "loop", F);
  Exit = BasicBlock::create(Ctx, "exit", F);

  Builder.setInsertPoint(Entry);
  Builder.createBr(Loop);

  Builder.setInsertPoint(Loop);
  IndVar = Builder.createPHI(Ctx.getInt64Ty(), "i");
  IndVar->addIncoming(Ctx.getInt64(0), Entry);
  IndexCache[{1, 0}] = IndVar;
}

GlobalArray *LoopKernelBuilder::global(const std::string &Name, Type *ElemTy,
                                       uint64_t NumElems) {
  if (GlobalArray *G = M.getGlobal(Name)) {
    assert(G->getElementType() == ElemTy && "global re-declared differently");
    return G;
  }
  return M.createGlobal(Name, ElemTy, NumElems);
}

Value *LoopKernelBuilder::index(int64_t Scale, int64_t Offset) {
  auto It = IndexCache.find({Scale, Offset});
  if (It != IndexCache.end())
    return It->second;
  Value *Idx = IndVar;
  if (Scale != 1) {
    // CSE the scaled base too, so e.g. 2*i+0 and 2*i+1 share the multiply.
    auto BaseIt = IndexCache.find({Scale, 0});
    if (BaseIt != IndexCache.end())
      Idx = BaseIt->second;
    else {
      Idx = Builder.createMul(IndVar, cInt(Scale));
      IndexCache[{Scale, 0}] = Idx;
    }
  }
  if (Offset != 0)
    Idx = Builder.createAdd(Idx, cInt(Offset));
  IndexCache[{Scale, Offset}] = Idx;
  return Idx;
}

Value *LoopKernelBuilder::load(GlobalArray *G, int64_t Scale, int64_t Offset) {
  Value *Ptr = Builder.createGEP(G->getElementType(), G, index(Scale, Offset));
  return Builder.createLoad(G->getElementType(), Ptr);
}

void LoopKernelBuilder::store(GlobalArray *G, int64_t Scale, int64_t Offset,
                              Value *V) {
  Value *Ptr = Builder.createGEP(G->getElementType(), G, index(Scale, Offset));
  Builder.createStore(V, Ptr);
}

Function *LoopKernelBuilder::finish() {
  assert(!Finished && "finish() called twice");
  Finished = true;
  Context &Ctx = M.getContext();
  Value *Next = Builder.createAdd(IndVar, cInt(Step), "i.next");
  IndVar->addIncoming(Next, Loop);
  Value *Cond = Builder.createICmp(ICmpInst::SLT, Next, F->getArg(0));
  Builder.createCondBr(Cond, Loop, Exit);
  Builder.setInsertPoint(Exit);
  Builder.createRet();
  (void)Ctx;
  return F;
}
