//===- kernels/KernelRegistry.cpp - Registry, suites, init, checksums --------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "kernels/KernelRegistry.h"

#include "interp/RuntimeValue.h"
#include "ir/Context.h"
#include "ir/Module.h"
#include "support/Debug.h"
#include "vm/ExecutionEngine.h"
#include "vm/MemoryInit.h"

using namespace lslp;

const std::vector<KernelSpec> &lslp::getAllKernels() {
  static const std::vector<KernelSpec> Registry = [] {
    std::vector<KernelSpec> R;
    registerSpecKernels(R);
    registerMotivationKernels(R);
    registerSuiteKernels(R);
    return R;
  }();
  return Registry;
}

std::vector<const KernelSpec *> lslp::getFigureKernels() {
  std::vector<const KernelSpec *> Result;
  for (const KernelSpec &K : getAllKernels())
    if (K.InKernelFigures)
      Result.push_back(&K);
  return Result;
}

const KernelSpec *lslp::findKernel(const std::string &Name) {
  for (const KernelSpec &K : getAllKernels())
    if (K.Name == Name)
      return &K;
  return nullptr;
}

std::unique_ptr<Module> lslp::buildKernelModule(const KernelSpec &Spec,
                                                Context &Ctx) {
  auto M = std::make_unique<Module>(Ctx, Spec.Name);
  Spec.Build(*M);
  return M;
}

const std::vector<SuiteSpec> &lslp::getSuites() {
  // Weights model how hot each region is inside the full benchmark: the
  // scalar fillers dominate, diluting kernel-level gains to the
  // few-percent whole-program effects of Figure 12.
  static const std::vector<SuiteSpec> Suites = {
      {"453.povray",
       {"453.boy-surface", "453.intersect-quadratic", "453.calc-z3",
        "453.vsumsqr", "453.hreciprocal", "453.mesh1",
        "453.quartic-cylinder", "povray-dot", "filler-reduce",
        "filler-branchy", "filler-stride"},
       {1, 1, 1, 1, 1, 1, 1, 1, 12, 12, 12}},
      {"435.gromacs",
       {"gromacs-lj", "filler-reduce", "filler-branchy", "filler-stride"},
       {2, 10, 10, 10}},
      {"454.calculix",
       {"calculix-stiff", "calculix-pack", "filler-reduce",
        "filler-branchy", "filler-stride"},
       {1, 1, 12, 12, 12}},
      {"481.wrf",
       {"wrf-stencil", "stream-add", "filler-reduce", "filler-branchy",
        "filler-stride"},
       {1, 1, 12, 12, 12}},
      {"433.milc",
       {"433.mult-su2", "mult-su2-complex", "filler-reduce",
        "filler-branchy", "filler-stride"},
       {2, 2, 10, 10, 10}},
      {"410.bwaves",
       {"bwaves-flux", "stream-add", "filler-reduce", "filler-branchy",
        "filler-stride"},
       {1, 1, 12, 12, 12}},
      {"416.gamess",
       {"gamess-eri", "stream-add", "filler-reduce", "filler-branchy",
        "filler-stride"},
       {1, 1, 16, 16, 16}},
  };
  return Suites;
}

std::unique_ptr<Module> lslp::buildSuiteModule(const SuiteSpec &Suite,
                                               Context &Ctx) {
  auto M = std::make_unique<Module>(Ctx, Suite.Name);
  for (const std::string &Member : Suite.Members) {
    const KernelSpec *K = findKernel(Member);
    if (!K)
      reportFatalError("unknown suite member kernel '" + Member + "'");
    // Members may share fillers across suites; globals/functions are
    // name-prefixed per kernel, so building twice would collide — skip
    // already-present members.
    if (!M->getFunction(K->EntryFunction))
      K->Build(*M);
  }
  return M;
}

void lslp::initKernelMemory(ExecutionEngine &E, const Module &M,
                            uint64_t Seed) {
  initGlobalMemory(E, M, Seed, MemoryInitStyle::KernelRanges);
}

uint64_t lslp::checksumGlobal(const ExecutionEngine &Eng, const Module &M,
                              const std::string &GlobalName) {
  const GlobalArray *G = M.getGlobal(GlobalName);
  if (!G)
    reportFatalError("checksum of unknown global '" + GlobalName + "'");
  uint64_t Hash = 0xcbf29ce484222325ULL; // FNV-1a over raw element bits.
  for (uint64_t I = 0, E = G->getNumElements(); I != E; ++I) {
    uint64_t Bits;
    if (G->getElementType()->isFloatingPointTy()) {
      double D = Eng.readGlobalFP(GlobalName, I);
      Bits = RuntimeValue::encodeFP(G->getElementType(), D);
    } else {
      Bits = Eng.readGlobalInt(GlobalName, I);
    }
    for (int B = 0; B < 8; ++B) {
      Hash ^= (Bits >> (8 * B)) & 0xFF;
      Hash *= 0x100000001b3ULL;
    }
  }
  return Hash;
}

uint64_t lslp::checksumGlobals(const ExecutionEngine &E, const Module &M,
                               const std::vector<std::string> &Names) {
  uint64_t Hash = 0;
  for (const std::string &Name : Names)
    Hash = Hash * 0x9e3779b97f4a7c15ULL + checksumGlobal(E, M, Name);
  return Hash;
}
