//===- kernels/MotivationKernels.cpp - Paper §3 motivating examples ----------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// The three motivating examples of the paper (Figures 2, 3 and 4), each
// wrapped in a counted loop so the interpreter can measure execution. The
// loop bodies are byte-for-byte the source statements shown in the paper.
//
//===----------------------------------------------------------------------===//

#include "kernels/KernelBuilder.h"
#include "kernels/KernelRegistry.h"

#include "ir/Context.h"

using namespace lslp;

namespace {

/// Figure 2: load address mismatch.
///   A[i+0] = (B[i+0]<<1) & (C[i+0]<<2);
///   A[i+1] = (C[i+1]<<3) & (B[i+1]<<4);
void buildMotivationLoads(Module &M) {
  LoopKernelBuilder K(M, "motivation_loads", /*Step=*/2);
  Type *I64 = K.getContext().getInt64Ty();
  GlobalArray *A = K.global("ml_A", I64);
  GlobalArray *B = K.global("ml_B", I64);
  GlobalArray *C = K.global("ml_C", I64);
  IRBuilder &IRB = K.irb();

  // Lane 0.
  Value *Sh0L = IRB.createShl(K.load(B, 0), K.cInt(1));
  Value *Sh0R = IRB.createShl(K.load(C, 0), K.cInt(2));
  K.store(A, 0, IRB.createAnd(Sh0L, Sh0R));
  // Lane 1: B and C swapped relative to lane 0 — both operands of '&' are
  // shifts, so vanilla SLP's opcode-only reordering cannot fix the load
  // addresses one level up.
  Value *Sh1L = IRB.createShl(K.load(C, 1), K.cInt(3));
  Value *Sh1R = IRB.createShl(K.load(B, 1), K.cInt(4));
  K.store(A, 1, IRB.createAnd(Sh1L, Sh1R));
  K.finish();
}

/// Figure 3: opcode mismatch hidden one level up.
///   A[i+0] = ((B[2i]<<1)&0x11) + ((C[2i]+2)&0x12);
///   A[i+1] = ((D[2i]+3)&0x13) + ((E[2i]<<4)&0x14);
void buildMotivationOpcodes(Module &M) {
  LoopKernelBuilder K(M, "motivation_opcodes", /*Step=*/2);
  Type *I64 = K.getContext().getInt64Ty();
  GlobalArray *A = K.global("mo_A", I64);
  GlobalArray *B = K.global("mo_B", I64);
  GlobalArray *C = K.global("mo_C", I64);
  GlobalArray *D = K.global("mo_D", I64);
  GlobalArray *E = K.global("mo_E", I64);
  IRBuilder &IRB = K.irb();

  // Lane 0: (shl & const) + (add & const).
  Value *L0L = IRB.createAnd(IRB.createShl(K.load(B, 2, 0), K.cInt(1)),
                             K.cInt(0x11));
  Value *L0R = IRB.createAnd(IRB.createAdd(K.load(C, 2, 0), K.cInt(2)),
                             K.cInt(0x12));
  K.store(A, 0, IRB.createAdd(L0L, L0R));
  // Lane 1: (add & const) + (shl & const) — the '&' nodes match, the
  // shl/add mismatch is only visible one level beyond them.
  Value *L1L = IRB.createAnd(IRB.createAdd(K.load(D, 2, 0), K.cInt(3)),
                             K.cInt(0x13));
  Value *L1R = IRB.createAnd(IRB.createShl(K.load(E, 2, 0), K.cInt(4)),
                             K.cInt(0x14));
  K.store(A, 1, IRB.createAdd(L1L, L1R));
  K.finish();
}

/// Figure 4: associativity mismatch requiring multi-nodes.
///   A[i+0] = A[i+0] & (B[i+0]+C[i+0]) & (D[i+0]+E[i+0]);
///   A[i+1] = (D[i+1]+E[i+1]) & (B[i+1]+C[i+1]) & A[i+1];
void buildMotivationMulti(Module &M) {
  LoopKernelBuilder K(M, "motivation_multi", /*Step=*/2);
  Type *I64 = K.getContext().getInt64Ty();
  GlobalArray *A = K.global("mm_A", I64);
  GlobalArray *B = K.global("mm_B", I64);
  GlobalArray *C = K.global("mm_C", I64);
  GlobalArray *D = K.global("mm_D", I64);
  GlobalArray *E = K.global("mm_E", I64);
  IRBuilder &IRB = K.irb();

  // Lane 0: (A & (B+C)) & (D+E), left-associated.
  Value *BC0 = IRB.createAdd(K.load(B, 0), K.load(C, 0));
  Value *DE0 = IRB.createAdd(K.load(D, 0), K.load(E, 0));
  Value *And0 = IRB.createAnd(IRB.createAnd(K.load(A, 0), BC0), DE0);
  K.store(A, 0, And0);
  // Lane 1: ((D+E) & (B+C)) & A — same operations, different evaluation
  // order; only a multi-node over the '&' chain exposes the isomorphism.
  Value *DE1 = IRB.createAdd(K.load(D, 1), K.load(E, 1));
  Value *BC1 = IRB.createAdd(K.load(B, 1), K.load(C, 1));
  Value *And1 = IRB.createAnd(IRB.createAnd(DE1, BC1), K.load(A, 1));
  K.store(A, 1, And1);
  K.finish();
}

} // namespace

void lslp::registerMotivationKernels(std::vector<KernelSpec> &Registry) {
  Registry.push_back(KernelSpec{
      "motivation-loads", "Section 3.1", "Figure 2",
      "load address mismatch fixed by look-ahead reordering",
      buildMotivationLoads, "motivation_loads", 4000, {"ml_A"}, true});
  Registry.push_back(KernelSpec{
      "motivation-opcodes", "Section 3.2", "Figure 3",
      "opcode mismatch one level beyond the commutative group",
      buildMotivationOpcodes, "motivation_opcodes", 2000, {"mo_A"}, true});
  Registry.push_back(KernelSpec{
      "motivation-multi", "Section 3.3", "Figure 4",
      "associativity mismatch requiring multi-node formation",
      buildMotivationMulti, "motivation_multi", 4000, {"mm_A"}, true});
}
