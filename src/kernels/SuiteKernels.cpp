//===- kernels/SuiteKernels.cpp - Whole-benchmark suite members --------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// Kernels that only appear inside the Figure 11/12 whole-benchmark suites
// (435.gromacs, 454.calculix, 481.wrf, 410.bwaves, 416.gamess), plus the
// scalar filler functions that model the non-vectorizable bulk of a real
// benchmark and dilute kernel-level gains to whole-program scale.
//
//===----------------------------------------------------------------------===//

#include "kernels/KernelBuilder.h"
#include "kernels/KernelRegistry.h"

#include "ir/Context.h"

using namespace lslp;

namespace {

/// 435.gromacs flavor: Lennard-Jones force pair with the r^-12/r^-6
/// factors commuted between lanes (look-ahead sensitive).
void buildGromacsLJ(Module &M) {
  LoopKernelBuilder K(M, "gromacs_lj", /*Step=*/2);
  Type *F64 = K.getContext().getDoubleTy();
  GlobalArray *F = K.global("lj_F", F64);
  GlobalArray *R6 = K.global("lj_R6", F64);
  GlobalArray *R12 = K.global("lj_R12", F64);
  GlobalArray *E = K.global("lj_E", F64);
  IRBuilder &IRB = K.irb();

  // Lane 0: F = (R12*4) * (E*2) - R6
  Value *P0 = IRB.createFMul(IRB.createFMul(K.load(R12, 0), K.cFP(4.0)),
                             IRB.createFMul(K.load(E, 0), K.cFP(2.0)));
  K.store(F, 0, IRB.createFSub(P0, K.load(R6, 0)));
  // Lane 1: factors swapped behind the same-opcode outer product.
  Value *P1 = IRB.createFMul(IRB.createFMul(K.load(E, 1), K.cFP(2.0)),
                             IRB.createFMul(K.load(R12, 1), K.cFP(4.0)));
  K.store(F, 1, IRB.createFSub(P1, K.load(R6, 1)));
  K.finish();
}

/// 454.calculix flavor: stiffness-matrix style accumulate, isomorphic in
/// every lane (vectorizes under every configuration).
void buildCalculixStiff(Module &M) {
  LoopKernelBuilder K(M, "calculix_stiff", /*Step=*/4);
  Type *F64 = K.getContext().getDoubleTy();
  GlobalArray *Km = K.global("cx_K", F64);
  GlobalArray *A = K.global("cx_A", F64);
  GlobalArray *B = K.global("cx_B", F64);
  IRBuilder &IRB = K.irb();
  for (int64_t Lane = 0; Lane != 4; ++Lane)
    K.store(Km, Lane,
            IRB.createFAdd(IRB.createFMul(K.load(A, Lane), K.load(B, Lane)),
                           K.load(Km, Lane)));
  K.finish();
}

/// 454.calculix flavor: index/weight widening — i32 data sign-extended to
/// i64 before the arithmetic (the cast groups must vectorize along with
/// the rest).
void buildCalculixPack(Module &M) {
  LoopKernelBuilder K(M, "calculix_pack", /*Step=*/4);
  Context &Ctx = K.getContext();
  Type *I32 = Ctx.getInt32Ty();
  Type *I64 = Ctx.getInt64Ty();
  GlobalArray *Out = K.global("cp_O", I64);
  GlobalArray *W = K.global("cp_W", I32);
  GlobalArray *V = K.global("cp_V", I64);
  IRBuilder &IRB = K.irb();
  for (int64_t Lane = 0; Lane != 4; ++Lane) {
    Value *Wide = IRB.createSExt(K.load(W, Lane), I64);
    K.store(Out, Lane, IRB.createAdd(IRB.createMul(Wide, K.cInt(3)),
                                     K.load(V, Lane)));
  }
  K.finish();
}

/// 481.wrf flavor: stencil update whose addend order flips between lanes;
/// plain SLP reordering (load-consecutiveness) already fixes it, so this
/// member separates SLP from SLP-NR.
void buildWrfStencil(Module &M) {
  LoopKernelBuilder K(M, "wrf_stencil", /*Step=*/2);
  Type *F64 = K.getContext().getDoubleTy();
  GlobalArray *W = K.global("wrf_W", F64);
  GlobalArray *U = K.global("wrf_U", F64);
  GlobalArray *V = K.global("wrf_V", F64);
  IRBuilder &IRB = K.irb();
  K.store(W, 0, IRB.createFAdd(K.load(U, 0), K.load(V, 0)));
  K.store(W, 1, IRB.createFAdd(K.load(V, 1), K.load(U, 1)));
  K.finish();
}

/// 410.bwaves flavor: flux update with the commuted factors hidden behind
/// same-opcode products (only look-ahead recovers it).
void buildBwavesFlux(Module &M) {
  LoopKernelBuilder K(M, "bwaves_flux", /*Step=*/2);
  Type *F64 = K.getContext().getDoubleTy();
  GlobalArray *Fx = K.global("bw_F", F64);
  GlobalArray *Q = K.global("bw_Q", F64);
  GlobalArray *Ru = K.global("bw_R", F64);
  IRBuilder &IRB = K.irb();
  // Lane 0: (Q*0.25) * (R*1.5)
  K.store(Fx, 0,
          IRB.createFMul(IRB.createFMul(K.load(Q, 0), K.cFP(0.25)),
                         IRB.createFMul(K.load(Ru, 0), K.cFP(1.5))));
  // Lane 1: (R*1.5) * (Q*0.25)
  K.store(Fx, 1,
          IRB.createFMul(IRB.createFMul(K.load(Ru, 1), K.cFP(1.5)),
                         IRB.createFMul(K.load(Q, 1), K.cFP(0.25))));
  K.finish();
}

/// 416.gamess flavor: integral-style lanes with genuinely different
/// operations — not vectorizable under any configuration.
void buildGamessEri(Module &M) {
  LoopKernelBuilder K(M, "gamess_eri", /*Step=*/2);
  Type *F64 = K.getContext().getDoubleTy();
  GlobalArray *G = K.global("gm_G", F64);
  GlobalArray *S = K.global("gm_S", F64);
  GlobalArray *T = K.global("gm_T", F64);
  IRBuilder &IRB = K.irb();
  K.store(G, 0, IRB.createFAdd(K.load(S, 0), K.load(T, 0)));
  K.store(G, 1, IRB.createFDiv(K.load(S, 1), K.load(T, 1)));
  K.finish();
}

/// A 4-term dot product (povray's VDot over two quads) reduced through a
/// balanced fadd tree. One store per iteration, so only the
/// horizontal-reduction seeder (paper §2.2's second seed class) can
/// vectorize it.
void buildPovrayDot(Module &M) {
  LoopKernelBuilder K(M, "povray_dot", /*Step=*/1);
  Type *F64 = K.getContext().getDoubleTy();
  GlobalArray *S = K.global("dot_S", F64);
  GlobalArray *X = K.global("dot_X", F64);
  GlobalArray *Y = K.global("dot_Y", F64);
  IRBuilder &IRB = K.irb();

  auto Term = [&](int64_t Lane) {
    return IRB.createFMul(K.load(X, 4, Lane), K.load(Y, 4, Lane));
  };
  Value *Sum = IRB.createFAdd(IRB.createFAdd(Term(0), Term(1)),
                              IRB.createFAdd(Term(2), Term(3)));
  K.store(S, 1, 0, Sum);
  K.finish();
}

/// The authentic complex form of milc's SU(2) matrix-vector product:
/// both components of b = a * x for a 2x2 complex matrix. Real and
/// imaginary lanes mix fsub/fadd, so this kernel vectorizes only through
/// the alternate-opcode extension (vaddsubpd pattern). The matrix is laid
/// out column-major (a00,a10,a01,a11 interleaved re/im) so the
/// coefficient loads of each product group are consecutive.
void buildMultSU2Complex(Module &M) {
  LoopKernelBuilder K(M, "mult_su2_complex", /*Step=*/1);
  Type *F64 = K.getContext().getDoubleTy();
  GlobalArray *B = K.global("su2c_B", F64);
  GlobalArray *A = K.global("su2c_A", F64);
  GlobalArray *X = K.global("su2c_X", F64);
  IRBuilder &IRB = K.irb();

  // Shared vector-operand loads (x is reused by every lane, as after GVN).
  Value *X0r = K.load(X, 4, 0), *X0i = K.load(X, 4, 1);
  Value *X1r = K.load(X, 4, 2), *X1i = K.load(X, 4, 3);
  // Matrix entries, loaded once each: column-major complex layout.
  Value *A00r = K.load(A, 8, 0), *A00i = K.load(A, 8, 1);
  Value *A10r = K.load(A, 8, 2), *A10i = K.load(A, 8, 3);
  Value *A01r = K.load(A, 8, 4), *A01i = K.load(A, 8, 5);
  Value *A11r = K.load(A, 8, 6), *A11i = K.load(A, 8, 7);

  // b0 = a00*x0 + a01*x1 ; b1 = a10*x0 + a11*x1 (complex).
  auto Re = [&](Value *Ar, Value *Ai, Value *Xr, Value *Xi) {
    return IRB.createFSub(IRB.createFMul(Ar, Xr), IRB.createFMul(Ai, Xi));
  };
  auto Im = [&](Value *Ar, Value *Ai, Value *Xr, Value *Xi) {
    // Written i-term first so the coefficient loads pair consecutively
    // with the real lane's (a?r then a?i).
    return IRB.createFAdd(IRB.createFMul(Ai, Xr), IRB.createFMul(Ar, Xi));
  };
  Value *B0r = IRB.createFAdd(Re(A00r, A00i, X0r, X0i),
                              Re(A01r, A01i, X1r, X1i));
  Value *B0i = IRB.createFAdd(Im(A00r, A00i, X0r, X0i),
                              Im(A01r, A01i, X1r, X1i));
  Value *B1r = IRB.createFAdd(Re(A10r, A10i, X0r, X0i),
                              Re(A11r, A11i, X1r, X1i));
  Value *B1i = IRB.createFAdd(Im(A10r, A10i, X0r, X0i),
                              Im(A11r, A11i, X1r, X1i));
  K.store(B, 4, 0, B0r);
  K.store(B, 4, 1, B0i);
  K.store(B, 4, 2, B1r);
  K.store(B, 4, 3, B1i);
  K.finish();
}

/// Baseline member for several suites: a plain two-lane streaming add,
/// isomorphic in both lanes, which every configuration (including SLP-NR)
/// vectorizes. Gives each suite a nonzero vanilla-SLP static-cost
/// baseline, like the hot vectorizable regions every real benchmark has.
void buildStreamAdd(Module &M) {
  LoopKernelBuilder K(M, "stream_add", /*Step=*/2);
  Type *F64 = K.getContext().getDoubleTy();
  GlobalArray *S = K.global("sa_S", F64);
  GlobalArray *U = K.global("sa_U", F64);
  GlobalArray *V = K.global("sa_V", F64);
  IRBuilder &IRB = K.irb();
  K.store(S, 0, IRB.createFAdd(K.load(U, 0), K.load(V, 0)));
  K.store(S, 1, IRB.createFAdd(K.load(U, 1), K.load(V, 1)));
  K.finish();
}

/// Scalar filler: running reduction through memory — a loop-carried
/// dependence no straight-line vectorizer touches.
void buildFillerReduce(Module &M) {
  LoopKernelBuilder K(M, "filler_reduce", /*Step=*/1);
  Type *F64 = K.getContext().getDoubleTy();
  GlobalArray *Acc = K.global("fr_Acc", F64, 8);
  GlobalArray *In = K.global("fr_In", F64);
  IRBuilder &IRB = K.irb();
  Value *Ptr = IRB.createGEP(F64, Acc, K.cInt(0));
  Value *Sum = IRB.createLoad(F64, Ptr);
  IRB.createStore(IRB.createFAdd(Sum, K.load(In, 0)), Ptr);
  K.finish();
}

/// Scalar filler: data-dependent select chain over integers.
void buildFillerBranchy(Module &M) {
  LoopKernelBuilder K(M, "filler_branchy", /*Step=*/1);
  Type *I64 = K.getContext().getInt64Ty();
  GlobalArray *Out = K.global("fb_Out", I64);
  GlobalArray *X = K.global("fb_X", I64);
  GlobalArray *Y = K.global("fb_Y", I64);
  IRBuilder &IRB = K.irb();
  Value *Xv = K.load(X, 0);
  Value *Yv = K.load(Y, 0);
  Value *Cond = IRB.createICmp(ICmpInst::UGT, Xv, Yv);
  Value *Diff = IRB.createSelect(Cond, IRB.createSub(Xv, Yv),
                                 IRB.createSub(Yv, Xv));
  K.store(Out, 0, IRB.createAdd(Diff, K.cInt(1)));
  K.finish();
}

/// Scalar filler: strided accesses with a single store per iteration (no
/// adjacent-store seeds).
void buildFillerStride(Module &M) {
  LoopKernelBuilder K(M, "filler_stride", /*Step=*/1);
  Type *I64 = K.getContext().getInt64Ty();
  GlobalArray *C = K.global("fs_C", I64);
  GlobalArray *A = K.global("fs_A", I64);
  GlobalArray *B = K.global("fs_B", I64);
  IRBuilder &IRB = K.irb();
  K.store(C, 0,
          IRB.createXor(IRB.createAdd(K.load(A, 2, 0), K.load(B, 3, 1)),
                        K.load(A, 0)));
  K.finish();
}

} // namespace

void lslp::registerSuiteKernels(std::vector<KernelSpec> &Registry) {
  Registry.push_back(KernelSpec{
      "gromacs-lj", "435.gromacs (suite member)", "-",
      "LJ force with commuted factor products", buildGromacsLJ, "gromacs_lj",
      4000, {"lj_F"}, false});
  Registry.push_back(KernelSpec{
      "calculix-stiff", "454.calculix (suite member)", "-",
      "isomorphic stiffness accumulate", buildCalculixStiff,
      "calculix_stiff", 4000, {"cx_K"}, false});
  Registry.push_back(KernelSpec{
      "calculix-pack", "454.calculix (suite member)", "-",
      "i32->i64 widening before the arithmetic (vector casts)",
      buildCalculixPack, "calculix_pack", 4000, {"cp_O"}, false});
  Registry.push_back(KernelSpec{
      "wrf-stencil", "481.wrf (suite member)", "-",
      "stencil with flipped addends (plain reordering suffices)",
      buildWrfStencil, "wrf_stencil", 4000, {"wrf_W"}, false});
  Registry.push_back(KernelSpec{
      "bwaves-flux", "410.bwaves (suite member)", "-",
      "flux update needing look-ahead", buildBwavesFlux, "bwaves_flux", 4000,
      {"bw_F"}, false});
  Registry.push_back(KernelSpec{
      "gamess-eri", "416.gamess (suite member)", "-",
      "non-isomorphic lanes; never vectorizes", buildGamessEri, "gamess_eri",
      4000, {"gm_G"}, false});
  Registry.push_back(KernelSpec{
      "povray-dot", "453.povray (suite member, reduction seeds)", "-",
      "4-term dot product; needs horizontal-reduction vectorization",
      buildPovrayDot, "povray_dot", 1000, {"dot_S"}, false});
  Registry.push_back(KernelSpec{
      "mult-su2-complex", "433.milc (suite member, alt-opcode extension)",
      "m_su2_mat_vec_a.c", "complex SU(2) product: fadd/fsub lanes blend",
      buildMultSU2Complex, "mult_su2_complex", 500, {"su2c_B"}, false});
  Registry.push_back(KernelSpec{
      "stream-add", "suite baseline member", "-",
      "isomorphic streaming add; vectorizes everywhere", buildStreamAdd,
      "stream_add", 4000, {"sa_S"}, false});
  Registry.push_back(KernelSpec{
      "filler-reduce", "synthetic scalar filler", "-",
      "loop-carried memory reduction", buildFillerReduce, "filler_reduce",
      4000, {"fr_Acc"}, false});
  Registry.push_back(KernelSpec{
      "filler-branchy", "synthetic scalar filler", "-",
      "icmp/select integer chains", buildFillerBranchy, "filler_branchy",
      4000, {"fb_Out"}, false});
  Registry.push_back(KernelSpec{
      "filler-stride", "synthetic scalar filler", "-",
      "strided gathers, single store per iteration", buildFillerStride,
      "filler_stride", 1300, {"fs_C"}, false});
}
