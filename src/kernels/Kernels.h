//===- kernels/Kernels.h - Evaluation kernel registry -----------*- C++ -*-===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The evaluation workloads: the three motivation kernels (paper Figures
/// 2-4), re-implementations of the eight SPEC CPU2006 kernels of Table 2
/// (the originals are proprietary; see DESIGN.md for the substitution
/// rationale), the extra kernels and scalar fillers composing the
/// whole-benchmark suites of Figures 11-12, plus deterministic input
/// initialization and output checksumming used by tests and benches.
///
//===----------------------------------------------------------------------===//

#ifndef LSLP_KERNELS_KERNELS_H
#define LSLP_KERNELS_KERNELS_H

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace lslp {

class Context;
class ExecutionEngine;
class Module;

/// Description + builder of one kernel.
struct KernelSpec {
  /// Kernel id as the paper names it (e.g. "453.vsumsqr").
  std::string Name;
  /// Benchmark of origin ("SPEC2006 453.povray", "Section 3.1", ...).
  std::string Origin;
  /// Source location reported in Table 2 (informational).
  std::string SourceLocation;
  /// Which paper motif(s) the kernel exercises.
  std::string Description;
  /// Adds the kernel's globals and entry function to \p M (callable
  /// multiple times across different modules; uses name-prefixed globals
  /// so kernels can share one suite module).
  std::function<void(Module &M)> Build;
  /// Name of the kernel's entry function, signature void(i64 n).
  std::string EntryFunction;
  /// Trip-count argument keeping all accesses in bounds.
  uint64_t DefaultN = 1024;
  /// Globals written by the kernel (checksummed by tests/benches).
  std::vector<std::string> OutputArrays;
  /// Appears in Table 2 / Figures 9-10-13-14 (vs suite-only members).
  bool InKernelFigures = true;
};

/// All registered kernels: 3 motivation + 8 Table 2 + suite-only members
/// and fillers.
const std::vector<KernelSpec> &getAllKernels();

/// The 11 kernels of Figures 9, 10, 13 and 14 (Table 2 + motivation), in
/// paper order.
std::vector<const KernelSpec *> getFigureKernels();

/// Lookup by name; null if unknown.
const KernelSpec *findKernel(const std::string &Name);

/// Builds a fresh single-kernel module.
std::unique_ptr<Module> buildKernelModule(const KernelSpec &Spec,
                                          Context &Ctx);

/// One whole-benchmark suite of Figures 11-12: a module combining several
/// kernels (vectorizable and filler) with dynamic-execution weights.
struct SuiteSpec {
  /// Benchmark name as in the paper ("453.povray", "481.wrf", ...).
  std::string Name;
  /// Member kernel names (must exist in the registry).
  std::vector<std::string> Members;
  /// Relative dynamic weight of each member (same length as Members):
  /// how many times the member runs per "benchmark execution". This is
  /// what dilutes kernel-level gains to whole-benchmark scale.
  std::vector<double> Weights;
};

/// The seven suites shown in Figures 11-12.
const std::vector<SuiteSpec> &getSuites();

/// Builds the combined module for a suite.
std::unique_ptr<Module> buildSuiteModule(const SuiteSpec &Suite,
                                         Context &Ctx);

/// Fills every global array of \p M with deterministic pseudo-random
/// values (integers small and positive; floating point in [1, 17)) so
/// shifts and divisions are well-behaved. Thin wrapper over
/// initGlobalMemory(..., MemoryInitStyle::KernelRanges); works with any
/// execution engine.
void initKernelMemory(ExecutionEngine &E, const Module &M,
                      uint64_t Seed = 0x1234abcd);

/// Order-dependent checksum over one global array's raw contents.
uint64_t checksumGlobal(const ExecutionEngine &E, const Module &M,
                        const std::string &GlobalName);

/// Combined checksum over \p Names (in order).
uint64_t checksumGlobals(const ExecutionEngine &E, const Module &M,
                         const std::vector<std::string> &Names);

} // namespace lslp

#endif // LSLP_KERNELS_KERNELS_H
