//===- analysis/DependenceGraph.h - Intra-block dependences -----*- C++ -*-===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A dependence DAG over one basic block: def-use edges plus conservative
/// memory-ordering edges between may-aliasing accesses where at least one
/// writes. The SLP graph builder queries it to decide whether a candidate
/// bundle is schedulable (its members are mutually independent), and the
/// vector code generator's list scheduler consumes the same edges.
///
//===----------------------------------------------------------------------===//

#ifndef LSLP_ANALYSIS_DEPENDENCEGRAPH_H
#define LSLP_ANALYSIS_DEPENDENCEGRAPH_H

#include <cstdint>
#include <map>
#include <vector>

namespace lslp {

class BasicBlock;
class Instruction;

/// Dependence information for one basic block, valid until the block is
/// mutated.
class DependenceGraph {
public:
  explicit DependenceGraph(const BasicBlock &BB);

  /// True if \p Later transitively depends on \p Earlier (through data or
  /// memory-ordering edges). Both must belong to the analyzed block.
  bool dependsOn(const Instruction *Later, const Instruction *Earlier) const;

  /// True if no member of \p Bundle depends on another member — the
  /// schedulability precondition for forming a vectorizable group.
  bool areMutuallyIndependent(
      const std::vector<Instruction *> &Bundle) const;

  /// Direct predecessors (instructions this one depends on) of \p I within
  /// the block.
  const std::vector<const Instruction *> &
  directDeps(const Instruction *I) const;

  /// Number of instructions in the analyzed block.
  unsigned size() const { return static_cast<unsigned>(Order.size()); }

  /// The analyzed instructions in block order.
  const std::vector<const Instruction *> &instructions() const {
    return Order;
  }

private:
  unsigned indexOf(const Instruction *I) const;
  bool reaches(unsigned From, unsigned To) const;

  std::vector<const Instruction *> Order;
  std::map<const Instruction *, unsigned> Index;
  /// DirectPreds[i] = indices j < i that i directly depends on.
  std::vector<std::vector<unsigned>> DirectPreds;
  std::vector<std::vector<const Instruction *>> DirectPredInsts;
  /// Transitive closure: Reach[i] is a bitset over instruction indices.
  std::vector<std::vector<uint64_t>> Reach;
};

} // namespace lslp

#endif // LSLP_ANALYSIS_DEPENDENCEGRAPH_H
