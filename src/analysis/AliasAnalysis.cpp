//===- analysis/AliasAnalysis.cpp - Base+offset alias analysis --------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "analysis/AliasAnalysis.h"

#include "analysis/AddressAnalysis.h"
#include "ir/Instruction.h"
#include "ir/Module.h"

using namespace lslp;

AliasResult lslp::alias(const Instruction *A, const Instruction *B) {
  const Value *PtrA = getPointerOperand(A);
  const Value *PtrB = getPointerOperand(B);
  assert(PtrA && PtrB && "alias query on non-memory instructions");

  AddressDescriptor DA = decomposePointer(PtrA);
  AddressDescriptor DB = decomposePointer(PtrB);
  if (!DA.isValid() || !DB.isValid())
    return AliasResult::MayAlias;

  if (DA.Base != DB.Base) {
    // Distinct global arrays occupy distinct memory segments.
    if (isa<GlobalArray>(DA.Base) && isa<GlobalArray>(DB.Base))
      return AliasResult::NoAlias;
    return AliasResult::MayAlias;
  }

  // Shared base: constant distance only when symbolic terms agree.
  if (DA.Terms != DB.Terms)
    return AliasResult::MayAlias;

  int64_t OffA = DA.ConstBytes;
  int64_t OffB = DB.ConstBytes;
  int64_t SizeA = getMemAccessType(A)->getSizeInBytes();
  int64_t SizeB = getMemAccessType(B)->getSizeInBytes();
  if (OffA == OffB && SizeA == SizeB)
    return AliasResult::MustAlias;
  bool Disjoint = OffA + SizeA <= OffB || OffB + SizeB <= OffA;
  return Disjoint ? AliasResult::NoAlias : AliasResult::MayAlias;
}

bool lslp::mayAlias(const Instruction *A, const Instruction *B) {
  return alias(A, B) != AliasResult::NoAlias;
}
