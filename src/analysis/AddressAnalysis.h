//===- analysis/AddressAnalysis.h - SCEV-lite address analysis --*- C++ -*-===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pointer decomposition into base + affine byte offset. This provides the
/// consecutive-access query the paper attributes to scalar evolution
/// analysis [Bachmann et al.]: two accesses are consecutive iff they share
/// a base and symbolic terms and their constant byte offsets differ by
/// exactly the access size.
///
/// The decomposition handles chains of single-index geps whose indices are
/// affine expressions (add/sub, multiply/shift by constants) over arbitrary
/// symbolic values.
///
//===----------------------------------------------------------------------===//

#ifndef LSLP_ANALYSIS_ADDRESSANALYSIS_H
#define LSLP_ANALYSIS_ADDRESSANALYSIS_H

#include <cstdint>
#include <map>
#include <optional>

namespace lslp {

class Instruction;
class Type;
class Value;

/// A pointer expressed as Base + Σ (Coeff_i × Sym_i) + ConstBytes, all in
/// bytes. Invalid descriptors (Base == null) mean the decomposition failed.
struct AddressDescriptor {
  /// The root pointer value (a global, argument or non-gep instruction).
  const Value *Base = nullptr;
  /// Symbolic byte terms: value -> coefficient. Zero coefficients are
  /// never stored.
  std::map<const Value *, int64_t> Terms;
  /// Constant byte offset.
  int64_t ConstBytes = 0;

  bool isValid() const { return Base != nullptr; }

  /// True if both descriptors have the same base and symbolic terms, i.e.
  /// their distance is the compile-time constant difference of ConstBytes.
  bool hasConstantDistanceFrom(const AddressDescriptor &Other) const {
    return isValid() && Other.isValid() && Base == Other.Base &&
           Terms == Other.Terms;
  }
};

/// Decomposes \p Ptr (a pointer-typed value) by walking gep chains.
AddressDescriptor decomposePointer(const Value *Ptr);

/// Returns the pointer operand of a load/store, or null for any other
/// instruction.
const Value *getPointerOperand(const Instruction *I);

/// Returns the accessed type of a load/store, or null.
Type *getMemAccessType(const Instruction *I);

/// Byte distance (B - A) between the addresses of two load/store
/// instructions, when it is a compile-time constant.
std::optional<int64_t> byteDistance(const Instruction *A,
                                    const Instruction *B);

/// True if \p A and \p B are same-kind, same-type memory accesses and B's
/// address is exactly one element past A's (the SLP adjacency test).
bool areConsecutiveAccesses(const Instruction *A, const Instruction *B);

} // namespace lslp

#endif // LSLP_ANALYSIS_ADDRESSANALYSIS_H
