//===- analysis/DependenceGraph.cpp - Intra-block dependences ---------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "analysis/DependenceGraph.h"

#include "analysis/AliasAnalysis.h"
#include "ir/BasicBlock.h"
#include "ir/Instruction.h"

using namespace lslp;

DependenceGraph::DependenceGraph(const BasicBlock &BB) {
  for (const auto &I : BB) {
    Index[I.get()] = static_cast<unsigned>(Order.size());
    Order.push_back(I.get());
  }
  unsigned N = static_cast<unsigned>(Order.size());
  DirectPreds.resize(N);
  DirectPredInsts.resize(N);

  // Def-use edges within the block.
  for (unsigned I = 0; I != N; ++I) {
    for (const Value *Op : Order[I]->operands()) {
      const auto *OpInst = dyn_cast<Instruction>(Op);
      if (!OpInst)
        continue;
      auto It = Index.find(OpInst);
      if (It != Index.end() && It->second < I) {
        DirectPreds[I].push_back(It->second);
        DirectPredInsts[I].push_back(OpInst);
      }
    }
  }

  // Memory-ordering edges: earlier -> later for may-aliasing pairs with at
  // least one write.
  std::vector<unsigned> MemOps;
  for (unsigned I = 0; I != N; ++I)
    if (Order[I]->mayReadOrWriteMemory())
      MemOps.push_back(I);
  for (size_t A = 0; A < MemOps.size(); ++A) {
    for (size_t B = A + 1; B < MemOps.size(); ++B) {
      const Instruction *Early = Order[MemOps[A]];
      const Instruction *Late = Order[MemOps[B]];
      if (!Early->mayWriteToMemory() && !Late->mayWriteToMemory())
        continue;
      if (!mayAlias(Early, Late))
        continue;
      DirectPreds[MemOps[B]].push_back(MemOps[A]);
      DirectPredInsts[MemOps[B]].push_back(Early);
    }
  }

  // Transitive closure over the DAG (indices are topologically ordered by
  // construction since all edges point from lower to higher index).
  unsigned Words = (N + 63) / 64;
  Reach.assign(N, std::vector<uint64_t>(Words, 0));
  for (unsigned I = 0; I != N; ++I) {
    for (unsigned P : DirectPreds[I]) {
      Reach[I][P / 64] |= uint64_t(1) << (P % 64);
      for (unsigned W = 0; W != Words; ++W)
        Reach[I][W] |= Reach[P][W];
    }
  }
}

unsigned DependenceGraph::indexOf(const Instruction *I) const {
  auto It = Index.find(I);
  assert(It != Index.end() && "instruction not in the analyzed block");
  return It->second;
}

bool DependenceGraph::reaches(unsigned From, unsigned To) const {
  return (Reach[From][To / 64] >> (To % 64)) & 1;
}

bool DependenceGraph::dependsOn(const Instruction *Later,
                                const Instruction *Earlier) const {
  return reaches(indexOf(Later), indexOf(Earlier));
}

bool DependenceGraph::areMutuallyIndependent(
    const std::vector<Instruction *> &Bundle) const {
  for (size_t A = 0; A < Bundle.size(); ++A) {
    for (size_t B = 0; B < Bundle.size(); ++B) {
      if (A == B)
        continue;
      if (Index.count(Bundle[A]) == 0 || Index.count(Bundle[B]) == 0)
        return false; // Mixed-block bundles are never schedulable here.
      if (dependsOn(Bundle[A], Bundle[B]))
        return false;
    }
  }
  return true;
}

const std::vector<const Instruction *> &
DependenceGraph::directDeps(const Instruction *I) const {
  return DirectPredInsts[indexOf(I)];
}
