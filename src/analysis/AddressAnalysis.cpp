//===- analysis/AddressAnalysis.cpp - SCEV-lite address analysis -----------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "analysis/AddressAnalysis.h"

#include "ir/Constants.h"
#include "ir/Instruction.h"

using namespace lslp;

namespace {

/// Accumulates Scale * Index into \p Desc, decomposing affine index
/// expressions recursively. \p Depth bounds pathological chains.
void accumulateIndex(const Value *Index, int64_t Scale,
                     AddressDescriptor &Desc, unsigned Depth = 8) {
  if (Scale == 0)
    return;
  if (const auto *CI = dyn_cast<ConstantInt>(Index)) {
    Desc.ConstBytes += Scale * CI->getSExtValue();
    return;
  }
  if (Depth > 0) {
    if (const auto *BO = dyn_cast<BinaryOperator>(Index)) {
      switch (BO->getOpcode()) {
      case ValueID::Add:
        accumulateIndex(BO->getLHS(), Scale, Desc, Depth - 1);
        accumulateIndex(BO->getRHS(), Scale, Desc, Depth - 1);
        return;
      case ValueID::Sub:
        accumulateIndex(BO->getLHS(), Scale, Desc, Depth - 1);
        accumulateIndex(BO->getRHS(), -Scale, Desc, Depth - 1);
        return;
      case ValueID::Mul: {
        // One side must be constant for the result to stay affine.
        if (const auto *C = dyn_cast<ConstantInt>(BO->getRHS())) {
          accumulateIndex(BO->getLHS(), Scale * C->getSExtValue(), Desc,
                          Depth - 1);
          return;
        }
        if (const auto *C = dyn_cast<ConstantInt>(BO->getLHS())) {
          accumulateIndex(BO->getRHS(), Scale * C->getSExtValue(), Desc,
                          Depth - 1);
          return;
        }
        break;
      }
      case ValueID::Shl: {
        if (const auto *C = dyn_cast<ConstantInt>(BO->getRHS())) {
          uint64_t Amount = C->getZExtValue();
          if (Amount < 63) {
            accumulateIndex(BO->getLHS(),
                            Scale * (int64_t(1) << Amount), Desc, Depth - 1);
            return;
          }
        }
        break;
      }
      default:
        break;
      }
    }
  }
  // Opaque symbolic term.
  int64_t &Coeff = Desc.Terms[Index];
  Coeff += Scale;
  if (Coeff == 0)
    Desc.Terms.erase(Index);
}

} // namespace

AddressDescriptor lslp::decomposePointer(const Value *Ptr) {
  AddressDescriptor Desc;
  if (!Ptr->getType()->isPointerTy())
    return Desc;
  const Value *Cur = Ptr;
  unsigned Depth = 0;
  while (const auto *GEP = dyn_cast<GEPInst>(Cur)) {
    if (++Depth > 32)
      return AddressDescriptor(); // Degenerate chain; give up.
    int64_t ElemBytes =
        static_cast<int64_t>(GEP->getElementType()->getSizeInBytes());
    accumulateIndex(GEP->getIndexOperand(), ElemBytes, Desc);
    Cur = GEP->getBaseOperand();
  }
  Desc.Base = Cur;
  return Desc;
}

const Value *lslp::getPointerOperand(const Instruction *I) {
  if (const auto *L = dyn_cast<LoadInst>(I))
    return L->getPointerOperand();
  if (const auto *S = dyn_cast<StoreInst>(I))
    return S->getPointerOperand();
  return nullptr;
}

Type *lslp::getMemAccessType(const Instruction *I) {
  if (const auto *L = dyn_cast<LoadInst>(I))
    return L->getAccessType();
  if (const auto *S = dyn_cast<StoreInst>(I))
    return S->getAccessType();
  return nullptr;
}

std::optional<int64_t> lslp::byteDistance(const Instruction *A,
                                          const Instruction *B) {
  const Value *PtrA = getPointerOperand(A);
  const Value *PtrB = getPointerOperand(B);
  if (!PtrA || !PtrB)
    return std::nullopt;
  AddressDescriptor DA = decomposePointer(PtrA);
  AddressDescriptor DB = decomposePointer(PtrB);
  if (!DB.hasConstantDistanceFrom(DA))
    return std::nullopt;
  return DB.ConstBytes - DA.ConstBytes;
}

bool lslp::areConsecutiveAccesses(const Instruction *A, const Instruction *B) {
  if (A->getOpcode() != B->getOpcode())
    return false;
  Type *TyA = getMemAccessType(A);
  Type *TyB = getMemAccessType(B);
  if (!TyA || TyA != TyB)
    return false;
  std::optional<int64_t> Dist = byteDistance(A, B);
  return Dist && *Dist == static_cast<int64_t>(TyA->getSizeInBytes());
}
