//===- analysis/AliasAnalysis.h - Base+offset alias analysis ----*- C++ -*-===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Memory disambiguation for pairs of load/store instructions, built on the
/// address decomposition: distinct global arrays never alias; accesses off
/// a shared base with equal symbolic terms are disambiguated by interval
/// arithmetic; everything else conservatively may-aliases.
///
//===----------------------------------------------------------------------===//

#ifndef LSLP_ANALYSIS_ALIASANALYSIS_H
#define LSLP_ANALYSIS_ALIASANALYSIS_H

namespace lslp {

class Instruction;

/// Result of an alias query.
enum class AliasResult {
  NoAlias,   ///< The accesses are provably disjoint.
  MayAlias,  ///< Unknown; must be treated as potentially overlapping.
  MustAlias, ///< Provably the exact same address range.
};

/// Classifies the accesses of two load/store instructions. Both must be
/// memory instructions.
AliasResult alias(const Instruction *A, const Instruction *B);

/// Convenience: true unless the pair is provably NoAlias.
bool mayAlias(const Instruction *A, const Instruction *B);

} // namespace lslp

#endif // LSLP_ANALYSIS_ALIASANALYSIS_H
