//===- ir/Local.h - Local IR simplification utilities -----------*- C++ -*-===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small local transformations (after llvm/Transforms/Utils/Local.h):
/// trivial dead-code elimination, used by the vectorizer's code generator
/// to clean up the address computations orphaned when scalar loads/stores
/// are replaced by vector ones.
///
//===----------------------------------------------------------------------===//

#ifndef LSLP_IR_LOCAL_H
#define LSLP_IR_LOCAL_H

namespace lslp {

class BasicBlock;
class Function;
class Instruction;

/// True if \p I can be erased when unused: it has no users, no side
/// effects (stores) and is not a terminator. Dead loads are removable
/// (the memory model has no trapping loads).
bool isTriviallyDead(const Instruction *I);

/// Erases trivially dead instructions in \p BB until a fixpoint.
/// Returns the number of instructions removed.
unsigned removeTriviallyDeadInstructions(BasicBlock &BB);

/// Runs the block-level sweep over every block of \p F.
unsigned removeTriviallyDeadInstructions(Function &F);

} // namespace lslp

#endif // LSLP_IR_LOCAL_H
