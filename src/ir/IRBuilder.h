//===- ir/IRBuilder.h - Convenience IR construction --------------*- C++ -*-===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// IRBuilder creates instructions at an insertion point (end of a block, or
/// before a given instruction), mirroring llvm::IRBuilder. All create*
/// methods return the new instruction already inserted.
///
//===----------------------------------------------------------------------===//

#ifndef LSLP_IR_IRBUILDER_H
#define LSLP_IR_IRBUILDER_H

#include "ir/BasicBlock.h"
#include "ir/Context.h"
#include "ir/Instruction.h"

#include <string>

namespace lslp {

/// Inserts newly-created instructions at a configurable insertion point.
class IRBuilder {
public:
  explicit IRBuilder(Context &Ctx) : Ctx(Ctx) {}
  explicit IRBuilder(BasicBlock *BB) : Ctx(BB->getContext()) {
    setInsertPoint(BB);
  }

  Context &getContext() const { return Ctx; }

  /// Inserts at the end of \p BB.
  void setInsertPoint(BasicBlock *BB) {
    InsertBlock = BB;
    InsertBefore = nullptr;
  }

  /// Inserts immediately before \p I.
  void setInsertPoint(Instruction *I) {
    InsertBlock = I->getParent();
    InsertBefore = I;
  }

  BasicBlock *getInsertBlock() const { return InsertBlock; }

  /// \name Instruction factories.
  /// @{
  Value *createBinOp(ValueID Opc, Value *LHS, Value *RHS,
                     std::string Name = "") {
    return insert(BinaryOperator::create(Opc, LHS, RHS, std::move(Name)));
  }
  Value *createAdd(Value *L, Value *R, std::string Name = "") {
    return createBinOp(ValueID::Add, L, R, std::move(Name));
  }
  Value *createSub(Value *L, Value *R, std::string Name = "") {
    return createBinOp(ValueID::Sub, L, R, std::move(Name));
  }
  Value *createMul(Value *L, Value *R, std::string Name = "") {
    return createBinOp(ValueID::Mul, L, R, std::move(Name));
  }
  Value *createAnd(Value *L, Value *R, std::string Name = "") {
    return createBinOp(ValueID::And, L, R, std::move(Name));
  }
  Value *createOr(Value *L, Value *R, std::string Name = "") {
    return createBinOp(ValueID::Or, L, R, std::move(Name));
  }
  Value *createXor(Value *L, Value *R, std::string Name = "") {
    return createBinOp(ValueID::Xor, L, R, std::move(Name));
  }
  Value *createShl(Value *L, Value *R, std::string Name = "") {
    return createBinOp(ValueID::Shl, L, R, std::move(Name));
  }
  Value *createLShr(Value *L, Value *R, std::string Name = "") {
    return createBinOp(ValueID::LShr, L, R, std::move(Name));
  }
  Value *createFAdd(Value *L, Value *R, std::string Name = "") {
    return createBinOp(ValueID::FAdd, L, R, std::move(Name));
  }
  Value *createFSub(Value *L, Value *R, std::string Name = "") {
    return createBinOp(ValueID::FSub, L, R, std::move(Name));
  }
  Value *createFMul(Value *L, Value *R, std::string Name = "") {
    return createBinOp(ValueID::FMul, L, R, std::move(Name));
  }
  Value *createFDiv(Value *L, Value *R, std::string Name = "") {
    return createBinOp(ValueID::FDiv, L, R, std::move(Name));
  }

  CastInst *createCast(ValueID Opc, Value *Src, Type *DestTy,
                       std::string Name = "") {
    return cast<CastInst>(
        insert(CastInst::create(Opc, Src, DestTy, std::move(Name))));
  }
  CastInst *createSExt(Value *Src, Type *DestTy, std::string Name = "") {
    return createCast(ValueID::SExt, Src, DestTy, std::move(Name));
  }
  CastInst *createZExt(Value *Src, Type *DestTy, std::string Name = "") {
    return createCast(ValueID::ZExt, Src, DestTy, std::move(Name));
  }
  CastInst *createTrunc(Value *Src, Type *DestTy, std::string Name = "") {
    return createCast(ValueID::Trunc, Src, DestTy, std::move(Name));
  }
  CastInst *createSIToFP(Value *Src, Type *DestTy, std::string Name = "") {
    return createCast(ValueID::SIToFP, Src, DestTy, std::move(Name));
  }
  CastInst *createFPToSI(Value *Src, Type *DestTy, std::string Name = "") {
    return createCast(ValueID::FPToSI, Src, DestTy, std::move(Name));
  }

  ICmpInst *createICmp(ICmpInst::Predicate Pred, Value *L, Value *R,
                       std::string Name = "") {
    return cast<ICmpInst>(insert(ICmpInst::create(Pred, L, R,
                                                  std::move(Name))));
  }
  SelectInst *createSelect(Value *Cond, Value *T, Value *F,
                           std::string Name = "") {
    return cast<SelectInst>(insert(SelectInst::create(Cond, T, F,
                                                      std::move(Name))));
  }

  LoadInst *createLoad(Type *Ty, Value *Ptr, std::string Name = "") {
    return cast<LoadInst>(insert(LoadInst::create(Ty, Ptr, std::move(Name))));
  }
  StoreInst *createStore(Value *Val, Value *Ptr) {
    return cast<StoreInst>(insert(StoreInst::create(Val, Ptr)));
  }
  GEPInst *createGEP(Type *ElemTy, Value *Base, Value *Index,
                     std::string Name = "") {
    return cast<GEPInst>(
        insert(GEPInst::create(ElemTy, Base, Index, std::move(Name))));
  }
  /// gep with a constant i64 index.
  GEPInst *createGEP(Type *ElemTy, Value *Base, int64_t Index,
                     std::string Name = "") {
    return createGEP(ElemTy, Base,
                     Ctx.getInt64(static_cast<uint64_t>(Index)),
                     std::move(Name));
  }

  InsertElementInst *createInsertElement(Value *Vec, Value *Elt, unsigned Lane,
                                         std::string Name = "") {
    return cast<InsertElementInst>(insert(InsertElementInst::create(
        Vec, Elt, Ctx.getInt32(Lane), std::move(Name))));
  }
  ExtractElementInst *createExtractElement(Value *Vec, unsigned Lane,
                                           std::string Name = "") {
    return cast<ExtractElementInst>(insert(
        ExtractElementInst::create(Vec, Ctx.getInt32(Lane), std::move(Name))));
  }
  ShuffleVectorInst *createShuffleVector(Value *V1, Value *V2,
                                         std::vector<int> Mask,
                                         std::string Name = "") {
    return cast<ShuffleVectorInst>(insert(
        ShuffleVectorInst::create(V1, V2, std::move(Mask), std::move(Name))));
  }

  PHINode *createPHI(Type *Ty, std::string Name = "") {
    return cast<PHINode>(insert(PHINode::create(Ty, std::move(Name))));
  }
  BranchInst *createBr(BasicBlock *Dest) {
    return cast<BranchInst>(insert(BranchInst::create(Dest)));
  }
  BranchInst *createCondBr(Value *Cond, BasicBlock *T, BasicBlock *F) {
    return cast<BranchInst>(insert(BranchInst::create(Cond, T, F)));
  }
  ReturnInst *createRet(Value *V = nullptr) {
    return cast<ReturnInst>(insert(ReturnInst::create(Ctx, V)));
  }
  /// @}

  /// Inserts an already-created instruction at the current insertion point
  /// and returns it.
  Instruction *insert(Instruction *I) {
    assert(InsertBlock && "no insertion point set");
    if (InsertBefore)
      InsertBlock->insertBefore(I, InsertBefore);
    else
      InsertBlock->append(I);
    return I;
  }

private:
  Context &Ctx;
  BasicBlock *InsertBlock = nullptr;
  Instruction *InsertBefore = nullptr;
};

} // namespace lslp

#endif // LSLP_IR_IRBUILDER_H
