//===- ir/Dominators.cpp - Dominator tree -----------------------------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ir/Dominators.h"

#include "ir/BasicBlock.h"
#include "ir/Function.h"
#include "ir/Instruction.h"

#include <algorithm>
#include <set>

using namespace lslp;

DominatorTree::DominatorTree(const Function &F) {
  if (F.empty())
    return;
  const BasicBlock *Entry = F.getEntryBlock();

  // Post-order DFS from the entry, then reverse.
  std::vector<const BasicBlock *> PostOrder;
  std::set<const BasicBlock *> Visited;
  // Iterative DFS with an explicit stack of (block, next-successor-index).
  std::vector<std::pair<const BasicBlock *, unsigned>> Stack;
  Stack.push_back({Entry, 0});
  Visited.insert(Entry);
  while (!Stack.empty()) {
    auto &[BB, NextIdx] = Stack.back();
    std::vector<BasicBlock *> Succs = BB->successors();
    if (NextIdx < Succs.size()) {
      const BasicBlock *Succ = Succs[NextIdx++];
      if (Visited.insert(Succ).second)
        Stack.push_back({Succ, 0});
      continue;
    }
    PostOrder.push_back(BB);
    Stack.pop_back();
  }
  RPO.assign(PostOrder.rbegin(), PostOrder.rend());
  for (unsigned I = 0, E = static_cast<unsigned>(RPO.size()); I != E; ++I)
    RPONumber[RPO[I]] = I;

  // Cooper-Harvey-Kennedy iteration.
  IDom[Entry] = Entry;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (const BasicBlock *BB : RPO) {
      if (BB == Entry)
        continue;
      const BasicBlock *NewIDom = nullptr;
      for (const BasicBlock *Pred : BB->predecessors()) {
        if (!RPONumber.count(Pred) || !IDom.count(Pred))
          continue; // Unreachable or not yet processed.
        NewIDom = NewIDom ? intersect(NewIDom, Pred) : Pred;
      }
      if (!NewIDom)
        continue;
      auto It = IDom.find(BB);
      if (It == IDom.end() || It->second != NewIDom) {
        IDom[BB] = NewIDom;
        Changed = true;
      }
    }
  }
}

const BasicBlock *DominatorTree::intersect(const BasicBlock *A,
                                           const BasicBlock *B) const {
  while (A != B) {
    while (RPONumber.at(A) > RPONumber.at(B))
      A = IDom.at(A);
    while (RPONumber.at(B) > RPONumber.at(A))
      B = IDom.at(B);
  }
  return A;
}

const BasicBlock *DominatorTree::getIDom(const BasicBlock *BB) const {
  auto It = IDom.find(BB);
  if (It == IDom.end() || It->second == BB)
    return nullptr;
  return It->second;
}

bool DominatorTree::dominates(const BasicBlock *A, const BasicBlock *B) const {
  // Everything dominates an unreachable block.
  if (!isReachable(B))
    return true;
  if (!isReachable(A))
    return false;
  // Walk B's idom chain upward; A dominates B iff it appears on it.
  const BasicBlock *Cur = B;
  while (true) {
    if (Cur == A)
      return true;
    auto It = IDom.find(Cur);
    if (It == IDom.end() || It->second == Cur)
      return false;
    Cur = It->second;
  }
}

bool DominatorTree::dominates(const Value *Def, const Instruction *User) const {
  const auto *DefInst = dyn_cast<Instruction>(Def);
  if (!DefInst)
    return true; // Constants, arguments, globals dominate everything.
  const BasicBlock *DefBB = DefInst->getParent();
  const BasicBlock *UseBB = User->getParent();

  // A use in a phi is logically at the end of the incoming block.
  if (const auto *Phi = dyn_cast<PHINode>(User)) {
    for (unsigned I = 0, E = Phi->getNumIncoming(); I != E; ++I)
      if (Phi->getIncomingValue(I) == Def &&
          !dominates(DefBB, Phi->getIncomingBlock(I)))
        return false;
    return true;
  }

  if (DefBB == UseBB)
    return DefInst->comesBefore(User);
  return dominates(DefBB, UseBB);
}
