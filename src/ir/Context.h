//===- ir/Context.h - Ownership of uniqued types and constants --*- C++ -*-===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Context owns all uniqued, immutable IR entities: types and constants.
/// Every Module is created against a Context; entities from different
/// contexts must never be mixed (mirrors LLVMContext).
///
//===----------------------------------------------------------------------===//

#ifndef LSLP_IR_CONTEXT_H
#define LSLP_IR_CONTEXT_H

#include "ir/Type.h"

#include <map>
#include <memory>
#include <mutex>
#include <vector>

namespace lslp {

class Constant;
class ConstantInt;
class ConstantFP;
class ConstantVector;
class UndefValue;

/// Owns and uniques types and constants. The interning factories are
/// mutex-guarded and the returned pointers are stable, so worker threads
/// of the parallel vectorization driver may request types and constants
/// concurrently against one shared Context (see DESIGN.md "Concurrency
/// model"). Everything else about IR construction remains single-owner:
/// only one thread may mutate a given Function at a time.
class Context {
public:
  Context();
  ~Context();
  Context(const Context &) = delete;
  Context &operator=(const Context &) = delete;

  /// \name Type factories (uniqued; returned pointers are stable).
  /// @{
  Type *getVoidTy() { return &VoidTy; }
  Type *getLabelTy() { return &LabelTy; }
  Type *getFloatTy() { return &FloatTy; }
  Type *getDoubleTy() { return &DoubleTy; }
  PointerType *getPtrTy() { return &PtrTy; }
  IntegerType *getIntTy(unsigned BitWidth);
  IntegerType *getInt1Ty() { return getIntTy(1); }
  IntegerType *getInt8Ty() { return getIntTy(8); }
  IntegerType *getInt32Ty() { return getIntTy(32); }
  IntegerType *getInt64Ty() { return getIntTy(64); }
  VectorType *getVectorTy(Type *ElemTy, unsigned NumElems);
  /// @}

  /// \name Constant factories (uniqued).
  /// @{
  /// Returns the integer constant \p Value of type \p Ty, truncated to the
  /// type's bit width.
  ConstantInt *getConstantInt(IntegerType *Ty, uint64_t Value);
  ConstantInt *getInt64(uint64_t Value) {
    return getConstantInt(getInt64Ty(), Value);
  }
  ConstantInt *getInt32(uint32_t Value) {
    return getConstantInt(getInt32Ty(), Value);
  }
  ConstantInt *getInt1(bool Value) {
    return getConstantInt(getInt1Ty(), Value);
  }
  /// Returns the floating-point constant \p Value of float or double type.
  ConstantFP *getConstantFP(Type *Ty, double Value);
  /// Returns the undef placeholder of first-class type \p Ty.
  UndefValue *getUndef(Type *Ty);
  /// Returns the constant vector with the given scalar-constant elements
  /// (all of the same type; at least two).
  ConstantVector *getConstantVector(const std::vector<Constant *> &Elements);
  /// @}

private:
  /// Guards every interning map below; cheap relative to what callers do
  /// with the result, and only contended during parallel vectorization.
  std::mutex InternMutex;

  Type VoidTy;
  Type LabelTy;
  Type FloatTy;
  Type DoubleTy;
  PointerType PtrTy;

  std::map<unsigned, std::unique_ptr<IntegerType>> IntTypes;
  std::map<std::pair<Type *, unsigned>, std::unique_ptr<VectorType>> VecTypes;
  std::map<std::pair<IntegerType *, uint64_t>, std::unique_ptr<ConstantInt>>
      IntConstants;
  std::map<std::pair<Type *, double>, std::unique_ptr<ConstantFP>>
      FPConstants;
  std::map<Type *, std::unique_ptr<UndefValue>> Undefs;
  std::map<std::vector<Constant *>, std::unique_ptr<ConstantVector>>
      VecConstants;
};

} // namespace lslp

#endif // LSLP_IR_CONTEXT_H
