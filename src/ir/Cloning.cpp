//===- ir/Cloning.cpp - Function cloning -------------------------------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ir/Cloning.h"

#include "ir/BasicBlock.h"
#include "ir/Function.h"
#include "ir/Instruction.h"
#include "support/Debug.h"

#include <unordered_map>

using namespace lslp;

Instruction *lslp::cloneInstructionDetached(const Instruction &I) {
  ValueID Opc = I.getOpcode();
  if (I.isBinaryOp())
    return BinaryOperator::create(Opc, I.getOperand(0), I.getOperand(1),
                                  I.getName());
  if (CastInst::isCastOpcode(Opc))
    return CastInst::create(Opc, I.getOperand(0), I.getType(), I.getName());
  switch (Opc) {
  case ValueID::ICmp: {
    const auto &C = cast<ICmpInst>(I);
    return ICmpInst::create(C.getPredicate(), C.getLHS(), C.getRHS(),
                            C.getName());
  }
  case ValueID::Select:
    return SelectInst::create(I.getOperand(0), I.getOperand(1),
                              I.getOperand(2), I.getName());
  case ValueID::Load:
    return LoadInst::create(I.getType(), I.getOperand(0), I.getName());
  case ValueID::Store:
    return StoreInst::create(I.getOperand(0), I.getOperand(1));
  case ValueID::Gep: {
    const auto &G = cast<GEPInst>(I);
    return GEPInst::create(G.getElementType(), G.getBaseOperand(),
                           G.getIndexOperand(), G.getName());
  }
  case ValueID::InsertElement:
    return InsertElementInst::create(I.getOperand(0), I.getOperand(1),
                                     I.getOperand(2), I.getName());
  case ValueID::ExtractElement:
    return ExtractElementInst::create(I.getOperand(0), I.getOperand(1),
                                      I.getName());
  case ValueID::ShuffleVector: {
    const auto &S = cast<ShuffleVectorInst>(I);
    return ShuffleVectorInst::create(S.getFirstVector(), S.getSecondVector(),
                                     S.getMask(), S.getName());
  }
  case ValueID::Phi: {
    const auto &P = cast<PHINode>(I);
    PHINode *NP = PHINode::create(P.getType(), P.getName());
    for (unsigned In = 0, E = P.getNumIncoming(); In != E; ++In)
      NP->addIncoming(P.getIncomingValue(In), P.getIncomingBlock(In));
    return NP;
  }
  case ValueID::Br: {
    const auto &B = cast<BranchInst>(I);
    if (B.isConditional())
      return BranchInst::create(B.getCondition(), B.getSuccessor(0),
                                B.getSuccessor(1));
    return BranchInst::create(B.getSuccessor(0));
  }
  case ValueID::Ret:
    return ReturnInst::create(I.getContext(),
                              cast<ReturnInst>(I).getReturnValue());
  default:
    lslp_unreachable("unknown instruction opcode in cloner");
  }
}

std::unique_ptr<Function> lslp::cloneFunctionDetached(const Function &F) {
  Context &Ctx = F.getContext();
  std::vector<Type *> ArgTypes;
  std::vector<std::string> ArgNames;
  for (unsigned I = 0, E = F.getNumArgs(); I != E; ++I) {
    ArgTypes.push_back(F.getArg(I)->getType());
    ArgNames.push_back(F.getArg(I)->getName());
  }
  std::unique_ptr<Function> Clone = Function::createDetached(
      Ctx, F.getName(), F.getReturnType(), ArgTypes, ArgNames);

  std::unordered_map<const Value *, Value *> VMap;
  for (unsigned I = 0, E = F.getNumArgs(); I != E; ++I)
    VMap[F.getArg(I)] = Clone->getArg(I);

  // Pass 1a: create the blocks so branches/phis cloned below can be
  // remapped even across forward edges.
  for (const auto &BB : F)
    VMap[BB.get()] = BasicBlock::create(Ctx, BB->getName(), Clone.get());

  // Pass 1b: clone the instructions in order, still pointing at original
  // operands.
  std::vector<Instruction *> NewInsts;
  for (const auto &BB : F) {
    auto *NewBB = cast<BasicBlock>(VMap[BB.get()]);
    for (const auto &I : *BB) {
      Instruction *NI = cloneInstructionDetached(*I);
      NewBB->append(NI);
      VMap[I.get()] = NI;
      NewInsts.push_back(NI);
    }
  }

  // Pass 2: remap operands that refer to cloned values (arguments, blocks,
  // instructions). Constants/globals/undef are not in the map and stay
  // shared.
  for (Instruction *NI : NewInsts)
    for (unsigned Idx = 0, E = NI->getNumOperands(); Idx != E; ++Idx) {
      auto It = VMap.find(NI->getOperand(Idx));
      if (It != VMap.end())
        NI->setOperand(Idx, It->second);
    }
  return Clone;
}
