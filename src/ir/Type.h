//===- ir/Type.h - IR type system -------------------------------*- C++ -*-===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The IR type system: void, integers of arbitrary bit width, float/double,
/// an opaque pointer type (modern-LLVM style: loads, stores and geps carry
/// the accessed type), fixed-width vectors, and the label type for basic
/// blocks. Types are uniqued and owned by the Context; two structurally
/// equal types are pointer-equal.
///
//===----------------------------------------------------------------------===//

#ifndef LSLP_IR_TYPE_H
#define LSLP_IR_TYPE_H

#include "support/Casting.h"

#include <cassert>
#include <cstdint>
#include <string>

namespace lslp {

class Context;

/// Base class of all IR types. Uniqued per Context: compare with ==.
class Type {
public:
  enum TypeKind : uint8_t {
    VoidTyKind,
    IntegerTyKind,
    FloatTyKind,  ///< IEEE binary32.
    DoubleTyKind, ///< IEEE binary64.
    PointerTyKind,
    VectorTyKind,
    LabelTyKind, ///< The type of basic blocks.
  };

  Type(const Type &) = delete;
  Type &operator=(const Type &) = delete;

  TypeKind getKind() const { return Kind; }
  Context &getContext() const { return Ctx; }

  bool isVoidTy() const { return Kind == VoidTyKind; }
  bool isIntegerTy() const { return Kind == IntegerTyKind; }
  bool isFloatTy() const { return Kind == FloatTyKind; }
  bool isDoubleTy() const { return Kind == DoubleTyKind; }
  bool isFloatingPointTy() const { return isFloatTy() || isDoubleTy(); }
  bool isPointerTy() const { return Kind == PointerTyKind; }
  bool isVectorTy() const { return Kind == VectorTyKind; }
  bool isLabelTy() const { return Kind == LabelTyKind; }

  /// Returns true for types a load/store/binary-op may produce: integers,
  /// floats, pointers and vectors thereof.
  bool isFirstClassTy() const { return !isVoidTy() && !isLabelTy(); }

  /// Size of an in-memory object of this type, in bytes. Integers round up
  /// to whole bytes; pointers are 8 bytes. Not valid for void/label.
  unsigned getSizeInBytes() const;

  /// For vectors, the element type; for scalars, the type itself.
  Type *getScalarType();

  /// Renders the type in textual IR syntax (e.g. "i64", "<4 x double>").
  std::string getName() const;

protected:
  Type(Context &Ctx, TypeKind Kind) : Ctx(Ctx), Kind(Kind) {}
  ~Type() = default;
  friend class Context;

private:
  Context &Ctx;
  TypeKind Kind;
};

/// An integer type of arbitrary bit width (i1..i64 supported by the
/// interpreter; arithmetic wraps modulo 2^width).
class IntegerType : public Type {
public:
  unsigned getBitWidth() const { return BitWidth; }

  static bool classof(const Type *Ty) {
    return Ty->getKind() == IntegerTyKind;
  }

private:
  IntegerType(Context &Ctx, unsigned BitWidth)
      : Type(Ctx, IntegerTyKind), BitWidth(BitWidth) {
    assert(BitWidth >= 1 && BitWidth <= 64 && "unsupported integer width");
  }
  friend class Context;

  unsigned BitWidth;
};

/// The single opaque pointer type.
class PointerType : public Type {
public:
  static bool classof(const Type *Ty) {
    return Ty->getKind() == PointerTyKind;
  }

private:
  explicit PointerType(Context &Ctx) : Type(Ctx, PointerTyKind) {}
  friend class Context;
};

/// A fixed-width SIMD vector of scalar elements.
class VectorType : public Type {
public:
  Type *getElementType() const { return ElemTy; }
  unsigned getNumElements() const { return NumElems; }

  static bool classof(const Type *Ty) {
    return Ty->getKind() == VectorTyKind;
  }

private:
  VectorType(Context &Ctx, Type *ElemTy, unsigned NumElems)
      : Type(Ctx, VectorTyKind), ElemTy(ElemTy), NumElems(NumElems) {
    assert(NumElems >= 2 && "vectors have at least two lanes");
    assert(!ElemTy->isVectorTy() && !ElemTy->isVoidTy() &&
           !ElemTy->isLabelTy() && "invalid vector element type");
  }
  friend class Context;

  Type *ElemTy;
  unsigned NumElems;
};

} // namespace lslp

#endif // LSLP_IR_TYPE_H
