//===- ir/Verifier.h - IR well-formedness checks ----------------*- C++ -*-===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural and SSA verification: terminators, phi placement and
/// incoming-edge consistency, operand typing, def-dominates-use. The
/// vectorizer's tests run the verifier after every transformation.
///
//===----------------------------------------------------------------------===//

#ifndef LSLP_IR_VERIFIER_H
#define LSLP_IR_VERIFIER_H

#include <string>
#include <vector>

namespace lslp {

class Function;
class Module;

/// Verifies \p F. Returns true if well-formed; otherwise appends
/// diagnostics to \p Errors (if provided).
bool verifyFunction(const Function &F, std::vector<std::string> *Errors = nullptr);

/// Verifies every function in \p M.
bool verifyModule(const Module &M, std::vector<std::string> *Errors = nullptr);

} // namespace lslp

#endif // LSLP_IR_VERIFIER_H
