//===- ir/Module.h - Module and GlobalArray ---------------------*- C++ -*-===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Module owns functions and global arrays. Global arrays model the
/// `long A[], B[], ...` buffers of the paper's kernels; the interpreter
/// assigns each one a distinct memory segment, which also gives the alias
/// analysis its distinct-base-object guarantee.
///
//===----------------------------------------------------------------------===//

#ifndef LSLP_IR_MODULE_H
#define LSLP_IR_MODULE_H

#include "ir/Function.h"
#include "ir/Value.h"

#include <memory>
#include <string_view>
#include <vector>

namespace lslp {

class Context;

/// A named, fixed-size global array of scalar elements. Its Value type is
/// the opaque pointer type (the address of element 0).
class GlobalArray : public Value {
public:
  Type *getElementType() const { return ElemTy; }
  uint64_t getNumElements() const { return NumElems; }
  uint64_t getSizeInBytes() const {
    return NumElems * ElemTy->getSizeInBytes();
  }

  static bool classof(const Value *V) {
    return V->getValueID() == ValueID::GlobalArrayID;
  }

private:
  friend class Module;
  GlobalArray(Context &Ctx, std::string Name, Type *ElemTy, uint64_t NumElems);

  Type *ElemTy;
  uint64_t NumElems;
};

/// Top-level container of functions and globals.
class Module {
public:
  explicit Module(Context &Ctx, std::string Name = "module")
      : Ctx(Ctx), Name(std::move(Name)) {}
  Module(const Module &) = delete;
  Module &operator=(const Module &) = delete;

  Context &getContext() const { return Ctx; }
  const std::string &getName() const { return Name; }

  /// Creates a global array of \p NumElems elements of \p ElemTy.
  GlobalArray *createGlobal(std::string GlobalName, Type *ElemTy,
                            uint64_t NumElems);

  /// Returns the global named \p GlobalName, or null.
  GlobalArray *getGlobal(std::string_view GlobalName) const;

  /// Removes and destroys \p G (must belong to this module and have no
  /// remaining uses).
  void eraseGlobal(GlobalArray *G);

  const std::vector<std::unique_ptr<GlobalArray>> &globals() const {
    return Globals;
  }

  /// Returns the function named \p FuncName, or null.
  Function *getFunction(std::string_view FuncName) const;

  const std::vector<std::unique_ptr<Function>> &functions() const {
    return Funcs;
  }

private:
  friend class Function;
  void addFunction(std::unique_ptr<Function> F) {
    Funcs.push_back(std::move(F));
  }

  Context &Ctx;
  std::string Name;
  std::vector<std::unique_ptr<GlobalArray>> Globals;
  std::vector<std::unique_ptr<Function>> Funcs;
};

} // namespace lslp

#endif // LSLP_IR_MODULE_H
