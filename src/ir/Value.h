//===- ir/Value.h - Value and User base classes -----------------*- C++ -*-===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Value is the base of everything that can appear as an operand: constants,
/// function arguments, globals and instructions. User is a Value that has
/// operands. Use-def chains are maintained eagerly: every Value records the
/// (user, operand-index) pairs that reference it, which is what the SLP
/// algorithms walk.
///
//===----------------------------------------------------------------------===//

#ifndef LSLP_IR_VALUE_H
#define LSLP_IR_VALUE_H

#include "ir/Type.h"
#include "support/Casting.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace lslp {

class User;

/// Discriminator for the whole Value hierarchy. Instruction opcodes are
/// value IDs in the [FirstInstID, LastInstID] range, mirroring LLVM's
/// design where Instruction::getOpcode() and Value::getValueID() coincide.
enum class ValueID : uint8_t {
  ArgumentID,
  GlobalArrayID,
  ConstantIntID,
  ConstantFPID,
  ConstantVectorID,
  UndefID,
  FunctionID,
  BasicBlockID,

  // --- Instructions ---
  // Binary operators (integer).
  Add,
  Sub,
  Mul,
  SDiv,
  UDiv,
  SRem,
  URem,
  And,
  Or,
  Xor,
  Shl,
  LShr,
  AShr,
  // Binary operators (floating point; fast-math semantics assumed, so FAdd
  // and FMul are treated as commutative and reassociable like the paper's
  // -ffast-math evaluation).
  FAdd,
  FSub,
  FMul,
  FDiv,
  // Memory.
  Load,
  Store,
  Gep,
  // Vector element manipulation.
  InsertElement,
  ExtractElement,
  ShuffleVector,
  // Scalar misc.
  ICmp,
  Select,
  // Casts (value conversions; no memory effects).
  SExt,
  ZExt,
  Trunc,
  SIToFP,
  FPToSI,
  // Control flow.
  Phi,
  Br,
  Ret,
};

/// First and last instruction IDs, for classof range checks.
inline constexpr ValueID FirstInstID = ValueID::Add;
inline constexpr ValueID LastInstID = ValueID::Ret;

/// A single (user, operand-slot) reference to a Value.
struct Use {
  User *TheUser;
  unsigned OperandNo;

  bool operator==(const Use &Other) const {
    return TheUser == Other.TheUser && OperandNo == Other.OperandNo;
  }
};

/// Base class of all IR values.
class Value {
public:
  Value(const Value &) = delete;
  Value &operator=(const Value &) = delete;
  virtual ~Value();

  ValueID getValueID() const { return ID; }
  Type *getType() const { return Ty; }
  Context &getContext() const { return Ty->getContext(); }

  /// The value's name, without the IR sigil ('%' or '@'). May be empty for
  /// unnamed instructions (the printer assigns slot numbers).
  const std::string &getName() const { return Name; }
  void setName(std::string NewName) { Name = std::move(NewName); }
  bool hasName() const { return !Name.empty(); }

  /// \name Use-list access.
  /// @{
  const std::vector<Use> &uses() const { return UseList; }
  bool hasUses() const { return !UseList.empty(); }
  unsigned getNumUses() const { return static_cast<unsigned>(UseList.size()); }
  /// Returns true if exactly one Use references this value (the same user
  /// twice counts as two).
  bool hasOneUse() const { return UseList.size() == 1; }
  /// @}

  /// Rewrites every use of this value to refer to \p New instead. \p New
  /// must have the same type.
  void replaceAllUsesWith(Value *New);

protected:
  Value(ValueID ID, Type *Ty, std::string Name = "")
      : ID(ID), Ty(Ty), Name(std::move(Name)) {
    assert(Ty && "value must have a type");
  }

  /// True for values shared across functions (constants, globals, undef):
  /// their use-lists are mutated under a process-wide mutex so the
  /// parallel vectorization driver can grow code in independent functions
  /// concurrently. Instruction/argument/block use-lists stay unlocked —
  /// they are only ever touched by the thread that owns the function.
  bool hasSharedUseList() const {
    switch (ID) {
    case ValueID::GlobalArrayID:
    case ValueID::ConstantIntID:
    case ValueID::ConstantFPID:
    case ValueID::ConstantVectorID:
    case ValueID::UndefID:
      return true;
    default:
      return false;
    }
  }

private:
  friend class User;
  void addUse(User *U, unsigned OperandNo);
  void removeUse(User *U, unsigned OperandNo);

  ValueID ID;
  Type *Ty;
  std::string Name;
  std::vector<Use> UseList;
};

/// A Value that references other Values through an operand list.
class User : public Value {
public:
  unsigned getNumOperands() const {
    return static_cast<unsigned>(Operands.size());
  }

  Value *getOperand(unsigned I) const {
    assert(I < Operands.size() && "operand index out of range");
    return Operands[I];
  }

  /// Replaces operand \p I, updating both use-lists.
  void setOperand(unsigned I, Value *V);

  const std::vector<Value *> &operands() const { return Operands; }

  static bool classof(const Value *V) {
    return V->getValueID() >= FirstInstID && V->getValueID() <= LastInstID;
  }

protected:
  User(ValueID ID, Type *Ty, std::string Name = "")
      : Value(ID, Ty, std::move(Name)) {}
  ~User() override;

  /// Appends \p V to the operand list (registers the use).
  void addOperand(Value *V);

  /// Removes operand \p I, shifting later operands down and renumbering
  /// their uses. Used by PHI incoming-edge removal.
  void removeOperand(unsigned I);

  /// Drops all operands (deregisters uses). Called before deletion.
  void dropAllOperands();

private:
  std::vector<Value *> Operands;
};

} // namespace lslp

#endif // LSLP_IR_VALUE_H
