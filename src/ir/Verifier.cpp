//===- ir/Verifier.cpp - IR well-formedness checks ---------------------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ir/Verifier.h"

#include "ir/BasicBlock.h"
#include "ir/Constants.h"
#include "ir/Dominators.h"
#include "ir/Function.h"
#include "ir/Instruction.h"
#include "ir/Module.h"
#include "ir/Printer.h"

#include <algorithm>
#include <set>

using namespace lslp;

namespace {

class VerifierImpl {
public:
  VerifierImpl(const Function &F, std::vector<std::string> *Errors)
      : F(F), Errors(Errors) {}

  bool run() {
    if (F.empty()) {
      report("function has no basic blocks");
      return Ok;
    }
    checkBlockStructure();
    checkInstructionTypes();
    if (Ok) // Dominance requires a structurally sound CFG.
      checkSSADominance();
    return Ok;
  }

private:
  void report(const std::string &Msg) {
    Ok = false;
    if (Errors)
      Errors->push_back("in @" + F.getName() + ": " + Msg);
  }

  void reportAt(const Instruction &I, const std::string &Msg) {
    report(Msg + " at '" + instructionToString(I) + "'");
  }

  void checkBlockStructure() {
    std::set<std::string> BlockNames;
    for (const auto &BB : F) {
      if (BB->getName().empty())
        report("basic block without a name");
      else if (!BlockNames.insert(BB->getName()).second)
        report("duplicate basic block name '" + BB->getName() + "'");

      if (BB->empty()) {
        report("empty basic block '" + BB->getName() + "'");
        continue;
      }
      const Instruction *Term = BB->getTerminator();
      if (!Term) {
        report("block '" + BB->getName() + "' lacks a terminator");
        continue;
      }
      bool SeenNonPhi = false;
      for (const auto &I : *BB) {
        if (I->isTerminator() && I.get() != Term)
          reportAt(*I, "terminator in the middle of a block");
        if (isa<PHINode>(I.get())) {
          if (SeenNonPhi)
            reportAt(*I, "phi after a non-phi instruction");
        } else {
          SeenNonPhi = true;
        }
        if (I->getParent() != BB.get())
          reportAt(*I, "instruction parent link is stale");
      }
    }
    // The entry block must have no predecessors so that dominance is
    // well-defined from a unique root.
    if (!F.getEntryBlock()->predecessors().empty())
      report("entry block has predecessors");
  }

  void checkInstructionTypes() {
    for (const auto &BB : F) {
      for (const auto &IPtr : *BB) {
        const Instruction &I = *IPtr;
        for (const Value *Op : I.operands())
          if (!Op->getType()->isFirstClassTy() && !isa<BasicBlock>(Op))
            reportAt(I, "operand of non-first-class type");

        if (I.isBinaryOp()) {
          if (I.getOperand(0)->getType() != I.getType() ||
              I.getOperand(1)->getType() != I.getType())
            reportAt(I, "binary operator operand type mismatch");
        }
        if (const auto *Cmp = dyn_cast<ICmpInst>(&I)) {
          if (Cmp->getLHS()->getType() != Cmp->getRHS()->getType())
            reportAt(I, "icmp operand types differ");
        }
        if (const auto *Sel = dyn_cast<SelectInst>(&I)) {
          if (Sel->getTrueValue()->getType() != Sel->getType() ||
              Sel->getFalseValue()->getType() != Sel->getType())
            reportAt(I, "select arm type mismatch");
          if (!SelectInst::isValidCondition(Sel->getCondition()->getType(),
                                            Sel->getType()))
            reportAt(I, "select condition must be i1 or <N x i1> matching "
                        "the arm lane count");
        }
        if (const auto *L = dyn_cast<LoadInst>(&I)) {
          if (!L->getPointerOperand()->getType()->isPointerTy())
            reportAt(I, "load pointer operand is not ptr-typed");
        }
        if (const auto *St = dyn_cast<StoreInst>(&I)) {
          if (!St->getPointerOperand()->getType()->isPointerTy())
            reportAt(I, "store pointer operand is not ptr-typed");
        }
        if (const auto *Cast = dyn_cast<CastInst>(&I)) {
          if (!CastInst::castIsValid(Cast->getOpcode(), Cast->getSrcType(),
                                     Cast->getDestType()))
            reportAt(I, "invalid cast source/destination types");
        }
        if (const auto *Phi = dyn_cast<PHINode>(&I))
          checkPhi(*Phi);
        if (const auto *Ret = dyn_cast<ReturnInst>(&I)) {
          Type *Expected = F.getReturnType();
          const Value *RV = Ret->getReturnValue();
          if (Expected->isVoidTy() != (RV == nullptr))
            reportAt(I, "return value does not match the return type");
          else if (RV && RV->getType() != Expected)
            reportAt(I, "returned value has the wrong type");
        }
        if (const auto *IE = dyn_cast<InsertElementInst>(&I))
          checkLaneIndex(I, IE->getIndexOperand(),
                         cast<VectorType>(IE->getType())->getNumElements());
        if (const auto *EE = dyn_cast<ExtractElementInst>(&I))
          checkLaneIndex(
              I, EE->getIndexOperand(),
              cast<VectorType>(EE->getVectorOperand()->getType())
                  ->getNumElements());
      }
    }
  }

  void checkLaneIndex(const Instruction &I, const Value *Index,
                      unsigned NumLanes) {
    const auto *CI = dyn_cast<ConstantInt>(Index);
    if (!CI) {
      reportAt(I, "lane index must be a constant integer");
      return;
    }
    if (CI->getZExtValue() >= NumLanes)
      reportAt(I, "lane index out of range");
  }

  void checkPhi(const PHINode &Phi) {
    std::vector<BasicBlock *> Preds = Phi.getParent()->predecessors();
    if (Phi.getNumIncoming() != Preds.size()) {
      reportAt(Phi, "phi incoming-edge count differs from predecessors");
      return;
    }
    for (unsigned I = 0, E = Phi.getNumIncoming(); I != E; ++I) {
      BasicBlock *In = Phi.getIncomingBlock(I);
      if (std::find(Preds.begin(), Preds.end(), In) == Preds.end())
        reportAt(Phi, "phi incoming block '" + In->getName() +
                          "' is not a predecessor");
      if (Phi.getIncomingValue(I)->getType() != Phi.getType())
        reportAt(Phi, "phi incoming value type mismatch");
    }
  }

  void checkSSADominance() {
    DominatorTree DT(F);
    for (const auto &BB : F) {
      if (!DT.isReachable(BB.get()))
        continue;
      for (const auto &IPtr : *BB) {
        const Instruction &I = *IPtr;
        for (const Value *Op : I.operands()) {
          const auto *OpInst = dyn_cast<Instruction>(Op);
          if (!OpInst)
            continue;
          if (OpInst->getParent()->getParent() != &F) {
            reportAt(I, "operand defined in a different function");
            continue;
          }
          if (!DT.dominates(Op, &I))
            reportAt(I, "definition does not dominate use");
        }
      }
    }
  }

  const Function &F;
  std::vector<std::string> *Errors;
  bool Ok = true;
};

} // namespace

bool lslp::verifyFunction(const Function &F, std::vector<std::string> *Errors) {
  return VerifierImpl(F, Errors).run();
}

bool lslp::verifyModule(const Module &M, std::vector<std::string> *Errors) {
  bool Ok = true;
  for (const auto &F : M.functions())
    Ok &= verifyFunction(*F, Errors);
  return Ok;
}
