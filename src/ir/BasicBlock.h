//===- ir/BasicBlock.h - Basic block ----------------------------*- C++ -*-===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A BasicBlock owns an ordered list of instructions ending (in well-formed
/// IR) with a terminator. Blocks are Values of label type so branches and
/// phis can reference them as operands.
///
//===----------------------------------------------------------------------===//

#ifndef LSLP_IR_BASICBLOCK_H
#define LSLP_IR_BASICBLOCK_H

#include "ir/Instruction.h"
#include "ir/Value.h"

#include <list>
#include <memory>

namespace lslp {

class Function;
class Context;

/// A straight-line sequence of instructions with a single entry point.
class BasicBlock : public Value {
public:
  using InstListType = std::list<std::unique_ptr<Instruction>>;
  using iterator = InstListType::iterator;
  using const_iterator = InstListType::const_iterator;

  /// Creates a block owned by \p Parent (appended to its block list).
  static BasicBlock *create(Context &Ctx, std::string Name, Function *Parent);

  Function *getParent() const { return Parent; }

  /// \name Instruction list access.
  /// @{
  iterator begin() { return Insts.begin(); }
  iterator end() { return Insts.end(); }
  const_iterator begin() const { return Insts.begin(); }
  const_iterator end() const { return Insts.end(); }
  bool empty() const { return Insts.empty(); }
  size_t size() const { return Insts.size(); }
  Instruction *front() const { return Insts.front().get(); }
  Instruction *back() const { return Insts.back().get(); }
  /// @}

  /// Appends \p I (takes ownership).
  Instruction *append(Instruction *I);

  /// Inserts \p I (takes ownership) immediately before \p Before, which
  /// must belong to this block.
  Instruction *insertBefore(Instruction *I, Instruction *Before);

  /// Detaches \p I from this block without deleting it. Caller takes
  /// ownership.
  std::unique_ptr<Instruction> detach(Instruction *I);

  /// Removes and deletes \p I. Its uses must already be gone.
  void erase(Instruction *I);

  /// Returns the block's terminator, or null if the block is unterminated.
  Instruction *getTerminator() const;

  /// Returns true if \p A appears strictly before \p B (both must belong to
  /// this block).
  bool comesBefore(const Instruction *A, const Instruction *B) const;

  /// Predecessor/successor queries (computed from branch operands/uses).
  std::vector<BasicBlock *> successors() const;
  std::vector<BasicBlock *> predecessors() const;

  static bool classof(const Value *V) {
    return V->getValueID() == ValueID::BasicBlockID;
  }

private:
  BasicBlock(Context &Ctx, std::string Name, Function *Parent);
  friend class Function;
  friend class Instruction;

  iterator findIterator(const Instruction *I);

  /// Reassigns instruction order indices; called lazily by comesBefore.
  void renumber() const;

  Function *Parent;
  InstListType Insts;
  mutable bool OrderValid = false;
};

} // namespace lslp

#endif // LSLP_IR_BASICBLOCK_H
