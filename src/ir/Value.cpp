//===- ir/Value.cpp - Value and User base classes --------------------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ir/Value.h"

#include <mutex>

using namespace lslp;

namespace {
/// Serializes use-list mutation on values shared across functions
/// (constants, globals, undef) during parallel vectorization. One global
/// mutex suffices: the operations are a few pointer moves, and the lock is
/// uncontended outside the parallel driver. See DESIGN.md "Concurrency
/// model" for why shared use-lists must not be *read* from the parallel
/// region at all.
std::mutex SharedUseListMutex;
} // namespace

Value::~Value() {
  assert(UseList.empty() && "value deleted while still in use");
}

void Value::addUse(User *U, unsigned OperandNo) {
  if (hasSharedUseList()) {
    std::lock_guard<std::mutex> Lock(SharedUseListMutex);
    UseList.push_back(Use{U, OperandNo});
    return;
  }
  UseList.push_back(Use{U, OperandNo});
}

void Value::removeUse(User *U, unsigned OperandNo) {
  auto Remove = [&] {
    auto It = std::find(UseList.begin(), UseList.end(), Use{U, OperandNo});
    assert(It != UseList.end() && "use not found");
    UseList.erase(It);
  };
  if (hasSharedUseList()) {
    std::lock_guard<std::mutex> Lock(SharedUseListMutex);
    Remove();
    return;
  }
  Remove();
}

void Value::replaceAllUsesWith(Value *New) {
  assert(New != this && "replaceAllUsesWith on itself");
  assert(New->getType() == getType() && "replacement type mismatch");
  // setOperand mutates our use-list; iterate over a copy.
  std::vector<Use> Snapshot = UseList;
  for (const Use &U : Snapshot)
    U.TheUser->setOperand(U.OperandNo, New);
}

User::~User() {
  // Subclasses' operands must be dropped before Value's destructor asserts
  // the use-list is empty.
  dropAllOperands();
}

void User::setOperand(unsigned I, Value *V) {
  assert(I < Operands.size() && "operand index out of range");
  assert(V && "operand must be non-null");
  Operands[I]->removeUse(this, I);
  Operands[I] = V;
  V->addUse(this, I);
}

void User::addOperand(Value *V) {
  assert(V && "operand must be non-null");
  Operands.push_back(V);
  V->addUse(this, static_cast<unsigned>(Operands.size() - 1));
}

void User::removeOperand(unsigned I) {
  assert(I < Operands.size() && "operand index out of range");
  Operands[I]->removeUse(this, I);
  // Shift subsequent operands down, renumbering their recorded uses.
  for (unsigned J = I + 1, E = static_cast<unsigned>(Operands.size()); J != E;
       ++J) {
    Operands[J]->removeUse(this, J);
    Operands[J - 1] = Operands[J];
    Operands[J - 1]->addUse(this, J - 1);
  }
  Operands.pop_back();
}

void User::dropAllOperands() {
  for (unsigned I = 0, E = static_cast<unsigned>(Operands.size()); I != E; ++I)
    Operands[I]->removeUse(this, I);
  Operands.clear();
}
