//===- ir/Dominators.h - Dominator tree -------------------------*- C++ -*-===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dominator tree over a function's CFG, computed with the Cooper-Harvey-
/// Kennedy iterative algorithm. Used by the verifier's SSA dominance check
/// and by tests.
///
//===----------------------------------------------------------------------===//

#ifndef LSLP_IR_DOMINATORS_H
#define LSLP_IR_DOMINATORS_H

#include <map>
#include <vector>

namespace lslp {

class BasicBlock;
class Function;
class Instruction;
class Value;

/// Immutable dominator information for one function.
class DominatorTree {
public:
  /// Builds the tree for \p F. Blocks unreachable from the entry have no
  /// dominator information and are reported unreachable.
  explicit DominatorTree(const Function &F);

  /// Returns true if \p A dominates \p B (reflexive: a block dominates
  /// itself). Unreachable blocks are dominated by everything, matching
  /// LLVM's convention.
  bool dominates(const BasicBlock *A, const BasicBlock *B) const;

  /// Returns true if the definition point of \p Def dominates the use of it
  /// at instruction \p User (for a phi use, the end of the corresponding
  /// incoming block). \p Def may be any Value; non-instruction values
  /// dominate everything.
  bool dominates(const Value *Def, const Instruction *User) const;

  /// Immediate dominator of \p BB; null for the entry or unreachable
  /// blocks.
  const BasicBlock *getIDom(const BasicBlock *BB) const;

  bool isReachable(const BasicBlock *BB) const {
    return RPONumber.count(BB) != 0;
  }

private:
  const BasicBlock *intersect(const BasicBlock *A, const BasicBlock *B) const;

  std::map<const BasicBlock *, const BasicBlock *> IDom;
  std::map<const BasicBlock *, unsigned> RPONumber;
  std::vector<const BasicBlock *> RPO;
};

} // namespace lslp

#endif // LSLP_IR_DOMINATORS_H
