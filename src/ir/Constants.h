//===- ir/Constants.h - Constant values -------------------------*- C++ -*-===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Constant values: integers, floating-point numbers and the undef
/// placeholder. All are uniqued by and owned by the Context.
///
//===----------------------------------------------------------------------===//

#ifndef LSLP_IR_CONSTANTS_H
#define LSLP_IR_CONSTANTS_H

#include "ir/Value.h"

namespace lslp {

/// Common base for uniqued constants.
class Constant : public Value {
public:
  static bool classof(const Value *V) {
    ValueID ID = V->getValueID();
    return ID == ValueID::ConstantIntID || ID == ValueID::ConstantFPID ||
           ID == ValueID::ConstantVectorID || ID == ValueID::UndefID;
  }

protected:
  Constant(ValueID ID, Type *Ty) : Value(ID, Ty) {}
};

/// An integer constant. The payload is stored zero-extended in a uint64_t;
/// getSExtValue() re-interprets it as a signed value of the type's width.
class ConstantInt : public Constant {
public:
  uint64_t getZExtValue() const { return Val; }

  int64_t getSExtValue() const {
    unsigned Bits = cast<IntegerType>(getType())->getBitWidth();
    if (Bits == 64)
      return static_cast<int64_t>(Val);
    uint64_t SignBit = uint64_t(1) << (Bits - 1);
    return static_cast<int64_t>((Val ^ SignBit)) -
           static_cast<int64_t>(SignBit);
  }

  bool isZero() const { return Val == 0; }
  bool isOne() const { return Val == 1; }

  static bool classof(const Value *V) {
    return V->getValueID() == ValueID::ConstantIntID;
  }

private:
  friend class Context;
  ConstantInt(IntegerType *Ty, uint64_t Val)
      : Constant(ValueID::ConstantIntID, Ty), Val(Val) {}

  uint64_t Val;
};

/// A float/double constant.
class ConstantFP : public Constant {
public:
  double getValue() const { return Val; }

  static bool classof(const Value *V) {
    return V->getValueID() == ValueID::ConstantFPID;
  }

private:
  friend class Context;
  ConstantFP(Type *Ty, double Val)
      : Constant(ValueID::ConstantFPID, Ty), Val(Val) {
    assert(Ty->isFloatingPointTy() && "ConstantFP requires an FP type");
  }

  double Val;
};

/// A constant vector of scalar constants. Like scalar literals, constant
/// vectors are materialized for free from the constant pool — this is what
/// makes all-constant operand groups cost zero in the SLP cost model.
class ConstantVector : public Constant {
public:
  const std::vector<Constant *> &getElements() const { return Elements; }
  Constant *getElement(unsigned I) const { return Elements[I]; }
  unsigned getNumElements() const {
    return static_cast<unsigned>(Elements.size());
  }

  static bool classof(const Value *V) {
    return V->getValueID() == ValueID::ConstantVectorID;
  }

private:
  friend class Context;
  ConstantVector(Type *VecTy, std::vector<Constant *> Elements)
      : Constant(ValueID::ConstantVectorID, VecTy),
        Elements(std::move(Elements)) {}

  std::vector<Constant *> Elements;
};

/// The undef placeholder of a given type (used as the base of
/// insertelement chains emitted by the vector code generator).
class UndefValue : public Constant {
public:
  static bool classof(const Value *V) {
    return V->getValueID() == ValueID::UndefID;
  }

private:
  friend class Context;
  explicit UndefValue(Type *Ty) : Constant(ValueID::UndefID, Ty) {}
};

} // namespace lslp

#endif // LSLP_IR_CONSTANTS_H
