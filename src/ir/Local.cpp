//===- ir/Local.cpp - Local IR simplification utilities ----------------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ir/Local.h"

#include "ir/BasicBlock.h"
#include "ir/Function.h"
#include "ir/Instruction.h"

#include <vector>

using namespace lslp;

bool lslp::isTriviallyDead(const Instruction *I) {
  return !I->hasUses() && !I->mayWriteToMemory() && !I->isTerminator();
}

unsigned lslp::removeTriviallyDeadInstructions(BasicBlock &BB) {
  unsigned Removed = 0;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    // Collect first: erasing invalidates the iteration.
    std::vector<Instruction *> Dead;
    for (const auto &I : BB)
      if (isTriviallyDead(I.get()))
        Dead.push_back(I.get());
    for (Instruction *I : Dead) {
      I->eraseFromParent();
      ++Removed;
      Changed = true;
    }
  }
  return Removed;
}

unsigned lslp::removeTriviallyDeadInstructions(Function &F) {
  unsigned Removed = 0;
  for (const auto &BB : F)
    Removed += removeTriviallyDeadInstructions(*BB);
  return Removed;
}
