//===- ir/Module.cpp - Module and GlobalArray -------------------------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ir/Module.h"

#include "ir/Context.h"

using namespace lslp;

GlobalArray::GlobalArray(Context &Ctx, std::string Name, Type *ElemTy,
                         uint64_t NumElems)
    : Value(ValueID::GlobalArrayID, Ctx.getPtrTy(), std::move(Name)),
      ElemTy(ElemTy), NumElems(NumElems) {
  assert(ElemTy->isFirstClassTy() && !ElemTy->isVectorTy() &&
         "global arrays hold scalar elements");
  assert(NumElems > 0 && "empty global array");
}

GlobalArray *Module::createGlobal(std::string GlobalName, Type *ElemTy,
                                  uint64_t NumElems) {
  assert(!getGlobal(GlobalName) && "duplicate global name");
  auto *G = new GlobalArray(Ctx, std::move(GlobalName), ElemTy, NumElems);
  Globals.emplace_back(G);
  return G;
}

GlobalArray *Module::getGlobal(std::string_view GlobalName) const {
  for (const auto &G : Globals)
    if (G->getName() == GlobalName)
      return G.get();
  return nullptr;
}

void Module::eraseGlobal(GlobalArray *G) {
  assert(!G->hasUses() && "erasing a global that is still referenced");
  for (auto It = Globals.begin(); It != Globals.end(); ++It)
    if (It->get() == G) {
      Globals.erase(It);
      return;
    }
  assert(false && "global does not belong to this module");
}

Function *Module::getFunction(std::string_view FuncName) const {
  for (const auto &F : Funcs)
    if (F->getName() == FuncName)
      return F.get();
  return nullptr;
}
