//===- ir/Printer.h - Textual IR printing -----------------------*- C++ -*-===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Prints modules, functions and instructions in the project's textual IR
/// syntax (an LLVM-IR-like dialect, accepted back by the parser). Unnamed
/// values receive per-function slot numbers (%0, %1, ...).
///
//===----------------------------------------------------------------------===//

#ifndef LSLP_IR_PRINTER_H
#define LSLP_IR_PRINTER_H

#include <string>

namespace lslp {

class Module;
class Function;
class Instruction;
class Value;
class OStream;

/// Prints \p M in textual form.
void printModule(OStream &OS, const Module &M);

/// Prints a single function.
void printFunction(OStream &OS, const Function &F);

/// Returns the textual form of \p M (convenience for tests).
std::string moduleToString(const Module &M);

/// Returns the textual form of \p F.
std::string functionToString(const Function &F);

/// Returns the one-line textual form of instruction \p I (with operands
/// referenced by name/slot within its parent function).
std::string instructionToString(const Instruction &I);

/// Returns a short reference string for \p V ("%x", "@A", "7", "undef").
std::string valueRefToString(const Value &V);

} // namespace lslp

#endif // LSLP_IR_PRINTER_H
