//===- ir/Function.h - Function and Argument --------------------*- C++ -*-===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Function owns its arguments and basic blocks; the first block is the
/// entry block. There is no separate FunctionType: the return type and
/// argument types are stored directly.
///
//===----------------------------------------------------------------------===//

#ifndef LSLP_IR_FUNCTION_H
#define LSLP_IR_FUNCTION_H

#include "ir/BasicBlock.h"
#include "ir/Value.h"

#include <memory>
#include <vector>

namespace lslp {

class Module;

/// A formal parameter of a Function.
class Argument : public Value {
public:
  unsigned getArgNo() const { return ArgNo; }

  static bool classof(const Value *V) {
    return V->getValueID() == ValueID::ArgumentID;
  }

private:
  friend class Function;
  Argument(Type *Ty, std::string Name, unsigned ArgNo)
      : Value(ValueID::ArgumentID, Ty, std::move(Name)), ArgNo(ArgNo) {}

  unsigned ArgNo;
};

/// A function definition: a list of arguments and basic blocks.
class Function : public Value {
public:
  using BlockListType = std::vector<std::unique_ptr<BasicBlock>>;

  /// Creates a function owned by \p Parent. \p ArgTypes/\p ArgNames must
  /// have equal length.
  static Function *create(Module *Parent, std::string Name, Type *RetTy,
                          const std::vector<Type *> &ArgTypes,
                          const std::vector<std::string> &ArgNames);

  /// Creates a free-standing function owned by the caller: not registered
  /// in any module (getParent() is null). Used by the transform-then-commit
  /// machinery to hold a backup clone of a function body without touching
  /// the (concurrently iterated) module function list.
  static std::unique_ptr<Function>
  createDetached(Context &Ctx, std::string Name, Type *RetTy,
                 const std::vector<Type *> &ArgTypes,
                 const std::vector<std::string> &ArgNames);

  /// Drops every instruction's operand references before destroying the
  /// blocks, so values may die in any order.
  ~Function() override;

  Module *getParent() const { return Parent; }
  Type *getReturnType() const { return RetTy; }

  /// \name Arguments.
  /// @{
  unsigned getNumArgs() const { return static_cast<unsigned>(Args.size()); }
  Argument *getArg(unsigned I) const { return Args[I].get(); }
  /// Returns the argument named \p Name, or null.
  Argument *getArgByName(std::string_view Name) const;
  /// @}

  /// \name Basic blocks. The first block is the entry block.
  /// @{
  BlockListType::iterator begin() { return Blocks.begin(); }
  BlockListType::iterator end() { return Blocks.end(); }
  BlockListType::const_iterator begin() const { return Blocks.begin(); }
  BlockListType::const_iterator end() const { return Blocks.end(); }
  bool empty() const { return Blocks.empty(); }
  size_t size() const { return Blocks.size(); }
  BasicBlock *getEntryBlock() const {
    assert(!Blocks.empty() && "function has no blocks");
    return Blocks.front().get();
  }
  /// Returns the block named \p Name, or null.
  BasicBlock *getBlockByName(std::string_view Name) const;
  /// Removes and destroys \p BB (must belong to this function). All
  /// references to the block and to its instructions must already be
  /// gone; callers drop the instructions' own operand references first.
  void eraseBlock(BasicBlock *BB);
  /// @}

  /// Total number of instructions across all blocks.
  unsigned getInstructionCount() const;

  /// Discards this function's current body and adopts \p Donor's blocks
  /// (signatures must match). References to \p Donor's arguments are
  /// rewritten to this function's arguments; \p Donor is left empty. This
  /// is the commit/rollback primitive of transform-then-commit: take a
  /// detached clone as a backup, mutate in place, and on failure
  /// takeBody(backup) to restore the original, byte for byte.
  void takeBody(Function &Donor);

  static bool classof(const Value *V) {
    return V->getValueID() == ValueID::FunctionID;
  }

private:
  friend class BasicBlock;
  friend class Module;
  Function(Context &Ctx, Module *Parent, std::string Name, Type *RetTy);

  void addBlock(std::unique_ptr<BasicBlock> BB) {
    Blocks.push_back(std::move(BB));
  }

  Module *Parent;
  Type *RetTy;
  std::vector<std::unique_ptr<Argument>> Args;
  BlockListType Blocks;
};

} // namespace lslp

#endif // LSLP_IR_FUNCTION_H
