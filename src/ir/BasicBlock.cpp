//===- ir/BasicBlock.cpp - Basic block -------------------------------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ir/BasicBlock.h"

#include "ir/Context.h"
#include "ir/Function.h"

#include <algorithm>

using namespace lslp;

BasicBlock::BasicBlock(Context &Ctx, std::string Name, Function *Parent)
    : Value(ValueID::BasicBlockID, Ctx.getLabelTy(), std::move(Name)),
      Parent(Parent) {}

BasicBlock *BasicBlock::create(Context &Ctx, std::string Name,
                               Function *Parent) {
  assert(Parent && "block requires a parent function");
  auto *BB = new BasicBlock(Ctx, std::move(Name), Parent);
  Parent->addBlock(std::unique_ptr<BasicBlock>(BB));
  return BB;
}

Instruction *BasicBlock::append(Instruction *I) {
  assert(!I->getParent() && "instruction already has a parent");
  I->setParent(this);
  Insts.emplace_back(I);
  OrderValid = false;
  return I;
}

Instruction *BasicBlock::insertBefore(Instruction *I, Instruction *Before) {
  assert(!I->getParent() && "instruction already has a parent");
  assert(Before->getParent() == this && "insertion point not in this block");
  I->setParent(this);
  Insts.emplace(findIterator(Before), I);
  OrderValid = false;
  return I;
}

std::unique_ptr<Instruction> BasicBlock::detach(Instruction *I) {
  assert(I->getParent() == this && "detaching from the wrong block");
  iterator It = findIterator(I);
  std::unique_ptr<Instruction> Owned = std::move(*It);
  Insts.erase(It);
  Owned->setParent(nullptr);
  OrderValid = false;
  return Owned;
}

void BasicBlock::erase(Instruction *I) {
  std::unique_ptr<Instruction> Owned = detach(I);
  // unique_ptr destructor deletes; User::~User drops operands first.
}

Instruction *BasicBlock::getTerminator() const {
  if (Insts.empty() || !Insts.back()->isTerminator())
    return nullptr;
  return Insts.back().get();
}

BasicBlock::iterator BasicBlock::findIterator(const Instruction *I) {
  auto It = std::find_if(
      Insts.begin(), Insts.end(),
      [I](const std::unique_ptr<Instruction> &P) { return P.get() == I; });
  assert(It != Insts.end() && "instruction not in this block");
  return It;
}

void BasicBlock::renumber() const {
  unsigned Idx = 0;
  for (const auto &I : Insts)
    I->OrderIdx = Idx++;
  OrderValid = true;
}

bool BasicBlock::comesBefore(const Instruction *A, const Instruction *B) const {
  assert(A->getParent() == this && B->getParent() == this &&
         "instructions not in this block");
  if (!OrderValid)
    renumber();
  return A->OrderIdx < B->OrderIdx;
}

std::vector<BasicBlock *> BasicBlock::successors() const {
  std::vector<BasicBlock *> Result;
  if (auto *Term = getTerminator())
    if (auto *Br = dyn_cast<BranchInst>(Term))
      for (unsigned I = 0, E = Br->getNumSuccessors(); I != E; ++I)
        Result.push_back(Br->getSuccessor(I));
  return Result;
}

std::vector<BasicBlock *> BasicBlock::predecessors() const {
  std::vector<BasicBlock *> Result;
  for (const Use &U : uses()) {
    auto *Br = dyn_cast<BranchInst>(static_cast<Value *>(U.TheUser));
    if (!Br)
      continue;
    BasicBlock *Pred = Br->getParent();
    // A conditional branch with both edges here contributes two uses; report
    // the predecessor once.
    if (std::find(Result.begin(), Result.end(), Pred) == Result.end())
      Result.push_back(Pred);
  }
  return Result;
}
