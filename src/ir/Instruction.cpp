//===- ir/Instruction.cpp - Instruction class hierarchy -------------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ir/Instruction.h"

#include "ir/BasicBlock.h"
#include "ir/Context.h"
#include "support/Debug.h"

using namespace lslp;

//===----------------------------------------------------------------------===//
// Instruction
//===----------------------------------------------------------------------===//

const char *Instruction::getOpcodeName(Opcode Opc) {
  switch (Opc) {
  case ValueID::Add:
    return "add";
  case ValueID::Sub:
    return "sub";
  case ValueID::Mul:
    return "mul";
  case ValueID::SDiv:
    return "sdiv";
  case ValueID::UDiv:
    return "udiv";
  case ValueID::SRem:
    return "srem";
  case ValueID::URem:
    return "urem";
  case ValueID::And:
    return "and";
  case ValueID::Or:
    return "or";
  case ValueID::Xor:
    return "xor";
  case ValueID::Shl:
    return "shl";
  case ValueID::LShr:
    return "lshr";
  case ValueID::AShr:
    return "ashr";
  case ValueID::FAdd:
    return "fadd";
  case ValueID::FSub:
    return "fsub";
  case ValueID::FMul:
    return "fmul";
  case ValueID::FDiv:
    return "fdiv";
  case ValueID::Load:
    return "load";
  case ValueID::Store:
    return "store";
  case ValueID::Gep:
    return "gep";
  case ValueID::InsertElement:
    return "insertelement";
  case ValueID::ExtractElement:
    return "extractelement";
  case ValueID::ShuffleVector:
    return "shufflevector";
  case ValueID::ICmp:
    return "icmp";
  case ValueID::Select:
    return "select";
  case ValueID::SExt:
    return "sext";
  case ValueID::ZExt:
    return "zext";
  case ValueID::Trunc:
    return "trunc";
  case ValueID::SIToFP:
    return "sitofp";
  case ValueID::FPToSI:
    return "fptosi";
  case ValueID::Phi:
    return "phi";
  case ValueID::Br:
    return "br";
  case ValueID::Ret:
    return "ret";
  default:
    lslp_unreachable("not an instruction opcode");
  }
}

const char *Instruction::getOpcodeName() const {
  return getOpcodeName(getOpcode());
}

bool Instruction::isCommutative() const {
  return BinaryOperator::isCommutativeOpcode(getOpcode());
}

void Instruction::eraseFromParent() {
  assert(Parent && "instruction has no parent");
  assert(!hasUses() && "erasing an instruction that is still used");
  Parent->erase(this);
}

void Instruction::moveBefore(Instruction *Other) {
  assert(Parent && Other->getParent() && "both must be in blocks");
  std::unique_ptr<Instruction> Owned = Parent->detach(this);
  Other->getParent()->insertBefore(Owned.release(), Other);
}

bool Instruction::comesBefore(const Instruction *Other) const {
  assert(Parent && Parent == Other->Parent &&
         "comesBefore requires a shared parent block");
  return Parent->comesBefore(this, Other);
}

//===----------------------------------------------------------------------===//
// BinaryOperator
//===----------------------------------------------------------------------===//

bool BinaryOperator::isCommutativeOpcode(Opcode Opc) {
  switch (Opc) {
  case ValueID::Add:
  case ValueID::Mul:
  case ValueID::And:
  case ValueID::Or:
  case ValueID::Xor:
  // Fast-math: treated as commutative, as in the paper's -ffast-math setup.
  case ValueID::FAdd:
  case ValueID::FMul:
    return true;
  default:
    return false;
  }
}

BinaryOperator::BinaryOperator(Opcode Opc, Value *LHS, Value *RHS,
                               std::string Name)
    : Instruction(Opc, LHS->getType(), std::move(Name)) {
  assert(LHS->getType() == RHS->getType() &&
         "binary operator operand types must match");
  assert(LHS->getType()->getScalarType()->isIntegerTy() ||
         LHS->getType()->getScalarType()->isFloatingPointTy());
  addOperand(LHS);
  addOperand(RHS);
}

BinaryOperator *BinaryOperator::create(Opcode Opc, Value *LHS, Value *RHS,
                                       std::string Name) {
  assert(Opc >= ValueID::Add && Opc <= ValueID::FDiv && "not a binary opcode");
  return new BinaryOperator(Opc, LHS, RHS, std::move(Name));
}

//===----------------------------------------------------------------------===//
// ICmpInst
//===----------------------------------------------------------------------===//

ICmpInst::ICmpInst(Predicate Pred, Value *LHS, Value *RHS, std::string Name)
    : Instruction(ValueID::ICmp, LHS->getContext().getInt1Ty(),
                  std::move(Name)),
      Pred(Pred) {
  assert(LHS->getType() == RHS->getType() && "icmp operand types must match");
  assert(LHS->getType()->isIntegerTy() || LHS->getType()->isPointerTy());
  addOperand(LHS);
  addOperand(RHS);
}

ICmpInst *ICmpInst::create(Predicate Pred, Value *LHS, Value *RHS,
                           std::string Name) {
  return new ICmpInst(Pred, LHS, RHS, std::move(Name));
}

const char *ICmpInst::getPredicateName(Predicate Pred) {
  switch (Pred) {
  case EQ:
    return "eq";
  case NE:
    return "ne";
  case SLT:
    return "slt";
  case SLE:
    return "sle";
  case SGT:
    return "sgt";
  case SGE:
    return "sge";
  case ULT:
    return "ult";
  case ULE:
    return "ule";
  case UGT:
    return "ugt";
  case UGE:
    return "uge";
  }
  lslp_unreachable("covered switch");
}

//===----------------------------------------------------------------------===//
// SelectInst
//===----------------------------------------------------------------------===//

SelectInst::SelectInst(Value *Cond, Value *TrueVal, Value *FalseVal,
                       std::string Name)
    : Instruction(ValueID::Select, TrueVal->getType(), std::move(Name)) {
  assert(isValidCondition(Cond->getType(), TrueVal->getType()) &&
         "select condition must be i1 or a matching <N x i1>");
  assert(TrueVal->getType() == FalseVal->getType() &&
         "select arm types must match");
  addOperand(Cond);
  addOperand(TrueVal);
  addOperand(FalseVal);
}

bool SelectInst::isValidCondition(const Type *CondTy, const Type *ArmTy) {
  if (const auto *IT = dyn_cast<IntegerType>(CondTy))
    return IT->getBitWidth() == 1;
  // A vector condition selects per lane: <N x i1> with N matching the arm
  // vector's lane count.
  const auto *CondVT = dyn_cast<VectorType>(CondTy);
  const auto *ArmVT = dyn_cast<VectorType>(ArmTy);
  if (!CondVT || !ArmVT)
    return false;
  const auto *EltTy = dyn_cast<IntegerType>(CondVT->getElementType());
  return EltTy && EltTy->getBitWidth() == 1 &&
         CondVT->getNumElements() == ArmVT->getNumElements();
}

SelectInst *SelectInst::create(Value *Cond, Value *TrueVal, Value *FalseVal,
                               std::string Name) {
  return new SelectInst(Cond, TrueVal, FalseVal, std::move(Name));
}

//===----------------------------------------------------------------------===//
// Memory instructions
//===----------------------------------------------------------------------===//

LoadInst::LoadInst(Type *AccessTy, Value *Ptr, std::string Name)
    : Instruction(ValueID::Load, AccessTy, std::move(Name)) {
  assert(Ptr->getType()->isPointerTy() && "load pointer must be ptr-typed");
  assert(AccessTy->isFirstClassTy() && "invalid load type");
  addOperand(Ptr);
}

LoadInst *LoadInst::create(Type *AccessTy, Value *Ptr, std::string Name) {
  return new LoadInst(AccessTy, Ptr, std::move(Name));
}

StoreInst::StoreInst(Value *Val, Value *Ptr)
    : Instruction(ValueID::Store, Val->getContext().getVoidTy()) {
  assert(Ptr->getType()->isPointerTy() && "store pointer must be ptr-typed");
  assert(Val->getType()->isFirstClassTy() && "invalid store value type");
  addOperand(Val);
  addOperand(Ptr);
}

StoreInst *StoreInst::create(Value *Val, Value *Ptr) {
  return new StoreInst(Val, Ptr);
}

GEPInst::GEPInst(Type *ElemTy, Value *Base, Value *Index, std::string Name)
    : Instruction(ValueID::Gep, Base->getContext().getPtrTy(),
                  std::move(Name)),
      ElemTy(ElemTy) {
  assert(Base->getType()->isPointerTy() && "gep base must be ptr-typed");
  assert(Index->getType()->isIntegerTy() && "gep index must be an integer");
  addOperand(Base);
  addOperand(Index);
}

GEPInst *GEPInst::create(Type *ElemTy, Value *Base, Value *Index,
                         std::string Name) {
  return new GEPInst(ElemTy, Base, Index, std::move(Name));
}

//===----------------------------------------------------------------------===//
// Vector instructions
//===----------------------------------------------------------------------===//

InsertElementInst::InsertElementInst(Value *Vec, Value *Elt, Value *Index,
                                     std::string Name)
    : Instruction(ValueID::InsertElement, Vec->getType(), std::move(Name)) {
  auto *VT = cast<VectorType>(Vec->getType());
  assert(VT->getElementType() == Elt->getType() &&
         "inserted element type mismatch");
  (void)VT;
  assert(Index->getType()->isIntegerTy() && "lane index must be an integer");
  addOperand(Vec);
  addOperand(Elt);
  addOperand(Index);
}

InsertElementInst *InsertElementInst::create(Value *Vec, Value *Elt,
                                             Value *Index, std::string Name) {
  return new InsertElementInst(Vec, Elt, Index, std::move(Name));
}

ExtractElementInst::ExtractElementInst(Value *Vec, Value *Index,
                                       std::string Name)
    : Instruction(ValueID::ExtractElement,
                  cast<VectorType>(Vec->getType())->getElementType(),
                  std::move(Name)) {
  assert(Index->getType()->isIntegerTy() && "lane index must be an integer");
  addOperand(Vec);
  addOperand(Index);
}

ExtractElementInst *ExtractElementInst::create(Value *Vec, Value *Index,
                                               std::string Name) {
  return new ExtractElementInst(Vec, Index, std::move(Name));
}

ShuffleVectorInst::ShuffleVectorInst(Value *V1, Value *V2,
                                     std::vector<int> Mask, Type *ResTy,
                                     std::string Name)
    : Instruction(ValueID::ShuffleVector, ResTy, std::move(Name)),
      Mask(std::move(Mask)) {
  addOperand(V1);
  addOperand(V2);
}

ShuffleVectorInst *ShuffleVectorInst::create(Value *V1, Value *V2,
                                             std::vector<int> Mask,
                                             std::string Name) {
  auto *SrcTy = cast<VectorType>(V1->getType());
  assert(V2->getType() == SrcTy && "shuffle inputs must share their type");
  assert(!Mask.empty() && "empty shuffle mask");
  unsigned Combined = 2 * SrcTy->getNumElements();
  for (int M : Mask) {
    assert(M >= -1 && M < static_cast<int>(Combined) &&
           "shuffle mask lane out of range");
    (void)M;
  }
  (void)Combined;
  Type *ResTy = SrcTy->getContext().getVectorTy(
      SrcTy->getElementType(), static_cast<unsigned>(Mask.size()));
  return new ShuffleVectorInst(V1, V2, std::move(Mask), ResTy,
                               std::move(Name));
}

//===----------------------------------------------------------------------===//
// CastInst
//===----------------------------------------------------------------------===//

bool CastInst::castIsValid(Opcode Opc, Type *SrcTy, Type *DestTy) {
  // Vector casts must preserve the lane count.
  const auto *SrcVT = dyn_cast<VectorType>(SrcTy);
  const auto *DestVT = dyn_cast<VectorType>(DestTy);
  if ((SrcVT == nullptr) != (DestVT == nullptr))
    return false;
  if (SrcVT && SrcVT->getNumElements() != DestVT->getNumElements())
    return false;
  Type *Src = SrcTy->getScalarType();
  Type *Dest = DestTy->getScalarType();
  switch (Opc) {
  case ValueID::SExt:
  case ValueID::ZExt: {
    const auto *SI = dyn_cast<IntegerType>(Src);
    const auto *DI = dyn_cast<IntegerType>(Dest);
    return SI && DI && DI->getBitWidth() > SI->getBitWidth();
  }
  case ValueID::Trunc: {
    const auto *SI = dyn_cast<IntegerType>(Src);
    const auto *DI = dyn_cast<IntegerType>(Dest);
    return SI && DI && DI->getBitWidth() < SI->getBitWidth();
  }
  case ValueID::SIToFP:
    return Src->isIntegerTy() && Dest->isFloatingPointTy();
  case ValueID::FPToSI:
    return Src->isFloatingPointTy() && Dest->isIntegerTy();
  default:
    return false;
  }
}

CastInst::CastInst(Opcode Opc, Value *Src, Type *DestTy, std::string Name)
    : Instruction(Opc, DestTy, std::move(Name)) {
  assert(castIsValid(Opc, Src->getType(), DestTy) && "invalid cast");
  addOperand(Src);
}

CastInst *CastInst::create(Opcode Opc, Value *Src, Type *DestTy,
                           std::string Name) {
  assert(isCastOpcode(Opc) && "not a cast opcode");
  return new CastInst(Opc, Src, DestTy, std::move(Name));
}

//===----------------------------------------------------------------------===//
// Control flow
//===----------------------------------------------------------------------===//

PHINode::PHINode(Type *Ty, std::string Name)
    : Instruction(ValueID::Phi, Ty, std::move(Name)) {}

PHINode *PHINode::create(Type *Ty, std::string Name) {
  return new PHINode(Ty, std::move(Name));
}

BasicBlock *PHINode::getIncomingBlock(unsigned I) const {
  return cast<BasicBlock>(getOperand(2 * I + 1));
}

void PHINode::addIncoming(Value *Val, BasicBlock *BB) {
  assert(Val->getType() == getType() && "phi incoming value type mismatch");
  addOperand(Val);
  addOperand(BB);
}

void PHINode::removeIncoming(unsigned I) {
  assert(I < getNumIncoming() && "incoming index out of range");
  // Remove the block operand first so the value's index stays valid.
  removeOperand(2 * I + 1);
  removeOperand(2 * I);
}

Value *PHINode::getIncomingValueForBlock(const BasicBlock *BB) const {
  for (unsigned I = 0, E = getNumIncoming(); I != E; ++I)
    if (getIncomingBlock(I) == BB)
      return getIncomingValue(I);
  return nullptr;
}

BranchInst::BranchInst(BasicBlock *Dest)
    : Instruction(ValueID::Br, Dest->getContext().getVoidTy()) {
  addOperand(Dest);
}

BranchInst::BranchInst(Value *Cond, BasicBlock *TrueDest,
                       BasicBlock *FalseDest)
    : Instruction(ValueID::Br, Cond->getContext().getVoidTy()) {
  assert(Cond->getType()->isIntegerTy() &&
         cast<IntegerType>(Cond->getType())->getBitWidth() == 1 &&
         "branch condition must be i1");
  addOperand(Cond);
  addOperand(TrueDest);
  addOperand(FalseDest);
}

BranchInst *BranchInst::create(BasicBlock *Dest) {
  return new BranchInst(Dest);
}

BranchInst *BranchInst::create(Value *Cond, BasicBlock *TrueDest,
                               BasicBlock *FalseDest) {
  return new BranchInst(Cond, TrueDest, FalseDest);
}

BasicBlock *BranchInst::getSuccessor(unsigned I) const {
  assert(I < getNumSuccessors() && "successor index out of range");
  return cast<BasicBlock>(getOperand(isConditional() ? I + 1 : I));
}

ReturnInst::ReturnInst(Context &Ctx, Value *RetVal)
    : Instruction(ValueID::Ret, Ctx.getVoidTy()) {
  if (RetVal)
    addOperand(RetVal);
}

ReturnInst *ReturnInst::create(Context &Ctx, Value *RetVal) {
  return new ReturnInst(Ctx, RetVal);
}
