//===- ir/Printer.cpp - Textual IR printing --------------------------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ir/Printer.h"

#include "ir/BasicBlock.h"
#include "ir/Constants.h"
#include "ir/Function.h"
#include "ir/Instruction.h"
#include "ir/Module.h"
#include "support/Debug.h"
#include "support/OStream.h"

#include <cstdio>
#include <cstdlib>
#include <map>

using namespace lslp;

namespace {

/// Assigns slot numbers to unnamed values within one function and renders
/// instruction lines.
class FunctionPrinter {
public:
  explicit FunctionPrinter(const Function &F) : F(F) { assignSlots(); }

  void print(OStream &OS) {
    OS << "define " << F.getReturnType()->getName() << " @" << F.getName()
       << "(";
    for (unsigned I = 0, E = F.getNumArgs(); I != E; ++I) {
      if (I != 0)
        OS << ", ";
      const Argument *A = F.getArg(I);
      OS << A->getType()->getName() << " " << ref(A);
    }
    OS << ") {\n";
    bool FirstBlock = true;
    for (const auto &BB : F) {
      if (!FirstBlock)
        OS << "\n";
      FirstBlock = false;
      OS << BB->getName() << ":\n";
      for (const auto &I : *BB)
        OS << "  " << line(*I) << "\n";
    }
    OS << "}\n";
  }

  /// Renders one instruction line.
  std::string line(const Instruction &I) {
    std::string S;
    if (!I.getType()->isVoidTy())
      S += ref(&I) + " = ";
    switch (I.getOpcode()) {
    case ValueID::Load: {
      const auto &L = cast<LoadInst>(I);
      S += "load " + L.getAccessType()->getName() + ", ptr " +
           ref(L.getPointerOperand());
      break;
    }
    case ValueID::Store: {
      const auto &St = cast<StoreInst>(I);
      S += "store " + St.getAccessType()->getName() + " " +
           ref(St.getValueOperand()) + ", ptr " + ref(St.getPointerOperand());
      break;
    }
    case ValueID::Gep: {
      const auto &G = cast<GEPInst>(I);
      S += "gep " + G.getElementType()->getName() + ", ptr " +
           ref(G.getBaseOperand()) + ", " +
           G.getIndexOperand()->getType()->getName() + " " +
           ref(G.getIndexOperand());
      break;
    }
    case ValueID::SExt:
    case ValueID::ZExt:
    case ValueID::Trunc:
    case ValueID::SIToFP:
    case ValueID::FPToSI: {
      const auto &C = cast<CastInst>(I);
      S += std::string(C.getOpcodeName()) + " " + C.getSrcType()->getName() +
           " " + ref(C.getSourceOperand()) + " to " +
           C.getDestType()->getName();
      break;
    }
    case ValueID::ICmp: {
      const auto &C = cast<ICmpInst>(I);
      S += std::string("icmp ") + ICmpInst::getPredicateName(C.getPredicate()) +
           " " + C.getLHS()->getType()->getName() + " " + ref(C.getLHS()) +
           ", " + ref(C.getRHS());
      break;
    }
    case ValueID::Select: {
      const auto &Sel = cast<SelectInst>(I);
      S += "select " + Sel.getCondition()->getType()->getName() + " " +
           ref(Sel.getCondition()) + ", " +
           Sel.getType()->getName() + " " + ref(Sel.getTrueValue()) + ", " +
           Sel.getType()->getName() + " " + ref(Sel.getFalseValue());
      break;
    }
    case ValueID::InsertElement: {
      const auto &IE = cast<InsertElementInst>(I);
      S += "insertelement " + IE.getType()->getName() + " " +
           ref(IE.getVectorOperand()) + ", " +
           IE.getElementOperand()->getType()->getName() + " " +
           ref(IE.getElementOperand()) + ", i32 " + ref(IE.getIndexOperand());
      break;
    }
    case ValueID::ExtractElement: {
      const auto &EE = cast<ExtractElementInst>(I);
      S += "extractelement " + EE.getVectorOperand()->getType()->getName() +
           " " + ref(EE.getVectorOperand()) + ", i32 " +
           ref(EE.getIndexOperand());
      break;
    }
    case ValueID::ShuffleVector: {
      const auto &SV = cast<ShuffleVectorInst>(I);
      S += "shufflevector " + SV.getFirstVector()->getType()->getName() + " " +
           ref(SV.getFirstVector()) + ", " +
           SV.getSecondVector()->getType()->getName() + " " +
           ref(SV.getSecondVector()) + ", [";
      const auto &Mask = SV.getMask();
      for (size_t MI = 0; MI < Mask.size(); ++MI) {
        if (MI)
          S += ", ";
        S += std::to_string(Mask[MI]);
      }
      S += "]";
      break;
    }
    case ValueID::Phi: {
      const auto &P = cast<PHINode>(I);
      S += "phi " + P.getType()->getName() + " ";
      for (unsigned PI = 0, PE = P.getNumIncoming(); PI != PE; ++PI) {
        if (PI)
          S += ", ";
        S += "[ " + ref(P.getIncomingValue(PI)) + ", %" +
             P.getIncomingBlock(PI)->getName() + " ]";
      }
      break;
    }
    case ValueID::Br: {
      const auto &B = cast<BranchInst>(I);
      if (B.isConditional())
        S += "br i1 " + ref(B.getCondition()) + ", label %" +
             B.getSuccessor(0)->getName() + ", label %" +
             B.getSuccessor(1)->getName();
      else
        S += "br label %" + B.getSuccessor(0)->getName();
      break;
    }
    case ValueID::Ret: {
      const auto &R = cast<ReturnInst>(I);
      if (Value *RV = R.getReturnValue())
        S += "ret " + RV->getType()->getName() + " " + ref(RV);
      else
        S += "ret void";
      break;
    }
    default: {
      // Binary operators share one format: opcode type lhs, rhs.
      assert(I.isBinaryOp() && "unhandled instruction in printer");
      S += std::string(I.getOpcodeName()) + " " + I.getType()->getName() +
           " " + ref(I.getOperand(0)) + ", " + ref(I.getOperand(1));
      break;
    }
    }
    return S;
  }

  /// Renders a value reference.
  std::string ref(const Value *V) {
    if (const auto *CI = dyn_cast<ConstantInt>(V))
      return std::to_string(CI->getSExtValue());
    if (const auto *CF = dyn_cast<ConstantFP>(V)) {
      // Shortest representation that parses back to the exact same bits,
      // so printing and re-parsing a module is lossless.
      char Buf[64];
      for (int Prec = 6; Prec <= 17; ++Prec) {
        std::snprintf(Buf, sizeof(Buf), "%.*g", Prec, CF->getValue());
        if (std::strtod(Buf, nullptr) == CF->getValue())
          break;
      }
      std::string Str(Buf);
      // Guarantee FP constants are lexically distinct from integers.
      if (Str.find_first_of(".einf") == std::string::npos)
        Str += ".0";
      return Str;
    }
    if (const auto *CV = dyn_cast<ConstantVector>(V)) {
      std::string S = "<";
      for (unsigned I = 0, E = CV->getNumElements(); I != E; ++I) {
        if (I)
          S += ", ";
        S += CV->getElement(I)->getType()->getName() + " " +
             ref(CV->getElement(I));
      }
      return S + ">";
    }
    if (isa<UndefValue>(V))
      return "undef";
    if (isa<GlobalArray>(V))
      return "@" + V->getName();
    if (V->hasName())
      return "%" + V->getName();
    auto It = Slots.find(V);
    if (It != Slots.end())
      return "%" + std::to_string(It->second);
    return "%<badref>";
  }

private:
  void assignSlots() {
    unsigned Slot = 0;
    for (unsigned I = 0, E = F.getNumArgs(); I != E; ++I)
      if (!F.getArg(I)->hasName())
        Slots[F.getArg(I)] = Slot++;
    for (const auto &BB : F)
      for (const auto &I : *BB)
        if (!I->hasName() && !I->getType()->isVoidTy())
          Slots[I.get()] = Slot++;
  }

  const Function &F;
  std::map<const Value *, unsigned> Slots;
};

} // namespace

void lslp::printFunction(OStream &OS, const Function &F) {
  FunctionPrinter(F).print(OS);
}

void lslp::printModule(OStream &OS, const Module &M) {
  OS << "module \"" << M.getName() << "\"\n\n";
  for (const auto &G : M.globals())
    OS << "global @" << G->getName() << " = [" << G->getNumElements() << " x "
       << G->getElementType()->getName() << "]\n";
  if (!M.globals().empty())
    OS << "\n";
  bool First = true;
  for (const auto &F : M.functions()) {
    if (!First)
      OS << "\n";
    First = false;
    printFunction(OS, *F);
  }
}

std::string lslp::moduleToString(const Module &M) {
  std::string Buf;
  StringOStream OS(Buf);
  printModule(OS, M);
  return Buf;
}

std::string lslp::functionToString(const Function &F) {
  std::string Buf;
  StringOStream OS(Buf);
  printFunction(OS, F);
  return Buf;
}

std::string lslp::instructionToString(const Instruction &I) {
  assert(I.getParent() && I.getParent()->getParent() &&
         "instruction must be in a function");
  FunctionPrinter FP(*I.getParent()->getParent());
  return FP.line(I);
}

std::string lslp::valueRefToString(const Value &V) {
  if (const auto *I = dyn_cast<Instruction>(&V))
    if (I->getParent() && I->getParent()->getParent()) {
      FunctionPrinter FP(*I->getParent()->getParent());
      return FP.ref(&V);
    }
  if (const auto *CI = dyn_cast<ConstantInt>(&V))
    return std::to_string(CI->getSExtValue());
  if (isa<UndefValue>(&V))
    return "undef";
  if (isa<GlobalArray>(&V))
    return "@" + V.getName();
  return V.hasName() ? "%" + V.getName() : "%<anon>";
}
