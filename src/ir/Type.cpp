//===- ir/Type.cpp - IR type system ---------------------------------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ir/Type.h"

#include "support/Debug.h"

#include <string>

using namespace lslp;

unsigned Type::getSizeInBytes() const {
  switch (Kind) {
  case VoidTyKind:
  case LabelTyKind:
    lslp_unreachable("type has no in-memory size");
  case IntegerTyKind:
    return (static_cast<const IntegerType *>(this)->getBitWidth() + 7) / 8;
  case FloatTyKind:
    return 4;
  case DoubleTyKind:
    return 8;
  case PointerTyKind:
    return 8;
  case VectorTyKind: {
    const auto *VT = static_cast<const VectorType *>(this);
    return VT->getElementType()->getSizeInBytes() * VT->getNumElements();
  }
  }
  lslp_unreachable("covered switch");
}

Type *Type::getScalarType() {
  if (auto *VT = dyn_cast<VectorType>(this))
    return VT->getElementType();
  return this;
}

std::string Type::getName() const {
  // Built with append rather than operator+ chains: the temporaries the
  // chains create trip GCC 12's -Wrestrict false positive (PR 105329)
  // when inlined, which -Werror builds cannot tolerate.
  switch (Kind) {
  case VoidTyKind:
    return "void";
  case LabelTyKind:
    return "label";
  case IntegerTyKind: {
    std::string Name = "i";
    Name += std::to_string(
        static_cast<const IntegerType *>(this)->getBitWidth());
    return Name;
  }
  case FloatTyKind:
    return "float";
  case DoubleTyKind:
    return "double";
  case PointerTyKind:
    return "ptr";
  case VectorTyKind: {
    const auto *VT = static_cast<const VectorType *>(this);
    std::string Name = "<";
    Name += std::to_string(VT->getNumElements());
    Name += " x ";
    Name += VT->getElementType()->getName();
    Name += '>';
    return Name;
  }
  }
  lslp_unreachable("covered switch");
}
