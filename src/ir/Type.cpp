//===- ir/Type.cpp - IR type system ---------------------------------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ir/Type.h"

#include "support/Debug.h"

#include <string>

using namespace lslp;

unsigned Type::getSizeInBytes() const {
  switch (Kind) {
  case VoidTyKind:
  case LabelTyKind:
    lslp_unreachable("type has no in-memory size");
  case IntegerTyKind:
    return (static_cast<const IntegerType *>(this)->getBitWidth() + 7) / 8;
  case FloatTyKind:
    return 4;
  case DoubleTyKind:
    return 8;
  case PointerTyKind:
    return 8;
  case VectorTyKind: {
    const auto *VT = static_cast<const VectorType *>(this);
    return VT->getElementType()->getSizeInBytes() * VT->getNumElements();
  }
  }
  lslp_unreachable("covered switch");
}

Type *Type::getScalarType() {
  if (auto *VT = dyn_cast<VectorType>(this))
    return VT->getElementType();
  return this;
}

std::string Type::getName() const {
  switch (Kind) {
  case VoidTyKind:
    return "void";
  case LabelTyKind:
    return "label";
  case IntegerTyKind:
    return "i" + std::to_string(
                     static_cast<const IntegerType *>(this)->getBitWidth());
  case FloatTyKind:
    return "float";
  case DoubleTyKind:
    return "double";
  case PointerTyKind:
    return "ptr";
  case VectorTyKind: {
    const auto *VT = static_cast<const VectorType *>(this);
    return "<" + std::to_string(VT->getNumElements()) + " x " +
           VT->getElementType()->getName() + ">";
  }
  }
  lslp_unreachable("covered switch");
}
