//===- ir/Instruction.h - Instruction class hierarchy -----------*- C++ -*-===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Instruction base class and all concrete instruction classes. The
/// instruction set is the subset of LLVM IR the SLP/LSLP algorithms and the
/// evaluation kernels need: the full commutative/non-commutative binary
/// operator family, memory access through opaque pointers with a
/// single-index gep, vector element manipulation, and enough control flow
/// (icmp/br/phi/ret/select) to express loops.
///
//===----------------------------------------------------------------------===//

#ifndef LSLP_IR_INSTRUCTION_H
#define LSLP_IR_INSTRUCTION_H

#include "ir/Constants.h"
#include "ir/Value.h"

#include <string>
#include <vector>

namespace lslp {

class BasicBlock;

/// Base class of all instructions. Owned by their parent BasicBlock.
class Instruction : public User {
public:
  using Opcode = ValueID;

  Opcode getOpcode() const { return getValueID(); }

  /// Returns the textual mnemonic ("add", "load", ...).
  const char *getOpcodeName() const;
  static const char *getOpcodeName(Opcode Opc);

  BasicBlock *getParent() const { return Parent; }
  void setParent(BasicBlock *BB) { Parent = BB; }

  /// \name Classification.
  /// @{
  bool isBinaryOp() const {
    return getOpcode() >= ValueID::Add && getOpcode() <= ValueID::FDiv;
  }
  /// True if swapping the two operands preserves semantics. FAdd/FMul are
  /// commutative under the fast-math assumption the paper evaluates with.
  bool isCommutative() const;
  bool isTerminator() const {
    return getOpcode() == ValueID::Br || getOpcode() == ValueID::Ret;
  }
  bool mayReadFromMemory() const { return getOpcode() == ValueID::Load; }
  bool mayWriteToMemory() const { return getOpcode() == ValueID::Store; }
  bool mayReadOrWriteMemory() const {
    return mayReadFromMemory() || mayWriteToMemory();
  }
  /// @}

  /// Unlinks from the parent block and deletes the instruction. All uses
  /// must already have been removed/replaced.
  void eraseFromParent();

  /// Drops all operand references (use-list edges). Used during bulk
  /// teardown of functions, where values die in arbitrary order.
  void dropAllReferences() { dropAllOperands(); }

  /// Unlinks from the current block and re-inserts immediately before
  /// \p Other (which may be in a different block).
  void moveBefore(Instruction *Other);

  /// Returns true if this instruction appears strictly before \p Other in
  /// their (shared) parent block.
  bool comesBefore(const Instruction *Other) const;

  static bool classof(const Value *V) {
    return V->getValueID() >= FirstInstID && V->getValueID() <= LastInstID;
  }

protected:
  Instruction(Opcode Opc, Type *Ty, std::string Name = "")
      : User(Opc, Ty, std::move(Name)) {}

private:
  friend class BasicBlock;

  BasicBlock *Parent = nullptr;
  /// Position cache maintained lazily by BasicBlock::renumber().
  mutable unsigned OrderIdx = 0;
};

/// A two-operand arithmetic/logical operator.
class BinaryOperator : public Instruction {
public:
  /// Creates (but does not insert) a binary operator. Both operands must
  /// share their type, which becomes the result type.
  static BinaryOperator *create(Opcode Opc, Value *LHS, Value *RHS,
                                std::string Name = "");

  Value *getLHS() const { return getOperand(0); }
  Value *getRHS() const { return getOperand(1); }

  /// True for the opcodes the vectorizer may reorder operands of.
  static bool isCommutativeOpcode(Opcode Opc);

  static bool classof(const Value *V) {
    return V->getValueID() >= ValueID::Add && V->getValueID() <= ValueID::FDiv;
  }

private:
  BinaryOperator(Opcode Opc, Value *LHS, Value *RHS, std::string Name);
};

/// Integer comparison producing i1.
class ICmpInst : public Instruction {
public:
  enum Predicate : uint8_t { EQ, NE, SLT, SLE, SGT, SGE, ULT, ULE, UGT, UGE };

  static ICmpInst *create(Predicate Pred, Value *LHS, Value *RHS,
                          std::string Name = "");

  Predicate getPredicate() const { return Pred; }
  Value *getLHS() const { return getOperand(0); }
  Value *getRHS() const { return getOperand(1); }

  static const char *getPredicateName(Predicate Pred);

  static bool classof(const Value *V) {
    return V->getValueID() == ValueID::ICmp;
  }

private:
  ICmpInst(Predicate Pred, Value *LHS, Value *RHS, std::string Name);

  Predicate Pred;
};

/// Select: Cond ? TrueVal : FalseVal. The condition is either a scalar i1
/// (whole-value select) or an <N x i1> matching the arms' lane count
/// (per-lane blend, the vectorized form).
class SelectInst : public Instruction {
public:
  static SelectInst *create(Value *Cond, Value *TrueVal, Value *FalseVal,
                            std::string Name = "");

  Value *getCondition() const { return getOperand(0); }
  Value *getTrueValue() const { return getOperand(1); }
  Value *getFalseValue() const { return getOperand(2); }

  /// True when \p CondTy is a legal condition type for arms of \p ArmTy:
  /// i1, or <N x i1> with N matching \p ArmTy's lane count.
  static bool isValidCondition(const Type *CondTy, const Type *ArmTy);

  static bool classof(const Value *V) {
    return V->getValueID() == ValueID::Select;
  }

private:
  SelectInst(Value *Cond, Value *TrueVal, Value *FalseVal, std::string Name);
};

/// A load of \p AccessTy through an opaque pointer.
class LoadInst : public Instruction {
public:
  static LoadInst *create(Type *AccessTy, Value *Ptr, std::string Name = "");

  Value *getPointerOperand() const { return getOperand(0); }
  Type *getAccessType() const { return getType(); }

  static bool classof(const Value *V) {
    return V->getValueID() == ValueID::Load;
  }

private:
  LoadInst(Type *AccessTy, Value *Ptr, std::string Name);
};

/// A store through an opaque pointer. Produces void.
class StoreInst : public Instruction {
public:
  static StoreInst *create(Value *Val, Value *Ptr);

  Value *getValueOperand() const { return getOperand(0); }
  Value *getPointerOperand() const { return getOperand(1); }
  Type *getAccessType() const { return getValueOperand()->getType(); }

  static bool classof(const Value *V) {
    return V->getValueID() == ValueID::Store;
  }

private:
  StoreInst(Value *Val, Value *Ptr);
};

/// Single-index pointer arithmetic: result = Base + Index * sizeof(ElemTy).
class GEPInst : public Instruction {
public:
  static GEPInst *create(Type *ElemTy, Value *Base, Value *Index,
                         std::string Name = "");

  Type *getElementType() const { return ElemTy; }
  Value *getBaseOperand() const { return getOperand(0); }
  Value *getIndexOperand() const { return getOperand(1); }

  static bool classof(const Value *V) {
    return V->getValueID() == ValueID::Gep;
  }

private:
  GEPInst(Type *ElemTy, Value *Base, Value *Index, std::string Name);

  Type *ElemTy;
};

/// Inserts a scalar into a vector lane: operands (vec, elt, lane-index).
class InsertElementInst : public Instruction {
public:
  static InsertElementInst *create(Value *Vec, Value *Elt, Value *Index,
                                   std::string Name = "");

  Value *getVectorOperand() const { return getOperand(0); }
  Value *getElementOperand() const { return getOperand(1); }
  Value *getIndexOperand() const { return getOperand(2); }

  static bool classof(const Value *V) {
    return V->getValueID() == ValueID::InsertElement;
  }

private:
  InsertElementInst(Value *Vec, Value *Elt, Value *Index, std::string Name);
};

/// Extracts a scalar from a vector lane: operands (vec, lane-index).
class ExtractElementInst : public Instruction {
public:
  static ExtractElementInst *create(Value *Vec, Value *Index,
                                    std::string Name = "");

  Value *getVectorOperand() const { return getOperand(0); }
  Value *getIndexOperand() const { return getOperand(1); }

  static bool classof(const Value *V) {
    return V->getValueID() == ValueID::ExtractElement;
  }

private:
  ExtractElementInst(Value *Vec, Value *Index, std::string Name);
};

/// Lane permutation over the concatenation of two input vectors. A mask
/// entry of -1 produces an undef lane.
class ShuffleVectorInst : public Instruction {
public:
  static ShuffleVectorInst *create(Value *V1, Value *V2,
                                   std::vector<int> Mask,
                                   std::string Name = "");

  Value *getFirstVector() const { return getOperand(0); }
  Value *getSecondVector() const { return getOperand(1); }
  const std::vector<int> &getMask() const { return Mask; }

  static bool classof(const Value *V) {
    return V->getValueID() == ValueID::ShuffleVector;
  }

private:
  ShuffleVectorInst(Value *V1, Value *V2, std::vector<int> Mask, Type *ResTy,
                    std::string Name);

  std::vector<int> Mask;
};

/// Value conversion: sext/zext/trunc between integer widths, sitofp and
/// fptosi between integers and floating point. Works elementwise on
/// vectors (source and destination lane counts must match).
class CastInst : public Instruction {
public:
  /// Creates (unchecked only by assertions) a cast of \p Src to
  /// \p DestTy.
  static CastInst *create(Opcode Opc, Value *Src, Type *DestTy,
                          std::string Name = "");

  Value *getSourceOperand() const { return getOperand(0); }
  Type *getSrcType() const { return getSourceOperand()->getType(); }
  Type *getDestType() const { return getType(); }

  /// True for the cast opcodes.
  static bool isCastOpcode(Opcode Opc) {
    return Opc >= ValueID::SExt && Opc <= ValueID::FPToSI;
  }

  /// Validity of a cast between these types (scalar or matching-width
  /// vectors).
  static bool castIsValid(Opcode Opc, Type *SrcTy, Type *DestTy);

  static bool classof(const Value *V) {
    return isCastOpcode(V->getValueID());
  }

private:
  CastInst(Opcode Opc, Value *Src, Type *DestTy, std::string Name);
};

/// SSA phi node. Operands alternate value/block:
/// (val0, bb0, val1, bb1, ...).
class PHINode : public Instruction {
public:
  static PHINode *create(Type *Ty, std::string Name = "");

  unsigned getNumIncoming() const { return getNumOperands() / 2; }
  Value *getIncomingValue(unsigned I) const { return getOperand(2 * I); }
  BasicBlock *getIncomingBlock(unsigned I) const;
  void addIncoming(Value *Val, BasicBlock *BB);
  /// Removes the \p I-th incoming (value, block) pair.
  void removeIncoming(unsigned I);
  /// Returns the incoming value for \p BB; null if \p BB is not a
  /// predecessor recorded in this phi.
  Value *getIncomingValueForBlock(const BasicBlock *BB) const;

  static bool classof(const Value *V) {
    return V->getValueID() == ValueID::Phi;
  }

private:
  explicit PHINode(Type *Ty, std::string Name);
};

/// Conditional or unconditional branch.
class BranchInst : public Instruction {
public:
  /// Unconditional branch to \p Dest.
  static BranchInst *create(BasicBlock *Dest);
  /// Conditional branch on i1 \p Cond.
  static BranchInst *create(Value *Cond, BasicBlock *TrueDest,
                            BasicBlock *FalseDest);

  bool isConditional() const { return getNumOperands() == 3; }
  Value *getCondition() const {
    assert(isConditional() && "unconditional branch has no condition");
    return getOperand(0);
  }
  unsigned getNumSuccessors() const { return isConditional() ? 2 : 1; }
  BasicBlock *getSuccessor(unsigned I) const;

  static bool classof(const Value *V) {
    return V->getValueID() == ValueID::Br;
  }

private:
  BranchInst(Value *Cond, BasicBlock *TrueDest, BasicBlock *FalseDest);
  explicit BranchInst(BasicBlock *Dest);
};

/// Function return, with an optional value.
class ReturnInst : public Instruction {
public:
  static ReturnInst *create(Context &Ctx, Value *RetVal = nullptr);

  Value *getReturnValue() const {
    return getNumOperands() ? getOperand(0) : nullptr;
  }

  static bool classof(const Value *V) {
    return V->getValueID() == ValueID::Ret;
  }

private:
  ReturnInst(Context &Ctx, Value *RetVal);
};

} // namespace lslp

#endif // LSLP_IR_INSTRUCTION_H
