//===- ir/Function.cpp - Function and Argument ------------------------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ir/Function.h"

#include "ir/Context.h"
#include "ir/Module.h"

using namespace lslp;

Function::Function(Context &Ctx, Module *Parent, std::string Name, Type *RetTy)
    : Value(ValueID::FunctionID, Ctx.getVoidTy(), std::move(Name)),
      Parent(Parent), RetTy(RetTy) {}

Function::~Function() {
  for (const auto &BB : Blocks)
    for (const auto &I : *BB)
      I->dropAllReferences();
}

Function *Function::create(Module *Parent, std::string Name, Type *RetTy,
                           const std::vector<Type *> &ArgTypes,
                           const std::vector<std::string> &ArgNames) {
  assert(Parent && "function requires a parent module");
  assert(ArgTypes.size() == ArgNames.size() &&
         "argument type/name count mismatch");
  auto *F = new Function(Parent->getContext(), Parent, std::move(Name), RetTy);
  for (unsigned I = 0, E = static_cast<unsigned>(ArgTypes.size()); I != E; ++I)
    F->Args.emplace_back(new Argument(ArgTypes[I], ArgNames[I], I));
  Parent->addFunction(std::unique_ptr<Function>(F));
  return F;
}

Argument *Function::getArgByName(std::string_view Name) const {
  for (const auto &Arg : Args)
    if (Arg->getName() == Name)
      return Arg.get();
  return nullptr;
}

BasicBlock *Function::getBlockByName(std::string_view Name) const {
  for (const auto &BB : Blocks)
    if (BB->getName() == Name)
      return BB.get();
  return nullptr;
}

void Function::eraseBlock(BasicBlock *BB) {
  for (auto It = Blocks.begin(); It != Blocks.end(); ++It)
    if (It->get() == BB) {
      Blocks.erase(It);
      return;
    }
  assert(false && "block does not belong to this function");
}

unsigned Function::getInstructionCount() const {
  unsigned Count = 0;
  for (const auto &BB : Blocks)
    Count += static_cast<unsigned>(BB->size());
  return Count;
}

std::unique_ptr<Function>
Function::createDetached(Context &Ctx, std::string Name, Type *RetTy,
                         const std::vector<Type *> &ArgTypes,
                         const std::vector<std::string> &ArgNames) {
  assert(ArgTypes.size() == ArgNames.size() &&
         "argument type/name count mismatch");
  auto *F = new Function(Ctx, /*Parent=*/nullptr, std::move(Name), RetTy);
  for (unsigned I = 0, E = static_cast<unsigned>(ArgTypes.size()); I != E; ++I)
    F->Args.emplace_back(new Argument(ArgTypes[I], ArgNames[I], I));
  return std::unique_ptr<Function>(F);
}

void Function::takeBody(Function &Donor) {
  assert(Donor.getNumArgs() == getNumArgs() &&
         "takeBody requires matching signatures");
  for (unsigned I = 0, E = getNumArgs(); I != E; ++I) {
    assert(Donor.getArg(I)->getType() == getArg(I)->getType() &&
           "takeBody requires matching argument types");
    Donor.Args[I]->replaceAllUsesWith(Args[I].get());
  }
  // Tear down the current body the same way ~Function does: drop every
  // operand reference first so values may die in any order.
  for (const auto &BB : Blocks)
    for (const auto &I : *BB)
      I->dropAllReferences();
  Blocks.clear();
  Blocks = std::move(Donor.Blocks);
  Donor.Blocks.clear();
  for (const auto &BB : Blocks)
    BB->Parent = this;
}
