//===- ir/Cloning.h - Function cloning --------------------------*- C++ -*-===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deep-copying of function bodies. The vectorizer uses this for
/// transform-then-commit: snapshot a function into a detached clone before
/// mutating it, and Function::takeBody() the snapshot back if a resource
/// budget runs out or post-transform verification fails, leaving the
/// original scalar code byte-identical under the printer.
///
//===----------------------------------------------------------------------===//

#ifndef LSLP_IR_CLONING_H
#define LSLP_IR_CLONING_H

#include <memory>

namespace lslp {

class Function;
class Instruction;

/// Creates an unlinked copy of \p I that still references \p I's original
/// operands; the caller remaps them afterwards and inserts the clone.
/// Using the original operands keeps every create() factory's type
/// computation correct even for forward references. Loop unrolling uses
/// this to replicate a loop body instruction by instruction.
Instruction *cloneInstructionDetached(const Instruction &I);

/// Deep-copies \p F into a detached function (no parent module) with the
/// same name, signature, block structure, instruction order, operand graph
/// and value names. Constants, globals and undef operands are shared, not
/// copied. Thread-safe with respect to other functions: only shared
/// use-lists (internally locked) are touched outside \p F.
std::unique_ptr<Function> cloneFunctionDetached(const Function &F);

} // namespace lslp

#endif // LSLP_IR_CLONING_H
