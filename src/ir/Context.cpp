//===- ir/Context.cpp - Ownership of uniqued types and constants ----------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ir/Context.h"

#include "ir/Constants.h"

using namespace lslp;

Context::Context()
    : VoidTy(*this, Type::VoidTyKind), LabelTy(*this, Type::LabelTyKind),
      FloatTy(*this, Type::FloatTyKind), DoubleTy(*this, Type::DoubleTyKind),
      PtrTy(*this) {}

Context::~Context() = default;

IntegerType *Context::getIntTy(unsigned BitWidth) {
  std::lock_guard<std::mutex> Lock(InternMutex);
  auto &Slot = IntTypes[BitWidth];
  if (!Slot)
    Slot.reset(new IntegerType(*this, BitWidth));
  return Slot.get();
}

VectorType *Context::getVectorTy(Type *ElemTy, unsigned NumElems) {
  std::lock_guard<std::mutex> Lock(InternMutex);
  auto &Slot = VecTypes[{ElemTy, NumElems}];
  if (!Slot)
    Slot.reset(new VectorType(*this, ElemTy, NumElems));
  return Slot.get();
}

ConstantInt *Context::getConstantInt(IntegerType *Ty, uint64_t Value) {
  unsigned Bits = Ty->getBitWidth();
  if (Bits < 64)
    Value &= (uint64_t(1) << Bits) - 1;
  std::lock_guard<std::mutex> Lock(InternMutex);
  auto &Slot = IntConstants[{Ty, Value}];
  if (!Slot)
    Slot.reset(new ConstantInt(Ty, Value));
  return Slot.get();
}

ConstantFP *Context::getConstantFP(Type *Ty, double Value) {
  assert(Ty->isFloatingPointTy() && "getConstantFP requires an FP type");
  if (Ty->isFloatTy())
    Value = static_cast<float>(Value); // Canonicalize to float precision.
  std::lock_guard<std::mutex> Lock(InternMutex);
  auto &Slot = FPConstants[{Ty, Value}];
  if (!Slot)
    Slot.reset(new ConstantFP(Ty, Value));
  return Slot.get();
}

ConstantVector *Context::getConstantVector(
    const std::vector<Constant *> &Elements) {
  assert(Elements.size() >= 2 && "constant vector needs at least two lanes");
  Type *ElemTy = Elements[0]->getType();
  for (const Constant *C : Elements)
    assert(C->getType() == ElemTy && "mixed element types in constant vector");
  // Intern the vector type first: getVectorTy takes the same (non-
  // recursive) mutex.
  VectorType *VecTy =
      getVectorTy(ElemTy, static_cast<unsigned>(Elements.size()));
  std::lock_guard<std::mutex> Lock(InternMutex);
  auto &Slot = VecConstants[Elements];
  if (!Slot)
    Slot.reset(new ConstantVector(VecTy, Elements));
  return Slot.get();
}

UndefValue *Context::getUndef(Type *Ty) {
  assert(Ty->isFirstClassTy() && "undef requires a first-class type");
  std::lock_guard<std::mutex> Lock(InternMutex);
  auto &Slot = Undefs[Ty];
  if (!Slot)
    Slot.reset(new UndefValue(Ty));
  return Slot.get();
}
