# Acceptance gate for the diagnostics subsystem (ctest: lslpc_diag_tour).
#
# Runs `lslpc <INPUT> -early-cse --remarks=json` twice and checks that
#   1. the JSONL stream covers every remark kind the pipeline defines, and
#   2. the two streams are byte-identical (determinism contract).
#
# Usage: cmake -DLSLPC=<path> -DINPUT=<file.ll> -P check_remarks.cmake

foreach(RUN 1 2)
  execute_process(
    COMMAND ${LSLPC} ${INPUT} -early-cse --remarks=json -no-print
    RESULT_VARIABLE RC
    OUTPUT_VARIABLE STDOUT_${RUN}
    ERROR_VARIABLE REMARKS_${RUN})
  if(NOT RC EQUAL 0)
    message(FATAL_ERROR "lslpc failed (exit ${RC}) on run ${RUN}")
  endif()
endforeach()

if(NOT REMARKS_1 STREQUAL REMARKS_2)
  message(FATAL_ERROR "remark stream is nondeterministic: two runs differ")
endif()

string(REGEX MATCHALL "\"kind\":\"[a-z-]+\"" KIND_FIELDS "${REMARKS_1}")
list(REMOVE_DUPLICATES KIND_FIELDS)
list(LENGTH KIND_FIELDS NUM_KINDS)

set(REQUIRED
  seed-found seed-rejected node-built gather-fallback multinode-formed
  lookahead-score reorder-choice cost-node cost-accepted cost-rejected
  scheduler-bailout reduction-found cse-hit)
foreach(KIND ${REQUIRED})
  if(NOT KIND_FIELDS MATCHES "\"kind\":\"${KIND}\"")
    message(FATAL_ERROR "remark kind '${KIND}' missing from ${INPUT} stream")
  endif()
endforeach()

message(STATUS
  "remark stream deterministic, ${NUM_KINDS} distinct kinds covered")
