//===- tools/lslpd.cpp - Compile-server daemon driver --------------------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// lslpd: the long-lived compile server. Binds a unix-domain socket, then
// serves lslpc --connect clients until SIGTERM/SIGINT (graceful drain) or
// a shutdown control request:
//
//   lslpd --socket=/tmp/lslpd.sock                 # serve until SIGTERM
//   lslpd --socket=/tmp/lslpd.sock --jobs=8        # 8 compile workers
//   lslpc input.ll --connect=/tmp/lslpd.sock       # ... from another shell
//   lslpc --connect=/tmp/lslpd.sock --daemon-stats # cache/queue counters
//
// See DESIGN.md "Serving architecture" and TESTING.md "Daemon-mode
// triage".
//
//===----------------------------------------------------------------------===//

#include "server/Daemon.h"
#include "support/CrashHandler.h"
#include "support/OStream.h"
#include "support/StringUtil.h"

#include <csignal>
#include <cstdio>
#include <string>

using namespace lslp;
using namespace lslp::server;

namespace {

struct Options {
  DaemonOptions Daemon;
  std::string CrashDir;
  bool Help = false;
};

void printUsage() {
  outs() << "usage: lslpd --socket=PATH [options]\n"
            "  --socket=PATH             unix-domain socket to listen on "
            "(required;\n"
            "                            unlinked again on shutdown)\n"
            "  --jobs=N                  worker threads for compile batches "
            "(0 = one\n"
            "                            per hardware thread, the default)\n"
            "  --cache-capacity=N        content-hash response cache entries "
            "(default\n"
            "                            1024; minimum 1)\n"
            "  --crash-dir=DIR           write crash reproducers for "
            "contained worker\n"
            "                            crashes to DIR\n"
            "  --allow-crash-requests    honor the test-only crash-injection "
            "request\n"
            "                            field (never enable in production)\n"
            "  --help                    show this message\n"
            "\n"
            "The daemon drains gracefully on SIGTERM/SIGINT: in-flight "
            "requests\n"
            "finish, replies are flushed, the socket file is removed.\n";
}

bool parseArgs(int argc, char **argv, Options &Opts) {
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    // Everything lslpd accepts is an option; a stray positional argument
    // is as fatal as a mistyped flag.
    std::string Plain(stripOptionDashes(Arg));
    int64_t Num = 0;
    if (Plain == "help" || Plain == "h")
      Opts.Help = true;
    else if (startsWith(Plain, "socket="))
      Opts.Daemon.SocketPath = Plain.substr(7);
    else if (startsWith(Plain, "jobs=") && parseInt(Plain.substr(5), Num) &&
             Num >= 0)
      Opts.Daemon.Jobs = static_cast<unsigned>(Num);
    else if (startsWith(Plain, "cache-capacity=") &&
             parseInt(Plain.substr(15), Num) && Num >= 1)
      Opts.Daemon.CacheCapacity = static_cast<size_t>(Num);
    else if (startsWith(Plain, "crash-dir="))
      Opts.CrashDir = Plain.substr(10);
    else if (Plain == "allow-crash-requests")
      Opts.Daemon.AllowCrashRequests = true;
    else {
      errs() << "lslpd: unknown option '" << Arg
             << "' (run lslpd --help for usage)\n";
      return false;
    }
  }
  return true;
}

/// The signal handler only stores into an atomic inside Daemon, which is
/// async-signal-safe.
Daemon *ActiveDaemon = nullptr;

void onTermSignal(int) {
  if (ActiveDaemon)
    ActiveDaemon->requestShutdown();
}

} // namespace

int main(int argc, char **argv) {
  Options Opts;
  if (!parseArgs(argc, argv, Opts))
    return 1;
  if (Opts.Help) {
    printUsage();
    return 0;
  }
  if (Opts.Daemon.SocketPath.empty()) {
    printUsage();
    return 1;
  }

  // Arm the crash handlers with the reproducer directory before the
  // daemon's own (directory-less, idempotent-second) installation.
  if (!Opts.CrashDir.empty())
    installCrashHandlers(Opts.CrashDir);

  Daemon Server(Opts.Daemon);
  if (Error E = Server.bind()) {
    errs() << "lslpd: " << E.message() << "\n";
    return 1;
  }

  ActiveDaemon = &Server;
  struct sigaction SA {};
  SA.sa_handler = onTermSignal;
  sigaction(SIGTERM, &SA, nullptr);
  sigaction(SIGINT, &SA, nullptr);

  // Flush the ready line immediately: supervising scripts tail it (stdout
  // is fully buffered when redirected to a log file).
  outs() << "lslpd: listening on " << Server.socketPath() << "\n";
  std::fflush(stdout);
  uint64_t Served = Server.run();
  outs() << "lslpd: drained after " << Served << " request(s)\n";
  ActiveDaemon = nullptr;
  return 0;
}
