//===- tools/lslpd.cpp - Compile-server daemon driver --------------------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// lslpd: the long-lived compile server. Binds a unix-domain socket, then
// serves lslpc --connect clients until SIGTERM/SIGINT (graceful drain) or
// a shutdown control request:
//
//   lslpd --socket=/tmp/lslpd.sock                 # serve until SIGTERM
//   lslpd --socket=/tmp/lslpd.sock --jobs=8        # 8 compile workers
//   lslpc input.ll --connect=/tmp/lslpd.sock       # ... from another shell
//   lslpc --connect=/tmp/lslpd.sock --daemon-stats # cache/queue counters
//
// See DESIGN.md "Serving architecture" and TESTING.md "Daemon-mode
// triage".
//
//===----------------------------------------------------------------------===//

#include "server/ChaosSocket.h"
#include "server/Daemon.h"
#include "support/CrashHandler.h"
#include "support/OStream.h"
#include "support/StringUtil.h"

#include <csignal>
#include <cstdio>
#include <memory>
#include <string>

using namespace lslp;
using namespace lslp::server;

namespace {

struct Options {
  DaemonOptions Daemon;
  std::string CrashDir;
  /// Chaos-mode IO fault injection (CI soak; see DESIGN.md "Serving
  /// failure model"). Probability 0 keeps the real transport.
  double ChaosProbability = 0.0;
  uint64_t ChaosSeed = 0;
  bool Help = false;
};

void printUsage() {
  outs() << "usage: lslpd --socket=PATH [options]\n"
            "  --socket=PATH             unix-domain socket to listen on "
            "(required;\n"
            "                            unlinked again on shutdown)\n"
            "  --jobs=N                  worker threads for compile batches "
            "(0 = one\n"
            "                            per hardware thread, the default)\n"
            "  --cache-capacity=N        content-hash response cache entries "
            "(default\n"
            "                            1024; minimum 1)\n"
            "  --crash-dir=DIR           write crash reproducers for "
            "contained worker\n"
            "                            crashes to DIR\n"
            "  --allow-crash-requests    honor the test-only crash-injection "
            "request\n"
            "                            field (never enable in production)\n"
            "  --idle-timeout-ms=N       reap connections idle for N ms "
            "(default\n"
            "                            300000; 0 disables)\n"
            "  --request-timeout-ms=N    reap connections that stall a "
            "request frame\n"
            "                            or reply drain for N ms (default "
            "20000;\n"
            "                            0 disables)\n"
            "  --max-pending=N           shed compile requests beyond N per "
            "batching\n"
            "                            round with an 'overloaded' error "
            "(default\n"
            "                            256; 0 = unlimited)\n"
            "  --chaos-io=P              inject IO faults (torn reads, short "
            "writes,\n"
            "                            delays, EINTR) into the daemon's "
            "socket\n"
            "                            calls with probability P (test/CI "
            "only)\n"
            "  --chaos-seed=N            seed for the --chaos-io schedule\n"
            "  --help                    show this message\n"
            "\n"
            "The daemon drains gracefully on SIGTERM/SIGINT: in-flight "
            "requests\n"
            "finish, replies are flushed, the socket file is removed.\n";
}

bool parseArgs(int argc, char **argv, Options &Opts) {
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    // Everything lslpd accepts is an option; a stray positional argument
    // is as fatal as a mistyped flag.
    std::string Plain(stripOptionDashes(Arg));
    int64_t Num = 0;
    if (Plain == "help" || Plain == "h")
      Opts.Help = true;
    else if (startsWith(Plain, "socket="))
      Opts.Daemon.SocketPath = Plain.substr(7);
    else if (startsWith(Plain, "jobs=") && parseInt(Plain.substr(5), Num) &&
             Num >= 0)
      Opts.Daemon.Jobs = static_cast<unsigned>(Num);
    else if (startsWith(Plain, "cache-capacity=") &&
             parseInt(Plain.substr(15), Num) && Num >= 1)
      Opts.Daemon.CacheCapacity = static_cast<size_t>(Num);
    else if (startsWith(Plain, "crash-dir="))
      Opts.CrashDir = Plain.substr(10);
    else if (Plain == "allow-crash-requests")
      Opts.Daemon.AllowCrashRequests = true;
    else if (startsWith(Plain, "idle-timeout-ms=") &&
             parseInt(Plain.substr(16), Num) && Num >= 0)
      Opts.Daemon.IdleTimeoutMs = static_cast<int>(Num);
    else if (startsWith(Plain, "request-timeout-ms=") &&
             parseInt(Plain.substr(19), Num) && Num >= 0)
      Opts.Daemon.RequestTimeoutMs = static_cast<int>(Num);
    else if (startsWith(Plain, "max-pending=") &&
             parseInt(Plain.substr(12), Num) && Num >= 0)
      Opts.Daemon.MaxPending = static_cast<size_t>(Num);
    else if (startsWith(Plain, "chaos-io=") &&
             parseDouble(Plain.substr(9), Opts.ChaosProbability) &&
             Opts.ChaosProbability >= 0.0 && Opts.ChaosProbability <= 1.0) {
      // Parsed in the condition.
    } else if (startsWith(Plain, "chaos-seed=") &&
               parseInt(Plain.substr(11), Num) && Num >= 0)
      Opts.ChaosSeed = static_cast<uint64_t>(Num);
    else {
      errs() << "lslpd: unknown option '" << Arg
             << "' (run lslpd --help for usage)\n";
      return false;
    }
  }
  return true;
}

/// The signal handler only stores into an atomic inside Daemon, which is
/// async-signal-safe.
Daemon *ActiveDaemon = nullptr;

void onTermSignal(int) {
  if (ActiveDaemon)
    ActiveDaemon->requestShutdown();
}

} // namespace

int main(int argc, char **argv) {
  Options Opts;
  if (!parseArgs(argc, argv, Opts))
    return 1;
  if (Opts.Help) {
    printUsage();
    return 0;
  }
  if (Opts.Daemon.SocketPath.empty()) {
    printUsage();
    return 1;
  }

  // Arm the crash handlers with the reproducer directory before the
  // daemon's own (directory-less, idempotent-second) installation.
  if (!Opts.CrashDir.empty())
    installCrashHandlers(Opts.CrashDir);

  // Chaos mode: shred the daemon's own socket IO for the whole lifetime.
  // Installed before any traffic; the daemon must still converge on every
  // request (lossless sites) or survive the loss (resets → client retry).
  std::unique_ptr<ScopedChaosSocket> Chaos;
  if (Opts.ChaosProbability > 0.0) {
    ChaosSocket::Options CO;
    CO.Seed = Opts.ChaosSeed;
    CO.Probability = Opts.ChaosProbability;
    Chaos = std::make_unique<ScopedChaosSocket>(CO);
    outs() << "lslpd: chaos-io enabled (p=" << Opts.ChaosProbability
           << " seed=" << Opts.ChaosSeed << ")\n";
  }

  Daemon Server(Opts.Daemon);
  if (Error E = Server.bind()) {
    errs() << "lslpd: " << E.message() << "\n";
    return 1;
  }

  ActiveDaemon = &Server;
  struct sigaction SA {};
  SA.sa_handler = onTermSignal;
  sigaction(SIGTERM, &SA, nullptr);
  sigaction(SIGINT, &SA, nullptr);

  // Flush the ready line immediately: supervising scripts tail it (stdout
  // is fully buffered when redirected to a log file).
  outs() << "lslpd: listening on " << Server.socketPath() << "\n";
  std::fflush(stdout);
  uint64_t Served = Server.run();
  outs() << "lslpd: drained after " << Served << " request(s)\n";
  ActiveDaemon = nullptr;
  return 0;
}
