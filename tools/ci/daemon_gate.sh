#!/usr/bin/env bash
# Daemon serving gate: two lslpd instances serve example compiles and a
# sharded fuzz sweep, byte-identical to local runs, then drain cleanly.
#
# Usage: tools/ci/daemon_gate.sh [build-dir]
#
# Extracted from the inline CI step so both workflow legs (and local
# debugging) run the exact same gate. Any command failing aborts the
# script (set -e) and the EXIT trap kills both daemons, so a failed diff
# can never leak a daemon that deadlocks the runner or poisons the next
# attempt's socket path. Stale socket files from a previous crashed run
# are handled by lslpd itself: at startup it probes an existing socket
# with connect() and only unlinks it when nothing answers.
set -euo pipefail

BUILD_DIR="${1:-build}"
LSLPC="$BUILD_DIR/tools/lslpc"
LSLPD="$BUILD_DIR/tools/lslpd"
SOCK1=/tmp/lslpd-ci-1.sock
SOCK2=/tmp/lslpd-ci-2.sock
SOCK3=/tmp/lslpd-ci-3.sock
SOCK4=/tmp/lslpd-ci-4.sock
SOCK5=/tmp/lslpd-ci-5.sock
SOCK6=/tmp/lslpd-ci-6.sock
SOCK7=/tmp/lslpd-ci-7.sock

D1=
D2=
D3=
D4=
D5=
D6=
D7=
cleanup() {
  # Kill whatever is still running; a clean drain leaves nothing to kill.
  for pid in "$D1" "$D2" "$D3" "$D4" "$D5" "$D6" "$D7"; do
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
  done
  rm -f "$SOCK3" "$SOCK4" "$SOCK5" "$SOCK6" "$SOCK7"
}
trap cleanup EXIT

# Waits until every socket path listed exists (daemon bound) or dies.
wait_for_sockets() {
  for _ in $(seq 100); do
    local all=1
    for sock in "$@"; do
      [ -S "$sock" ] || all=0
    done
    [ "$all" = 1 ] && return 0
    sleep 0.1
  done
  echo "error: daemons did not bind: $*" >&2
  return 1
}

mkdir -p daemon-artifacts
"$LSLPD" --socket="$SOCK1" --cache-capacity=256 > daemon1.log 2>&1 &
D1=$!
"$LSLPD" --socket="$SOCK2" --cache-capacity=256 > daemon2.log 2>&1 &
D2=$!
for _ in $(seq 50); do
  [ -S "$SOCK1" ] && [ -S "$SOCK2" ] && break
  sleep 0.1
done

# Every example compiles to the same bytes locally and through the
# daemon, on both strategies and with the CFG pipeline both off and on —
# twice each, so the second round replays from the content cache.
for ll in examples/ir/*.ll; do
  name=$(basename "$ll" .ll)
  for strategy in greedy global; do
    for cfgflags in "" "-if-convert -unroll"; do
      # shellcheck disable=SC2086  # cfgflags is intentionally word-split.
      "$LSLPC" "$ll" -config=LSLP -report --slp-strategy=$strategy $cfgflags \
        > "local-$name.out" 2> "local-$name.err"
      for _round in cold warm; do
        # shellcheck disable=SC2086
        "$LSLPC" "$ll" -config=LSLP -report --slp-strategy=$strategy $cfgflags \
          --connect="$SOCK1" \
          > "daemon-$name.out" 2> "daemon-$name.err"
        diff -u "local-$name.out" "daemon-$name.out"
        diff -u "local-$name.err" "daemon-$name.err"
      done
    done
  done
done

# 200-seed differential fuzz sweep, sharded across both daemons,
# byte-identical to the local sweep.
"$LSLPC" --fuzz=200 --seed=1 > fuzz-local.out 2>&1
"$LSLPC" --fuzz=200 --seed=1 \
  --connect="$SOCK1,$SOCK2" > fuzz-daemon.out 2>&1
diff -u fuzz-local.out fuzz-daemon.out

# A second daemon on an already-served socket must be refused: the
# stale-socket probe distinguishes a live daemon from a dead one's
# leftover file, so two sweeps can never silently share one path. The
# timeout turns a wrongly-bound (serving) daemon into a failure instead
# of a hang; the grep rejects the timeout path too.
if timeout 10 "$LSLPD" --socket="$SOCK1" > probe.log 2>&1; then
  echo "error: second daemon bound a live socket" >&2
  exit 1
fi
grep -q "live daemon" probe.log

# Cache/batch counters are visible via the stats request, then both
# daemons must drain gracefully (exit 0, drain line logged).
"$LSLPC" --connect="$SOCK1" --daemon-stats \
  | tee daemon-artifacts/lslpd-stats.json
"$LSLPC" --connect="$SOCK2" --daemon-stats \
  >> daemon-artifacts/lslpd-stats.json
"$LSLPC" --connect="$SOCK1" --shutdown-daemon
"$LSLPC" --connect="$SOCK2" --shutdown-daemon
wait "$D1"
wait "$D2"
D1=
D2=
cp daemon1.log daemon2.log daemon-artifacts/
grep -q "drained after" daemon1.log
grep -q "drained after" daemon2.log

# ---- Chaos leg 1: slow loris ------------------------------------------------
# A client trickling one byte per 200ms must be reaped at the daemon's
# request deadline — and must not delay a concurrent well-behaved compile
# (the old blocking readFrame would have frozen the poll loop for the
# trickle's whole duration).
"$LSLPD" --socket="$SOCK3" --request-timeout-ms=600 > daemon3.log 2>&1 &
D3=$!
wait_for_sockets "$SOCK3"
timeout 60 "$LSLPC" --connect="$SOCK3" --probe-stall=200 > loris.log 2>&1 &
LORIS=$!
sleep 0.3 # let the probe's first trickled byte arrive and start its clock
# The compile must finish while the trickle is still in flight; a stalled
# poll loop turns this into a timeout failure, not a hang.
timeout 10 "$LSLPC" examples/ir/dot_product.ll -config=LSLP -report \
  --connect="$SOCK3" > loris-compile.out 2> loris-compile.err
"$LSLPC" examples/ir/dot_product.ll -config=LSLP -report \
  > loris-local.out 2> loris-local.err
diff -u loris-local.out loris-compile.out
diff -u loris-local.err loris-compile.err
wait "$LORIS"
grep -q "reaped by daemon" loris.log
grep -q "reaped connection reason=" daemon3.log
"$LSLPC" --connect="$SOCK3" --shutdown-daemon
wait "$D3"
D3=
cp daemon3.log loris.log daemon-artifacts/

# ---- Chaos leg 2: kill -9 mid-sweep, byte-identical failover ---------------
# Two daemons shard the 200-seed sweep; one is hard-killed while its shard
# is in flight. The client's retry budget drains against the corpse, the
# dead range re-shards onto the survivor, and the sweep output must still
# be byte-identical to the local ground truth from above.
"$LSLPD" --socket="$SOCK4" > daemon4.log 2>&1 &
D4=$!
"$LSLPD" --socket="$SOCK5" > daemon5.log 2>&1 &
D5=$!
wait_for_sockets "$SOCK4" "$SOCK5"
timeout 300 "$LSLPC" --fuzz=200 --seed=1 \
  --connect="$SOCK4,$SOCK5" --daemon-retries=2 > fuzz-failover.out 2>&1 &
SWEEP=$!
sleep 2 # both shards are now mid-flight (each takes ~10s)
kill -9 "$D5"
wait "$D5" 2>/dev/null || true
D5=
wait "$SWEEP"
diff -u fuzz-local.out fuzz-failover.out
"$LSLPC" --connect="$SOCK4" --shutdown-daemon
wait "$D4"
D4=
rm -f "$SOCK5"

# ---- Chaos leg 3: 500-seed sweep under injected IO faults ------------------
# Both daemons shred their own socket IO (torn reads, short writes,
# delays, resets, EINTR) at p=0.02 per call. The deadline-aware IO loops
# plus client retries must absorb all of it: the sweep completes
# byte-identical to a fault-free local run, both daemons survive to answer
# a health probe, and nothing hangs (timeout converts a hang into failure).
"$LSLPD" --socket="$SOCK6" --chaos-io=0.02 --chaos-seed=7 > daemon6.log 2>&1 &
D6=$!
"$LSLPD" --socket="$SOCK7" --chaos-io=0.02 --chaos-seed=8 > daemon7.log 2>&1 &
D7=$!
wait_for_sockets "$SOCK6" "$SOCK7"
grep -q "chaos-io enabled" daemon6.log
timeout 300 "$LSLPC" --fuzz=500 --seed=1 --jobs=4 > fuzz500-local.out 2>&1
timeout 600 "$LSLPC" --fuzz=500 --seed=1 --jobs=4 \
  --connect="$SOCK6,$SOCK7" --daemon-retries=10 > fuzz500-chaos.out 2>&1
diff -u fuzz500-local.out fuzz500-chaos.out
# Zero daemon deaths: both processes are still alive and ready. Control
# requests deliberately have no client-side retry, and the daemons are
# still shredding their IO, so a reset can eat an individual probe or
# shutdown round-trip — the script retries those; the invariant under
# test is that the *daemons* survive, which kill -0 checks directly.
kill -0 "$D6"
kill -0 "$D7"
for _ in $(seq 10); do
  if "$LSLPC" --connect="$SOCK6,$SOCK7" --daemon-health \
      > daemon-artifacts/lslpd-health.json 2>/dev/null; then
    break
  fi
  sleep 0.2
done
grep -q '"ready":true' daemon-artifacts/lslpd-health.json
# Shutdown may lose its ack to a chaos reset after the daemon has already
# begun draining; stop retrying once the process is gone and let wait()
# report the real exit status (0 = clean drain).
for pid_sock in "$D6:$SOCK6" "$D7:$SOCK7"; do
  pid="${pid_sock%%:*}"
  sock="${pid_sock#*:}"
  for _ in $(seq 10); do
    "$LSLPC" --connect="$sock" --shutdown-daemon 2>/dev/null && break
    kill -0 "$pid" 2>/dev/null || break
    sleep 0.2
  done
done
wait "$D6"
wait "$D7"
D6=
D7=
cp daemon4.log daemon5.log daemon6.log daemon7.log daemon-artifacts/
