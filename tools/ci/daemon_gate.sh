#!/usr/bin/env bash
# Daemon serving gate: two lslpd instances serve example compiles and a
# sharded fuzz sweep, byte-identical to local runs, then drain cleanly.
#
# Usage: tools/ci/daemon_gate.sh [build-dir]
#
# Extracted from the inline CI step so both workflow legs (and local
# debugging) run the exact same gate. Any command failing aborts the
# script (set -e) and the EXIT trap kills both daemons, so a failed diff
# can never leak a daemon that deadlocks the runner or poisons the next
# attempt's socket path. Stale socket files from a previous crashed run
# are handled by lslpd itself: at startup it probes an existing socket
# with connect() and only unlinks it when nothing answers.
set -euo pipefail

BUILD_DIR="${1:-build}"
LSLPC="$BUILD_DIR/tools/lslpc"
LSLPD="$BUILD_DIR/tools/lslpd"
SOCK1=/tmp/lslpd-ci-1.sock
SOCK2=/tmp/lslpd-ci-2.sock

D1=
D2=
cleanup() {
  # Kill whatever is still running; a clean drain leaves nothing to kill.
  [ -n "$D1" ] && kill "$D1" 2>/dev/null || true
  [ -n "$D2" ] && kill "$D2" 2>/dev/null || true
}
trap cleanup EXIT

mkdir -p daemon-artifacts
"$LSLPD" --socket="$SOCK1" --cache-capacity=256 > daemon1.log 2>&1 &
D1=$!
"$LSLPD" --socket="$SOCK2" --cache-capacity=256 > daemon2.log 2>&1 &
D2=$!
for _ in $(seq 50); do
  [ -S "$SOCK1" ] && [ -S "$SOCK2" ] && break
  sleep 0.1
done

# Every example compiles to the same bytes locally and through the
# daemon, on both strategies and with the CFG pipeline both off and on —
# twice each, so the second round replays from the content cache.
for ll in examples/ir/*.ll; do
  name=$(basename "$ll" .ll)
  for strategy in greedy global; do
    for cfgflags in "" "-if-convert -unroll"; do
      # shellcheck disable=SC2086  # cfgflags is intentionally word-split.
      "$LSLPC" "$ll" -config=LSLP -report --slp-strategy=$strategy $cfgflags \
        > "local-$name.out" 2> "local-$name.err"
      for _round in cold warm; do
        # shellcheck disable=SC2086
        "$LSLPC" "$ll" -config=LSLP -report --slp-strategy=$strategy $cfgflags \
          --connect="$SOCK1" \
          > "daemon-$name.out" 2> "daemon-$name.err"
        diff -u "local-$name.out" "daemon-$name.out"
        diff -u "local-$name.err" "daemon-$name.err"
      done
    done
  done
done

# 200-seed differential fuzz sweep, sharded across both daemons,
# byte-identical to the local sweep.
"$LSLPC" --fuzz=200 --seed=1 > fuzz-local.out 2>&1
"$LSLPC" --fuzz=200 --seed=1 \
  --connect="$SOCK1,$SOCK2" > fuzz-daemon.out 2>&1
diff -u fuzz-local.out fuzz-daemon.out

# A second daemon on an already-served socket must be refused: the
# stale-socket probe distinguishes a live daemon from a dead one's
# leftover file, so two sweeps can never silently share one path. The
# timeout turns a wrongly-bound (serving) daemon into a failure instead
# of a hang; the grep rejects the timeout path too.
if timeout 10 "$LSLPD" --socket="$SOCK1" > probe.log 2>&1; then
  echo "error: second daemon bound a live socket" >&2
  exit 1
fi
grep -q "live daemon" probe.log

# Cache/batch counters are visible via the stats request, then both
# daemons must drain gracefully (exit 0, drain line logged).
"$LSLPC" --connect="$SOCK1" --daemon-stats \
  | tee daemon-artifacts/lslpd-stats.json
"$LSLPC" --connect="$SOCK2" --daemon-stats \
  >> daemon-artifacts/lslpd-stats.json
"$LSLPC" --connect="$SOCK1" --shutdown-daemon
"$LSLPC" --connect="$SOCK2" --shutdown-daemon
wait "$D1"
wait "$D2"
D1=
D2=
cp daemon1.log daemon2.log daemon-artifacts/
grep -q "drained after" daemon1.log
grep -q "drained after" daemon2.log
