//===- tools/lslpc.cpp - Command-line driver (opt-style) -----------------------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// lslpc: parse a textual-IR file, run the (L)SLP vectorizer, and print the
// result and/or the vectorization report. Optionally execute a function
// on the cycle-model machine (tree-walking interpreter or bytecode vm).
//
//   lslpc input.ll                         # LSLP, print transformed IR
//   lslpc input.ll -config=SLP -report     # vanilla SLP + per-graph report
//   lslpc input.ll -la=2 -multi=1          # Figure 13 style sweeps
//   lslpc input.ll -no-vectorize -run=f:16 # just interpret @f(16)
//   lslpc input.ll -run=f:100 -init-memory # deterministic array inputs
//   lslpc input.ll -run=f --engine=vm      # execute on the bytecode vm
//   lslpc -                                # read from stdin
//
// Differential-fuzzing modes (see src/fuzz/ and TESTING.md):
//
//   lslpc --fuzz=500 --seed=1              # 500 random modules through the
//                                          # scalar-vs-vector oracle
//   lslpc --reduce=repro.lslp              # minimize a failing module
//
//===----------------------------------------------------------------------===//

#include "costmodel/TargetTransformInfo.h"
#include "diag/RemarkEngine.h"
#include "diag/Statistics.h"
#include "diag/Timer.h"
#include "fuzz/DifferentialOracle.h"
#include "fuzz/FuzzDriver.h"
#include "fuzz/ModuleGenerator.h"
#include "fuzz/Reducer.h"
#include "interp/Interpreter.h"
#include "ir/Context.h"
#include "ir/Module.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "kernels/Kernels.h"
#include "parser/Parser.h"
#include "server/ChaosSocket.h"
#include "server/Client.h"
#include "server/CompileService.h"
#include "support/CrashHandler.h"
#include "support/Error.h"
#include "support/FaultInjection.h"
#include "support/OStream.h"
#include "support/StringUtil.h"
#include "support/ThreadPool.h"
#include "transforms/EarlyCSE.h"
#include "transforms/IfConversion.h"
#include "transforms/LoopUnroll.h"
#include "vectorizer/SLPVectorizerPass.h"
#include "jit/JITEngine.h"
#include "vm/BytecodeDump.h"
#include "vm/ExecutionEngine.h"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <sys/socket.h>
#include <sys/un.h>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace lslp;

namespace {

enum class RemarkFormat { None, Text, JSON };

struct Options {
  std::string InputPath;
  VectorizerConfig Config = VectorizerConfig::lslp();
  bool Vectorize = true;
  bool EarlyCSE = false;
  bool PrintIR = true;
  bool Report = false;
  bool Graphs = false;
  bool Dot = false;
  bool InitMemory = false;
  std::string RunSpec; // "function:arg"

  /// Which execution engine backs -run and the fuzz oracle (see
  /// DESIGN.md "Execution engines").
  EngineKind Engine = EngineKind::TreeWalk;
  /// --dump-bytecode=FILE: write the vm bytecode listing of the final
  /// module to FILE ('-' = stdout).
  std::string DumpBytecodePath;
  /// --dump-jit-asm=FILE: write the jit's annotated x86-64 listing of the
  /// final module to FILE ('-' = stdout).
  std::string DumpJitAsmPath;
  /// --engine-parity: cross-validate every fuzz seed on both engines
  /// (default: every 4th seed).
  bool EngineParity = false;

  // Diagnostics (see DESIGN.md "Diagnostics").
  RemarkFormat Remarks = RemarkFormat::None;
  std::string RemarksOutput; ///< --remarks-output=FILE (default stderr).
  bool Stats = false;        ///< --stats[=json]: dump counters at exit.
  bool StatsJSON = false;
  bool TimePasses = false;   ///< --time-passes: per-pass wall time.

  // Fuzzing modes (mutually exclusive with normal compilation).
  int64_t FuzzCount = -1; ///< --fuzz=N: number of random modules.
  int64_t FuzzSeed = 0;   ///< --seed=S: first generator seed.
  std::string ReducePath; ///< --reduce=<file>: minimize a failing module.
  std::string ReproDir;   ///< --repro-dir=DIR: write reduced failures here.

  // Robustness (see DESIGN.md "Failure model").
  bool VerifyEach = false;    ///< --verify-each: verify after every pass.
  std::string CrashDir;       ///< --crash-dir=DIR: crash reproducers here.
  double FaultProbability = 0.0; ///< --inject-faults=P (0 disables).
  int64_t FaultSeed = 0;      ///< --fault-seed=S for the fault streams.

  /// --jobs=N: worker threads for the vectorizer (independent functions)
  /// and the fuzz sweep (independent seeds). Output is byte-identical for
  /// every value; 0 means one per hardware thread.
  unsigned Jobs = 1;

  // Daemon mode (see DESIGN.md "Serving architecture").
  /// --connect=SOCK[,SOCK...]: route the compile (or shard the fuzz
  /// sweep) through the lslpd daemon(s) at these sockets. Output is
  /// byte-identical to local mode by construction.
  std::vector<std::string> ConnectSockets;
  bool DaemonStats = false;    ///< --daemon-stats: print daemon counters.
  bool ShutdownDaemon = false; ///< --shutdown-daemon: drain the daemon(s).
  bool DaemonHealth = false;   ///< --daemon-health: readiness probe.
  /// --daemon-timeout=MS: round-trip deadline for daemon compiles/fuzz
  /// shards (-1 = block, the default — compiles can take minutes).
  int DaemonTimeoutMs = -1;
  /// --daemon-retries=N: transport/overload retries before giving up (and,
  /// for a single compile, falling back to a local compile).
  unsigned DaemonRetries = 2;
  /// --chaos-io=P / --chaos-seed=S: inject deterministic IO faults into
  /// this process's socket calls (test/CI only).
  double ChaosProbability = 0.0;
  uint64_t ChaosSeed = 0;
  /// --probe-stall=MS: slow-loris probe — trickle a request frame one byte
  /// per MS toward the daemon and report whether it reaps us.
  int ProbeStallMs = -1;
};

/// The retry/deadline policy every daemon-facing path shares.
server::ClientOptions clientOptionsFor(const Options &Opts) {
  server::ClientOptions C;
  C.RequestTimeoutMs = Opts.DaemonTimeoutMs;
  C.MaxRetries = Opts.DaemonRetries;
  return C;
}

void printUsage() {
  outs() << "usage: lslpc <input.ll | -> [options]\n"
            "  -config=SLP-NR|SLP|LSLP   vectorizer configuration "
            "(default LSLP)\n"
            "  -la=N                     max look-ahead depth\n"
            "  -multi=N                  max multi-node size\n"
            "  --slp-strategy=greedy|global\n"
            "                            statement packing: one-shot greedy "
            "build\n"
            "                            (default) or global pack-set solver "
            "over\n"
            "                            commutative reorderings; in --fuzz "
            "mode\n"
            "                            'global' pins the whole sweep to the "
            "solver\n"
            "  -no-altopcodes            disable add/sub blend bundles\n"
            "  -no-reductions            disable horizontal reductions\n"
            "  -no-vectorize             parse/verify/print only\n"
            "  -early-cse                run common-subexpression "
            "elimination first\n"
            "  -if-convert               flatten branchy diamonds/triangles "
            "into selects\n"
            "                            before vectorization\n"
            "  -unroll[=N]               unroll trip-count-known loops "
            "(requested factor\n"
            "                            N >= 2, default 4) before "
            "vectorization\n"
            "  -report                   print per-seed-bundle report\n"
            "  -graphs                   include rendered SLP graphs\n"
            "  -dot                      emit Graphviz DOT for each graph\n"
            "  -no-print                 suppress the transformed IR\n"
            "  -run=FN[:ARG]             execute @FN and report cost; ARG "
            "feeds the first\n"
            "                            parameter, remaining int/fp "
            "parameters default to 0\n"
            "  -init-memory              fill globals with deterministic "
            "values before -run\n"
            "  --engine=interp|vm|jit    execution engine: tree-walking "
            "interpreter\n"
            "                            (default), bytecode register vm, or "
            "native\n"
            "                            x86-64 jit (falls back to the vm on "
            "hosts\n"
            "                            that cannot execute generated code)\n"
            "  --dump-bytecode=FILE      write the vm bytecode listing of "
            "the final\n"
            "                            module to FILE ('-' = stdout)\n"
            "  --dump-jit-asm=FILE       write the jit's annotated x86-64 "
            "listing of\n"
            "                            the final module to FILE ('-' = "
            "stdout)\n"
            "  --jobs=N                  worker threads for vectorization "
            "and fuzzing\n"
            "                            (deterministic: output is identical "
            "for any N;\n"
            "                            0 = one per hardware thread)\n"
            "diagnostics:\n"
            "  --remarks[=text|json]     stream per-decision optimization "
            "remarks\n"
            "  --remarks-output=FILE     write remarks to FILE instead of "
            "stderr\n"
            "  --stats[=json]            dump pass statistics counters\n"
            "  --time-passes             report per-pass wall time\n"
            "robustness:\n"
            "  --verify-each             verify the module after every pass\n"
            "  --max-graph-nodes=N       abandon a function (keep it scalar) "
            "after\n"
            "                            building N SLP graph nodes (0 = "
            "unlimited)\n"
            "  --max-permutations=N      cap operand-permutation/look-ahead "
            "score\n"
            "                            evaluations per function\n"
            "  --max-ms-per-function=N   wall-clock budget per function, in "
            "ms\n"
            "  --crash-dir=DIR           contain crashes and write runnable "
            ".ll\n"
            "                            reproducers (IR + config + "
            "breadcrumbs) to DIR\n"
            "  --inject-faults=P         deterministically inject budget "
            "faults with\n"
            "                            probability P per site (fuzzing: the "
            "oracle\n"
            "                            asserts clean scalar fallback)\n"
            "  --fault-seed=S            seed for the fault streams (default "
            "0)\n"
            "differential fuzzing:\n"
            "  --fuzz=N                  run N random modules through the\n"
            "                            scalar-vs-vector oracle\n"
            "  --seed=S                  first fuzz seed (default 0)\n"
            "  --engine-parity           cross-validate every seed on both\n"
            "                            engines (default: every 4th seed)\n"
            "  --reduce=FILE             minimize a failing module and print\n"
            "                            the reproducer\n"
            "  --repro-dir=DIR           also write each failing seed's "
            "reduced\n"
            "                            reproducer to DIR/seed-<N>.ll\n"
            "daemon mode (see lslpd):\n"
            "  --connect=SOCK[,SOCK..]   route the compile through the lslpd "
            "daemon at\n"
            "                            SOCK (output is byte-identical to "
            "local mode);\n"
            "                            --fuzz shards its seeds across all "
            "listed\n"
            "                            daemons\n"
            "  --config-json=FILE        load the vectorizer configuration "
            "from FILE\n"
            "                            (the JSON written by crash "
            "reproducers and the\n"
            "                            daemon protocol)\n"
            "  --daemon-stats            print each daemon's cache/queue "
            "counters as\n"
            "                            JSON and exit (short deadline: a "
            "stalled\n"
            "                            daemon times out instead of hanging)\n"
            "  --daemon-health           print each daemon's readiness probe "
            "as JSON\n"
            "                            and exit\n"
            "  --shutdown-daemon         ask each daemon to drain and exit\n"
            "  --daemon-timeout=MS       round-trip deadline for daemon "
            "compiles and\n"
            "                            fuzz shards (default: block)\n"
            "  --daemon-retries=N        transport/overload retries before "
            "giving up\n"
            "                            (default 2; single compiles then "
            "fall back\n"
            "                            to a local compile)\n"
            "  --chaos-io=P              inject IO faults into this process's "
            "socket\n"
            "                            calls with probability P (test/CI "
            "only)\n"
            "  --chaos-seed=N            seed for the --chaos-io schedule\n"
            "  --probe-stall=MS          slow-loris probe: trickle a request "
            "frame one\n"
            "                            byte per MS; exit 0 if the daemon "
            "reaps the\n"
            "                            connection, 1 if it never does\n";
}

bool readInput(const std::string &Path, std::string &Out) {
  std::FILE *File = Path == "-" ? stdin : std::fopen(Path.c_str(), "rb");
  if (!File) {
    errs() << "lslpc: cannot open '" << Path << "'\n";
    return false;
  }
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), File)) > 0)
    Out.append(Buf, N);
  if (File != stdin)
    std::fclose(File);
  return true;
}

bool parseArgs(int argc, char **argv, Options &Opts) {
  if (argc < 2)
    return false;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    // Anything dash-prefixed except a bare "-" (stdin) is an option; a
    // mistyped flag must never be silently taken as an input path.
    if (Arg == "-" || Arg[0] != '-') {
      if (!Opts.InputPath.empty()) {
        errs() << "lslpc: multiple input files ('" << Opts.InputPath
               << "' and '" << Arg << "')\n";
        return false;
      }
      Opts.InputPath = Arg;
      continue;
    }
    std::string Plain(stripOptionDashes(Arg));
    int64_t Num = 0;
    double FP = 0.0;
    if (startsWith(Plain, "fuzz=") && parseInt(Plain.substr(5), Num) &&
        Num >= 0)
      Opts.FuzzCount = Num;
    else if (startsWith(Plain, "seed=") && parseInt(Plain.substr(5), Num))
      Opts.FuzzSeed = Num;
    else if (startsWith(Plain, "reduce="))
      Opts.ReducePath = Plain.substr(7);
    else if (startsWith(Plain, "repro-dir="))
      Opts.ReproDir = Plain.substr(10);
    else if (startsWith(Plain, "jobs=") && parseInt(Plain.substr(5), Num) &&
             Num >= 0)
      Opts.Jobs = static_cast<unsigned>(Num);
    else if (startsWith(Plain, "connect="))
      Opts.ConnectSockets = splitNonEmpty(Plain.substr(8), ',');
    else if (Plain == "daemon-stats")
      Opts.DaemonStats = true;
    else if (Plain == "shutdown-daemon")
      Opts.ShutdownDaemon = true;
    else if (Plain == "daemon-health")
      Opts.DaemonHealth = true;
    else if (startsWith(Plain, "daemon-timeout=") &&
             parseInt(Plain.substr(15), Num) && Num >= 0)
      Opts.DaemonTimeoutMs = static_cast<int>(Num);
    else if (startsWith(Plain, "daemon-retries=") &&
             parseInt(Plain.substr(15), Num) && Num >= 0)
      Opts.DaemonRetries = static_cast<unsigned>(Num);
    else if (startsWith(Plain, "chaos-io=") &&
             parseDouble(Plain.substr(9), FP) && FP >= 0.0 && FP <= 1.0)
      Opts.ChaosProbability = FP;
    else if (startsWith(Plain, "chaos-seed=") &&
             parseInt(Plain.substr(11), Num) && Num >= 0)
      Opts.ChaosSeed = static_cast<uint64_t>(Num);
    else if (startsWith(Plain, "probe-stall=") &&
             parseInt(Plain.substr(12), Num) && Num >= 1)
      Opts.ProbeStallMs = static_cast<int>(Num);
    else if (startsWith(Plain, "config-json=")) {
      // Applied in flag order, exactly like -config=: later per-knob
      // flags still override individual fields.
      std::string JSON;
      if (!readInput(Plain.substr(12), JSON))
        return false;
      std::string Err;
      if (!VectorizerConfig::fromJSON(JSON, Opts.Config, Err)) {
        errs() << "lslpc: bad config JSON in '" << Plain.substr(12)
               << "': " << Err << "\n";
        return false;
      }
    } else if (Plain == "config=SLP-NR")
      Opts.Config = VectorizerConfig::slpNoReordering();
    else if (Plain == "config=SLP")
      Opts.Config = VectorizerConfig::slp();
    else if (Plain == "config=LSLP")
      Opts.Config = VectorizerConfig::lslp();
    else if (startsWith(Plain, "la=") && parseInt(Plain.substr(3), Num))
      Opts.Config.MaxLookAheadLevel = static_cast<unsigned>(Num);
    else if (startsWith(Plain, "multi=") && parseInt(Plain.substr(6), Num))
      Opts.Config.MaxMultiNodeSize = static_cast<unsigned>(Num);
    else if (startsWith(Plain, "slp-strategy=")) {
      if (!parsePackingStrategy(Plain.substr(13), Opts.Config.Strategy)) {
        errs() << "lslpc: bad slp-strategy '" << Plain.substr(13)
               << "' (expected 'greedy' or 'global')\n";
        return false;
      }
    }
    else if (Plain == "no-altopcodes")
      Opts.Config.EnableAltOpcodes = false;
    else if (Plain == "no-reductions")
      Opts.Config.EnableReductions = false;
    else if (Plain == "no-vectorize")
      Opts.Vectorize = false;
    else if (Plain == "early-cse")
      Opts.EarlyCSE = true;
    else if (Plain == "if-convert")
      Opts.Config.EnableIfConversion = true;
    else if (Plain == "unroll")
      Opts.Config.EnableLoopUnroll = true;
    else if (startsWith(Plain, "unroll=") && parseInt(Plain.substr(7), Num) &&
             Num >= 2) {
      Opts.Config.EnableLoopUnroll = true;
      Opts.Config.UnrollFactor = static_cast<unsigned>(Num);
    }
    else if (Plain == "report")
      Opts.Report = true;
    else if (Plain == "graphs")
      Opts.Graphs = true;
    else if (Plain == "dot")
      Opts.Dot = true;
    else if (Plain == "no-print")
      Opts.PrintIR = false;
    else if (Plain == "init-memory")
      Opts.InitMemory = true;
    else if (startsWith(Plain, "run="))
      Opts.RunSpec = Plain.substr(4);
    else if (startsWith(Plain, "engine=")) {
      if (!parseEngineKind(Plain.substr(7), Opts.Engine)) {
        errs() << "lslpc: bad engine '" << Plain.substr(7) << "' (expected "
               << engineKindChoices() << ")\n";
        return false;
      }
    } else if (startsWith(Plain, "dump-bytecode="))
      Opts.DumpBytecodePath = Plain.substr(14);
    else if (startsWith(Plain, "dump-jit-asm="))
      Opts.DumpJitAsmPath = Plain.substr(13);
    else if (Plain == "engine-parity")
      Opts.EngineParity = true;
    else if (Plain == "remarks" || Plain == "remarks=text")
      Opts.Remarks = RemarkFormat::Text;
    else if (Plain == "remarks=json")
      Opts.Remarks = RemarkFormat::JSON;
    else if (startsWith(Plain, "remarks-output=")) {
      Opts.RemarksOutput = Plain.substr(15);
      if (Opts.Remarks == RemarkFormat::None)
        Opts.Remarks = RemarkFormat::Text;
    } else if (Plain == "stats")
      Opts.Stats = true;
    else if (Plain == "stats=json") {
      Opts.Stats = true;
      Opts.StatsJSON = true;
    } else if (Plain == "time-passes")
      Opts.TimePasses = true;
    else if (Plain == "verify-each")
      Opts.VerifyEach = true;
    else if (startsWith(Plain, "crash-dir="))
      Opts.CrashDir = Plain.substr(10);
    else if (startsWith(Plain, "inject-faults=") &&
             parseDouble(Plain.substr(14), FP) && FP >= 0.0 && FP <= 1.0)
      Opts.FaultProbability = FP;
    else if (startsWith(Plain, "fault-seed=") &&
             parseInt(Plain.substr(11), Num))
      Opts.FaultSeed = Num;
    else if (startsWith(Plain, "max-graph-nodes=") &&
             parseInt(Plain.substr(16), Num) && Num >= 0)
      Opts.Config.MaxGraphNodes = static_cast<uint64_t>(Num);
    else if (startsWith(Plain, "max-permutations=") &&
             parseInt(Plain.substr(17), Num) && Num >= 0)
      Opts.Config.MaxPermutationsPerMultiNode = static_cast<uint64_t>(Num);
    else if (startsWith(Plain, "max-ms-per-function=") &&
             parseInt(Plain.substr(20), Num) && Num >= 0)
      Opts.Config.MaxMsPerFunction = static_cast<uint64_t>(Num);
    else {
      errs() << "lslpc: unknown option '" << Arg
             << "' (run lslpc with no arguments for usage)\n";
      return false;
    }
  }
  return true;
}

int runFunction(Module &M, const Options &Opts,
                const TargetTransformInfo &TTI) {
  std::string Spec = Opts.RunSpec;
  std::string FnName = Spec;
  int64_t Arg = 0;
  bool HasArg = false;
  if (size_t Colon = Spec.find(':'); Colon != std::string::npos) {
    FnName = Spec.substr(0, Colon);
    if (!parseInt(Spec.substr(Colon + 1), Arg)) {
      errs() << "lslpc: bad -run argument '" << Spec << "'\n";
      return 1;
    }
    HasArg = true;
  }
  Function *F = M.getFunction(FnName);
  if (!F) {
    errs() << "lslpc: no function '@" << FnName << "'\n";
    return 1;
  }
  if (F->empty()) {
    errs() << "lslpc: cannot run '@" << FnName << "': function has no body\n";
    return 1;
  }
  if (HasArg && F->getNumArgs() == 0) {
    errs() << "lslpc: -run passed argument " << Arg << " but '@" << FnName
           << "' takes no parameters\n";
    return 1;
  }

  // Build the argument list: ARG (if given) feeds the first parameter;
  // every other integer/floating-point parameter default-initializes to
  // zero. Anything else (pointers, vectors) has no meaningful default, so
  // reject it with a diagnostic instead of feeding garbage to the engine.
  std::vector<RuntimeValue> Args;
  for (unsigned I = 0, N = F->getNumArgs(); I != N; ++I) {
    const Argument *A = F->getArg(I);
    Type *Ty = A->getType();
    if (Ty->isIntegerTy()) {
      Args.push_back(RuntimeValue::makeInt(
          Ty, I == 0 && HasArg ? static_cast<uint64_t>(Arg) : 0));
    } else if (Ty->isFloatingPointTy()) {
      Args.push_back(RuntimeValue::makeFP(
          Ty, I == 0 && HasArg ? static_cast<double>(Arg) : 0.0));
    } else {
      errs() << "lslpc: cannot run '@" << FnName << "': argument #" << I
             << (A->hasName() ? " ('%" + A->getName() + "')" : "")
             << " has type " << Ty->getName()
             << ", which cannot be default-initialized (-run supports "
                "integer and floating-point parameters only)\n";
      return 1;
    }
  }

  auto Engine = ExecutionEngine::create(Opts.Engine, M, &TTI);
  if (Opts.InitMemory)
    initKernelMemory(*Engine, M);
  auto Result = Engine->run(F, Args);
  if (Result.Trapped) {
    errs() << "lslpc: '@" << FnName << "' trapped: " << Result.TrapReason
           << "\n";
    return 1;
  }
  outs() << "; run @" << FnName << " [" << Engine->engineName()
         << "]: " << Result.DynamicInsts
         << " dynamic instructions, simulated cost " << Result.TotalCost
         << "\n";
  if (Result.ReturnValue.isValid()) {
    if (Result.ReturnValue.Ty->isFloatingPointTy())
      outs() << "; returned " << Result.ReturnValue.asFP() << "\n";
    else
      outs() << "; returned " << Result.ReturnValue.asUInt() << "\n";
  }
  return 0;
}

/// Writes \p Text to \p Path; reports (but does not fail on) IO errors.
void writeFileOrWarn(const std::string &Path, const std::string &Text) {
  std::FILE *File = std::fopen(Path.c_str(), "wb");
  if (!File) {
    errs() << "lslpc: cannot write reproducer '" << Path << "'\n";
    return;
  }
  std::fwrite(Text.data(), 1, Text.size(), File);
  std::fclose(File);
}

/// Runs \p Count random modules through the differential oracle on \p Jobs
/// worker threads, starting at generator seed \p FirstSeed. Failures are
/// minimized with the reducer and printed as check-in-ready reproducers
/// (also written to \p ReproDir when set). Output is identical for every
/// \p Jobs value: the sweep driver delivers outcomes in seed order.
/// Returns the number of failures.
///
/// Cross-engine validation: every 4th seed additionally executes baseline
/// and vectorized modules on BOTH engines and requires bit-identical
/// memory, returns and ExecStats; \p ParityAll extends that to every seed.
int runFuzz(const Options &Opts, int64_t Count, int64_t FirstSeed,
            unsigned Jobs, EngineKind Engine, bool ParityAll,
            const std::string &ReproDir) {
  FuzzSweepOptions SweepOpts;
  SweepOpts.Count = Count;
  SweepOpts.FirstSeed = FirstSeed;
  SweepOpts.Jobs = Jobs;
  SweepOpts.Engine = Engine;
  SweepOpts.ParityAll = ParityAll;
  SweepOpts.FaultProbability = Opts.FaultProbability;
  SweepOpts.FaultSeed = static_cast<uint64_t>(Opts.FaultSeed);
  SweepOpts.Strategy = Opts.Config.Strategy;
  SweepOpts.IfConvert = Opts.Config.EnableIfConversion;
  SweepOpts.Unroll = Opts.Config.EnableLoopUnroll;
  SweepOpts.UnrollFactor = Opts.Config.UnrollFactor;
  SweepOpts.DaemonSockets = Opts.ConnectSockets;

  int64_t NumDone = 0;
  std::function<void(const SeedOutcome &)> Consume =
      [&](const SeedOutcome &Out) {
    ++NumDone;
    if (Out.Passed) {
      if (NumDone % 100 == 0)
        outs() << "; fuzz: " << NumDone << "/" << Count << " seeds ok\n";
      return;
    }
    if (Out.Crashed) {
      errs() << "lslpc: seed " << Out.Seed << " CRASHED ("
             << Out.CrashSignal << "); sweep continues";
      if (!Out.ReproPath.empty())
        errs() << "; reproducer: " << Out.ReproPath;
      errs() << "\n";
      return;
    }
    if (Out.VerifyFailed) {
      errs() << "lslpc: seed " << Out.Seed << ": generated module fails "
             << "verification:\n";
      // VerifyErrors carries one diagnostic per line.
      size_t Pos = 0;
      while (Pos < Out.VerifyErrors.size()) {
        size_t End = Out.VerifyErrors.find('\n', Pos);
        errs() << "  " << Out.VerifyErrors.substr(Pos, End - Pos) << "\n";
        Pos = End == std::string::npos ? Out.VerifyErrors.size() : End + 1;
      }
      return;
    }
    errs() << "lslpc: seed " << Out.Seed << " FAILED [" << Out.ConfigName
           << "]: " << Out.Reason << "\n";
    errs() << "; minimized reproducer (seed " << Out.Seed << ", "
           << Out.ReductionSteps << " reduction step(s)):\n"
           << Out.ReducedIR;
    if (!ReproDir.empty())
      writeFileOrWarn(ReproDir + "/seed-" + std::to_string(Out.Seed) + ".ll",
                      Out.ReducedIR);
  };

  int64_t Failures = 0;
  if (!SweepOpts.DaemonSockets.empty()) {
    // Sharded sweep: contiguous seed ranges across the listed daemons.
    // Outcome delivery order (and therefore every line below) matches the
    // in-process sweep.
    Expected<int64_t> FailuresOrErr = server::runFuzzSweepViaDaemons(
        SweepOpts, SweepOpts.DaemonSockets, Consume, clientOptionsFor(Opts));
    if (!FailuresOrErr) {
      errs() << "lslpc: " << FailuresOrErr.getError().message() << "\n";
      return 1;
    }
    Failures = *FailuresOrErr;
  } else {
    Failures = runFuzzSweep(SweepOpts, Consume);
  }
  if (Failures == 0)
    outs() << "; fuzz: " << Count << " seed(s) starting at " << FirstSeed
           << ", 0 failures\n";
  else
    errs() << "lslpc: fuzz: " << Failures << " of " << Count
           << " seed(s) failed\n";
  return Failures == 0 ? 0 : 1;
}

/// Minimizes the failing module in \p Path and prints the reproducer.
int runReduce(const std::string &Path, EngineKind Engine, bool Parity) {
  std::string Source;
  if (!readInput(Path, Source))
    return 1;
  OracleOptions Opts;
  Opts.Engine = Engine;
  Opts.CheckEngineParity = Parity;
  DifferentialOracle Oracle(Opts);
  Reducer Shrinker(
      [&](const std::string &Text) { return !Oracle.check(Text).Passed; });
  Reducer::Result Result = Shrinker.reduce(Source);
  if (!Result.InitiallyFailing) {
    errs() << "lslpc: '" << Path << "' passes the oracle; nothing to "
           << "reduce\n";
    return 1;
  }
  OracleVerdict Verdict = Oracle.check(Result.IRText);
  outs() << "; reduced after " << Result.StepsAdopted << " step(s), "
         << Result.CandidatesTried << " candidate(s); still fails ["
         << Verdict.ConfigName << "]: " << Verdict.Reason << "\n"
         << Result.IRText;
  return 0;
}

/// Sink for the --dump-bytecode/--dump-jit-asm listings: FILE, or stdout
/// for '-'.
bool writeDumpFile(const std::string &Path, const std::string &Text) {
  if (Path == "-") {
    outs() << Text;
    return true;
  }
  std::FILE *File = std::fopen(Path.c_str(), "wb");
  if (!File) {
    errs() << "lslpc: cannot open dump output '" << Path << "'\n";
    return false;
  }
  std::fwrite(Text.data(), 1, Text.size(), File);
  std::fclose(File);
  return true;
}

/// --verify-each support: verifies \p M after the pass named \p PassName
/// and folds any diagnostics into a structured Error (category Verify).
Error verifyAfterPass(const Module &M, const char *PassName) {
  std::vector<std::string> Errors;
  if (verifyModule(M, &Errors))
    return Error::success();
  std::string Msg =
      "module fails verification after " + std::string(PassName);
  for (const std::string &E : Errors)
    Msg += "\n  " + E;
  return Error::make(ErrorCategory::Verify, std::move(Msg));
}

/// The normal parse/optimize/print path. \p Config carries the remark
/// streamer; \p Timers collects per-pass wall time for --time-passes.
int compileModule(const Options &Opts, VectorizerConfig Config,
                  TimerGroup &Timers) {
  auto TimerFor = [&](const char *Name) -> Timer * {
    return Opts.TimePasses ? &Timers.getTimer(Name) : nullptr;
  };

  std::string Source;
  if (!readInput(Opts.InputPath, Source))
    return 1;

  // If anything below crashes, the handler (when installed via
  // --crash-dir) dumps the input IR plus the active configuration as a
  // runnable reproducer.
  std::string ConfigJSON = Config.toJSON();
  CrashPayload Payload(&Source, &ConfigJSON);
  CrashScope Scope("tool", "compile");

  Context Ctx;
  std::unique_ptr<Module> M;
  {
    TimeRegion R(TimerFor("parse"));
    ParseDiagnostic Diag;
    Expected<std::unique_ptr<Module>> ParsedOrErr =
        parseModuleOrError(Source, Ctx, &Diag);
    if (!ParsedOrErr) {
      errs() << Diag.render(Opts.InputPath == "-" ? "<stdin>"
                                                  : Opts.InputPath)
             << "\n";
      return 1;
    }
    M = std::move(*ParsedOrErr);
  }
  std::vector<std::string> Errors;
  {
    TimeRegion R(TimerFor("verify"));
    if (!verifyModule(*M, &Errors)) {
      errs() << "lslpc: input fails verification:\n";
      for (const std::string &E : Errors)
        errs() << "  " << E << "\n";
      return 1;
    }
  }

  // Deterministic fault injection (--inject-faults): exercises the budget
  // fallback paths of the passes below. Must outlive the pass runs.
  std::optional<FaultInjector> Faults;
  if (Opts.FaultProbability > 0.0) {
    Faults.emplace(static_cast<uint64_t>(Opts.FaultSeed),
                   Opts.FaultProbability);
    Config.Faults = &*Faults;
  }

  SkylakeTTI TTI;
  if (Opts.EarlyCSE) {
    TimeRegion R(TimerFor("early-cse"));
    unsigned Removed = runEarlyCSE(*M, Config.Remarks);
    if (Opts.Report)
      outs() << "; early-cse removed " << Removed << " instruction(s)\n";
    if (Opts.VerifyEach) {
      if (Error E = verifyAfterPass(*M, "early-cse")) {
        errs() << "lslpc: " << E.message() << "\n";
        return 1;
      }
    }
  }
  if (Config.EnableIfConversion) {
    TimeRegion R(TimerFor("if-conversion"));
    unsigned Converted = runIfConversion(*M, Config.Remarks);
    if (Opts.Report)
      outs() << "; if-conversion flattened " << Converted << " branch(es)\n";
    if (Opts.VerifyEach) {
      if (Error E = verifyAfterPass(*M, "if-conversion")) {
        errs() << "lslpc: " << E.message() << "\n";
        return 1;
      }
    }
  }
  if (Config.EnableLoopUnroll) {
    TimeRegion R(TimerFor("loop-unroll"));
    unsigned Unrolled =
        runLoopUnroll(*M, Config.UnrollFactor, Config.Remarks);
    if (Opts.Report)
      outs() << "; loop-unroll unrolled " << Unrolled << " loop(s)\n";
    if (Opts.VerifyEach) {
      if (Error E = verifyAfterPass(*M, "loop-unroll")) {
        errs() << "lslpc: " << E.message() << "\n";
        return 1;
      }
    }
  }
  if (Opts.Vectorize) {
    SLPVectorizerPass Pass(Config, TTI);
    Pass.setVerbose(Opts.Graphs || Opts.Dot);
    ModuleReport Report;
    {
      TimeRegion R(TimerFor("vectorize"));
      Report = Pass.runOnModule(*M, ThreadPool::resolveJobs(Opts.Jobs));
    }
    {
      TimeRegion R(TimerFor("verify"));
      if (!verifyModule(*M, &Errors)) {
        errs() << "lslpc: internal error: output fails verification\n";
        for (const std::string &E : Errors)
          errs() << "  " << E << "\n";
        return 2;
      }
    }
    if (Opts.Report) {
      outs() << "; config " << Config.Name << ": "
             << Report.numAccepted() << " bundle(s) vectorized, total cost "
             << Report.acceptedCost() << "\n";
    }
    for (const FunctionReport &F : Report.Functions) {
      for (const GraphAttempt &A : F.Attempts) {
        if (Opts.Report)
          outs() << ";  @" << F.FunctionName << ": "
                 << (A.IsReduction ? "reduction" : "store-seed") << " x"
                 << A.NumLanes << ", cost " << A.Cost << ", "
                 << (A.Accepted ? "vectorized" : "skipped") << "\n";
        if (Opts.Graphs && !A.GraphDump.empty())
          outs() << A.GraphDump;
        if (Opts.Dot && !A.GraphDot.empty())
          outs() << A.GraphDot;
      }
    }
  }

  // Post-vectorization listings: both dumps render the same compiled
  // bytecode (the jit listing embeds it as per-instruction comments), so
  // they describe the module exactly as -run/--fuzz would execute it.
  if (!Opts.DumpBytecodePath.empty()) {
    TimeRegion R(TimerFor("dump-bytecode"));
    if (!writeDumpFile(Opts.DumpBytecodePath,
                       vm::dumpModuleBytecode(*M, &TTI)))
      return 1;
  }
  if (!Opts.DumpJitAsmPath.empty()) {
    TimeRegion R(TimerFor("dump-jit-asm"));
    if (!writeDumpFile(Opts.DumpJitAsmPath, jit::dumpModuleAsm(*M, &TTI)))
      return 1;
  }

  if (Opts.PrintIR)
    printModule(outs(), *M);

  if (!Opts.RunSpec.empty()) {
    TimeRegion R(TimerFor("interpret"));
    return runFunction(*M, Opts, TTI);
  }
  return 0;
}

/// True when the compile needs tool-side features the shared compile
/// service cannot ship over the wire: execution (-run), graph dumps,
/// pass timing, or remarks interleaved with the IR on stdout. These stay
/// on the legacy in-process path above and are rejected under --connect.
bool needsLegacyCompilePath(const Options &Opts) {
  return !Opts.RunSpec.empty() || Opts.Graphs || Opts.Dot ||
         Opts.TimePasses || Opts.RemarksOutput == "-" ||
         !Opts.DumpBytecodePath.empty() || !Opts.DumpJitAsmPath.empty();
}

/// Builds the daemon-protocol request equivalent to \p Opts.
server::CompileRequest buildCompileRequest(const Options &Opts,
                                           std::string Source) {
  server::CompileRequest Req;
  Req.InputName = Opts.InputPath == "-" ? "<stdin>" : Opts.InputPath;
  Req.ModuleText = std::move(Source);
  Req.ConfigJSON = Opts.Config.toJSON();
  Req.Vectorize = Opts.Vectorize;
  Req.EarlyCSE = Opts.EarlyCSE;
  Req.Report = Opts.Report;
  Req.PrintIR = Opts.PrintIR;
  Req.VerifyEach = Opts.VerifyEach;
  Req.WantStats = Opts.Stats;
  Req.StatsJSON = Opts.StatsJSON;
  Req.Remarks = Opts.Remarks == RemarkFormat::None
                    ? server::RemarkWireFormat::None
                    : (Opts.Remarks == RemarkFormat::Text
                           ? server::RemarkWireFormat::Text
                           : server::RemarkWireFormat::JSON);
  Req.Jobs = Opts.Jobs;
  Req.FaultProbability = Opts.FaultProbability;
  Req.FaultSeed = static_cast<uint64_t>(Opts.FaultSeed);
  return Req;
}

/// The service-backed compile path: one CompileRequest, answered either
/// in-process or by the daemon at --connect, replayed onto this process's
/// streams. Local and daemon mode share every byte of the pipeline, so
/// their stdout/stderr/exit code agree by construction.
int serviceCompile(const Options &Opts) {
  // The remark file opens before any compilation work, exactly like the
  // legacy path, so an unwritable path fails first.
  std::FILE *RemarkFile = nullptr;
  if (Opts.Remarks != RemarkFormat::None && !Opts.RemarksOutput.empty()) {
    RemarkFile = std::fopen(Opts.RemarksOutput.c_str(), "wb");
    if (!RemarkFile) {
      errs() << "lslpc: cannot open remarks output '" << Opts.RemarksOutput
             << "'\n";
      return 1;
    }
  }

  std::string Source;
  if (!readInput(Opts.InputPath, Source)) {
    if (RemarkFile)
      std::fclose(RemarkFile);
    return 1;
  }

  server::CompileRequest Req = buildCompileRequest(Opts, std::move(Source));
  server::CompileResponse Resp;
  if (!Opts.ConnectSockets.empty()) {
    server::DaemonClient Client(clientOptionsFor(Opts));
    Error E = Client.connect(Opts.ConnectSockets.front());
    if (!E)
      E = Client.compile(Req, Resp);
    if (E) {
      // Transport-level failure (daemon unreachable/stalled/overloaded
      // through the whole retry budget): a single compile can always be
      // served locally with byte-identical output, so do that rather than
      // failing the build. Daemon-reported compile errors are
      // deterministic and replay as responses, never land here.
      if (E.category() == ErrorCategory::IO ||
          E.category() == ErrorCategory::Overloaded) {
        errs() << "lslpc: warning: daemon at '" << Opts.ConnectSockets.front()
               << "' unavailable (" << E.message()
               << "); compiling locally\n";
        Resp = server::runCompileRequest(Req);
      } else {
        if (RemarkFile)
          std::fclose(RemarkFile);
        errs() << "lslpc: " << E.message() << "\n";
        return 2;
      }
    }
  } else {
    Resp = server::runCompileRequest(Req);
  }

  // Replay: each response field lands on the stream the legacy path
  // writes it to, in the legacy order.
  if (RemarkFile) {
    std::fwrite(Resp.RemarksText.data(), 1, Resp.RemarksText.size(),
                RemarkFile);
    std::fclose(RemarkFile);
  } else if (!Resp.RemarksText.empty()) {
    errs() << Resp.RemarksText;
  }
  outs() << Resp.ReportText;
  outs() << Resp.IRText;
  errs() << Resp.ErrorText;
  if (Opts.Stats)
    errs() << Resp.StatsText;
  return Resp.ExitCode;
}

/// --daemon-stats / --daemon-health / --shutdown-daemon control requests,
/// applied to every socket listed in --connect. Control round trips carry
/// a short deadline by default, so a wedged daemon produces a clean
/// timeout error instead of hanging the terminal.
int runDaemonControl(const Options &Opts) {
  if (Opts.ConnectSockets.empty()) {
    errs() << "lslpc: --daemon-stats/--daemon-health/--shutdown-daemon "
              "require --connect=SOCK\n";
    return 1;
  }
  server::ClientOptions ClientOpts = clientOptionsFor(Opts);
  if (Opts.DaemonTimeoutMs >= 0)
    ClientOpts.ControlTimeoutMs = Opts.DaemonTimeoutMs;
  int Code = 0;
  for (const std::string &Sock : Opts.ConnectSockets) {
    server::DaemonClient Client(ClientOpts);
    Error E = Client.connect(Sock);
    if (!E && Opts.DaemonStats) {
      std::string JSON;
      E = Client.stats(JSON);
      if (!E)
        outs() << JSON << "\n";
    }
    if (!E && Opts.DaemonHealth) {
      server::HealthResponse H;
      E = Client.health(H);
      if (!E)
        outs() << "{\"socket\":\"" << Sock << "\",\"ready\":" << H.Ready
               << ",\"queue-depth\":" << H.QueueDepth
               << ",\"deadline-misses\":" << H.DeadlineMisses << "}\n";
    }
    if (!E && Opts.ShutdownDaemon)
      E = Client.shutdownDaemon();
    if (E) {
      errs() << "lslpc: " << E.message() << "\n";
      Code = 1;
    }
  }
  return Code;
}

/// --probe-stall=MS: the slow-loris client, as a tool. Connects to the
/// first --connect socket and trickles a valid compile-request frame one
/// byte per interval; a deadline-aware daemon must reap the connection
/// (exit 0) without letting the trickle delay other clients. Exit 1 means
/// the daemon accepted the whole frame and replied — no reaping happened.
int runStallProbe(const Options &Opts) {
  if (Opts.ConnectSockets.empty()) {
    errs() << "lslpc: --probe-stall requires --connect=SOCK\n";
    return 1;
  }
  const std::string &Path = Opts.ConnectSockets.front();
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (Path.empty() || Path.size() >= sizeof(Addr.sun_path)) {
    errs() << "lslpc: bad socket path '" << Path << "'\n";
    return 1;
  }
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0 ||
      ::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    errs() << "lslpc: cannot connect to daemon at '" << Path
           << "': " << std::strerror(errno) << "\n";
    if (Fd >= 0)
      ::close(Fd);
    return 1;
  }

  server::CompileRequest Req;
  Req.InputName = "<stall-probe>";
  Req.ModuleText = "define void @stall_probe() {\nentry:\n  ret void\n}\n";
  Req.ConfigJSON = VectorizerConfig::lslp().toJSON();
  std::string Payload = server::encodeCompileRequest(Req);
  std::string Frame;
  uint32_t Len = static_cast<uint32_t>(Payload.size());
  for (int Shift = 0; Shift < 32; Shift += 8)
    Frame.push_back(static_cast<char>((Len >> Shift) & 0xff));
  Frame += Payload;

  auto Start = std::chrono::steady_clock::now();
  auto ElapsedMs = [&Start] {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now() - Start)
        .count();
  };
  size_t Sent = 0;
  for (; Sent != Frame.size(); ++Sent) {
    ssize_t N = ::send(Fd, Frame.data() + Sent, 1, MSG_NOSIGNAL);
    if (N < 0 && errno == EINTR) {
      --Sent;
      continue;
    }
    char Probe;
    bool PeerClosed =
        N <= 0 || ::recv(Fd, &Probe, 1, MSG_DONTWAIT | MSG_PEEK) == 0;
    if (PeerClosed) {
      outs() << "lslpc: stall probe: reaped by daemon after " << Sent
             << " byte(s), " << ElapsedMs() << " ms\n";
      ::close(Fd);
      return 0;
    }
    std::this_thread::sleep_for(
        std::chrono::milliseconds(Opts.ProbeStallMs));
  }
  // The whole frame got through: wait briefly for the reply to prove the
  // daemon really served (rather than reaped) us.
  std::string Reply;
  Error E = server::readFrame(Fd, Reply, nullptr,
                              std::max(2000, Opts.ProbeStallMs * 10));
  ::close(Fd);
  if (E) {
    outs() << "lslpc: stall probe: reaped by daemon after the full frame ("
           << ElapsedMs() << " ms)\n";
    return 0;
  }
  outs() << "lslpc: stall probe: daemon served the trickled request ("
         << ElapsedMs() << " ms); no reaping happened\n";
  return 1;
}

} // namespace

int main(int argc, char **argv) {
  Options Opts;
  if (!parseArgs(argc, argv, Opts)) {
    printUsage();
    return 1;
  }

  // Crash containment (DESIGN.md "Failure model"): --crash-dir arms the
  // signal handlers in any mode; fuzz sweeps arm them unconditionally so
  // one crashing seed records a verdict instead of killing the whole
  // sharded run (reproducer files are only written with a --crash-dir).
  if (!Opts.CrashDir.empty() || Opts.FuzzCount >= 0)
    installCrashHandlers(Opts.CrashDir);

  // Client-side chaos: shred this process's socket IO (daemon traffic
  // included) for the rest of main. Deterministic per (seed, probability).
  std::unique_ptr<server::ScopedChaosSocket> Chaos;
  if (Opts.ChaosProbability > 0.0) {
    server::ChaosSocket::Options CO;
    CO.Seed = Opts.ChaosSeed;
    CO.Probability = Opts.ChaosProbability;
    Chaos = std::make_unique<server::ScopedChaosSocket>(CO);
  }

  if (Opts.ProbeStallMs >= 0)
    return runStallProbe(Opts);
  if (Opts.DaemonStats || Opts.DaemonHealth || Opts.ShutdownDaemon)
    return runDaemonControl(Opts);
  if (!Opts.ConnectSockets.empty() && !Opts.ReducePath.empty()) {
    errs() << "lslpc: --reduce runs locally; it cannot be combined with "
              "--connect\n";
    return 1;
  }

  if (Opts.FuzzCount >= 0 || !Opts.ReducePath.empty()) {
    if (!Opts.InputPath.empty()) {
      errs() << "lslpc: --fuzz/--reduce take no input file\n";
      return 1;
    }
    if (Opts.FuzzCount >= 0 && !Opts.ReducePath.empty()) {
      errs() << "lslpc: --fuzz and --reduce are mutually exclusive\n";
      return 1;
    }
    if (Opts.FuzzCount >= 0)
      return runFuzz(Opts, Opts.FuzzCount, Opts.FuzzSeed,
                     ThreadPool::resolveJobs(Opts.Jobs), Opts.Engine,
                     Opts.EngineParity, Opts.ReproDir);
    return runReduce(Opts.ReducePath, Opts.Engine, Opts.EngineParity);
  }
  if (!Opts.ReproDir.empty()) {
    errs() << "lslpc: --repro-dir requires --fuzz\n";
    return 1;
  }
  if (Opts.InputPath.empty()) {
    printUsage();
    return 1;
  }

  // The default compile surface runs through the shared CompileService —
  // the same code the lslpd daemon executes — locally or, under
  // --connect, on the daemon. Only the local-only features below fall
  // back to the legacy in-process path.
  if (!needsLegacyCompilePath(Opts))
    return serviceCompile(Opts);
  if (!Opts.ConnectSockets.empty()) {
    errs() << "lslpc: --connect does not support -run/-graphs/-dot/"
              "--time-passes/--remarks-output=-/--dump-bytecode/"
              "--dump-jit-asm (local-only features)\n";
    return 1;
  }

  // Remark sink: stderr by default so remark lines never interleave with
  // the IR on stdout; --remarks-output redirects to a file.
  RemarkEngine Engine;
  std::FILE *RemarkFile = nullptr;
  std::optional<FileOStream> RemarkFileOS;
  VectorizerConfig Config = Opts.Config;
  if (Opts.Remarks != RemarkFormat::None) {
    OStream *Sink = &errs();
    if (!Opts.RemarksOutput.empty() && Opts.RemarksOutput != "-") {
      RemarkFile = std::fopen(Opts.RemarksOutput.c_str(), "wb");
      if (!RemarkFile) {
        errs() << "lslpc: cannot open remarks output '" << Opts.RemarksOutput
               << "'\n";
        return 1;
      }
      RemarkFileOS.emplace(RemarkFile);
      Sink = &*RemarkFileOS;
    } else if (Opts.RemarksOutput == "-") {
      Sink = &outs();
    }
    if (Opts.Remarks == RemarkFormat::Text)
      Engine.setTextStream(Sink);
    else
      Engine.setJSONStream(Sink);
    Config.Remarks = &Engine;
  }

  TimerGroup Timers("lslpc");
  int Code = compileModule(Opts, Config, Timers);

  if (RemarkFile)
    std::fclose(RemarkFile);
  if (Opts.Stats) {
    if (Opts.StatsJSON)
      StatisticsRegistry::instance().printJSON(errs());
    else
      StatisticsRegistry::instance().printText(errs());
  }
  if (Opts.TimePasses)
    Timers.printText(errs());
  return Code;
}
