//===- tests/analysis/AliasAndDependenceTest.cpp - Alias + dep tests -----------===//
//
// Part of the LSLP reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "analysis/AliasAnalysis.h"
#include "analysis/DependenceGraph.h"

#include "ir/BasicBlock.h"
#include "ir/Context.h"
#include "ir/Function.h"
#include "ir/Module.h"
#include "parser/Parser.h"

#include <gtest/gtest.h>

using namespace lslp;

namespace {

struct ParsedFn {
  Context Ctx;
  std::unique_ptr<Module> M;
  Function *F = nullptr;

  explicit ParsedFn(const char *Src) {
    M = parseModuleOrDie(Src, Ctx);
    F = M->functions().front().get();
  }

  Instruction *get(const std::string &Name) {
    for (const auto &BB : *F)
      for (const auto &I : *BB)
        if (I->getName() == Name)
          return I.get();
    return nullptr;
  }

  Instruction *nthStore(unsigned N) {
    unsigned Count = 0;
    for (const auto &BB : *F)
      for (const auto &I : *BB)
        if (isa<StoreInst>(I.get()) && Count++ == N)
          return I.get();
    return nullptr;
  }
};

//===----------------------------------------------------------------------===//
// Alias analysis
//===----------------------------------------------------------------------===//

TEST(AliasAnalysis, DistinctGlobalsNoAlias) {
  ParsedFn P(R"(
global @A = [16 x i64]
global @B = [16 x i64]
define void @f(i64 %i) {
entry:
  %pa = gep i64, ptr @A, i64 %i
  %pb = gep i64, ptr @B, i64 %i
  %v = load i64, ptr %pa
  store i64 %v, ptr %pb
  ret void
}
)");
  EXPECT_EQ(alias(P.get("v"), P.nthStore(0)), AliasResult::NoAlias);
  EXPECT_FALSE(mayAlias(P.get("v"), P.nthStore(0)));
}

TEST(AliasAnalysis, SameAddressMustAlias) {
  ParsedFn P(R"(
global @A = [16 x i64]
define void @f(i64 %i) {
entry:
  %p1 = gep i64, ptr @A, i64 %i
  %p2 = gep i64, ptr @A, i64 %i
  %v = load i64, ptr %p1
  store i64 %v, ptr %p2
  ret void
}
)");
  EXPECT_EQ(alias(P.get("v"), P.nthStore(0)), AliasResult::MustAlias);
}

TEST(AliasAnalysis, DisjointOffsetsNoAlias) {
  ParsedFn P(R"(
global @A = [16 x i64]
define void @f(i64 %i) {
entry:
  %i1 = add i64 %i, 1
  %p1 = gep i64, ptr @A, i64 %i
  %p2 = gep i64, ptr @A, i64 %i1
  %v = load i64, ptr %p1
  store i64 %v, ptr %p2
  ret void
}
)");
  EXPECT_EQ(alias(P.get("v"), P.nthStore(0)), AliasResult::NoAlias);
}

TEST(AliasAnalysis, DifferentSymbolsMayAlias) {
  ParsedFn P(R"(
global @A = [16 x i64]
define void @f(i64 %i, i64 %j) {
entry:
  %p1 = gep i64, ptr @A, i64 %i
  %p2 = gep i64, ptr @A, i64 %j
  %v = load i64, ptr %p1
  store i64 %v, ptr %p2
  ret void
}
)");
  EXPECT_EQ(alias(P.get("v"), P.nthStore(0)), AliasResult::MayAlias);
}

TEST(AliasAnalysis, ArgumentPointerMayAliasGlobal) {
  ParsedFn P(R"(
global @A = [16 x i64]
define void @f(ptr %p, i64 %i) {
entry:
  %pa = gep i64, ptr @A, i64 %i
  %pp = gep i64, ptr %p, i64 %i
  %v = load i64, ptr %pa
  store i64 %v, ptr %pp
  ret void
}
)");
  EXPECT_EQ(alias(P.get("v"), P.nthStore(0)), AliasResult::MayAlias);
}

TEST(AliasAnalysis, OverlappingDifferentSizes) {
  ParsedFn P(R"(
global @A = [16 x i64]
define void @f() {
entry:
  %p = gep i64, ptr @A, i64 0
  %v32 = load i32, ptr %p
  %v64 = load i64, ptr %p
  store i64 %v64, ptr %p
  ret void
}
)");
  // i32 at offset 0 overlaps i64 at offset 0 but is not the same range.
  EXPECT_EQ(alias(P.get("v32"), P.nthStore(0)), AliasResult::MayAlias);
}

//===----------------------------------------------------------------------===//
// Dependence graph
//===----------------------------------------------------------------------===//

TEST(DependenceGraph, DefUseChains) {
  ParsedFn P(R"(
define void @f(i64 %a) {
entry:
  %x = add i64 %a, 1
  %y = mul i64 %x, 2
  %z = add i64 %a, 3
  ret void
}
)");
  DependenceGraph DG(*P.F->getEntryBlock());
  EXPECT_TRUE(DG.dependsOn(P.get("y"), P.get("x")));
  EXPECT_FALSE(DG.dependsOn(P.get("x"), P.get("y")));
  EXPECT_FALSE(DG.dependsOn(P.get("z"), P.get("x")));
  EXPECT_FALSE(DG.dependsOn(P.get("z"), P.get("y")));
}

TEST(DependenceGraph, TransitiveDependence) {
  ParsedFn P(R"(
define void @f(i64 %a) {
entry:
  %x = add i64 %a, 1
  %y = mul i64 %x, 2
  %z = sub i64 %y, 3
  ret void
}
)");
  DependenceGraph DG(*P.F->getEntryBlock());
  EXPECT_TRUE(DG.dependsOn(P.get("z"), P.get("x")));
}

TEST(DependenceGraph, MemoryOrderingEdges) {
  ParsedFn P(R"(
global @A = [16 x i64]
define void @f(i64 %i) {
entry:
  %p = gep i64, ptr @A, i64 %i
  %v1 = load i64, ptr %p
  store i64 7, ptr %p
  %v2 = load i64, ptr %p
  ret void
}
)");
  DependenceGraph DG(*P.F->getEntryBlock());
  Instruction *Store = P.nthStore(0);
  // Anti-dependence load -> store, true dependence store -> load.
  EXPECT_TRUE(DG.dependsOn(Store, P.get("v1")));
  EXPECT_TRUE(DG.dependsOn(P.get("v2"), Store));
  // No direct load-load edge (the dependence is only through the store).
  const auto &Direct = DG.directDeps(P.get("v2"));
  EXPECT_EQ(std::count(Direct.begin(), Direct.end(), P.get("v1")), 0);
}

TEST(DependenceGraph, NoAliasMeansNoEdge) {
  ParsedFn P(R"(
global @A = [16 x i64]
global @B = [16 x i64]
define void @f(i64 %i) {
entry:
  %pa = gep i64, ptr @A, i64 %i
  %pb = gep i64, ptr @B, i64 %i
  store i64 1, ptr %pa
  %v = load i64, ptr %pb
  ret void
}
)");
  DependenceGraph DG(*P.F->getEntryBlock());
  EXPECT_FALSE(DG.dependsOn(P.get("v"), P.nthStore(0)));
}

TEST(DependenceGraph, MutualIndependence) {
  ParsedFn P(R"(
global @A = [16 x i64]
define void @f(i64 %i, i64 %a) {
entry:
  %x = add i64 %a, 1
  %y = add i64 %a, 2
  %z = mul i64 %x, 2
  ret void
}
)");
  DependenceGraph DG(*P.F->getEntryBlock());
  EXPECT_TRUE(DG.areMutuallyIndependent({P.get("x"), P.get("y")}));
  EXPECT_FALSE(DG.areMutuallyIndependent({P.get("x"), P.get("z")}));
  EXPECT_FALSE(
      DG.areMutuallyIndependent({P.get("x"), P.get("y"), P.get("z")}));
}

TEST(DependenceGraph, DirectDeps) {
  ParsedFn P(R"(
define void @f(i64 %a) {
entry:
  %x = add i64 %a, 1
  %y = mul i64 %x, %x
  ret void
}
)");
  DependenceGraph DG(*P.F->getEntryBlock());
  const auto &Deps = DG.directDeps(P.get("y"));
  // Both operand slots reference %x.
  ASSERT_EQ(Deps.size(), 2u);
  EXPECT_EQ(Deps[0], P.get("x"));
  EXPECT_EQ(Deps[1], P.get("x"));
}

} // namespace
